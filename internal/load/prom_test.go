package load

import (
	"math"
	"strings"
	"testing"
	"time"

	"aod/internal/telemetry"
)

// scrape renders a registry the way /metrics does and parses it back.
func scrape(t *testing.T, reg *telemetry.Registry, family string) map[string]HistSnapshot {
	t.Helper()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	return ParseHistograms(sb.String(), family)
}

// TestParseHistogramsRoundTrip feeds real telemetry histograms through the
// real text exposition and checks the scraped view agrees with the in-process
// snapshot: same counts, and quantiles equal to bucket resolution.
func TestParseHistogramsRoundTrip(t *testing.T) {
	reg := telemetry.NewRegistry()
	classes := map[string][]time.Duration{
		"cachehit": {50 * time.Microsecond, 80 * time.Microsecond, 120 * time.Microsecond, 5 * time.Millisecond},
		"small":    {3 * time.Millisecond, 8 * time.Millisecond, 15 * time.Millisecond},
		"large":    {300 * time.Millisecond, 450 * time.Millisecond, 2 * time.Second},
	}
	hists := map[string]*telemetry.Histogram{}
	for class, samples := range classes {
		h := reg.Histogram("aod_job_seconds", telemetry.Label("class", class), "test")
		for _, d := range samples {
			h.Observe(d)
		}
		hists[class] = h
	}
	// An unrelated family sharing the scrape must not confuse the parser.
	reg.Counter("aod_jobs_total", telemetry.Label("class", "small"), "test").Add(99)

	parsed := scrape(t, reg, "aod_job_seconds")
	if len(parsed) != len(classes) {
		t.Fatalf("parsed %d series, want %d", len(parsed), len(classes))
	}
	for class, samples := range classes {
		got, ok := parsed[class]
		if !ok {
			t.Fatalf("class %q missing from parse", class)
		}
		if got.Count != uint64(len(samples)) {
			t.Errorf("%s: count %d, want %d", class, got.Count, len(samples))
		}
		var wantSum float64
		for _, d := range samples {
			wantSum += d.Seconds()
		}
		if math.Abs(got.Sum-wantSum) > 1e-6 {
			t.Errorf("%s: sum %.6f, want %.6f", class, got.Sum, wantSum)
		}
		// Scraped quantiles must match the in-process estimator: both
		// interpolate inside the same power-of-two buckets.
		want := telemetry.QuantilesOf(hists[class])
		for _, q := range []struct {
			q    float64
			want time.Duration
		}{{0.50, want.P50}, {0.99, want.P99}, {0.999, want.P999}} {
			if got := got.Quantile(q.q); !closeDur(got, q.want) {
				t.Errorf("%s p%g: scraped %v, in-process %v", class, q.q*100, got, q.want)
			}
		}
	}
}

// closeDur tolerates the float64 seconds round-trip through text exposition.
func closeDur(a, b time.Duration) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return float64(d) <= 1e-6*math.Max(1, math.Max(float64(a), float64(b)))
}

func TestHistSnapshotSub(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := reg.Histogram("aod_job_seconds", telemetry.Label("class", "small"), "test")

	h.Observe(2 * time.Millisecond)
	h.Observe(40 * time.Millisecond)
	before := scrape(t, reg, "aod_job_seconds")["small"]

	h.Observe(3 * time.Millisecond)
	h.Observe(700 * time.Millisecond) // extends the emitted bucket range
	h.Observe(900 * time.Millisecond)
	after := scrape(t, reg, "aod_job_seconds")["small"]

	run := after.Sub(before)
	if run.Count != 3 {
		t.Fatalf("run count %d, want 3", run.Count)
	}
	if math.Abs(run.Sum-1.603) > 1e-6 {
		t.Errorf("run sum %.6f, want 1.603", run.Sum)
	}
	// The run-only median sits in the high-latency observations' range, not
	// dragged down by the pre-run traffic.
	if p50 := run.Quantile(0.50); p50 < 100*time.Millisecond || p50 > time.Second {
		t.Errorf("run p50 %v, want within the run's own observations", p50)
	}
	// Subtracting a snapshot from itself leaves nothing.
	empty := after.Sub(after)
	if empty.Count != 0 {
		t.Errorf("self-diff count %d, want 0", empty.Count)
	}
	if empty.Quantile(0.99) != 0 {
		t.Errorf("self-diff p99 %v, want 0", empty.Quantile(0.99))
	}
}

func TestHistSnapshotSubShorterBefore(t *testing.T) {
	// `before` was emitted when only low buckets were non-empty, so it has
	// fewer bounds than `after` — cumAt must treat missing high bounds as
	// saturated at before's total count.
	reg := telemetry.NewRegistry()
	h := reg.Histogram("aod_job_seconds", "", "test")
	h.Observe(time.Millisecond)
	before := scrape(t, reg, "aod_job_seconds")[""]

	h.Observe(10 * time.Second)
	after := scrape(t, reg, "aod_job_seconds")[""]
	if len(after.Bounds) <= len(before.Bounds) {
		t.Fatalf("test setup: after (%d bounds) should extend past before (%d)", len(after.Bounds), len(before.Bounds))
	}

	run := after.Sub(before)
	if run.Count != 1 {
		t.Fatalf("run count %d, want 1", run.Count)
	}
	if p50 := run.Quantile(0.50); p50 < 5*time.Second {
		t.Errorf("run p50 %v, want ≥ 5s (the one new observation)", p50)
	}
}

func TestParseHistogramsIgnoresJunk(t *testing.T) {
	text := strings.Join([]string{
		"# HELP aod_job_seconds latency",
		"# TYPE aod_job_seconds histogram",
		`aod_job_seconds_bucket{class="small",le="0.001"} 2`,
		`aod_job_seconds_bucket{class="small",le="+Inf"} 3`,
		`aod_job_seconds_sum{class="small"} 1.25`,
		`aod_job_seconds_count{class="small"} 3`,
		`aod_job_seconds_bucket{class="oops",le="nan-bound"} 1`, // bad bound: skipped
		`aod_job_seconds_bucket{class="oops"`,                   // truncated line
		"aod_job_seconds_extra 7",                               // unknown suffix
		"totally unrelated junk",
		"",
	}, "\n")
	parsed := ParseHistograms(text, "aod_job_seconds")
	small, ok := parsed["small"]
	if !ok {
		t.Fatal("small series missing")
	}
	if small.Count != 3 || small.Sum != 1.25 || len(small.Bounds) != 2 {
		t.Fatalf("parsed %+v", small)
	}
	if small.Cum[0] != 2 || small.Cum[1] != 3 {
		t.Fatalf("cum %v", small.Cum)
	}
}
