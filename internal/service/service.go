// Package service turns one-shot AOD discovery into a long-running,
// concurrent, cancellable subsystem: a dataset registry with content
// fingerprinting, a bounded-queue job manager running discovery on a fixed
// worker pool with cooperative cancellation (aod.DiscoverContext), and an
// LRU result cache keyed by (dataset fingerprint, canonicalized options) so
// identical re-submissions — including concurrent ones, via an in-flight
// single-flight table — validate exactly once. The aodserver command exposes
// it over an HTTP JSON API (see NewHandler).
package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"aod"
	"aod/internal/store"
	"aod/internal/telemetry"
)

// Config sizes a Service. The zero value selects sensible defaults.
type Config struct {
	// Workers is the discovery worker-pool size (default 2).
	Workers int
	// QueueDepth bounds the number of jobs waiting for a worker; Submit
	// fails with ErrQueueFull beyond it (default 64; negative = unbounded).
	QueueDepth int
	// CacheSize is the result-cache capacity in reports (default 128;
	// negative disables the in-memory cache).
	CacheSize int
	// MaxDatasets bounds the registry (default 256; negative = unbounded).
	// With a Store it bounds the in-memory resident set instead: uploads are
	// never refused, the least recently used payload is evicted to disk.
	MaxDatasets int
	// MaxJobHistory bounds retained job records: when exceeded, the oldest
	// terminal jobs (and their reports) are evicted so a long-running server
	// cannot grow without bound (default 1024; negative = unbounded).
	MaxJobHistory int
	// Store, when non-nil, makes the service durable: datasets and completed
	// reports are written through to disk, registry metadata is recovered on
	// startup, and evicted/cold state reloads lazily on use. Nil preserves
	// the purely in-memory behavior.
	Store *store.Store
	// ShardPool, when non-nil, slices each job's lattice levels across the
	// pool's aodworker processes (aodserver -workers). Results are identical
	// to local execution — the sharded executor's contract — so the result
	// cache and in-flight dedup are oblivious to where a job actually ran,
	// and a degraded pool only slows jobs down. Per-worker health and
	// assignment counts surface in Stats.Shards.
	ShardPool *aod.ShardPool
	// DisableAdaptive turns off work-estimate-based executor selection. The
	// pre-adaptive routing then applies: every job runs sharded when
	// ShardPool is set, otherwise locally with the job's own Parallelism.
	DisableAdaptive bool
	// SerialCostMax is the admission work estimate (rows × cols × levels, see
	// aod.EstimateWork) at or below which a job runs on the serial in-process
	// executor — below it, pool fan-out costs more in coordination than it
	// buys (default DefaultSerialCostMax; negative = 0, no serial tier).
	// Jobs that ask for explicit Parallelism > 1 are never forced serial.
	SerialCostMax int64
	// ShardCostMin is the estimate at or above which a job is dispatched to
	// the shard pool (when ShardPool is set). Between SerialCostMax and
	// ShardCostMin jobs run on the in-process pool: mid-range work
	// parallelizes well locally but would pay shard round-trips per lattice
	// level for nothing (default DefaultShardCostMin; negative = 0, shard
	// everything).
	ShardCostMin int64
	// ShardWorkQuantum sizes the sharded executor's worker fan-out: one
	// worker per this much estimated work, bounded by the pool width (see
	// aod.Options.ShardWorkQuantum). Applied to jobs that didn't set their
	// own quantum. 0 = the core default; negative = always full width.
	ShardWorkQuantum int64
	// PartitionCacheBytes bounds the cross-job partition memoization state:
	// a fingerprint-keyed cache of prepared single-attribute partitions plus
	// a shared partition-buffer arena, each retaining at most this many
	// bytes. Repeat jobs against a registered dataset — same data, different
	// options — then skip cold-start partitioning (default 64 MiB; negative
	// disables warm runs entirely). Results are identical either way.
	PartitionCacheBytes int64
	// MaxQueueWait bounds how long cost-based scheduling may delay a queued
	// job: a job queued longer than this is picked next regardless of its
	// cost, so a flood of small jobs cannot starve batch work indefinitely
	// (default 1m; negative disables aging).
	MaxQueueWait time.Duration
	// Metrics, when non-nil, is the registry the service's counters, gauges,
	// and latency histograms live in — shared with other subsystems (shard
	// pool, HTTP layer) so one /metrics scrape covers the process. Nil gets
	// the service a private registry; /stats works either way.
	Metrics *telemetry.Registry
	// Peers lists the base URLs of replica aodservers sharing this service's
	// result-cache key space (aodserver -peers). On a local cache miss the
	// flight leader asks each peer's GET /peer/report for the key before
	// validating: a report computed on any replica is then served through
	// every replica without recomputation — the router's idempotent-failover
	// contract depends on it. Empty disables peering.
	Peers []string
	// PeerTimeout bounds each peer report probe (default 250ms). A slow or
	// dead peer must never cost more than this before the job simply
	// validates locally.
	PeerTimeout time.Duration

	// Test seams (same-package tests only): runGate runs when a worker picks
	// the job up, before discovery starts; levelHook runs after each level
	// snapshot is published. Both may block — that is their point: they make
	// scheduling order and streaming pace deterministic under test. now
	// substitutes the queue-aging clock.
	runGate   func(*Job)
	levelHook func(*Job)
	now       func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0 // unbounded
	}
	if c.CacheSize == 0 {
		c.CacheSize = 128
	}
	if c.CacheSize < 0 {
		c.CacheSize = 0
	}
	if c.MaxDatasets == 0 {
		c.MaxDatasets = 256
	}
	if c.MaxDatasets < 0 {
		c.MaxDatasets = 0
	}
	if c.MaxJobHistory == 0 {
		c.MaxJobHistory = 1024
	}
	if c.MaxJobHistory < 0 {
		c.MaxJobHistory = 0
	}
	if c.SerialCostMax == 0 {
		c.SerialCostMax = DefaultSerialCostMax
	}
	if c.SerialCostMax < 0 {
		c.SerialCostMax = 0 // no serial tier
	}
	if c.ShardCostMin == 0 {
		c.ShardCostMin = DefaultShardCostMin
	}
	if c.ShardCostMin < 0 {
		c.ShardCostMin = 0 // shard everything
	}
	if c.PartitionCacheBytes == 0 {
		c.PartitionCacheBytes = DefaultPartitionCacheBytes
	}
	if c.PartitionCacheBytes < 0 {
		c.PartitionCacheBytes = 0 // warm path disabled
	}
	if c.MaxQueueWait == 0 {
		c.MaxQueueWait = time.Minute
	}
	if c.MaxQueueWait < 0 {
		c.MaxQueueWait = 0 // aging disabled
	}
	if c.PeerTimeout <= 0 {
		c.PeerTimeout = 250 * time.Millisecond
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("service: closed")

// ErrDraining is returned by Submit while the service drains: it finishes
// the jobs it already accepted but admits no new ones (HTTP 503 with an
// honest Retry-After — clients and routers should go elsewhere).
var ErrDraining = errors.New("service: draining, not admitting jobs")

// Service is the discovery service: registry + job manager + result cache.
// All methods are safe for concurrent use.
type Service struct {
	cfg      Config
	registry *Registry
	cache    *resultCache
	peers    *peerClient // nil without Config.Peers
	// prepared and arena are the cross-job partition memoization state (nil
	// when PartitionCacheBytes disables it): prepared caches each dataset's
	// single-attribute partitions by fingerprint, arena recycles partition
	// buffers across jobs. Both are byte-bounded by PartitionCacheBytes.
	prepared *preparedCache
	arena    *aod.PartitionArena
	start    time.Time
	draining atomic.Bool

	mu       sync.Mutex
	notEmpty *sync.Cond // signaled when pending gains a job or on Close
	closed   bool
	jobs     map[string]*Job
	order    []string // submission order, for stable listings
	// pending holds jobs waiting for a worker (bounded by QueueDepth),
	// ordered by estimated cost so small jobs are not starved by large ones
	// submitted ahead of them (see jobQueue).
	pending jobQueue
	flights map[string]*flight
	nextID  uint64

	wg sync.WaitGroup

	// reg is the metrics registry (Config.Metrics or a private one); met
	// holds the resolved handles. The registry is the single source of truth
	// for the service counters: /stats and /metrics read the same series.
	reg *telemetry.Registry
	met serviceMetrics
}

// serviceMetrics is the service's resolved metric handles. Counters and
// gauges are updated from worker goroutines with single atomic operations.
type serviceMetrics struct {
	jobsSubmitted  *telemetry.Counter
	jobsDone       *telemetry.Counter
	jobsFailed     *telemetry.Counter
	jobsCanceled   *telemetry.Counter
	cacheHits      *telemetry.Counter
	cacheMisses    *telemetry.Counter
	validationRuns *telemetry.Counter
	validationNs   *telemetry.Counter
	discoveryNs    *telemetry.Counter
	inFlight       *telemetry.Gauge
	waiting        *telemetry.Gauge
	// Peer result-cache traffic: hits are reports adopted from a replica
	// instead of recomputed, served counts this replica answering peers.
	peerHits   *telemetry.Counter
	peerMisses *telemetry.Counter
	peerServed *telemetry.Counter

	// Adaptive executor routing: one counter per executor the router picked
	// for a validation run (cache hits and in-flight joins route nothing).
	routedSerial  *telemetry.Counter
	routedPool    *telemetry.Counter
	routedSharded *telemetry.Counter

	// Partition memoization: hits count validation runs that reused cached
	// prepared partitions (cold-start partitioning skipped), misses count
	// runs that prepared them cold (and admitted the result to the cache).
	partitionHits   *telemetry.Counter
	partitionMisses *telemetry.Counter

	// Job end-to-end latency by class: cache hits answer in microseconds,
	// small and large validation runs in milliseconds to minutes — one
	// histogram would bury the classes' tails in each other.
	latCacheHit *telemetry.Histogram
	latSmall    *telemetry.Histogram
	latLarge    *telemetry.Histogram
	queueWait   *telemetry.Histogram
	levelValid  *telemetry.Histogram
}

// SmallJobCost splits the small and large job classes by the scheduler's
// admission estimate (rows × cols × levels). 1<<24 ≈ 16.8M puts a
// 5k-row × 10-attr full-lattice job (500K) firmly in "small" and anything
// approaching the paper's flight-scale datasets in "large". Exported so the
// load harness (internal/load) can pick workload shapes that land in the
// intended aod_job_seconds{class=...} histogram.
const SmallJobCost = 1 << 24

// DefaultSerialCostMax and DefaultShardCostMin are the adaptive executor
// router's default thresholds in the same cost currency (rows × cols ×
// levels, aod.EstimateWork). 1<<20 ≈ 1.05M keeps a 5k-row × 10-attr
// full-lattice job (500K) serial — measured faster than pool fan-out at that
// size — while 1<<22 ≈ 4.2M sends a 50k-row × 10-attr job (5M) to the shard
// pool, past the crossover where columnar shipping amortizes and pipelined
// dispatch beats local workers.
const (
	DefaultSerialCostMax = 1 << 20
	DefaultShardCostMin  = 1 << 22
)

// DefaultPartitionCacheBytes is the default byte budget of the cross-job
// partition cache and its shared buffer arena (Config.PartitionCacheBytes).
// 64 MiB holds the prepared singles of dozens of paper-scale datasets
// (a 50k-row × 10-attr table's singles retain ≈ 4 MB).
const DefaultPartitionCacheBytes = 64 << 20

func (s *Service) initMetrics() {
	r := s.reg
	m := &s.met
	m.jobsSubmitted = r.Counter("aod_jobs_submitted_total", "", "Jobs accepted by Submit.")
	m.jobsDone = r.Counter("aod_jobs_done_total", "", "Jobs completed with a report.")
	m.jobsFailed = r.Counter("aod_jobs_failed_total", "", "Jobs completed with an error.")
	m.jobsCanceled = r.Counter("aod_jobs_canceled_total", "", "Jobs canceled before or during the run.")
	m.cacheHits = r.Counter("aod_cache_hits_total", "", "Jobs answered by the result cache or an in-flight run.")
	m.cacheMisses = r.Counter("aod_cache_misses_total", "", "Jobs that required a validation run.")
	m.validationRuns = r.Counter("aod_validation_runs_total", "", "Discovery runs actually executed.")
	m.validationNs = r.Counter("aod_validation_ns_total", "", "Cumulative validator time of complete runs, in nanoseconds.")
	m.discoveryNs = r.Counter("aod_discovery_ns_total", "", "Cumulative end-to-end discovery time of complete runs, in nanoseconds.")
	m.inFlight = r.Gauge("aod_jobs_in_flight", "", "Jobs currently holding a worker.")
	m.waiting = r.Gauge("aod_jobs_waiting", "", "Jobs parked on an identical in-flight run.")
	m.peerHits = r.Counter("aod_peer_report_hits_total", "", "Reports adopted from a peer replica's cache instead of recomputed.")
	m.peerMisses = r.Counter("aod_peer_report_misses_total", "", "Peer cache probes that found no report anywhere.")
	m.peerServed = r.Counter("aod_peer_reports_served_total", "", "Cached reports served to peer replicas.")
	m.routedSerial = r.Counter("aod_jobs_routed_total", telemetry.Label("executor", "serial"), "Validation runs by executor the adaptive router picked.")
	m.routedPool = r.Counter("aod_jobs_routed_total", telemetry.Label("executor", "pool"), "Validation runs by executor the adaptive router picked.")
	m.routedSharded = r.Counter("aod_jobs_routed_total", telemetry.Label("executor", "sharded"), "Validation runs by executor the adaptive router picked.")
	m.partitionHits = r.Counter("aod_partition_cache_hits_total", "", "Validation runs that reused cached prepared partitions (cold-start partitioning skipped).")
	m.partitionMisses = r.Counter("aod_partition_cache_misses_total", "", "Validation runs that prepared partitions cold.")
	r.GaugeFunc("aod_partition_cache_bytes", "", "Bytes retained by the prepared-partition cache and the shared partition arena.", func() int64 {
		_, b, _ := s.prepared.stats()
		if s.arena != nil {
			b += s.arena.RetainedBytes()
		}
		return b
	})
	m.latCacheHit = r.Histogram("aod_job_seconds", telemetry.Label("class", "cachehit"), "Job end-to-end latency by class.")
	m.latSmall = r.Histogram("aod_job_seconds", telemetry.Label("class", "small"), "Job end-to-end latency by class.")
	m.latLarge = r.Histogram("aod_job_seconds", telemetry.Label("class", "large"), "Job end-to-end latency by class.")
	m.queueWait = r.Histogram("aod_queue_wait_seconds", "", "Time jobs spent queued before a worker picked them up.")
	m.levelValid = r.Histogram("aod_level_validate_seconds", "", "Per-lattice-level validation time.")
	r.GaugeFunc("aod_jobs_queued", "", "Jobs waiting for a worker.", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return int64(s.pending.Len())
	})
	r.GaugeFunc("aod_datasets", "", "Datasets registered.", func() int64 { return int64(s.registry.Len()) })
}

// New starts a Service with cfg's worker pool running.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:      cfg,
		registry: NewRegistry(cfg.MaxDatasets, cfg.Store),
		cache:    newResultCache(cfg.CacheSize, cfg.Store),
		start:    time.Now(),
		jobs:     make(map[string]*Job),
		flights:  make(map[string]*flight),
		reg:      cfg.Metrics,
	}
	s.prepared = newPreparedCache(cfg.PartitionCacheBytes)
	if cfg.PartitionCacheBytes > 0 {
		s.arena = aod.NewPartitionArena(cfg.PartitionCacheBytes)
	}
	if s.reg == nil {
		s.reg = telemetry.NewRegistry()
	}
	s.initMetrics()
	if len(cfg.Peers) > 0 {
		s.peers = newPeerClient(cfg.Peers, cfg.PeerTimeout)
	}
	s.pending.maxWait = cfg.MaxQueueWait
	s.pending.now = cfg.now
	s.notEmpty = sync.NewCond(&s.mu)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Registry exposes the dataset registry.
func (s *Service) Registry() *Registry { return s.registry }

// BeginDrain flips the service unready: Submit fails with ErrDraining (503)
// and /healthz reports draining, but jobs already admitted keep their
// workers and every read endpoint keeps answering. Idempotent. The intended
// shutdown sequence is BeginDrain → WaitIdle → http.Server.Shutdown → Close,
// so a router sees the replica go unready one probe before it stops serving.
func (s *Service) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain was called.
func (s *Service) Draining() bool { return s.draining.Load() }

// WaitIdle blocks until no job is queued, running, or parked on an in-flight
// run — the all-admitted-work-finished point of a drain — or until ctx
// expires, returning ctx.Err() in that case.
func (s *Service) WaitIdle(ctx context.Context) error {
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		s.mu.Lock()
		queued := s.pending.Len()
		s.mu.Unlock()
		if queued == 0 && s.met.inFlight.Value() == 0 && s.met.waiting.Value() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// QueueAge returns how long the oldest queued job has been waiting for a
// worker (0 when nothing is queued) — the input to the Retry-After hint.
func (s *Service) QueueAge() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.pending.oldest()
	if old == nil {
		return 0
	}
	if age := s.cfg.now().Sub(old.created); age > 0 {
		return age
	}
	return 0
}

// MaxQueueWait exposes the configured queue-aging bound (0 = disabled).
func (s *Service) MaxQueueWait() time.Duration { return s.cfg.MaxQueueWait }

// RetryAfterSeconds derives an honest Retry-After hint (whole seconds) from
// the age of the oldest queued job. The heuristic: a queue whose head has
// already waited T will take on the order of T to drain its head again, so
// retrying sooner than T/2 mostly burns requests — but the hint is clamped
// to [1s, bound] (bound = maxWait when positive, else one minute) so clients
// always get a positive, finite signal no matter how pathological the queue.
// The same derivation backs the service's queue-full 503, its draining 503,
// and the router's shed path.
func RetryAfterSeconds(queueAge, maxWait time.Duration) int {
	bound := maxWait
	if bound <= 0 {
		bound = time.Minute
	}
	if bound < time.Second {
		bound = time.Second
	}
	hint := queueAge / 2
	if hint > bound {
		hint = bound
	}
	// Ceiling in whole seconds, never below 1 (Retry-After: 0 means "now",
	// which a saturated queue cannot honestly promise).
	secs := int((hint + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// retryAfterSeconds is the instance hint for the service's own 503 paths.
func (s *Service) retryAfterSeconds() int {
	return RetryAfterSeconds(s.QueueAge(), s.cfg.MaxQueueWait)
}

// Metrics exposes the metrics registry backing /stats and /metrics.
func (s *Service) Metrics() *telemetry.Registry { return s.reg }

// Close cancels every live job, stops the workers, and waits for them to
// drain. Submit fails with ErrClosed afterwards.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	live := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		live = append(live, j)
	}
	s.notEmpty.Broadcast()
	s.mu.Unlock()
	for _, j := range live {
		j.cancel()
	}
	s.wg.Wait()
}

// Stats is a point-in-time snapshot of the service counters, served by
// GET /stats.
type Stats struct {
	Datasets int `json:"datasets"`
	// DatasetsResident counts datasets whose payload is held in memory; the
	// rest are on disk and reload lazily (equal to Datasets without a Store).
	DatasetsResident int    `json:"datasetsResident"`
	JobsSubmitted    uint64 `json:"jobsSubmitted"`
	JobsDone         uint64 `json:"jobsDone"`
	JobsFailed       uint64 `json:"jobsFailed"`
	JobsCanceled     uint64 `json:"jobsCanceled"`
	JobsInFlight     int64  `json:"jobsInFlight"`
	// JobsWaiting counts jobs parked on an identical in-flight run — in
	// state "running" but holding no worker.
	JobsWaiting   int64  `json:"jobsWaiting"`
	JobsQueued    int    `json:"jobsQueued"`
	CacheHits     uint64 `json:"cacheHits"`
	CacheMisses   uint64 `json:"cacheMisses"`
	CacheSize     int    `json:"cacheSize"`
	CacheCapacity int    `json:"cacheCapacity"`
	// CacheDiskHits counts cache hits answered by the persisted report store
	// rather than memory — e.g. every first re-submission after a restart.
	CacheDiskHits  uint64 `json:"cacheDiskHits"`
	CacheEvictions uint64 `json:"cacheEvictions"`
	// Persistent reports whether a Store backs the service. Quarantined and
	// PersistErrors are its health counters: corrupt files moved aside, and
	// report write-throughs that failed (all zero without a Store).
	// ReportEvictions counts report files deleted by the disk-budget GC.
	Persistent      bool   `json:"persistent"`
	Quarantined     uint64 `json:"quarantined"`
	PersistErrors   uint64 `json:"persistErrors"`
	ReportEvictions uint64 `json:"reportEvictions,omitempty"`
	// GroupCommits and BatchedWrites expose the store's fsync batching:
	// commit batches flushed vs writes acknowledged across them.
	// BatchedWrites > GroupCommits means group commit is engaging under
	// concurrent write load.
	GroupCommits  uint64 `json:"groupCommits,omitempty"`
	BatchedWrites uint64 `json:"batchedWrites,omitempty"`
	ValidationRuns  uint64 `json:"validationRuns"`
	// Partition memoization (the cross-job warm path): hits count validation
	// runs that reused cached prepared partitions, misses count cold
	// preparations; bytes is the retained cache + shared-arena footprint.
	PartitionCacheHits      uint64 `json:"partitionCacheHits"`
	PartitionCacheMisses    uint64 `json:"partitionCacheMisses"`
	PartitionCacheEntries   int    `json:"partitionCacheEntries"`
	PartitionCacheBytes     int64  `json:"partitionCacheBytes"`
	PartitionCacheEvictions uint64 `json:"partitionCacheEvictions,omitempty"`
	// JobsRouted* count validation runs by the executor the adaptive router
	// picked (all three stay zero only when no job ever validates).
	JobsRoutedSerial  uint64        `json:"jobsRoutedSerial"`
	JobsRoutedPool    uint64        `json:"jobsRoutedPool"`
	JobsRoutedSharded uint64        `json:"jobsRoutedSharded"`
	ValidationTime    time.Duration `json:"validationTimeNs"`
	DiscoveryTime     time.Duration `json:"discoveryTimeNs"`
	Workers           int           `json:"workers"`
	QueueDepth        int           `json:"queueDepth"`
	Uptime            time.Duration `json:"uptimeNs"`
	// Shards reports per-worker health and assignment counts when a shard
	// pool backs job execution (aodserver -workers); absent otherwise.
	Shards []aod.ShardWorkerStatus `json:"shards,omitempty"`
	// Draining reports a server that has stopped admitting jobs (SIGTERM
	// received, in-flight work finishing).
	Draining bool `json:"draining,omitempty"`
	// Peer result-cache traffic (aodserver -peers): PeerHits counts reports
	// adopted from a replica instead of recomputed, PeerServed counts this
	// replica answering peers' probes. Zero without peers.
	Peers      int    `json:"peers,omitempty"`
	PeerHits   uint64 `json:"peerHits,omitempty"`
	PeerServed uint64 `json:"peerServed,omitempty"`
}

// Stats snapshots the service counters through the metrics registry — the
// same series /metrics scrapes. The read order makes the snapshot coherent
// where it matters: terminal counters (done/failed/canceled) are read before
// the submitted counter, and Submit increments the submitted counter before
// the job becomes runnable, so the invariant
// done + failed + canceled ≤ submitted holds in every snapshot no matter how
// many jobs complete mid-read. (The previous field-by-field read taken in an
// arbitrary order could observe a fast job's completion before its
// submission.)
func (s *Service) Stats() Stats {
	size, capacity, evictions := s.cache.stats()
	s.mu.Lock()
	queued := s.pending.Len()
	s.mu.Unlock()
	done := s.met.jobsDone.Value()
	failed := s.met.jobsFailed.Value()
	canceled := s.met.jobsCanceled.Value()
	st := Stats{
		Datasets:          s.registry.Len(),
		DatasetsResident:  s.registry.Resident(),
		JobsSubmitted:     s.met.jobsSubmitted.Value(),
		JobsDone:          done,
		JobsFailed:        failed,
		JobsCanceled:      canceled,
		JobsInFlight:      s.met.inFlight.Value(),
		JobsWaiting:       s.met.waiting.Value(),
		JobsQueued:        queued,
		CacheHits:         s.met.cacheHits.Value(),
		CacheMisses:       s.met.cacheMisses.Value(),
		CacheSize:         size,
		CacheCapacity:     capacity,
		CacheEvictions:    evictions,
		ValidationRuns:    s.met.validationRuns.Value(),
		JobsRoutedSerial:  s.met.routedSerial.Value(),
		JobsRoutedPool:    s.met.routedPool.Value(),
		JobsRoutedSharded: s.met.routedSharded.Value(),
		ValidationTime:    time.Duration(s.met.validationNs.Value()),
		DiscoveryTime:     time.Duration(s.met.discoveryNs.Value()),
		Workers:           s.cfg.Workers,
		QueueDepth:        s.cfg.QueueDepth,
		Uptime:            time.Since(s.start),
	}
	pe, pb, pev := s.prepared.stats()
	if s.arena != nil {
		pb += s.arena.RetainedBytes()
	}
	st.PartitionCacheHits = s.met.partitionHits.Value()
	st.PartitionCacheMisses = s.met.partitionMisses.Value()
	st.PartitionCacheEntries = pe
	st.PartitionCacheBytes = pb
	st.PartitionCacheEvictions = pev
	st.CacheDiskHits = s.cache.diskHits.Load()
	st.PersistErrors = s.cache.persistErrors.Load()
	st.Draining = s.Draining()
	st.Peers = len(s.cfg.Peers)
	st.PeerHits = s.met.peerHits.Value()
	st.PeerServed = s.met.peerServed.Value()
	if s.cfg.ShardPool != nil {
		st.Shards = s.cfg.ShardPool.Workers()
	}
	if s.cfg.Store != nil {
		st.Persistent = true
		st.Quarantined = s.cfg.Store.Quarantined()
		st.ReportEvictions = s.cfg.Store.ReportsEvicted()
		st.GroupCommits = s.cfg.Store.GroupCommits()
		st.BatchedWrites = s.cfg.Store.BatchedWrites()
	}
	return st
}
