package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"aod/internal/gen"
	"aod/internal/tane"
)

// The engine's OFD discovery and the TANE baseline implement the same
// semantics — complete minimal approximate FDs under g3 — through different
// code paths (candidate propagation differs, validators are shared but the
// traversal is not). Their outputs must coincide exactly.
func TestCoreOFDsMatchTANE(t *testing.T) {
	rng := rand.New(rand.NewSource(600))
	for iter := 0; iter < 40; iter++ {
		rows := 2 + rng.Intn(40)
		attrs := 2 + rng.Intn(4)
		tbl := randomTable(rng, rows, attrs, 2+rng.Intn(4))
		eps := []float64{0, 0.1, 0.3}[iter%3]

		coreRes, err := Discover(tbl, Config{Threshold: eps, Validator: ValidatorOptimal, IncludeOFDs: true})
		if err != nil {
			t.Fatal(err)
		}
		taneRes, err := tane.Discover(tbl, tane.Config{Threshold: eps})
		if err != nil {
			t.Fatal(err)
		}
		coreSet := make(map[string]float64)
		for _, ofd := range coreRes.OFDs {
			coreSet[fmt.Sprintf("%d->%d", uint64(ofd.Context), ofd.A)] = ofd.Error
		}
		taneSet := make(map[string]float64)
		for _, fd := range taneRes.FDs {
			taneSet[fmt.Sprintf("%d->%d", uint64(fd.LHS), fd.RHS)] = fd.Error
		}
		if len(coreSet) != len(taneSet) {
			t.Fatalf("iter %d (ε=%.1f): core %d OFDs vs TANE %d FDs\ncore: %v\ntane: %v",
				iter, eps, len(coreSet), len(taneSet), coreRes.OFDs, taneRes.FDs)
		}
		for k, e := range taneSet {
			ce, ok := coreSet[k]
			if !ok {
				t.Fatalf("iter %d: core missing FD %s", iter, k)
			}
			if math.Abs(ce-e) > 1e-9 {
				t.Fatalf("iter %d: FD %s error core %g vs tane %g", iter, k, ce, e)
			}
		}
	}
}

// Same cross-check at generator scale (exact FDs only, where both engines
// are fast).
func TestCoreOFDsMatchTANEOnGeneratedData(t *testing.T) {
	tbl := gen.NCVoter(gen.NCVoterConfig{Rows: 1500, Attrs: 8, Seed: 13})
	coreRes, err := Discover(tbl, Config{Validator: ValidatorExact, IncludeOFDs: true})
	if err != nil {
		t.Fatal(err)
	}
	taneRes, err := tane.Discover(tbl, tane.Config{Threshold: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(coreRes.OFDs) != len(taneRes.FDs) {
		t.Fatalf("core %d OFDs vs TANE %d FDs", len(coreRes.OFDs), len(taneRes.FDs))
	}
}
