// Command aodworker is a shard worker for distributed AOD discovery: an
// aodserver started with -workers dials it per job, ships each dataset at
// most once (workers cache datasets — table plus single-column partitions —
// by content fingerprint), and streams it lattice-level task slices to
// validate. Workers are stateless beyond their cache: killing one mid-job
// only re-routes its slices; adding one is just listing its address in the
// server's -workers flag.
//
// Usage:
//
//	aodworker [-addr :8712] [-max-datasets N] [-quiet]
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"

	"aod/internal/shard"
)

func main() {
	addr := flag.String("addr", ":8712", "listen address (host:port; port 0 picks an ephemeral port)")
	maxDatasets := flag.Int("max-datasets", 16, "prepared-dataset cache bound (least recently used evicted; negative = unbounded)")
	quiet := flag.Bool("quiet", false, "suppress per-session logging")
	flag.Parse()

	logf := func(format string, args ...any) { fmt.Printf(format+"\n", args...) }
	if *quiet {
		logf = nil
	}
	w := shard.NewWorker(shard.WorkerOptions{MaxDatasets: *maxDatasets, Logf: logf})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aodworker:", err)
		os.Exit(1)
	}
	// The resolved address matters when port 0 was requested.
	fmt.Printf("aodworker listening on %s (dataset cache %d)\n", ln.Addr(), *maxDatasets)

	done := make(chan error, 1)
	go func() { done <- w.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("aodworker: %s — shutting down (%d tasks served)\n", s, w.TasksRun())
		ln.Close()
	case err := <-done:
		if err != nil {
			fmt.Fprintln(os.Stderr, "aodworker:", err)
			os.Exit(1)
		}
	}
}
