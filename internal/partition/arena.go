package partition

import "sync"

// ProductScratch holds the reusable probe state of the TANE partition
// product: a stamped row→class array replacing the map probe, and stamped
// per-class subgroup slots replacing the per-class sort. Stamps (epoch for
// rows, generation for subgroup slots) make resets O(1) instead of O(n).
// A zero ProductScratch is ready to use; it is not safe for concurrent use.
type ProductScratch struct {
	// otherOf[row] is the id of the other-class containing row, valid only
	// when rowStamp[row] == epoch (rows stripped from other stay stale).
	otherOf  []int32
	rowStamp []int32
	epoch    int32
	// subOf[otherClass] is the subgroup slot assigned within the current
	// p-class, valid only when subStamp[otherClass] == subGen.
	subOf    []int32
	subStamp []int32
	subGen   int32
	// subCount and subStart hold per-slot row counts and write cursors.
	subCount []int32
	subStart []int32
}

// stamp loads the probe table for q: after the call, rows covered by q have
// otherOf set to their q-class id under the fresh epoch.
func (s *ProductScratch) stamp(q *Stripped) {
	n := q.N
	if cap(s.otherOf) < n {
		s.otherOf = make([]int32, n)
		s.rowStamp = make([]int32, n)
		s.epoch = 0
	}
	s.otherOf = s.otherOf[:n]
	s.rowStamp = s.rowStamp[:n]
	s.epoch++
	if s.epoch <= 0 { // wrapped: hard reset over the full capacity
		clear(s.rowStamp[:cap(s.rowStamp)])
		s.epoch = 1
	}
	nc := q.NumClasses()
	if cap(s.subOf) < nc {
		s.subOf = make([]int32, nc)
		s.subStamp = make([]int32, nc)
		s.subGen = 0
	}
	s.subOf = s.subOf[:nc]
	s.subStamp = s.subStamp[:nc]
	for ci := 0; ci+1 < len(q.offsets); ci++ {
		for _, row := range q.rows[q.offsets[ci]:q.offsets[ci+1]] {
			s.otherOf[row] = int32(ci)
			s.rowStamp[row] = s.epoch
		}
	}
}

// nextClass opens a fresh subgroup generation for the next p-class.
func (s *ProductScratch) nextClass() {
	s.subGen++
	if s.subGen <= 0 { // wrapped: hard reset over the full capacity
		clear(s.subStamp[:cap(s.subStamp)])
		s.subGen = 1
	}
}

// Arena recycles partition buffers and product scratch across calls. The
// discovery engine holds one arena per run: released lattice-level
// partitions return their CSR buffers to the arena and the next level's
// products reuse them, so steady-state traversal allocates nearly nothing.
// An Arena is safe for concurrent use (the parallel engine's workers share
// one); the zero value is ready to use.
//
// An arena built with NewArenaLimit is additionally size-capped: instead of
// the GC-emptied sync.Pool it keeps an exact-accounted LIFO free list, so a
// server-level arena shared across jobs holds at most maxBytes of retained
// partition buffers and sheds the rest to the garbage collector.
type Arena struct {
	parts   sync.Pool
	scratch sync.Pool

	// Bounded mode (limit > 0): mu guards the free list and its byte count.
	limit     int64
	mu        sync.Mutex
	free      []*Stripped
	freeBytes int64
	dropped   uint64
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// NewArenaLimit returns an arena whose retained partition buffers never
// exceed maxBytes; Recycle calls past the cap drop the partition instead.
// maxBytes <= 0 degenerates to an unbounded NewArena.
func NewArenaLimit(maxBytes int64) *Arena {
	if maxBytes < 0 {
		maxBytes = 0
	}
	return &Arena{limit: maxBytes}
}

// Product computes p · q into a partition drawn from the arena, using pooled
// scratch. The result must be returned with Recycle once unreferenced for
// the arena to reuse its buffers.
func (a *Arena) Product(p, q *Stripped) *Stripped {
	s := a.GetScratch()
	out := a.GetStripped()
	p.ProductInto(q, s, out)
	a.PutScratch(s)
	return out
}

// GetStripped returns a recycled (or fresh) partition whose buffers are
// reused by ProductInto.
func (a *Arena) GetStripped() *Stripped {
	if a.limit > 0 {
		a.mu.Lock()
		if n := len(a.free); n > 0 {
			p := a.free[n-1]
			a.free[n-1] = nil
			a.free = a.free[:n-1]
			a.freeBytes -= p.MemBytes()
			a.mu.Unlock()
			return p
		}
		a.mu.Unlock()
		return &Stripped{}
	}
	if v := a.parts.Get(); v != nil {
		return v.(*Stripped)
	}
	return &Stripped{}
}

// Recycle returns a partition to the arena. The caller must not use p (or
// any Class view into it) afterwards. Shared partitions (Share) are never
// reclaimed — other jobs may still be reading them — and a bounded arena
// drops partitions that would push it past its byte cap.
func (a *Arena) Recycle(p *Stripped) {
	if p == nil || p.IsShared() {
		return
	}
	if a.limit > 0 {
		b := p.MemBytes()
		a.mu.Lock()
		if a.freeBytes+b > a.limit {
			a.dropped++
			a.mu.Unlock()
			return
		}
		a.free = append(a.free, p)
		a.freeBytes += b
		a.mu.Unlock()
		return
	}
	a.parts.Put(p)
}

// RetainedBytes reports the bytes currently held on a bounded arena's free
// list (always 0 for an unbounded arena, whose sync.Pool is GC-managed).
func (a *Arena) RetainedBytes() int64 {
	if a.limit == 0 {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.freeBytes
}

// GetScratch returns a recycled (or fresh) product scratch.
func (a *Arena) GetScratch() *ProductScratch {
	if v := a.scratch.Get(); v != nil {
		return v.(*ProductScratch)
	}
	return &ProductScratch{}
}

// PutScratch returns scratch to the arena.
func (a *Arena) PutScratch(s *ProductScratch) {
	if s != nil {
		a.scratch.Put(s)
	}
}

// defaultArena backs the convenience Product and Refines entry points.
var defaultArena Arena
