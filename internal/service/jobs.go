package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"aod"
	"aod/internal/telemetry"
)

// JobState is the lifecycle state of a discovery job.
type JobState string

const (
	// JobQueued: accepted, waiting for a worker.
	JobQueued JobState = "queued"
	// JobRunning: a worker is validating (or waiting on an identical
	// in-flight run).
	JobRunning JobState = "running"
	// JobDone: completed with a report.
	JobDone JobState = "done"
	// JobFailed: completed with an error.
	JobFailed JobState = "failed"
	// JobCanceled: canceled before or during the run.
	JobCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// ErrQueueFull is returned by Submit when the job queue is saturated —
// the service's backpressure signal (HTTP 503).
var ErrQueueFull = errors.New("service: job queue is full")

// ErrNoJob is returned when a job id is unknown.
var ErrNoJob = errors.New("service: no such job")

// ErrJobFinished is returned by Cancel on a job already in a terminal state.
var ErrJobFinished = errors.New("service: job already finished")

// ErrInvalidOptions is returned by Submit when the options fail validation
// against the target dataset's schema (HTTP 400).
var ErrInvalidOptions = errors.New("service: invalid options")

// Job is one discovery submission moving through the lifecycle
// queued → running → done | failed | canceled.
type Job struct {
	id        string
	datasetID string
	opts      aod.Options
	key       string
	ctx       context.Context
	cancel    context.CancelFunc
	// seq is the admission sequence number — the priority queue's tie-break,
	// so equal-cost jobs stay FIFO. heapIdx is maintained by jobHeap while
	// the job is queued (-1 otherwise).
	seq     uint64
	heapIdx int
	// trace records the job's span tree (GET /jobs/{id}/trace); rootSpan is
	// the job-lifetime span, queueSpan covers admission → worker pickup.
	// initialCost is the admission work estimate, frozen for latency
	// classification (j.cost is refined downward while running).
	trace       *telemetry.Trace
	rootSpan    *telemetry.ActiveSpan
	queueSpan   *telemetry.ActiveSpan
	initialCost int64

	mu       sync.Mutex
	state    JobState
	waiting  bool // running, but parked on an identical in-flight run (no worker held)
	cacheHit bool
	err      error
	report   *aod.Report
	created  time.Time
	started  time.Time
	finished time.Time
	// cost is the scheduler's work estimate: rows × cols × levels at
	// submission, refined down to the remaining work by each level snapshot
	// while running (it is never read by the queue after the job leaves it).
	cost int64
	// partial and progress hold the latest level snapshot of a running job;
	// subs are the live stream subscribers (see stream.go).
	partial  *aod.Report
	progress *aod.Progress
	subs     []chan StreamEvent
}

// JobView is the JSON-serializable snapshot of a job.
type JobView struct {
	ID        string `json:"id"`
	DatasetID string `json:"datasetId"`
	// Options are the job's effective options: server-side normalization
	// (parallelism clamped to the host, no-op MaxLevel folded to 0) is
	// reflected here, so the view shows what actually runs.
	Options aod.Options `json:"options"`
	State   JobState    `json:"state"`
	// CacheHit marks a job served from the result cache or an identical
	// in-flight run, without a validation run of its own.
	CacheHit   bool       `json:"cacheHit"`
	Error      string     `json:"error,omitempty"`
	CreatedAt  time.Time  `json:"createdAt"`
	StartedAt  *time.Time `json:"startedAt,omitempty"`
	FinishedAt *time.Time `json:"finishedAt,omitempty"`
	// CostEstimate is the scheduler's current work estimate (rows × cols ×
	// levels still to explore): the submission estimate while queued, shrinking
	// per completed level while running, 0 once terminal.
	CostEstimate int64 `json:"costEstimate,omitempty"`
	// Progress and Partial expose the latest completed-level snapshot of a
	// running job: Partial is a coherent report of every dependency found in
	// the levels processed so far. Both are nil before the first level
	// completes and on terminal jobs (whose Report is authoritative).
	Progress *aod.Progress `json:"progress,omitempty"`
	Partial  *aod.Report   `json:"partial,omitempty"`
	Report   *aod.Report   `json:"report,omitempty"`
}

// view snapshots the job; the report is attached only when requested (job
// listings stay light).
func (j *Job) view(includeReport bool) JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:        j.id,
		DatasetID: j.datasetID,
		Options:   j.opts,
		State:     j.state,
		CacheHit:  j.cacheHit,
		CreatedAt: j.created,
	}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	if !j.started.IsZero() {
		t := j.started
		v.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.FinishedAt = &t
	}
	if !j.state.Terminal() {
		v.CostEstimate = j.cost
	}
	if includeReport && j.state == JobDone {
		v.Report = j.report
	}
	if includeReport && j.state == JobRunning {
		v.Progress = j.progress
		v.Partial = j.partial
	}
	return v
}

// errNoJobf wraps ErrNoJob with the offending id.
func errNoJobf(id string) error {
	return fmt.Errorf("%w: %q", ErrNoJob, id)
}

// Submit queues a discovery job for the registered dataset and returns its
// initial view. It never blocks: a saturated queue fails fast with
// ErrQueueFull so callers can apply backpressure upstream.
func (s *Service) Submit(datasetID string, opts aod.Options) (JobView, error) {
	// Draining is checked before anything else: an unready replica answers
	// every submission with the same 503, not a mix of 404s and 503s
	// depending on what it still has registered.
	if s.Draining() {
		return JobView{}, ErrDraining
	}
	// Info, not Get: validation needs only the schema, so a submission must
	// not force a disk-evicted payload back into memory — the worker loads
	// it when the job actually runs.
	info, err := s.registry.Info(datasetID)
	if err != nil {
		return JobView{}, err
	}
	// Reject invalid configurations up front — this also guarantees every
	// cache/flight key corresponds to a runnable configuration, so jobs
	// sharing a key genuinely share an outcome.
	if err := opts.Validate(info.Cols); err != nil {
		return JobView{}, fmt.Errorf("%w: %v", ErrInvalidOptions, err)
	}
	// Clamp client-supplied parallelism to the host: one request must not be
	// able to spawn an unbounded number of goroutines.
	if maxPar := runtime.GOMAXPROCS(0); opts.Parallelism > maxPar {
		opts.Parallelism = maxPar
	}
	// A MaxLevel at or beyond the column count is no bound at all — fold it
	// to 0 so provably identical configurations share one cache/flight key.
	if opts.MaxLevel >= info.Cols {
		opts.MaxLevel = 0
	}
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		datasetID: datasetID,
		opts:      opts,
		key:       cacheKey(info.Fingerprint, opts),
		ctx:       ctx,
		cancel:    cancel,
		heapIdx:   -1,
		state:     JobQueued,
		created:   time.Now().UTC(),
		// The scheduler's size estimate: small jobs overtake large ones in
		// the priority queue from the moment they are admitted.
		cost: aod.EstimateWork(info.Rows, info.Cols, opts.MaxLevel),
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		cancel()
		return JobView{}, ErrClosed
	}
	if s.cfg.QueueDepth > 0 && s.pending.Len() >= s.cfg.QueueDepth {
		s.mu.Unlock()
		cancel()
		return JobView{}, ErrQueueFull
	}
	s.nextID++
	j.id = fmt.Sprintf("job-%d", s.nextID)
	j.seq = s.nextID
	j.initialCost = j.cost
	j.trace = telemetry.NewTrace(j.id)
	j.rootSpan = j.trace.Start(0, "job")
	j.queueSpan = j.trace.StartUnder(j.rootSpan, "queue-wait")
	// Incremented before the queue push makes the job runnable: a worker can
	// otherwise complete the job (incrementing the done counter) before the
	// submitted counter moves, and a concurrent Stats() snapshot would count
	// more terminal jobs than submitted ones.
	s.met.jobsSubmitted.Inc()
	s.pending.push(j)
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.pruneHistoryLocked()
	s.notEmpty.Signal()
	s.mu.Unlock()

	return j.view(false), nil
}

// pruneHistoryLocked evicts the oldest terminal job records (and their
// reports) while over the MaxJobHistory bound, so an always-on server's job
// history cannot grow without limit. Live (queued/running) jobs are never
// evicted. The scan stops as soon as the excess is consumed — in the steady
// state (oldest job terminal, excess 1) that is a single step, keeping
// Submit O(1). Caller holds s.mu.
func (s *Service) pruneHistoryLocked() {
	if s.cfg.MaxJobHistory <= 0 || len(s.jobs) <= s.cfg.MaxJobHistory {
		return
	}
	excess := len(s.jobs) - s.cfg.MaxJobHistory
	var keptLive []string
	i := 0
	for ; i < len(s.order) && excess > 0; i++ {
		id := s.order[i]
		j := s.jobs[id]
		j.mu.Lock()
		terminal := j.state.Terminal()
		j.mu.Unlock()
		if terminal {
			delete(s.jobs, id)
			excess--
		} else {
			keptLive = append(keptLive, id)
		}
	}
	if len(keptLive) == 0 {
		s.order = s.order[i:]
		return
	}
	s.order = append(keptLive, s.order[i:]...)
}

// Job returns the current view of the job, including its report once done.
func (s *Service) Job(id string) (JobView, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobView{}, errNoJobf(id)
	}
	return j.view(true), nil
}

// Jobs lists all jobs in submission order, without reports.
func (s *Service) Jobs() []JobView {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]JobView, len(jobs))
	for i, j := range jobs {
		out[i] = j.view(false)
	}
	return out
}

// Cancel cancels the job. A queued job is finalized immediately; a running
// job has its context canceled and reaches the canceled state as soon as the
// discovery engine observes it (within one validation's latency), freeing
// the worker. Canceling a finished job returns ErrJobFinished.
func (s *Service) Cancel(id string) (JobView, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobView{}, errNoJobf(id)
	}
	j.mu.Lock()
	switch {
	case j.state.Terminal():
		j.mu.Unlock()
		return j.view(true), ErrJobFinished
	case j.state == JobQueued:
		j.state = JobCanceled
		j.finished = time.Now().UTC()
		j.closeSubsLocked()
		s.met.jobsCanceled.Inc()
		j.endSpansLocked()
		j.mu.Unlock()
		// Remove the job from the pending queue immediately so canceled
		// jobs free their slot (and stop exerting backpressure) without
		// waiting for a worker to drain them.
		s.mu.Lock()
		s.pending.remove(j)
		s.mu.Unlock()
	case j.waiting:
		// Parked on an in-flight run with no worker attached: finalize here;
		// the flight leader skips already-terminal waiters when settling.
		j.state = JobCanceled
		j.finished = time.Now().UTC()
		j.closeSubsLocked()
		s.met.jobsCanceled.Inc()
		j.endSpansLocked()
		j.mu.Unlock()
	default:
		j.mu.Unlock()
	}
	j.cancel()
	return j.view(false), nil
}

// worker drains the pending queue — cheapest job first — until Close
// empties it.
func (s *Service) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for s.pending.Len() == 0 && !s.closed {
			s.notEmpty.Wait()
		}
		j := s.pending.pop()
		s.mu.Unlock()
		if j == nil { // closed and drained
			return
		}
		s.runJob(j)
	}
}

// errParked is compute's sentinel: the job was registered as a waiter on an
// identical in-flight run and released its worker; the flight leader will
// finalize it in settleWaiter.
var errParked = errors.New("service: job parked on in-flight run")

// endSpansLocked closes the job's queue and root spans at a terminal
// transition (idempotent — End is once-only). Caller holds j.mu.
func (j *Job) endSpansLocked() {
	j.queueSpan.End()
	j.rootSpan.End()
}

// observeJobLatency records the job's end-to-end latency in the class
// histogram: cache hits separately from validation runs, which split into
// small and large by the admission cost estimate.
func (s *Service) observeJobLatency(j *Job, cacheHit bool, d time.Duration) {
	switch {
	case cacheHit:
		s.met.latCacheHit.Observe(d)
	case j.initialCost < SmallJobCost:
		s.met.latSmall.Observe(d)
	default:
		s.met.latLarge.Observe(d)
	}
}

// runJob drives one job through running to a terminal state.
func (s *Service) runJob(j *Job) {
	j.mu.Lock()
	if j.state != JobQueued { // canceled while waiting
		j.mu.Unlock()
		return
	}
	j.state = JobRunning
	j.started = time.Now().UTC()
	s.met.queueWait.Observe(j.started.Sub(j.created))
	j.queueSpan.End()
	j.mu.Unlock()

	s.met.inFlight.Add(1)
	rep, fromCache, err := s.compute(j)
	s.met.inFlight.Add(-1)
	if err == errParked {
		return // the worker is free; the flight leader finalizes the job
	}

	j.mu.Lock()
	j.finished = time.Now().UTC()
	switch {
	case j.ctx.Err() != nil || (err == nil && rep.Stats.Canceled):
		// The submitter canceled: the partial result is discarded. (A
		// cache/flight hit that raced the cancel still cancels — the user's
		// intent wins over the free result.)
		j.state = JobCanceled
		s.met.jobsCanceled.Inc()
	case err != nil:
		j.state = JobFailed
		j.err = err
		s.met.jobsFailed.Inc()
	default:
		j.state = JobDone
		j.report = rep
		j.cacheHit = fromCache
		s.met.jobsDone.Inc()
		s.observeJobLatency(j, fromCache, j.finished.Sub(j.created))
	}
	j.closeSubsLocked()
	j.endSpansLocked()
	j.mu.Unlock()
	j.cancel() // release the context's resources
}

// flight is one in-progress validation run. Identical concurrent jobs park
// on it as waiters — releasing their workers — and are settled by the
// leader when the run finishes.
type flight struct {
	rep *aod.Report
	err error
	// shareable marks a complete result (or deterministic error) that
	// waiters may adopt; canceled/timed-out partials are not shareable and
	// waiters are requeued.
	shareable bool
	waiters   []*Job
}

// compute produces the job's report: from the result cache, or by validating
// as a flight leader. A job that finds an identical run already in flight
// parks on it (returning errParked) instead of blocking its worker. The
// boolean reports whether the result arrived without a validation run of its
// own — the service-level definition of a cache hit.
func (s *Service) compute(j *Job) (*aod.Report, bool, error) {
	// Cache before payload: j.key was derived at Submit from metadata
	// alone, so a hit — memory or persisted report store — is served
	// without paging the (possibly disk-evicted, possibly even corrupt)
	// dataset payload into memory at all.
	lookup := j.trace.StartUnder(j.rootSpan, "cache-lookup")
	rep, ok := s.cache.get(j.key)
	lookup.Attr("hit", boolAttr(ok))
	lookup.End()
	if ok {
		s.met.cacheHits.Inc()
		return rep, true, nil
	}
	load := j.trace.StartUnder(j.rootSpan, "dataset-load")
	ds, _, err := s.registry.Get(j.datasetID)
	load.End()
	if err != nil {
		return nil, false, err
	}
	s.mu.Lock()
	if f, inFlight := s.flights[j.key]; inFlight {
		if j.opts.TimeLimit > 0 {
			// A time-limited job must honor its own deadline, which the
			// in-flight run does not know about: run independently instead
			// of parking (its complete result is still shared via the
			// cache, keyed without the limit).
			s.mu.Unlock()
			rep, err := s.validate(j, ds)
			return rep, false, err
		}
		f.waiters = append(f.waiters, j)
		j.mu.Lock()
		j.waiting = true
		j.mu.Unlock()
		// Incremented before s.mu is released: the leader could otherwise
		// settle (and decrement for) this waiter first, sending the gauge
		// negative.
		s.met.waiting.Add(1)
		s.mu.Unlock()
		return nil, false, errParked
	}
	// Re-check the cache under the lock: between the miss above and here
	// the previous leader may have published its result and retired its
	// flight. Memory tier only — no disk I/O while holding s.mu (the disk
	// tier was already probed by the miss above).
	if rep, ok := s.cache.getMem(j.key); ok {
		s.mu.Unlock()
		s.met.cacheHits.Inc()
		return rep, true, nil
	}
	f := &flight{}
	s.flights[j.key] = f
	s.mu.Unlock()

	// Leader: before paying for a validation run, ask the peer replicas for
	// the key — a router failover or rebalance may have landed a job whose
	// report another replica already computed. An adopted report is a cache
	// hit in every sense that matters (no validation run, written through to
	// the local cache so the next identical job is answered here), which is
	// the idempotency contract the front door's retry policy leans on.
	fromPeer := false
	if peerRep, ok := s.peerFetch(j); ok {
		s.cache.put(j.key, peerRep)
		s.met.cacheHits.Inc()
		s.met.peerHits.Inc()
		rep, err, fromPeer = peerRep, nil, true
	} else {
		// The one validation run for the key while the flight lives.
		rep, err = s.validate(j, ds)
	}
	f.rep, f.err = rep, err
	f.shareable = err != nil || (!rep.Stats.Canceled && !rep.Stats.TimedOut)
	s.mu.Lock()
	delete(s.flights, j.key)
	waiters := f.waiters
	f.waiters = nil
	s.mu.Unlock()
	for _, w := range waiters {
		s.settleWaiter(w, f)
	}
	return rep, fromPeer, err
}

// executorChoice names the three execution tiers the adaptive router picks
// between. They are result-identical (the executor equivalence contract);
// only latency differs with job size.
type executorChoice int

const (
	execSerial executorChoice = iota
	execPool
	execSharded
)

// pickExecutor routes a validation run to the executor its admission work
// estimate (rows × cols × levels) predicts is fastest: serial for tiny jobs
// where any fan-out is pure overhead, the in-process pool for the mid-range,
// and the shard pool past ShardCostMin where columnar shipping amortizes.
// Jobs asking for explicit Parallelism > 1 are never downgraded to serial,
// and with DisableAdaptive the pre-adaptive routing applies (sharded iff a
// pool is configured, otherwise the job's own Parallelism decides).
func (s *Service) pickExecutor(j *Job) executorChoice {
	if s.cfg.DisableAdaptive {
		if s.cfg.ShardPool != nil {
			return execSharded
		}
		if j.opts.Parallelism > 1 {
			return execPool
		}
		return execSerial
	}
	cost := j.initialCost
	if s.cfg.ShardPool != nil && cost >= s.cfg.ShardCostMin {
		return execSharded
	}
	if cost > s.cfg.SerialCostMax || j.opts.Parallelism > 1 {
		return execPool
	}
	return execSerial
}

// warmFor assembles the job's warm state: the shared partition arena plus —
// when the partition cache is enabled — the dataset's prepared partitions,
// cached by content fingerprint. On a miss the partitions are prepared here
// (the same work a cold run would do at startup, paid once) and admitted for
// every later job over the same content. The boolean reports a cache hit —
// the job about to run will skip cold-start partitioning entirely.
func (s *Service) warmFor(j *Job, ds *aod.Dataset) (aod.Warm, bool) {
	var warm aod.Warm
	if s.arena != nil {
		warm.Arena = s.arena
	}
	if s.prepared == nil {
		return warm, false
	}
	info, err := s.registry.Info(j.datasetID)
	if err != nil {
		return warm, false // deregistered mid-run: run cold
	}
	if p, ok := s.prepared.get(info.Fingerprint); ok {
		s.met.partitionHits.Inc()
		warm.Prepared = p
		return warm, true
	}
	s.met.partitionMisses.Inc()
	p := ds.Prepare()
	s.prepared.put(info.Fingerprint, p)
	warm.Prepared = p
	return warm, false
}

// validate runs discovery for the job — publishing a partial report and a
// progress event at every level boundary — updating the run counters and
// publishing complete results to the cache.
func (s *Service) validate(j *Job, ds *aod.Dataset) (*aod.Report, error) {
	s.met.cacheMisses.Inc()
	s.met.validationRuns.Inc()
	if gate := s.cfg.runGate; gate != nil {
		gate(j)
	}
	onLevel := func(p aod.Progress, partial *aod.Report) {
		s.met.levelValid.Observe(p.LevelValidation)
		j.publishProgress(p, partial)
		if hook := s.cfg.levelHook; hook != nil {
			hook(j)
		}
	}
	// Warm state before the discover span: a prepared-partition cache hit
	// means the run skips cold-start partitioning; a miss pays it here once,
	// for every later job over the same content. The prepared copy
	// substitutes for the registry's dataset object — equal fingerprints
	// guarantee identical results, so the swap is invisible to callers.
	prepSpan := j.trace.StartUnder(j.rootSpan, "prepare-partitions")
	warm, warmHit := s.warmFor(j, ds)
	if warm.Prepared != nil {
		ds = warm.Prepared.Dataset()
	}
	prepSpan.Attr("partitionWarm", boolAttr(warmHit))
	prepSpan.End()
	// The discovery pipeline picks the trace up from the context and parents
	// its partition-build and per-level spans (and, under a shard pool, the
	// per-slice RPC and stitched worker spans) beneath this one.
	span := j.trace.StartUnder(j.rootSpan, "discover")
	ctx := telemetry.NewContext(j.ctx, j.trace, span.ID())
	// All executors are result-identical by the executor equivalence
	// contract, so cache keys and in-flight dedup need not know which one
	// ran the job — the router trades only latency, never answers. The warm
	// state holds for all three tiers: the sharded coordinator folds and
	// ships from the same prepared singles a local run validates against.
	var rep *aod.Report
	var err error
	switch s.pickExecutor(j) {
	case execSharded:
		s.met.routedSharded.Inc()
		opts := j.opts
		if opts.ShardWorkQuantum == 0 {
			opts.ShardWorkQuantum = s.cfg.ShardWorkQuantum
		}
		rep, err = aod.DiscoverWarmStreamContext(ctx, ds, opts, warm, s.cfg.ShardPool, onLevel)
	case execPool:
		s.met.routedPool.Inc()
		opts := j.opts
		if opts.Parallelism <= 1 {
			opts.Parallelism = runtime.GOMAXPROCS(0)
		}
		rep, err = aod.DiscoverWarmStreamContext(ctx, ds, opts, warm, nil, onLevel)
	default:
		s.met.routedSerial.Inc()
		opts := j.opts
		opts.Parallelism = 0
		rep, err = aod.DiscoverWarmStreamContext(ctx, ds, opts, warm, nil, onLevel)
	}
	span.End()
	if err == nil && !rep.Stats.Canceled && !rep.Stats.TimedOut {
		s.met.validationNs.Add(uint64(rep.Stats.ValidationTime))
		s.met.discoveryNs.Add(uint64(rep.Stats.TotalTime))
		// Publish to the cache before retiring the flight (in the leader
		// path) so a new arrival always finds one of the two.
		s.cache.put(j.key, rep)
	}
	return rep, err
}

// settleWaiter finalizes a job that parked on the finished flight: adopt a
// shareable outcome as a cache hit, or requeue (at the front) for a fresh
// attempt when the leader was canceled or timed out. Already-terminal
// waiters (canceled while parked) are left as they are.
func (s *Service) settleWaiter(w *Job, f *flight) {
	s.met.waiting.Add(-1)
	w.mu.Lock()
	if w.state.Terminal() {
		w.mu.Unlock()
		return
	}
	w.waiting = false
	if w.ctx.Err() != nil {
		w.state = JobCanceled
		w.finished = time.Now().UTC()
		w.closeSubsLocked()
		w.endSpansLocked()
		w.mu.Unlock()
		s.met.jobsCanceled.Inc()
		return
	}
	if !f.shareable {
		w.state = JobQueued
		w.mu.Unlock()
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			w.mu.Lock()
			w.state = JobCanceled
			w.finished = time.Now().UTC()
			w.closeSubsLocked()
			w.endSpansLocked()
			w.mu.Unlock()
			s.met.jobsCanceled.Inc()
			return
		}
		// Requeued with its original admission seq and cost: among equal-cost
		// jobs the waiter still precedes everything admitted after it.
		s.pending.push(w)
		s.notEmpty.Signal()
		s.mu.Unlock()
		return
	}
	w.finished = time.Now().UTC()
	if f.err != nil {
		// Deterministic config error — identical for any job with this key.
		w.state = JobFailed
		w.err = f.err
		w.closeSubsLocked()
		w.endSpansLocked()
		w.mu.Unlock()
		s.met.jobsFailed.Inc()
	} else {
		w.state = JobDone
		w.report = f.rep
		w.cacheHit = true
		w.closeSubsLocked()
		w.endSpansLocked()
		s.observeJobLatency(w, true, w.finished.Sub(w.created))
		w.mu.Unlock()
		s.met.jobsDone.Inc()
		s.met.cacheHits.Inc()
	}
	w.cancel()
}

// boolAttr renders a boolean as a span attribute value.
func boolAttr(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// JobTrace returns the job's span tree — the GET /jobs/{id}/trace body.
// Spans still open (a running job's discover span, say) are absent until
// they finish; committed children of open spans surface as roots.
func (s *Service) JobTrace(id string) (telemetry.TraceJSON, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return telemetry.TraceJSON{}, errNoJobf(id)
	}
	return j.trace.Tree(), nil
}
