// Command aodrouter fronts a fleet of replicated aodservers: a thin,
// effectively stateless HTTP proxy that hash-routes work across replicas by
// dataset content fingerprint, probes replica health, retries with jittered
// exponential backoff, fails jobs over to surviving replicas mid-stream,
// and sheds load per tenant with honest Retry-After hints.
//
// Usage:
//
//	aodrouter -replicas http://h1:8711,http://h2:8711 [-addr :8710]
//	          [-max-attempts N] [-retry-budget D] [-attempt-timeout D]
//	          [-backoff D] [-backoff-max D]
//	          [-seed N] [-probe-interval D] [-max-queue-age D]
//	          [-rate R -burst B] [-quota "tenant=rate:burst,..."]
//	          [-max-upload BYTES] [-fault-plan FILE.json]
//
// Replication contract: point every replica at its siblings with the
// aodserver -peers flag, so a report computed on one replica is served from
// any. The router replicates dataset uploads to all replicas itself.
//
// Admission: clients name their tenant in the X-AOD-Tenant header. -rate /
// -burst set the default token-bucket quota (0 = unlimited); -quota
// overrides per tenant, e.g. -quota "batch=2:5,interactive=50:100".
//
// -fault-plan loads a deterministic fault-injection plan (JSON; see
// internal/router.FaultPlan) applied to every backend RPC — the chaos
// harness used by the CI chaos job, not a production flag.
//
// Endpoints mirror aodserver's API one-for-one (job ids gain an "r<i>."
// replica prefix), plus GET /routerz for per-replica health and GET /metrics
// for aod_router_* telemetry.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"aod/internal/router"
	"aod/internal/service"
)

func main() {
	addr := flag.String("addr", ":8710", "listen address (host:port; port 0 picks an ephemeral port)")
	replicasFlag := flag.String("replicas", "", "comma-separated aodserver base URLs (required)")
	maxAttempts := flag.Int("max-attempts", 0, "total tries per proxied call (0 = 2×replicas, min 3)")
	retryBudget := flag.Duration("retry-budget", 15*time.Second, "wall-clock bound across one call's retries")
	attemptTimeout := flag.Duration("attempt-timeout", 15*time.Second, "per-attempt deadline on non-streaming backend calls")
	backoff := flag.Duration("backoff", 25*time.Millisecond, "base retry backoff (doubles per retry, jittered)")
	backoffMax := flag.Duration("backoff-max", time.Second, "retry backoff cap")
	seed := flag.Int64("seed", 1, "seed for the deterministic backoff jitter")
	probeInterval := flag.Duration("probe-interval", 500*time.Millisecond, "active /healthz probe cadence")
	maxQueueAge := flag.Duration("max-queue-age", 0, "shed submits when every healthy replica's oldest queued job is older than this (0 disables)")
	rate := flag.Float64("rate", 0, "default tenant quota: sustained submits/second (0 = unlimited)")
	burst := flag.Float64("burst", 0, "default tenant quota: burst size (0 = rate)")
	quotaFlag := flag.String("quota", "", `per-tenant quotas, "tenant=rate:burst,..." (overrides -rate/-burst)`)
	maxUpload := flag.Int64("max-upload", service.DefaultMaxUploadBytes, "maximum dataset upload size in bytes")
	faultPlanPath := flag.String("fault-plan", "", "deterministic fault-injection plan JSON (chaos harness; empty disables)")
	flag.Parse()

	var replicas []string
	for _, rp := range strings.Split(*replicasFlag, ",") {
		if rp = strings.TrimSpace(rp); rp != "" {
			replicas = append(replicas, rp)
		}
	}
	if len(replicas) == 0 {
		fmt.Fprintln(os.Stderr, "aodrouter: -replicas is required (comma-separated aodserver base URLs)")
		os.Exit(2)
	}

	quotas, err := parseQuotas(*quotaFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aodrouter:", err)
		os.Exit(2)
	}
	def := router.TenantQuota{Rate: *rate, Burst: *burst}
	if def.Rate > 0 && def.Burst <= 0 {
		def.Burst = def.Rate
	}

	var plan *router.FaultPlan
	if *faultPlanPath != "" {
		if plan, err = router.LoadFaultPlan(*faultPlanPath); err != nil {
			fmt.Fprintln(os.Stderr, "aodrouter:", err)
			os.Exit(2)
		}
	}

	rt, err := router.New(router.Config{
		Replicas:       replicas,
		MaxAttempts:    *maxAttempts,
		RetryBudget:    *retryBudget,
		AttemptTimeout: *attemptTimeout,
		BackoffBase:    *backoff,
		BackoffMax:     *backoffMax,
		Seed:           *seed,
		ProbeInterval:  *probeInterval,
		MaxQueueAge:    *maxQueueAge,
		DefaultQuota:   def,
		Quotas:         quotas,
		MaxUploadBytes: *maxUpload,
		Fault:          plan,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "aodrouter: "+format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "aodrouter:", err)
		os.Exit(2)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aodrouter:", err)
		os.Exit(1)
	}
	fmt.Printf("aodrouter listening on %s (%d replicas)\n", ln.Addr(), len(replicas))
	for i, rp := range replicas {
		fmt.Printf("aodrouter replica r%d: %s\n", i, rp)
	}
	if plan != nil {
		fmt.Printf("aodrouter fault plan: %d rules from %s\n", len(plan.Rules), *faultPlanPath)
	}

	srv := &http.Server{Handler: rt, ReadHeaderTimeout: 10 * time.Second}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		// The router is stateless: shutting down is just letting in-flight
		// proxied requests (streams included) drain briefly.
		fmt.Printf("aodrouter: %s — shutting down\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "aodrouter: shutdown:", err)
		}
		rt.Close()
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "aodrouter:", err)
			rt.Close()
			os.Exit(1)
		}
	}
}

// parseQuotas parses "tenant=rate:burst,..." ("tenant=rate" defaults burst
// to rate).
func parseQuotas(s string) (map[string]router.TenantQuota, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	out := make(map[string]router.TenantQuota)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, spec, ok := strings.Cut(part, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf(`-quota: %q is not "tenant=rate:burst"`, part)
		}
		rateStr, burstStr, hasBurst := strings.Cut(spec, ":")
		rate, err := strconv.ParseFloat(rateStr, 64)
		if err != nil {
			return nil, fmt.Errorf("-quota: tenant %s: bad rate %q", name, rateStr)
		}
		q := router.TenantQuota{Rate: rate, Burst: rate}
		if hasBurst {
			if q.Burst, err = strconv.ParseFloat(burstStr, 64); err != nil {
				return nil, fmt.Errorf("-quota: tenant %s: bad burst %q", name, burstStr)
			}
		}
		out[name] = q
	}
	return out, nil
}
