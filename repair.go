package aod

import (
	"aod/internal/repair"
	"aod/internal/validate"
)

// Repair is a suggested fix for one tuple flagged by an approximate order
// compatibility: replacing the tuple's B-value with any value in [Lo, Hi]
// makes it consistent with the kept tuples of its group. Empty Lo/Hi mean
// the interval is unbounded on that side.
type Repair struct {
	// Row is the flagged tuple.
	Row int
	// Column is the right-side column whose value the suggestion targets.
	Column string
	// Current is the tuple's current value (display form).
	Current string
	// Lo and Hi bound the consistent value range (display form; inclusive).
	Lo, Hi string
}

// SuggestRepairs validates the AOC "context: a ∼ b" with the optimal
// validator and returns one repair suggestion per tuple of the minimal
// removal set — the error-repair workflow of the paper's Fig. 1 (after [7]).
func SuggestRepairs(d *Dataset, context []string, a, b string) ([]Repair, error) {
	ca, cb, ctx, err := resolve(d, context, a, b)
	if err != nil {
		return nil, err
	}
	v := validate.New()
	r := v.OptimalAOC(ctx, d.table().Column(ca), d.table().Column(cb),
		validate.Options{Threshold: 1, CollectRemovals: true})
	sugs := repair.ForOC(d.table(), ctx, ca, cb, r.RemovalRows)
	out := make([]Repair, 0, len(sugs))
	bcol := d.table().Column(cb)
	for _, s := range sugs {
		rep := Repair{
			Row:     int(s.Row),
			Column:  b,
			Current: bcol.ValueString(int(s.Row)),
		}
		if s.LoRow >= 0 {
			rep.Lo = bcol.ValueString(int(s.LoRow))
		}
		if s.HiRow >= 0 {
			rep.Hi = bcol.ValueString(int(s.HiRow))
		}
		out = append(out, rep)
	}
	return out, nil
}

// Suspect is a row flagged by the removal sets of multiple discovered
// dependencies.
type Suspect struct {
	// Row is the flagged tuple.
	Row int
	// Hits is the number of dependencies whose minimal removal set contains
	// the row.
	Hits int
}

// Suspects ranks rows by how many discovered dependencies flag them as
// exceptions — the outlier-detection workflow of the paper's Fig. 1. The
// report must have been produced with Options.CollectRemovalSets; rows with
// fewer than minHits flags are dropped.
func Suspects(rep *Report, minHits int) []Suspect {
	var sets [][]int32
	for _, oc := range rep.OCs {
		sets = append(sets, toInt32s(oc.RemovalRows))
	}
	for _, ofd := range rep.OFDs {
		sets = append(sets, toInt32s(ofd.RemovalRows))
	}
	var out []Suspect
	for _, s := range repair.Suspicions(sets) {
		if s.Hits >= minHits {
			out = append(out, Suspect{Row: int(s.Row), Hits: s.Hits})
		}
	}
	return out
}

func toInt32s(rows []int) []int32 {
	out := make([]int32, len(rows))
	for i, r := range rows {
		out[i] = int32(r)
	}
	return out
}
