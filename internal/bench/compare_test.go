package bench

import (
	"strings"
	"testing"
)

func TestCompareReports(t *testing.T) {
	base := JSONReport{Schema: JSONSchema, Results: []JSONResult{
		{Name: "a", NsPerOp: 100},
		{Name: "b", NsPerOp: 100},
		{Name: "gone", NsPerOp: 100},
		{Name: "zero", NsPerOp: 0},
	}}
	cur := JSONReport{Schema: JSONSchema, Results: []JSONResult{
		{Name: "a", NsPerOp: 115}, // +15%: within tolerance
		{Name: "b", NsPerOp: 130}, // +30%: regression
		{Name: "new", NsPerOp: 1}, // only in current: ignored
		{Name: "zero", NsPerOp: 50},
	}}
	regs, notes := CompareReports(base, cur, 0.20)
	if len(regs) != 1 || !strings.Contains(regs[0], "b:") {
		t.Errorf("regressions = %v, want exactly workload b", regs)
	}
	if len(notes) != 1 || !strings.Contains(notes[0], "gone") {
		t.Errorf("notes = %v, want the missing-workload note", notes)
	}
	if regs, _ := CompareReports(base, cur, 0.35); len(regs) != 0 {
		t.Errorf("at 35%% tolerance want no regressions, got %v", regs)
	}
}

func TestCompareReportsExactBoundary(t *testing.T) {
	base := JSONReport{Schema: JSONSchema, Results: []JSONResult{{Name: "a", NsPerOp: 100}}}
	cur := JSONReport{Schema: JSONSchema, Results: []JSONResult{{Name: "a", NsPerOp: 120}}}
	// Exactly +20% is within a 0.20 tolerance (fail only past it).
	if regs, _ := CompareReports(base, cur, 0.20); len(regs) != 0 {
		t.Errorf("+20%% at 0.20 tolerance must pass, got %v", regs)
	}
}

func TestCompareReportsGatesP99(t *testing.T) {
	base := JSONReport{Schema: JSONSchema, Results: []JSONResult{
		{Name: "load-small/client", NsPerOp: 100, P99NsPerOp: 1000},
		{Name: "load-large/client", NsPerOp: 100, P99NsPerOp: 1000},
		{Name: "median-only", NsPerOp: 100}, // no tail recorded in baseline
	}}
	cur := JSONReport{Schema: JSONSchema, Results: []JSONResult{
		// Median flat, tail blown: the queueing-pathology shape the p99 gate
		// exists for.
		{Name: "load-small/client", NsPerOp: 101, P99NsPerOp: 5000},
		{Name: "load-large/client", NsPerOp: 101, P99NsPerOp: 1100},
		{Name: "median-only", NsPerOp: 101, P99NsPerOp: 9999},
	}}
	regs, _ := CompareReports(base, cur, 0.20)
	if len(regs) != 1 {
		t.Fatalf("regressions = %v, want exactly the load-small p99", regs)
	}
	if !strings.Contains(regs[0], "load-small/client") || !strings.Contains(regs[0], "p99") {
		t.Errorf("regression %q should name load-small/client's p99", regs[0])
	}
}

func TestCompareReportsBothMetricsRegress(t *testing.T) {
	base := JSONReport{Schema: JSONSchema, Results: []JSONResult{
		{Name: "w", NsPerOp: 100, P99NsPerOp: 1000},
	}}
	cur := JSONReport{Schema: JSONSchema, Results: []JSONResult{
		{Name: "w", NsPerOp: 300, P99NsPerOp: 3000},
	}}
	regs, _ := CompareReports(base, cur, 0.20)
	if len(regs) != 2 {
		t.Fatalf("want both the median and p99 regressions reported, got %v", regs)
	}
}
