package lis

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// lndsLengthBrute is the O(n²) dynamic program, used as the reference.
func lndsLengthBrute(seq []int32) int {
	n := len(seq)
	if n == 0 {
		return 0
	}
	dp := make([]int, n)
	best := 0
	for i := 0; i < n; i++ {
		dp[i] = 1
		for j := 0; j < i; j++ {
			if seq[j] <= seq[i] && dp[j]+1 > dp[i] {
				dp[i] = dp[j] + 1
			}
		}
		if dp[i] > best {
			best = dp[i]
		}
	}
	return best
}

func lisLengthBrute(seq []int32) int {
	n := len(seq)
	if n == 0 {
		return 0
	}
	dp := make([]int, n)
	best := 0
	for i := 0; i < n; i++ {
		dp[i] = 1
		for j := 0; j < i; j++ {
			if seq[j] < seq[i] && dp[j]+1 > dp[i] {
				dp[i] = dp[j] + 1
			}
		}
		if dp[i] > best {
			best = dp[i]
		}
	}
	return best
}

func randomSeq(rng *rand.Rand, n, domain int) []int32 {
	s := make([]int32, n)
	for i := range s {
		s[i] = int32(rng.Intn(domain))
	}
	return s
}

func TestLNDSLengthExamples(t *testing.T) {
	cases := []struct {
		seq  []int32
		want int
	}{
		{nil, 0},
		{[]int32{5}, 1},
		{[]int32{1, 2, 3}, 3},
		{[]int32{3, 2, 1}, 1},
		{[]int32{2, 2, 2}, 3},
		// Example 3.2 of the paper: tax values scaled ×10:
		// [2K, 2.5K, 0.3K, 12K, 1.5K, 16.5K, 1.8K, 7.2K, 16K]
		{[]int32{20, 25, 3, 120, 15, 165, 18, 72, 160}, 5},
		{[]int32{1, 3, 2, 3, 1, 4}, 4},
	}
	for _, c := range cases {
		if got := LNDSLength(c.seq); got != c.want {
			t.Errorf("LNDSLength(%v) = %d, want %d", c.seq, got, c.want)
		}
	}
}

func TestLISLengthExamples(t *testing.T) {
	cases := []struct {
		seq  []int32
		want int
	}{
		{nil, 0},
		{[]int32{2, 2, 2}, 1},
		{[]int32{1, 2, 2, 3}, 3},
		{[]int32{10, 9, 2, 5, 3, 7, 101, 18}, 4},
	}
	for _, c := range cases {
		if got := LISLength(c.seq); got != c.want {
			t.Errorf("LISLength(%v) = %d, want %d", c.seq, got, c.want)
		}
	}
}

func TestLNDSLengthMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 500; iter++ {
		seq := randomSeq(rng, rng.Intn(60), 8)
		if got, want := LNDSLength(seq), lndsLengthBrute(seq); got != want {
			t.Fatalf("seq %v: LNDSLength = %d, brute = %d", seq, got, want)
		}
	}
}

func TestLISLengthMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 500; iter++ {
		seq := randomSeq(rng, rng.Intn(60), 8)
		if got, want := LISLength(seq), lisLengthBrute(seq); got != want {
			t.Fatalf("seq %v: LISLength = %d, brute = %d", seq, got, want)
		}
	}
}

func TestLNDSReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 500; iter++ {
		seq := randomSeq(rng, rng.Intn(50), 6)
		idx := LNDS(seq)
		if len(idx) != LNDSLength(seq) {
			t.Fatalf("seq %v: reconstruction length %d != LNDSLength %d", seq, len(idx), LNDSLength(seq))
		}
		for k := 1; k < len(idx); k++ {
			if idx[k-1] >= idx[k] {
				t.Fatalf("seq %v: indexes not ascending: %v", seq, idx)
			}
			if seq[idx[k-1]] > seq[idx[k]] {
				t.Fatalf("seq %v: values not non-decreasing along %v", seq, idx)
			}
		}
	}
}

func TestLNDSEmptyAndSingle(t *testing.T) {
	if got := LNDS(nil); got != nil {
		t.Errorf("LNDS(nil) = %v, want nil", got)
	}
	if got := LNDS([]int32{7}); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("LNDS([7]) = %v, want [0]", got)
	}
}

// LNDS of the concatenation of two sequences is at least the max of the parts.
func TestLNDSConcatenationMonotonicity(t *testing.T) {
	f := func(a, b []int32) bool {
		cat := append(append([]int32{}, a...), b...)
		l := LNDSLength(cat)
		return l >= LNDSLength(a) && l >= LNDSLength(b)
	}
	cfg := &quick.Config{MaxCount: 100, Values: func(args []reflect.Value, rng *rand.Rand) {
		args[0] = reflect.ValueOf(randomSeq(rng, rng.Intn(30), 10))
		args[1] = reflect.ValueOf(randomSeq(rng, rng.Intn(30), 10))
	}}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestFenwickBasics(t *testing.T) {
	f := NewFenwick(10)
	f.Add(0, 1)
	f.Add(3, 2)
	f.Add(9, 1)
	if got := f.PrefixSum(-1); got != 0 {
		t.Errorf("PrefixSum(-1) = %d", got)
	}
	if got := f.PrefixSum(0); got != 1 {
		t.Errorf("PrefixSum(0) = %d", got)
	}
	if got := f.PrefixSum(3); got != 3 {
		t.Errorf("PrefixSum(3) = %d", got)
	}
	if got := f.PrefixSum(100); got != 4 {
		t.Errorf("PrefixSum(100) = %d (should clamp)", got)
	}
	if got := f.Total(); got != 4 {
		t.Errorf("Total = %d", got)
	}
	f.Reset()
	if got := f.Total(); got != 0 {
		t.Errorf("Total after Reset = %d", got)
	}
}

func TestFenwickMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for iter := 0; iter < 100; iter++ {
		size := 1 + rng.Intn(50)
		f := NewFenwick(size)
		naive := make([]int32, size)
		for op := 0; op < 100; op++ {
			v := int32(rng.Intn(size))
			f.Add(v, 1)
			naive[v]++
			q := int32(rng.Intn(size))
			var want int32
			for i := int32(0); i <= q; i++ {
				want += naive[i]
			}
			if got := f.PrefixSum(q); got != want {
				t.Fatalf("PrefixSum(%d) = %d, want %d", q, got, want)
			}
		}
	}
}

func inversionCountsBrute(seq []int32) ([]int32, int64) {
	per := make([]int32, len(seq))
	var total int64
	for i := 0; i < len(seq); i++ {
		for j := i + 1; j < len(seq); j++ {
			if seq[j] < seq[i] {
				per[i]++
				per[j]++
				total++
			}
		}
	}
	return per, total
}

func TestInversionCountsMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 300; iter++ {
		domain := 1 + rng.Intn(12)
		seq := randomSeq(rng, rng.Intn(60), domain)
		got, gotTotal := InversionCounts(seq, int32(domain))
		want, wantTotal := inversionCountsBrute(seq)
		if gotTotal != wantTotal {
			t.Fatalf("seq %v: total = %d, want %d", seq, gotTotal, wantTotal)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seq %v: per-elem = %v, want %v", seq, got, want)
		}
	}
}

func TestInversionCountsPaperExample(t *testing.T) {
	// Example 3.1: sal ∼ tax swap counts; tax sequence after sorting by sal.
	seq := []int32{20, 25, 3, 120, 15, 165, 18, 72, 160}
	per, total := InversionCounts(seq, 166)
	want := []int32{3, 3, 2, 3, 3, 3, 4, 2, 1}
	if !reflect.DeepEqual(per, want) {
		t.Errorf("per-elem = %v, want %v", per, want)
	}
	if total != 12 {
		t.Errorf("total = %d, want 12", total)
	}
}

// The removal-set size implied by LNDS equals n − LNDS length, which is never
// larger than the count implied by removing one element of every inversion.
func TestLNDSRemovalNoLargerThanInversionBound(t *testing.T) {
	f := func(seq []int32) bool {
		n := len(seq)
		removed := n - LNDSLength(seq)
		_, inv := InversionCounts(seq, 32)
		if inv == 0 {
			return removed == 0
		}
		return removed >= 1 && int64(removed) <= inv
	}
	cfg := &quick.Config{MaxCount: 200, Values: func(args []reflect.Value, rng *rand.Rand) {
		args[0] = reflect.ValueOf(randomSeq(rng, rng.Intn(40), 32))
	}}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestScratchLNDSMatchesLNDS pins the scratch form to the allocating form:
// identical keep indices on random sequences, and zero steady-state allocs.
func TestScratchLNDSMatchesLNDS(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	var s Scratch
	for iter := 0; iter < 300; iter++ {
		n := rng.Intn(200)
		seq := make([]int32, n)
		for i := range seq {
			seq[i] = int32(rng.Intn(1 + rng.Intn(50)))
		}
		want := LNDS(seq)
		got := s.LNDS(seq)
		if len(got) != len(want) {
			t.Fatalf("iter %d: scratch LNDS length %d, want %d", iter, len(got), len(want))
		}
		for k := range want {
			if int(got[k]) != want[k] {
				t.Fatalf("iter %d: scratch LNDS[%d] = %d, want %d", iter, k, got[k], want[k])
			}
		}
	}
	seq := make([]int32, 2048)
	for i := range seq {
		seq[i] = int32(rng.Intn(64))
	}
	s.LNDS(seq) // warm
	if n := testing.AllocsPerRun(20, func() { s.LNDS(seq) }); n != 0 {
		t.Errorf("scratch LNDS allocates %.1f times per call, want 0", n)
	}
}
