package store

import (
	"fmt"
	"os"
	"testing"
	"time"

	"aod"
)

// gcReport builds a report with enough payload that file sizes dominate the
// envelope overhead.
func gcReport(tag string) *aod.Report {
	rep := &aod.Report{Stats: aod.Stats{Rows: 9, Attrs: 3}}
	for i := 0; i < 40; i++ {
		rep.OCs = append(rep.OCs, aod.OC{
			Context: []string{tag},
			A:       fmt.Sprintf("%s-a%03d", tag, i),
			B:       fmt.Sprintf("%s-b%03d", tag, i),
		})
	}
	return rep
}

// reportDirSize sums the reports directory.
func reportDirSize(t *testing.T, s *Store) int64 {
	t.Helper()
	ents, err := os.ReadDir(s.path(reportsDir))
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, e := range ents {
		fi, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		total += fi.Size()
	}
	return total
}

// backdate pushes a report's mtime into the past so LRU order is
// deterministic regardless of filesystem timestamp granularity.
func backdate(t *testing.T, s *Store, key string, age time.Duration) {
	t.Helper()
	when := time.Now().Add(-age)
	if err := os.Chtimes(s.reportPath(key), when, when); err != nil {
		t.Fatal(err)
	}
}

// TestReportGCEvictsLRUPastBudget: writes past the budget evict the least
// recently used reports, never the newest, and the directory lands under
// budget.
func TestReportGCEvictsLRUPastBudget(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Size one report, then budget for roughly three.
	if err := s.PutReport("probe", gcReport("probe")); err != nil {
		t.Fatal(err)
	}
	one := reportDirSize(t, s)
	os.Remove(s.reportPath("probe"))
	budget := 3*one + one/2
	s.SetMaxReportBytes(budget)

	for i := 0; i < 6; i++ {
		key := fmt.Sprintf("key-%d", i)
		if err := s.PutReport(key, gcReport(key)); err != nil {
			t.Fatal(err)
		}
		// Strictly increasing recency: key-0 oldest, each later key fresher.
		backdate(t, s, key, time.Duration(6-i)*time.Hour)
	}
	// One more write triggers the sweep with a deterministic LRU order.
	if err := s.PutReport("key-6", gcReport("key-6")); err != nil {
		t.Fatal(err)
	}

	if got := reportDirSize(t, s); got > budget {
		t.Errorf("reports dir holds %d bytes, budget %d", got, budget)
	}
	if s.ReportsEvicted() == 0 {
		t.Error("no evictions counted")
	}
	if _, ok := s.GetReport("key-6"); !ok {
		t.Error("newest report was evicted")
	}
	if _, ok := s.GetReport("key-0"); ok {
		t.Error("oldest report survived a 2x-over-budget sweep")
	}
}

// TestReportGCReadRefreshesRecency: a report that keeps being read outlives
// colder ones written after it.
func TestReportGCReadRefreshesRecency(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutReport("probe", gcReport("probe")); err != nil {
		t.Fatal(err)
	}
	one := reportDirSize(t, s)
	os.Remove(s.reportPath("probe"))
	s.SetMaxReportBytes(2*one + one/2)

	for _, key := range []string{"hot", "cold"} {
		if err := s.PutReport(key, gcReport(key)); err != nil {
			t.Fatal(err)
		}
	}
	backdate(t, s, "hot", 2*time.Hour)
	backdate(t, s, "cold", 1*time.Hour)
	// Reading "hot" must move it ahead of "cold" in LRU order.
	if _, ok := s.GetReport("hot"); !ok {
		t.Fatal("hot report unreadable")
	}
	if err := s.PutReport("new", gcReport("new")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.GetReport("hot"); !ok {
		t.Error("recently read report was evicted")
	}
	if _, ok := s.GetReport("cold"); ok {
		t.Error("cold report survived over the recently read one")
	}
}

// TestReportGCUnboundedByDefault: without a budget nothing is ever evicted,
// and the newest report survives even a budget smaller than itself.
func TestReportGCUnboundedByDefault(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("key-%d", i)
		if err := s.PutReport(key, gcReport(key)); err != nil {
			t.Fatal(err)
		}
	}
	if s.ReportsEvicted() != 0 {
		t.Error("unbounded store evicted reports")
	}
	for i := 0; i < 10; i++ {
		if _, ok := s.GetReport(fmt.Sprintf("key-%d", i)); !ok {
			t.Errorf("key-%d missing from unbounded store", i)
		}
	}

	// A budget below a single report's size still keeps the newest.
	s.SetMaxReportBytes(1)
	if err := s.PutReport("tiny-budget", gcReport("tiny-budget")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.GetReport("tiny-budget"); !ok {
		t.Error("just-written report evicted by its own sweep")
	}
	ents, err := os.ReadDir(s.path(reportsDir))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Errorf("%d reports survive a 1-byte budget, want just the newest", len(ents))
	}
	// Eviction deletes; nothing may pile up in quarantine.
	q, err := os.ReadDir(s.path(quarantineDir))
	if err == nil && len(q) != 0 {
		t.Errorf("%d files in quarantine after GC; eviction must delete, not quarantine", len(q))
	}
}
