package service

import (
	"container/list"
	"sync"
	"sync/atomic"

	"aod"
	"aod/internal/store"
)

// resultCache is an LRU cache of completed discovery reports keyed by
// (dataset fingerprint, canonicalized options) — see cacheKey. Hit/miss
// accounting lives in the Service (a "hit" there includes joining an
// in-flight computation); the cache itself only tracks occupancy.
//
// With a Store backend the cache is two-tiered: completed reports are
// written through to disk, an in-memory miss falls back to the report store
// (re-admitting the report to memory), and LRU eviction only sheds the
// in-memory copy — the disk tier is unbounded and survives restarts.
type resultCache struct {
	mu        sync.Mutex
	capacity  int
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	evictions uint64

	st *store.Store // nil = memory only
	// diskHits counts gets answered by the disk tier; persistErrors counts
	// write-throughs that failed (the report stays served from memory).
	diskHits      atomic.Uint64
	persistErrors atomic.Uint64
}

type cacheEntry struct {
	key string
	rep *aod.Report
}

// newResultCache returns an LRU cache holding up to capacity reports in
// memory; capacity <= 0 disables the memory tier. A non-nil store adds the
// durable disk tier.
func newResultCache(capacity int, st *store.Store) *resultCache {
	return &resultCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		st:       st,
	}
}

// get returns the cached report for key — from memory, refreshing its
// recency, or from the disk tier, re-admitting it to memory.
func (c *resultCache) get(key string) (*aod.Report, bool) {
	if rep, ok := c.getMem(key); ok {
		return rep, true
	}
	if c.st == nil {
		return nil, false
	}
	rep, ok := c.st.GetReport(key)
	if !ok {
		return nil, false
	}
	c.diskHits.Add(1)
	c.admit(key, rep)
	return rep, true
}

// getMem consults only the memory tier — no disk I/O, so it is safe to call
// with other locks held (the under-lock double-check in Service.compute).
func (c *resultCache) getMem(key string) (*aod.Report, bool) {
	if c.capacity <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).rep, true
}

// put stores the report under key: disk tier first (so the durable copy
// exists before any consumer can observe the cached one), then memory. A
// failed disk write is counted in persistErrors and the report is still
// served from memory — the job's work is not discarded, but it will not
// survive a restart.
func (c *resultCache) put(key string, rep *aod.Report) {
	if c.st != nil {
		if err := c.st.PutReport(key, rep); err != nil {
			c.persistErrors.Add(1)
		}
	}
	c.admit(key, rep)
}

// admit inserts the report into the memory tier, evicting the least
// recently used entry when over capacity. Reports are treated as immutable
// by all consumers.
func (c *resultCache) admit(key string, rep *aod.Report) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).rep = rep
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, rep: rep})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// stats returns current size, capacity, and lifetime evictions.
func (c *resultCache) stats() (size, capacity int, evictions uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len(), c.capacity, c.evictions
}
