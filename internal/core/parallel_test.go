package core

import (
	"math/rand"
	"testing"
)

func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(200))
	for iter := 0; iter < 25; iter++ {
		rows := 10 + rng.Intn(60)
		attrs := 3 + rng.Intn(4)
		tbl := randomTable(rng, rows, attrs, 2+rng.Intn(4))
		for _, vk := range []ValidatorKind{ValidatorExact, ValidatorOptimal, ValidatorIterative} {
			cfg := Config{Threshold: 0.15, Validator: vk, IncludeOFDs: true}
			seq, err := Discover(tbl, cfg)
			if err != nil {
				t.Fatal(err)
			}
			par, err := DiscoverParallel(tbl, cfg, 4)
			if err != nil {
				t.Fatal(err)
			}
			seq.SortCanonical()
			par.SortCanonical()
			if len(seq.OCs) != len(par.OCs) || len(seq.OFDs) != len(par.OFDs) {
				t.Fatalf("iter %d %v: parallel %d/%d vs sequential %d/%d OCs/OFDs",
					iter, vk, len(par.OCs), len(par.OFDs), len(seq.OCs), len(seq.OFDs))
			}
			for i := range seq.OCs {
				a, b := seq.OCs[i], par.OCs[i]
				if a.Context != b.Context || a.A != b.A || a.B != b.B || a.Error != b.Error {
					t.Fatalf("iter %d %v: OC %d differs: %v vs %v", iter, vk, i, a, b)
				}
			}
			for i := range seq.OFDs {
				a, b := seq.OFDs[i], par.OFDs[i]
				if a.Context != b.Context || a.A != b.A || a.Error != b.Error {
					t.Fatalf("iter %d %v: OFD %d differs: %v vs %v", iter, vk, i, a, b)
				}
			}
			if seq.Stats.OCCandidates != par.Stats.OCCandidates ||
				seq.Stats.OFDCandidates != par.Stats.OFDCandidates {
				t.Fatalf("iter %d %v: candidate counts differ: %d/%d vs %d/%d",
					iter, vk, par.Stats.OCCandidates, par.Stats.OFDCandidates,
					seq.Stats.OCCandidates, seq.Stats.OFDCandidates)
			}
		}
	}
}

func TestParallelSingleWorkerDelegates(t *testing.T) {
	tbl := paperTable1(t)
	cfg := Config{Threshold: 0.12, Validator: ValidatorOptimal, IncludeOFDs: true}
	r, err := DiscoverParallel(tbl, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Discover(tbl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.OCs) != len(s.OCs) {
		t.Errorf("workers=1: %d OCs vs %d", len(r.OCs), len(s.OCs))
	}
}

func TestParallelDefaultWorkers(t *testing.T) {
	tbl := paperTable1(t)
	r, err := DiscoverParallel(tbl, Config{Threshold: 0.12, Validator: ValidatorOptimal}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.OCs) == 0 {
		t.Error("no OCs found with default workers")
	}
}

func TestParallelConfigError(t *testing.T) {
	tbl := paperTable1(t)
	if _, err := DiscoverParallel(tbl, Config{Threshold: -1}, 4); err == nil {
		t.Error("want config error")
	}
}

func TestParallelOnGeneratedWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	tbl := randomTable(rng, 500, 6, 4)
	cfg := Config{Threshold: 0.1, Validator: ValidatorOptimal, IncludeOFDs: true, CollectRemovalSets: true}
	seq, err := Discover(tbl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := DiscoverParallel(tbl, cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	seq.SortCanonical()
	par.SortCanonical()
	if len(seq.OCs) != len(par.OCs) {
		t.Fatalf("OC counts differ: %d vs %d", len(seq.OCs), len(par.OCs))
	}
	for i := range seq.OCs {
		if len(seq.OCs[i].RemovalRows) != len(par.OCs[i].RemovalRows) {
			t.Fatalf("removal sets differ at %d", i)
		}
	}
}
