package load

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// fakeClock auto-advances: SleepUntil jumps now to the deadline instead of
// parking, so scheduler tests run in microseconds of wall time while still
// exercising the real deadline arithmetic.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) SleepUntil(t time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.After(c.now) {
		c.now = t
	}
}

func TestOffsetsFixedCountMatchesRate(t *testing.T) {
	for _, tc := range []struct {
		rate     float64
		duration time.Duration
		want     int
	}{
		{100, time.Second, 100},
		{200, 10 * time.Second, 2000},
		{50, 2 * time.Second, 100},
		{1, 500 * time.Millisecond, 0},
	} {
		offs := Offsets(ArrivalFixed, tc.rate, tc.duration, nil)
		if len(offs) != tc.want {
			t.Errorf("Offsets(fixed, %v, %v): %d arrivals, want %d", tc.rate, tc.duration, len(offs), tc.want)
		}
		for i := 1; i < len(offs); i++ {
			if offs[i] <= offs[i-1] {
				t.Fatalf("offsets not strictly increasing at %d: %v then %v", i, offs[i-1], offs[i])
			}
		}
		if len(offs) > 0 && offs[len(offs)-1] > tc.duration {
			t.Errorf("last offset %v past duration %v", offs[len(offs)-1], tc.duration)
		}
	}
}

func TestOffsetsPoissonMeanRate(t *testing.T) {
	// Over a long window the realized count concentrates around
	// rate*duration; 5 sigma of a Poisson(10000) is ±500.
	rng := rand.New(rand.NewSource(7))
	offs := Offsets(ArrivalPoisson, 100, 100*time.Second, rng)
	mean := 10000.0
	if d := math.Abs(float64(len(offs)) - mean); d > 500 {
		t.Errorf("poisson arrivals: %d, want within 500 of %.0f", len(offs), mean)
	}
	for i := 1; i < len(offs); i++ {
		if offs[i] < offs[i-1] {
			t.Fatalf("offsets decreasing at %d", i)
		}
	}
}

func TestOffsetsPoissonDeterministic(t *testing.T) {
	a := Offsets(ArrivalPoisson, 50, 5*time.Second, rand.New(rand.NewSource(42)))
	b := Offsets(ArrivalPoisson, 50, 5*time.Second, rand.New(rand.NewSource(42)))
	if len(a) != len(b) {
		t.Fatalf("same seed, different lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverges at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRunOpenLoopDispatchesWholeSchedule(t *testing.T) {
	clock := newFakeClock()
	start := clock.Now()
	offs := Offsets(ArrivalFixed, 1000, time.Second, nil)

	var mu sync.Mutex
	fired := 0
	dispatched, wg := RunOpenLoop(context.Background(), clock, offs, func(i int) {
		mu.Lock()
		fired++
		mu.Unlock()
	})
	wg.Wait()

	if dispatched != len(offs) || fired != len(offs) {
		t.Fatalf("dispatched %d, fired %d, want %d", dispatched, fired, len(offs))
	}
	// The fake clock ends exactly at the last deadline: the scheduler slept
	// to each arrival and nowhere else.
	if got, want := clock.Now(), start.Add(offs[len(offs)-1]); !got.Equal(want) {
		t.Errorf("clock ended at %v, want %v", got, want)
	}
}

// TestRunOpenLoopStalledFireDoesNotSlowArrivals is the open-loop property
// itself: every fire blocks indefinitely (a fully stalled server), yet all
// arrivals dispatch on schedule.
func TestRunOpenLoopStalledFireDoesNotSlowArrivals(t *testing.T) {
	clock := newFakeClock()
	start := clock.Now()
	offs := Offsets(ArrivalFixed, 100, time.Second, nil)

	release := make(chan struct{})
	dispatched, wg := RunOpenLoop(context.Background(), clock, offs, func(i int) {
		<-release // stalled until the test says otherwise
	})

	// RunOpenLoop has returned: every arrival was dispatched even though not
	// a single fire has completed, and the clock advanced only through the
	// schedule, not through any server stall.
	if dispatched != len(offs) {
		t.Fatalf("dispatched %d arrivals, want %d", dispatched, len(offs))
	}
	if got, want := clock.Now(), start.Add(offs[len(offs)-1]); !got.Equal(want) {
		t.Errorf("clock ended at %v, want %v — arrivals were delayed by stalled fires", got, want)
	}

	close(release)
	wg.Wait()
}

// cancelingClock cancels a context during the nth SleepUntil — SleepUntil
// runs synchronously in the scheduler loop, so the cutoff is deterministic.
type cancelingClock struct {
	*fakeClock
	sleeps int
	at     int
	cancel context.CancelFunc
}

func (c *cancelingClock) SleepUntil(t time.Time) {
	c.sleeps++
	if c.sleeps == c.at {
		c.cancel()
	}
	c.fakeClock.SleepUntil(t)
}

func TestRunOpenLoopCancelStopsDispatch(t *testing.T) {
	offs := Offsets(ArrivalFixed, 100, time.Second, nil)
	ctx, cancel := context.WithCancel(context.Background())
	clock := &cancelingClock{fakeClock: newFakeClock(), at: 10, cancel: cancel}

	dispatched, wg := RunOpenLoop(ctx, clock, offs, func(i int) {})
	wg.Wait()

	// The 10th arrival's sleep canceled the context: that arrival still
	// dispatches (the check precedes the sleep) and the 11th does not.
	if dispatched != 10 {
		t.Errorf("dispatched %d arrivals after cancel during the 10th sleep, want exactly 10", dispatched)
	}
}
