package load

import (
	"fmt"
	"io"
	"math/rand"
	"time"
)

// Request is one planned arrival: fire the Class against the Dataset-th
// member of the class's dataset universe at offset At from run start.
type Request struct {
	Seq     int
	At      time.Duration
	Class   Class
	Dataset int
}

// PlanConfig parameterizes BuildPlan. All randomness derives from Seed, and
// every random decision (arrival gap, class, dataset rank) is drawn from one
// RNG in arrival order — so the full request sequence is a pure function of
// this struct.
type PlanConfig struct {
	Rate     float64       // mean arrivals per second
	Duration time.Duration // planning horizon
	Arrival  Arrival       // poisson (default) or fixed
	Mix      Mix           // traffic composition
	Zipf     float64       // dataset-popularity exponent (0 = uniform)
	// SmallDatasets / LargeDatasets size the two dataset universes. CacheHit
	// and Small traffic draw zipf ranks over the small universe, Large over
	// the large one.
	SmallDatasets int
	LargeDatasets int
	Seed          int64
}

// BuildPlan produces the deterministic request sequence for cfg.
func BuildPlan(cfg PlanConfig) ([]Request, error) {
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("load: rate must be positive, got %g", cfg.Rate)
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("load: duration must be positive, got %s", cfg.Duration)
	}
	if cfg.Mix.total == 0 {
		return nil, fmt.Errorf("load: empty traffic mix")
	}
	if cfg.SmallDatasets <= 0 || cfg.LargeDatasets <= 0 {
		return nil, fmt.Errorf("load: dataset universes must be positive (small=%d, large=%d)",
			cfg.SmallDatasets, cfg.LargeDatasets)
	}
	smallZipf, err := NewZipf(cfg.SmallDatasets, cfg.Zipf)
	if err != nil {
		return nil, err
	}
	largeZipf, err := NewZipf(cfg.LargeDatasets, cfg.Zipf)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// The arrival schedule is drawn first, in full, so the number of gap
	// draws cannot depend on per-request decisions (and vice versa).
	offsets := Offsets(cfg.Arrival, cfg.Rate, cfg.Duration, rng)
	reqs := make([]Request, len(offsets))
	for i, at := range offsets {
		class := cfg.Mix.Pick(rng)
		z := smallZipf
		if class == Large {
			z = largeZipf
		}
		reqs[i] = Request{Seq: i, At: at, Class: class, Dataset: z.Pick(rng)}
	}
	return reqs, nil
}

// WritePlan renders the request sequence one line per request — the
// -plan-only surface that lets two invocations be diffed byte-for-byte to
// verify that a seed fully determines the traffic.
func WritePlan(w io.Writer, reqs []Request) error {
	for _, r := range reqs {
		if _, err := fmt.Fprintf(w, "%d\t%d\t%s\t%d\n", r.Seq, r.At.Nanoseconds(), r.Class, r.Dataset); err != nil {
			return err
		}
	}
	return nil
}
