package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"aod/internal/dataset"
	"aod/internal/lattice"
	"aod/internal/telemetry"
	"aod/internal/validate"
)

// ShardPool provisions shard workers for one discovery run. It is
// implemented by internal/shard.Cluster (TCP workers or the in-process
// loopback transport); core only sees the session contract.
type ShardPool interface {
	// Open pins the run's dataset and configuration on every reachable
	// worker (fingerprint handshake; the dataset payload ships only to
	// workers that don't already cache it) and returns the session. An error
	// means no worker is usable — the sharded executor then degrades to
	// local execution rather than failing the run.
	Open(ctx context.Context, tbl *dataset.Table, cfg Config) (ShardSession, error)
}

// ShardSession is one run's window onto the worker pool.
type ShardSession interface {
	// Width is the number of healthy shards; each lattice level is split
	// into at most Width contiguous slices dispatched concurrently.
	Width() int
	// RunSlice processes one slice of a level on shard `shard`, returning
	// results in task order. Implementations own the per-shard timeout,
	// retry-on-another-shard, and straggler re-dispatch policies; an error
	// means every route failed and the caller should run the slice locally.
	RunSlice(ctx context.Context, shard, level int, tasks []NodeTask) ([]NodeResult, error)
	Close() error
}

// ShardSessionParts is the optional partition-shipping capability of a
// ShardSession: RunSliceParts is RunSlice plus coordinator-built context
// partitions for the slice, which the worker installs into its fold memo
// instead of re-deriving them from single-attribute partitions. The executor
// type-asserts for it, so sessions (and test fakes) that only implement
// ShardSession keep working — their slices simply fold worker-side.
//
// The shipped partitions must be immutable for the life of the session
// (partition.Share): a losing straggler attempt can still be encoding them
// after the slice committed and later levels released its lattice ancestry.
type ShardSessionParts interface {
	RunSliceParts(ctx context.Context, shard, level int, tasks []NodeTask, parts []SeedPartition) ([]NodeResult, error)
}

// Sharded returns the distributed executor: each lattice level's tasks are
// sliced contiguously across the pool's shards, executed remotely, and the
// results merged in node order — so reports and non-timing stats are
// identical to Serial()'s, only the machines differ. Every failure mode
// degrades instead of failing the job: an unreachable pool runs the whole
// job locally, a dead or straggling worker has its slice re-dispatched by
// the session or, last, executed locally by the coordinator.
//
// Dispatch is pipelined across levels: as a contiguous prefix of level N's
// slices lands and commits, the executor generates level N+1 (its structure
// depends only on N's node sets), builds tasks whose parents are all
// committed, and streams ready slices to workers whose slice of N has
// drained — so stragglers on level N overlap with N+1's validation instead
// of serializing the whole cluster on a per-level barrier. Results still
// commit strictly in node order through applyTask, so the pipelined schedule
// stays byte-identical to Serial ≡ Pool (the executor equivalence matrix is
// the contract).
func Sharded(pool ShardPool) Executor { return &shardedExecutor{pool: pool, quantum: -1} }

// DefaultShardWorkQuantum is the estimated work (rows × attrs × levels, see
// EstimateCost) each engaged shard worker must have under ShardedQuantum's
// width policy. Every worker re-derives the partitions of its slice's parent
// and grandparent sets independently, so each extra worker costs a roughly
// fixed CPU tax in duplicated partition products; below about four million
// work units that tax outweighs what another worker can contribute.
const DefaultShardWorkQuantum = 4 << 20

// ShardedQuantum is Sharded with adaptive width: the executor engages
// clamp(estimatedWork/quantum, 1, session width) workers instead of always
// fanning out to every healthy shard. Small jobs then run on one worker —
// still through the full wire protocol, but without paying the per-worker
// partition-duplication tax — and the engaged width grows by one worker per
// `quantum` of estimated work. A quantum of 0 selects
// DefaultShardWorkQuantum; a negative quantum disables the cap (full width,
// identical to Sharded).
func ShardedQuantum(pool ShardPool, quantum int64) Executor {
	if quantum == 0 {
		quantum = DefaultShardWorkQuantum
	}
	return &shardedExecutor{pool: pool, quantum: quantum}
}

type shardedExecutor struct {
	pool ShardPool
	sess ShardSession
	eng  *engine
	// quantum is the estimated work per engaged worker (negative = no cap);
	// widthCap is derived from it against the run's cost during prepare.
	quantum  int64
	widthCap int
	// pending carries the next level's prefetched state (tasks built so far,
	// pre-dispatched slices in flight) from one runLevel call into the next.
	pending *levelRun
	// localMu serializes local (fallback) slice execution and the node-order
	// commit: the engine and the lattice's lazily materialized partitions are
	// not concurrency-safe.
	localMu sync.Mutex
}

// sliceSpan is the [lo, hi) task range of one shard's slice of a level.
type sliceSpan struct{ lo, hi int }

// sliceDone reports one slice's remote outcome; a non-nil err means every
// remote route failed and the slice must run locally.
type sliceDone struct {
	j   int
	err error
}

// levelRun is the dispatch state of one lattice level: its tasks, the frozen
// slice plan, and per-slice progress. A levelRun is created either at the top
// of runLevel or — the pipelined case — mid-way through the previous level,
// when it starts accumulating prefetched tasks and in-flight slices.
type levelRun struct {
	level      *lattice.Level
	tasks      []NodeTask
	results    []NodeResult
	built      int // tasks[:built] are built
	plan       []sliceSpan
	dispatched []bool
	done       []bool
	ch         chan sliceDone // buffered to len(plan): senders never block
	// maxParent[i] is the largest index in the parent level of any of node
	// i's parents; the node is buildable once the parent commit prefix
	// passes it. Computed only for prefetched runs.
	maxParent []int
}

func newLevelRun(level *lattice.Level, width int) *levelRun {
	n := len(level.Nodes)
	r := &levelRun{
		level:      level,
		tasks:      make([]NodeTask, n),
		results:    make([]NodeResult, n),
		plan:       make([]sliceSpan, width),
		dispatched: make([]bool, width),
		done:       make([]bool, width),
		ch:         make(chan sliceDone, width),
	}
	for j := range r.plan {
		lo, hi := sliceBounds(n, width, j)
		r.plan[j] = sliceSpan{lo, hi}
	}
	return r
}

func (x *shardedExecutor) prepare(t *traversal) bool {
	if !t.buildSingles(runtime.GOMAXPROCS(0)) {
		return false
	}
	x.eng = &engine{t: t, v: validate.New(), res: t.res}
	ctx := t.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if sess, err := x.pool.Open(ctx, t.tbl, t.cfg); err == nil {
		x.sess = sess
	}
	x.widthCap = shardWidthCap(EstimateCost(t.tbl.NumRows(), t.numAttrs, t.maxLevel), x.quantum)
	x.pending = nil
	// A pool with no reachable worker leaves sess nil: the run proceeds
	// fully locally (degraded, not failed).
	return !t.abortedInto(&t.res.Stats)
}

func (x *shardedExecutor) close() {
	if x.sess != nil {
		x.sess.Close()
		x.sess = nil
	}
}

func (x *shardedExecutor) runLevel(t *traversal, cur, prev, prev2 *lattice.Level) int {
	st := &t.res.Stats
	// Adopt the previous level's prefetch for this level, if any. A stale
	// pending (from an aborted or different run) is simply dropped: its
	// in-flight goroutines drain into their own buffered channel.
	run := x.pending
	x.pending = nil
	if run != nil && run.level != cur {
		run = nil
	}
	if t.abortedInto(st) {
		return 0
	}
	width := 0
	if x.sess != nil {
		if width = x.sess.Width(); width > x.widthCap {
			width = x.widthCap
		}
	}
	if run == nil && width <= 0 {
		// No shard usable at all: run the level exactly like the serial
		// executor — per-node scratch, no retained task/result slices.
		candidates := 0
		for _, node := range cur.Nodes {
			if x.eng.aborted() {
				return candidates
			}
			st.NodesProcessed++
			candidates += x.eng.processNode(node, prev, prev2)
		}
		x.eng.aborted()
		return candidates
	}
	if run == nil {
		run = newLevelRun(cur, width)
	}
	// Propagation needs the parents' final validity, so tasks are built
	// coordinator-side (cheap: bitmask unions), in node order. prev is fully
	// committed by now, so every task the prefetch didn't reach is buildable.
	for ; run.built < len(cur.Nodes); run.built++ {
		run.tasks[run.built] = buildTask(cur.Nodes[run.built], prev, t.numAttrs, t.cfg.Bidirectional)
	}

	// Per-slice RPC spans parent under the current level's span, so a trace
	// shows each slice's round trips (and worker-side spans) per level —
	// pre-dispatched slices appear under the level that dispatched them.
	ctx := t.dispatchContext()
	ship := x.shouldShipParts(t, run, prev)
	if ship {
		// Materialize the parent level once (in parallel) before slicing: each
		// product reuses the grandparents materialized one level ago, so this
		// is the pool executor's incremental per-level partition cost, paid
		// once here instead of once per worker.
		materializeLevel(t, prev, runtime.GOMAXPROCS(0))
	}
	remaining := 0
	for j, sp := range run.plan {
		if sp.lo == sp.hi {
			run.done[j] = true
			continue
		}
		if !run.dispatched[j] {
			run.dispatched[j] = true
			var parts []SeedPartition
			if ship {
				parts = sliceParts(t, run, j, prev)
			}
			x.dispatch(ctx, run, j, parts)
		}
		remaining++
	}

	// Commit slices in plan order as they land: applyTask is the single
	// entry point for results, so the report and the non-timing stats match
	// Serial() byte for byte regardless of arrival order. Each advance of
	// the commit prefix feeds the next level's prefetch.
	candidates, commit, committed := 0, 0, 0
	advance := func() {
		progressed := false
		for commit < len(run.plan) && run.done[commit] {
			sp := run.plan[commit]
			if sp.lo < sp.hi {
				x.localMu.Lock()
				for i := sp.lo; i < sp.hi; i++ {
					st.NodesProcessed++
					x.eng.applyTask(cur.Nodes[i], &run.tasks[i], &run.results[i])
					candidates += run.results[i].Candidates
				}
				x.localMu.Unlock()
			}
			committed = sp.hi
			commit++
			progressed = true
		}
		if progressed {
			x.maybePrefetch(t, cur, run, committed, candidates)
		}
	}
	advance() // empty slices may already unlock a commit prefix
	for remaining > 0 {
		d := <-run.ch
		if d.err != nil {
			// Every remote route for this slice failed (or the slice was
			// pre-dispatched into a dying session): run it here so the job
			// completes regardless.
			sp := run.plan[d.j]
			x.runLocal(t, run.tasks[sp.lo:sp.hi], run.results[sp.lo:sp.hi], prev, prev2)
		}
		run.done[d.j] = true
		remaining--
		advance()
	}
	// Record a deadline/cancellation that landed after the last slice, so
	// the pipeline stops before generating the next level.
	x.eng.aborted()
	return candidates
}

// shipPartsMinRows is the partition-shipping cutover. Folding one context
// partition worker-side costs a few O(rows) product passes, while shipping it
// costs roughly the same O(rows) once to encode plus once per receiving
// worker on the wire — so shipping only wins when at least two workers would
// each re-fold the same partitions and the per-partition work dwarfs the
// frame's fixed overhead. Below this many table rows the fold is cheaper
// than the wire and the workers keep folding locally.
const shipPartsMinRows = 2048

// shouldShipParts decides the level's partition-shipping cutover: the session
// must speak the parts capability, the parent level must hold real products
// (levels 0/1 are the universe and the singles every worker already has),
// the table must be past the fold-vs-wire break-even, and at least two
// slices must be in play (a lone worker's fold memo is already as warm as
// the coordinator's lattice).
func (x *shardedExecutor) shouldShipParts(t *traversal, run *levelRun, prev *lattice.Level) bool {
	if x.sess == nil || prev == nil || prev.Number < 2 || t.tbl.NumRows() < shipPartsMinRows {
		return false
	}
	if _, ok := x.sess.(ShardSessionParts); !ok {
		return false
	}
	nonEmpty := 0
	for _, sp := range run.plan {
		if sp.lo < sp.hi {
			nonEmpty++
		}
	}
	return nonEmpty >= 2
}

// sliceParts collects the distinct parent partitions the slice's tasks
// reference as fold bases and OFD contexts, in node order. The partitions are
// marked shared before leaving the lattice: arena recycling refuses them from
// then on, so a straggler attempt still encoding after the level retires can
// never observe a reset (the GC reclaims them when the last reference dies).
func sliceParts(t *traversal, run *levelRun, j int, prev *lattice.Level) []SeedPartition {
	sp := run.plan[j]
	seen := make(map[lattice.AttrSet]struct{}, (sp.hi-sp.lo)+run.level.Number)
	var parts []SeedPartition
	for i := sp.lo; i < sp.hi; i++ {
		set := run.level.Nodes[i].Set
		set.ForEach(func(c int) {
			pset := set.Remove(c)
			if _, ok := seen[pset]; ok {
				return
			}
			seen[pset] = struct{}{}
			pn := prev.Lookup(pset)
			if pn == nil {
				return
			}
			p := pn.PartitionIn(t.arena, t.singles).Share()
			parts = append(parts, SeedPartition{Set: pset, Part: p})
		})
	}
	return parts
}

// dispatch sends slice j of the run to the pool in the background, reporting
// the outcome on run.ch. Successful results are copied into the run's result
// slots before the outcome is published.
//
// The tasks handed to the session are wire copies: a task's pair-set words
// alias its node's sets, and a straggler re-dispatch attempt can still be
// encoding them after the slice's first answer wins and the node commits
// (applyTask mutates the node's sets). The copy makes every remote attempt
// read-only on stable memory; local fallback keeps using the originals.
// parts, when non-empty, ride ahead of the slice on the same exchange (the
// session re-ships them to whichever worker a retry or straggler re-dispatch
// lands on).
func (x *shardedExecutor) dispatch(ctx context.Context, run *levelRun, j int, parts []SeedPartition) {
	sp := run.plan[j]
	wire := copyTaskWords(run.tasks[sp.lo:sp.hi])
	go func() {
		var rs []NodeResult
		var err error
		if ps, ok := x.sess.(ShardSessionParts); ok && len(parts) > 0 {
			rs, err = ps.RunSliceParts(ctx, j, run.level.Number, wire, parts)
		} else {
			rs, err = x.sess.RunSlice(ctx, j, run.level.Number, wire)
		}
		if err == nil && len(rs) != sp.hi-sp.lo {
			err = fmt.Errorf("shard: slice %d returned %d results for %d tasks", j, len(rs), sp.hi-sp.lo)
		}
		if err == nil {
			copy(run.results[sp.lo:sp.hi], rs)
		}
		run.ch <- sliceDone{j: j, err: err}
	}()
}

// copyTaskWords returns a copy of the tasks whose OCValid/OCValidDesc words
// no longer alias the nodes' pair sets, using one backing array per field
// across the slice. ParentConst is already per-task memory and is only read
// after build, so it is shared.
func copyTaskWords(tasks []NodeTask) []NodeTask {
	out := make([]NodeTask, len(tasks))
	copy(out, tasks)
	nValid, nDesc := 0, 0
	for i := range tasks {
		nValid += len(tasks[i].OCValid)
		nDesc += len(tasks[i].OCValidDesc)
	}
	valid := make([]uint64, 0, nValid)
	desc := make([]uint64, 0, nDesc)
	for i := range out {
		if w := tasks[i].OCValid; len(w) > 0 {
			valid = append(valid, w...)
			out[i].OCValid = valid[len(valid)-len(w):]
		}
		if w := tasks[i].OCValidDesc; len(w) > 0 {
			desc = append(desc, w...)
			out[i].OCValidDesc = desc[len(desc)-len(w):]
		}
	}
	return out
}

// dispatchContext is the context slice RPCs run under: the traversal's
// context, carrying the current level's span as trace parent.
func (t *traversal) dispatchContext() context.Context {
	ctx := t.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	return telemetry.NewContext(ctx, t.trace, t.levelSpan.ID())
}

// maybePrefetch pipelines the next level: once a contiguous prefix of cur is
// committed, the next level's structure is already known (lattice.NextLevel
// depends only on cur's node sets, not on validation outcomes), so tasks
// whose parents all lie in the committed prefix can be built, and fully built
// slices stream to workers whose slice of cur has drained — level N+1 starts
// while N's stragglers finish. The prefix gate is what keeps the pipelined
// schedule byte-identical: a task is never built before all of its parents
// hold their final post-apply validity.
func (x *shardedExecutor) maybePrefetch(t *traversal, cur *lattice.Level, run *levelRun, committed, candidates int) {
	if x.sess == nil {
		return
	}
	pend := x.pending
	if pend == nil {
		// Create the prefetch only when it can pay off: more levels to go,
		// and this level has already surfaced candidates (a candidate-free
		// level ends the run, making speculative work pure waste).
		if cur.Number >= t.maxLevel || candidates == 0 || committed == 0 || t.prefetchedNext != nil {
			return
		}
		next := lattice.NextLevel(cur, t.numAttrs)
		pend = newLevelRun(next, len(run.plan))
		pend.maxParent = maxParentIndexes(next, cur)
		// Hand the generated level to the pipeline loop: the pre-built tasks
		// alias these exact nodes, so the traversal must advance through this
		// object, not a freshly generated twin.
		t.prefetchedNext = next
		x.pending = pend
	}
	for pend.built < len(pend.level.Nodes) && pend.maxParent[pend.built] < committed {
		pend.tasks[pend.built] = buildTask(pend.level.Nodes[pend.built], cur, t.numAttrs, t.cfg.Bidirectional)
		pend.built++
	}
	ctx := t.dispatchContext()
	ship := x.shouldShipParts(t, pend, cur)
	for j, sp := range pend.plan {
		if pend.dispatched[j] || sp.lo == sp.hi || sp.hi > pend.built {
			continue
		}
		// Slice j of the next level goes out only after slice j of cur
		// drained: the shard→worker mapping is stable, so that worker is the
		// idle one (stragglers keep their slice of cur in flight and are not
		// handed more work).
		if j >= len(run.done) || !run.done[j] {
			continue
		}
		pend.dispatched[j] = true
		var parts []SeedPartition
		if ship {
			// A prefetched slice dispatches only once every parent of its
			// tasks lies in cur's committed prefix, so the parent partitions
			// it needs are materializable right now (PartitionIn resolves
			// them lazily, here on the commit goroutine — the same
			// serialization applyTask runs under).
			parts = sliceParts(t, pend, j, cur)
		}
		x.dispatch(ctx, pend, j, parts)
	}
}

// maxParentIndexes returns, per node of next, the largest index in cur.Nodes
// of any of its parents — the cur commit-prefix length past which the node's
// task can be built. Colex node order makes these near-monotonic, so commit
// prefixes of cur unlock build prefixes of next.
func maxParentIndexes(next, cur *lattice.Level) []int {
	idx := make(map[lattice.AttrSet]int, len(cur.Nodes))
	for i, n := range cur.Nodes {
		idx[n.Set] = i
	}
	out := make([]int, len(next.Nodes))
	for i, n := range next.Nodes {
		maxIdx := -1
		n.Set.ForEach(func(c int) {
			if p, ok := idx[n.Set.Remove(c)]; ok && p > maxIdx {
				maxIdx = p
			}
		})
		out[i] = maxIdx
	}
	return out
}

// runLocal executes a slice on the coordinator, resolving partitions through
// the lattice like the serial executor. Serialized by localMu: concurrent
// fallback slices share one engine and the nodes' lazily materialized
// partitions.
func (x *shardedExecutor) runLocal(t *traversal, tasks []NodeTask, results []NodeResult, prev, prev2 *lattice.Level) {
	x.localMu.Lock()
	defer x.localMu.Unlock()
	src := levelSource{e: x.eng, parents: prev, grandparents: prev2}
	for i := range tasks {
		if x.eng.aborted() {
			return
		}
		// Results are retained until the level's apply pass, so each slot is
		// filled in place rather than through the engine scratch.
		x.eng.execTask(&tasks[i], src, &results[i])
	}
}

// sliceBounds returns the [lo, hi) bounds of the shard-th of `width`
// contiguous near-equal slices over n tasks.
func sliceBounds(n, width, shard int) (int, int) {
	return shard * n / width, (shard + 1) * n / width
}

// shardWidthCap is ShardedQuantum's width policy: at most one engaged worker
// per `quantum` of estimated work, never fewer than one, uncapped for a
// non-positive quantum.
func shardWidthCap(cost, quantum int64) int {
	if quantum <= 0 {
		return int(^uint(0) >> 1)
	}
	cap := cost / quantum
	if cap < 1 {
		return 1
	}
	if cap > int64(^uint(0)>>1) {
		return int(^uint(0) >> 1)
	}
	return int(cap)
}
