package core

import (
	"math"
	"math/rand"
	"testing"

	"aod/internal/gen"
	"aod/internal/partition"
	"aod/internal/validate"
)

func TestSampledEstimateTracksTrueError(t *testing.T) {
	v := validate.New()
	for _, frac := range []float64{0, 0.05, 0.10, 0.20} {
		tbl := gen.CorrelatedPair(20_000, frac, 5)
		ctx := partition.Universe(tbl.NumRows())
		full := v.OptimalAOC(ctx, tbl.Column(0), tbl.Column(1), validate.Options{Threshold: 1})
		est, sampled := v.SampledAOCEstimate(ctx, tbl.Column(0), tbl.Column(1), 8)
		if sampled == 0 {
			t.Fatalf("frac=%.2f: empty sample", frac)
		}
		if math.Abs(est-full.Error) > 0.05 {
			t.Errorf("frac=%.2f: estimate %.4f vs true %.4f (diff > 0.05)", frac, est, full.Error)
		}
	}
}

func TestSampledEstimateStrideOne(t *testing.T) {
	v := validate.New()
	tbl := gen.CorrelatedPair(5000, 0.1, 6)
	ctx := partition.Universe(tbl.NumRows())
	full := v.OptimalAOC(ctx, tbl.Column(0), tbl.Column(1), validate.Options{Threshold: 1})
	est, _ := v.SampledAOCEstimate(ctx, tbl.Column(0), tbl.Column(1), 1)
	if math.Abs(est-full.Error) > 1e-9 {
		t.Errorf("stride 1 estimate %.6f != true %.6f", est, full.Error)
	}
	// Stride below 1 clamps to 1.
	est0, _ := v.SampledAOCEstimate(ctx, tbl.Column(0), tbl.Column(1), 0)
	if math.Abs(est0-full.Error) > 1e-9 {
		t.Errorf("stride 0 estimate %.6f != true %.6f", est0, full.Error)
	}
}

func TestHybridSamplingKeepsPlantedDependencies(t *testing.T) {
	tbl := gen.Flight(gen.FlightConfig{Rows: 8000, Attrs: 8, Seed: 7})
	base := Config{Threshold: 0.10, Validator: ValidatorOptimal}
	full, err := Discover(tbl, base)
	if err != nil {
		t.Fatal(err)
	}
	sampled := base
	sampled.SampleStride = 8
	hyb, err := Discover(tbl, sampled)
	if err != nil {
		t.Fatal(err)
	}
	if hyb.Stats.OCSampledRejected == 0 {
		t.Error("expected some sampled rejections on this workload")
	}
	// Every OC found by the hybrid run must be in the full run (soundness:
	// full validation gates acceptance)...
	fullSet := ocSet(full)
	for k := range ocSet(hyb) {
		if _, ok := fullSet[k]; !ok {
			t.Errorf("hybrid reported OC %v not in full result", k)
		}
	}
	// ...and with the default slack, the planted headline dependencies must
	// survive the pre-filter.
	origin, iata := tbl.ColumnIndex("origin"), tbl.ColumnIndex("originIATA")
	found := false
	for _, oc := range hyb.OCs {
		if oc.Context.IsEmpty() && oc.A == min(origin, iata) && oc.B == max(origin, iata) {
			found = true
		}
	}
	if !found {
		t.Error("hybrid sampling lost the planted origin ∼ originIATA dependency")
	}
}

func TestHybridSamplingIgnoredForExact(t *testing.T) {
	tbl := paperTable1(t)
	cfg := Config{Validator: ValidatorExact, SampleStride: 4}
	r, err := Discover(tbl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.OCSampledRejected != 0 {
		t.Error("exact validator must not sample")
	}
}

func TestDisablePruningSameResultsMoreWork(t *testing.T) {
	rng := rand.New(rand.NewSource(300))
	for iter := 0; iter < 15; iter++ {
		tbl := randomTable(rng, 10+rng.Intn(30), 4, 3)
		base := Config{Threshold: 0.2, Validator: ValidatorOptimal, IncludeOFDs: true}
		pruned, err := Discover(tbl, base)
		if err != nil {
			t.Fatal(err)
		}
		abl := base
		abl.DisablePruning = true
		unpruned, err := Discover(tbl, abl)
		if err != nil {
			t.Fatal(err)
		}
		if len(ocSet(pruned)) != len(ocSet(unpruned)) || len(ofdSet(pruned)) != len(ofdSet(unpruned)) {
			t.Fatalf("iter %d: ablation changed results: %d/%d vs %d/%d OCs/OFDs",
				iter, len(unpruned.OCs), len(unpruned.OFDs), len(pruned.OCs), len(pruned.OFDs))
		}
		if unpruned.Stats.OCCandidates < pruned.Stats.OCCandidates ||
			unpruned.Stats.OFDCandidates < pruned.Stats.OFDCandidates {
			t.Fatalf("iter %d: ablation should validate at least as many candidates", iter)
		}
	}
}
