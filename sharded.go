package aod

import (
	"context"
	"time"

	"aod/internal/core"
	"aod/internal/shard"
)

// ShardPoolOptions tunes a shard pool's failure policy. The zero value
// selects production defaults.
type ShardPoolOptions struct {
	// DialTimeout bounds connecting + handshaking one worker per job
	// (default 5s).
	DialTimeout time.Duration
	// CallTimeout bounds one level-slice round trip (default 2m).
	CallTimeout time.Duration
	// StragglerAfter re-dispatches a slice to a second worker when the first
	// has not answered after this long, first answer wins (default 15s;
	// negative disables).
	StragglerAfter time.Duration
	// Logf, when non-nil, receives one line per notable pool event.
	Logf func(format string, args ...any)
	// Metrics, when non-nil, receives the pool's RPC latency histogram and
	// retry/re-dispatch counters (aod_shard_*). Pass the same registry to
	// service.Config.Metrics to serve both from one /metrics endpoint.
	Metrics *MetricsRegistry
}

// ShardPool is a pool of aodworker processes that discovery jobs can slice
// lattice levels across. Workers cache datasets by content fingerprint (the
// payload ships to each worker at most once per dataset) and each job opens
// its own session over the live workers. The pool degrades rather than
// fails: dead or straggling workers have their slices re-dispatched, and a
// fully unreachable pool runs jobs locally.
//
// A ShardPool is safe for concurrent use by many jobs; the aodserver creates
// one from its -workers flag and shares it across the job manager.
type ShardPool struct {
	cluster *shard.Cluster
}

// DialShardPool returns a pool over TCP worker addresses (host:port). No
// connection is made up front — workers are dialed per job, so workers may
// come and go across the pool's lifetime.
func DialShardPool(addrs []string, opts ShardPoolOptions) *ShardPool {
	return &ShardPool{cluster: shard.New(addrs, shard.Config{
		DialTimeout:    opts.DialTimeout,
		CallTimeout:    opts.CallTimeout,
		StragglerAfter: opts.StragglerAfter,
		Logf:           opts.Logf,
		Metrics:        opts.Metrics,
	})}
}

// LoopbackShardPool returns a pool of n in-process workers speaking the full
// wire protocol over pipes — the sharded path without processes, used by
// tests and the aodbench `sharded` workload.
func LoopbackShardPool(n int) *ShardPool {
	return &ShardPool{cluster: shard.Loopback(n)}
}

// Close releases the pool.
func (p *ShardPool) Close() { p.cluster.Close() }

// ShardWorkerStatus is one worker's health and assignment record.
type ShardWorkerStatus struct {
	Addr string `json:"addr"`
	// Healthy reflects the last interaction with the worker; unhealthy
	// workers are still retried on later jobs.
	Healthy bool `json:"healthy"`
	// Sessions counts successful job handshakes; AssignedTasks counts node
	// tasks dispatched to the worker.
	Sessions      uint64 `json:"sessions"`
	AssignedTasks uint64 `json:"assignedTasks"`
	Failures      uint64 `json:"failures"`
	LastError     string `json:"lastError,omitempty"`
}

// Workers returns every worker's current status, ordered by address.
func (p *ShardPool) Workers() []ShardWorkerStatus {
	snap := p.cluster.Snapshot()
	out := make([]ShardWorkerStatus, len(snap))
	for i, st := range snap {
		out[i] = ShardWorkerStatus(st)
	}
	return out
}

// DiscoverSharded is Discover with each lattice level sliced across the
// pool's workers. Reports are byte-identical to Discover's — the sharded
// executor merges per-node results in deterministic node order — and every
// worker failure degrades to re-dispatch or local execution, so a dying pool
// slows a job down rather than failing it.
func DiscoverSharded(d *Dataset, opts Options, pool *ShardPool) (*Report, error) {
	return DiscoverShardedStreamContext(context.Background(), d, opts, pool, nil)
}

// DiscoverShardedStreamContext is DiscoverSharded with cooperative
// cancellation and per-level progress events (see DiscoverStreamContext —
// the contracts are identical). A nil pool falls back to local discovery.
func DiscoverShardedStreamContext(ctx context.Context, d *Dataset, opts Options, pool *ShardPool, onLevel ProgressFunc) (*Report, error) {
	if pool == nil {
		return DiscoverStreamContext(ctx, d, opts, onLevel)
	}
	return discoverStreamExec(ctx, d, opts, core.ShardedQuantum(pool.cluster, opts.ShardWorkQuantum), onLevel)
}
