package validate

import (
	"math"
	"math/rand"
	"testing"

	"aod/internal/dataset"
	"aod/internal/lis"
	"aod/internal/partition"
)

// TestTheorem34Reduction exercises the linear-time mapping from LIS-DEC
// instances to AOC validation instances used in the optimality proof
// (Theorem 3.4 / Section 6): for a list B of n distinct values and
// k = ⌊3·√n⌋, |LIS(B)| ≥ k iff the AOC A ∼ B on the table {(i, bᵢ)} is
// valid with threshold 1 − k/n.
func TestTheorem34Reduction(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	v := New()
	for iter := 0; iter < 200; iter++ {
		n := 4 + rng.Intn(60)
		// Distinct values: a random permutation (scaled).
		perm := rng.Perm(n)
		bvals := make([]int64, n)
		avals := make([]int64, n)
		seq := make([]int32, n)
		for i := 0; i < n; i++ {
			avals[i] = int64(i)
			bvals[i] = int64(perm[i]) * 3
			seq[i] = int32(perm[i])
		}
		k := int(math.Floor(3 * math.Sqrt(float64(n))))
		if k > n {
			k = n
		}
		lisLen := lis.LISLength(seq)

		tbl, err := dataset.NewBuilder().AddInts("a", avals).AddInts("b", bvals).Build()
		if err != nil {
			t.Fatal(err)
		}
		eps := 1 - float64(k)/float64(n)
		r := v.OptimalAOC(partition.Universe(n), tbl.Column(0), tbl.Column(1),
			Options{Threshold: eps, ComputeFullError: true})
		if (lisLen >= k) != r.Valid {
			t.Fatalf("iter %d (n=%d k=%d): |LIS|=%d but AOC valid=%v (e=%.4f, ε=%.4f)",
				iter, n, k, lisLen, r.Valid, r.Error, eps)
		}
		// With distinct values LNDS = LIS, so the minimal removal is n−|LIS|.
		if r.Removals != n-lisLen {
			t.Fatalf("iter %d: removals=%d, want n−|LIS|=%d", iter, r.Removals, n-lisLen)
		}
	}
}

// LNDSFunc (the generic comparator form) must agree with the int32 LNDS.
func TestLNDSFuncAgreesWithLNDS(t *testing.T) {
	rng := rand.New(rand.NewSource(124))
	for iter := 0; iter < 300; iter++ {
		n := rng.Intn(50)
		seq := make([]int32, n)
		for i := range seq {
			seq[i] = int32(rng.Intn(8))
		}
		want := lis.LNDS(seq)
		got := lis.LNDSFunc(n, func(i, j int) int {
			switch {
			case seq[i] < seq[j]:
				return -1
			case seq[i] > seq[j]:
				return 1
			default:
				return 0
			}
		})
		if len(got) != len(want) {
			t.Fatalf("iter %d: LNDSFunc len %d, LNDS len %d (seq %v)", iter, len(got), len(want), seq)
		}
		for k := 1; k < len(got); k++ {
			if got[k-1] >= got[k] || seq[got[k-1]] > seq[got[k]] {
				t.Fatalf("iter %d: LNDSFunc result invalid: %v over %v", iter, got, seq)
			}
		}
	}
}

// The sampled estimate must never exceed 1 and never be negative, and must
// be exact when the stride covers everything.
func TestSampledEstimateBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(125))
	v := New()
	for iter := 0; iter < 100; iter++ {
		rows := 2 + rng.Intn(100)
		b := dataset.NewBuilder()
		for c := 0; c < 2; c++ {
			vals := make([]int64, rows)
			for i := range vals {
				vals[i] = int64(rng.Intn(10))
			}
			b.AddInts(string(rune('a'+c)), vals)
		}
		tbl, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		ctx := partition.Universe(rows)
		for _, stride := range []int{1, 2, 4, 7} {
			est, _ := v.SampledAOCEstimate(ctx, tbl.Column(0), tbl.Column(1), stride)
			if est < 0 || est > 1 {
				t.Fatalf("iter %d stride %d: estimate %g out of range", iter, stride, est)
			}
		}
	}
}
