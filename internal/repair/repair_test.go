package repair

import (
	"math/rand"
	"reflect"
	"testing"

	"aod/internal/dataset"
	"aod/internal/partition"
	"aod/internal/validate"
)

func table1(t *testing.T) *dataset.Table {
	t.Helper()
	tbl, err := dataset.NewBuilder().
		AddStrings("pos", []string{"sec", "sec", "dev", "sec", "dev", "dev", "dev", "dev", "dir"}).
		AddInts("exp", []int64{1, 3, 1, 5, 3, 5, 5, -1, 8}).
		AddInts("sal", []int64{20, 25, 30, 40, 50, 55, 60, 90, 200}).
		AddInts("tax", []int64{20, 25, 3, 120, 15, 165, 18, 72, 160}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestForOCPaperExample(t *testing.T) {
	tbl := table1(t)
	ctx := partition.Single(tbl.Column(0)) // Π_pos
	exp, sal := 1, 2
	v := validate.New()
	r := v.OptimalAOC(ctx, tbl.Column(exp), tbl.Column(sal),
		validate.Options{Threshold: 1, CollectRemovals: true})
	if r.Removals != 1 || r.RemovalRows[0] != 7 {
		t.Fatalf("unexpected removal set %v", r.RemovalRows)
	}
	sug := ForOC(tbl, ctx, exp, sal, r.RemovalRows)
	if len(sug) != 1 || sug[0].Row != 7 {
		t.Fatalf("suggestions = %+v", sug)
	}
	// t8 (dev, exp=-1, sal=90): all kept dev rows have larger exp, so the
	// repair interval is unbounded below and bounded above by the smallest
	// kept dev salary (t3: exp=1, sal=30).
	if sug[0].LoRow != -1 {
		t.Errorf("LoRow = %d, want -1", sug[0].LoRow)
	}
	if sug[0].HiRow != 2 {
		t.Errorf("HiRow = %d, want 2 (t3)", sug[0].HiRow)
	}
}

func TestForOCSuggestionsAreConsistent(t *testing.T) {
	// Applying any value in the suggested interval must not create a swap
	// with kept rows. We verify bounds ordering: B(LoRow) <= B(HiRow).
	rng := rand.New(rand.NewSource(77))
	v := validate.New()
	for iter := 0; iter < 200; iter++ {
		rows := 4 + rng.Intn(30)
		b := dataset.NewBuilder()
		for c := 0; c < 3; c++ {
			vals := make([]int64, rows)
			for i := range vals {
				vals[i] = int64(rng.Intn(6))
			}
			b.AddInts(string(rune('a'+c)), vals)
		}
		tbl, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		ctx := partition.Single(tbl.Column(0))
		r := v.OptimalAOC(ctx, tbl.Column(1), tbl.Column(2),
			validate.Options{Threshold: 1, CollectRemovals: true})
		sug := ForOC(tbl, ctx, 1, 2, r.RemovalRows)
		if len(sug) != len(r.RemovalRows) {
			t.Fatalf("iter %d: %d suggestions for %d removals", iter, len(sug), len(r.RemovalRows))
		}
		rb := tbl.Column(2).Ranks()
		for _, s := range sug {
			if s.LoRow >= 0 && s.HiRow >= 0 && rb[s.LoRow] > rb[s.HiRow] {
				t.Fatalf("iter %d: inverted interval for row %d: lo %d > hi %d",
					iter, s.Row, rb[s.LoRow], rb[s.HiRow])
			}
		}
	}
}

func TestForOCEmptyRemovals(t *testing.T) {
	tbl := table1(t)
	ctx := partition.Universe(tbl.NumRows())
	if got := ForOC(tbl, ctx, 1, 2, nil); got != nil {
		t.Errorf("suggestions for empty removal = %v", got)
	}
}

func TestSuspicions(t *testing.T) {
	sets := [][]int32{{1, 2, 3}, {2, 3}, {3}, {9}}
	got := Suspicions(sets)
	want := []Suspicion{{3, 3}, {2, 2}, {1, 1}, {9, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Suspicions = %v, want %v", got, want)
	}
	if got := Suspicions(nil); len(got) != 0 {
		t.Errorf("Suspicions(nil) = %v", got)
	}
}
