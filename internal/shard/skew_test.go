package shard

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"
)

// writeJSONFrame hand-rolls a length-prefixed JSON frame the way every
// protocol generation does — the handshake stays JSON across versions
// precisely so that skew tests like these exercise the real rejection path,
// not a simulation of it.
func writeJSONFrame(t *testing.T, conn net.Conn, v any) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := conn.Write(append(hdr[:], body...)); err != nil {
		t.Fatal(err)
	}
}

func readJSONFrame(t *testing.T, conn net.Conn, v any) {
	t.Helper()
	var hdr [4]byte
	if _, err := conn.Read(hdr[:]); err != nil {
		t.Fatal(err)
	}
	body := make([]byte, binary.BigEndian.Uint32(hdr[:]))
	if _, err := conn.Read(body); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(body, v); err != nil {
		t.Fatalf("decoding %q: %v", body, err)
	}
}

// TestVersionSkewV1CoordinatorRejected pins the forward half of the skew
// contract: a v1 coordinator greeting a current-version worker gets an
// explicit in-band ack error naming both protocol numbers — never a hang or
// a garbage decode.
func TestVersionSkewV1CoordinatorRejected(t *testing.T) {
	w := NewWorker(WorkerOptions{})
	client, server := net.Pipe()
	done := make(chan struct{})
	go func() { w.ServeConn(server); close(done) }()
	client.SetDeadline(time.Now().Add(5 * time.Second))

	// A v1 hello is byte-compatible with every later hello: JSON, proto: 1.
	writeJSONFrame(t, client, &frame{T: "hello", Hello: &helloMsg{Proto: 1, Fingerprint: "fp", Rows: 10, Cols: 2}})
	var rf frame
	readJSONFrame(t, client, &rf)
	if rf.T != "ack" || rf.Ack == nil {
		t.Fatalf("worker answered a v1 hello with %+v, want an ack", rf)
	}
	if rf.Ack.OK || rf.Ack.Error == "" {
		t.Fatalf("worker accepted a v1 hello: %+v", rf.Ack)
	}
	if !strings.Contains(rf.Ack.Error, "protocol 1") ||
		!strings.Contains(rf.Ack.Error, fmt.Sprintf("want %d", protoVersion)) {
		t.Errorf("skew rejection should name both versions, got %q", rf.Ack.Error)
	}
	client.Close()
	<-done
}

// TestVersionSkewV1WorkerRejected pins the reverse half: a current-version
// coordinator dialing a v1 worker (which parses the JSON hello, sees a proto
// it does not speak, and refuses in-band exactly as every generation does)
// surfaces a clear handshake error.
func TestVersionSkewV1WorkerRejected(t *testing.T) {
	refusal := fmt.Sprintf("protocol %d not supported (want 1)", protoVersion)
	client, server := net.Pipe()
	defer client.Close()
	go func() {
		// Simulated v1 worker: all-JSON protocol, refuses proto != 1 with the
		// same in-band ack shape every later version uses.
		defer server.Close()
		br := bufio.NewReader(server)
		f, _, err := readFrame(br) // v1 parses any generation's JSON hello
		if err != nil || f.T != "hello" || f.Hello == nil {
			return
		}
		body, _ := json.Marshal(&frame{T: "ack", Ack: &ackMsg{Error: refusal}})
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
		server.Write(append(hdr[:], body...))
	}()

	c := &workerClient{addr: "v1-worker", conn: client, br: bufio.NewReader(client), bw: bufio.NewWriter(client)}
	err := c.handshake(context.Background(), 5*time.Second,
		&helloMsg{Proto: protoVersion, Fingerprint: "fp", Rows: 10, Cols: 2}, nil)
	if err == nil {
		t.Fatal("handshake with a v1 worker succeeded, want an explicit rejection")
	}
	if !strings.Contains(err.Error(), refusal) {
		t.Errorf("skew error should carry the worker's refusal verbatim, got %v", err)
	}
	if !c.dead.Load() {
		t.Error("a refused handshake should mark the worker client dead")
	}
}

// TestVersionSkewBinaryFrameRejected pins that a binary frame from a
// different protocol generation (wrong version byte) is refused at decode,
// before any payload parsing.
func TestVersionSkewBinaryFrameRejected(t *testing.T) {
	body := encodeLevelPayload([]byte{binMagic, protoVersion + 1, binLevel}, &levelMsg{Level: 1})
	if _, err := decodeFrame(body); err == nil || !strings.Contains(err.Error(), "protocol") {
		t.Fatalf("decodeFrame accepted a version-skewed binary frame: %v", err)
	}
}
