// Package shard distributes lattice-level validation across worker
// processes: the coordinator-side Cluster (implementing core.ShardPool) and
// the worker-side Worker speak a small framed protocol over any net.Conn —
// TCP for real deployments (cmd/aodworker), an in-process loopback for tests
// and benchmarks.
//
// The protocol is designed around the paper's observation (after Saxena,
// Golab & Ilyas, PVLDB 2019) that lattice nodes are independent within a
// level given the previous level's state: a session opens with a dataset
// fingerprint handshake (the payload ships only to workers that don't cache
// it, and single-column partitions are built once per worker per dataset),
// after which each lattice level ships only attribute-set tasks and
// validation verdicts — never partitions.
//
// Sequence, per connection (one connection = one job session):
//
//	C → hello   {proto, fingerprint, rows, cols, config}
//	W → ack     {ok, needDataset}
//	C → dataset {csv, types}          (only when needDataset)
//	W → ack     {ok}
//	repeat:
//	  C → level  {level, tasks}
//	  W → result {results}
//
// Framing is a 4-byte big-endian length prefix followed by one JSON-encoded
// frame. Errors are in-band (ack.error / result.error); transport failures
// surface as read/write errors and mark the worker dead for the session.
package shard

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"aod/internal/core"
	"aod/internal/telemetry"
)

// protoVersion guards against coordinator/worker skew: a worker refuses a
// hello whose version it does not speak, and the coordinator treats that
// worker as unusable.
const protoVersion = 1

// maxFrameBytes bounds a single frame (the dataset frame dominates; task and
// result frames are small). Oversized frames poison the connection.
const maxFrameBytes = 1 << 30

// frame is the single wire envelope; T selects which payload is set.
type frame struct {
	T       string      `json:"t"`
	Hello   *helloMsg   `json:"hello,omitempty"`
	Ack     *ackMsg     `json:"ack,omitempty"`
	Dataset *datasetMsg `json:"dataset,omitempty"`
	Level   *levelMsg   `json:"level,omitempty"`
	Result  *resultMsg  `json:"result,omitempty"`
}

// helloMsg opens a job session: the dataset's identity and the discovery
// configuration the worker must validate tasks under.
type helloMsg struct {
	Proto       int         `json:"proto"`
	Fingerprint string      `json:"fingerprint"`
	Rows        int         `json:"rows"`
	Cols        int         `json:"cols"`
	Config      core.Config `json:"config"`
}

// ackMsg answers hello and dataset frames.
type ackMsg struct {
	OK bool `json:"ok"`
	// NeedDataset asks the coordinator to ship the dataset payload (the
	// fingerprint missed the worker's cache).
	NeedDataset bool   `json:"needDataset,omitempty"`
	Error       string `json:"error,omitempty"`
}

// datasetMsg ships the dataset as CSV plus the explicit column types that
// make the round trip lossless (equal fingerprint on the worker — verified).
type datasetMsg struct {
	CSV   []byte   `json:"csv"`
	Types []string `json:"types"`
}

// levelMsg carries one contiguous slice of a lattice level. Trace, when
// non-empty, is the coordinator's trace ID; the worker echoes it on the
// spans it returns so they stitch into the coordinator's trace. The field is
// additive and omitempty, so protoVersion stays 1 — a v1 worker without it
// simply returns no spans.
type levelMsg struct {
	Level int             `json:"level"`
	Tasks []core.NodeTask `json:"tasks"`
	Trace string          `json:"trace,omitempty"`
}

// resultMsg answers a levelMsg with the slice's results in task order.
// Spans carries the worker-side span tree for the slice (only when the
// request carried a trace ID), on the worker's own clock — the coordinator
// re-bases them under its RPC span.
type resultMsg struct {
	Results []core.NodeResult    `json:"results,omitempty"`
	Spans   []telemetry.WireSpan `json:"spans,omitempty"`
	Error   string               `json:"error,omitempty"`
}

// writeFrame encodes f and writes it length-prefixed.
func writeFrame(w io.Writer, f *frame) error {
	body, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("shard: encode %s frame: %w", f.T, err)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// readFrame reads one length-prefixed frame.
func readFrame(r io.Reader) (*frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrameBytes {
		return nil, fmt.Errorf("shard: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	var f frame
	if err := json.Unmarshal(body, &f); err != nil {
		return nil, fmt.Errorf("shard: decode frame: %w", err)
	}
	return &f, nil
}
