package aod

import (
	"fmt"
	"strings"
	"time"

	"aod/internal/core"
)

// Algorithm selects the validation algorithm used during discovery.
type Algorithm int

const (
	// AlgorithmOptimal is the paper's LNDS-based optimal validator
	// (Algorithm 2): O(n log n), guaranteed-minimal removal sets, complete
	// discovery. This is the default.
	AlgorithmOptimal Algorithm = iota
	// AlgorithmExact discovers exact order dependencies only (ε = 0), the
	// "OD" baseline of the paper's experiments.
	AlgorithmExact
	// AlgorithmIterative is the legacy greedy validator (Algorithm 1):
	// O(n log n + εn²), may overestimate approximation factors and thus
	// miss valid dependencies. Provided as the paper's comparison baseline.
	AlgorithmIterative
)

// String names the algorithm as in the paper's figures.
func (a Algorithm) String() string { return a.kind().String() }

func (a Algorithm) kind() core.ValidatorKind {
	switch a {
	case AlgorithmExact:
		return core.ValidatorExact
	case AlgorithmIterative:
		return core.ValidatorIterative
	default:
		return core.ValidatorOptimal
	}
}

// Options configures Discover. The zero value runs the optimal validator
// with threshold 0 (equivalent to exact discovery); set Threshold to the
// tolerated exception fraction (the paper's experiments default to 0.10) to
// discover approximate dependencies.
type Options struct {
	// Threshold is the approximation threshold ε ∈ [0,1]: a dependency is
	// reported when at most ε·|rows| tuples must be removed for it to hold.
	Threshold float64
	// Algorithm selects the validator (default AlgorithmOptimal).
	Algorithm Algorithm
	// MaxLevel bounds the attribute-lattice level explored (0 = unbounded).
	MaxLevel int
	// IncludeOFDs also reports order functional dependencies (constancy
	// dependencies); OCs are always reported.
	IncludeOFDs bool
	// CollectRemovalSets attaches minimal removal sets to each dependency.
	CollectRemovalSets bool
	// TimeLimit aborts discovery after this duration with partial results
	// (Stats.TimedOut set). 0 disables.
	TimeLimit time.Duration
	// Parallelism > 1 validates each lattice level's candidates across that
	// many workers (0 or 1 = sequential). Results are identical to the
	// sequential run.
	Parallelism int
	// SampleStride > 1 enables hybrid-sampling pre-filtering of AOC
	// candidates (the paper's future-work direction): candidates whose
	// error estimate on every SampleStride-th tuple exceeds
	// Threshold+SampleSlack are rejected without a full validation. All
	// reported dependencies are still fully validated; the mode trades a
	// small completeness risk for validation time.
	SampleStride int
	// SampleSlack is the hybrid-sampling rejection margin (0 = default 0.05).
	SampleSlack float64
	// Bidirectional additionally searches mixed-direction order
	// compatibilities "A ∼ B↓" (A ascending, B descending), after the
	// bidirectional OD framework the paper builds upon.
	Bidirectional bool
}

// OC is a discovered (approximate) order compatibility: within each group of
// rows agreeing on Context, A and B can be sorted simultaneously after
// removing Removals rows table-wide.
type OC struct {
	// Context holds the context column names (possibly empty).
	Context []string
	// A and B are the order-compatible columns.
	A, B string
	// Descending marks a mixed-direction OC (A ascending, B descending),
	// reported only under Options.Bidirectional.
	Descending bool
	// Error is the approximation factor e ∈ [0,1] (0 = holds exactly).
	Error float64
	// Removals is the removal-set size behind Error.
	Removals int
	// Level is the lattice level at which the dependency was found.
	Level int
	// Score is the interestingness score (higher = more interesting).
	Score float64
	// RemovalRows holds minimal-removal-set row indexes when requested.
	RemovalRows []int
}

// String renders the OC in the paper's canonical notation; mixed-direction
// OCs carry a "↓" on the descending side.
func (d OC) String() string {
	mark := ""
	if d.Descending {
		mark = "↓"
	}
	return fmt.Sprintf("{%s}: %s ∼ %s%s (e=%.4f)", strings.Join(d.Context, ","), d.A, d.B, mark, d.Error)
}

// OFD is a discovered (approximate) order functional dependency: A is
// constant within each group of rows agreeing on Context, up to Removals
// exceptions.
type OFD struct {
	Context     []string
	A           string
	Error       float64
	Removals    int
	Level       int
	Score       float64
	RemovalRows []int
}

// String renders the OFD in the paper's canonical notation.
func (d OFD) String() string {
	return fmt.Sprintf("{%s}: [] ↦ %s (e=%.4f)", strings.Join(d.Context, ","), d.A, d.Error)
}

// Stats instruments a discovery run.
type Stats struct {
	// Rows and Attrs describe the input.
	Rows, Attrs int
	// LevelsProcessed is the number of lattice levels examined.
	LevelsProcessed int
	// NodesProcessed counts attribute sets whose candidates were examined.
	NodesProcessed int
	// OCCandidates and OFDCandidates count validated candidates.
	OCCandidates, OFDCandidates int
	// OCsFoundPerLevel / OFDsFoundPerLevel index discovered counts by level.
	OCsFoundPerLevel, OFDsFoundPerLevel []int
	// ValidationTime is wall-clock time inside validators; PartitionTime is
	// time spent building partitions; TotalTime is end-to-end.
	ValidationTime, PartitionTime, TotalTime time.Duration
	// TimedOut reports a TimeLimit abort (results are partial).
	TimedOut bool
	// EarlyStopped reports that discovery ended before exhausting the
	// lattice because no candidates remained.
	EarlyStopped bool
}

// ValidationShare returns ValidationTime/TotalTime — the fraction of runtime
// spent validating candidates (the paper reports up to 99.6% for the
// iterative algorithm).
func (s Stats) ValidationShare() float64 {
	if s.TotalTime <= 0 {
		return 0
	}
	return float64(s.ValidationTime) / float64(s.TotalTime)
}

// AvgOCLevel returns the mean lattice level of the discovered OCs.
func (s Stats) AvgOCLevel() float64 {
	n, sum := 0, 0
	for lvl, c := range s.OCsFoundPerLevel {
		n += c
		sum += lvl * c
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// Report is the result of a discovery run. Dependencies are ordered by
// descending interestingness score.
type Report struct {
	OCs   []OC
	OFDs  []OFD
	Stats Stats
}

// Discover finds the complete set of minimal (approximate) order
// compatibilities — and, optionally, order functional dependencies — that
// hold on the dataset within the configured threshold.
func Discover(d *Dataset, opts Options) (*Report, error) {
	cfg := core.Config{
		Threshold:          opts.Threshold,
		Validator:          opts.Algorithm.kind(),
		MaxLevel:           opts.MaxLevel,
		IncludeOFDs:        opts.IncludeOFDs,
		CollectRemovalSets: opts.CollectRemovalSets,
		TimeLimit:          opts.TimeLimit,
		SampleStride:       opts.SampleStride,
		SampleSlack:        opts.SampleSlack,
		Bidirectional:      opts.Bidirectional,
	}
	var res *core.Result
	var err error
	if opts.Parallelism > 1 {
		res, err = core.DiscoverParallel(d.table(), cfg, opts.Parallelism)
	} else {
		res, err = core.Discover(d.table(), cfg)
	}
	if err != nil {
		return nil, err
	}
	res.SortByScore()
	names := d.ColumnNames()
	rep := &Report{
		Stats: Stats{
			Rows:              res.Stats.Rows,
			Attrs:             res.Stats.Attrs,
			LevelsProcessed:   res.Stats.LevelsProcessed,
			NodesProcessed:    res.Stats.NodesProcessed,
			OCCandidates:      res.Stats.OCCandidates,
			OFDCandidates:     res.Stats.OFDCandidates,
			OCsFoundPerLevel:  res.Stats.OCsFoundPerLevel,
			OFDsFoundPerLevel: res.Stats.OFDsFoundPerLevel,
			ValidationTime:    res.Stats.ValidationTime,
			PartitionTime:     res.Stats.PartitionTime,
			TotalTime:         res.Stats.TotalTime,
			TimedOut:          res.Stats.TimedOut,
			EarlyStopped:      res.Stats.EarlyStopped,
		},
	}
	for _, oc := range res.OCs {
		var ctx []string
		oc.Context.ForEach(func(a int) { ctx = append(ctx, names[a]) })
		rep.OCs = append(rep.OCs, OC{
			Context:     ctx,
			A:           names[oc.A],
			B:           names[oc.B],
			Descending:  oc.Descending,
			Error:       oc.Error,
			Removals:    oc.Removals,
			Level:       oc.Level,
			Score:       oc.Score,
			RemovalRows: toInts(oc.RemovalRows),
		})
	}
	for _, ofd := range res.OFDs {
		var ctx []string
		ofd.Context.ForEach(func(a int) { ctx = append(ctx, names[a]) })
		rep.OFDs = append(rep.OFDs, OFD{
			Context:     ctx,
			A:           names[ofd.A],
			Error:       ofd.Error,
			Removals:    ofd.Removals,
			Level:       ofd.Level,
			Score:       ofd.Score,
			RemovalRows: toInts(ofd.RemovalRows),
		})
	}
	return rep, nil
}

func toInts(rows []int32) []int {
	if rows == nil {
		return nil
	}
	out := make([]int, len(rows))
	for i, r := range rows {
		out[i] = int(r)
	}
	return out
}
