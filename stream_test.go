package aod

import (
	"fmt"
	"math/rand"
	"testing"
)

func streamTestDataset(t *testing.T, rows, cols int) *Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	b := NewBuilder()
	for c := 0; c < cols; c++ {
		vals := make([]int64, rows)
		for i := range vals {
			vals[i] = int64(rng.Intn(6))
		}
		b.AddInts(fmt.Sprintf("c%d", c), vals)
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestDiscoverStreamPartials pins the public streaming contract: per-level
// events with growing partial reports, a Final last event, a final partial
// identical to the returned report, and identical results with and without
// the callback.
func TestDiscoverStreamPartials(t *testing.T) {
	ds := streamTestDataset(t, 300, 6)
	opts := Options{Threshold: 0.15, IncludeOFDs: true}

	var progresses []Progress
	var partials []*Report
	rep, err := DiscoverStream(ds, opts, func(p Progress, partial *Report) {
		progresses = append(progresses, p)
		partials = append(partials, partial)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(progresses) < 2 {
		t.Fatalf("want a multi-level stream, got %d events", len(progresses))
	}
	for i := range progresses {
		if progresses[i].Level != i+1 {
			t.Errorf("event %d at level %d", i, progresses[i].Level)
		}
		if (i == len(progresses)-1) != progresses[i].Final {
			t.Errorf("event %d Final=%v", i, progresses[i].Final)
		}
		if got := len(partials[i].OCs); got != progresses[i].OCsFound {
			t.Errorf("event %d: %d OCs in partial, progress says %d", i, got, progresses[i].OCsFound)
		}
		if i > 0 && len(partials[i].OCs) < len(partials[i-1].OCs) {
			t.Errorf("partial report shrank at event %d", i)
		}
	}
	last := partials[len(partials)-1]
	if len(last.OCs) != len(rep.OCs) || len(last.OFDs) != len(rep.OFDs) {
		t.Errorf("final partial (%d OCs) differs from returned report (%d OCs)",
			len(last.OCs), len(rep.OCs))
	}

	plain, err := Discover(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.OCs) != len(rep.OCs) || len(plain.OFDs) != len(rep.OFDs) {
		t.Errorf("streaming changed the result: %d/%d OCs", len(rep.OCs), len(plain.OCs))
	}
	for i := range plain.OCs {
		if plain.OCs[i].String() != rep.OCs[i].String() {
			t.Errorf("OC %d differs: %v vs %v", i, rep.OCs[i], plain.OCs[i])
		}
	}
}

// TestDiscoverStreamParallel: the worker-pool executor streams the same
// events as the serial one.
func TestDiscoverStreamParallel(t *testing.T) {
	ds := streamTestDataset(t, 300, 6)
	run := func(par int) (events int, rep *Report) {
		var n int
		rep, err := DiscoverStream(ds, Options{Threshold: 0.15, Parallelism: par},
			func(p Progress, partial *Report) { n++ })
		if err != nil {
			t.Fatal(err)
		}
		return n, rep
	}
	se, sr := run(0)
	pe, pr := run(4)
	if se != pe {
		t.Errorf("serial streamed %d events, parallel %d", se, pe)
	}
	if len(sr.OCs) != len(pr.OCs) {
		t.Errorf("serial found %d OCs, parallel %d", len(sr.OCs), len(pr.OCs))
	}
}

// TestEstimateWork pins the scheduler's cost formula and its MaxLevel
// sensitivity: bounding the lattice bounds the estimate.
func TestEstimateWork(t *testing.T) {
	if got := EstimateWork(1000, 8, 0); got != 1000*8*8 {
		t.Errorf("EstimateWork(1000,8,0) = %d", got)
	}
	if got := EstimateWork(1000, 8, 3); got != 1000*8*3 {
		t.Errorf("EstimateWork(1000,8,3) = %d", got)
	}
	if got := EstimateWork(1000, 8, 99); got != 1000*8*8 {
		t.Errorf("EstimateWork(1000,8,99) = %d (no-op bound must not inflate)", got)
	}
	if EstimateWork(100, 3, 0) >= EstimateWork(100000, 3, 0) {
		t.Error("more rows must estimate more work")
	}
}
