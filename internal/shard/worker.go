package shard

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"aod/internal/core"
	"aod/internal/dataset"
	"aod/internal/telemetry"
)

// WorkerOptions tunes a Worker. The zero value is ready for production use.
type WorkerOptions struct {
	// MaxDatasets bounds the prepared-dataset cache; past it the least
	// recently used dataset (table + single-column partitions) is dropped.
	// 0 selects the default (16); negative is unbounded.
	MaxDatasets int
	// Logf, when non-nil, receives one line per session event.
	Logf func(format string, args ...any)
	// LevelHook, when non-nil, runs before each level slice is processed; a
	// non-nil error makes the worker drop the connection without replying —
	// the fault-injection seam behind the worker-death tests.
	LevelHook func(level, tasks int) error
	// Metrics, when non-nil, receives the worker's counters and slice-exec
	// latency histogram (the aodworker /metrics surface).
	Metrics *telemetry.Registry
}

// Worker is the shard-worker server: it caches datasets by content
// fingerprint (building single-column partitions once per dataset) and
// validates the lattice-level task slices coordinators send it. One Worker
// serves any number of concurrent connections; each connection is one job
// session with its own TaskRunner.
type Worker struct {
	opts WorkerOptions

	mu    sync.Mutex
	cache map[string]*cachedDataset
	tick  uint64

	// Counters, exposed for logging and tests.
	sessions     atomic.Uint64
	levelsRun    atomic.Uint64
	tasksRun     atomic.Uint64
	datasetLoads atomic.Uint64
	partsSeeded  atomic.Uint64

	// Wire-level counters (bytes and frames across all connections), the
	// worker-side mirror of the cluster's aod_shard_* metrics.
	bytesTx    atomic.Uint64
	bytesRx    atomic.Uint64
	wireFrames atomic.Uint64

	// execHist observes per-slice execution latency (nil without Metrics).
	execHist *telemetry.Histogram
}

type cachedDataset struct {
	prep *core.PreparedTable
	used uint64
}

// NewWorker returns a Worker with an empty dataset cache.
func NewWorker(opts WorkerOptions) *Worker {
	if opts.MaxDatasets == 0 {
		opts.MaxDatasets = 16
	}
	if opts.MaxDatasets < 0 {
		opts.MaxDatasets = 0 // unbounded
	}
	w := &Worker{opts: opts, cache: make(map[string]*cachedDataset)}
	if r := opts.Metrics; r != nil {
		// The atomics below stay the source of truth; the registry samples
		// them at scrape time, so nothing is double-counted.
		r.CounterFunc("aodworker_sessions_total", "", "Job sessions accepted.", w.sessions.Load)
		r.CounterFunc("aodworker_levels_total", "", "Level slices processed.", w.levelsRun.Load)
		r.CounterFunc("aodworker_tasks_total", "", "Node tasks processed.", w.tasksRun.Load)
		r.CounterFunc("aodworker_dataset_loads_total", "", "Dataset payloads shipped to this worker.", w.datasetLoads.Load)
		r.CounterFunc("aodworker_partitions_seeded_total", "", "Coordinator-shipped partitions accepted into fold memos.", w.partsSeeded.Load)
		r.CounterFunc("aod_shard_bytes_total", telemetry.Label("dir", "tx"), "Shard protocol bytes by direction.", w.bytesTx.Load)
		r.CounterFunc("aod_shard_bytes_total", telemetry.Label("dir", "rx"), "Shard protocol bytes by direction.", w.bytesRx.Load)
		r.CounterFunc("aod_shard_frames_total", "", "Shard protocol frames sent and received.", w.wireFrames.Load)
		r.GaugeFunc("aodworker_cached_datasets", "", "Prepared datasets currently cached.", func() int64 { return int64(w.CachedDatasets()) })
		w.execHist = r.Histogram("aodworker_slice_exec_seconds", "", "Per-slice execution latency.")
	}
	return w
}

// CachedDatasets returns the number of datasets currently prepared.
func (w *Worker) CachedDatasets() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.cache)
}

// TasksRun returns the number of node tasks processed since start.
func (w *Worker) TasksRun() uint64 { return w.tasksRun.Load() }

// PartitionsSeeded returns how many coordinator-shipped partitions this
// worker has accepted into task-runner fold memos.
func (w *Worker) PartitionsSeeded() uint64 { return w.partsSeeded.Load() }

// DatasetLoads returns how many times a dataset payload was shipped to this
// worker — the fingerprint handshake keeps it at one per distinct dataset,
// however many jobs run against it.
func (w *Worker) DatasetLoads() uint64 { return w.datasetLoads.Load() }

// Sessions returns the number of sessions accepted since start.
func (w *Worker) Sessions() uint64 { return w.sessions.Load() }

func (w *Worker) logf(format string, args ...any) {
	if w.opts.Logf != nil {
		w.opts.Logf(format, args...)
	}
}

// Serve accepts connections until the listener closes, one session per
// connection.
func (w *Worker) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go w.ServeConn(conn)
	}
}

// ServeConn runs one job session over the connection and closes it when the
// session ends (coordinator done, transport error, or fault injection).
func (w *Worker) ServeConn(conn net.Conn) {
	defer conn.Close()
	w.sessions.Add(1)
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)

	runner, err := w.handshake(conn, br, bw)
	if err != nil {
		w.logf("shard worker: %s: handshake: %v", conn.RemoteAddr(), err)
		return
	}

	// Span offsets within this session are measured from the session's own
	// start — an arbitrary zero the coordinator re-bases (AddRemote) under
	// its RPC span. prevEncodeNs carries the previous reply's serialization
	// time: a reply cannot time its own encoding (it is part of the payload),
	// so each slice reports its predecessor's.
	sessionStart := time.Now()
	var prevEncodeNs int64
	var prevHits, prevBuilds, prevSeeded uint64
	for {
		f, err := w.readFrame(br)
		if err != nil {
			return // session over (EOF on clean close)
		}
		if f.T == "parts" && f.Parts != nil {
			// Fire-and-forget seeds for the level frame that follows: queue
			// them on the runner (installed after its next memo rotation) and
			// keep reading — the level's result frame answers for both.
			for _, sp := range f.Parts.Parts {
				if sp.Part.N != runner.NumRows() {
					w.reply(bw, &frame{T: "result", Result: &resultMsg{Error: fmt.Sprintf(
						"parts frame partition over %d rows (dataset has %d)", sp.Part.N, runner.NumRows())}})
					return
				}
			}
			runner.SeedPartitions(f.Parts.Parts)
			continue
		}
		if f.T != "level" || f.Level == nil {
			w.reply(bw, &frame{T: "result", Result: &resultMsg{Error: fmt.Sprintf("unexpected %q frame", f.T)}})
			return
		}
		if hook := w.opts.LevelHook; hook != nil {
			if err := hook(f.Level.Level, len(f.Level.Tasks)); err != nil {
				w.logf("shard worker: dropping connection at level %d: %v", f.Level.Level, err)
				return // abrupt death, no reply
			}
		}
		execStart := time.Since(sessionStart)
		t0 := time.Now()
		results, connOK := w.runLevelMonitored(conn, runner, f.Level.Tasks)
		execDur := time.Since(t0)
		w.execHist.Observe(execDur)
		w.levelsRun.Add(1)
		w.tasksRun.Add(uint64(len(f.Level.Tasks)))
		if !connOK {
			w.logf("shard worker: connection lost mid-level; dropping slice")
			return
		}
		seeded := runner.SeededPartitions()
		w.partsSeeded.Add(seeded - prevSeeded)
		res := &resultMsg{Results: results}
		if f.Level.Trace != "" {
			// The echoed trace ID (Label) is the propagation proof the
			// coordinator-side tests assert on.
			hits, builds := runner.PartitionCacheStats()
			res.Spans = []telemetry.WireSpan{{
				Name:    "worker-exec",
				Label:   f.Level.Trace,
				StartNs: int64(execStart),
				DurNs:   int64(execDur),
				Attrs: map[string]int64{
					"tasks":            int64(len(f.Level.Tasks)),
					"partitionHits":    int64(hits - prevHits),
					"partitionBuilds":  int64(builds - prevBuilds),
					"partitionsSeeded": int64(seeded - prevSeeded),
					"prevEncodeNs":     prevEncodeNs,
				},
			}}
			prevHits, prevBuilds = hits, builds
		}
		prevSeeded = seeded
		e0 := time.Now()
		ok := w.reply(bw, &frame{T: "result", Result: res})
		prevEncodeNs = int64(time.Since(e0))
		if !ok {
			return
		}
	}
}

// runLevelMonitored executes a slice under a context that is canceled if the
// connection dies mid-computation, so a slice abandoned by its coordinator
// (job canceled, call timed out, straggler lost the race) stops burning CPU
// instead of validating to the end. The protocol is strict
// request/response — while a slice computes the coordinator sends nothing —
// so a raw read completing during computation means the peer is gone (or
// violated the protocol; either way the session is over and the connection
// reports not-OK). The monitor is kicked off the connection via a read
// deadline before the reply is written, so it can never consume bytes of a
// subsequent frame.
func (w *Worker) runLevelMonitored(conn net.Conn, runner *core.TaskRunner, tasks []core.NodeTask) ([]core.NodeResult, bool) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var lost atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		var b [1]byte
		n, err := conn.Read(b[:])
		if n > 0 || !isTimeout(err) {
			lost.Store(true)
			cancel()
		}
	}()
	results := runner.RunLevel(ctx, tasks)
	conn.SetReadDeadline(time.Now()) // unblock the monitor
	<-done
	conn.SetReadDeadline(time.Time{})
	return results, !lost.Load()
}

// isTimeout reports the error of a read interrupted by the monitor kick-out
// deadline (as opposed to a real connection failure).
func isTimeout(err error) bool {
	if errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// readFrame reads one frame, folding its size into the wire counters.
func (w *Worker) readFrame(br *bufio.Reader) (*frame, error) {
	f, n, err := readFrame(br)
	w.bytesRx.Add(uint64(n))
	if err == nil {
		w.wireFrames.Add(1)
	}
	return f, err
}

// handshake negotiates the session: protocol version, dataset (shipping the
// payload when the fingerprint misses the cache), and configuration.
func (w *Worker) handshake(conn net.Conn, br *bufio.Reader, bw *bufio.Writer) (*core.TaskRunner, error) {
	f, err := w.readFrame(br)
	if err != nil {
		return nil, err
	}
	if f.T != "hello" || f.Hello == nil {
		return nil, fmt.Errorf("expected hello, got %q", f.T)
	}
	h := f.Hello
	if h.Proto != protoVersion {
		w.reply(bw, &frame{T: "ack", Ack: &ackMsg{Error: fmt.Sprintf("protocol %d not supported (want %d)", h.Proto, protoVersion)}})
		return nil, fmt.Errorf("protocol mismatch: %d", h.Proto)
	}

	prep := w.lookup(h.Fingerprint)
	if prep == nil {
		if !w.reply(bw, &frame{T: "ack", Ack: &ackMsg{OK: true, NeedDataset: true}}) {
			return nil, fmt.Errorf("requesting dataset")
		}
		df, err := w.readFrame(br)
		if err != nil {
			return nil, err
		}
		if df.T != "dataset" || df.Dataset == nil {
			return nil, fmt.Errorf("expected dataset, got %q", df.T)
		}
		w.datasetLoads.Add(1)
		tbl, err := dataset.TableFromColumns(df.Dataset.Rows, df.Dataset.Cols)
		if err != nil {
			w.reply(bw, &frame{T: "ack", Ack: &ackMsg{Error: "rebuilding dataset: " + err.Error()}})
			return nil, err
		}
		if got := dataset.Fingerprint(tbl); got != h.Fingerprint {
			err := fmt.Errorf("dataset fingerprint mismatch: got %s, want %s", got, h.Fingerprint)
			w.reply(bw, &frame{T: "ack", Ack: &ackMsg{Error: err.Error()}})
			return nil, err
		}
		prep = core.Prepare(tbl)
		w.store(h.Fingerprint, prep)
		w.logf("shard worker: cached dataset %.12s (%d rows × %d cols)", h.Fingerprint, tbl.NumRows(), tbl.NumCols())
	}

	runner, err := prep.NewTaskRunner(h.Config)
	if err != nil {
		w.reply(bw, &frame{T: "ack", Ack: &ackMsg{Error: "config: " + err.Error()}})
		return nil, err
	}
	if !w.reply(bw, &frame{T: "ack", Ack: &ackMsg{OK: true}}) {
		return nil, fmt.Errorf("acking handshake")
	}
	return runner, nil
}

func (w *Worker) reply(bw *bufio.Writer, f *frame) bool {
	n, err := writeFrame(bw, f)
	if err != nil {
		return false
	}
	w.bytesTx.Add(uint64(n))
	w.wireFrames.Add(1)
	return bw.Flush() == nil
}

// lookup returns the cached prepared dataset and refreshes its LRU stamp.
func (w *Worker) lookup(fingerprint string) *core.PreparedTable {
	w.mu.Lock()
	defer w.mu.Unlock()
	e, ok := w.cache[fingerprint]
	if !ok {
		return nil
	}
	w.tick++
	e.used = w.tick
	return e.prep
}

// store caches the prepared dataset, evicting the least recently used entry
// past the bound. Sessions holding an evicted PreparedTable keep using it —
// eviction only drops the cache reference.
func (w *Worker) store(fingerprint string, prep *core.PreparedTable) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.tick++
	w.cache[fingerprint] = &cachedDataset{prep: prep, used: w.tick}
	if w.opts.MaxDatasets <= 0 {
		return
	}
	for len(w.cache) > w.opts.MaxDatasets {
		oldest, min := "", uint64(0)
		for fp, e := range w.cache {
			if oldest == "" || e.used < min {
				oldest, min = fp, e.used
			}
		}
		delete(w.cache, oldest)
	}
}
