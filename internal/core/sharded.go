package core

import (
	"context"
	"runtime"
	"sync"

	"aod/internal/dataset"
	"aod/internal/lattice"
	"aod/internal/telemetry"
	"aod/internal/validate"
)

// ShardPool provisions shard workers for one discovery run. It is
// implemented by internal/shard.Cluster (TCP workers or the in-process
// loopback transport); core only sees the session contract.
type ShardPool interface {
	// Open pins the run's dataset and configuration on every reachable
	// worker (fingerprint handshake; the dataset payload ships only to
	// workers that don't already cache it) and returns the session. An error
	// means no worker is usable — the sharded executor then degrades to
	// local execution rather than failing the run.
	Open(ctx context.Context, tbl *dataset.Table, cfg Config) (ShardSession, error)
}

// ShardSession is one run's window onto the worker pool.
type ShardSession interface {
	// Width is the number of healthy shards; each lattice level is split
	// into at most Width contiguous slices dispatched concurrently.
	Width() int
	// RunSlice processes one slice of a level on shard `shard`, returning
	// results in task order. Implementations own the per-shard timeout,
	// retry-on-another-shard, and straggler re-dispatch policies; an error
	// means every route failed and the caller should run the slice locally.
	RunSlice(ctx context.Context, shard, level int, tasks []NodeTask) ([]NodeResult, error)
	Close() error
}

// Sharded returns the distributed executor: each lattice level's tasks are
// sliced contiguously across the pool's shards, executed remotely, and the
// results merged in node order — so reports and non-timing stats are
// identical to Serial()'s, only the machines differ. Every failure mode
// degrades instead of failing the job: an unreachable pool runs the whole
// job locally, a dead or straggling worker has its slice re-dispatched by
// the session or, last, executed locally by the coordinator.
func Sharded(pool ShardPool) Executor { return &shardedExecutor{pool: pool} }

type shardedExecutor struct {
	pool ShardPool
	sess ShardSession
	eng  *engine
	// localMu serializes local (fallback) slice execution: the engine and
	// the lattice's lazily materialized partitions are not concurrency-safe.
	localMu sync.Mutex
}

func (x *shardedExecutor) prepare(t *traversal) bool {
	if !t.buildSingles(runtime.GOMAXPROCS(0)) {
		return false
	}
	x.eng = &engine{t: t, v: validate.New(), res: t.res}
	ctx := t.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if sess, err := x.pool.Open(ctx, t.tbl, t.cfg); err == nil {
		x.sess = sess
	}
	// A pool with no reachable worker leaves sess nil: the run proceeds
	// fully locally (degraded, not failed).
	return !t.abortedInto(&t.res.Stats)
}

func (x *shardedExecutor) close() {
	if x.sess != nil {
		x.sess.Close()
		x.sess = nil
	}
}

func (x *shardedExecutor) runLevel(t *traversal, cur, prev, prev2 *lattice.Level) int {
	st := &t.res.Stats
	if t.abortedInto(st) {
		return 0
	}
	width := 0
	if x.sess != nil {
		width = x.sess.Width()
	}
	if width <= 0 {
		// No shard usable at all: run the level exactly like the serial
		// executor — per-node scratch, no retained task/result slices.
		candidates := 0
		for _, node := range cur.Nodes {
			if x.eng.aborted() {
				return candidates
			}
			st.NodesProcessed++
			candidates += x.eng.processNode(node, prev, prev2)
		}
		x.eng.aborted()
		return candidates
	}

	// Propagation needs the whole previous level, so tasks are built
	// coordinator-side (cheap: bitmask unions), in node order.
	tasks := make([]NodeTask, len(cur.Nodes))
	for i, n := range cur.Nodes {
		tasks[i] = buildTask(n, prev, t.numAttrs, t.cfg.Bidirectional)
	}
	results := make([]NodeResult, len(tasks))

	ctx := t.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	// Per-slice RPC spans parent under the current level's span, so a trace
	// shows each slice's round trips (and worker-side spans) per level.
	ctx = telemetry.NewContext(ctx, t.trace, t.levelSpan.ID())
	var wg sync.WaitGroup
	for shard := 0; shard < width; shard++ {
		lo, hi := sliceBounds(len(tasks), width, shard)
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(shard, lo, hi int) {
			defer wg.Done()
			rs, err := x.sess.RunSlice(ctx, shard, cur.Number, tasks[lo:hi])
			if err == nil && len(rs) == hi-lo {
				copy(results[lo:hi], rs)
				return
			}
			// Every remote route failed (or the session degenerated): run
			// the slice here so the job completes regardless.
			x.runLocal(t, tasks[lo:hi], results[lo:hi], prev, prev2)
		}(shard, lo, hi)
	}
	wg.Wait()

	// Merge in node order: applyTask is the single entry point for results,
	// so the report and the non-timing stats match Serial() byte for byte.
	candidates := 0
	for i, n := range cur.Nodes {
		st.NodesProcessed++
		x.eng.applyTask(n, &tasks[i], &results[i])
		candidates += results[i].Candidates
	}
	// Record a deadline/cancellation that landed after the last slice, so
	// the pipeline stops before generating the next level.
	x.eng.aborted()
	return candidates
}

// runLocal executes a slice on the coordinator, resolving partitions through
// the lattice like the serial executor. Serialized by localMu: concurrent
// fallback slices share one engine and the nodes' lazily materialized
// partitions.
func (x *shardedExecutor) runLocal(t *traversal, tasks []NodeTask, results []NodeResult, prev, prev2 *lattice.Level) {
	x.localMu.Lock()
	defer x.localMu.Unlock()
	src := levelSource{e: x.eng, parents: prev, grandparents: prev2}
	for i := range tasks {
		if x.eng.aborted() {
			return
		}
		// Results are retained until the level's apply pass, so each slot is
		// filled in place rather than through the engine scratch.
		x.eng.execTask(&tasks[i], src, &results[i])
	}
}

// sliceBounds returns the [lo, hi) bounds of the shard-th of `width`
// contiguous near-equal slices over n tasks.
func sliceBounds(n, width, shard int) (int, int) {
	return shard * n / width, (shard + 1) * n / width
}
