package core

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"aod/internal/gen"
	"aod/internal/lattice"
)

// zeroTimes clears the wall-clock fields, which legitimately differ between
// runs; everything else in Stats must be schedule-independent.
func zeroTimes(s *Stats) {
	s.ValidationTime = 0
	s.PartitionTime = 0
	s.TotalTime = 0
}

// TestSerialParallelStatsIdentical pins the post-unification invariant: the
// serial and pool executors run the same planner and node-processing code, so
// every non-timing stat — candidate counts, skip counters, sampling
// rejections, per-level found counts — is identical, not merely the result
// sets. (The pre-pipeline engine double-booked these in two level loops and
// silently dropped OCSampledRejected on the parallel path.)
func TestSerialParallelStatsIdentical(t *testing.T) {
	tbl := gen.Flight(gen.FlightConfig{Rows: 1500, Attrs: 8, Seed: 17})
	cfgs := []Config{
		{Threshold: 0.10, Validator: ValidatorOptimal, IncludeOFDs: true},
		{Threshold: 0.10, Validator: ValidatorOptimal, IncludeOFDs: true, Bidirectional: true},
		{Validator: ValidatorExact, IncludeOFDs: true},
		{Threshold: 0.15, Validator: ValidatorOptimal, SampleStride: 4},
	}
	for _, cfg := range cfgs {
		seq, err := Discover(tbl, cfg)
		if err != nil {
			t.Fatal(err)
		}
		par, err := DiscoverParallel(tbl, cfg, 4)
		if err != nil {
			t.Fatal(err)
		}
		zeroTimes(&seq.Stats)
		zeroTimes(&par.Stats)
		if !reflect.DeepEqual(seq.Stats, par.Stats) {
			t.Errorf("cfg %+v: stats diverge:\nserial:   %+v\nparallel: %+v", cfg, seq.Stats, par.Stats)
		}
		if !reflect.DeepEqual(seq.OCs, par.OCs) || !reflect.DeepEqual(seq.OFDs, par.OFDs) {
			t.Errorf("cfg %+v: results diverge (%d/%d OCs, %d/%d OFDs)",
				cfg, len(seq.OCs), len(par.OCs), len(seq.OFDs), len(par.OFDs))
		}
	}
}

// TestSinkDoesNotChangeResult pins that attaching a progress sink is
// observation only: reports and stats are identical with and without one, on
// both executors.
func TestSinkDoesNotChangeResult(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	tbl := randomTable(rng, 400, 6, 4)
	cfg := Config{Threshold: 0.1, Validator: ValidatorOptimal, IncludeOFDs: true}
	for _, exec := range []struct {
		name string
		mk   func() Executor
	}{
		{"serial", Serial},
		{"pool", func() Executor { return Pool(4) }},
	} {
		plain, err := Pipeline{Executor: exec.mk()}.Run(context.Background(), tbl, cfg)
		if err != nil {
			t.Fatal(err)
		}
		snaps := 0
		sunk, err := Pipeline{Executor: exec.mk(), Sink: func(Snapshot) { snaps++ }}.
			Run(context.Background(), tbl, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if snaps == 0 {
			t.Fatalf("%s: sink never invoked", exec.name)
		}
		zeroTimes(&plain.Stats)
		zeroTimes(&sunk.Stats)
		if !reflect.DeepEqual(plain.Stats, sunk.Stats) {
			t.Errorf("%s: sink changed stats", exec.name)
		}
		if !reflect.DeepEqual(plain.OCs, sunk.OCs) || !reflect.DeepEqual(plain.OFDs, sunk.OFDs) {
			t.Errorf("%s: sink changed results", exec.name)
		}
	}
}

// TestSnapshotSemantics pins the per-level snapshot contract: one snapshot
// per processed level with increasing level numbers, cumulative monotonically
// growing dependency sets, exactly one Final snapshot (the last), and a final
// snapshot equal to the returned result.
func TestSnapshotSemantics(t *testing.T) {
	tbl := gen.Flight(gen.FlightConfig{Rows: 800, Attrs: 7, Seed: 5})
	cfg := Config{Threshold: 0.10, Validator: ValidatorOptimal, IncludeOFDs: true}
	for _, exec := range []struct {
		name string
		mk   func() Executor
	}{
		{"serial", Serial},
		{"pool", func() Executor { return Pool(3) }},
	} {
		var snaps []Snapshot
		res, err := Pipeline{Executor: exec.mk(), Sink: func(s Snapshot) { snaps = append(snaps, s) }}.
			Run(context.Background(), tbl, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(snaps) != res.Stats.LevelsProcessed {
			t.Fatalf("%s: %d snapshots for %d levels", exec.name, len(snaps), res.Stats.LevelsProcessed)
		}
		if len(snaps) < 3 {
			t.Fatalf("%s: want a multi-level run, got %d levels", exec.name, len(snaps))
		}
		for i, s := range snaps {
			if s.Level != i+1 {
				t.Errorf("%s: snapshot %d has level %d", exec.name, i, s.Level)
			}
			if s.MaxLevel != tbl.NumCols() {
				t.Errorf("%s: snapshot %d MaxLevel = %d", exec.name, i, s.MaxLevel)
			}
			if (i == len(snaps)-1) != s.Final {
				t.Errorf("%s: snapshot %d Final = %v", exec.name, i, s.Final)
			}
			if i > 0 {
				prev := snaps[i-1]
				if len(s.OCs) < len(prev.OCs) || len(s.OFDs) < len(prev.OFDs) {
					t.Errorf("%s: snapshot %d shrank", exec.name, i)
				}
				if s.NodesRemaining >= prev.NodesRemaining {
					t.Errorf("%s: NodesRemaining did not shrink at %d", exec.name, i)
				}
				if s.EstimatedRemaining >= prev.EstimatedRemaining {
					t.Errorf("%s: EstimatedRemaining did not shrink at %d", exec.name, i)
				}
			}
		}
		last := snaps[len(snaps)-1]
		if last.EstimatedRemaining != 0 {
			t.Errorf("%s: final snapshot estimates %d remaining", exec.name, last.EstimatedRemaining)
		}
		if !reflect.DeepEqual(last.OCs, res.OCs) || !reflect.DeepEqual(last.OFDs, res.OFDs) {
			t.Errorf("%s: final snapshot differs from result", exec.name)
		}
		// Snapshots are deep copies: mutating one must not corrupt the result.
		if len(snaps[0].Stats.OCsFoundPerLevel) > 0 {
			snaps[0].Stats.OCsFoundPerLevel[0] = 999
			if res.Stats.OCsFoundPerLevel[0] == 999 {
				t.Errorf("%s: snapshot aliases result stats", exec.name)
			}
		}
	}
}

// TestSnapshotOnMaxLevelBound: a level-bounded run's last snapshot is the
// bound level and carries zero estimated remaining work.
func TestSnapshotOnMaxLevelBound(t *testing.T) {
	tbl := gen.Flight(gen.FlightConfig{Rows: 500, Attrs: 8, Seed: 3})
	var snaps []Snapshot
	_, err := Pipeline{Sink: func(s Snapshot) { snaps = append(snaps, s) }}.
		Run(context.Background(), tbl, Config{Threshold: 0.10, Validator: ValidatorOptimal, MaxLevel: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no snapshots")
	}
	last := snaps[len(snaps)-1]
	if !last.Final || last.Level > 3 || last.MaxLevel != 3 {
		t.Fatalf("bad final snapshot: %+v", last)
	}
}

// TestRemainingNodes pins the binomial sum against a direct lattice count.
func TestRemainingNodes(t *testing.T) {
	if got := lattice.RemainingNodes(5, 2, 5); got != 10+5+1 {
		t.Errorf("RemainingNodes(5,2,5) = %d, want 16", got)
	}
	if got := lattice.RemainingNodes(5, 5, 5); got != 0 {
		t.Errorf("RemainingNodes(5,5,5) = %d, want 0", got)
	}
	if got := lattice.RemainingNodes(8, 0, 4); got != 8+28+56+70 {
		t.Errorf("RemainingNodes(8,0,4) = %d, want 162", got)
	}
	// The widest supported schema: C(64, 32) must compute exactly (the
	// undivided multiplicative intermediate exceeds int64, so this pins the
	// 128-bit mul/div step).
	if got := lattice.RemainingNodes(64, 31, 32); got != 1832624140942590534 {
		t.Errorf("RemainingNodes(64,31,32) = %d, want C(64,32) = 1832624140942590534", got)
	}
	// The full 64-attribute lattice has 2^64-1 non-empty nodes — beyond
	// int64; the sum must saturate, not wrap negative.
	if got := lattice.RemainingNodes(64, 0, 64); got != 1<<63-1 {
		t.Errorf("RemainingNodes(64,0,64) = %d, want MaxInt64 saturation", got)
	}
}

// TestPipelineCancelDuringRun: cancellation mid-run returns a partial result
// flagged Canceled on both executors, with the sink's last snapshot Final.
func TestPipelineCancelDuringRun(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	tbl := randomTable(rng, 2000, 8, 3)
	for _, exec := range []struct {
		name string
		mk   func() Executor
	}{
		{"serial", Serial},
		{"pool", func() Executor { return Pool(4) }},
	} {
		ctx, cancel := context.WithCancel(context.Background())
		var snaps []Snapshot
		sink := func(s Snapshot) {
			snaps = append(snaps, s)
			if len(snaps) == 2 {
				cancel() // cancel at the second level boundary
			}
		}
		res, err := Pipeline{Executor: exec.mk(), Sink: sink}.
			Run(ctx, tbl, Config{Threshold: 0.3, Validator: ValidatorIterative})
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Stats.Canceled {
			t.Errorf("%s: Canceled not set", exec.name)
		}
		if len(snaps) == 0 || !snaps[len(snaps)-1].Final {
			t.Errorf("%s: no Final snapshot after cancellation", exec.name)
		}
	}
}
