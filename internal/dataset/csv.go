package dataset

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// CSVOptions controls CSV parsing.
type CSVOptions struct {
	// Comma is the field delimiter; 0 means ','.
	Comma rune
	// MaxRows limits the number of data rows read; 0 means unlimited.
	MaxRows int
	// Columns, when non-empty, restricts parsing to the named header columns.
	Columns []string
	// NoHeader indicates the first record is data; columns are then named
	// col0, col1, ...
	NoHeader bool
	// Types, when non-empty, forces the kind ("int", "float", "string") of
	// each kept column in order instead of inferring it, and must have
	// exactly one entry per kept column. A value that does not parse as the
	// forced type is an error. Types is how ColumnTypes-aware readers (the
	// persistence layer) make a CSV round trip lossless.
	Types []string
}

// ReadCSV parses CSV data into a Table, inferring each column's type:
// a column is KindInt if every value parses as int64, else KindFloat if every
// value parses as float64, else KindString. Empty fields are typed as strings
// unless the whole column is empty-or-numeric, in which case empties become
// the minimum sentinel (they parse as strings; a column containing any empty
// field falls back to KindString so that missing data keeps a stable order).
func ReadCSV(r io.Reader, opts CSVOptions) (*Table, error) {
	cr := csv.NewReader(r)
	if opts.Comma != 0 {
		cr.Comma = opts.Comma
	}
	cr.ReuseRecord = true
	cr.FieldsPerRecord = -1

	var header []string
	if !opts.NoHeader {
		rec, err := cr.Read()
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
		}
		header = append(header, rec...)
	}

	var raw [][]string // column-major
	var names []string
	rows := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV row %d: %w", rows+1, err)
		}
		if names == nil {
			if header == nil {
				header = make([]string, len(rec))
				for i := range rec {
					header[i] = fmt.Sprintf("col%d", i)
				}
			}
			names = header
			raw = make([][]string, len(names))
		}
		if len(rec) != len(names) {
			return nil, fmt.Errorf("dataset: CSV row %d has %d fields, want %d", rows+1, len(rec), len(names))
		}
		for i, f := range rec {
			raw[i] = append(raw[i], f)
		}
		rows++
		if opts.MaxRows > 0 && rows >= opts.MaxRows {
			break
		}
	}
	if rows == 0 {
		return nil, fmt.Errorf("dataset: CSV contains no data rows")
	}

	keep := make(map[string]bool)
	for _, c := range opts.Columns {
		keep[c] = true
	}

	b := NewBuilder()
	added := 0
	for i, name := range names {
		if len(keep) > 0 && !keep[name] {
			continue
		}
		if len(opts.Types) > 0 {
			if added >= len(opts.Types) {
				return nil, fmt.Errorf("dataset: %d column types for more CSV columns", len(opts.Types))
			}
			if err := addTyped(b, name, raw[i], opts.Types[added]); err != nil {
				return nil, err
			}
		} else {
			addInferred(b, name, raw[i])
		}
		added++
	}
	if added == 0 {
		return nil, fmt.Errorf("dataset: none of the requested columns %v found in CSV header", opts.Columns)
	}
	if len(opts.Types) > 0 && added != len(opts.Types) {
		return nil, fmt.Errorf("dataset: %d column types for %d CSV columns", len(opts.Types), added)
	}
	return b.Build()
}

// ReadCSVFile opens path and parses it with ReadCSV.
func ReadCSVFile(path string, opts CSVOptions) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f, opts)
}

func addInferred(b *Builder, name string, vals []string) {
	allInt, allFloat := true, true
	for _, v := range vals {
		if v == "" {
			allInt, allFloat = false, false
			break
		}
		if allInt {
			if _, err := strconv.ParseInt(v, 10, 64); err != nil {
				allInt = false
			}
		}
		if allFloat {
			if _, err := strconv.ParseFloat(v, 64); err != nil {
				allFloat = false
			}
		}
		if !allInt && !allFloat {
			break
		}
	}
	switch {
	case allInt:
		ints := make([]int64, len(vals))
		for i, v := range vals {
			ints[i], _ = strconv.ParseInt(v, 10, 64)
		}
		b.AddInts(name, ints)
	case allFloat:
		floats := make([]float64, len(vals))
		for i, v := range vals {
			floats[i], _ = strconv.ParseFloat(v, 64)
		}
		b.AddFloats(name, floats)
	default:
		b.AddStrings(name, vals)
	}
}

// addTyped parses vals as the named kind, failing on any value that does not
// conform — the strictness the persistence layer relies on to detect a
// corrupted dataset file instead of silently re-typing it.
func addTyped(b *Builder, name string, vals []string, typ string) error {
	kind, err := KindFromString(typ)
	if err != nil {
		return err
	}
	switch kind {
	case KindInt:
		ints := make([]int64, len(vals))
		for i, v := range vals {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return fmt.Errorf("dataset: column %q row %d: %q is not an int", name, i+1, v)
			}
			ints[i] = n
		}
		b.AddInts(name, ints)
	case KindFloat:
		floats := make([]float64, len(vals))
		for i, v := range vals {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return fmt.Errorf("dataset: column %q row %d: %q is not a float", name, i+1, v)
			}
			floats[i] = f
		}
		b.AddFloats(name, floats)
	default:
		b.AddStrings(name, vals)
	}
	return nil
}

// WriteCSV serializes the table (raw display values) as CSV with a header.
//
// It uses its own record encoder rather than encoding/csv.Writer for one
// reason: a single-column record whose field is empty must be written as
// `""`, not as the blank line csv.Writer produces — csv.Reader skips blank
// lines entirely, which would drop the header (empty column name) or rows
// (empty string values) on reload. Fuzzing the serialize→reload round trip
// found this; see FuzzReadCSV.
func WriteCSV(w io.Writer, t *Table) error {
	bw := bufio.NewWriter(w)
	if err := writeCSVRecord(bw, t.ColumnNames()); err != nil {
		return err
	}
	rec := make([]string, t.NumCols())
	for row := 0; row < t.NumRows(); row++ {
		for i := 0; i < t.NumCols(); i++ {
			rec[i] = t.Column(i).ValueString(row)
		}
		if err := writeCSVRecord(bw, rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// writeCSVRecord writes one RFC-4180 record, quoting fields that need it —
// including the single-empty-field record csv.Writer would turn into a
// skippable blank line.
func writeCSVRecord(w *bufio.Writer, rec []string) error {
	for i, f := range rec {
		if i > 0 {
			w.WriteByte(',')
		}
		if strings.ContainsAny(f, ",\"\r\n") || (len(rec) == 1 && f == "") {
			w.WriteByte('"')
			w.WriteString(strings.ReplaceAll(f, `"`, `""`))
			w.WriteByte('"')
		} else {
			w.WriteString(f)
		}
	}
	return w.WriteByte('\n')
}

// WriteCSVFile writes the table to path, creating or truncating it.
func WriteCSVFile(path string, t *Table) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCSV(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
