package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"aod/internal/dataset"
	"aod/internal/lattice"
	"aod/internal/partition"
	"aod/internal/validate"
)

func paperTable1(t *testing.T) *dataset.Table {
	t.Helper()
	tbl, err := dataset.NewBuilder().
		AddStrings("pos", []string{"sec", "sec", "dev", "sec", "dev", "dev", "dev", "dev", "dir"}).
		AddInts("exp", []int64{1, 3, 1, 5, 3, 5, 5, -1, 8}).
		AddInts("sal", []int64{20, 25, 30, 40, 50, 55, 60, 90, 200}).
		AddStrings("taxGrp", []string{"A", "A", "A", "B", "B", "B", "B", "C", "C"}).
		AddInts("perc", []int64{10, 10, 1, 30, 3, 30, 3, 8, 8}).
		AddInts("tax", []int64{20, 25, 3, 120, 15, 165, 18, 72, 160}).
		AddInts("bonus", []int64{1, 1, 3, 2, 4, 4, 4, 7, 10}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func randomTable(rng *rand.Rand, rows, attrs, domain int) *dataset.Table {
	b := dataset.NewBuilder()
	for c := 0; c < attrs; c++ {
		vals := make([]int64, rows)
		for i := range vals {
			vals[i] = int64(rng.Intn(domain))
		}
		b.AddInts(fmt.Sprintf("c%d", c), vals)
	}
	tbl, err := b.Build()
	if err != nil {
		panic(err)
	}
	return tbl
}

type ocKey struct {
	ctx  lattice.AttrSet
	a, b int
}
type ofdKey struct {
	ctx lattice.AttrSet
	a   int
}

func ocSet(r *Result) map[ocKey]float64 {
	m := make(map[ocKey]float64, len(r.OCs))
	for _, d := range r.OCs {
		m[ocKey{d.Context, d.A, d.B}] = d.Error
	}
	return m
}

func ofdSet(r *Result) map[ofdKey]float64 {
	m := make(map[ofdKey]float64, len(r.OFDs))
	for _, d := range r.OFDs {
		m[ofdKey{d.Context, d.A}] = d.Error
	}
	return m
}

// TestDifferentialAgainstReference is the semantic anchor of the engine: on
// hundreds of random small tables the engine's output (exact and optimal
// configurations, several thresholds) must equal the brute-force reference
// exactly — same minimal dependencies, same approximation factors.
func TestDifferentialAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	thresholds := []float64{0, 0.1, 0.25, 0.5}
	validators := []ValidatorKind{ValidatorExact, ValidatorOptimal}
	iters := 120
	if testing.Short() {
		iters = 30
	}
	for iter := 0; iter < iters; iter++ {
		rows := 2 + rng.Intn(20)
		attrs := 2 + rng.Intn(4) // 2..5
		domain := 2 + rng.Intn(4)
		tbl := randomTable(rng, rows, attrs, domain)
		eps := thresholds[iter%len(thresholds)]
		vk := validators[iter%len(validators)]
		cfg := Config{Threshold: eps, Validator: vk, IncludeOFDs: true}
		got, err := Discover(tbl, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ReferenceDiscover(tbl, cfg)
		if err != nil {
			t.Fatal(err)
		}
		gotOC, wantOC := ocSet(got), ocSet(want)
		if len(gotOC) != len(wantOC) {
			t.Fatalf("iter %d (%v ε=%.2f rows=%d attrs=%d): %d OCs, reference %d\n got: %v\nwant: %v",
				iter, vk, eps, rows, attrs, len(gotOC), len(wantOC), got.OCs, want.OCs)
		}
		for k, e := range wantOC {
			ge, ok := gotOC[k]
			if !ok {
				t.Fatalf("iter %d: missing OC %v: %d ∼ %d", iter, k.ctx, k.a, k.b)
			}
			if math.Abs(ge-e) > 1e-9 {
				t.Fatalf("iter %d: OC %v error %g, reference %g", iter, k, ge, e)
			}
		}
		gotOFD, wantOFD := ofdSet(got), ofdSet(want)
		if len(gotOFD) != len(wantOFD) {
			t.Fatalf("iter %d (%v ε=%.2f): %d OFDs, reference %d\n got: %v\nwant: %v",
				iter, vk, eps, len(gotOFD), len(wantOFD), got.OFDs, want.OFDs)
		}
		for k, e := range wantOFD {
			ge, ok := gotOFD[k]
			if !ok {
				t.Fatalf("iter %d: missing OFD %v: []↦%d", iter, k.ctx, k.a)
			}
			if math.Abs(ge-e) > 1e-9 {
				t.Fatalf("iter %d: OFD %v error %g, reference %g", iter, k, ge, e)
			}
		}
	}
}

// With MaxLevel bounds the engine must still match the reference.
func TestDifferentialWithMaxLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	for iter := 0; iter < 40; iter++ {
		tbl := randomTable(rng, 2+rng.Intn(15), 4, 3)
		cfg := Config{Threshold: 0.2, Validator: ValidatorOptimal, IncludeOFDs: true, MaxLevel: 2 + rng.Intn(2)}
		got, err := Discover(tbl, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ReferenceDiscover(tbl, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(ocSet(got)) != len(ocSet(want)) || len(ofdSet(got)) != len(ofdSet(want)) {
			t.Fatalf("iter %d: MaxLevel mismatch: got %d/%d OCs/OFDs, want %d/%d",
				iter, len(got.OCs), len(got.OFDs), len(want.OCs), len(want.OFDs))
		}
	}
}

// Every OC reported under the iterative validator must be truly valid (its
// real approximation factor ≤ ε), even though the greedy estimate used to
// admit it is an overestimate; and the iterative engine must never find an
// OC that is valid in a strictly smaller context it also reported.
func TestIterativeReportsOnlyTrulyValidOCs(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	v := validate.New()
	for iter := 0; iter < 60; iter++ {
		rows := 2 + rng.Intn(20)
		tbl := randomTable(rng, rows, 4, 3)
		eps := []float64{0.1, 0.2, 0.3}[iter%3]
		res, err := Discover(tbl, Config{Threshold: eps, Validator: ValidatorIterative})
		if err != nil {
			t.Fatal(err)
		}
		for _, oc := range res.OCs {
			// Recompute the true error with the optimal validator.
			ctx := contextPartition(tbl, oc.Context)
			r := v.OptimalAOC(ctx, tbl.Column(oc.A), tbl.Column(oc.B),
				validate.Options{Threshold: 1})
			if float64(r.Removals)/float64(rows) > eps+1e-9 {
				t.Fatalf("iter %d: iterative reported invalid OC %v (true e=%g > ε=%g)",
					iter, oc, float64(r.Removals)/float64(rows), eps)
			}
			// The iterative estimate can only overestimate.
			if oc.Removals < r.Removals {
				t.Fatalf("iter %d: iterative removals %d below minimal %d", iter, oc.Removals, r.Removals)
			}
		}
	}
}

func contextPartition(tbl *dataset.Table, ctx lattice.AttrSet) *partition.Stripped {
	p := partition.Universe(tbl.NumRows())
	ctx.ForEach(func(a int) {
		p = p.Product(partition.Single(tbl.Column(a)))
	})
	return p
}

func TestDiscoverPaperTable1(t *testing.T) {
	tbl := paperTable1(t)
	// ε = 0.12 admits {pos}: exp ∼ sal (e = 1/9 ≈ 0.111).
	res, err := Discover(tbl, Config{Threshold: 0.12, Validator: ValidatorOptimal, IncludeOFDs: true})
	if err != nil {
		t.Fatal(err)
	}
	pos, exp, sal := tbl.ColumnIndex("pos"), tbl.ColumnIndex("exp"), tbl.ColumnIndex("sal")
	found := false
	for _, oc := range res.OCs {
		if oc.Context == lattice.NewAttrSet(pos) &&
			((oc.A == exp && oc.B == sal) || (oc.A == sal && oc.B == exp)) {
			found = true
			if oc.Removals != 1 {
				t.Errorf("{pos}: exp ∼ sal removals = %d, want 1", oc.Removals)
			}
		}
	}
	if !found {
		t.Errorf("{pos}: exp ∼ sal not discovered; OCs: %v", res.OCs)
	}
	// The exact configuration must find {}: sal ∼ taxGrp (it holds exactly,
	// and neither side is constant).
	exact, err := Discover(tbl, Config{Validator: ValidatorExact, IncludeOFDs: true})
	if err != nil {
		t.Fatal(err)
	}
	taxGrp := tbl.ColumnIndex("taxGrp")
	foundExact := false
	for _, oc := range exact.OCs {
		if oc.Context.IsEmpty() && ((oc.A == sal && oc.B == taxGrp) || (oc.A == taxGrp && oc.B == sal)) {
			foundExact = true
		}
	}
	if !foundExact {
		t.Errorf("{}: sal ∼ taxGrp not discovered exactly; OCs: %v", exact.OCs)
	}
}

func TestDiscoverDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	tbl := randomTable(rng, 30, 5, 3)
	cfg := Config{Threshold: 0.15, Validator: ValidatorOptimal, IncludeOFDs: true}
	r1, err := Discover(tbl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Discover(tbl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.OCs) != len(r2.OCs) || len(r1.OFDs) != len(r2.OFDs) {
		t.Fatal("non-deterministic result sizes")
	}
	for i := range r1.OCs {
		if r1.OCs[i].Context != r2.OCs[i].Context ||
			r1.OCs[i].A != r2.OCs[i].A || r1.OCs[i].B != r2.OCs[i].B ||
			r1.OCs[i].Error != r2.OCs[i].Error {
			t.Fatalf("OC order differs at %d: %v vs %v", i, r1.OCs[i], r2.OCs[i])
		}
	}
}

func TestDiscoverCollectRemovalSets(t *testing.T) {
	tbl := paperTable1(t)
	res, err := Discover(tbl, Config{
		Threshold: 0.12, Validator: ValidatorOptimal,
		IncludeOFDs: true, CollectRemovalSets: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, oc := range res.OCs {
		if len(oc.RemovalRows) != oc.Removals {
			t.Errorf("OC %v: removal rows %d != removals %d", oc, len(oc.RemovalRows), oc.Removals)
		}
	}
	for _, ofd := range res.OFDs {
		if len(ofd.RemovalRows) != ofd.Removals {
			t.Errorf("OFD %v: removal rows %d != removals %d", ofd, len(ofd.RemovalRows), ofd.Removals)
		}
	}
	// {pos}: exp ∼ sal should carry removal row t8 (index 7).
	pos, exp, sal := tbl.ColumnIndex("pos"), tbl.ColumnIndex("exp"), tbl.ColumnIndex("sal")
	for _, oc := range res.OCs {
		if oc.Context == lattice.NewAttrSet(pos) && oc.A == min(exp, sal) && oc.B == max(exp, sal) {
			if len(oc.RemovalRows) != 1 || oc.RemovalRows[0] != 7 {
				t.Errorf("removal rows = %v, want [7]", oc.RemovalRows)
			}
		}
	}
}

func TestDiscoverIncludeOFDsFlag(t *testing.T) {
	tbl := paperTable1(t)
	res, err := Discover(tbl, Config{Threshold: 0.1, Validator: ValidatorOptimal})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.OFDs) != 0 {
		t.Errorf("OFDs reported without IncludeOFDs: %v", res.OFDs)
	}
	// Stats still count them (validation always runs).
	if res.Stats.OFDsFound() == 0 {
		t.Error("stats should still count OFDs found")
	}
}

func TestDiscoverTimeLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	tbl := randomTable(rng, 2000, 10, 4)
	res, err := Discover(tbl, Config{
		Threshold: 0.3, Validator: ValidatorIterative, TimeLimit: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.TimedOut {
		t.Skip("machine too fast for 1ms limit; skipping")
	}
}

func TestDiscoverConfigErrors(t *testing.T) {
	tbl := paperTable1(t)
	cases := []Config{
		{Threshold: -0.1},
		{Threshold: 1.5},
		{Validator: ValidatorKind(9)},
		{MaxLevel: -1},
	}
	for i, cfg := range cases {
		if _, err := Discover(tbl, cfg); err == nil {
			t.Errorf("case %d: want config error", i)
		}
	}
	wide := dataset.NewBuilder()
	for c := 0; c < 65; c++ {
		wide.AddInts(fmt.Sprintf("c%d", c), []int64{1, 2})
	}
	wt, err := wide.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Discover(wt, Config{}); err == nil {
		t.Error("want error for >64 attributes")
	}
}

func TestDiscoverSingleAttributeAndSingleRow(t *testing.T) {
	one, err := dataset.NewBuilder().AddInts("a", []int64{1, 1, 2}).Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Discover(one, Config{Threshold: 0.5, Validator: ValidatorOptimal, IncludeOFDs: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.OCs) != 0 {
		t.Error("single attribute cannot have OCs")
	}
	// {}: []↦a with e = 1/3 ≤ 0.5 is minimal and valid.
	if len(res.OFDs) != 1 || !res.OFDs[0].Context.IsEmpty() {
		t.Errorf("OFDs = %v, want one with empty context", res.OFDs)
	}

	row, err := dataset.NewBuilder().AddInts("a", []int64{7}).AddInts("b", []int64{3}).Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err = Discover(row, Config{Validator: ValidatorExact, IncludeOFDs: true})
	if err != nil {
		t.Fatal(err)
	}
	// One row: every column is constant, so both {}: []↦a and {}: []↦b hold
	// and all OCs are constancy-trivialized.
	if len(res.OFDs) != 2 || len(res.OCs) != 0 {
		t.Errorf("single-row: OFDs=%v OCs=%v", res.OFDs, res.OCs)
	}
}

func TestEarlyStopOnSaturatedTable(t *testing.T) {
	// All columns identical: level 2 finds every OFD ({a}: []↦b etc.) and
	// trivializes every OC; level 3 must have no candidates → early stop.
	vals := []int64{1, 2, 3, 1, 2, 3, 1, 2}
	tbl, err := dataset.NewBuilder().
		AddInts("a", vals).AddInts("b", vals).AddInts("c", vals).AddInts("d", vals).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Discover(tbl, Config{Validator: ValidatorExact, IncludeOFDs: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.EarlyStopped {
		t.Errorf("expected early stop; levels processed = %d", res.Stats.LevelsProcessed)
	}
	if res.Stats.LevelsProcessed > 3 {
		t.Errorf("levels processed = %d, want <= 3", res.Stats.LevelsProcessed)
	}
}

func TestStatsAccounting(t *testing.T) {
	tbl := paperTable1(t)
	res, err := Discover(tbl, Config{Threshold: 0.1, Validator: ValidatorOptimal, IncludeOFDs: true})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Rows != 9 || st.Attrs != 7 {
		t.Errorf("rows/attrs = %d/%d", st.Rows, st.Attrs)
	}
	if st.OCsFound() != len(res.OCs) {
		t.Errorf("stats OCs %d != result %d", st.OCsFound(), len(res.OCs))
	}
	if st.OFDsFound() != len(res.OFDs) {
		t.Errorf("stats OFDs %d != result %d", st.OFDsFound(), len(res.OFDs))
	}
	if st.OCCandidates == 0 || st.OFDCandidates == 0 {
		t.Error("candidate counts should be nonzero")
	}
	if st.TotalTime <= 0 {
		t.Error("TotalTime not measured")
	}
	if st.ValidationShare() < 0 || st.ValidationShare() > 1 {
		t.Errorf("ValidationShare = %g", st.ValidationShare())
	}
	if st.AvgOCLevel() < 2 && st.OCsFound() > 0 {
		t.Errorf("AvgOCLevel = %g", st.AvgOCLevel())
	}
}

func TestSortByScore(t *testing.T) {
	tbl := paperTable1(t)
	res, err := Discover(tbl, Config{Threshold: 0.2, Validator: ValidatorOptimal, IncludeOFDs: true})
	if err != nil {
		t.Fatal(err)
	}
	res.SortByScore()
	for i := 1; i < len(res.OCs); i++ {
		if res.OCs[i].Score > res.OCs[i-1].Score {
			t.Fatalf("OCs not sorted by score at %d", i)
		}
	}
	for i := 1; i < len(res.OFDs); i++ {
		if res.OFDs[i].Score > res.OFDs[i-1].Score {
			t.Fatalf("OFDs not sorted by score at %d", i)
		}
	}
}

func TestScoreFormula(t *testing.T) {
	if Score(0, 0) != 1 {
		t.Error("exact dep with empty context should score 1")
	}
	if Score(1, 0) != 0.5 {
		t.Error("Score(1,0) != 0.5")
	}
	if Score(0, 0.5) != 0.5 {
		t.Error("Score(0,0.5) != 0.5")
	}
	if Score(0, 0.1) <= Score(1, 0.1) {
		t.Error("smaller contexts must score higher")
	}
}

func TestValidatorKindString(t *testing.T) {
	if ValidatorExact.String() != "OD" ||
		ValidatorOptimal.String() != "AOD (optimal)" ||
		ValidatorIterative.String() != "AOD (iterative)" {
		t.Error("ValidatorKind strings wrong")
	}
	if ValidatorKind(42).String() != "ValidatorKind(42)" {
		t.Error("unknown kind formatting wrong")
	}
}

func TestFormatWithNames(t *testing.T) {
	tbl := paperTable1(t)
	res, err := Discover(tbl, Config{Threshold: 0.12, Validator: ValidatorOptimal, IncludeOFDs: true})
	if err != nil {
		t.Fatal(err)
	}
	names := tbl.ColumnNames()
	for _, oc := range res.OCs {
		s := oc.Format(names)
		if s == "" {
			t.Error("empty OC format")
		}
	}
	for _, ofd := range res.OFDs {
		if ofd.Format(names) == "" {
			t.Error("empty OFD format")
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
