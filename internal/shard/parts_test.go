package shard

import (
	"context"
	"testing"
	"time"

	"aod/internal/core"
	"aod/internal/gen"
	"aod/internal/partition"
)

// TestPartitionShippingEquivalence pins the cross-worker half of partition
// memoization: on a table past the shipping cutover, with the pool at full
// width (quantum -1, so levels split into multiple slices), the coordinator
// ships committed context partitions and every worker seeds its fold memo
// from them — and the result is still byte-identical to the serial run,
// including under a forced straggler whose re-dispatches re-ship the frames.
func TestPartitionShippingEquivalence(t *testing.T) {
	tbl := gen.Flight(gen.FlightConfig{Rows: 2500, Attrs: 6, Seed: 17})
	cfg := core.Config{Threshold: 0.10, Validator: core.ValidatorOptimal, IncludeOFDs: true, CollectRemovalSets: true}
	want := discoverWith(t, tbl, cfg, core.Serial())

	cases := map[string]func() []*Worker{
		"lb3": func() []*Worker {
			return []*Worker{NewWorker(WorkerOptions{}), NewWorker(WorkerOptions{}), NewWorker(WorkerOptions{})}
		},
		"straggler": func() []*Worker {
			return []*Worker{
				NewWorker(WorkerOptions{}),
				NewWorker(WorkerOptions{LevelHook: func(level, tasks int) error {
					time.Sleep(15 * time.Millisecond)
					return nil
				}}),
				NewWorker(WorkerOptions{}),
			}
		},
	}
	for name, mk := range cases {
		workers := mk()
		var clusterCfg Config
		if name == "straggler" {
			clusterCfg.StragglerAfter = 5 * time.Millisecond
		}
		cluster := NewLoopback(clusterCfg, workers)
		got := discoverWith(t, tbl, cfg, core.ShardedQuantum(cluster, -1))
		requireIdentical(t, "parts/"+name, want, got)

		var seeded uint64
		for _, w := range workers {
			seeded += w.PartitionsSeeded()
		}
		if seeded == 0 {
			t.Errorf("%s: no worker seeded a shipped partition — the parts path never engaged", name)
		}
		cluster.Close()
	}
}

// TestPartitionShippingWarmEqualsCold runs the shipping-scale sharded job
// twice through one shared PreparedTable and bounded arena — the server's
// warm path — and once fully cold: all three reports must be identical, and
// the warm runs must seed workers exactly like the cold one.
func TestPartitionShippingWarmEqualsCold(t *testing.T) {
	tbl := gen.Flight(gen.FlightConfig{Rows: 2500, Attrs: 6, Seed: 29})
	cfg := core.Config{Threshold: 0.10, Validator: core.ValidatorOptimal, IncludeOFDs: true}
	want := discoverWith(t, tbl, cfg, core.Serial())

	prep := core.Prepare(tbl)
	arena := partition.NewArenaLimit(32 << 20)
	for run := 0; run < 2; run++ {
		workers := []*Worker{NewWorker(WorkerOptions{}), NewWorker(WorkerOptions{})}
		cluster := NewLoopback(Config{}, workers)
		res, err := core.Pipeline{
			Executor: core.ShardedQuantum(cluster, -1),
			Prepared: prep,
			Arena:    arena,
		}.Run(context.Background(), tbl, cfg)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, "warm", want, res)
		var seeded uint64
		for _, w := range workers {
			seeded += w.PartitionsSeeded()
		}
		if seeded == 0 {
			t.Errorf("warm run %d: workers were never seeded", run)
		}
		cluster.Close()
	}
}
