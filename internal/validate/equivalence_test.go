package validate

import (
	"math/rand"
	"sort"
	"testing"

	"aod/internal/dataset"
	"aod/internal/gen"
	"aod/internal/lis"
	"aod/internal/partition"
)

// legacySortClass orders a class by [A asc, B asc/desc] with the stable
// legacy comparison sort (stable so that tie order matches the radix sort's
// row-ascending tie order — the unstable sort.Sort the old validators used
// left equal (A,B) pairs in an arbitrary permutation, which only ever
// affected which of two interchangeable rows a removal set named).
func legacySortClass(cls []int32, ra, rb []int32, bDesc bool) (a, b, rows []int32) {
	m := len(cls)
	a, b, rows = make([]int32, m), make([]int32, m), make([]int32, m)
	for i, row := range cls {
		a[i], b[i], rows[i] = ra[row], rb[row], row
	}
	idx := make([]int, m)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(x, y int) bool {
		i, j := idx[x], idx[y]
		if a[i] != a[j] {
			return a[i] < a[j]
		}
		if bDesc {
			return b[i] > b[j]
		}
		return b[i] < b[j]
	})
	sa, sb, sr := make([]int32, m), make([]int32, m), make([]int32, m)
	for k, i := range idx {
		sa[k], sb[k], sr[k] = a[i], b[i], rows[i]
	}
	return sa, sb, sr
}

// legacyOptimalAOC is the pre-radix Algorithm 2 loop (sort + package LNDS),
// used to pin the rewritten hot path result-for-result.
func legacyOptimalAOC(ctx *partition.Stripped, a, b *dataset.Column, opts Options) Result {
	n := ctx.N
	ra, rb := a.Ranks(), b.Ranks()
	removals := 0
	var removed []int32
	for ci := 0; ci < ctx.NumClasses(); ci++ {
		cls := ctx.Class(ci)
		_, sb, sr := legacySortClass(cls, ra, rb, false)
		keep := lis.LNDS(sb)
		removals += len(cls) - len(keep)
		if opts.CollectRemovals {
			k := 0
			for i := range sr {
				if k < len(keep) && keep[k] == i {
					k++
					continue
				}
				removed = append(removed, sr[i])
			}
		}
	}
	return finish(removals, n, opts, false, removed)
}

func legacyOptimalAOD(ctx *partition.Stripped, a, b *dataset.Column, opts Options) Result {
	n := ctx.N
	ra, rb := a.Ranks(), b.Ranks()
	removals := 0
	var removed []int32
	for ci := 0; ci < ctx.NumClasses(); ci++ {
		cls := ctx.Class(ci)
		_, sb, sr := legacySortClass(cls, ra, rb, true)
		keep := lis.LNDS(sb)
		removals += len(cls) - len(keep)
		if opts.CollectRemovals {
			k := 0
			for i := range sr {
				if k < len(keep) && keep[k] == i {
					k++
					continue
				}
				removed = append(removed, sr[i])
			}
		}
	}
	return finish(removals, n, opts, false, removed)
}

func randomCtxCols(rng *rand.Rand, rows int) (*partition.Stripped, *dataset.Column, *dataset.Column) {
	b := dataset.NewBuilder()
	for c := 0; c < 3; c++ {
		vals := make([]int64, rows)
		dom := 1 + rng.Intn(8)
		for i := range vals {
			vals[i] = int64(rng.Intn(dom))
		}
		b.AddInts(string(rune('a'+c)), vals)
	}
	tbl, err := b.Build()
	if err != nil {
		panic(err)
	}
	return partition.Single(tbl.Column(0)), tbl.Column(1), tbl.Column(2)
}

// TestOptimalAOCEquivalentToLegacy pins the radix-sort validators to the
// legacy comparison-sort loop: identical removal counts, errors, and removal
// sets on random workloads, across both tie directions.
func TestOptimalAOCEquivalentToLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	v := New()
	opts := Options{Threshold: 1, CollectRemovals: true, ComputeFullError: true}
	for iter := 0; iter < 200; iter++ {
		rows := 2 + rng.Intn(200)
		ctx, ca, cb := randomCtxCols(rng, rows)
		got := v.OptimalAOC(ctx, ca, cb, opts)
		want := legacyOptimalAOC(ctx, ca, cb, opts)
		if got.Removals != want.Removals || got.Error != want.Error {
			t.Fatalf("iter %d: OptimalAOC = %d removals, legacy %d", iter, got.Removals, want.Removals)
		}
		if len(got.RemovalRows) != len(want.RemovalRows) {
			t.Fatalf("iter %d: removal set sizes differ: %v vs %v", iter, got.RemovalRows, want.RemovalRows)
		}
		for i := range got.RemovalRows {
			if got.RemovalRows[i] != want.RemovalRows[i] {
				t.Fatalf("iter %d: removal sets differ: %v vs %v", iter, got.RemovalRows, want.RemovalRows)
			}
		}
		if err := VerifyNoSwaps(ctx, ca, cb, got.RemovalRows); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}

		gotD := v.OptimalAOD(ctx, ca, cb, opts)
		wantD := legacyOptimalAOD(ctx, ca, cb, opts)
		if gotD.Removals != wantD.Removals {
			t.Fatalf("iter %d: OptimalAOD = %d removals, legacy %d", iter, gotD.Removals, wantD.Removals)
		}
		for i := range gotD.RemovalRows {
			if gotD.RemovalRows[i] != wantD.RemovalRows[i] {
				t.Fatalf("iter %d: AOD removal sets differ: %v vs %v", iter, gotD.RemovalRows, wantD.RemovalRows)
			}
		}
		if err := VerifyNoSwapsOrSplits(ctx, ca, cb, gotD.RemovalRows); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
	}
}

// TestRadixSortCrossesCutoff exercises both sortPairs branches on the same
// data: classes straddling radixCutoff must produce identical orders.
func TestRadixSortCrossesCutoff(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	v := New()
	for _, m := range []int{radixCutoff - 1, radixCutoff, radixCutoff + 1, 4 * radixCutoff} {
		cls := make([]int32, m)
		ra := make([]int32, m)
		rb := make([]int32, m)
		for i := range cls {
			cls[i] = int32(i)
			ra[i] = int32(rng.Intn(5))
			rb[i] = int32(rng.Intn(5))
		}
		v.sortClass(cls, ra, rb, false, 0)
		// Must match the stable legacy order exactly (ties row-ascending).
		sa, sb, sr := legacySortClass(cls, ra, rb, false)
		for i := 0; i < m; i++ {
			if v.a[i] != sa[i] || v.b[i] != sb[i] || v.rows[i] != sr[i] {
				t.Fatalf("m=%d: position %d = (%d,%d,row %d), legacy (%d,%d,row %d)",
					m, i, v.a[i], v.b[i], v.rows[i], sa[i], sb[i], sr[i])
			}
		}
	}
}

// --- Allocation regression --------------------------------------------------

// TestValidatorAllocFree pins the steady-state allocation counts of the
// validation hot path: with warm scratch, OptimalAOC / ExactOC / ApproxOFD
// must not allocate at all.
func TestValidatorAllocFree(t *testing.T) {
	tbl := gen.CorrelatedPair(20_000, 0.10, 42)
	ctx := partition.Universe(20_000)
	ca, cb := tbl.Column(0), tbl.Column(1)
	v := New()
	v.OptimalAOC(ctx, ca, cb, Options{Threshold: 0.5}) // warm
	if n := testing.AllocsPerRun(10, func() {
		v.OptimalAOC(ctx, ca, cb, Options{Threshold: 0.5})
	}); n != 0 {
		t.Errorf("OptimalAOC allocates %.1f times per call in steady state, want 0", n)
	}
	v.ExactOC(ctx, ca, cb)
	if n := testing.AllocsPerRun(10, func() {
		v.ExactOC(ctx, ca, cb)
	}); n != 0 {
		t.Errorf("ExactOC allocates %.1f times per call in steady state, want 0", n)
	}
	single := partition.Single(ca)
	v.ApproxOFD(single, cb, Options{Threshold: 0.5})
	if n := testing.AllocsPerRun(10, func() {
		v.ApproxOFD(single, cb, Options{Threshold: 0.5})
	}); n != 0 {
		t.Errorf("ApproxOFD allocates %.1f times per call in steady state, want 0", n)
	}
}

// TestIterativeValidatorAllocFree pins the iterative (paper-baseline)
// validator's steady state: the per-class swap-count buffers, Fenwick tree,
// and liveness markers all live in Validator scratch now, so a warm
// validator must not allocate — on the one-big-class shape and on a
// many-classes partition (the shape discovery actually feeds it).
func TestIterativeValidatorAllocFree(t *testing.T) {
	tbl := gen.CorrelatedPair(20_000, 0.10, 42)
	ca, cb := tbl.Column(0), tbl.Column(1)
	for name, ctx := range map[string]*partition.Stripped{
		"universe": partition.Universe(20_000),
		"classes":  partition.Single(ca),
	} {
		v := New()
		v.IterativeAOC(ctx, ca, cb, Options{Threshold: 0.10}) // warm
		if n := testing.AllocsPerRun(10, func() {
			v.IterativeAOC(ctx, ca, cb, Options{Threshold: 0.10})
		}); n != 0 {
			t.Errorf("IterativeAOC/%s allocates %.1f times per call in steady state, want 0", name, n)
		}
	}
}
