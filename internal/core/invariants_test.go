package core

import (
	"math"
	"testing"

	"aod/internal/gen"
	"aod/internal/validate"
)

// TestOutputInvariantsOnGeneratedData checks the result-set invariants that
// the differential tests pin on small tables, at generator scale where the
// exponential reference is infeasible: validity of every reported error,
// pairwise minimality, and constancy non-trivialization.
func TestOutputInvariantsOnGeneratedData(t *testing.T) {
	workloads := []struct {
		name string
		cfg  Config
	}{
		{"flight-optimal", Config{Threshold: 0.10, Validator: ValidatorOptimal, IncludeOFDs: true}},
		{"ncvoter-optimal", Config{Threshold: 0.20, Validator: ValidatorOptimal, IncludeOFDs: true}},
		{"flight-bidirectional", Config{Threshold: 0.10, Validator: ValidatorOptimal, IncludeOFDs: true, Bidirectional: true}},
	}
	v := validate.New()
	for _, w := range workloads {
		t.Run(w.name, func(t *testing.T) {
			tbl := gen.Flight(gen.FlightConfig{Rows: 2000, Attrs: 8, Seed: 9})
			if w.name == "ncvoter-optimal" {
				tbl = gen.NCVoter(gen.NCVoterConfig{Rows: 2000, Attrs: 8, Seed: 9})
			}
			res, err := Discover(tbl, w.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.OCs) == 0 {
				t.Fatal("workload found no OCs; invariants vacuous")
			}
			// 1. Errors are true minimal errors within threshold.
			for _, oc := range res.OCs {
				if oc.Error > w.cfg.Threshold+1e-12 {
					t.Errorf("OC %v exceeds threshold", oc)
				}
				ctx := contextPartition(tbl, oc.Context)
				cb := tbl.Column(oc.B)
				if oc.Descending {
					cb = cb.Reversed()
				}
				r := v.OptimalAOC(ctx, tbl.Column(oc.A), cb,
					validate.Options{Threshold: 1, ComputeFullError: true})
				if math.Abs(r.Error-oc.Error) > 1e-9 {
					t.Errorf("OC %v: recomputed e=%.6f != reported %.6f", oc, r.Error, oc.Error)
				}
			}
			// 2. Pairwise minimality: no OC subsumed by another on the same
			// directed pair with a sub-context.
			for i, a := range res.OCs {
				for j, b := range res.OCs {
					if i == j || a.A != b.A || a.B != b.B || a.Descending != b.Descending {
						continue
					}
					if a.Context != b.Context && b.Context.Contains(a.Context) {
						t.Errorf("OC %v subsumes reported OC %v", a, b)
					}
				}
			}
			// 3. No reported OC is trivialized by a reported OFD on either
			// side with a context contained in the OC's.
			for _, oc := range res.OCs {
				for _, ofd := range res.OFDs {
					if (ofd.A == oc.A || ofd.A == oc.B) && oc.Context.Contains(ofd.Context) {
						t.Errorf("OC %v trivialized by reported OFD %v", oc, ofd)
					}
				}
			}
			// 4. OFD minimality.
			for i, a := range res.OFDs {
				for j, b := range res.OFDs {
					if i == j || a.A != b.A {
						continue
					}
					if a.Context != b.Context && b.Context.Contains(a.Context) {
						t.Errorf("OFD %v subsumes reported OFD %v", a, b)
					}
				}
			}
		})
	}
}
