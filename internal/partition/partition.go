// Package partition implements the equivalence-class machinery of Def. 2.8:
// stripped partitions (position-list indexes, PLIs) over attribute sets, and
// the linear-time partition product used by level-wise lattice traversal
// (after TANE, Huhtala et al. 1999, which the paper's framework builds on).
//
// A stripped partition omits singleton equivalence classes: a tuple alone in
// its class can participate in no split and no swap, so every validator in
// this repository is exact on stripped partitions.
//
// Partitions use a flat CSR (compressed-sparse-row) layout: one contiguous
// row buffer plus class offsets. Compared to a [][]int32 jagged layout this
// keeps every class of a partition in one cache-friendly allocation, lets
// Product write its output with two linear passes per class and zero
// per-class allocations, and lets an Arena recycle whole partitions between
// lattice levels.
package partition

import (
	"fmt"
	"sync/atomic"

	"aod/internal/dataset"
)

// Stripped is a stripped partition: the non-singleton equivalence classes of
// a table with respect to some attribute set, stored in CSR form. Class i
// occupies rows[offsets[i]:offsets[i+1]]; row ids within a class are in
// ascending order and classes are ordered by first row id. The zero value is
// a fully stripped (classless) partition of N rows.
type Stripped struct {
	// N is the number of rows of the underlying table.
	N int
	// rows holds the concatenated classes; offsets[i] is the start of class
	// i, with a final sentinel entry at len(rows). offsets is nil or has at
	// least one element.
	rows    []int32
	offsets []int32
	// shared is the cross-job sharing seam: once set (Share), the partition
	// is immutable — reset panics and Arena.Recycle refuses to reclaim the
	// buffers — so cache-resident partitions handed to concurrent jobs can
	// never be scribbled over by a later product. Accessed atomically.
	shared uint32
}

// Share marks p immutable for concurrent sharing: a shared partition can be
// read by any number of goroutines, but it can no longer be recycled into an
// arena or used as a product output buffer. Marking is one-way and
// idempotent; it returns p for chaining.
func (p *Stripped) Share() *Stripped {
	atomic.StoreUint32(&p.shared, 1)
	return p
}

// IsShared reports whether Share has marked p immutable.
func (p *Stripped) IsShared() bool { return atomic.LoadUint32(&p.shared) != 0 }

// MemBytes returns the retained heap footprint of the CSR buffers (capacity,
// not length — what the arena or a cache actually holds onto).
func (p *Stripped) MemBytes() int64 {
	return int64(cap(p.rows))*4 + int64(cap(p.offsets))*4
}

// NumClasses returns the number of non-singleton classes.
func (p *Stripped) NumClasses() int {
	if len(p.offsets) == 0 {
		return 0
	}
	return len(p.offsets) - 1
}

// Class returns the i-th class as a view into the shared row buffer. The
// slice must not be modified and is valid only as long as the partition is.
func (p *Stripped) Class(i int) []int32 {
	return p.rows[p.offsets[i]:p.offsets[i+1]]
}

// Size returns the total number of rows covered by non-singleton classes.
func (p *Stripped) Size() int { return len(p.rows) }

// TotalClasses returns the number of equivalence classes including the
// stripped singletons: |Π_X| of the unstripped partition.
func (p *Stripped) TotalClasses() int {
	return p.N - p.Size() + p.NumClasses()
}

// IsUnique reports whether every class is a singleton, i.e. the attribute set
// is a key for the instance.
func (p *Stripped) IsUnique() bool { return p.NumClasses() == 0 }

// String renders a compact summary for debugging.
func (p *Stripped) String() string {
	return fmt.Sprintf("Stripped(%d classes over %d/%d rows)", p.NumClasses(), p.Size(), p.N)
}

// reset prepares p to receive a partition over n rows with at most rowCap
// covered rows, reusing the existing buffers when large enough.
func (p *Stripped) reset(n, rowCap int) {
	if p.IsShared() {
		panic("partition: reuse of a shared partition as a product output")
	}
	p.N = n
	if cap(p.rows) < rowCap {
		p.rows = make([]int32, 0, rowCap)
	} else {
		p.rows = p.rows[:0]
	}
	classCap := rowCap/2 + 1
	if cap(p.offsets) < classCap {
		p.offsets = make([]int32, 1, classCap)
	} else {
		p.offsets = p.offsets[:1]
	}
	p.offsets[0] = 0
}

// appendClass appends one class (rows ascending) to the partition.
func (p *Stripped) appendClass(cls []int32) {
	if p.offsets == nil {
		p.offsets = append(p.offsets, 0)
	}
	p.rows = append(p.rows, cls...)
	p.offsets = append(p.offsets, int32(len(p.rows)))
}

// FromClasses builds a stripped partition of n rows from explicit classes
// (each ascending, ordered by first row id). Classes smaller than two rows
// are dropped. It is intended for tests and reference implementations.
func FromClasses(n int, classes [][]int32) *Stripped {
	p := &Stripped{N: n}
	for _, cls := range classes {
		if len(cls) >= 2 {
			p.appendClass(cls)
		}
	}
	return p
}

// Single builds the stripped partition of one rank-encoded column.
func Single(col *dataset.Column) *Stripped {
	n := col.Len()
	ranks := col.Ranks()
	nd := col.NumDistinct()
	counts := make([]int32, nd)
	for _, r := range ranks {
		counts[r]++
	}
	// Bucket rows by rank. Buckets are filled in ascending row order, so
	// bucket contents are ascending and the bucket's first element is the
	// rank's first-occurrence row.
	starts := make([]int32, nd)
	size, nc := 0, 0
	var off int32
	for r, c := range counts {
		starts[r] = off
		off += c
		if c >= 2 {
			size += int(c)
			nc++
		}
	}
	flat := make([]int32, n)
	next := append([]int32(nil), starts...)
	for i, r := range ranks {
		flat[next[r]] = int32(i)
		next[r]++
	}
	p := &Stripped{
		N:       n,
		rows:    make([]int32, 0, size),
		offsets: make([]int32, 1, nc+1),
	}
	// Emit buckets of size >= 2 in first-occurrence order: scanning rows in
	// ascending order and emitting a bucket exactly when its first row is
	// reached yields the deterministic layout without any sort.
	for i := 0; i < n; i++ {
		r := ranks[i]
		if counts[r] < 2 || flat[starts[r]] != int32(i) {
			continue
		}
		p.rows = append(p.rows, flat[starts[r]:starts[r]+counts[r]]...)
		p.offsets = append(p.offsets, int32(len(p.rows)))
	}
	return p
}

// FromRowSignature builds a stripped partition directly from an arbitrary
// per-row signature (rows with equal signatures share a class). It is used by
// tests and by brute-force reference implementations.
func FromRowSignature(sig []int64, n int) *Stripped {
	groups := make(map[int64][]int32)
	var order []int64
	for i := 0; i < n; i++ {
		if _, ok := groups[sig[i]]; !ok {
			order = append(order, sig[i])
		}
		groups[sig[i]] = append(groups[sig[i]], int32(i))
	}
	p := &Stripped{N: n}
	for _, k := range order {
		if g := groups[k]; len(g) >= 2 {
			p.appendClass(g)
		}
	}
	return p
}

// Product computes the stripped partition Π_{X∪Y} from Π_X = p and Π_Y =
// other. It is the convenience form of ProductInto: scratch comes from a
// shared pool and the result is freshly allocated (three allocations total).
// Hot loops should hold a ProductScratch and output buffers instead.
func (p *Stripped) Product(other *Stripped) *Stripped {
	s := defaultArena.GetScratch()
	out := &Stripped{}
	p.ProductInto(other, s, out)
	defaultArena.PutScratch(s)
	return out
}

// ProductInto computes the stripped partition Π_{X∪Y} into out in
// O(‖p‖ + ‖other‖) time with the TANE probe-table scheme: rows agreeing on
// both X and Y are exactly the rows sharing a p-class and an other-class.
// The probe is a flat row→class array (no map) and subgroups are assigned
// slots in first-occurrence order (no sort) — since rows within a class are
// ascending, first-occurrence order is exactly the deterministic
// first-row-id order of the [][]int32 era. With warm scratch and a
// previously used out, the call performs zero allocations. It returns out.
func (p *Stripped) ProductInto(other *Stripped, s *ProductScratch, out *Stripped) *Stripped {
	if p.N != other.N {
		panic(fmt.Sprintf("partition: product of partitions over %d and %d rows", p.N, other.N))
	}
	s.stamp(other)
	out.reset(p.N, len(p.rows))

	for ci := 0; ci+1 < len(p.offsets); ci++ {
		cls := p.rows[p.offsets[ci]:p.offsets[ci+1]]
		// Pass 1: assign each other-class touched by cls a subgroup slot in
		// first-occurrence order and count its rows.
		s.nextClass()
		numSub := 0
		for _, row := range cls {
			if s.rowStamp[row] != s.epoch {
				continue // singleton in other: singleton in the product
			}
			oc := s.otherOf[row]
			if s.subStamp[oc] != s.subGen {
				s.subStamp[oc] = s.subGen
				s.subOf[oc] = int32(numSub)
				if numSub < len(s.subCount) {
					s.subCount[numSub] = 0
				} else {
					s.subCount = append(s.subCount, 0)
					s.subStart = append(s.subStart, 0)
				}
				numSub++
			}
			s.subCount[s.subOf[oc]]++
		}
		// Lay out the surviving subgroups (size >= 2) in the output CSR.
		cur := int32(len(out.rows))
		emitted := false
		for sub := 0; sub < numSub; sub++ {
			if s.subCount[sub] >= 2 {
				s.subStart[sub] = cur
				cur += s.subCount[sub]
				out.offsets = append(out.offsets, cur)
				emitted = true
			} else {
				s.subStart[sub] = -1
			}
		}
		if !emitted {
			continue
		}
		// Pass 2: scatter rows to their subgroup slots. Rows are visited in
		// ascending order, so each subgroup stays ascending.
		out.rows = out.rows[:cur]
		for _, row := range cls {
			if s.rowStamp[row] != s.epoch {
				continue
			}
			sub := s.subOf[s.otherOf[row]]
			if at := s.subStart[sub]; at >= 0 {
				out.rows[at] = row
				s.subStart[sub] = at + 1
			}
		}
	}
	return out
}

// ClassIDs returns a per-row class identifier: rows in the i-th class map to
// int32(i); stripped (singleton) rows map to -1. The slice has length N.
func (p *Stripped) ClassIDs() []int32 {
	ids := make([]int32, p.N)
	for i := range ids {
		ids[i] = -1
	}
	for ci := 0; ci+1 < len(p.offsets); ci++ {
		for _, row := range p.rows[p.offsets[ci]:p.offsets[ci+1]] {
			ids[row] = int32(ci)
		}
	}
	return ids
}

// Refines reports whether p refines q: every class of p is contained in a
// single class of q. The unstripped semantics are used (singletons refine
// everything). The per-row probe comes from the shared scratch pool, so the
// check allocates nothing in steady state.
func (p *Stripped) Refines(q *Stripped) bool {
	if p.N != q.N {
		return false
	}
	s := defaultArena.GetScratch()
	defer defaultArena.PutScratch(s)
	s.stamp(q)
	for ci := 0; ci+1 < len(p.offsets); ci++ {
		cls := p.rows[p.offsets[ci]:p.offsets[ci+1]]
		// All rows of cls must map to the same q class; a q-singleton can
		// cover at most one row, so any singleton in a class of size >= 2
		// falsifies refinement.
		if s.rowStamp[cls[0]] != s.epoch {
			return false
		}
		first := s.otherOf[cls[0]]
		for _, row := range cls[1:] {
			if s.rowStamp[row] != s.epoch || s.otherOf[row] != first {
				return false
			}
		}
	}
	return true
}

// RawCSR exposes the flat CSR buffers for serialization: the concatenated
// class rows and the offsets array (with its trailing sentinel). Both slices
// are views into the partition and must not be modified.
func (p *Stripped) RawCSR() (rows, offsets []int32) { return p.rows, p.offsets }

// FromCSR builds a stripped partition over n rows directly from CSR buffers
// (taking ownership of both slices), validating every structural invariant a
// decoder needs before the partition can be probed: monotone offsets
// bracketing rows exactly, classes of at least two rows each, and row ids
// ascending within a class and in [0, n). Class order is preserved exactly —
// fold products emit classes in discovery order, and a shipped partition must
// match what the receiver would have folded locally byte for byte. It is the
// deserialization counterpart of RawCSR.
func FromCSR(n int, rows, offsets []int32) (*Stripped, error) {
	if n < 0 {
		return nil, fmt.Errorf("partition: negative row count %d", n)
	}
	if len(offsets) == 0 {
		if len(rows) != 0 {
			return nil, fmt.Errorf("partition: %d rows without offsets", len(rows))
		}
		return &Stripped{N: n}, nil
	}
	if offsets[0] != 0 || int(offsets[len(offsets)-1]) != len(rows) {
		return nil, fmt.Errorf("partition: offsets [%d..%d] do not bracket %d rows",
			offsets[0], offsets[len(offsets)-1], len(rows))
	}
	for ci := 0; ci+1 < len(offsets); ci++ {
		lo, hi := offsets[ci], offsets[ci+1]
		if hi < lo+2 || int(hi) > len(rows) {
			return nil, fmt.Errorf("partition: class %d spans [%d,%d) over %d rows", ci, lo, hi, len(rows))
		}
		last := int32(-1)
		for _, r := range rows[lo:hi] {
			if r <= last || int(r) >= n {
				return nil, fmt.Errorf("partition: row %d out of order or range in class %d", r, ci)
			}
			last = r
		}
	}
	return &Stripped{N: n, rows: rows, offsets: offsets}, nil
}

// Universe returns the trivial partition with a single class containing all n
// rows (the partition of the empty attribute set). For n < 2 the partition is
// fully stripped.
func Universe(n int) *Stripped {
	p := &Stripped{N: n}
	if n >= 2 {
		all := make([]int32, n)
		for i := range all {
			all[i] = int32(i)
		}
		p.rows = all
		p.offsets = []int32{0, int32(n)}
	}
	return p
}
