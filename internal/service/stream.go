package service

import (
	"aod"
)

// StreamEvent is one event of a job's progress stream (one NDJSON line of
// GET /jobs/{id}/stream). While the job runs, "level" events carry the
// per-level progress and the cumulative partial report; the stream ends with
// a single "done" event carrying the terminal state (and, for a completed
// job, the final report).
type StreamEvent struct {
	Type     string        `json:"type"` // "level" | "done"
	JobID    string        `json:"jobId"`
	State    JobState      `json:"state"`
	Progress *aod.Progress `json:"progress,omitempty"`
	// Report is the partial report on a "level" event, the final report on
	// the "done" event of a successfully completed job.
	Report *aod.Report `json:"report,omitempty"`
	Error  string      `json:"error,omitempty"`
}

// streamBuffer is each subscriber's channel capacity. Publishes never block
// discovery: a subscriber that falls behind skips intermediate levels —
// harmless, because every event is cumulative.
const streamBuffer = 16

// Stream subscribes to the job's progress: the returned channel delivers one
// StreamEvent per completed lattice level and is closed when the job reaches
// a terminal state (the subscriber then reads the final state via Job). A
// job that is already terminal yields an immediately closed channel. The
// returned cancel function detaches the subscriber (idempotent, safe after
// close); callers must invoke it to avoid leaking the subscription when
// abandoning the stream early.
//
// Jobs served without a validation run of their own — result-cache hits and
// waiters parked on an identical in-flight run — produce no level events:
// their stream just closes when the result lands.
func (s *Service) Stream(id string) (<-chan StreamEvent, func(), error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, nil, errNoJobf(id)
	}
	ch := make(chan StreamEvent, streamBuffer)
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		close(ch)
		return ch, func() {}, nil
	}
	// A late subscriber first sees the latest level already published, so it
	// never starts blind on a long-running job.
	if j.partial != nil {
		ch <- j.levelEventLocked()
	}
	j.subs = append(j.subs, ch)
	j.mu.Unlock()
	cancel := func() {
		j.mu.Lock()
		for i, sub := range j.subs {
			if sub == ch {
				j.subs = append(j.subs[:i], j.subs[i+1:]...)
				break
			}
		}
		j.mu.Unlock()
	}
	return ch, cancel, nil
}

// levelEventLocked builds the "level" event for the job's latest published
// snapshot. Caller holds j.mu and has checked j.partial != nil.
func (j *Job) levelEventLocked() StreamEvent {
	return StreamEvent{
		Type:     "level",
		JobID:    j.id,
		State:    j.state,
		Progress: j.progress,
		Report:   j.partial,
	}
}

// publishProgress records one completed level — refreshing the partial
// report, the progress, and the scheduler's remaining-cost estimate — and
// fans the event out to subscribers. Sends never block (see streamBuffer).
// Called from the discovery run's sink; a job canceled in the meantime stops
// publishing (its partials would be discarded anyway).
func (j *Job) publishProgress(p aod.Progress, partial *aod.Report) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != JobRunning {
		return
	}
	j.progress = &p
	j.partial = partial
	j.cost = p.EstimatedRemaining
	ev := j.levelEventLocked()
	for _, ch := range j.subs {
		select {
		case ch <- ev:
		default: // slow subscriber: skip this level, the next event catches up
		}
	}
}

// closeSubsLocked ends every subscriber's stream; called (under j.mu) at
// each transition into a terminal state. Closing the channel — rather than
// sending a terminal event — is what makes the contract race-free: the
// subscriber reads the authoritative final state afterwards.
func (j *Job) closeSubsLocked() {
	for _, ch := range j.subs {
		close(ch)
	}
	j.subs = nil
}
