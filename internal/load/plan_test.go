package load

import (
	"bytes"
	"math"
	"testing"
	"time"
)

func planConfig() PlanConfig {
	return PlanConfig{
		Rate:          200,
		Duration:      10 * time.Second,
		Arrival:       ArrivalPoisson,
		Mix:           DefaultMix(),
		Zipf:          0.99,
		SmallDatasets: 8,
		LargeDatasets: 2,
		Seed:          42,
	}
}

func TestBuildPlanDeterministic(t *testing.T) {
	a, err := BuildPlan(planConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildPlan(planConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("same config, different plan lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("plans diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	// And the rendered -plan-only surface is byte-identical.
	var bufA, bufB bytes.Buffer
	if err := WritePlan(&bufA, a); err != nil {
		t.Fatal(err)
	}
	if err := WritePlan(&bufB, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatal("WritePlan output differs for identical plans")
	}
}

func TestBuildPlanSeedChangesSequence(t *testing.T) {
	a, _ := BuildPlan(planConfig())
	cfg := planConfig()
	cfg.Seed = 43
	b, _ := BuildPlan(cfg)
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical plans")
	}
}

func TestBuildPlanShape(t *testing.T) {
	plan, err := BuildPlan(planConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) == 0 {
		t.Fatal("empty plan")
	}
	var counts [numClasses]int
	for i, r := range plan {
		if r.Seq != i {
			t.Fatalf("request %d has Seq %d", i, r.Seq)
		}
		if i > 0 && r.At < plan[i-1].At {
			t.Fatalf("arrival times decrease at %d", i)
		}
		if r.At <= 0 || r.At > 10*time.Second {
			t.Fatalf("request %d arrives at %v, outside (0, 10s]", i, r.At)
		}
		limit := 8
		if r.Class == Large {
			limit = 2
		}
		if r.Dataset < 0 || r.Dataset >= limit {
			t.Fatalf("request %d (%s) targets dataset %d, universe size %d", i, r.Class, r.Dataset, limit)
		}
		counts[r.Class]++
	}
	// Realized class shares track the 70/25/5 mix; ±6 sigma of the binomial.
	n := float64(len(plan))
	for _, tc := range []struct {
		class Class
		p     float64
	}{{CacheHit, 0.70}, {Small, 0.25}, {Large, 0.05}} {
		got := float64(counts[tc.class]) / n
		sigma := math.Sqrt(tc.p * (1 - tc.p) / n)
		if math.Abs(got-tc.p) > 6*sigma {
			t.Errorf("%s share %.3f, want %.2f ± %.3f", tc.class, got, tc.p, 6*sigma)
		}
	}
}

func TestBuildPlanValidation(t *testing.T) {
	for name, mutate := range map[string]func(*PlanConfig){
		"zero rate":     func(c *PlanConfig) { c.Rate = 0 },
		"zero duration": func(c *PlanConfig) { c.Duration = 0 },
		"empty mix":     func(c *PlanConfig) { c.Mix = Mix{} },
		"no small":      func(c *PlanConfig) { c.SmallDatasets = 0 },
		"no large":      func(c *PlanConfig) { c.LargeDatasets = 0 },
		"bad zipf":      func(c *PlanConfig) { c.Zipf = -1 },
	} {
		cfg := planConfig()
		mutate(&cfg)
		if _, err := BuildPlan(cfg); err == nil {
			t.Errorf("%s: BuildPlan accepted invalid config", name)
		}
	}
}

func TestParseMix(t *testing.T) {
	m, err := ParseMix("cachehit=70,small=25,large=5")
	if err != nil {
		t.Fatal(err)
	}
	if m.Weight(CacheHit) != 70 || m.Weight(Small) != 25 || m.Weight(Large) != 5 {
		t.Fatalf("parsed weights %d/%d/%d", m.Weight(CacheHit), m.Weight(Small), m.Weight(Large))
	}
	if got := m.String(); got != "cachehit=70,small=25,large=5" {
		t.Errorf("String() = %q", got)
	}
	for _, bad := range []string{"", "cachehit", "cachehit=-1", "bogus=10", "cachehit=0,small=0,large=0", "cachehit=x"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted invalid mix", bad)
		}
	}
	// A single-class mix only ever picks that class.
	only, err := ParseMix("small=1")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := BuildPlan(PlanConfig{
		Rate: 100, Duration: time.Second, Arrival: ArrivalFixed,
		Mix: only, SmallDatasets: 4, LargeDatasets: 1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range plan {
		if r.Class != Small {
			t.Fatalf("single-class mix produced %s", r.Class)
		}
	}
}
