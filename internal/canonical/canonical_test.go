package canonical

import (
	"fmt"
	"math/rand"
	"testing"

	"aod/internal/dataset"
	"aod/internal/lattice"
	"aod/internal/validate"
)

// Example 2.13: [A,B] ↦ [C,D] maps to {A,B}: []↦C, {A,B}: []↦D, {}: A∼C,
// {A}: B∼C, {C}: A∼D, {A,C}: B∼D.
func TestMapExample213(t *testing.T) {
	const A, B, C, D = 0, 1, 2, 3
	m := Map([]int{A, B}, []int{C, D})
	if len(m.OFDs) != 2 {
		t.Fatalf("OFDs = %v, want 2", m.OFDs)
	}
	wantOFDs := []OFD{
		{Context: lattice.NewAttrSet(A, B), A: C},
		{Context: lattice.NewAttrSet(A, B), A: D},
	}
	for i, w := range wantOFDs {
		if m.OFDs[i] != w {
			t.Errorf("OFD %d = %v, want %v", i, m.OFDs[i], w)
		}
	}
	wantOCs := []OC{
		{Context: lattice.NewAttrSet(), A: A, B: C},
		{Context: lattice.NewAttrSet(C), A: A, B: D},
		{Context: lattice.NewAttrSet(A), A: B, B: C},
		{Context: lattice.NewAttrSet(A, C), A: B, B: D},
	}
	if len(m.OCs) != len(wantOCs) {
		t.Fatalf("OCs = %v, want %d", m.OCs, len(wantOCs))
	}
	got := make(map[string]bool)
	for _, oc := range m.OCs {
		got[oc.String()] = true
	}
	for _, w := range wantOCs {
		if !got[w.String()] {
			t.Errorf("missing OC %v in %v", w, m.OCs)
		}
	}
}

func TestMapSkipsTrivial(t *testing.T) {
	// Repeated attributes: [A] ↦ [A, B] — the OC A ∼ A is trivial, the OFD
	// {A}: []↦A is trivial, and the pair (A, B) has context {A} ∋ A, so it
	// is trivial too: the OD reduces to the single OFD {A}: []↦B (it is
	// exactly the FD A → B).
	m := Map([]int{0}, []int{0, 1})
	if len(m.OFDs) != 1 || m.OFDs[0].A != 1 {
		t.Errorf("OFDs = %v", m.OFDs)
	}
	if len(m.OCs) != 0 {
		t.Errorf("OCs = %v, want none", m.OCs)
	}
	// [A,B] ↦ [B,A]: all canonical OCs trivial (each side enters the other's
	// prefix or coincides).
	m = Map([]int{0, 1}, []int{1, 0})
	if len(m.OFDs) != 0 {
		t.Errorf("OFDs = %v, want none", m.OFDs)
	}
	for _, oc := range m.OCs {
		if oc.A == oc.B {
			t.Errorf("trivial OC survived: %v", oc)
		}
	}
}

func TestMapEmptyLists(t *testing.T) {
	m := Map(nil, []int{2})
	if len(m.OFDs) != 1 || !m.OFDs[0].Context.IsEmpty() {
		t.Errorf("[]↦[C]: %v", m)
	}
	if len(m.OCs) != 0 {
		t.Errorf("[]↦[C] OCs = %v", m.OCs)
	}
	m = Map([]int{1}, nil)
	if len(m.OFDs) != 0 || len(m.OCs) != 0 {
		t.Errorf("[B]↦[]: %v", m)
	}
}

// The theory's equivalence, checked empirically: for random small tables and
// random lists, the canonical route (Holds) must agree exactly with the
// direct list-based validator.
func TestCanonicalEquivalenceWithListOD(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	agree, holdCount := 0, 0
	iters := 400
	if testing.Short() {
		iters = 100
	}
	for iter := 0; iter < iters; iter++ {
		rows := 2 + rng.Intn(16)
		attrs := 2 + rng.Intn(3)
		b := dataset.NewBuilder()
		for c := 0; c < attrs; c++ {
			vals := make([]int64, rows)
			for i := range vals {
				vals[i] = int64(rng.Intn(2 + rng.Intn(4)))
			}
			b.AddInts(fmt.Sprintf("c%d", c), vals)
		}
		tbl, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		// Random lists (with possible repetitions across X and Y).
		x := randomList(rng, attrs)
		y := randomList(rng, attrs)
		direct, _ := validate.ExactListOD(tbl, x, y)
		viaCanonical := Holds(tbl, x, y)
		if direct != viaCanonical {
			t.Fatalf("iter %d: X=%v Y=%v: direct=%v canonical=%v", iter, x, y, direct, viaCanonical)
		}
		agree++
		if direct {
			holdCount++
		}
	}
	if holdCount == 0 {
		t.Error("no OD held in any instance; test workload too adversarial")
	}
	if holdCount == agree {
		t.Error("every OD held; test workload too permissive")
	}
}

func randomList(rng *rand.Rand, attrs int) []int {
	n := 1 + rng.Intn(2)
	perm := rng.Perm(attrs)
	return perm[:n]
}

func TestMappingString(t *testing.T) {
	m := Map([]int{0}, []int{1})
	s := m.String()
	if s == "" {
		t.Error("empty mapping string")
	}
}
