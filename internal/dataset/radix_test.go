package dataset

import (
	"math"
	"math/rand"
	"slices"
	"sort"
	"testing"
)

func TestSortInt64sMatchesSlicesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 5, 63, 64, 65, 1000, 5000} {
		v := make([]int64, n)
		for i := range v {
			switch rng.Intn(4) {
			case 0:
				v[i] = rng.Int63() - (1 << 62) // large positive and negative
			case 1:
				v[i] = int64(rng.Intn(10)) - 5 // dense small values with ties
			case 2:
				v[i] = -rng.Int63()
			default:
				v[i] = int64(rng.Int31())
			}
		}
		want := append([]int64(nil), v...)
		slices.Sort(want)
		sortInt64s(v)
		if !slices.Equal(v, want) {
			t.Fatalf("n=%d: radix int64 sort diverges from comparison sort", n)
		}
	}
}

func TestSortFloat64sMatchesSortFloats(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 1, 63, 64, 200, 4000} {
		v := make([]float64, n)
		for i := range v {
			switch rng.Intn(5) {
			case 0:
				v[i] = rng.NormFloat64() * 1e12
			case 1:
				v[i] = -rng.Float64()
			case 2:
				v[i] = 0
			case 3:
				v[i] = math.Copysign(0, -1) // -0 sorts with +0
			default:
				v[i] = float64(rng.Intn(7))
			}
		}
		want := append([]float64(nil), v...)
		sort.Float64s(want)
		sortFloat64s(v)
		for i := range v {
			if v[i] != want[i] && !(v[i] == 0 && want[i] == 0) {
				t.Fatalf("n=%d idx %d: %v != %v", n, i, v[i], want[i])
			}
		}
	}
}

// BenchmarkBuildWideIntTable measures dataset cold start on a wide table —
// the column builders sort each column's distinct values, which the LSD
// radix pass turned from the dominant cost into a linear one.
func BenchmarkBuildWideIntTable(b *testing.B) {
	const rows, cols = 20_000, 32
	rng := rand.New(rand.NewSource(7))
	colData := make([][]int64, cols)
	for c := range colData {
		colData[c] = make([]int64, rows)
		for i := range colData[c] {
			colData[c][i] = rng.Int63n(1 << 40)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bld := NewBuilder()
		for c := range colData {
			bld.AddInts("c"+string(rune('a'+c)), colData[c])
		}
		if _, err := bld.Build(); err != nil {
			b.Fatal(err)
		}
	}
}
