package aod

import (
	"bytes"
	"sort"
	"strings"
	"testing"
)

func TestPublicQuickstartFlow(t *testing.T) {
	ds := Table1()
	if ds.NumRows() != 9 || ds.NumCols() != 7 {
		t.Fatalf("Table1 shape = %d×%d", ds.NumRows(), ds.NumCols())
	}
	rep, err := Discover(ds, Options{Threshold: 0.12, IncludeOFDs: true})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, oc := range rep.OCs {
		if len(oc.Context) == 1 && oc.Context[0] == "pos" &&
			((oc.A == "exp" && oc.B == "sal") || (oc.A == "sal" && oc.B == "exp")) {
			found = true
			if oc.Removals != 1 {
				t.Errorf("removals = %d, want 1", oc.Removals)
			}
		}
	}
	if !found {
		t.Errorf("{pos}: exp ∼ sal not found in %v", rep.OCs)
	}
	// Report is sorted by descending score.
	for i := 1; i < len(rep.OCs); i++ {
		if rep.OCs[i].Score > rep.OCs[i-1].Score {
			t.Fatal("OCs not sorted by score")
		}
	}
}

func TestPublicValidateOCMatchesPaperExamples(t *testing.T) {
	ds := Table1()
	// Example 2.15 / 3.2: e(sal ∼ tax) = 4/9 with removal {t1,t2,t4,t6}.
	v, err := ValidateOC(ds, nil, "sal", "tax", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if v.Removals != 4 || !v.Valid {
		t.Errorf("optimal: %+v, want 4 removals valid", v)
	}
	rows := append([]int{}, v.RemovalRows...)
	sort.Ints(rows)
	if len(rows) != 4 || rows[0] != 0 || rows[1] != 1 || rows[2] != 3 || rows[3] != 5 {
		t.Errorf("removal rows = %v, want [0 1 3 5]", rows)
	}
	// Example 3.1: the iterative validator overestimates (5 removals).
	it, err := ValidateOCIterative(ds, nil, "sal", "tax", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if it.Removals != 5 {
		t.Errorf("iterative removals = %d, want 5", it.Removals)
	}
	if it.Valid {
		t.Error("iterative should reject at ε=0.5 due to overestimation")
	}
}

func TestPublicValidateODAndOFD(t *testing.T) {
	ds := Table1()
	od, err := ValidateOD(ds, []string{"pos"}, "sal", "bonus", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !od.Valid || od.Removals != 0 {
		t.Errorf("{pos}: sal ↦ bonus should hold exactly: %+v", od)
	}
	ofd, err := ValidateOFD(ds, []string{"pos", "exp"}, "sal", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if !ofd.Valid || ofd.Removals != 1 {
		t.Errorf("{pos,exp}: []↦sal: %+v, want 1 removal valid", ofd)
	}
}

func TestPublicValidateListOD(t *testing.T) {
	ds := Table1()
	v, err := ValidateListOD(ds, []string{"sal"}, []string{"taxGrp"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Valid {
		t.Errorf("[sal] ↦ [taxGrp] should hold: %+v", v)
	}
	// The OD (unlike the OC, e = 1/9) needs the t6/t7 split removed as well
	// as the t8 swap: e = 2/9 ≈ 0.222.
	v, err = ValidateListOD(ds, []string{"pos", "exp"}, []string{"pos", "sal"}, 0.12)
	if err != nil {
		t.Fatal(err)
	}
	if v.Valid || v.Removals != 2 {
		t.Errorf("[pos,exp] ↦ [pos,sal] at ε=0.12: %+v, want invalid with 2 removals", v)
	}
	v, err = ValidateListOD(ds, []string{"pos", "exp"}, []string{"pos", "sal"}, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Valid {
		t.Errorf("[pos,exp] ↦ [pos,sal] should hold at ε=0.25: %+v", v)
	}
}

func TestPublicValidateErrors(t *testing.T) {
	ds := Table1()
	if _, err := ValidateOC(ds, nil, "nope", "sal", 0.1); err == nil {
		t.Error("want error for unknown column a")
	}
	if _, err := ValidateOC(ds, nil, "sal", "nope", 0.1); err == nil {
		t.Error("want error for unknown column b")
	}
	if _, err := ValidateOC(ds, []string{"nope"}, "sal", "tax", 0.1); err == nil {
		t.Error("want error for unknown context column")
	}
	if _, err := ValidateListOD(ds, []string{"nope"}, []string{"sal"}, 0.1); err == nil {
		t.Error("want error for unknown list column")
	}
	if _, err := ValidateListOD(ds, []string{"sal"}, []string{"nope"}, 0.1); err == nil {
		t.Error("want error for unknown list column in Y")
	}
}

func TestPublicCSVRoundTrip(t *testing.T) {
	ds := Table1()
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != ds.NumRows() || back.NumCols() != ds.NumCols() {
		t.Fatalf("round-trip shape mismatch: %v vs %v", back, ds)
	}
	rep1, err := Discover(ds, Options{Threshold: 0.12})
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := Discover(back, Options{Threshold: 0.12})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep1.OCs) != len(rep2.OCs) {
		t.Errorf("CSV round trip changed discovery: %d vs %d OCs", len(rep1.OCs), len(rep2.OCs))
	}
}

func TestPublicBuilderAndAccessors(t *testing.T) {
	ds, err := NewBuilder().
		AddInts("a", []int64{1, 2, 3}).
		AddFloats("f", []float64{0.5, 1.5, 2.5}).
		AddStrings("s", []string{"x", "y", "z"}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := ds.ColumnNames(); strings.Join(got, ",") != "a,f,s" {
		t.Errorf("names = %v", got)
	}
	val, err := ds.Value(1, "s")
	if err != nil || val != "y" {
		t.Errorf("Value = %q, %v", val, err)
	}
	if _, err := ds.Value(1, "zzz"); err == nil {
		t.Error("want error for unknown column")
	}
	if _, err := ds.Value(99, "a"); err == nil {
		t.Error("want error for bad row")
	}
	h := ds.Head(2)
	if h.NumRows() != 2 {
		t.Errorf("Head rows = %d", h.NumRows())
	}
	sel, err := ds.Select("s", "a")
	if err != nil || sel.NumCols() != 2 {
		t.Errorf("Select: %v, %v", sel, err)
	}
	if _, err := ds.Select("zzz"); err == nil {
		t.Error("want Select error")
	}
	if !strings.Contains(ds.String(), "3 rows") {
		t.Errorf("String = %q", ds.String())
	}
}

func TestPublicGenerators(t *testing.T) {
	f := Flight(200, 10, 1)
	if f.NumRows() != 200 || f.NumCols() != 10 {
		t.Errorf("Flight shape = %d×%d", f.NumRows(), f.NumCols())
	}
	n := NCVoter(200, 10, 1)
	if n.NumRows() != 200 || n.NumCols() != 10 {
		t.Errorf("NCVoter shape = %d×%d", n.NumRows(), n.NumCols())
	}
	c := CorrelatedPair(100, 0.1, 1)
	if c.NumCols() != 2 {
		t.Errorf("CorrelatedPair cols = %d", c.NumCols())
	}
}

func TestPublicDiscoverOnFlight(t *testing.T) {
	ds := Flight(800, 10, 3)
	rep, err := Discover(ds, Options{Threshold: 0.10, Algorithm: AlgorithmOptimal})
	if err != nil {
		t.Fatal(err)
	}
	// The planted ≈8% pair must be discovered at ε=10%.
	found := false
	for _, oc := range rep.OCs {
		if (oc.A == "origin" && oc.B == "originIATA") || (oc.A == "originIATA" && oc.B == "origin") {
			if len(oc.Context) == 0 {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("origin ∼ originIATA not discovered; got %d OCs", len(rep.OCs))
	}
	// Exact discovery must find strictly fewer or equal OCs at level 2, and
	// must include the exact planted pair distance ∼ airTime.
	exact, err := Discover(ds, Options{Algorithm: AlgorithmExact})
	if err != nil {
		t.Fatal(err)
	}
	foundExact := false
	for _, oc := range exact.OCs {
		if len(oc.Context) == 0 && ((oc.A == "distance" && oc.B == "airTime") || (oc.A == "airTime" && oc.B == "distance")) {
			foundExact = true
		}
	}
	if !foundExact {
		t.Error("distance ∼ airTime not discovered exactly")
	}
}

func TestPublicBidirectionalDiscovery(t *testing.T) {
	// birthYear = 100 − age in the generator: an exact descending partner.
	ds := NCVoter(1500, 10, 3)
	uni, err := Discover(ds, Options{Algorithm: AlgorithmExact})
	if err != nil {
		t.Fatal(err)
	}
	for _, oc := range uni.OCs {
		if oc.A == "age" && oc.B == "birthYear" && !oc.Descending {
			t.Fatalf("age ∼ birthYear should not hold ascending: %v", oc)
		}
	}
	bi, err := Discover(ds, Options{Algorithm: AlgorithmExact, Bidirectional: true})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, oc := range bi.OCs {
		if ((oc.A == "age" && oc.B == "birthYear") || (oc.A == "birthYear" && oc.B == "age")) && oc.Descending {
			found = true
			if !strings.Contains(oc.String(), "↓") {
				t.Errorf("descending OC string missing ↓: %q", oc.String())
			}
		}
	}
	if !found {
		t.Errorf("age ∼ birthYear↓ not found; OCs: %v", bi.OCs)
	}
}

func TestAlgorithmStrings(t *testing.T) {
	if AlgorithmExact.String() != "OD" {
		t.Error("AlgorithmExact name")
	}
	if AlgorithmOptimal.String() != "AOD (optimal)" {
		t.Error("AlgorithmOptimal name")
	}
	if AlgorithmIterative.String() != "AOD (iterative)" {
		t.Error("AlgorithmIterative name")
	}
}

func TestOCAndOFDStrings(t *testing.T) {
	oc := OC{Context: []string{"pos"}, A: "exp", B: "sal", Error: 1.0 / 9}
	if got := oc.String(); !strings.Contains(got, "{pos}: exp ∼ sal") {
		t.Errorf("OC String = %q", got)
	}
	ofd := OFD{Context: []string{"pos", "sal"}, A: "bonus", Error: 0}
	if got := ofd.String(); !strings.Contains(got, "{pos,sal}: [] ↦ bonus") {
		t.Errorf("OFD String = %q", got)
	}
}

func TestStatsHelpers(t *testing.T) {
	ds := Table1()
	rep, err := Discover(ds, Options{Threshold: 0.1, IncludeOFDs: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Rows != 9 || rep.Stats.Attrs != 7 {
		t.Errorf("stats rows/attrs = %d/%d", rep.Stats.Rows, rep.Stats.Attrs)
	}
	if share := rep.Stats.ValidationShare(); share < 0 || share > 1 {
		t.Errorf("ValidationShare = %g", share)
	}
	if len(rep.OCs) > 0 && rep.Stats.AvgOCLevel() < 2 {
		t.Errorf("AvgOCLevel = %g", rep.Stats.AvgOCLevel())
	}
	if (Stats{}).ValidationShare() != 0 || (Stats{}).AvgOCLevel() != 0 {
		t.Error("zero stats helpers should return 0")
	}
}
