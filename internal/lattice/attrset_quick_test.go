package lattice

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// Reference model: a map-based set.
type refSet map[int]bool

func refFrom(attrs []int) refSet {
	m := make(refSet)
	for _, a := range attrs {
		m[a] = true
	}
	return m
}

func (m refSet) toAttrSet() AttrSet {
	var s AttrSet
	for a := range m {
		s = s.Add(a)
	}
	return s
}

func genAttrs(rng *rand.Rand) []int {
	n := rng.Intn(10)
	out := make([]int, n)
	for i := range out {
		out[i] = rng.Intn(64)
	}
	return out
}

func TestAttrSetAgainstMapModel(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300, Values: func(args []reflect.Value, rng *rand.Rand) {
		args[0] = reflect.ValueOf(genAttrs(rng))
		args[1] = reflect.ValueOf(genAttrs(rng))
	}}
	f := func(as, bs []int) bool {
		ra, rb := refFrom(as), refFrom(bs)
		sa, sb := ra.toAttrSet(), rb.toAttrSet()
		// Card
		if sa.Card() != len(ra) {
			return false
		}
		// Union / Intersect / Minus
		union := make(refSet)
		inter := make(refSet)
		minus := make(refSet)
		for a := range ra {
			union[a] = true
			if rb[a] {
				inter[a] = true
			} else {
				minus[a] = true
			}
		}
		for b := range rb {
			union[b] = true
		}
		if sa.Union(sb) != union.toAttrSet() ||
			sa.Intersect(sb) != inter.toAttrSet() ||
			sa.Minus(sb) != minus.toAttrSet() {
			return false
		}
		// Contains
		contains := true
		for b := range rb {
			if !ra[b] {
				contains = false
			}
		}
		if sa.Contains(sb) != contains {
			return false
		}
		// Attrs round trip
		if refFrom(sa.Attrs()).toAttrSet() != sa {
			return false
		}
		// Min/Max
		if len(ra) > 0 {
			mn, mx := 64, -1
			for a := range ra {
				if a < mn {
					mn = a
				}
				if a > mx {
					mx = a
				}
			}
			if sa.Min() != mn || sa.Max() != mx {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestAttrSetAddRemoveInverse(t *testing.T) {
	f := func(attrs []int, a int) bool {
		s := refFrom(attrs).toAttrSet()
		if s.Has(a) {
			return s.Remove(a).Add(a) == s
		}
		return s.Add(a).Remove(a) == s
	}
	cfg := &quick.Config{MaxCount: 200, Values: func(args []reflect.Value, rng *rand.Rand) {
		args[0] = reflect.ValueOf(genAttrs(rng))
		args[1] = reflect.ValueOf(rng.Intn(64))
	}}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
