package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"aod"
)

// trickyDataset exercises the type-fidelity corners of the CSV round trip: a
// float column whose values all happen to be integral (re-inference would
// flip it to int) and a string column whose values all look numeric
// (re-inference would flip it to int).
func trickyDataset(t *testing.T) *aod.Dataset {
	t.Helper()
	ds, err := aod.NewBuilder().
		AddFloats("ratio", []float64{1, 2, 4, 8}).
		AddStrings("code", []string{"01", "2", "10", "007"}).
		AddInts("n", []int64{4, 3, 2, 1}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func metaFor(name string, ds *aod.Dataset) DatasetMeta {
	fp := ds.Fingerprint()
	return DatasetMeta{
		ID:          fp[:12],
		Name:        name,
		Fingerprint: fp,
		Rows:        ds.NumRows(),
		Cols:        ds.NumCols(),
		Columns:     ds.ColumnNames(),
		Types:       ds.ColumnTypes(),
	}
}

func mustOpen(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDatasetRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	ds := trickyDataset(t)
	meta := metaFor("tricky", ds)
	if err := s.PutDataset(meta, ds); err != nil {
		t.Fatal(err)
	}

	// A second store over the same directory — the restart — must list the
	// dataset and reload a payload with the identical fingerprint.
	s2 := mustOpen(t, dir)
	metas := s2.Datasets()
	if len(metas) != 1 {
		t.Fatalf("reopened store lists %d datasets, want 1", len(metas))
	}
	if metas[0].Name != "tricky" || metas[0].Fingerprint != meta.Fingerprint {
		t.Errorf("recovered meta %+v does not match stored %+v", metas[0], meta)
	}
	got, err := s2.LoadDataset(metas[0])
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint() != meta.Fingerprint {
		t.Errorf("reloaded fingerprint %s, want %s", got.Fingerprint(), meta.Fingerprint)
	}
	if types := got.ColumnTypes(); types[0] != "float" || types[1] != "string" || types[2] != "int" {
		t.Errorf("reloaded column types %v lost fidelity", types)
	}
}

func TestPutDatasetIsContentAddressed(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	ds := trickyDataset(t)
	if err := s.PutDataset(metaFor("a", ds), ds); err != nil {
		t.Fatal(err)
	}
	// Same content under a new name: one payload file, updated metadata.
	if err := s.PutDataset(metaFor("b", ds), ds); err != nil {
		t.Fatal(err)
	}
	files, err := os.ReadDir(s.path(datasetsDir))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Fatalf("%d payload files for one content, want 1", len(files))
	}
	if metas := s.Datasets(); len(metas) != 1 || metas[0].Name != "b" {
		t.Errorf("manifest = %+v, want single entry named b", metas)
	}
}

func TestPutDatasetRefusesUnserializableContent(t *testing.T) {
	// CSV folds a quoted "\r\n" to "\n" on read, so this value cannot
	// round-trip; the store must refuse durability instead of quarantining
	// the payload after the restart.
	ds, err := aod.NewBuilder().AddStrings("s", []string{"a\r\nb", "c"}).Build()
	if err != nil {
		t.Fatal(err)
	}
	s := mustOpen(t, t.TempDir())
	if err := s.PutDataset(metaFor("cr", ds), ds); !errors.Is(err, ErrUnserializable) {
		t.Fatalf("PutDataset error = %v, want ErrUnserializable", err)
	}
	if len(s.Datasets()) != 0 {
		t.Error("refused dataset still entered the manifest")
	}
}

func TestReportRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	rep := &aod.Report{
		OCs:   []aod.OC{{Context: []string{"pos"}, A: "exp", B: "sal", Error: 0.1, Removals: 1, Level: 3, Score: 0.45}},
		Stats: aod.Stats{Rows: 9, Attrs: 3},
	}
	const key = "fp|{\"threshold\":0.1}"
	if err := s.PutReport(key, rep); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.GetReport("some other key"); ok {
		t.Error("GetReport returned a report for a key never stored")
	}

	s2 := mustOpen(t, dir)
	got, ok := s2.GetReport(key)
	if !ok {
		t.Fatal("report lost across reopen")
	}
	want, _ := json.Marshal(rep)
	have, _ := json.Marshal(got)
	if string(want) != string(have) {
		t.Errorf("report changed across round trip:\nwant %s\nhave %s", want, have)
	}
}

func TestCorruptReportIsQuarantinedNotFatal(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	const key = "k"
	if err := s.PutReport(key, &aod.Report{}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.reportPath(key), []byte("{torn write"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.GetReport(key); ok {
		t.Fatal("corrupt report served as valid")
	}
	if q := s.Quarantined(); q != 1 {
		t.Errorf("quarantined = %d, want 1", q)
	}
	if _, err := os.Stat(s.reportPath(key)); !os.IsNotExist(err) {
		t.Error("corrupt report file still live after quarantine")
	}
	ents, _ := os.ReadDir(s.path(quarantineDir))
	if len(ents) != 1 {
		t.Errorf("quarantine dir holds %d files, want 1", len(ents))
	}
	// A mismatched embedded key (e.g. a file restored to the wrong name) is
	// also quarantined, not served.
	if err := s.PutReport(key, &aod.Report{}); err != nil {
		t.Fatal(err)
	}
	env, _ := json.Marshal(reportEnvelope{Key: "different", Report: &aod.Report{}})
	if err := os.WriteFile(s.reportPath(key), env, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.GetReport(key); ok {
		t.Fatal("report with mismatched key served as valid")
	}
	if q := s.Quarantined(); q != 2 {
		t.Errorf("quarantined = %d, want 2", q)
	}
}

func TestCorruptDatasetIsQuarantinedNotFatal(t *testing.T) {
	for name, corrupt := range map[string]string{
		"garbage":   "not a csv at all \x00\xff",
		"truncated": "ratio,code\n1,",
		"tampered":  "ratio,code,n\n1,01,4\n2,2,3\n4,10,2\n8,007,9\n",
	} {
		t.Run(name, func(t *testing.T) {
			s := mustOpen(t, t.TempDir())
			ds := trickyDataset(t)
			meta := metaFor("tricky", ds)
			if err := s.PutDataset(meta, ds); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(s.datasetPath(meta.Fingerprint), []byte(corrupt), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := s.LoadDataset(meta); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("LoadDataset error = %v, want ErrCorrupt", err)
			}
			if q := s.Quarantined(); q != 1 {
				t.Errorf("quarantined = %d, want 1", q)
			}
			if len(s.Datasets()) != 0 {
				t.Error("corrupt dataset still listed in manifest")
			}
			// Gone from the live name; a retry is a clean not-found.
			if _, err := s.LoadDataset(meta); !errors.Is(err, ErrNotFound) {
				t.Errorf("second load error = %v, want ErrNotFound", err)
			}
		})
	}
}

func TestCorruptManifestIsRecoveredFromPayloads(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	// Two datasets whose inferred types equal their declared types — fully
	// recoverable from payload alone.
	intDS, err := aod.NewBuilder().AddInts("a", []int64{3, 1, 2}).AddStrings("b", []string{"x", "y", "x"}).Build()
	if err != nil {
		t.Fatal(err)
	}
	strDS, err := aod.NewBuilder().AddStrings("s", []string{"p", "q", "r"}).Build()
	if err != nil {
		t.Fatal(err)
	}
	// One dataset that is NOT type-recoverable by inference (integral-valued
	// floats re-infer as ints): the scan must skip it without quarantining
	// the perfectly good payload.
	floatDS, err := aod.NewBuilder().AddFloats("f", []float64{1, 2, 3}).Build()
	if err != nil {
		t.Fatal(err)
	}
	for name, ds := range map[string]*aod.Dataset{"ints": intDS, "strs": strDS, "floats": floatDS} {
		if err := s.PutDataset(metaFor(name, ds), ds); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("}{ not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir)
	if got := s2.Recovered(); got != 2 {
		t.Errorf("recovered = %d, want 2", got)
	}
	metas := s2.Datasets()
	if len(metas) != 2 {
		t.Fatalf("recovered manifest lists %d datasets, want 2", len(metas))
	}
	for _, m := range metas {
		if m.Fingerprint == floatDS.Fingerprint() {
			t.Error("type-ambiguous dataset wrongly recovered")
		}
		if _, err := s2.LoadDataset(m); err != nil {
			t.Errorf("recovered dataset %s does not load: %v", m.ID, err)
		}
	}
	// The skipped payload must still be on disk, ready for a re-upload to
	// restore it losslessly.
	if _, err := os.Stat(s2.datasetPath(floatDS.Fingerprint())); err != nil {
		t.Errorf("unrecovered payload missing: %v", err)
	}
	// The recovered manifest is durable: a third open needs no rescan.
	s3 := mustOpen(t, dir)
	if s3.Recovered() != 0 || len(s3.Datasets()) != 2 {
		t.Errorf("third open: recovered=%d datasets=%d, want 0 and 2", s3.Recovered(), len(s3.Datasets()))
	}
}

func TestPutDatasetHealsCorruptPayloadInPlace(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	ds := trickyDataset(t)
	meta := metaFor("heal", ds)
	if err := s.PutDataset(meta, ds); err != nil {
		t.Fatal(err)
	}
	// Corrupt the payload in place, then re-upload identical content: the
	// put must notice the bytes differ and rewrite, not trust the file name.
	if err := os.WriteFile(s.datasetPath(meta.Fingerprint), []byte("rot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.PutDataset(meta, ds); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadDataset(meta); err != nil {
		t.Fatalf("payload not healed by re-upload: %v", err)
	}
	if q := s.Quarantined(); q != 0 {
		t.Errorf("quarantined = %d, want 0 (healed before any load)", q)
	}
}

func TestOpenSweepsOrphanedTempFiles(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	orphan := s.path(tmpDir, "put-crashed")
	if err := os.WriteFile(orphan, []byte("half a dataset"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir)
	ents, err := os.ReadDir(s2.path(tmpDir))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Errorf("tmp dir holds %d files after reopen, want 0 (orphans swept)", len(ents))
	}
}

func TestAtomicWritesLeaveNoTempDebris(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	ds := trickyDataset(t)
	if err := s.PutDataset(metaFor("d", ds), ds); err != nil {
		t.Fatal(err)
	}
	if err := s.PutReport("k", &aod.Report{}); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(s.path(tmpDir))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Errorf("tmp dir holds %d files after successful writes, want 0", len(ents))
	}
}

// TestConcurrentStoreAccess hammers one store from many goroutines; run
// under -race it proves the locking discipline (CI does).
func TestConcurrentStoreAccess(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ds, err := aod.NewBuilder().
				AddInts("a", []int64{int64(g), 2, 3}).
				AddStrings("b", []string{"u", "v", "w"}).
				Build()
			if err != nil {
				t.Error(err)
				return
			}
			meta := metaFor(fmt.Sprintf("g%d", g), ds)
			for i := 0; i < 20; i++ {
				if err := s.PutDataset(meta, ds); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.LoadDataset(meta); err != nil {
					t.Error(err)
					return
				}
				key := fmt.Sprintf("key-%d-%d", g, i%3)
				if err := s.PutReport(key, &aod.Report{Stats: aod.Stats{Rows: g}}); err != nil {
					t.Error(err)
					return
				}
				s.GetReport(key)
				s.Datasets()
			}
		}(g)
	}
	wg.Wait()
	if got := len(s.Datasets()); got != 8 {
		t.Errorf("manifest lists %d datasets, want 8", got)
	}
	if q := s.Quarantined(); q != 0 {
		t.Errorf("quarantined = %d during clean concurrent use, want 0", q)
	}
}
