package bench

import (
	"fmt"
	"io"
	"time"

	"aod/internal/core"
	"aod/internal/dataset"
	"aod/internal/lattice"
	"aod/internal/partition"
	"aod/internal/validate"
)

// Exp1 — Figure 2: scalability in the number of tuples. For each dataset and
// tuple count it reports the discovery runtime of OD (exact), AOD (optimal)
// and AOD (iterative, wall-clock capped with quadratic projection), plus the
// number of OCs/AOCs found (the small numbers printed beside the paper's
// datapoints).
func Exp1(w io.Writer, scale Scale, seed int64) []*Table {
	var tables []*Table
	for _, ds := range []string{"flight", "ncvoter"} {
		t := &Table{
			Title: fmt.Sprintf("Exp-1 (Figure 2) — scalability in |r|, %s, 10 attrs, ε=10%%", ds),
			Columns: []string{"tuples", "OD time", "#OCs", "AOD(opt) time", "#AOCs",
				"AOD(iter) time", "#AOCs(iter)"},
		}
		lastIterN, lastIterT := 0, time.Duration(0)
		for _, n := range scale.tupleGrid(ds) {
			tbl := genTable(ds, n, 10, seed)
			od := runDiscovery(tbl, core.ValidatorExact, 0, 0)
			opt := runDiscovery(tbl, core.ValidatorOptimal, 0.10, 0)
			iter := runDiscovery(tbl, core.ValidatorIterative, 0.10, scale.iterativeCap())
			iterCell, iterOCs := fmtDur(iter.duration), fmt.Sprintf("%d", len(iter.res.OCs))
			if iter.timedOut {
				proj := projectQuadratic(lastIterN, lastIterT, n)
				iterCell = fmt.Sprintf(">%s (proj %s)", fmtDur(iter.duration), fmtDur(proj))
				iterOCs = "-"
			} else {
				lastIterN, lastIterT = n, iter.duration
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", n),
				fmtDur(od.duration), fmt.Sprintf("%d", len(od.res.OCs)),
				fmtDur(opt.duration), fmt.Sprintf("%d", len(opt.res.OCs)),
				iterCell, iterOCs,
			})
		}
		t.Notes = append(t.Notes,
			"paper shape: AOD(optimal) tracks OD; AOD(iterative) grows ~quadratically and times out on large |r|")
		tables = append(tables, t)
	}
	return writeAll(w, tables)
}

// Exp2 — Figure 3: scalability in the number of attributes at 1K tuples
// (2K at tiny scale uses 1K too; the paper uses 1K). Log-scale exponential
// growth is the expected shape.
func Exp2(w io.Writer, scale Scale, seed int64) []*Table {
	const rows = 1000
	var tables []*Table
	for _, ds := range []string{"flight", "ncvoter"} {
		t := &Table{
			Title: fmt.Sprintf("Exp-2 (Figure 3) — scalability in |R|, %s, 1K tuples, ε=10%%", ds),
			Columns: []string{"attrs", "OD time", "#OCs", "AOD(opt) time", "#AOCs",
				"AOD(iter) time", "#AOCs(iter)"},
		}
		for _, attrs := range scale.attrGrid(ds) {
			tbl := genTable(ds, rows, attrs, seed)
			od := runDiscovery(tbl, core.ValidatorExact, 0, 0)
			opt := runDiscovery(tbl, core.ValidatorOptimal, 0.10, 0)
			iter := runDiscovery(tbl, core.ValidatorIterative, 0.10, scale.iterativeCap())
			iterCell := fmtDur(iter.duration)
			if iter.timedOut {
				iterCell = ">" + fmtDur(iter.duration)
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", attrs),
				fmtDur(od.duration), fmt.Sprintf("%d", len(od.res.OCs)),
				fmtDur(opt.duration), fmt.Sprintf("%d", len(opt.res.OCs)),
				iterCell, fmt.Sprintf("%d", len(iter.res.OCs)),
			})
		}
		t.Notes = append(t.Notes, "paper shape: exponential growth in |R| (log-scale y)")
		tables = append(tables, t)
	}
	return writeAll(w, tables)
}

// Exp3 — Figure 4: effect of the approximation threshold on 10K tuples.
// The optimal validator's runtime is flat (or falls, via better pruning);
// the iterative validator's grows roughly linearly with ε.
func Exp3(w io.Writer, scale Scale, seed int64) []*Table {
	rows := scale.thresholdRows()
	thresholds := []float64{0, 0.05, 0.10, 0.15, 0.20, 0.25}
	var tables []*Table
	for _, ds := range []string{"flight", "ncvoter"} {
		t := &Table{
			Title: fmt.Sprintf("Exp-3 (Figure 4) — threshold sweep, %s, %d tuples", ds, rows),
			Columns: []string{"ε", "AOD(opt) time", "#AOCs", "opt val-share",
				"AOD(iter) time", "#AOCs(iter)", "iter val-share"},
		}
		tbl := genTable(ds, rows, 10, seed)
		for _, eps := range thresholds {
			opt := runDiscovery(tbl, core.ValidatorOptimal, eps, 0)
			iter := runDiscovery(tbl, core.ValidatorIterative, eps, scale.iterativeCap())
			iterCell := fmtDur(iter.duration)
			if iter.timedOut {
				iterCell = ">" + fmtDur(iter.duration)
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%.0f%%", eps*100),
				fmtDur(opt.duration), fmt.Sprintf("%d", len(opt.res.OCs)),
				fmt.Sprintf("%.1f%%", opt.res.Stats.ValidationShare()*100),
				iterCell, fmt.Sprintf("%d", len(iter.res.OCs)),
				fmt.Sprintf("%.1f%%", iter.res.Stats.ValidationShare()*100),
			})
		}
		t.Notes = append(t.Notes,
			"paper shape: optimal flat/decreasing in ε; iterative ≈linear in ε; iterative validation share up to 99.6%")
		tables = append(tables, t)
	}
	return writeAll(w, tables)
}

// Exp4 — removal sets and missed AOCs. Measures, across all OC candidates
// of the two lowest lattice levels, the removal-set inflation of the greedy
// validator versus the minimal removal set, the candidates whose
// overestimate crosses the threshold (lost dependencies), and the
// discovery-level consequences — including the paper's
// arrivalDelay ∼ lateAircraftDelay anecdote.
func Exp4(w io.Writer, scale Scale, seed int64) []*Table {
	rows := scale.thresholdRows()
	eps := 0.10
	tbl := genTable("flight", rows, 10, seed)
	v := validate.New()

	// Candidate sweep: every pair with the empty context and with each
	// singleton context (lattice levels 2 and 3) — the populations the
	// validators see most often during discovery.
	inflationSum := 0.0
	inflationCnt, inflated, boundaryLost, candTotal := 0, 0, 0, 0
	numAttrs := tbl.NumCols()
	for ctxAttr := -1; ctxAttr < numAttrs; ctxAttr++ {
		ctx := partition.Universe(tbl.NumRows())
		if ctxAttr >= 0 {
			ctx = partition.Single(tbl.Column(ctxAttr))
		}
		for a := 0; a < numAttrs; a++ {
			for b := a + 1; b < numAttrs; b++ {
				if a == ctxAttr || b == ctxAttr {
					continue
				}
				ro := v.OptimalAOC(ctx, tbl.Column(a), tbl.Column(b),
					validate.Options{Threshold: 1, ComputeFullError: true})
				ri := v.IterativeAOC(ctx, tbl.Column(a), tbl.Column(b),
					validate.Options{Threshold: 1, ComputeFullError: true})
				candTotal++
				if ro.Removals > 0 {
					inflationSum += float64(ri.Removals)/float64(ro.Removals) - 1
					inflationCnt++
					if ri.Removals > ro.Removals {
						inflated++
					}
				}
				if ro.Error <= eps && ri.Error > eps {
					boundaryLost++
				}
			}
		}
	}
	avgInflation := 0.0
	if inflationCnt > 0 {
		avgInflation = inflationSum / float64(inflationCnt)
	}

	// Discovery-level comparison at ε.
	opt := runDiscovery(tbl, core.ValidatorOptimal, eps, 0)
	iter := runDiscovery(tbl, core.ValidatorIterative, eps, scale.iterativeCap())
	iterKeys := make(map[string]bool)
	for _, oc := range iter.res.OCs {
		iterKeys[ocKeyOf(oc)] = true
	}
	missed := 0
	for _, oc := range opt.res.OCs {
		if !iterKeys[ocKeyOf(oc)] {
			missed++
		}
	}

	t := &Table{
		Title:   fmt.Sprintf("Exp-4 — removal sets & missed AOCs, flight, %d tuples, ε=10%%", rows),
		Columns: []string{"metric", "value"},
		Rows: [][]string{
			{"OC candidates examined (levels 2–3)", fmt.Sprintf("%d", candTotal)},
			{"avg removal-set inflation (iterative vs minimal)", fmt.Sprintf("%.2f%%", avgInflation*100)},
			{"candidates with inflated removal sets", fmt.Sprintf("%d", inflated)},
			{"candidates lost at the ε boundary (e ≤ ε < estimate)", fmt.Sprintf("%d", boundaryLost)},
			{"AOCs found (optimal discovery)", fmt.Sprintf("%d", len(opt.res.OCs))},
			{"AOCs found (iterative discovery)", fmt.Sprintf("%d", len(iter.res.OCs))},
			{"minimal AOCs missed by iterative discovery", fmt.Sprintf("%d", missed)},
		},
		Notes: []string{"paper: iterative removal sets ≈1% larger on average; misses up to 2% of valid AOCs"},
	}

	// Anecdote: the planted arrivalDelay ∼ lateAircraftDelay gadget pair.
	a := tbl.ColumnIndex("lateAircraftDelay")
	b := tbl.ColumnIndex("arrivalDelay")
	if a >= 0 && b >= 0 {
		ctx := partition.Universe(tbl.NumRows())
		ro := v.OptimalAOC(ctx, tbl.Column(a), tbl.Column(b),
			validate.Options{Threshold: 1, ComputeFullError: true})
		ri := v.IterativeAOC(ctx, tbl.Column(a), tbl.Column(b),
			validate.Options{Threshold: 1, ComputeFullError: true})
		t.Rows = append(t.Rows,
			[]string{"arrivalDelay ∼ lateAircraftDelay true e", fmt.Sprintf("%.2f%%", ro.Error*100)},
			[]string{"arrivalDelay ∼ lateAircraftDelay iterative e", fmt.Sprintf("%.2f%%", ri.Error*100)},
		)
		t.Notes = append(t.Notes,
			"paper anecdote: true e=9.5% vs iterative 10.5% — the AOC is lost at ε=10% with the greedy validator")
	}
	return writeAll(w, []*Table{t})
}

// Exp5 — Figure 5: number of OCs/AOCs per lattice level on ncvoter with 10
// attributes, the average-level drop, and the runtime effect of earlier
// pruning (AOD discovery up to 34%/76% faster than exact OD discovery).
func Exp5(w io.Writer, scale Scale, seed int64) []*Table {
	rows := scale.exp5Rows()
	tbl := genTable("ncvoter", rows, 10, seed)
	od := runDiscovery(tbl, core.ValidatorExact, 0, 0)
	opt := runDiscovery(tbl, core.ValidatorOptimal, 0.10, 0)

	t := &Table{
		Title:   fmt.Sprintf("Exp-5 (Figure 5) — OCs/AOCs per lattice level, ncvoter, %d tuples, 10 attrs", rows),
		Columns: []string{"level", "#OCs (exact)", "#AOCs (ε=10%)"},
	}
	maxLevel := len(od.res.Stats.OCsFoundPerLevel)
	for lvl := 2; lvl < maxLevel; lvl++ {
		a := od.res.Stats.OCsFoundPerLevel[lvl]
		b := opt.res.Stats.OCsFoundPerLevel[lvl]
		if a == 0 && b == 0 {
			continue
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", lvl), fmt.Sprintf("%d", a), fmt.Sprintf("%d", b)})
	}
	speedup := 0.0
	if od.duration > 0 {
		speedup = (1 - float64(opt.duration)/float64(od.duration)) * 100
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("avg OC level: exact %.2f → approx %.2f (paper: 5.6 → 4.3)",
			od.res.Stats.AvgOCLevel(), opt.res.Stats.AvgOCLevel()),
		fmt.Sprintf("runtime: OD %s vs AOD(opt) %s (AOD %+.0f%% vs OD; paper: up to 34%%/76%% faster)",
			fmtDur(od.duration), fmtDur(opt.duration), speedup),
		fmt.Sprintf("early stop: OD=%v AOD=%v; levels processed: OD=%d AOD=%d",
			od.res.Stats.EarlyStopped, opt.res.Stats.EarlyStopped,
			od.res.Stats.LevelsProcessed, opt.res.Stats.LevelsProcessed),
	)
	return writeAll(w, []*Table{t})
}

// Exp6 — discovered AOCs compared to exact OCs, including the paper's named
// examples planted in the generators at their published exception rates.
func Exp6(w io.Writer, scale Scale, seed int64) []*Table {
	rows := scale.thresholdRows()
	var tables []*Table

	counts := &Table{
		Title:   fmt.Sprintf("Exp-6 — exact OCs vs AOCs found, %d tuples, 10 attrs", rows),
		Columns: []string{"dataset", "ε", "#OCs (exact)", "#AOCs"},
	}
	for _, cfg := range []struct {
		ds  string
		eps float64
	}{{"flight", 0.10}, {"ncvoter", 0.20}} {
		tbl := genTable(cfg.ds, rows, 10, seed)
		od := runDiscovery(tbl, core.ValidatorExact, 0, 0)
		opt := runDiscovery(tbl, core.ValidatorOptimal, cfg.eps, 0)
		counts.Rows = append(counts.Rows, []string{
			cfg.ds, fmt.Sprintf("%.0f%%", cfg.eps*100),
			fmt.Sprintf("%d", len(od.res.OCs)), fmt.Sprintf("%d", len(opt.res.OCs)),
		})
	}
	tables = append(tables, counts)

	named := &Table{
		Title:   "Exp-6 — the paper's named AOCs (planted at the published rates)",
		Columns: []string{"dataset", "AOC", "paper e", "measured e"},
	}
	v := validate.New()
	flight := genTable("flight", rows, 10, seed)
	ncv := genTable("ncvoter", rows, 10, seed)
	for _, row := range []struct {
		ds, a, b, paper string
	}{
		{"flight", "origin", "originIATA", "8%"},
		{"flight", "lateAircraftDelay", "arrivalDelay", "9.5%"},
		{"ncvoter", "municipality", "municipalityAbbrv", "~20%"},
		{"ncvoter", "streetAddress", "mailAddress", "18%"},
	} {
		tbl := flight
		if row.ds == "ncvoter" {
			tbl = ncv
		}
		ai, bi := tbl.ColumnIndex(row.a), tbl.ColumnIndex(row.b)
		if ai < 0 || bi < 0 {
			continue
		}
		r := v.OptimalAOC(partition.Universe(tbl.NumRows()), tbl.Column(ai), tbl.Column(bi),
			validate.Options{Threshold: 1})
		named.Rows = append(named.Rows, []string{
			row.ds, row.a + " ∼ " + row.b, row.paper, fmt.Sprintf("%.1f%%", r.Error*100),
		})
	}
	named.Notes = append(named.Notes,
		"measured e is a minimal removal fraction and sits at or below the planted corruption rate")
	tables = append(tables, named)
	return writeAll(w, tables)
}

// All runs every experiment in order.
func All(w io.Writer, scale Scale, seed int64) []*Table {
	var out []*Table
	out = append(out, Exp1(w, scale, seed)...)
	out = append(out, Exp2(w, scale, seed)...)
	out = append(out, Exp3(w, scale, seed)...)
	out = append(out, Exp4(w, scale, seed)...)
	out = append(out, Exp5(w, scale, seed)...)
	out = append(out, Exp6(w, scale, seed)...)
	return out
}

func writeAll(w io.Writer, tables []*Table) []*Table {
	if w != nil {
		for _, t := range tables {
			if _, err := t.WriteTo(w); err != nil {
				panic("bench: " + err.Error())
			}
		}
	}
	return tables
}

func ocKeyOf(oc core.OC) string {
	return fmt.Sprintf("%d|%d|%d", uint64(oc.Context), oc.A, oc.B)
}

// contextPartition materializes Π_ctx directly from single-column partitions.
func contextPartition(tbl *dataset.Table, ctx lattice.AttrSet) *partition.Stripped {
	p := partition.Universe(tbl.NumRows())
	ctx.ForEach(func(a int) {
		p = p.Product(partition.Single(tbl.Column(a)))
	})
	return p
}
