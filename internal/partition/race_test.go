//go:build race

package partition

// raceEnabled reports that the race detector is active: sync.Pool
// intentionally drops items under -race, so pooled-scratch allocation pins
// are skipped.
const raceEnabled = true
