package aod_test

import (
	"fmt"
	"sort"

	"aod"
)

// Discover approximate order compatibilities on the paper's running example
// (Table 1) and print the ones involving the salary column.
func ExampleDiscover() {
	ds := aod.Table1()
	report, err := aod.Discover(ds, aod.Options{
		Threshold: 0.12, // tolerate 12% exceptions
		Algorithm: aod.AlgorithmOptimal,
	})
	if err != nil {
		panic(err)
	}
	for _, oc := range report.OCs {
		if len(oc.Context) == 1 && oc.Context[0] == "pos" && oc.A == "exp" && oc.B == "sal" {
			fmt.Printf("%v removals=%d\n", oc, oc.Removals)
		}
	}
	// Output:
	// {pos}: exp ∼ sal (e=0.1111) removals=1
}

// Validate a single candidate: the paper's Example 2.15 — the OC sal ∼ tax
// has a minimal removal set of 4 tuples (t1, t2, t4, t6).
func ExampleValidateOC() {
	ds := aod.Table1()
	v, err := aod.ValidateOC(ds, nil, "sal", "tax", 0.5)
	if err != nil {
		panic(err)
	}
	rows := append([]int{}, v.RemovalRows...)
	sort.Ints(rows)
	fmt.Printf("e=%.4f minimal removal=%v\n", v.Error, rows)
	// Output:
	// e=0.4444 minimal removal=[0 1 3 5]
}

// The legacy iterative validator (Algorithm 1) overestimates the same
// candidate — the paper's Example 3.1.
func ExampleValidateOCIterative() {
	ds := aod.Table1()
	v, err := aod.ValidateOCIterative(ds, nil, "sal", "tax", 0.5)
	if err != nil {
		panic(err)
	}
	fmt.Printf("estimated removals=%d (true minimum is 4)\n", v.Removals)
	// Output:
	// estimated removals=5 (true minimum is 4)
}

// Order functional dependencies capture near-constancy: position and
// experience almost determine salary (one exception, the t6/t7 split).
func ExampleValidateOFD() {
	ds := aod.Table1()
	v, err := aod.ValidateOFD(ds, []string{"pos", "exp"}, "sal", 0.2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("valid=%v removals=%d\n", v.Valid, v.Removals)
	// Output:
	// valid=true removals=1
}

// Repair suggestions turn a dependency's removal set into value intervals.
func ExampleSuggestRepairs() {
	ds := aod.Table1()
	repairs, err := aod.SuggestRepairs(ds, []string{"pos"}, "exp", "sal")
	if err != nil {
		panic(err)
	}
	for _, r := range repairs {
		fmt.Printf("row %d: %s=%s should be at most %s\n", r.Row, r.Column, r.Current, r.Hi)
	}
	// Output:
	// row 7: sal=90 should be at most 30
}
