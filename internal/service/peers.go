package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"time"

	"aod"
)

// peerClient probes replica aodservers for already-computed reports. The
// lookup path is deliberately shallow: GET /peer/report reads only the
// peer's result cache (memory + disk tier), never its flights and never its
// own peers, so a full-mesh deployment cannot recurse or amplify.
type peerClient struct {
	urls []string
	hc   *http.Client
}

func newPeerClient(urls []string, timeout time.Duration) *peerClient {
	return &peerClient{
		urls: urls,
		hc: &http.Client{
			Timeout: timeout,
			Transport: &http.Transport{
				MaxIdleConnsPerHost: 4,
				IdleConnTimeout:     90 * time.Second,
			},
		},
	}
}

// fetch asks each peer in turn for the cache key, returning the first hit.
// Errors and misses are indistinguishable on purpose — either way the caller
// validates locally. ctx bounds the whole sweep (a canceled job stops asking).
func (p *peerClient) fetch(ctx context.Context, key string) (*aod.Report, bool) {
	for _, base := range p.urls {
		if ctx.Err() != nil {
			return nil, false
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet,
			base+"/peer/report?key="+url.QueryEscape(key), nil)
		if err != nil {
			continue
		}
		resp, err := p.hc.Do(req)
		if err != nil {
			continue // dead or slow peer: the local run is the fallback
		}
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			continue
		}
		var rep aod.Report
		err = json.NewDecoder(io.LimitReader(resp.Body, maxPeerReportBytes)).Decode(&rep)
		resp.Body.Close()
		if err != nil {
			continue // truncated or corrupt transfer: treat as a miss
		}
		return &rep, true
	}
	return nil, false
}

// maxPeerReportBytes bounds a peer report transfer; reports are summaries
// (dependency lists + stats), so anything past this is a protocol error.
const maxPeerReportBytes = 64 << 20

// peerFetch resolves the job's key against the configured peers, updating
// the miss counter. Returns false when peering is disabled.
func (s *Service) peerFetch(j *Job) (*aod.Report, bool) {
	if s.peers == nil {
		return nil, false
	}
	span := j.trace.StartUnder(j.rootSpan, "peer-lookup")
	rep, ok := s.peers.fetch(j.ctx, j.key)
	span.Attr("hit", boolAttr(ok))
	span.End()
	if !ok {
		s.met.peerMisses.Inc()
		return nil, false
	}
	return rep, true
}

// PeerReport serves another replica's cache probe: the cached report for the
// raw cache key, or ok=false. It reads the local cache only (memory, then
// the persisted report store) — no flights, no validation, no further peers.
func (s *Service) PeerReport(key string) (*aod.Report, bool) {
	rep, ok := s.cache.get(key)
	if ok {
		s.met.peerServed.Inc()
	}
	return rep, ok
}
