// Package order implements a bounded list-based order-dependency discoverer
// in the style of ORDER (Langer & Naumann, VLDB Journal 2016) — the paper's
// reference [5] and a related-work baseline. It searches the lattice of
// attribute-list pairs (X, Y) for ODs X ↦ Y, using ORDER's characteristic
// pruning rules:
//
//   - a swap between X and Y can never be repaired by appending attributes
//     to either list, so the candidate subtree is pruned;
//   - a split (X ties where Y differs) may be repaired by appending an
//     attribute to X, so the search extends the left list;
//   - once an OD holds it is reported and not extended (prefix minimality).
//
// As the reproduced paper notes (Sec. 2.2), this list-based strategy is
// deliberately incomplete — ODs whose lists share interleaved attributes are
// out of its search space — and its worst case is factorial in the number of
// attributes; Depth bounds keep it tractable. It exists here as a
// comparator, not as the primary engine.
package order

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"aod/internal/dataset"
)

// OD is a discovered list-based order dependency X ↦ Y.
type OD struct {
	// X and Y are attribute-index lists (order matters).
	X, Y []int
}

// String renders the OD as "[0,1] ↦ [2]".
func (d OD) String() string {
	return fmt.Sprintf("%s ↦ %s", fmtList(d.X, nil), fmtList(d.Y, nil))
}

// Format renders the OD with column names.
func (d OD) Format(names []string) string {
	return fmt.Sprintf("%s ↦ %s", fmtList(d.X, names), fmtList(d.Y, names))
}

func fmtList(l []int, names []string) string {
	parts := make([]string, len(l))
	for i, a := range l {
		if names != nil && a < len(names) {
			parts[i] = names[a]
		} else {
			parts[i] = fmt.Sprintf("%d", a)
		}
	}
	return "[" + strings.Join(parts, ",") + "]"
}

// Config bounds the search.
type Config struct {
	// MaxDepth bounds len(X); 0 means 3.
	MaxDepth int
	// TimeLimit aborts the search with partial results. 0 disables.
	TimeLimit time.Duration
}

// Result is the outcome of a discovery run.
type Result struct {
	// ODs in deterministic order (by X length, then lexicographic lists).
	ODs []OD
	// CandidatesChecked counts validated candidates.
	CandidatesChecked int
	// PrunedBySwap counts candidate subtrees cut by the swap rule.
	PrunedBySwap int
	// TimedOut reports a TimeLimit abort.
	TimedOut bool
	// TotalTime is the end-to-end runtime.
	TotalTime time.Duration
}

// verdict classifies a candidate validation.
type verdict int

const (
	holds verdict = iota
	splitOnly
	hasSwap
)

// classify checks X ↦ Y and reports whether it holds, fails only by splits,
// or contains at least one swap.
func classify(tbl *dataset.Table, x, y []int) verdict {
	n := tbl.NumRows()
	rows := make([]int32, n)
	for i := range rows {
		rows[i] = int32(i)
	}
	sort.Slice(rows, func(i, j int) bool {
		if c := cmpProj(tbl, x, rows[i], rows[j]); c != 0 {
			return c < 0
		}
		return cmpProj(tbl, y, rows[i], rows[j]) < 0
	})
	sawSplit := false
	var maxPrevRow int32 = -1
	var groupMaxRow int32 = -1
	for i := 0; i < n; i++ {
		row := rows[i]
		newGroup := i == 0 || cmpProj(tbl, x, rows[i-1], row) != 0
		if newGroup {
			if groupMaxRow >= 0 && (maxPrevRow < 0 || cmpProj(tbl, y, maxPrevRow, groupMaxRow) < 0) {
				maxPrevRow = groupMaxRow
			}
			groupMaxRow = -1
		} else if cmpProj(tbl, y, rows[i-1], row) != 0 {
			sawSplit = true
		}
		if maxPrevRow >= 0 && cmpProj(tbl, y, row, maxPrevRow) < 0 {
			return hasSwap
		}
		if groupMaxRow < 0 || cmpProj(tbl, y, groupMaxRow, row) < 0 {
			groupMaxRow = row
		}
	}
	if sawSplit {
		return splitOnly
	}
	return holds
}

func cmpProj(t *dataset.Table, cols []int, ri, rj int32) int {
	for _, c := range cols {
		ranks := t.Column(c).Ranks()
		if ranks[ri] != ranks[rj] {
			if ranks[ri] < ranks[rj] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// Discover runs the bounded list-based search.
func Discover(tbl *dataset.Table, cfg Config) (*Result, error) {
	numAttrs := tbl.NumCols()
	if numAttrs < 2 {
		return nil, fmt.Errorf("order: need at least two attributes")
	}
	maxDepth := cfg.MaxDepth
	if maxDepth == 0 {
		maxDepth = 3
	}
	start := time.Now()
	var deadline time.Time
	if cfg.TimeLimit > 0 {
		deadline = start.Add(cfg.TimeLimit)
	}

	res := &Result{}
	type cand struct{ x, y []int }
	var frontier []cand
	for a := 0; a < numAttrs; a++ {
		for b := 0; b < numAttrs; b++ {
			if a != b {
				frontier = append(frontier, cand{x: []int{a}, y: []int{b}})
			}
		}
	}
	seen := make(map[string]bool)
	keyOf := func(c cand) string {
		return fmtList(c.x, nil) + "|" + fmtList(c.y, nil)
	}

	for len(frontier) > 0 {
		var next []cand
		for _, c := range frontier {
			if !deadline.IsZero() && time.Now().After(deadline) {
				res.TimedOut = true
				res.TotalTime = time.Since(start)
				sortODs(res.ODs)
				return res, nil
			}
			k := keyOf(c)
			if seen[k] {
				continue
			}
			seen[k] = true
			res.CandidatesChecked++
			switch classify(tbl, c.x, c.y) {
			case holds:
				res.ODs = append(res.ODs, OD{X: c.x, Y: c.y})
			case hasSwap:
				res.PrunedBySwap++
			case splitOnly:
				if len(c.x) >= maxDepth {
					continue
				}
				used := make(map[int]bool, len(c.x)+len(c.y))
				for _, a := range c.x {
					used[a] = true
				}
				for _, a := range c.y {
					used[a] = true
				}
				for a := 0; a < numAttrs; a++ {
					if used[a] {
						continue
					}
					nx := append(append([]int{}, c.x...), a)
					next = append(next, cand{x: nx, y: c.y})
				}
			}
		}
		frontier = next
	}
	res.TotalTime = time.Since(start)
	sortODs(res.ODs)
	return res, nil
}

func sortODs(ods []OD) {
	sort.Slice(ods, func(i, j int) bool {
		if len(ods[i].X) != len(ods[j].X) {
			return len(ods[i].X) < len(ods[j].X)
		}
		for k := range ods[i].X {
			if ods[i].X[k] != ods[j].X[k] {
				return ods[i].X[k] < ods[j].X[k]
			}
		}
		for k := 0; k < len(ods[i].Y) && k < len(ods[j].Y); k++ {
			if ods[i].Y[k] != ods[j].Y[k] {
				return ods[i].Y[k] < ods[j].Y[k]
			}
		}
		return len(ods[i].Y) < len(ods[j].Y)
	})
}
