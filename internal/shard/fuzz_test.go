package shard

import (
	"bytes"
	"reflect"
	"testing"

	"aod/internal/core"
	"aod/internal/dataset"
	"aod/internal/partition"
	"aod/internal/telemetry"
)

// encodeBody renders f as one frame body (without the length prefix) — the
// exact bytes writeFrame would put on the wire.
func encodeBody(t interface{ Fatalf(string, ...any) }, f *frame) []byte {
	var buf bytes.Buffer
	if _, err := writeFrame(&buf, f); err != nil {
		t.Fatalf("encoding %s frame: %v", f.T, err)
	}
	return buf.Bytes()[4:]
}

// reencodable reports whether writeFrame can render f again: a JSON body may
// claim a binary payload type and decode with a nil payload — every receive
// site rejects such frames by type check, so the round-trip property does not
// apply to them.
func reencodable(f *frame) bool {
	switch f.T {
	case "dataset":
		return f.Dataset != nil
	case "parts":
		return f.Parts != nil
	case "level":
		return f.Level != nil
	case "result":
		return f.Result != nil
	}
	return true
}

// FuzzDecodeFrame pins the two codec guarantees the wire protocol leans on:
// decodeFrame is total over arbitrary bytes (errors, never panics), and any
// body it accepts re-encodes to a canonical form that round-trips losslessly
// (encode ∘ decode is idempotent at the byte level).
func FuzzDecodeFrame(f *testing.F) {
	// One valid seed per frame kind, plus near-misses that walk the
	// dispatch-byte and version-check branches.
	f.Add(encodeBody(f, &frame{T: "hello", Hello: &helloMsg{Proto: protoVersion, Fingerprint: "fp", Rows: 7, Cols: 3}}))
	f.Add(encodeBody(f, &frame{T: "ack", Ack: &ackMsg{OK: true, NeedDataset: true}}))
	f.Add(encodeBody(f, &frame{T: "level", Level: &levelMsg{
		Level: 2,
		Trace: "tr-1",
		Tasks: []core.NodeTask{{Set: 6, Level: 2, ConstValid: 1, ParentConst: []uint64{3, 5}, OCValid: []uint64{9}, OCValidDesc: []uint64{4}}},
	}}))
	f.Add(encodeBody(f, &frame{T: "result", Result: &resultMsg{
		Results: []core.NodeResult{{
			Candidates: 2,
			NewConst:   4,
			OCs:        []core.TaskOC{{A: 1, B: 2, Descending: true, Error: 0.25, Removals: 3, RemovalRows: []int32{4, 9, 11}}},
			OFDs:       []core.TaskOFD{{A: 0, Error: 0.5, Removals: 1, RemovalRows: []int32{2}}},
		}},
		Spans: []telemetry.WireSpan{{Name: "slice"}},
	}}))
	tbl, err := dataset.ReadCSV(bytes.NewReader([]byte("a,b\n1,x\n2,y\n1,x\n")), dataset.CSVOptions{})
	if err != nil {
		f.Fatal(err)
	}
	cols := make([]dataset.ColumnData, tbl.NumCols())
	for i := range cols {
		cols[i] = tbl.Column(i).Data()
	}
	f.Add(encodeBody(f, &frame{T: "dataset", Dataset: &datasetMsg{Rows: tbl.NumRows(), Cols: cols}}))
	f.Add([]byte{})
	f.Add([]byte{binMagic})
	f.Add([]byte{binMagic, protoVersion})
	f.Add([]byte{binMagic, protoVersion + 1, binLevel})
	f.Add([]byte{binMagic, protoVersion, 99})
	f.Add([]byte(`{"t":"level"}`))
	f.Add([]byte(`{"t":"parts"}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := decodeFrame(data) // must never panic
		if err != nil || !reencodable(fr) {
			return
		}
		var buf1 bytes.Buffer
		if _, err := writeFrame(&buf1, fr); err != nil {
			// JSON bodies can carry frame types writeFrame does not know.
			return
		}
		fr2, err := decodeFrame(buf1.Bytes()[4:])
		if err != nil {
			t.Fatalf("re-decoding a frame the codec itself produced: %v", err)
		}
		var buf2 bytes.Buffer
		if _, err := writeFrame(&buf2, fr2); err != nil {
			t.Fatalf("re-encoding a decoded frame: %v", err)
		}
		if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
			t.Fatalf("encode∘decode not idempotent:\n first %x\nsecond %x", buf1.Bytes(), buf2.Bytes())
		}
	})
}

// FuzzDecodeTasks fuzzes the task-record decoder directly (the hot inner
// loop of every level frame): arbitrary bytes never panic, and any accepted
// task slice survives an encode→decode round trip value-identically.
func FuzzDecodeTasks(f *testing.F) {
	// Seeds are raw decodeTasks input: the count-prefixed task records alone,
	// without the enclosing level header.
	enc := func(tasks []core.NodeTask) []byte {
		b := encodeLevelPayload(nil, &levelMsg{Level: 0, Trace: "", Tasks: tasks})
		// encodeLevelPayload prefixes uvarint(level=0) and string(trace="")
		// — one byte each — ahead of the task records.
		return b[2:]
	}
	f.Add(enc(nil))
	f.Add(enc([]core.NodeTask{{Set: 3, Level: 1, ConstValid: 2}}))
	f.Add(enc([]core.NodeTask{
		{Set: 6, Level: 2, ConstValid: 1, ParentConst: []uint64{3, 5}, OCValid: []uint64{9, 1}, OCValidDesc: []uint64{4}},
		{Set: 12, Level: 2, ConstValid: 0, OCValid: []uint64{7}},
	}))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}) // huge count
	f.Add([]byte{1, 0})                                                       // truncated mid-task

	f.Fuzz(func(t *testing.T, data []byte) {
		r := &wireReader{b: data}
		tasks, err := decodeTasks(r) // must never panic
		if err != nil {
			return
		}
		b := enc(tasks)
		r2 := &wireReader{b: b}
		tasks2, err := decodeTasks(r2)
		if err != nil {
			t.Fatalf("re-decoding tasks the codec itself encoded: %v", err)
		}
		if r2.remaining() != 0 {
			t.Fatalf("%d bytes left after re-decoding %d tasks", r2.remaining(), len(tasks2))
		}
		if !reflect.DeepEqual(tasks, tasks2) {
			t.Fatalf("task round trip diverged:\n first %+v\nsecond %+v", tasks, tasks2)
		}
	})
}

// FuzzDecodePartitionFrame drills into the v3 parts frame: decoding arbitrary
// bytes through the full frame path never panics, any partition the decoder
// accepts passes partition.FromCSR's structural validation of its own CSR
// buffers (the "hostile frames error, never produce a malformed partition"
// contract), and accepted frames re-encode byte-idempotently.
func FuzzDecodePartitionFrame(f *testing.F) {
	mkPart := func(n int, rows, offsets []int32) *partition.Stripped {
		p, err := partition.FromCSR(n, rows, offsets)
		if err != nil {
			f.Fatal(err)
		}
		return p
	}
	// Valid frames: a single two-class partition, a fully stripped partition
	// (no classes survive), and classes in fold-discovery order rather than
	// first-row order — the exact shape ProductInto emits.
	f.Add(encodeBody(f, &frame{T: "parts", Parts: &partsMsg{Level: 2, Parts: []core.SeedPartition{
		{Set: 3, Part: mkPart(6, []int32{0, 2, 4, 1, 5}, []int32{0, 3, 5})},
	}}}))
	valid := encodeBody(f, &frame{T: "parts", Parts: &partsMsg{Level: 3, Parts: []core.SeedPartition{
		{Set: 7, Part: mkPart(5, nil, nil)},
		{Set: 11, Part: mkPart(4, []int32{2, 3, 0, 1}, []int32{0, 2, 4})},
		{Set: 13, Part: mkPart(9, []int32{1, 4, 8, 0, 2, 6}, []int32{0, 3, 6})},
	}}})
	f.Add(valid)
	// Near-misses walking every rejection branch: version skew one ahead and
	// one behind (a v2 peer's bytes must error, not garbage-decode), a
	// truncated body, an empty payload, and structurally invalid CSR shapes
	// the decoder must refuse (rows out of order within a class, a singleton
	// class, offsets that do not bracket the rows).
	skewNew := append([]byte(nil), valid...)
	skewNew[1] = protoVersion + 1
	f.Add(skewNew)
	skewOld := append([]byte(nil), valid...)
	skewOld[1] = protoVersion - 1
	f.Add(skewOld)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte{binMagic, protoVersion, binParts})
	rawParts := func(level, count uint64, mut func(b []byte) []byte) []byte {
		b := []byte{binMagic, protoVersion, binParts}
		b = appendUvarint(b, level)
		b = appendUvarint(b, count)
		return mut(b)
	}
	f.Add(rawParts(2, 1, func(b []byte) []byte {
		b = appendUvarint(b, 3) // set
		b = appendUvarint(b, 6) // n
		b = appendRows32(b, []int32{5, 1, 2})
		return appendRows32(b, []int32{0, 3})
	}))
	f.Add(rawParts(2, 1, func(b []byte) []byte {
		b = appendUvarint(b, 3)
		b = appendUvarint(b, 6)
		b = appendRows32(b, []int32{0, 1, 2})
		return appendRows32(b, []int32{0, 1, 3}) // singleton first class
	}))
	f.Add(rawParts(2, 1, func(b []byte) []byte {
		b = appendUvarint(b, 3)
		b = appendUvarint(b, 6)
		b = appendRows32(b, []int32{0, 1, 2})
		return appendRows32(b, []int32{1, 3}) // offsets do not start at 0
	}))

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := decodeFrame(data) // must never panic
		if err != nil || fr.T != "parts" || fr.Parts == nil {
			return
		}
		for i, sp := range fr.Parts.Parts {
			if sp.Part == nil {
				t.Fatalf("accepted parts frame holds nil partition at %d", i)
			}
			rows, offsets := sp.Part.RawCSR()
			if _, err := partition.FromCSR(sp.Part.N, rows, offsets); err != nil {
				t.Fatalf("accepted partition %d fails its own revalidation: %v", i, err)
			}
		}
		var buf1 bytes.Buffer
		if _, err := writeFrame(&buf1, fr); err != nil {
			t.Fatalf("re-encoding an accepted parts frame: %v", err)
		}
		fr2, err := decodeFrame(buf1.Bytes()[4:])
		if err != nil {
			t.Fatalf("re-decoding a parts frame the codec itself produced: %v", err)
		}
		var buf2 bytes.Buffer
		if _, err := writeFrame(&buf2, fr2); err != nil {
			t.Fatalf("re-encoding a decoded parts frame: %v", err)
		}
		if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
			t.Fatalf("parts encode∘decode not idempotent:\n first %x\nsecond %x", buf1.Bytes(), buf2.Bytes())
		}
	})
}
