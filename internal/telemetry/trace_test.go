package telemetry

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceNesting(t *testing.T) {
	tr := NewTrace("job-1")
	root := tr.Start(0, "job")
	child := tr.StartUnder(root, "discover")
	grand := tr.StartUnder(child, "level")
	grand.SetLabel("level %d", 2)
	grand.Attr("tasks", 17)
	grand.End()
	child.End()
	root.End()

	tree := tr.Tree()
	if tree.TraceID != "job-1" {
		t.Fatalf("trace id = %q", tree.TraceID)
	}
	if len(tree.Spans) != 1 {
		t.Fatalf("roots = %d, want 1", len(tree.Spans))
	}
	r := tree.Spans[0]
	if r.Name != "job" || len(r.Children) != 1 {
		t.Fatalf("bad root: %+v", r)
	}
	c := r.Children[0]
	if c.Name != "discover" || len(c.Children) != 1 {
		t.Fatalf("bad child: %+v", c)
	}
	g := c.Children[0]
	if g.Label != "level 2" || g.Attrs["tasks"] != 17 {
		t.Fatalf("bad grandchild: %+v", g)
	}
	if g.Start < c.Start {
		t.Fatal("child starts before parent")
	}
}

func TestTraceNilSafety(t *testing.T) {
	var tr *Trace
	if tr.ID() != "" {
		t.Fatal("nil trace has an ID")
	}
	s := tr.Start(0, "x")
	if s != nil {
		t.Fatal("nil trace returned a span")
	}
	// All of these must be no-ops, not panics.
	s.SetLabel("l")
	s.Attr("k", 1)
	s.End()
	s.End()
	if s.ID() != 0 {
		t.Fatal("nil span has an ID")
	}
	tr.Event(0, "e", "")
	tr.AddRemote(0, []WireSpan{{Name: "r"}})
	if tr.Spans() != nil {
		t.Fatal("nil trace has spans")
	}
	tr.WriteText(&strings.Builder{})
	ctx := NewContext(context.Background(), tr, 0)
	if got, _ := FromContext(ctx); got != nil {
		t.Fatal("nil trace leaked into context")
	}
}

func TestTraceDoubleEnd(t *testing.T) {
	tr := NewTrace("t")
	s := tr.Start(0, "x")
	s.End()
	s.End()
	if n := len(tr.Spans()); n != 1 {
		t.Fatalf("double End committed %d spans", n)
	}
}

func TestTraceRemoteRebasing(t *testing.T) {
	tr := NewTrace("t")
	rpc := tr.Start(0, "rpc")
	time.Sleep(2 * time.Millisecond)
	rpc.End()

	// Worker-side spans on the worker's own clock: zero at 5s (arbitrary
	// skew), one parent with one child 1ms in.
	remote := []WireSpan{{
		Name:    "worker-exec",
		Label:   "trace-echo",
		StartNs: int64(5 * time.Second),
		DurNs:   int64(3 * time.Millisecond),
		Attrs:   map[string]int64{"tasks": 9},
		Children: []WireSpan{{
			Name:    "partition",
			StartNs: int64(5*time.Second + time.Millisecond),
			DurNs:   int64(time.Millisecond),
		}},
	}}
	tr.AddRemote(rpc.ID(), remote)

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(spans))
	}
	var exec, part *Span
	for i := range spans {
		switch spans[i].Name {
		case "worker-exec":
			exec = &spans[i]
		case "partition":
			part = &spans[i]
		}
	}
	if exec == nil || part == nil {
		t.Fatal("remote spans missing")
	}
	if !exec.Remote || !part.Remote {
		t.Fatal("remote spans not marked remote")
	}
	// Re-based: earliest remote span starts where the rpc span starts, and
	// the child keeps its 1ms relative offset.
	rpcStart := tr.Tree().Spans[0].Start
	if exec.Start != rpcStart {
		t.Errorf("exec start %v, want rpc start %v (skew not absorbed)", exec.Start, rpcStart)
	}
	if got := part.Start - exec.Start; got != time.Millisecond {
		t.Errorf("relative child offset %v, want 1ms", got)
	}
	if exec.Attrs["tasks"] != 9 || exec.Label != "trace-echo" {
		t.Errorf("attrs/label lost in import: %+v", exec)
	}
	// The child hangs under the imported parent in the tree.
	tree := tr.Tree()
	if len(tree.Spans) != 1 || len(tree.Spans[0].Children) != 1 || len(tree.Spans[0].Children[0].Children) != 1 {
		b, _ := json.Marshal(tree)
		t.Fatalf("tree shape wrong: %s", b)
	}
}

func TestTraceContextPropagation(t *testing.T) {
	tr := NewTrace("t")
	root := tr.Start(0, "root")
	ctx := NewContext(context.Background(), tr, root.ID())
	got, parent := FromContext(ctx)
	if got != tr || parent != root.ID() {
		t.Fatal("context round trip lost trace or parent")
	}
	if got2, p2 := FromContext(context.Background()); got2 != nil || p2 != 0 {
		t.Fatal("empty context returned a trace")
	}
}

func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTrace("t")
	root := tr.Start(0, "root")
	var wg sync.WaitGroup
	const n = 50
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := tr.Start(root.ID(), "w")
			s.Attr("i", int64(i))
			s.End()
		}(i)
	}
	wg.Wait()
	root.End()
	spans := tr.Spans()
	if len(spans) != n+1 {
		t.Fatalf("spans = %d, want %d", len(spans), n+1)
	}
	seen := map[SpanID]bool{}
	for _, s := range spans {
		if seen[s.ID] {
			t.Fatalf("duplicate span id %d", s.ID)
		}
		seen[s.ID] = true
	}
}

func TestTraceOrphanPromotion(t *testing.T) {
	tr := NewTrace("t")
	// Child committed while parent is still open: must surface as a root
	// rather than vanish.
	open := tr.Start(0, "still-open")
	child := tr.Start(open.ID(), "done-early")
	child.End()
	tree := tr.Tree()
	if len(tree.Spans) != 1 || tree.Spans[0].Name != "done-early" {
		t.Fatalf("orphan not promoted: %+v", tree.Spans)
	}
	open.End()
}

func TestTraceWriteText(t *testing.T) {
	tr := NewTrace("abc123")
	s := tr.Start(0, "discover")
	lvl := tr.StartUnder(s, "level")
	lvl.SetLabel("level 1")
	lvl.Attr("tasks", 3)
	lvl.End()
	s.End()
	var b strings.Builder
	tr.WriteText(&b)
	out := b.String()
	for _, want := range []string{"trace abc123", "discover", "level [level 1]", "tasks=3"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q\n%s", want, out)
		}
	}
}
