package aod

import (
	"context"
	"fmt"
	"strings"
	"time"

	"aod/internal/core"
)

// Algorithm selects the validation algorithm used during discovery.
type Algorithm int

const (
	// AlgorithmOptimal is the paper's LNDS-based optimal validator
	// (Algorithm 2): O(n log n), guaranteed-minimal removal sets, complete
	// discovery. This is the default.
	AlgorithmOptimal Algorithm = iota
	// AlgorithmExact discovers exact order dependencies only (ε = 0), the
	// "OD" baseline of the paper's experiments.
	AlgorithmExact
	// AlgorithmIterative is the legacy greedy validator (Algorithm 1):
	// O(n log n + εn²), may overestimate approximation factors and thus
	// miss valid dependencies. Provided as the paper's comparison baseline.
	AlgorithmIterative
)

// String names the algorithm as in the paper's figures.
func (a Algorithm) String() string { return a.kind().String() }

// MarshalText encodes the algorithm as its stable lower-case name
// ("optimal", "exact", "iterative"), used by the JSON API and CLI flags.
func (a Algorithm) MarshalText() ([]byte, error) {
	switch a {
	case AlgorithmExact:
		return []byte("exact"), nil
	case AlgorithmIterative:
		return []byte("iterative"), nil
	default:
		return []byte("optimal"), nil
	}
}

// UnmarshalText parses an algorithm name accepted by MarshalText (the empty
// string selects the default optimal validator).
func (a *Algorithm) UnmarshalText(text []byte) error {
	switch string(text) {
	case "optimal", "":
		*a = AlgorithmOptimal
	case "exact":
		*a = AlgorithmExact
	case "iterative":
		*a = AlgorithmIterative
	default:
		return fmt.Errorf("aod: unknown algorithm %q (want optimal, exact, or iterative)", text)
	}
	return nil
}

func (a Algorithm) kind() core.ValidatorKind {
	switch a {
	case AlgorithmExact:
		return core.ValidatorExact
	case AlgorithmIterative:
		return core.ValidatorIterative
	default:
		return core.ValidatorOptimal
	}
}

// DefaultSampleSlack is the hybrid-sampling rejection margin applied when
// Options.SampleSlack is zero and SampleStride enables sampling.
const DefaultSampleSlack = core.DefaultSampleSlack

// Options configures Discover. The zero value runs the optimal validator
// with threshold 0 (equivalent to exact discovery); set Threshold to the
// tolerated exception fraction (the paper's experiments default to 0.10) to
// discover approximate dependencies.
type Options struct {
	// Threshold is the approximation threshold ε ∈ [0,1]: a dependency is
	// reported when at most ε·|rows| tuples must be removed for it to hold.
	Threshold float64 `json:"threshold,omitempty"`
	// Algorithm selects the validator (default AlgorithmOptimal). In JSON it
	// is the string "optimal", "exact", or "iterative".
	Algorithm Algorithm `json:"algorithm,omitempty"`
	// MaxLevel bounds the attribute-lattice level explored (0 = unbounded).
	MaxLevel int `json:"maxLevel,omitempty"`
	// IncludeOFDs also reports order functional dependencies (constancy
	// dependencies); OCs are always reported.
	IncludeOFDs bool `json:"includeOFDs,omitempty"`
	// CollectRemovalSets attaches minimal removal sets to each dependency.
	CollectRemovalSets bool `json:"collectRemovalSets,omitempty"`
	// TimeLimit aborts discovery after this duration with partial results
	// (Stats.TimedOut set). 0 disables. JSON: integer nanoseconds.
	TimeLimit time.Duration `json:"timeLimitNs,omitempty"`
	// Parallelism > 1 validates each lattice level's candidates across that
	// many workers (0 or 1 = sequential). Results are identical to the
	// sequential run.
	Parallelism int `json:"parallelism,omitempty"`
	// SampleStride > 1 enables hybrid-sampling pre-filtering of AOC
	// candidates (the paper's future-work direction): candidates whose
	// error estimate on every SampleStride-th tuple exceeds
	// Threshold+SampleSlack are rejected without a full validation. All
	// reported dependencies are still fully validated; the mode trades a
	// small completeness risk for validation time.
	SampleStride int `json:"sampleStride,omitempty"`
	// SampleSlack is the hybrid-sampling rejection margin
	// (0 = DefaultSampleSlack).
	SampleSlack float64 `json:"sampleSlack,omitempty"`
	// Bidirectional additionally searches mixed-direction order
	// compatibilities "A ∼ B↓" (A ascending, B descending), after the
	// bidirectional OD framework the paper builds upon.
	Bidirectional bool `json:"bidirectional,omitempty"`
	// ShardWorkQuantum sizes the worker fan-out of the sharded path: one
	// worker is engaged per this much estimated work (EstimateWork units),
	// bounded by the pool's width. 0 selects the default quantum
	// (core.DefaultShardWorkQuantum); negative always engages the full pool.
	// Only DiscoverSharded* honor it.
	ShardWorkQuantum int64 `json:"shardWorkQuantum,omitempty"`
}

func (o Options) config() core.Config {
	return core.Config{
		Threshold:          o.Threshold,
		Validator:          o.Algorithm.kind(),
		MaxLevel:           o.MaxLevel,
		IncludeOFDs:        o.IncludeOFDs,
		CollectRemovalSets: o.CollectRemovalSets,
		TimeLimit:          o.TimeLimit,
		SampleStride:       o.SampleStride,
		SampleSlack:        o.SampleSlack,
		Bidirectional:      o.Bidirectional,
	}
}

// Validate checks the options against a schema width (number of columns),
// applying exactly the checks Discover would perform before running. It lets
// services reject invalid submissions up front instead of queueing a job
// doomed to fail.
func (o Options) Validate(numAttrs int) error {
	return o.config().Validate(numAttrs)
}

// OC is a discovered (approximate) order compatibility: within each group of
// rows agreeing on Context, A and B can be sorted simultaneously after
// removing Removals rows table-wide.
//
// The JSON field names below are a stable serialization contract shared by
// the aodserver HTTP API and the aodiscover -json output.
type OC struct {
	// Context holds the context column names (possibly empty).
	Context []string `json:"context"`
	// A and B are the order-compatible columns.
	A string `json:"a"`
	B string `json:"b"`
	// Descending marks a mixed-direction OC (A ascending, B descending),
	// reported only under Options.Bidirectional.
	Descending bool `json:"descending,omitempty"`
	// Error is the approximation factor e ∈ [0,1] (0 = holds exactly).
	Error float64 `json:"error"`
	// Removals is the removal-set size behind Error.
	Removals int `json:"removals"`
	// Level is the lattice level at which the dependency was found.
	Level int `json:"level"`
	// Score is the interestingness score (higher = more interesting).
	Score float64 `json:"score"`
	// RemovalRows holds minimal-removal-set row indexes when requested.
	RemovalRows []int `json:"removalRows,omitempty"`
}

// String renders the OC in the paper's canonical notation; mixed-direction
// OCs carry a "↓" on the descending side.
func (d OC) String() string {
	mark := ""
	if d.Descending {
		mark = "↓"
	}
	return fmt.Sprintf("{%s}: %s ∼ %s%s (e=%.4f)", strings.Join(d.Context, ","), d.A, d.B, mark, d.Error)
}

// OFD is a discovered (approximate) order functional dependency: A is
// constant within each group of rows agreeing on Context, up to Removals
// exceptions.
type OFD struct {
	Context     []string `json:"context"`
	A           string   `json:"a"`
	Error       float64  `json:"error"`
	Removals    int      `json:"removals"`
	Level       int      `json:"level"`
	Score       float64  `json:"score"`
	RemovalRows []int    `json:"removalRows,omitempty"`
}

// String renders the OFD in the paper's canonical notation.
func (d OFD) String() string {
	return fmt.Sprintf("{%s}: [] ↦ %s (e=%.4f)", strings.Join(d.Context, ","), d.A, d.Error)
}

// Stats instruments a discovery run. Durations serialize to JSON as integer
// nanoseconds (Go's time.Duration encoding).
type Stats struct {
	// Rows and Attrs describe the input.
	Rows  int `json:"rows"`
	Attrs int `json:"attrs"`
	// LevelsProcessed is the number of lattice levels examined.
	LevelsProcessed int `json:"levelsProcessed"`
	// NodesProcessed counts attribute sets whose candidates were examined.
	NodesProcessed int `json:"nodesProcessed"`
	// OCCandidates and OFDCandidates count validated candidates.
	OCCandidates  int `json:"ocCandidates"`
	OFDCandidates int `json:"ofdCandidates"`
	// OCsFoundPerLevel / OFDsFoundPerLevel index discovered counts by level.
	OCsFoundPerLevel  []int `json:"ocsFoundPerLevel"`
	OFDsFoundPerLevel []int `json:"ofdsFoundPerLevel"`
	// ValidationTime is wall-clock time inside validators; PartitionTime is
	// time spent building partitions; TotalTime is end-to-end.
	ValidationTime time.Duration `json:"validationTimeNs"`
	PartitionTime  time.Duration `json:"partitionTimeNs"`
	TotalTime      time.Duration `json:"totalTimeNs"`
	// TimedOut reports a TimeLimit abort (results are partial).
	TimedOut bool `json:"timedOut,omitempty"`
	// Canceled reports a context cancellation mid-run (results are partial).
	Canceled bool `json:"canceled,omitempty"`
	// EarlyStopped reports that discovery ended before exhausting the
	// lattice because no candidates remained.
	EarlyStopped bool `json:"earlyStopped,omitempty"`
}

// ValidationShare returns ValidationTime/TotalTime — the fraction of runtime
// spent validating candidates (the paper reports up to 99.6% for the
// iterative algorithm).
func (s Stats) ValidationShare() float64 {
	if s.TotalTime <= 0 {
		return 0
	}
	return float64(s.ValidationTime) / float64(s.TotalTime)
}

// AvgOCLevel returns the mean lattice level of the discovered OCs.
func (s Stats) AvgOCLevel() float64 {
	n, sum := 0, 0
	for lvl, c := range s.OCsFoundPerLevel {
		n += c
		sum += lvl * c
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// Report is the result of a discovery run. Dependencies are ordered by
// descending interestingness score.
type Report struct {
	OCs   []OC  `json:"ocs"`
	OFDs  []OFD `json:"ofds"`
	Stats Stats `json:"stats"`
}

// Discover finds the complete set of minimal (approximate) order
// compatibilities — and, optionally, order functional dependencies — that
// hold on the dataset within the configured threshold.
func Discover(d *Dataset, opts Options) (*Report, error) {
	return DiscoverContext(context.Background(), d, opts)
}

// DiscoverContext is Discover with cooperative cancellation. The context is
// polled between candidate validations; when it is canceled mid-run the
// partial report is returned with Stats.Canceled set and a nil error, the
// same contract as a TimeLimit abort. Long-running callers (services, job
// queues) should prefer this entry point so canceled work stops consuming
// CPU promptly.
func DiscoverContext(ctx context.Context, d *Dataset, opts Options) (*Report, error) {
	return DiscoverStreamContext(ctx, d, opts, nil)
}

// Progress describes one completed lattice level of a running discovery.
// The level-wise framework produces results level by level, so each event is
// a coherent result prefix: every dependency of the completed levels, none
// of a torn mid-level state. The JSON field names are a stable contract
// shared with the aodserver streaming API.
type Progress struct {
	// Level is the lattice level that just completed; MaxLevel is the last
	// level this run can reach.
	Level    int `json:"level"`
	MaxLevel int `json:"maxLevel"`
	// Nodes is the number of attribute sets in the completed level;
	// Candidates the number of candidates validated there.
	Nodes      int `json:"nodes"`
	Candidates int `json:"candidates"`
	// OCsFound and OFDsFound count dependencies discovered so far.
	OCsFound  int `json:"ocsFound"`
	OFDsFound int `json:"ofdsFound"`
	// NodesRemaining bounds the lattice nodes not yet visited;
	// EstimatedRemaining estimates the remaining work as
	// rows × attrs × remaining levels (the job scheduler's cost currency).
	// Both can overestimate: early termination skips everything left.
	NodesRemaining     int64 `json:"nodesRemaining"`
	EstimatedRemaining int64 `json:"estimatedRemaining"`
	// LevelTime is the wall-clock time the completed level took;
	// LevelValidation and LevelPartition are the slices of it spent inside
	// validators and building partitions. JSON: integer nanoseconds.
	LevelTime       time.Duration `json:"levelTimeNs,omitempty"`
	LevelValidation time.Duration `json:"levelValidationNs,omitempty"`
	LevelPartition  time.Duration `json:"levelPartitionNs,omitempty"`
	// Final marks the run's last event.
	Final bool `json:"final,omitempty"`
}

// ProgressFunc receives, per completed lattice level, the progress event and
// the partial report of everything discovered so far. The report is a fresh
// copy — safe to retain, serve, or mutate. Called synchronously from the
// discovery run: a slow callback slows discovery, so hand off and return.
type ProgressFunc func(p Progress, partial *Report)

// DiscoverStream is Discover with streaming partial results: onLevel is
// invoked after every completed lattice level. See DiscoverStreamContext.
func DiscoverStream(d *Dataset, opts Options, onLevel ProgressFunc) (*Report, error) {
	return DiscoverStreamContext(context.Background(), d, opts, onLevel)
}

// DiscoverStreamContext runs discovery with cooperative cancellation and
// per-level progress events. A nil onLevel is allowed (and costs nothing) —
// DiscoverContext is exactly that. The last event before return has
// Progress.Final set.
func DiscoverStreamContext(ctx context.Context, d *Dataset, opts Options, onLevel ProgressFunc) (*Report, error) {
	var exec core.Executor
	if opts.Parallelism > 1 {
		exec = core.Pool(opts.Parallelism)
	}
	return discoverStreamExec(ctx, d, opts, exec, onLevel)
}

// discoverStreamExec is the shared discovery entry point under an explicit
// executor (nil = serial): the seam DiscoverStreamContext (serial/pool) and
// DiscoverShardedStreamContext (shard pool) both run through.
func discoverStreamExec(ctx context.Context, d *Dataset, opts Options, exec core.Executor, onLevel ProgressFunc) (*Report, error) {
	return discoverWarmExec(ctx, d, opts, exec, Warm{}, onLevel)
}

// discoverWarmExec additionally threads warm cross-job state (prepared
// partitions, shared arena) into the pipeline. A zero Warm is a cold run.
func discoverWarmExec(ctx context.Context, d *Dataset, opts Options, exec core.Executor, warm Warm, onLevel ProgressFunc) (*Report, error) {
	cfg := opts.config()
	pipe := core.Pipeline{Executor: exec}
	if warm.Prepared != nil {
		pipe.Prepared = warm.Prepared.prep
	}
	if warm.Arena != nil {
		pipe.Arena = warm.Arena.a
	}
	names := d.ColumnNames()
	if onLevel != nil {
		pipe.Sink = func(s core.Snapshot) {
			// Snapshot slices are copies, so the partial result can be
			// sorted and converted like a final one.
			partial := &core.Result{OCs: s.OCs, OFDs: s.OFDs, Stats: s.Stats}
			onLevel(Progress{
				Level:              s.Level,
				MaxLevel:           s.MaxLevel,
				Nodes:              s.Nodes,
				Candidates:         s.Candidates,
				OCsFound:           s.Stats.OCsFound(),
				OFDsFound:          s.Stats.OFDsFound(),
				NodesRemaining:     s.NodesRemaining,
				EstimatedRemaining: s.EstimatedRemaining,
				LevelTime:          s.LevelTime,
				LevelValidation:    s.LevelValidation,
				LevelPartition:     s.LevelPartition,
				Final:              s.Final,
			}, buildReport(names, partial))
		}
	}
	res, err := pipe.Run(ctx, d.table(), cfg)
	if err != nil {
		return nil, err
	}
	return buildReport(names, res), nil
}

// EstimateWork is the coarse cost estimate a scheduler can order discovery
// jobs by before any of them has run: rows × cols × explored levels (the
// whole lattice, or the MaxLevel bound). A running job refines it through
// Progress.EstimatedRemaining. A priority, not a prediction — see the
// scheduling notes in the README.
func EstimateWork(rows, cols, maxLevel int) int64 {
	levels := cols
	if maxLevel > 0 && maxLevel < cols {
		levels = maxLevel
	}
	return core.EstimateCost(rows, cols, levels)
}

// buildReport sorts the result by interestingness and converts it to the
// public, name-resolved Report form.
func buildReport(names []string, res *core.Result) *Report {
	res.SortByScore()
	rep := &Report{
		Stats: Stats{
			Rows:              res.Stats.Rows,
			Attrs:             res.Stats.Attrs,
			LevelsProcessed:   res.Stats.LevelsProcessed,
			NodesProcessed:    res.Stats.NodesProcessed,
			OCCandidates:      res.Stats.OCCandidates,
			OFDCandidates:     res.Stats.OFDCandidates,
			OCsFoundPerLevel:  res.Stats.OCsFoundPerLevel,
			OFDsFoundPerLevel: res.Stats.OFDsFoundPerLevel,
			ValidationTime:    res.Stats.ValidationTime,
			PartitionTime:     res.Stats.PartitionTime,
			TotalTime:         res.Stats.TotalTime,
			TimedOut:          res.Stats.TimedOut,
			Canceled:          res.Stats.Canceled,
			EarlyStopped:      res.Stats.EarlyStopped,
		},
	}
	for _, oc := range res.OCs {
		// Named ctxNames, not ctx: context.Context is often in scope here.
		var ctxNames []string
		oc.Context.ForEach(func(a int) { ctxNames = append(ctxNames, names[a]) })
		rep.OCs = append(rep.OCs, OC{
			Context:     ctxNames,
			A:           names[oc.A],
			B:           names[oc.B],
			Descending:  oc.Descending,
			Error:       oc.Error,
			Removals:    oc.Removals,
			Level:       oc.Level,
			Score:       oc.Score,
			RemovalRows: toInts(oc.RemovalRows),
		})
	}
	for _, ofd := range res.OFDs {
		var ctxNames []string
		ofd.Context.ForEach(func(a int) { ctxNames = append(ctxNames, names[a]) })
		rep.OFDs = append(rep.OFDs, OFD{
			Context:     ctxNames,
			A:           names[ofd.A],
			Error:       ofd.Error,
			Removals:    ofd.Removals,
			Level:       ofd.Level,
			Score:       ofd.Score,
			RemovalRows: toInts(ofd.RemovalRows),
		})
	}
	return rep
}

func toInts(rows []int32) []int {
	if rows == nil {
		return nil
	}
	out := make([]int, len(rows))
	for i, r := range rows {
		out[i] = int(r)
	}
	return out
}
