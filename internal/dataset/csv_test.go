package dataset

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

const sampleCSV = `pos,exp,sal,perc
sec,1,20000,10.5
sec,3,25000,10.0
dev,1,30000,1.0
`

func TestReadCSVTypeInference(t *testing.T) {
	tbl, err := ReadCSV(strings.NewReader(sampleCSV), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 3 || tbl.NumCols() != 4 {
		t.Fatalf("got %d rows × %d cols", tbl.NumRows(), tbl.NumCols())
	}
	wantKinds := map[string]Kind{"pos": KindString, "exp": KindInt, "sal": KindInt, "perc": KindFloat}
	for name, k := range wantKinds {
		i := tbl.ColumnIndex(name)
		if i < 0 {
			t.Fatalf("missing column %s", name)
		}
		if tbl.Column(i).Kind() != k {
			t.Errorf("column %s kind = %v, want %v", name, tbl.Column(i).Kind(), k)
		}
	}
}

func TestReadCSVMaxRowsAndColumns(t *testing.T) {
	tbl, err := ReadCSV(strings.NewReader(sampleCSV), CSVOptions{MaxRows: 2, Columns: []string{"sal", "pos"}})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 2 {
		t.Errorf("NumRows = %d, want 2", tbl.NumRows())
	}
	if tbl.NumCols() != 2 {
		t.Errorf("NumCols = %d, want 2", tbl.NumCols())
	}
	if tbl.ColumnIndex("exp") != -1 {
		t.Error("column exp should have been dropped")
	}
}

func TestReadCSVNoHeader(t *testing.T) {
	tbl, err := ReadCSV(strings.NewReader("1,x\n2,y\n"), CSVOptions{NoHeader: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.ColumnNames(); !reflect.DeepEqual(got, []string{"col0", "col1"}) {
		t.Errorf("names = %v", got)
	}
	if tbl.NumRows() != 2 {
		t.Errorf("NumRows = %d", tbl.NumRows())
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), CSVOptions{}); err == nil {
		t.Error("want error for empty input")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n"), CSVOptions{}); err == nil {
		t.Error("want error for header-only input")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n1,2\n3\n"), CSVOptions{}); err == nil {
		t.Error("want error for ragged rows")
	}
	if _, err := ReadCSV(strings.NewReader(sampleCSV), CSVOptions{Columns: []string{"nope"}}); err == nil {
		t.Error("want error when no requested column exists")
	}
}

func TestReadCSVEmptyFieldFallsBackToString(t *testing.T) {
	tbl, err := ReadCSV(strings.NewReader("a,b\n1,x\n,y\n3,z\n"), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Column(0).Kind() != KindString {
		t.Errorf("kind = %v, want string for column with empty field", tbl.Column(0).Kind())
	}
}

func TestReadCSVForcedTypes(t *testing.T) {
	const src = "f,code\n1,01\n2,2\n"
	tbl, err := ReadCSV(strings.NewReader(src), CSVOptions{Types: []string{"float", "string"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.ColumnTypes(); got[0] != "float" || got[1] != "string" {
		t.Errorf("forced types ignored: %v", got)
	}
	// A value that does not parse as the forced type is an error, not a
	// silent fallback.
	if _, err := ReadCSV(strings.NewReader("n\nx\n"), CSVOptions{Types: []string{"int"}}); err == nil {
		t.Error("want error forcing int on non-numeric data")
	}
	// Wrong arity is an error.
	if _, err := ReadCSV(strings.NewReader(src), CSVOptions{Types: []string{"int"}}); err == nil {
		t.Error("want error for too few types")
	}
	if _, err := ReadCSV(strings.NewReader(src), CSVOptions{Types: []string{"int", "int", "int"}}); err == nil {
		t.Error("want error for too many types")
	}
	// A non-nil but empty Types slice means infer, same as nil.
	tbl, err = ReadCSV(strings.NewReader(src), CSVOptions{Types: []string{}})
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.ColumnTypes(); got[0] != "int" || got[1] != "int" {
		t.Errorf("empty Types should infer, got %v", got)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	orig, err := ReadCSV(strings.NewReader(sampleCSV), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != orig.NumRows() || back.NumCols() != orig.NumCols() {
		t.Fatalf("round trip shape mismatch")
	}
	for c := 0; c < orig.NumCols(); c++ {
		if !reflect.DeepEqual(back.Column(c).Ranks(), orig.Column(c).Ranks()) {
			t.Errorf("column %s ranks changed across round trip", orig.Column(c).Name())
		}
	}
}

func TestCSVFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	orig, err := ReadCSV(strings.NewReader(sampleCSV), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteCSVFile(path, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSVFile(path, CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != orig.NumRows() {
		t.Errorf("rows = %d, want %d", back.NumRows(), orig.NumRows())
	}
	if _, err := ReadCSVFile(filepath.Join(dir, "missing.csv"), CSVOptions{}); err == nil {
		t.Error("want error for missing file")
	}
}

func TestReadCSVCustomComma(t *testing.T) {
	tbl, err := ReadCSV(strings.NewReader("a;b\n1;2\n"), CSVOptions{Comma: ';'})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumCols() != 2 {
		t.Errorf("NumCols = %d, want 2", tbl.NumCols())
	}
}
