package shard

import (
	"context"
	"fmt"
	"net"
	"strconv"
	"strings"
)

// NewLoopback returns a Cluster whose workers run in-process, connected via
// net.Pipe: the full wire protocol (framing, handshake, dataset shipping,
// failure handling) is exercised without sockets. It backs the executor
// equivalence tests, the worker-death tests, and the aodbench `sharded`
// workload that tracks protocol overhead against the in-memory pool.
func NewLoopback(cfg Config, workers []*Worker) *Cluster {
	addrs := make([]string, len(workers))
	for i := range workers {
		addrs[i] = fmt.Sprintf("loopback/%d", i)
	}
	c := New(addrs, cfg)
	c.dial = func(ctx context.Context, addr string) (net.Conn, error) {
		i, err := strconv.Atoi(strings.TrimPrefix(addr, "loopback/"))
		if err != nil || i < 0 || i >= len(workers) {
			return nil, fmt.Errorf("shard: bad loopback address %q", addr)
		}
		client, server := net.Pipe()
		go workers[i].ServeConn(server)
		return client, nil
	}
	return c
}

// Loopback is NewLoopback over n default workers.
func Loopback(n int) *Cluster {
	workers := make([]*Worker, n)
	for i := range workers {
		workers[i] = NewWorker(WorkerOptions{})
	}
	return NewLoopback(Config{}, workers)
}
