package service

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"aod"
)

// smallDataset is the paper's 9-row employee table — fast to validate.
func smallDataset(t *testing.T) *aod.Dataset {
	t.Helper()
	ds, err := aod.NewBuilder().
		AddStrings("pos", []string{"secr", "secr", "secr", "mngr", "mngr", "mngr", "direc", "direc", "direc"}).
		AddInts("exp", []int64{2, 3, 4, 4, 5, 6, 6, 7, 8}).
		AddInts("sal", []int64{45, 50, 55, 70, 75, 80, 100, 110, 120}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// slowDataset is random data wide and tall enough that discovery with the
// iterative validator runs for seconds — long enough to cancel mid-run.
func slowDataset(t *testing.T, rows, cols int) *aod.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	b := aod.NewBuilder()
	for c := 0; c < cols; c++ {
		vals := make([]int64, rows)
		for i := range vals {
			vals[i] = int64(rng.Intn(rows))
		}
		b.AddInts(fmt.Sprintf("c%d", c), vals)
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// slowOptions makes every OC validation quadratic-ish on random data.
func slowOptions() aod.Options {
	return aod.Options{Threshold: 0.4, Algorithm: aod.AlgorithmIterative, IncludeOFDs: true}
}

func waitState(t *testing.T, s *Service, id string, want JobState) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		v, err := s.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if v.State == want {
			return v
		}
		if v.State.Terminal() {
			t.Fatalf("job %s reached %s (error %q), want %s", id, v.State, v.Error, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached state %s", id, want)
	return JobView{}
}

// TestConcurrentIdenticalSubmissions is the single-flight stress test: N
// goroutines submit the same (dataset, options) pair; exactly one validation
// run must happen and the other N−1 jobs must be cache hits.
func TestConcurrentIdenticalSubmissions(t *testing.T) {
	s := New(Config{Workers: 4, QueueDepth: 64})
	defer s.Close()
	info, _, err := s.Registry().Add("employees", smallDataset(t))
	if err != nil {
		t.Fatal(err)
	}

	const n = 24
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			opts := aod.Options{Threshold: 0.12, IncludeOFDs: true}
			if i%2 == 1 {
				// Result-neutral parallelism must canonicalize to the same
				// key. (TimeLimit also canonicalizes away for the cache, but
				// time-limited jobs bypass in-flight sharing, so it is not
				// used here.)
				opts.Parallelism = 2
			}
			v, err := s.Submit(info.ID, opts)
			if err != nil {
				t.Error(err)
				return
			}
			ids[i] = v.ID
		}(i)
	}
	wg.Wait()

	hits := 0
	for _, id := range ids {
		v := waitState(t, s, id, JobDone)
		if v.Report == nil {
			t.Fatalf("done job %s has no report", id)
		}
		if len(v.Report.OCs) == 0 {
			t.Fatalf("job %s found no OCs on the employee table", id)
		}
		if v.CacheHit {
			hits++
		}
	}
	if hits != n-1 {
		t.Errorf("cache-hit jobs = %d, want %d", hits, n-1)
	}
	st := s.Stats()
	if st.ValidationRuns != 1 {
		t.Errorf("validation runs = %d, want exactly 1", st.ValidationRuns)
	}
	if st.CacheHits != n-1 {
		t.Errorf("stats cache hits = %d, want %d", st.CacheHits, n-1)
	}
	if st.CacheMisses != 1 {
		t.Errorf("stats cache misses = %d, want 1", st.CacheMisses)
	}
	if st.JobsDone != n {
		t.Errorf("jobs done = %d, want %d", st.JobsDone, n)
	}
}

// TestCancelMidRun cancels a running job and verifies it reaches the
// canceled state and frees its worker for new work.
func TestCancelMidRun(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8})
	defer s.Close()
	slow, _, err := s.Registry().Add("slow", slowDataset(t, 6000, 7))
	if err != nil {
		t.Fatal(err)
	}
	small, _, err := s.Registry().Add("small", smallDataset(t))
	if err != nil {
		t.Fatal(err)
	}

	v, err := s.Submit(slow.ID, slowOptions())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, v.ID, JobRunning)
	if _, err := s.Cancel(v.ID); err != nil {
		t.Fatal(err)
	}
	got := waitState(t, s, v.ID, JobCanceled)
	if got.FinishedAt == nil {
		t.Error("canceled job has no finish time")
	}

	// The single worker must be free again: a small job completes.
	v2, err := s.Submit(small.ID, aod.Options{Threshold: 0.12})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, v2.ID, JobDone)
	st := s.Stats()
	if st.JobsCanceled != 1 {
		t.Errorf("jobs canceled = %d, want 1", st.JobsCanceled)
	}
	if st.JobsInFlight != 0 {
		t.Errorf("jobs in flight = %d, want 0", st.JobsInFlight)
	}

	// Canceling a finished job is a conflict.
	if _, err := s.Cancel(v2.ID); err != ErrJobFinished {
		t.Errorf("cancel finished job: err = %v, want ErrJobFinished", err)
	}
}

// TestWaitersReleaseWorkers: a job identical to an in-flight run parks on
// the flight instead of blocking its worker, so unrelated jobs keep flowing
// through the pool; canceling the leader requeues the waiter for a fresh
// attempt.
func TestWaitersReleaseWorkers(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 8})
	defer s.Close()
	slow, _, err := s.Registry().Add("slow", slowDataset(t, 6000, 7))
	if err != nil {
		t.Fatal(err)
	}
	small, _, err := s.Registry().Add("small", smallDataset(t))
	if err != nil {
		t.Fatal(err)
	}

	leader, err := s.Submit(slow.ID, slowOptions())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, leader.ID, JobRunning)
	waiter, err := s.Submit(slow.ID, slowOptions()) // identical: will park
	if err != nil {
		t.Fatal(err)
	}
	// Both workers have been claimed (leader + waiter pickup), but the
	// waiter must hand its worker back: this small job can only complete
	// if it does.
	quick, err := s.Submit(small.ID, aod.Options{Threshold: 0.12})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, quick.ID, JobDone)
	if v, err := s.Job(leader.ID); err != nil || v.State != JobRunning {
		t.Fatalf("leader state = %v (err %v), want still running", v.State, err)
	}

	// Canceling the leader requeues the waiter, which re-leads; cancel it
	// too and check both settle as canceled.
	if _, err := s.Cancel(leader.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, s, leader.ID, JobCanceled)
	if _, err := s.Cancel(waiter.ID); err != nil && err != ErrJobFinished {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		v, err := s.Job(waiter.ID)
		if err != nil {
			t.Fatal(err)
		}
		if v.State.Terminal() {
			if v.State != JobCanceled {
				t.Fatalf("waiter settled as %s, want canceled", v.State)
			}
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("waiter never settled after leader cancel")
}

// TestQueueSaturation verifies Submit's backpressure: with one busy worker
// and a full queue, further submissions fail fast with ErrQueueFull.
func TestQueueSaturation(t *testing.T) {
	const depth = 3
	s := New(Config{Workers: 1, QueueDepth: depth})
	defer s.Close()
	slow, _, err := s.Registry().Add("slow", slowDataset(t, 6000, 7))
	if err != nil {
		t.Fatal(err)
	}

	// Occupy the only worker...
	busy, err := s.Submit(slow.ID, slowOptions())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, busy.ID, JobRunning)
	// ...fill the queue (distinct thresholds → distinct keys, no flights)...
	for i := 0; i < depth; i++ {
		if _, err := s.Submit(slow.ID, aod.Options{Threshold: 0.01 * float64(i+1)}); err != nil {
			t.Fatalf("queue fill %d: %v", i, err)
		}
	}
	// ...and overflow it.
	if _, err := s.Submit(slow.ID, aod.Options{Threshold: 0.9}); err != ErrQueueFull {
		t.Fatalf("overflow submit: err = %v, want ErrQueueFull", err)
	}
	st := s.Stats()
	if st.JobsQueued != depth {
		t.Errorf("jobs queued = %d, want %d", st.JobsQueued, depth)
	}
}

// TestCancelRelievesBackpressure: canceling queued jobs frees their queue
// slots immediately, without waiting for a worker to drain them.
func TestCancelRelievesBackpressure(t *testing.T) {
	const depth = 2
	s := New(Config{Workers: 1, QueueDepth: depth})
	defer s.Close()
	slow, _, err := s.Registry().Add("slow", slowDataset(t, 6000, 7))
	if err != nil {
		t.Fatal(err)
	}
	busy, err := s.Submit(slow.ID, slowOptions())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, busy.ID, JobRunning)
	var queued []string
	for i := 0; i < depth; i++ {
		v, err := s.Submit(slow.ID, aod.Options{Threshold: 0.01 * float64(i+1)})
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, v.ID)
	}
	if _, err := s.Submit(slow.ID, aod.Options{Threshold: 0.9}); err != ErrQueueFull {
		t.Fatalf("overflow submit: err = %v, want ErrQueueFull", err)
	}
	// Canceling a queued job must relieve the backpressure at once — the
	// single worker is still stuck on the busy job.
	if _, err := s.Cancel(queued[0]); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.JobsQueued != depth-1 {
		t.Errorf("jobs queued after cancel = %d, want %d", st.JobsQueued, depth-1)
	}
	if _, err := s.Submit(slow.ID, aod.Options{Threshold: 0.91}); err != nil {
		t.Errorf("submit after cancel freed a slot: %v", err)
	}
	if _, err := s.Cancel(busy.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, s, busy.ID, JobCanceled)
}

// TestUnboundedQueue: a negative QueueDepth disables backpressure entirely.
func TestUnboundedQueue(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: -1})
	defer s.Close()
	slow, _, err := s.Registry().Add("slow", slowDataset(t, 6000, 7))
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 80; i++ { // far beyond the default depth of 64
		v, err := s.Submit(slow.ID, aod.Options{Threshold: 0.001 * float64(i+1)})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, v.ID)
	}
	for _, id := range ids {
		if _, err := s.Cancel(id); err != nil && err != ErrJobFinished {
			t.Fatal(err)
		}
	}
}

// TestCancelQueuedJob verifies a queued job is finalized without ever
// occupying a worker.
func TestCancelQueuedJob(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8})
	defer s.Close()
	slow, _, err := s.Registry().Add("slow", slowDataset(t, 6000, 7))
	if err != nil {
		t.Fatal(err)
	}
	busy, err := s.Submit(slow.ID, slowOptions())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, busy.ID, JobRunning)
	queued, err := s.Submit(slow.ID, aod.Options{Threshold: 0.33})
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.Cancel(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != JobCanceled {
		t.Fatalf("queued job state after cancel = %s, want canceled", v.State)
	}
	if _, err := s.Cancel(busy.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, s, busy.ID, JobCanceled)
}

// TestJobHistoryBound verifies the oldest terminal jobs are evicted once
// the retention bound is exceeded, while live jobs survive.
func TestJobHistoryBound(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8, MaxJobHistory: 2})
	defer s.Close()
	info, _, err := s.Registry().Add("employees", smallDataset(t))
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 4; i++ {
		// Distinct thresholds so each job is a distinct validation.
		v, err := s.Submit(info.ID, aod.Options{Threshold: 0.01 * float64(i+1)})
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, s, v.ID, JobDone)
		ids = append(ids, v.ID)
	}
	// One more submission triggers pruning of the oldest finished records.
	v, err := s.Submit(info.ID, aod.Options{Threshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, v.ID, JobDone)
	if got := len(s.Jobs()); got > 3 {
		t.Errorf("job history length = %d, want <= 3 (bound 2 + 1 just submitted)", got)
	}
	if _, err := s.Job(ids[0]); err == nil {
		t.Error("oldest job should have been evicted")
	}
	if _, err := s.Job(v.ID); err != nil {
		t.Errorf("newest job must survive pruning: %v", err)
	}
}

func TestSubmitUnknownDataset(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	if _, err := s.Submit("nope", aod.Options{}); err == nil {
		t.Fatal("submit against unknown dataset id should fail")
	}
}

// TestSubmitValidatesOptions: invalid configurations are rejected before a
// job (and cache key) ever exists, and client parallelism is clamped to the
// host so one request cannot spawn unbounded goroutines.
func TestSubmitValidatesOptions(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	info, _, err := s.Registry().Add("employees", smallDataset(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(info.ID, aod.Options{Threshold: 9}); !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("threshold 9: err = %v, want ErrInvalidOptions", err)
	}
	if _, err := s.Submit(info.ID, aod.Options{MaxLevel: -1}); !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("negative MaxLevel: err = %v, want ErrInvalidOptions", err)
	}
	v, err := s.Submit(info.ID, aod.Options{Threshold: 0.1, Parallelism: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if max := runtime.GOMAXPROCS(0); v.Options.Parallelism > max {
		t.Errorf("parallelism %d not clamped to GOMAXPROCS %d", v.Options.Parallelism, max)
	}
	waitState(t, s, v.ID, JobDone)
	st := s.Stats()
	if st.JobsFailed != 0 {
		t.Errorf("jobs failed = %d, want 0", st.JobsFailed)
	}
}

func TestRegistryDeduplicatesByFingerprint(t *testing.T) {
	r := NewRegistry(0, nil)
	a, createdA, err := r.Add("first", smallDataset(t))
	if err != nil {
		t.Fatal(err)
	}
	b, createdB, err := r.Add("second", smallDataset(t))
	if err != nil {
		t.Fatal(err)
	}
	if !createdA || createdB {
		t.Errorf("created flags = %v, %v; want true, false", createdA, createdB)
	}
	if a.ID != b.ID || a.Fingerprint != b.Fingerprint {
		t.Errorf("identical content got distinct records: %+v vs %+v", a, b)
	}
	if r.Len() != 1 {
		t.Errorf("registry size = %d, want 1 after dedup", r.Len())
	}
}

func TestRegistryBound(t *testing.T) {
	r := NewRegistry(1, nil)
	if _, _, err := r.Add("a", smallDataset(t)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Add("b", slowDataset(t, 50, 2)); err != ErrRegistryFull {
		t.Fatalf("err = %v, want ErrRegistryFull", err)
	}
}

func TestCanonicalOptionsKey(t *testing.T) {
	fp := "abc"
	base := aod.Options{Threshold: 0.1}
	same := []aod.Options{
		{Threshold: 0.1, Parallelism: 8},
		{Threshold: 0.1, TimeLimit: time.Hour},
		{Threshold: 0.1, SampleSlack: 0.2}, // inert without a stride
	}
	for i, o := range same {
		if cacheKey(fp, o) != cacheKey(fp, base) {
			t.Errorf("variant %d: key %q != base %q", i, cacheKey(fp, o), cacheKey(fp, base))
		}
	}
	diff := []aod.Options{
		{Threshold: 0.2},
		{Threshold: 0.1, Algorithm: aod.AlgorithmIterative},
		{Threshold: 0.1, IncludeOFDs: true},
		{Threshold: 0.1, MaxLevel: 2},
		{Threshold: 0.1, Bidirectional: true},
		{Threshold: 0.1, SampleStride: 4},
	}
	for i, o := range diff {
		if cacheKey(fp, o) == cacheKey(fp, base) {
			t.Errorf("variant %d unexpectedly shares the base key", i)
		}
	}
	// Exact discovery ignores the threshold entirely.
	if cacheKey(fp, aod.Options{Algorithm: aod.AlgorithmExact, Threshold: 0.3}) !=
		cacheKey(fp, aod.Options{Algorithm: aod.AlgorithmExact}) {
		t.Error("exact-validator thresholds should canonicalize away")
	}
	// The default sampling slack is pinned explicitly.
	if cacheKey(fp, aod.Options{SampleStride: 4}) !=
		cacheKey(fp, aod.Options{SampleStride: 4, SampleSlack: 0.05}) {
		t.Error("default sample slack should canonicalize to 0.05")
	}
}

func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2, nil)
	r1, r2, r3 := &aod.Report{}, &aod.Report{}, &aod.Report{}
	c.put("a", r1)
	c.put("b", r2)
	if _, ok := c.get("a"); !ok { // refresh a; b becomes LRU
		t.Fatal("a should be cached")
	}
	c.put("c", r3)
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted as least recently used")
	}
	if got, ok := c.get("a"); !ok || got != r1 {
		t.Error("a should have survived the eviction")
	}
	if got, ok := c.get("c"); !ok || got != r3 {
		t.Error("c should be cached")
	}
	size, capacity, evictions := c.stats()
	if size != 2 || capacity != 2 || evictions != 1 {
		t.Errorf("stats = (%d, %d, %d), want (2, 2, 1)", size, capacity, evictions)
	}
}

func TestCloseCancelsRunningJobs(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8})
	slow, _, err := s.Registry().Add("slow", slowDataset(t, 6000, 7))
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.Submit(slow.ID, slowOptions())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, v.ID, JobRunning)
	done := make(chan struct{})
	go func() { s.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Close did not drain the running job")
	}
	if _, err := s.Submit(slow.ID, aod.Options{}); err != ErrClosed {
		t.Errorf("submit after close: err = %v, want ErrClosed", err)
	}
}
