package lattice

import "math/bits"

// PairIndex maps an unordered attribute pair {a,b} (a ≠ b) over a schema of
// numAttrs attributes to a dense triangular index in
// [0, numAttrs·(numAttrs−1)/2).
func PairIndex(a, b, numAttrs int) int {
	if a > b {
		a, b = b, a
	}
	// Row a of the strictly-upper-triangular matrix starts after
	// a*numAttrs - a(a+1)/2 cells.
	return a*numAttrs - a*(a+1)/2 + (b - a - 1)
}

// NumPairs returns the number of unordered attribute pairs for a schema.
func NumPairs(numAttrs int) int { return numAttrs * (numAttrs - 1) / 2 }

// PairSet is a bitset over unordered attribute pairs of a fixed schema width.
type PairSet struct {
	bits     []uint64
	numAttrs int
}

// NewPairSet returns an empty pair set for a schema of numAttrs attributes.
func NewPairSet(numAttrs int) *PairSet {
	n := NumPairs(numAttrs)
	return &PairSet{bits: make([]uint64, (n+63)/64), numAttrs: numAttrs}
}

// Clone returns a deep copy.
func (p *PairSet) Clone() *PairSet {
	out := &PairSet{bits: make([]uint64, len(p.bits)), numAttrs: p.numAttrs}
	copy(out.bits, p.bits)
	return out
}

// Add inserts the pair {a,b}.
func (p *PairSet) Add(a, b int) {
	i := PairIndex(a, b, p.numAttrs)
	p.bits[i>>6] |= 1 << uint(i&63)
}

// Remove deletes the pair {a,b}.
func (p *PairSet) Remove(a, b int) {
	i := PairIndex(a, b, p.numAttrs)
	p.bits[i>>6] &^= 1 << uint(i&63)
}

// Has reports whether the pair {a,b} is present.
func (p *PairSet) Has(a, b int) bool {
	i := PairIndex(a, b, p.numAttrs)
	return p.bits[i>>6]&(1<<uint(i&63)) != 0
}

// UnionWith adds every pair of q to p.
func (p *PairSet) UnionWith(q *PairSet) {
	for i := range p.bits {
		p.bits[i] |= q.bits[i]
	}
}

// Words exposes the underlying bit words (triangular pair indexes packed 64
// per word). The slice is shared, not copied: it is the zero-cost
// serialization surface for shipping validity state to remote shard workers,
// and callers must treat it as read-only unless they own the set.
func (p *PairSet) Words() []uint64 { return p.bits }

// PairSetOf wraps existing bit words as a PairSet without copying. Words
// shorter than the schema requires are padded (copied) so Add stays in
// bounds; the common full-length case shares the slice.
func PairSetOf(numAttrs int, words []uint64) *PairSet {
	need := (NumPairs(numAttrs) + 63) / 64
	if len(words) < need {
		padded := make([]uint64, need)
		copy(padded, words)
		words = padded
	}
	return &PairSet{bits: words, numAttrs: numAttrs}
}

// PairHas reports whether the pair {a,b} is present in raw pair-set words
// (see Words), without constructing a PairSet. Words beyond the slice are
// treated as zero, so truncated (omitempty-serialized) word slices read
// correctly.
func PairHas(words []uint64, a, b, numAttrs int) bool {
	i := PairIndex(a, b, numAttrs)
	return i>>6 < len(words) && words[i>>6]&(1<<uint(i&63)) != 0
}

// Count returns the number of pairs present.
func (p *PairSet) Count() int {
	c := 0
	for _, w := range p.bits {
		c += bits.OnesCount64(w)
	}
	return c
}

// IsEmpty reports whether no pair is present.
func (p *PairSet) IsEmpty() bool {
	for _, w := range p.bits {
		if w != 0 {
			return false
		}
	}
	return true
}

// ForEach calls fn(a, b) with a < b for every pair present, in index order.
func (p *PairSet) ForEach(fn func(a, b int)) {
	// Reconstruct (a, b) from the triangular index by walking rows.
	for w := range p.bits {
		word := p.bits[w]
		for word != 0 {
			bit := bits.TrailingZeros64(word)
			word &= word - 1
			idx := w<<6 + bit
			a, b := pairFromIndex(idx, p.numAttrs)
			fn(a, b)
		}
	}
}

func pairFromIndex(idx, numAttrs int) (int, int) {
	a := 0
	for {
		rowLen := numAttrs - a - 1
		if idx < rowLen {
			return a, a + 1 + idx
		}
		idx -= rowLen
		a++
	}
}
