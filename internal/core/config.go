// Package core implements the paper's discovery framework (Fig. 1 / Sec. 3.1):
// level-wise traversal of the set-based attribute lattice, generation of
// canonical AOC and AOFD candidates, axiom-based pruning, validation through
// a pluggable validator (exact, optimal LNDS-based, or the legacy iterative
// greedy), and interestingness scoring of the verified dependencies.
//
// The engine discovers the complete set of minimal dependencies under the
// semantics pinned in DESIGN.md:
//
//   - AOFD X: [] ↦ A is reported iff e ≤ ε and no Y ⊂ X has a valid AOFD
//     Y: [] ↦ A;
//   - AOC X: A ∼ B is reported iff e ≤ ε, no Y ⊂ X has a valid AOC
//     Y: A ∼ B, and no Y ⊆ X has a valid AOFD Y: [] ↦ A or Y: [] ↦ B
//     (a constant side trivializes order compatibility).
//
// With the iterative validator the engine reproduces the legacy system's
// behaviour instead: overestimated approximation factors can both miss AOCs
// and surface non-minimal ones (Exp-4 of the paper).
package core

import (
	"errors"
	"fmt"
	"time"
)

// ValidatorKind selects the OC/OFD validation algorithm used by Discover.
type ValidatorKind int

const (
	// ValidatorExact discovers exact ODs (ε is treated as 0) using the
	// linear exact checks; this is the "OD" configuration of the paper's
	// experiments (FASTOD).
	ValidatorExact ValidatorKind = iota
	// ValidatorOptimal discovers AODs with the paper's LNDS-based optimal
	// validator (Algorithm 2); the "AOD (optimal)" configuration.
	ValidatorOptimal
	// ValidatorIterative discovers AODs with the legacy greedy validator
	// (Algorithm 1); the "AOD (iterative)" configuration.
	ValidatorIterative
)

// String names the validator kind as in the paper's figures.
func (k ValidatorKind) String() string {
	switch k {
	case ValidatorExact:
		return "OD"
	case ValidatorOptimal:
		return "AOD (optimal)"
	case ValidatorIterative:
		return "AOD (iterative)"
	default:
		return fmt.Sprintf("ValidatorKind(%d)", int(k))
	}
}

// Config controls a discovery run.
type Config struct {
	// Threshold is the approximation threshold ε ∈ [0,1]. Ignored (treated
	// as 0) when Validator is ValidatorExact.
	Threshold float64
	// Validator selects the validation algorithm.
	Validator ValidatorKind
	// MaxLevel bounds the lattice level (attribute-set size) explored;
	// 0 means no bound (up to the number of attributes).
	MaxLevel int
	// IncludeOFDs requests that minimal approximate OFDs be reported in
	// addition to AOCs. Candidate OFD validation always runs (it drives
	// pruning); this flag only controls reporting.
	IncludeOFDs bool
	// CollectRemovalSets re-validates each verified dependency to attach the
	// removal-set row ids (useful for error repair / outlier detection).
	CollectRemovalSets bool
	// TimeLimit aborts discovery after the given wall-clock duration,
	// returning partial results with Stats.TimedOut set. 0 disables.
	TimeLimit time.Duration
	// KeepPartitions disables the default release of stripped partitions
	// two levels behind the frontier (mainly for debugging/tests).
	KeepPartitions bool
	// SampleStride > 1 enables hybrid-sampling pre-filtering of AOC
	// candidates (the paper's future-work direction after [6]): a candidate
	// is first estimated on every SampleStride-th tuple of each class and
	// rejected without full validation when the estimate exceeds
	// Threshold + SampleSlack. Accepted candidates are always re-validated
	// in full, so every reported dependency remains truly valid and minimal;
	// the mode trades a small completeness risk (a candidate whose sample
	// wildly overestimates its error is lost) for validation time. Ignored
	// by the exact validator.
	SampleStride int
	// SampleSlack is the rejection margin for hybrid sampling; 0 means
	// DefaultSampleSlack.
	SampleSlack float64
	// DisablePruning is an ablation switch: every candidate is validated
	// even when minimality/constancy pruning could skip it (reported
	// dependencies are still filtered to the minimal set). Used to measure
	// the pruning benefit the paper's Exp-5 relies on.
	DisablePruning bool
	// UseSortedScan switches exact-OC validation to the sorted-partition
	// linear scan of the set-based framework [9] (per-attribute global
	// orders precomputed once, O(|r|) per candidate) instead of the
	// per-class sort. Only affects ValidatorExact; results are identical.
	// Ignored by DiscoverParallel (the lazy order cache is not shared
	// across workers).
	UseSortedScan bool
	// Bidirectional additionally searches mixed-direction order
	// compatibilities X: A ∼ B↓ (A ascending, B descending), after the
	// bidirectional framework of Szlichta et al. (VLDBJ 2018, reference
	// [10]) that the reproduced paper builds upon. Each unordered pair
	// yields two candidates; A↓ ∼ B↑ is equivalent to A↑ ∼ B↓ and is not
	// searched separately.
	Bidirectional bool
}

// DefaultSampleSlack is the hybrid-sampling rejection margin applied when
// Config.SampleSlack is zero.
const DefaultSampleSlack = 0.05

// Validate checks the configuration against a schema width.
func (c Config) Validate(numAttrs int) error {
	if numAttrs < 1 {
		return errors.New("core: table must have at least one attribute")
	}
	if numAttrs > 64 {
		return fmt.Errorf("core: at most 64 attributes supported, got %d", numAttrs)
	}
	if c.Threshold < 0 || c.Threshold > 1 {
		return fmt.Errorf("core: threshold must be in [0,1], got %g", c.Threshold)
	}
	switch c.Validator {
	case ValidatorExact, ValidatorOptimal, ValidatorIterative:
	default:
		return fmt.Errorf("core: unknown validator kind %d", int(c.Validator))
	}
	if c.MaxLevel < 0 {
		return fmt.Errorf("core: MaxLevel must be >= 0, got %d", c.MaxLevel)
	}
	return nil
}

// effectiveThreshold returns ε with the exact-validator override applied.
func (c Config) effectiveThreshold() float64 {
	if c.Validator == ValidatorExact {
		return 0
	}
	return c.Threshold
}
