package load

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync/atomic"
	"time"

	"aod"
)

// Client is a thin aodserver API client tuned for many concurrent in-flight
// requests: connections are pooled per host well past net/http's default of
// two, since an open-loop run at rate R holds O(R × latency) streams open.
type Client struct {
	base string
	hc   *http.Client

	viaRouter atomic.Bool // set when responses carry the X-AOD-Router header
}

// NewClient returns a client for the server base URL (e.g.
// "http://127.0.0.1:8711").
func NewClient(base string) *Client {
	tr := &http.Transport{
		MaxIdleConns:        512,
		MaxIdleConnsPerHost: 512,
		IdleConnTimeout:     90 * time.Second,
	}
	return &Client{base: base, hc: &http.Client{Transport: tr}}
}

// Health probes GET /healthz.
func (c *Client) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("load: server %s unreachable: %w", c.base, err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.Header.Get("X-AOD-Router") != "" {
		c.viaRouter.Store(true)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("load: %s/healthz returned %d", c.base, resp.StatusCode)
	}
	return nil
}

// ViaRouter reports whether the endpoint identified itself as an aodrouter
// (seen on any response so far; Health is the usual first sighting).
func (c *Client) ViaRouter() bool { return c.viaRouter.Load() }

// routerAttempts reads the router's attempt count off a response: 0 when
// absent (direct aodserver traffic), otherwise attempts beyond the first
// are retries the router absorbed on the client's behalf.
func routerAttempts(resp *http.Response) int {
	n, err := strconv.Atoi(resp.Header.Get("X-AOD-Router-Attempts"))
	if err != nil || n < 1 {
		return 0
	}
	return n - 1
}

// UploadCSV uploads a dataset body under name and returns the dataset id.
// Re-uploading identical content is idempotent on the server (200 vs 201).
func (c *Client) UploadCSV(ctx context.Context, name string, csv []byte) (string, error) {
	u := c.base + "/datasets?name=" + url.QueryEscape(name)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(csv))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "text/csv")
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", fmt.Errorf("load: uploading %s: %w", name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return "", fmt.Errorf("load: uploading %s: status %d: %s", name, resp.StatusCode, body)
	}
	var info struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return "", fmt.Errorf("load: decoding upload response: %w", err)
	}
	if info.ID == "" {
		return "", fmt.Errorf("load: upload of %s returned no dataset id", name)
	}
	return info.ID, nil
}

// Submit posts a discovery job. shed reports the server's backpressure signal
// (503, queue full) — expected under open-loop overload and accounted
// separately from protocol errors. retried is how many extra attempts an
// aodrouter in front of the server absorbed for this submit (0 when talking
// to a server directly).
func (c *Client) Submit(ctx context.Context, datasetID string, opts aod.Options) (jobID string, shed bool, retried int, err error) {
	body, err := json.Marshal(struct {
		DatasetID string      `json:"datasetId"`
		Options   aod.Options `json:"options"`
	}{datasetID, opts})
	if err != nil {
		return "", false, 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/jobs", bytes.NewReader(body))
	if err != nil {
		return "", false, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", false, 0, fmt.Errorf("load: submitting job: %w", err)
	}
	defer resp.Body.Close()
	if resp.Header.Get("X-AOD-Router") != "" {
		c.viaRouter.Store(true)
	}
	retried = routerAttempts(resp)
	switch resp.StatusCode {
	case http.StatusAccepted:
	case http.StatusServiceUnavailable:
		io.Copy(io.Discard, resp.Body)
		return "", true, retried, nil
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return "", false, retried, fmt.Errorf("load: submit returned %d: %s", resp.StatusCode, msg)
	}
	var job struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		return "", false, retried, fmt.Errorf("load: decoding submit response: %w", err)
	}
	if job.ID == "" {
		return "", false, retried, fmt.Errorf("load: submit returned no job id")
	}
	return job.ID, false, retried, nil
}

// AwaitDone blocks until the job reaches a terminal state, using the
// server's NDJSON stream endpoint as a push-based wait (one request, no
// polling interval noise in the latency measurement). It returns the final
// state ("done", "failed", "canceled") plus how many times a fronting
// aodrouter failed the job over to another replica mid-stream (synthetic
// {"type":"failover"} events spliced into the feed; 0 when direct).
// Unknown event types are otherwise skipped, so routed and direct streams
// parse identically.
func (c *Client) AwaitDone(ctx context.Context, jobID string) (state string, failedOver int, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/jobs/"+jobID+"/stream", nil)
	if err != nil {
		return "", 0, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", 0, fmt.Errorf("load: streaming job %s: %w", jobID, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return "", 0, fmt.Errorf("load: stream of %s returned %d: %s", jobID, resp.StatusCode, msg)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 16<<20) // reports ride along on events
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev struct {
			Type  string `json:"type"`
			State string `json:"state"`
			Error string `json:"error,omitempty"`
		}
		if err := json.Unmarshal(line, &ev); err != nil {
			return "", failedOver, fmt.Errorf("load: malformed stream event for %s: %w", jobID, err)
		}
		switch ev.Type {
		case "failover":
			failedOver++
		case "done":
			if ev.State == "" {
				return "", failedOver, fmt.Errorf("load: job %s ended without a state: %s", jobID, ev.Error)
			}
			return ev.State, failedOver, nil
		}
	}
	if err := sc.Err(); err != nil {
		return "", failedOver, fmt.Errorf("load: stream of %s: %w", jobID, err)
	}
	return "", failedOver, fmt.Errorf("load: stream of %s ended without a done event", jobID)
}

// Metrics fetches the server's Prometheus exposition text.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", fmt.Errorf("load: scraping /metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("load: /metrics returned %d", resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return string(b), nil
}
