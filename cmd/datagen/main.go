// Command datagen writes the synthetic experiment datasets as CSV so they
// can be inspected or fed to aodiscover/aodvalidate.
//
// Usage:
//
//	datagen -dataset flight|ncvoter|table1 [-rows N] [-attrs N] [-seed N] -out FILE
package main

import (
	"flag"
	"fmt"
	"os"

	"aod"
)

func main() {
	datasetFlag := flag.String("dataset", "flight", "dataset: flight, ncvoter, table1")
	rows := flag.Int("rows", 10000, "number of rows")
	attrs := flag.Int("attrs", 10, "number of attributes")
	seed := flag.Int64("seed", 42, "generator seed")
	out := flag.String("out", "", "output CSV path (required)")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "usage: datagen -dataset flight -out flight.csv")
		flag.PrintDefaults()
		os.Exit(2)
	}

	var ds *aod.Dataset
	switch *datasetFlag {
	case "flight":
		ds = aod.Flight(*rows, *attrs, *seed)
	case "ncvoter":
		ds = aod.NCVoter(*rows, *attrs, *seed)
	case "table1":
		ds = aod.Table1()
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown dataset %q\n", *datasetFlag)
		os.Exit(2)
	}

	if err := ds.WriteCSVFile(*out); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s → %s\n", ds, *out)
}
