package dataset

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestBuildIntColumnRanks(t *testing.T) {
	tbl, err := NewBuilder().AddInts("a", []int64{30, 10, 20, 10, 30}).Build()
	if err != nil {
		t.Fatal(err)
	}
	c := tbl.Column(0)
	want := []int32{2, 0, 1, 0, 2}
	if !reflect.DeepEqual(c.Ranks(), want) {
		t.Errorf("ranks = %v, want %v", c.Ranks(), want)
	}
	if c.NumDistinct() != 3 {
		t.Errorf("NumDistinct = %d, want 3", c.NumDistinct())
	}
	if got := c.ValueString(0); got != "30" {
		t.Errorf("ValueString(0) = %q, want 30", got)
	}
}

func TestBuildStringColumnRanks(t *testing.T) {
	tbl, err := NewBuilder().AddStrings("s", []string{"dev", "sec", "dev", "dir"}).Build()
	if err != nil {
		t.Fatal(err)
	}
	c := tbl.Column(0)
	// lexicographic: dev < dir < sec
	want := []int32{0, 2, 0, 1}
	if !reflect.DeepEqual(c.Ranks(), want) {
		t.Errorf("ranks = %v, want %v", c.Ranks(), want)
	}
	if c.Kind() != KindString {
		t.Errorf("Kind = %v, want string", c.Kind())
	}
}

func TestBuildFloatColumnWithNaN(t *testing.T) {
	tbl, err := NewBuilder().AddFloats("f", []float64{2.5, math.NaN(), 1.5, math.NaN()}).Build()
	if err != nil {
		t.Fatal(err)
	}
	c := tbl.Column(0)
	// NaN gets rank 0, then 1.5, then 2.5.
	want := []int32{2, 0, 1, 0}
	if !reflect.DeepEqual(c.Ranks(), want) {
		t.Errorf("ranks = %v, want %v", c.Ranks(), want)
	}
	if c.NumDistinct() != 3 {
		t.Errorf("NumDistinct = %d, want 3", c.NumDistinct())
	}
}

// Rank encoding must preserve order and equality exactly.
func TestRankEncodingOrderPreservingProperty(t *testing.T) {
	f := func(vals []int64) bool {
		if len(vals) == 0 {
			return true
		}
		tbl, err := NewBuilder().AddInts("a", vals).Build()
		if err != nil {
			return false
		}
		r := tbl.Column(0).Ranks()
		for i := range vals {
			for j := range vals {
				if (vals[i] < vals[j]) != (r[i] < r[j]) {
					return false
				}
				if (vals[i] == vals[j]) != (r[i] == r[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Values: func(args []reflect.Value, rng *rand.Rand) {
		n := rng.Intn(40)
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(rng.Intn(10) - 5)
		}
		args[0] = reflect.ValueOf(vals)
	}}); err != nil {
		t.Error(err)
	}
}

func TestRanksAreDense(t *testing.T) {
	f := func(vals []int64) bool {
		if len(vals) == 0 {
			return true
		}
		tbl, _ := NewBuilder().AddInts("a", vals).Build()
		c := tbl.Column(0)
		seen := make(map[int32]bool)
		for _, r := range c.Ranks() {
			if r < 0 || int(r) >= c.NumDistinct() {
				return false
			}
			seen[r] = true
		}
		return len(seen) == c.NumDistinct()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Values: func(args []reflect.Value, rng *rand.Rand) {
		n := 1 + rng.Intn(50)
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(rng.Intn(20))
		}
		args[0] = reflect.ValueOf(vals)
	}}); err != nil {
		t.Error(err)
	}
}

func TestBuilderRejectsMismatchedLengths(t *testing.T) {
	_, err := NewBuilder().
		AddInts("a", []int64{1, 2}).
		AddInts("b", []int64{1, 2, 3}).
		Build()
	if err == nil {
		t.Fatal("want error for mismatched column lengths")
	}
}

func TestBuilderRejectsDuplicateNames(t *testing.T) {
	_, err := NewBuilder().
		AddInts("a", []int64{1}).
		AddInts("a", []int64{2}).
		Build()
	if err == nil {
		t.Fatal("want error for duplicate column names")
	}
}

func TestBuilderRejectsEmpty(t *testing.T) {
	if _, err := NewBuilder().Build(); err == nil {
		t.Fatal("want error for zero columns")
	}
}

func TestSelectAndIndex(t *testing.T) {
	tbl, err := NewBuilder().
		AddInts("a", []int64{1, 2}).
		AddInts("b", []int64{3, 4}).
		AddInts("c", []int64{5, 6}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	sub, err := tbl.Select("c", "a")
	if err != nil {
		t.Fatal(err)
	}
	if got := sub.ColumnNames(); !reflect.DeepEqual(got, []string{"c", "a"}) {
		t.Errorf("ColumnNames = %v", got)
	}
	if tbl.ColumnIndex("b") != 1 || tbl.ColumnIndex("zzz") != -1 {
		t.Error("ColumnIndex wrong")
	}
	if _, err := tbl.Select("nope"); err == nil {
		t.Error("want error selecting missing column")
	}
	sub2, err := tbl.SelectIndexes(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := sub2.ColumnNames(); !reflect.DeepEqual(got, []string{"c", "a"}) {
		t.Errorf("SelectIndexes names = %v", got)
	}
	if _, err := tbl.SelectIndexes(9); err == nil {
		t.Error("want error for out-of-range index")
	}
}

func TestHeadReencodesDensely(t *testing.T) {
	tbl, err := NewBuilder().
		AddInts("a", []int64{100, 50, 75, 10, 99}).
		AddStrings("s", []string{"x", "q", "m", "a", "z"}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	h := tbl.Head(3)
	if h.NumRows() != 3 {
		t.Fatalf("NumRows = %d, want 3", h.NumRows())
	}
	a := h.Column(0)
	// values 100, 50, 75 -> ranks 2, 0, 1
	if !reflect.DeepEqual(a.Ranks(), []int32{2, 0, 1}) {
		t.Errorf("head ranks = %v", a.Ranks())
	}
	if a.NumDistinct() != 3 {
		t.Errorf("head distinct = %d", a.NumDistinct())
	}
	if got := a.ValueString(0); got != "100" {
		t.Errorf("head ValueString = %q, want 100", got)
	}
	if got := h.Column(1).ValueString(1); got != "q" {
		t.Errorf("head string ValueString = %q, want q", got)
	}
	// Head with n >= rows returns the same table.
	if tbl.Head(10) != tbl {
		t.Error("Head(n>=rows) should return the receiver")
	}
	if tbl.Head(-1).NumRows() != 0 {
		t.Error("Head(-1) should clamp to zero rows")
	}
}

func TestTableString(t *testing.T) {
	tbl, _ := NewBuilder().AddInts("a", []int64{1}).AddStrings("s", []string{"x"}).Build()
	got := tbl.String()
	if !strings.Contains(got, "1 rows") || !strings.Contains(got, "a:int") || !strings.Contains(got, "s:string") {
		t.Errorf("String() = %q", got)
	}
}

func TestReversedColumn(t *testing.T) {
	tbl, err := NewBuilder().
		AddInts("a", []int64{30, 10, 20, 10}).
		AddStrings("s", []string{"x", "q", "m", "q"}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	c := tbl.Column(0)
	rev := c.Reversed()
	if rev.Name() != "a↓" {
		t.Errorf("reversed name = %q", rev.Name())
	}
	if rev.NumDistinct() != c.NumDistinct() {
		t.Errorf("distinct = %d, want %d", rev.NumDistinct(), c.NumDistinct())
	}
	// Order must flip exactly: rank + revRank = distinct−1.
	for i := 0; i < c.Len(); i++ {
		if c.Rank(i)+rev.Rank(i) != int32(c.NumDistinct()-1) {
			t.Fatalf("row %d: rank %d + revRank %d != %d", i, c.Rank(i), rev.Rank(i), c.NumDistinct()-1)
		}
		if rev.ValueString(i) != c.ValueString(i) {
			t.Fatalf("row %d: reversed display %q != original %q", i, rev.ValueString(i), c.ValueString(i))
		}
	}
	// Double reversal returns the original.
	if rev.Reversed() != c {
		t.Error("double reversal should return the original column")
	}
	// Caching: same instance on repeated calls.
	if c.Reversed() != rev {
		t.Error("Reversed not cached")
	}
	// Strings too.
	srev := tbl.Column(1).Reversed()
	if srev.ValueString(1) != "q" {
		t.Errorf("string reversed display = %q", srev.ValueString(1))
	}
}

func TestKindString(t *testing.T) {
	if KindInt.String() != "int" || KindFloat.String() != "float" || KindString.String() != "string" {
		t.Error("Kind.String wrong")
	}
	if Kind(99).String() != "Kind(99)" {
		t.Error("unknown kind formatting wrong")
	}
}
