package service

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"aod"
	"aod/internal/store"
)

// ErrRegistryFull is returned by Registry.Add when MaxDatasets is reached
// (in-memory mode only; a persistent registry evicts to disk instead).
var ErrRegistryFull = errors.New("service: dataset registry is full")

// ErrNoDataset is returned when a dataset id is unknown.
var ErrNoDataset = errors.New("service: no such dataset")

// ErrDatasetUnavailable is returned when a registered dataset's persisted
// payload cannot be reloaded (missing or quarantined as corrupt). The record
// is dropped; re-uploading the same content restores it.
var ErrDatasetUnavailable = errors.New("service: dataset unavailable")

// DatasetInfo is the registry's public record of an uploaded dataset.
type DatasetInfo struct {
	// ID is the first 12 hex digits of the fingerprint — stable across
	// re-uploads of identical content, which deduplicates the registry.
	ID string `json:"id"`
	// Name is the client-supplied display name (optional).
	Name string `json:"name,omitempty"`
	// Fingerprint is the full content hash (see aod.Dataset.Fingerprint).
	Fingerprint string `json:"fingerprint"`
	Rows        int    `json:"rows"`
	Cols        int    `json:"cols"`
	// Columns are the attribute names in schema order.
	Columns []string `json:"columns"`
	// Types are the column kinds ("int", "float", "string") in schema order.
	Types     []string  `json:"types,omitempty"`
	CreatedAt time.Time `json:"createdAt"`
}

// Registry holds uploaded datasets keyed by content fingerprint. Uploading
// the same content twice returns the original record, so clients can submit
// a dataset once and query many (threshold, algorithm) configurations — or
// re-upload idempotently — without growing server memory.
//
// With a Store backend the registry is durable: uploads are written through
// to disk before they are acknowledged, the metadata manifest is reloaded on
// startup, and payloads load lazily on first use. The MaxDatasets bound then
// caps the *resident* set rather than the registry: the least recently used
// payload is evicted from memory (its bytes stay on disk) instead of the
// upload being refused.
//
// One *aod.Dataset may be shared by any number of concurrent discovery
// jobs: datasets are immutable by construction (builders copy their
// inputs), and the only lazily built internal state — the descending column
// views behind bidirectional discovery — is published atomically
// (aod.Dataset.Freeze can pre-materialize it, at roughly double the column
// memory; the registry deliberately does not, so non-bidirectional
// workloads never pay for it).
type Registry struct {
	mu    sync.RWMutex
	byID  map[string]*storedDataset
	order []string // insertion order, for stable listings
	max   int      // 0 = unbounded; bounds residency when st != nil
	st    *store.Store
	clock uint64 // logical LRU clock, ticked on Add and payload use
}

type storedDataset struct {
	info DatasetInfo
	ds   *aod.Dataset // nil while evicted to disk (persistent mode)
	used uint64       // clock tick of the last payload use (LRU eviction)
	// loading is non-nil while one goroutine reloads the payload from disk
	// outside the registry lock; others wait on it and re-check. pinned
	// marks an entry whose payload is being persisted by Add and must not
	// be evicted before it is actually on disk.
	loading chan struct{}
	pinned  bool
}

// NewRegistry returns a registry bounded to max datasets (0 = unbounded).
// With a non-nil store the registry recovers the store's manifest: every
// previously uploaded dataset is listed immediately and its payload loads
// from disk on first use.
func NewRegistry(max int, st *store.Store) *Registry {
	r := &Registry{byID: make(map[string]*storedDataset), max: max, st: st}
	if st != nil {
		for _, m := range st.Datasets() {
			info := DatasetInfo{
				ID:          m.ID,
				Name:        m.Name,
				Fingerprint: m.Fingerprint,
				Rows:        m.Rows,
				Cols:        m.Cols,
				Columns:     m.Columns,
				Types:       m.Types,
				CreatedAt:   m.CreatedAt,
			}
			if _, dup := r.byID[info.ID]; dup {
				continue // manifest damage; first entry wins
			}
			r.byID[info.ID] = &storedDataset{info: info}
			r.order = append(r.order, info.ID)
		}
	}
	return r
}

// Add registers the dataset under a fingerprint-derived id and returns its
// record. Content already present is deduplicated: the existing record is
// returned with created=false and the new name (if any) is ignored. With a
// store backend the dataset is durable on disk before Add returns; a
// persistence failure fails (and rolls back) the registration.
//
// Disk work happens outside the registry lock: the entry is inserted
// resident-and-pinned first, so lookups proceed during the payload write.
// The one visible consequence: a concurrent identical upload can observe
// the record before its durability is final; if the write then fails, the
// record is rolled back and later use reports the dataset as unknown —
// clients recover by re-uploading.
func (r *Registry) Add(name string, ds *aod.Dataset) (DatasetInfo, bool, error) {
	fp := ds.Fingerprint()
	id := fp[:12]

	r.mu.Lock()
	if s, ok := r.byID[id]; ok {
		if s.info.Fingerprint != fp {
			r.mu.Unlock()
			// A 48-bit prefix collision between distinct contents
			// (~2^-48 per pair): refuse rather than silently alias the
			// stored dataset.
			return DatasetInfo{}, false, fmt.Errorf(
				"service: dataset id collision: %q already maps to fingerprint %s", id, s.info.Fingerprint)
		}
		if s.ds != nil {
			// Idempotent re-upload of resident content: nothing to do (the
			// freshly parsed copy is discarded unfrozen).
			info := s.info
			r.mu.Unlock()
			return info, false, nil
		}
		// Evicted (or never loaded since recovery) and the client just
		// handed us the identical content: make it resident for free — and
		// re-persist, which self-heals a payload file lost to quarantine or
		// external corruption.
		s.ds = ds
		s.pinned = r.st != nil
		r.clock++
		s.used = r.clock
		info := s.info
		r.mu.Unlock()
		return r.finishPersist(s, info, ds, false)
	}
	if r.st == nil && r.max > 0 && len(r.byID) >= r.max {
		r.mu.Unlock()
		return DatasetInfo{}, false, ErrRegistryFull
	}
	info := DatasetInfo{
		ID:          id,
		Name:        name,
		Fingerprint: fp,
		Rows:        ds.NumRows(),
		Cols:        ds.NumCols(),
		Columns:     ds.ColumnNames(),
		Types:       ds.ColumnTypes(),
		CreatedAt:   time.Now().UTC(),
	}
	r.clock++
	s := &storedDataset{info: info, ds: ds, used: r.clock, pinned: r.st != nil}
	r.byID[id] = s
	r.order = append(r.order, id)
	r.mu.Unlock()
	return r.finishPersist(s, info, ds, true)
}

// finishPersist writes the payload through to the store (outside the
// registry lock), then unpins the entry and applies the residency bound. On
// failure the registration is rolled back so Add never acknowledges
// durability it does not have.
func (r *Registry) finishPersist(s *storedDataset, info DatasetInfo, ds *aod.Dataset, created bool) (DatasetInfo, bool, error) {
	if r.st == nil {
		return info, created, nil
	}
	err := r.st.PutDataset(metaOf(info), ds)
	r.mu.Lock()
	s.pinned = false
	if err != nil {
		if created {
			r.dropLocked(info.ID)
		} else {
			s.ds = nil // back to the evicted state it was found in
		}
		r.mu.Unlock()
		return DatasetInfo{}, false, err
	}
	r.evictLocked(s)
	r.mu.Unlock()
	return info, created, nil
}

// dropLocked removes the record. Caller holds r.mu.
func (r *Registry) dropLocked(id string) {
	delete(r.byID, id)
	for i, oid := range r.order {
		if oid == id {
			r.order = append(r.order[:i], r.order[i+1:]...)
			return
		}
	}
}

// evictLocked drops least-recently-used payloads from memory while the
// resident set exceeds the bound, sparing keep and entries whose payloads
// are not yet safely on disk (pinned). Only possible in persistent mode,
// where evicting is just releasing the in-memory copy. Caller holds r.mu.
func (r *Registry) evictLocked(keep *storedDataset) {
	if r.st == nil || r.max <= 0 {
		return
	}
	for r.residentLocked() > r.max {
		var victim *storedDataset
		for _, s := range r.byID {
			if s.ds == nil || s.pinned || s == keep {
				continue
			}
			if victim == nil || s.used < victim.used {
				victim = s
			}
		}
		if victim == nil {
			return // nothing evictable; the bound yields to correctness
		}
		victim.ds = nil // disk retains the bytes; GC reclaims the memory
	}
}

func (r *Registry) residentLocked() int {
	n := 0
	for _, s := range r.byID {
		if s.ds != nil {
			n++
		}
	}
	return n
}

// Get returns the dataset and its record, lazily reloading the payload from
// the store when it is not resident. A payload that fails to reload
// (quarantined as corrupt, or missing) drops the record and returns
// ErrDatasetUnavailable.
//
// The disk reload runs outside the registry lock — a cold multi-second load
// must not stall submissions, listings, or other jobs — with a per-entry
// flight so concurrent users of one cold dataset trigger exactly one read.
func (r *Registry) Get(id string) (*aod.Dataset, DatasetInfo, error) {
	if r.st == nil {
		// In-memory mode: payloads are always resident and there is no LRU
		// bookkeeping to update — a shared read lock suffices, exactly as
		// before persistence existed.
		r.mu.RLock()
		defer r.mu.RUnlock()
		s, ok := r.byID[id]
		if !ok {
			return nil, DatasetInfo{}, fmt.Errorf("%w: %q", ErrNoDataset, id)
		}
		return s.ds, s.info, nil
	}
	for {
		r.mu.Lock()
		s, ok := r.byID[id]
		if !ok {
			r.mu.Unlock()
			return nil, DatasetInfo{}, fmt.Errorf("%w: %q", ErrNoDataset, id)
		}
		if s.ds != nil {
			// Hot path: a recency bump only. Nothing became resident, so
			// there is nothing to evict — Add and the load path below run
			// evictLocked when residency actually grows.
			r.clock++
			s.used = r.clock
			ds, info := s.ds, s.info
			r.mu.Unlock()
			return ds, info, nil
		}
		if ch := s.loading; ch != nil {
			r.mu.Unlock()
			<-ch // another goroutine is reloading this payload
			continue
		}
		ch := make(chan struct{})
		s.loading = ch
		meta := metaOf(s.info)
		r.mu.Unlock()

		ds, err := r.st.LoadDataset(meta)
		r.mu.Lock()
		s.loading = nil
		if err != nil {
			// The store has already quarantined the payload and dropped it
			// from the manifest; mirror that in the live registry — unless a
			// concurrent re-upload resurrected the entry (s.ds set by Add)
			// while we were reading the doomed file, in which case the
			// fresh registration wins and this Get simply retries.
			if s.ds != nil {
				r.mu.Unlock()
				close(ch)
				continue
			}
			r.dropLocked(id)
			r.mu.Unlock()
			close(ch)
			return nil, DatasetInfo{}, fmt.Errorf("%w: %q: %v", ErrDatasetUnavailable, id, err)
		}
		s.ds = ds
		r.clock++
		s.used = r.clock
		info := s.info
		r.evictLocked(s)
		r.mu.Unlock()
		close(ch)
		return ds, info, nil
	}
}

// Info returns the dataset's record without touching its payload — no disk
// load, no recency bump. Use it for validation and listings.
func (r *Registry) Info(id string) (DatasetInfo, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.byID[id]
	if !ok {
		return DatasetInfo{}, fmt.Errorf("%w: %q", ErrNoDataset, id)
	}
	return s.info, nil
}

// List returns all records in upload order.
func (r *Registry) List() []DatasetInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]DatasetInfo, 0, len(r.order))
	for _, id := range r.order {
		out = append(out, r.byID[id].info)
	}
	return out
}

// Len returns the number of registered datasets.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byID)
}

// Resident returns the number of datasets whose payload is currently held
// in memory (equal to Len in in-memory mode).
func (r *Registry) Resident() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.residentLocked()
}

// metaOf converts the public record to the store's durable metadata.
func metaOf(info DatasetInfo) store.DatasetMeta {
	return store.DatasetMeta{
		ID:          info.ID,
		Name:        info.Name,
		Fingerprint: info.Fingerprint,
		Rows:        info.Rows,
		Cols:        info.Cols,
		Columns:     info.Columns,
		Types:       info.Types,
		CreatedAt:   info.CreatedAt,
	}
}
