package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"aod/internal/core"
	"aod/internal/gen"
	"aod/internal/partition"
	"aod/internal/shard"
	"aod/internal/telemetry"
	"aod/internal/validate"
)

// JSONSchema identifies the machine-readable benchmark format. BENCH_<n>.json
// files committed at the repo root form the perf trajectory across PRs: each
// file is one snapshot of the named workloads below, produced by
// `aodbench -json BENCH_<n>.json`.
const JSONSchema = "aod-bench/v1"

// JSONResult is one measured workload.
type JSONResult struct {
	// Name identifies the workload; names are stable across snapshots so
	// trajectories can be joined on them.
	Name string `json:"name"`
	// Iterations is the b.N the testing harness settled on.
	Iterations int `json:"iterations"`
	// NsPerOp, BytesPerOp and AllocsPerOp are the usual benchmark readings.
	NsPerOp     float64 `json:"nsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
	// Runs, P50NsPerOp and P99NsPerOp appear only in -percentiles snapshots:
	// the workload is measured Runs times and the ns/op quantiles are taken
	// across those runs (NsPerOp is then the median, keeping -baseline
	// comparisons meaningful against single-run snapshots).
	Runs       int     `json:"runs,omitempty"`
	P50NsPerOp float64 `json:"p50NsPerOp,omitempty"`
	P99NsPerOp float64 `json:"p99NsPerOp,omitempty"`
	// The remaining fields appear only in service-load snapshots (aodload):
	// there a "workload" is one traffic class against a live server, the
	// quantiles are per-request latencies rather than run-to-run spread, and
	// the counters partition how the offered requests fared.
	P999NsPerOp float64 `json:"p999NsPerOp,omitempty"`
	// Count is the number of requests that completed successfully.
	Count uint64 `json:"count,omitempty"`
	// Errors counts failed jobs plus client-side protocol errors.
	Errors uint64 `json:"errors,omitempty"`
	// Shed counts requests the server rejected with backpressure (503).
	Shed uint64 `json:"shed,omitempty"`
	// Retried and FailedOver count router-absorbed recovery work (routed
	// runs only): extra submit attempts and mid-stream replica failovers.
	Retried    uint64 `json:"retried,omitempty"`
	FailedOver uint64 `json:"failedOver,omitempty"`
	// RatePerSec is completed requests per second of offered-traffic window.
	RatePerSec float64 `json:"ratePerSec,omitempty"`
}

// JSONReport is the file-level envelope.
type JSONReport struct {
	Schema      string       `json:"schema"`
	GeneratedAt time.Time    `json:"generatedAt"`
	GoOS        string       `json:"goos"`
	GoArch      string       `json:"goarch"`
	Seed        int64        `json:"seed"`
	Results     []JSONResult `json:"results"`
}

// jsonWorkloads builds the named workload list. Shapes are fixed (not
// Scale-dependent) so that BENCH_<n>.json files remain comparable across
// snapshots taken with different flags.
func jsonWorkloads(seed int64) []struct {
	name string
	fn   func(b *testing.B)
} {
	ncv10k := genTable("ncvoter", 10_000, 4, seed)
	ncv100k := genTable("ncvoter", 100_000, 4, seed)
	pair100k := gen.CorrelatedPair(100_000, 0.10, seed)
	flight2k := genTable("flight", 2_000, 10, seed)
	ncv5k := genTable("ncvoter", 5_000, 10, seed)
	ncv50k := genTable("ncvoter", 50_000, 10, seed)
	// The loopback clusters outlive the benchmark's calibration calls: a real
	// shard pool is a long-lived deployment, so the sharded trajectories
	// measure steady state (dataset fingerprint-cached on the workers), not a
	// cold ship on every testing.Benchmark ramp-up round.
	lb5 := shard.Loopback(4)
	lb50 := shard.Loopback(4)

	return []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"partition-product/n=10000", func(b *testing.B) {
			p0, p1 := partition.Single(ncv10k.Column(3)), partition.Single(ncv10k.Column(1))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p0.Product(p1)
			}
		}},
		{"partition-product/n=100000", func(b *testing.B) {
			p0, p1 := partition.Single(ncv100k.Column(3)), partition.Single(ncv100k.Column(1))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p0.Product(p1)
			}
		}},
		{"partition-product-into/n=100000", func(b *testing.B) {
			p0, p1 := partition.Single(ncv100k.Column(3)), partition.Single(ncv100k.Column(1))
			var s partition.ProductScratch
			out := &partition.Stripped{}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p0.ProductInto(p1, &s, out)
			}
		}},
		{"validate-aoc-optimal/n=100000", func(b *testing.B) {
			ctx := partition.Universe(100_000)
			v := validate.New()
			ca, cb := pair100k.Column(0), pair100k.Column(1)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				v.OptimalAOC(ctx, ca, cb, validate.Options{Threshold: 0.15})
			}
		}},
		{"validate-oc-exact/n=100000", func(b *testing.B) {
			ctx := partition.Universe(100_000)
			v := validate.New()
			ca, cb := pair100k.Column(0), pair100k.Column(1)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				v.ExactOC(ctx, ca, cb)
			}
		}},
		{"validate-approx-ofd/n=100000", func(b *testing.B) {
			ctx := partition.Single(ncv100k.Column(3))
			col := ncv100k.Column(1)
			v := validate.New()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				v.ApproxOFD(ctx, col, validate.Options{Threshold: 0.1})
			}
		}},
		{"discover-flight/n=2000,attrs=10", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Discover(flight2k, core.Config{Threshold: 0.10, Validator: core.ValidatorOptimal}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"discover-ncvoter/n=5000,attrs=10", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Discover(ncv5k, core.Config{Threshold: 0.10, Validator: core.ValidatorOptimal}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"discover-traced/n=5000,attrs=10", func(b *testing.B) {
			// Same workload as discover-ncvoter but with an active trace on
			// the context, so every run records partition-build and per-level
			// spans. The gap between this trajectory and discover-ncvoter's IS
			// the telemetry overhead — the CI gate holds it within the normal
			// regression tolerance.
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tr := telemetry.NewTrace("bench")
				root := tr.Start(0, "discover")
				ctx := telemetry.NewContext(context.Background(), tr, root.ID())
				if _, err := (core.Pipeline{}).Run(ctx, ncv5k, core.Config{Threshold: 0.10, Validator: core.ValidatorOptimal}); err != nil {
					b.Fatal(err)
				}
				root.End()
			}
		}},
		{"discover-pool/n=5000,attrs=10", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.DiscoverParallel(ncv5k, core.Config{Threshold: 0.10, Validator: core.ValidatorOptimal}, 4); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"discover-sharded-loopback/n=5000,attrs=10", func(b *testing.B) {
			// The distributed path over in-process workers: full wire
			// protocol (handshake, binary columnar dataset, flat task/result
			// records, pipelined level dispatch) without network latency —
			// the protocol-overhead trajectory vs discover-pool. The cluster
			// persists across iterations like a real pool, so the dataset
			// ships and cold-partitions once. ShardedQuantum is the executor
			// the service routes through: at this size the width policy
			// engages one worker, so the trajectory is the pure protocol tax
			// without per-worker partition duplication. One untimed warm-up run
			// absorbs the cold dataset ship so every measured iteration is
			// steady state.
			cluster := lb5
			if _, err := (core.Pipeline{Executor: core.ShardedQuantum(cluster, 0)}).Run(context.Background(), ncv5k, core.Config{Threshold: 0.10, Validator: core.ValidatorOptimal}); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := core.Pipeline{Executor: core.ShardedQuantum(cluster, 0)}.Run(context.Background(), ncv5k, core.Config{Threshold: 0.10, Validator: core.ValidatorOptimal})
				if err != nil {
					b.Fatal(err)
				}
				if res.Stats.OCsFound() == 0 {
					b.Fatal("sharded discovery found nothing")
				}
			}
		}},
		{"discover-pool/n=50000,attrs=10", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.DiscoverParallel(ncv50k, core.Config{Threshold: 0.10, Validator: core.ValidatorOptimal}, 4); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"discover-sharded-loopback/n=50000,attrs=10", func(b *testing.B) {
			// The crossover workload: at 50k rows the wire overhead is noise
			// next to validation work, and the persistent session's fingerprint
			// dataset cache skips re-shipping and re-preparing the table each
			// run — so the sharded executor beats the in-process pool
			// outright, not just staying within tolerance of it. The 50k op
			// exceeds benchtime, so testing.Benchmark settles on N=1; the
			// untimed warm-up run keeps that single measured op out of the
			// cold ship + single-partition build.
			cluster := lb50
			if _, err := (core.Pipeline{Executor: core.ShardedQuantum(cluster, 0)}).Run(context.Background(), ncv50k, core.Config{Threshold: 0.10, Validator: core.ValidatorOptimal}); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := core.Pipeline{Executor: core.ShardedQuantum(cluster, 0)}.Run(context.Background(), ncv50k, core.Config{Threshold: 0.10, Validator: core.ValidatorOptimal})
				if err != nil {
					b.Fatal(err)
				}
				if res.Stats.OCsFound() == 0 {
					b.Fatal("sharded discovery found nothing")
				}
			}
		}},
		{"discover-repeat/cold/n=100000,attrs=4", func(b *testing.B) {
			// The repeat-job trajectory, cold half: every iteration pays the
			// full cold start — single-column partition build (Prepare) plus
			// discovery — exactly what a server without the partition cache
			// does for every job over the same dataset. The wide-and-shallow
			// shape (100k rows, 4 attrs) makes the prepare cost a substantial
			// fraction of the job, as it is for the paper's row-heavy inputs.
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				prep := core.Prepare(ncv100k)
				if _, err := (core.Pipeline{Prepared: prep}).Run(context.Background(), ncv100k, core.Config{Threshold: 0.10, Validator: core.ValidatorOptimal}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"discover-repeat/warm/n=100000,attrs=4", func(b *testing.B) {
			// Warm half: the singles are prepared once and every iteration
			// reuses them through the Pipeline.Prepared seam plus a shared
			// bounded arena — the exact server path a partition-cache hit
			// takes (-partition-cache-bytes). The gap between this trajectory
			// and discover-repeat/cold IS the cross-job memoization win.
			prep := core.Prepare(ncv100k)
			arena := partition.NewArenaLimit(256 << 20)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := (core.Pipeline{Prepared: prep, Arena: arena}).Run(context.Background(), ncv100k, core.Config{Threshold: 0.10, Validator: core.ValidatorOptimal}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"discover-exact-sortedscan/n=5000,attrs=10", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Discover(ncv5k, core.Config{Validator: core.ValidatorExact, UseSortedScan: true}); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}
}

// RunJSON measures the named workloads and writes a JSONReport to w. Results
// also stream to log as they complete.
func RunJSON(w io.Writer, log io.Writer, seed int64) error {
	return RunJSONPercentiles(w, log, seed, 1)
}

// RunJSONPercentiles is RunJSON with each workload measured runs times: the
// recorded NsPerOp is the median across runs (noise-resistant, and still
// comparable against single-run snapshots under -baseline), and P50NsPerOp /
// P99NsPerOp capture the run-to-run latency spread. runs ≤ 1 degenerates to
// the plain single-measurement snapshot.
//
// Each run regenerates the workload datasets from its own seed — run 0 uses
// the base seed (so -percentiles and single-run snapshots share inputs) and
// later runs draw seeds from one RNG derived from it. The spread therefore
// reflects input variation as well as machine noise, rather than re-timing
// one frozen dataset N times.
func RunJSONPercentiles(w io.Writer, log io.Writer, seed int64, runs int) error {
	if runs < 1 {
		runs = 1
	}
	rep := JSONReport{
		Schema:      JSONSchema,
		GeneratedAt: time.Now().UTC().Truncate(time.Second),
		GoOS:        runtime.GOOS,
		GoArch:      runtime.GOARCH,
		Seed:        seed,
	}
	seedRng := rand.New(rand.NewSource(seed))
	type acc struct {
		samples []float64
		jr      JSONResult
	}
	var accs []acc
	for run := 0; run < runs; run++ {
		runSeed := seed
		if run > 0 {
			runSeed = seedRng.Int63()
		}
		wls := jsonWorkloads(runSeed)
		if accs == nil {
			accs = make([]acc, len(wls))
		}
		for i, wl := range wls {
			r := testing.Benchmark(wl.fn)
			if r.N == 0 {
				// A failed workload (b.Fatal) yields a zero BenchmarkResult;
				// recording it would poison the trajectory with fake zeros.
				return fmt.Errorf("bench: workload %q failed", wl.name)
			}
			nsPerOp := float64(r.T.Nanoseconds()) / float64(r.N)
			accs[i].samples = append(accs[i].samples, nsPerOp)
			if run == 0 {
				accs[i].jr = JSONResult{
					Name:        wl.name,
					Iterations:  r.N,
					NsPerOp:     nsPerOp,
					BytesPerOp:  r.AllocedBytesPerOp(),
					AllocsPerOp: r.AllocsPerOp(),
				}
			}
		}
	}
	for i := range accs {
		jr := accs[i].jr
		if runs > 1 {
			jr.Runs = runs
			jr.P50NsPerOp = telemetry.ExactQuantile(accs[i].samples, 0.50)
			jr.P99NsPerOp = telemetry.ExactQuantile(accs[i].samples, 0.99)
			jr.NsPerOp = jr.P50NsPerOp
		}
		rep.Results = append(rep.Results, jr)
		if log != nil {
			writeJSONLine(log, jr)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// EncodeReport writes a report as indented JSON — the same formatting every
// BENCH_<n>.json snapshot uses, so diffs stay minimal.
func EncodeReport(w io.Writer, rep JSONReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// DecodeReport parses an aod-bench/v1 report from r, rejecting other
// schemas. It is the reader half of EncodeReport and what LoadJSON uses
// under the hood.
func DecodeReport(r io.Reader) (JSONReport, error) {
	var rep JSONReport
	dec := json.NewDecoder(r)
	if err := dec.Decode(&rep); err != nil {
		return rep, fmt.Errorf("bench: decode report: %w", err)
	}
	if rep.Schema != JSONSchema {
		return rep, fmt.Errorf("bench: unsupported schema %q (want %q)", rep.Schema, JSONSchema)
	}
	return rep, nil
}

func writeJSONLine(log io.Writer, r JSONResult) {
	if r.Runs > 1 {
		fmt.Fprintf(log, "  %s: p50 %s/op, p99 %s/op over %d runs, %d allocs/op\n",
			r.Name, fmtDur(time.Duration(r.P50NsPerOp)), fmtDur(time.Duration(r.P99NsPerOp)),
			r.Runs, r.AllocsPerOp)
		return
	}
	fmt.Fprintf(log, "  %s: %s/op, %d allocs/op\n",
		r.Name, fmtDur(time.Duration(r.NsPerOp)), r.AllocsPerOp)
}
