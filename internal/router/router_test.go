package router

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestSplitJobID(t *testing.T) {
	cases := []struct {
		gid   string
		idx   int
		local string
		ok    bool
	}{
		{"r0.job-17", 0, "job-17", true},
		{"r12.abc", 12, "abc", true},
		{"r1.job-3.stream", 1, "job-3.stream", true},
		{"job-17", 0, "", false},
		{"r.job-17", 0, "", false},
		{"rx.job-17", 0, "", false},
		{"r-1.job", 0, "", false},
		{"", 0, "", false},
	}
	for _, c := range cases {
		idx, local, ok := splitJobID(c.gid)
		if ok != c.ok || (ok && (idx != c.idx || local != c.local)) {
			t.Errorf("splitJobID(%q) = (%d, %q, %v), want (%d, %q, %v)",
				c.gid, idx, local, ok, c.idx, c.local, c.ok)
		}
	}
}

// newTestRouter builds a router over the given bases without waiting on
// probes (replicas start optimistically up).
func newTestRouter(t *testing.T, cfg Config) *Router {
	t.Helper()
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

// TestRendezvousStability: candidate order is deterministic, spreads keys
// across replicas, and removing one replica never re-homes a key whose
// home survives — the property that keeps surviving result caches warm
// through a replica death.
func TestRendezvousStability(t *testing.T) {
	rt := newTestRouter(t, Config{
		Replicas:      []string{"http://a:1", "http://b:1", "http://c:1"},
		ProbeInterval: time.Hour, // keep probes quiet; fake hosts never resolve anyway
	})
	perHome := make(map[int]int)
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("dataset-%d", i)
		c1 := rt.candidates(key)
		c2 := rt.candidates(key)
		for j := range c1 {
			if c1[j].idx != c2[j].idx {
				t.Fatalf("candidates(%q) not deterministic", key)
			}
		}
		perHome[c1[0].idx]++
	}
	for idx := 0; idx < 3; idx++ {
		if perHome[idx] == 0 {
			t.Fatalf("replica %d homed zero of 300 keys: %v", idx, perHome)
		}
	}

	// Kill replica b: keys homed on a or c keep their homes; keys homed on
	// b redistribute to both survivors.
	rt.replicas[1].up.Store(false)
	moved := make(map[int]int)
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("dataset-%d", i)
		home := rt.candidates(key)[0].idx
		if rt.replicas[home].up.Load() == false {
			t.Fatalf("key %q homed on a down replica", key)
		}
		// Recompute what the home was with all replicas up, via raw weights.
		bestW, prev := uint64(0), -1
		for _, rp := range rt.replicas {
			if w := fnv1a64(key + "|" + rp.base); w > bestW {
				bestW, prev = w, rp.idx
			}
		}
		if prev != 1 && home != prev {
			t.Fatalf("key %q re-homed %d→%d though its home survived", key, prev, home)
		}
		if prev == 1 {
			moved[home]++
		}
	}
	if len(moved) != 2 {
		t.Fatalf("b's keys landed on %d replicas, want both survivors: %v", len(moved), moved)
	}
}

// TestAdmitterTokenBucket exercises the bucket math against a fake clock:
// bursts pass, the sustained rate holds, and the refusal's Retry-After is
// exactly long enough that waiting it out readmits the tenant.
func TestAdmitterTokenBucket(t *testing.T) {
	a := newAdmitter(TenantQuota{}, map[string]TenantQuota{
		"metered": {Rate: 2, Burst: 3},
	})
	now := time.Unix(1000, 0)

	// Unlimited default tenant: never refused.
	for i := 0; i < 100; i++ {
		if _, ok := a.allow("free", now); !ok {
			t.Fatal("unlimited tenant refused")
		}
	}

	// Burst of 3 passes, the 4th is refused with a usable hint.
	for i := 0; i < 3; i++ {
		if _, ok := a.allow("metered", now); !ok {
			t.Fatalf("burst submit %d refused", i)
		}
	}
	wait, ok := a.allow("metered", now)
	if ok {
		t.Fatal("4th burst submit admitted past the bucket")
	}
	if wait < 1 {
		t.Fatalf("Retry-After hint = %d, want ≥ 1", wait)
	}
	// Waiting the hinted time readmits.
	now = now.Add(time.Duration(wait) * time.Second)
	if _, ok := a.allow("metered", now); !ok {
		t.Fatal("tenant still refused after waiting its own Retry-After")
	}

	// Sustained rate: over 10 virtual seconds at 4 attempts/s, admissions
	// track the 2/s quota (plus loose change from the refill granularity).
	admitted := 0
	for i := 0; i < 40; i++ {
		now = now.Add(250 * time.Millisecond)
		if _, ok := a.allow("metered", now); ok {
			admitted++
		}
	}
	if admitted < 18 || admitted > 22 {
		t.Fatalf("admitted %d of 40 over 10s at rate 2/s, want ≈20", admitted)
	}
}

// countingTripper fabricates responses and records the faulted sequence.
type countingTripper struct {
	calls int
}

func (c *countingTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	c.calls++
	return &http.Response{
		StatusCode: 200,
		Body:       io.NopCloser(strings.NewReader("0123456789")),
		Header:     make(http.Header),
	}, nil
}

// TestFaultPlanDeterminism: a rule faults exactly its [After, After+Count)
// window of matching RPCs, twice over — same plan, same sequence, same
// faults.
func TestFaultPlanDeterminism(t *testing.T) {
	plan := &FaultPlan{Rules: []FaultRule{
		{Path: "/jobs", Method: "POST", After: 1, Count: 2, Action: "error"},
	}}
	for round := 0; round < 2; round++ {
		inner := &countingTripper{}
		tr := plan.transport(inner)
		var got []bool
		for i := 0; i < 6; i++ {
			req, _ := http.NewRequest(http.MethodPost, "http://x:1/jobs", nil)
			resp, err := tr.RoundTrip(req)
			got = append(got, err != nil)
			if err == nil {
				resp.Body.Close()
			}
		}
		want := []bool{false, true, true, false, false, false}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d: fault sequence %v, want %v", round, got, want)
			}
		}
		// Non-matching traffic is never touched.
		req, _ := http.NewRequest(http.MethodGet, "http://x:1/jobs", nil)
		if _, err := tr.RoundTrip(req); err != nil {
			t.Fatalf("GET faulted by a POST rule: %v", err)
		}
	}
}

// TestFaultPlanCut: the cut action forwards exactly CutAfterBytes then
// fails the read, like a connection dying mid-body.
func TestFaultPlanCut(t *testing.T) {
	plan := &FaultPlan{Rules: []FaultRule{
		{Action: "cut", CutAfterBytes: 4},
	}}
	tr := plan.transport(&countingTripper{})
	req, _ := http.NewRequest(http.MethodGet, "http://x:1/stream", nil)
	resp, err := tr.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err == nil {
		t.Fatal("cut body read to EOF without an error")
	}
	if string(buf) != "0123" {
		t.Fatalf("read %q before the cut, want %q", buf, "0123")
	}
}

// TestBackoffSchedule: jittered exponential, deterministic per seed,
// always within [0.5×, 1.5×) of the capped ideal.
func TestBackoffSchedule(t *testing.T) {
	mk := func(seed int64) []time.Duration {
		rt := newTestRouter(t, Config{
			Replicas:      []string{"http://a:1"},
			BackoffBase:   20 * time.Millisecond,
			BackoffMax:    200 * time.Millisecond,
			Seed:          seed,
			ProbeInterval: time.Hour,
		})
		var out []time.Duration
		for a := 1; a <= 6; a++ {
			out = append(out, rt.backoff(a))
		}
		return out
	}
	s1, s2 := mk(7), mk(7)
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("same seed, different schedule: %v vs %v", s1, s2)
		}
	}
	ideal := []time.Duration{20, 40, 80, 160, 200, 200}
	for i, d := range s1 {
		lo := time.Duration(float64(ideal[i]*time.Millisecond) * 0.5)
		hi := time.Duration(float64(ideal[i]*time.Millisecond) * 1.5)
		if d < lo || d >= hi {
			t.Fatalf("backoff(%d) = %v outside [%v, %v)", i+1, d, lo, hi)
		}
	}
	if s3 := mk(8); s3[0] == s1[0] && s3[1] == s1[1] && s3[2] == s1[2] {
		t.Fatal("different seeds produced an identical schedule prefix")
	}
}
