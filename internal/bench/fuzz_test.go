package bench

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// FuzzCompareReports drives the aod-bench/v1 reader and comparator with
// arbitrary bytes: snapshots come from CI artifacts and repo files, so a
// corrupt or adversarial file must fail with an error, never a panic — and
// whatever DecodeReport accepts must survive an encode/decode round trip
// unchanged (the schema has no lossy fields).
func FuzzCompareReports(f *testing.F) {
	f.Add([]byte(`{}`), []byte(`{}`), 0.2)
	f.Add([]byte(`null`), []byte(`[]`), -1.0)
	f.Add(
		[]byte(`{"schema":"aod-bench/v1","results":[{"name":"a","nsPerOp":100,"p99NsPerOp":200}]}`),
		[]byte(`{"schema":"aod-bench/v1","results":[{"name":"a","nsPerOp":130,"p99NsPerOp":900,"count":12,"shed":3,"errors":1,"ratePerSec":5.5}]}`),
		0.2,
	)
	f.Add(
		[]byte(`{"schema":"aod-bench/v1","results":[{"name":"dup"},{"name":"dup"},{"name":""}]}`),
		[]byte(`{"schema":"aod-bench/v1","results":[{"name":"dup","nsPerOp":1e308},{"nsPerOp":-5}]}`),
		1e300,
	)
	f.Add([]byte(`{"schema":"aod-bench/v1","results":[{"name":"n","nsPerOp":1e-300,"p999NsPerOp":1}]}`), []byte(`{"schema":"aod-bench/v1"}`), 0.0)

	f.Fuzz(func(t *testing.T, baseData, curData []byte, tolerance float64) {
		base, baseErr := DecodeReport(bytes.NewReader(baseData))
		cur, curErr := DecodeReport(bytes.NewReader(curData))

		// CompareReports must tolerate any pair of decoded reports — including
		// the half-filled structs that come back alongside an error.
		regressions, notes := CompareReports(base, cur, tolerance)
		for _, s := range append(regressions, notes...) {
			if s == "" {
				t.Fatal("empty regression/note string")
			}
		}

		// Round trip: anything the reader accepts re-encodes to an equivalent
		// report.
		for _, rep := range []struct {
			rep JSONReport
			err error
		}{{base, baseErr}, {cur, curErr}} {
			if rep.err != nil {
				continue
			}
			var buf bytes.Buffer
			if err := EncodeReport(&buf, rep.rep); err != nil {
				t.Fatalf("encode of decoded report failed: %v", err)
			}
			again, err := DecodeReport(&buf)
			if err != nil {
				t.Fatalf("re-decode of encoded report failed: %v", err)
			}
			if !reflect.DeepEqual(normalize(rep.rep), normalize(again)) {
				t.Fatalf("round trip not lossless:\n first: %+v\nsecond: %+v", rep.rep, again)
			}
		}
	})
}

// normalize erases representation-only differences that a JSON round trip is
// allowed to introduce: nil vs empty results slice, and the timestamp's
// location pointer (DeepEqual compares *time.Location identity, and every
// parse of a "+hh:mm" offset allocates a fresh fixed zone).
func normalize(r JSONReport) JSONReport {
	if len(r.Results) == 0 {
		r.Results = nil
	}
	r.GeneratedAt = r.GeneratedAt.UTC()
	return r
}

func TestDecodeReportRejectsWrongSchema(t *testing.T) {
	_, err := DecodeReport(strings.NewReader(`{"schema":"aod-bench/v2"}`))
	if err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("want schema error, got %v", err)
	}
	if _, err := DecodeReport(strings.NewReader(`{not json`)); err == nil {
		t.Fatal("want decode error for malformed JSON")
	}
}
