package aod

import (
	"encoding/json"
	"io"
)

// WriteJSON writes the report as indented JSON using the stable field names
// documented on OC, OFD, and Stats. It is the single encoder behind both the
// aodiscover -json flag and the aodserver HTTP API, so the two always agree.
// Nil dependency and context slices are normalized to empty arrays so
// consumers never see null where a list belongs.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r) // Encode normalizes via MarshalJSON
}

// MarshalJSON applies the same normalization as WriteJSON.
func (r *Report) MarshalJSON() ([]byte, error) {
	// Alias shields Marshal from recursing back into MarshalJSON.
	type alias Report
	return json.Marshal((*alias)(r.normalized()))
}

func (r *Report) normalized() *Report {
	n := *r
	// make (not append) so empty lists stay non-nil and encode as [].
	ocs := make([]OC, len(n.OCs))
	copy(ocs, n.OCs)
	n.OCs = ocs
	ofds := make([]OFD, len(n.OFDs))
	copy(ofds, n.OFDs)
	n.OFDs = ofds
	for i := range n.OCs {
		if n.OCs[i].Context == nil {
			n.OCs[i].Context = []string{}
		}
	}
	for i := range n.OFDs {
		if n.OFDs[i].Context == nil {
			n.OFDs[i].Context = []string{}
		}
	}
	if n.Stats.OCsFoundPerLevel == nil {
		n.Stats.OCsFoundPerLevel = []int{}
	}
	if n.Stats.OFDsFoundPerLevel == nil {
		n.Stats.OFDsFoundPerLevel = []int{}
	}
	return &n
}
