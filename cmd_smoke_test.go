package aod

import (
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// TestCLISmoke builds every command and exercises the end-user workflow:
// datagen → aodiscover → aodvalidate → aodbench.
func TestCLISmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	dir := t.TempDir()
	bins := map[string]string{}
	for _, tool := range []string{"aodiscover", "aodvalidate", "datagen", "aodbench"} {
		out := filepath.Join(dir, tool)
		if runtime.GOOS == "windows" {
			out += ".exe"
		}
		cmd := exec.Command(goBin, "build", "-o", out, "./cmd/"+tool)
		cmd.Dir = "."
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, msg)
		}
		bins[tool] = out
	}

	csvPath := filepath.Join(dir, "table1.csv")
	run := func(tool string, args ...string) string {
		t.Helper()
		out, err := exec.Command(bins[tool], args...).CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", tool, args, err, out)
		}
		return string(out)
	}

	out := run("datagen", "-dataset", "table1", "-out", csvPath)
	if !strings.Contains(out, "9 rows") {
		t.Errorf("datagen output: %q", out)
	}

	out = run("aodiscover", "-threshold", "0.12", "-ofds", "-removals", csvPath)
	if !strings.Contains(out, "exp ∼ sal") {
		t.Errorf("aodiscover did not find {pos}: exp ∼ sal:\n%s", out)
	}

	out = run("aodvalidate", "-a", "sal", "-b", "tax", "-threshold", "0.5", "-compare", csvPath)
	if !strings.Contains(out, "0.4444") || !strings.Contains(out, "0.5556") {
		t.Errorf("aodvalidate did not reproduce Examples 2.15/3.1:\n%s", out)
	}
	if !strings.Contains(out, "WRONGLY reject") {
		t.Errorf("aodvalidate -compare should flag the legacy rejection:\n%s", out)
	}

	out = run("aodvalidate", "-a", "sal", "-b", "bonus", "-context", "pos", "-kind", "od", "-threshold", "0", csvPath)
	if !strings.Contains(out, "valid") {
		t.Errorf("aodvalidate od kind failed:\n%s", out)
	}

	out = run("aodvalidate", "-a", "sal", "-kind", "ofd", "-context", "pos,exp", "-threshold", "0.2", csvPath)
	if !strings.Contains(out, "valid") {
		t.Errorf("aodvalidate ofd kind failed:\n%s", out)
	}

	// Error paths exit non-zero.
	if _, err := exec.Command(bins["aodiscover"], filepath.Join(dir, "missing.csv")).CombinedOutput(); err == nil {
		t.Error("aodiscover should fail on a missing file")
	}
	if _, err := exec.Command(bins["datagen"], "-dataset", "bogus", "-out", csvPath).CombinedOutput(); err == nil {
		t.Error("datagen should reject unknown datasets")
	}
	if _, err := exec.Command(bins["aodbench"], "-exp", "99").CombinedOutput(); err == nil {
		t.Error("aodbench should reject unknown experiments")
	}
	if _, err := exec.Command(bins["aodbench"], "-scale", "galactic").CombinedOutput(); err == nil {
		t.Error("aodbench should reject unknown scales")
	}
}
