package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"aod"
	"aod/internal/store"
)

// DefaultMaxUploadBytes bounds POST /datasets bodies unless overridden.
const DefaultMaxUploadBytes = 256 << 20 // 256 MiB

// HandlerConfig tunes the HTTP layer.
type HandlerConfig struct {
	// MaxUploadBytes bounds CSV upload bodies (default DefaultMaxUploadBytes).
	MaxUploadBytes int64
}

// NewHandler exposes the service as an HTTP JSON API:
//
//	POST   /datasets        CSV body (text/csv) → dataset record; ?name= labels it
//	GET    /datasets        list dataset records
//	GET    /datasets/{id}   one dataset record
//	POST   /jobs            {"datasetId": ..., "options": {...}} → job (202)
//	GET    /jobs            list jobs (without reports)
//	GET    /jobs/{id}       job status; partial report while running, report once done
//	GET    /jobs/{id}/stream NDJSON stream of per-level progress events
//	DELETE /jobs/{id}       cancel the job
//	GET    /healthz         readiness probe (503 while draining; carries queue age)
//	GET    /peer/report     replica-internal: cached report for ?key= (404 on miss)
//	GET    /stats           service counters
func NewHandler(s *Service, cfg HandlerConfig) http.Handler {
	if cfg.MaxUploadBytes <= 0 {
		cfg.MaxUploadBytes = DefaultMaxUploadBytes
	}
	h := &handler{svc: s, cfg: cfg}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /datasets", h.postDataset)
	mux.HandleFunc("GET /datasets", h.listDatasets)
	mux.HandleFunc("GET /datasets/{id}", h.getDataset)
	mux.HandleFunc("POST /jobs", h.postJob)
	mux.HandleFunc("GET /jobs", h.listJobs)
	mux.HandleFunc("GET /jobs/{id}", h.getJob)
	mux.HandleFunc("GET /jobs/{id}/stream", h.streamJob)
	mux.HandleFunc("GET /jobs/{id}/trace", h.traceJob)
	mux.HandleFunc("DELETE /jobs/{id}", h.deleteJob)
	mux.HandleFunc("GET /healthz", h.healthz)
	mux.HandleFunc("GET /peer/report", h.peerReport)
	mux.HandleFunc("GET /stats", h.stats)
	mux.HandleFunc("GET /metrics", h.metrics)
	return mux
}

type handler struct {
	svc *Service
	cfg HandlerConfig
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to recover
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (h *handler) postDataset(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, h.cfg.MaxUploadBytes)
	ds, err := aod.ReadCSV(body, aod.CSVOptions{})
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeErr(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("upload exceeds %d bytes", tooLarge.Limit))
			return
		}
		writeErr(w, http.StatusBadRequest, fmt.Errorf("parsing CSV: %w", err))
		return
	}
	info, created, err := h.svc.Registry().Add(r.URL.Query().Get("name"), ds)
	switch {
	case errors.Is(err, ErrRegistryFull):
		writeErr(w, http.StatusInsufficientStorage, err)
		return
	case errors.Is(err, store.ErrUnserializable):
		// A permanent property of the uploaded content (e.g. a value
		// containing "\r\n", which CSV cannot represent losslessly), not a
		// server fault: the client must change the data, not retry.
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	case err != nil: // e.g. the fingerprint-prefix collision refusal
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	status := http.StatusCreated
	if !created {
		status = http.StatusOK // deduplicated re-upload
	}
	writeJSON(w, status, info)
}

func (h *handler) listDatasets(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, h.svc.Registry().List())
}

func (h *handler) getDataset(w http.ResponseWriter, r *http.Request) {
	// Info, not Get: a metadata read must not page a disk-evicted payload
	// back into memory.
	info, err := h.svc.Registry().Info(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// jobRequest is the POST /jobs body.
type jobRequest struct {
	DatasetID string      `json:"datasetId"`
	Options   aod.Options `json:"options"`
}

func (h *handler) postJob(w http.ResponseWriter, r *http.Request) {
	var req jobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeErr(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("job request exceeds %d bytes", tooLarge.Limit))
			return
		}
		writeErr(w, http.StatusBadRequest, fmt.Errorf("parsing job request: %w", err))
		return
	}
	if req.DatasetID == "" {
		writeErr(w, http.StatusBadRequest, errors.New("datasetId is required"))
		return
	}
	view, err := h.svc.Submit(req.DatasetID, req.Options)
	switch {
	case errors.Is(err, ErrNoDataset):
		writeErr(w, http.StatusNotFound, err)
	case errors.Is(err, ErrInvalidOptions):
		writeErr(w, http.StatusBadRequest, err)
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrDraining):
		// An honest backoff hint derived from the oldest queued job's age —
		// not a constant — so clients and routers pace their retries to how
		// congested this replica actually is.
		w.Header().Set("Retry-After", strconv.Itoa(h.svc.retryAfterSeconds()))
		writeErr(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrClosed):
		writeErr(w, http.StatusServiceUnavailable, err)
	case err != nil:
		writeErr(w, http.StatusInternalServerError, err)
	default:
		w.Header().Set("Location", "/jobs/"+view.ID)
		writeJSON(w, http.StatusAccepted, view)
	}
}

func (h *handler) listJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, h.svc.Jobs())
}

func (h *handler) getJob(w http.ResponseWriter, r *http.Request) {
	view, err := h.svc.Job(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// streamJob serves GET /jobs/{id}/stream: an NDJSON stream (one JSON object
// per line, application/x-ndjson) of "level" events — each carrying the
// cumulative partial report of the levels completed so far — terminated by a
// single "done" event with the job's final state. The stream ends cleanly on
// job completion, job cancellation (state "canceled"), and client disconnect
// (the subscription is dropped; the job itself keeps running). Terminal jobs
// yield just the "done" event, so the endpoint doubles as a blocking "wait
// for this job" primitive.
func (h *handler) streamJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	events, cancel, err := h.svc.Stream(id)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	defer cancel()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w) // no indent: one event per line
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				// Terminal: emit the authoritative final state. The job can
				// only have been pruned from history mid-stream in a pathological
				// config; surface that as an error event rather than silence.
				final := StreamEvent{Type: "done", JobID: id}
				if view, err := h.svc.Job(id); err == nil {
					final.State = view.State
					final.Report = view.Report
					final.Error = view.Error
				} else {
					final.Error = err.Error()
				}
				_ = enc.Encode(final)
				return
			}
			if err := enc.Encode(ev); err != nil {
				return // client gone; cancel() drops the subscription
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return // client disconnected mid-stream
		}
	}
}

// traceJob serves GET /jobs/{id}/trace: the job's span tree as JSON —
// queue wait, cache lookup, dataset load, partition build, per-level
// validation, and (under a shard pool) per-slice RPCs with the workers' own
// spans stitched beneath them.
func (h *handler) traceJob(w http.ResponseWriter, r *http.Request) {
	tree, err := h.svc.JobTrace(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, tree)
}

// metrics serves GET /metrics in the Prometheus text exposition format.
func (h *handler) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = h.svc.Metrics().WritePrometheus(w)
}

func (h *handler) deleteJob(w http.ResponseWriter, r *http.Request) {
	view, err := h.svc.Cancel(r.PathValue("id"))
	switch {
	case errors.Is(err, ErrNoJob):
		writeErr(w, http.StatusNotFound, err)
	case errors.Is(err, ErrJobFinished):
		writeJSON(w, http.StatusConflict, view)
	default:
		writeJSON(w, http.StatusOK, view)
	}
}

// HealthView is the GET /healthz body: a readiness signal plus the queue
// observations a router's probe folds into its shedding decisions. Status is
// "ok" (200) or "draining" (503) — an unready replica keeps serving reads
// and finishing admitted jobs, it just refuses new ones.
type HealthView struct {
	Status           string `json:"status"`
	QueuedJobs       int    `json:"queuedJobs"`
	JobsInFlight     int64  `json:"jobsInFlight"`
	OldestQueueAgeNs int64  `json:"oldestQueueAgeNs"`
}

func (h *handler) healthz(w http.ResponseWriter, r *http.Request) {
	s := h.svc
	s.mu.Lock()
	queued := s.pending.Len()
	s.mu.Unlock()
	view := HealthView{
		Status:           "ok",
		QueuedJobs:       queued,
		JobsInFlight:     s.met.inFlight.Value(),
		OldestQueueAgeNs: int64(s.QueueAge()),
	}
	if s.Draining() {
		view.Status = "draining"
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeJSON(w, http.StatusServiceUnavailable, view)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// peerReport serves GET /peer/report?key=...: the raw cached report for a
// result-cache key, for replica peering (see Config.Peers). 404 on a miss —
// the asking replica then validates locally.
func (h *handler) peerReport(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	if key == "" {
		writeErr(w, http.StatusBadRequest, errors.New("service: peer report needs ?key="))
		return
	}
	rep, ok := h.svc.PeerReport(key)
	if !ok {
		writeErr(w, http.StatusNotFound, errors.New("service: no cached report for key"))
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (h *handler) stats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, h.svc.Stats())
}
