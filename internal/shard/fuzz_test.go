package shard

import (
	"bytes"
	"reflect"
	"testing"

	"aod/internal/core"
	"aod/internal/dataset"
	"aod/internal/telemetry"
)

// encodeBody renders f as one frame body (without the length prefix) — the
// exact bytes writeFrame would put on the wire.
func encodeBody(t interface{ Fatalf(string, ...any) }, f *frame) []byte {
	var buf bytes.Buffer
	if _, err := writeFrame(&buf, f); err != nil {
		t.Fatalf("encoding %s frame: %v", f.T, err)
	}
	return buf.Bytes()[4:]
}

// reencodable reports whether writeFrame can render f again: a JSON body may
// claim a binary payload type and decode with a nil payload — every receive
// site rejects such frames by type check, so the round-trip property does not
// apply to them.
func reencodable(f *frame) bool {
	switch f.T {
	case "dataset":
		return f.Dataset != nil
	case "level":
		return f.Level != nil
	case "result":
		return f.Result != nil
	}
	return true
}

// FuzzDecodeFrame pins the two codec guarantees the wire protocol leans on:
// decodeFrame is total over arbitrary bytes (errors, never panics), and any
// body it accepts re-encodes to a canonical form that round-trips losslessly
// (encode ∘ decode is idempotent at the byte level).
func FuzzDecodeFrame(f *testing.F) {
	// One valid seed per frame kind, plus near-misses that walk the
	// dispatch-byte and version-check branches.
	f.Add(encodeBody(f, &frame{T: "hello", Hello: &helloMsg{Proto: protoVersion, Fingerprint: "fp", Rows: 7, Cols: 3}}))
	f.Add(encodeBody(f, &frame{T: "ack", Ack: &ackMsg{OK: true, NeedDataset: true}}))
	f.Add(encodeBody(f, &frame{T: "level", Level: &levelMsg{
		Level: 2,
		Trace: "tr-1",
		Tasks: []core.NodeTask{{Set: 6, Level: 2, ConstValid: 1, ParentConst: []uint64{3, 5}, OCValid: []uint64{9}, OCValidDesc: []uint64{4}}},
	}}))
	f.Add(encodeBody(f, &frame{T: "result", Result: &resultMsg{
		Results: []core.NodeResult{{
			Candidates: 2,
			NewConst:   4,
			OCs:        []core.TaskOC{{A: 1, B: 2, Descending: true, Error: 0.25, Removals: 3, RemovalRows: []int32{4, 9, 11}}},
			OFDs:       []core.TaskOFD{{A: 0, Error: 0.5, Removals: 1, RemovalRows: []int32{2}}},
		}},
		Spans: []telemetry.WireSpan{{Name: "slice"}},
	}}))
	tbl, err := dataset.ReadCSV(bytes.NewReader([]byte("a,b\n1,x\n2,y\n1,x\n")), dataset.CSVOptions{})
	if err != nil {
		f.Fatal(err)
	}
	cols := make([]dataset.ColumnData, tbl.NumCols())
	for i := range cols {
		cols[i] = tbl.Column(i).Data()
	}
	f.Add(encodeBody(f, &frame{T: "dataset", Dataset: &datasetMsg{Rows: tbl.NumRows(), Cols: cols}}))
	f.Add([]byte{})
	f.Add([]byte{binMagic})
	f.Add([]byte{binMagic, protoVersion})
	f.Add([]byte{binMagic, protoVersion + 1, binLevel})
	f.Add([]byte{binMagic, protoVersion, 99})
	f.Add([]byte(`{"t":"level"}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := decodeFrame(data) // must never panic
		if err != nil || !reencodable(fr) {
			return
		}
		var buf1 bytes.Buffer
		if _, err := writeFrame(&buf1, fr); err != nil {
			// JSON bodies can carry frame types writeFrame does not know.
			return
		}
		fr2, err := decodeFrame(buf1.Bytes()[4:])
		if err != nil {
			t.Fatalf("re-decoding a frame the codec itself produced: %v", err)
		}
		var buf2 bytes.Buffer
		if _, err := writeFrame(&buf2, fr2); err != nil {
			t.Fatalf("re-encoding a decoded frame: %v", err)
		}
		if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
			t.Fatalf("encode∘decode not idempotent:\n first %x\nsecond %x", buf1.Bytes(), buf2.Bytes())
		}
	})
}

// FuzzDecodeTasks fuzzes the task-record decoder directly (the hot inner
// loop of every level frame): arbitrary bytes never panic, and any accepted
// task slice survives an encode→decode round trip value-identically.
func FuzzDecodeTasks(f *testing.F) {
	// Seeds are raw decodeTasks input: the count-prefixed task records alone,
	// without the enclosing level header.
	enc := func(tasks []core.NodeTask) []byte {
		b := encodeLevelPayload(nil, &levelMsg{Level: 0, Trace: "", Tasks: tasks})
		// encodeLevelPayload prefixes uvarint(level=0) and string(trace="")
		// — one byte each — ahead of the task records.
		return b[2:]
	}
	f.Add(enc(nil))
	f.Add(enc([]core.NodeTask{{Set: 3, Level: 1, ConstValid: 2}}))
	f.Add(enc([]core.NodeTask{
		{Set: 6, Level: 2, ConstValid: 1, ParentConst: []uint64{3, 5}, OCValid: []uint64{9, 1}, OCValidDesc: []uint64{4}},
		{Set: 12, Level: 2, ConstValid: 0, OCValid: []uint64{7}},
	}))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}) // huge count
	f.Add([]byte{1, 0})                                                       // truncated mid-task

	f.Fuzz(func(t *testing.T, data []byte) {
		r := &wireReader{b: data}
		tasks, err := decodeTasks(r) // must never panic
		if err != nil {
			return
		}
		b := enc(tasks)
		r2 := &wireReader{b: b}
		tasks2, err := decodeTasks(r2)
		if err != nil {
			t.Fatalf("re-decoding tasks the codec itself encoded: %v", err)
		}
		if r2.remaining() != 0 {
			t.Fatalf("%d bytes left after re-decoding %d tasks", r2.remaining(), len(tasks2))
		}
		if !reflect.DeepEqual(tasks, tasks2) {
			t.Fatalf("task round trip diverged:\n first %+v\nsecond %+v", tasks, tasks2)
		}
	})
}
