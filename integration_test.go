package aod

import (
	"math"
	"path/filepath"
	"strings"
	"testing"
)

// End-to-end: generate → CSV → reload → discover → repair. The pipeline must
// survive the round trip with identical discoveries.
func TestIntegrationCSVPipeline(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "flight.csv")
	orig := Flight(3000, 8, 21)
	if err := orig.WriteCSVFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSVFile(path, CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	repOrig, err := Discover(orig, Options{Threshold: 0.10, CollectRemovalSets: true})
	if err != nil {
		t.Fatal(err)
	}
	repBack, err := Discover(back, Options{Threshold: 0.10, CollectRemovalSets: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(repOrig.OCs) != len(repBack.OCs) {
		t.Fatalf("CSV round trip changed discovery: %d vs %d", len(repOrig.OCs), len(repBack.OCs))
	}
	// Repair flow on the reloaded data.
	if len(repBack.OCs) > 0 {
		oc := repBack.OCs[0]
		if _, err := SuggestRepairs(back, oc.Context, oc.A, oc.B); err != nil {
			t.Fatal(err)
		}
	}
	if s := Suspects(repBack, 1); len(s) == 0 {
		t.Error("no suspects despite approximate dependencies")
	}
}

// Columns restricted via CSVOptions must behave like a Select.
func TestIntegrationColumnSubset(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t1.csv")
	if err := Table1().WriteCSVFile(path); err != nil {
		t.Fatal(err)
	}
	sub, err := ReadCSVFile(path, CSVOptions{Columns: []string{"pos", "exp", "sal"}})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumCols() != 3 {
		t.Fatalf("cols = %d", sub.NumCols())
	}
	rep, err := Discover(sub, Options{Threshold: 0.12})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, oc := range rep.OCs {
		if len(oc.Context) == 1 && oc.Context[0] == "pos" {
			found = true
		}
	}
	if !found {
		t.Errorf("expected {pos}: exp ∼ sal on the subset; got %v", rep.OCs)
	}
}

// Degenerate inputs must not crash or report nonsense.
func TestIntegrationDegenerateTables(t *testing.T) {
	// All columns constant.
	constant, err := NewBuilder().
		AddInts("a", []int64{7, 7, 7, 7}).
		AddInts("b", []int64{1, 1, 1, 1}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Discover(constant, Options{IncludeOFDs: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.OCs) != 0 {
		t.Errorf("constant table: OCs = %v (all are constancy-trivial)", rep.OCs)
	}
	if len(rep.OFDs) != 2 {
		t.Errorf("constant table: OFDs = %v, want both {}: []↦a and {}: []↦b", rep.OFDs)
	}

	// All columns identical keys.
	keys, err := NewBuilder().
		AddInts("k1", []int64{1, 2, 3, 4, 5}).
		AddInts("k2", []int64{10, 20, 30, 40, 50}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	rep, err = Discover(keys, Options{IncludeOFDs: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.OCs) != 1 {
		t.Errorf("key pair: OCs = %v, want exactly {}: k1 ∼ k2", rep.OCs)
	}

	// Pairwise-swapped columns: two swaps, one removal each fixes them, so
	// e = 2/4 = 0.5 — valid at ε=0.5 and not constancy-trivialized (the
	// per-column OFD error is 3/4).
	anti, err := NewBuilder().
		AddInts("a", []int64{1, 2, 3, 4}).
		AddInts("b", []int64{2, 1, 4, 3}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	rep, err = Discover(anti, Options{Threshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.OCs) != 1 || math.Abs(rep.OCs[0].Error-0.5) > 1e-9 {
		t.Errorf("swapped pair: %v", rep.OCs)
	}
}

// Floats (with NaN) and strings must flow through discovery.
func TestIntegrationMixedTypes(t *testing.T) {
	ds, err := NewBuilder().
		AddFloats("temp", []float64{1.5, 2.5, math.NaN(), 4.5, 5.5, 6.5}).
		AddStrings("grade", []string{"a", "b", "a", "d", "e", "f"}).
		AddInts("id", []int64{1, 2, 3, 4, 5, 6}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Discover(ds, Options{Threshold: 0.34, IncludeOFDs: true})
	if err != nil {
		t.Fatal(err)
	}
	// id ∼ temp: NaN sorts first (rank 0) at id=3, one removal suffices:
	// e = 1/6 ≤ 0.34 must be discovered.
	found := false
	for _, oc := range rep.OCs {
		if (oc.A == "id" && oc.B == "temp") || (oc.A == "temp" && oc.B == "id") {
			found = true
		}
	}
	if !found {
		t.Errorf("id ∼ temp not discovered: %v", rep.OCs)
	}
}

// The three validators must agree on exact dependencies (ε = 0).
func TestIntegrationValidatorsAgreeAtZeroThreshold(t *testing.T) {
	ds := NCVoter(2000, 8, 17)
	var counts [3]int
	for i, alg := range []Algorithm{AlgorithmExact, AlgorithmOptimal, AlgorithmIterative} {
		rep, err := Discover(ds, Options{Threshold: 0, Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		counts[i] = len(rep.OCs)
	}
	if counts[0] != counts[1] || counts[1] != counts[2] {
		t.Errorf("validators disagree at ε=0: %v", counts)
	}
}

// Threshold coverage: every minimal AOC at a lower threshold must be covered
// at a higher threshold — either by an AOC on the same pair with an
// equal-or-smaller context, or by an AOFD on one of its sides with a context
// contained in the AOC's (constancy trivializes the pair at the higher
// threshold). The minimal set itself is not monotone, but coverage is.
func TestIntegrationThresholdCoverage(t *testing.T) {
	ds := Flight(1500, 8, 23)
	low, err := Discover(ds, Options{Threshold: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	high, err := Discover(ds, Options{Threshold: 0.15, IncludeOFDs: true})
	if err != nil {
		t.Fatal(err)
	}
	type pairKey struct{ a, b string }
	ocCovers := make(map[pairKey][][]string)
	for _, oc := range high.OCs {
		k := pairKey{oc.A, oc.B}
		ocCovers[k] = append(ocCovers[k], oc.Context)
	}
	ofdCovers := make(map[string][][]string)
	for _, ofd := range high.OFDs {
		ofdCovers[ofd.A] = append(ofdCovers[ofd.A], ofd.Context)
	}
	subset := func(small, big []string) bool {
		set := make(map[string]bool, len(big))
		for _, s := range big {
			set[s] = true
		}
		for _, s := range small {
			if !set[s] {
				return false
			}
		}
		return true
	}
	anySubset := func(ctxs [][]string, big []string) bool {
		for _, c := range ctxs {
			if subset(c, big) {
				return true
			}
		}
		return false
	}
	for _, oc := range low.OCs {
		k := pairKey{oc.A, oc.B}
		if anySubset(ocCovers[k], oc.Context) {
			continue
		}
		// Constancy trivialization at the higher threshold: a valid OFD
		// Y ↦ A or Y ↦ B with Y ⊆ X kills the pair.
		if anySubset(ofdCovers[oc.A], oc.Context) || anySubset(ofdCovers[oc.B], oc.Context) {
			continue
		}
		t.Errorf("OC %v at ε=0.05 neither subsumed nor trivialized at ε=0.15", oc)
	}
}

// Report strings are renderable and mention real column names.
func TestIntegrationReportRendering(t *testing.T) {
	ds := Table1()
	rep, err := Discover(ds, Options{Threshold: 0.12, IncludeOFDs: true})
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, n := range ds.ColumnNames() {
		names[n] = true
	}
	for _, oc := range rep.OCs {
		if !names[oc.A] || !names[oc.B] {
			t.Errorf("OC references unknown columns: %v", oc)
		}
		if !strings.Contains(oc.String(), "∼") {
			t.Errorf("OC string malformed: %q", oc.String())
		}
	}
	for _, ofd := range rep.OFDs {
		if !names[ofd.A] {
			t.Errorf("OFD references unknown column: %v", ofd)
		}
	}
}
