// Binary codec for shard protocol v3 payload frames.
//
// The handshake frames (hello/ack) stay JSON — that is what makes version
// skew detectable across protocol generations (see protocol.go) — but every
// payload frame (dataset/parts/level/result) is a compact binary body:
//
//	byte 0   binMagic (0xB2; never '{', so JSON and binary frames are
//	         distinguishable from the first byte)
//	byte 1   protocol version (3)
//	byte 2   frame type (binDataset | binLevel | binResult | binParts)
//	...      payload
//
// Integers are varints (unsigned where the value is a count/bitmask, zigzag
// where deltas can go negative), float64s are fixed 8-byte little-endian bit
// patterns (bit-exact round trip — removal errors feed byte-identical report
// merging), and rank arrays are width-packed little-endian (1, 2, or 4 bytes
// per rank depending on the column's distinct count). Dataset frames ship the
// exact inputs of dataset.Fingerprint — per column: name, kind, distinct
// values in rank order, dense rank array — so the worker reconstructs columns
// directly (no CSV render/re-parse) and the fingerprint check in the
// handshake proves the transfer lossless.
//
// Every decoder is total: arbitrary bytes produce an error, never a panic or
// an unbounded allocation (counts are validated against the remaining payload
// before any slice is allocated). FuzzDecodeFrame/FuzzDecodeTasks pin this.
package shard

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"time"

	"aod/internal/core"
	"aod/internal/dataset"
	"aod/internal/lattice"
	"aod/internal/partition"
)

const (
	// binMagic is the first byte of every binary v2 frame body.
	binMagic byte = 0xB2

	binDataset byte = 1
	binLevel   byte = 2
	binResult  byte = 3
	binParts   byte = 4
)

// maxWireAttrs bounds per-task attribute indexes and mask word counts: the
// lattice works over AttrSet (uint64), so no well-formed peer ever exceeds 64
// attributes. Enforcing it at decode keeps hostile frames from driving
// out-of-range indexes into downstream pair-set code.
const maxWireAttrs = 64

var errFrameTruncated = errors.New("shard: truncated frame")

// --- encode helpers ---------------------------------------------------------

func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }
func appendVarint(b []byte, v int64) []byte   { return binary.AppendVarint(b, v) }

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendFloat64(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

// appendRows32 encodes an int32 slice as count + zigzag deltas: removal-row
// sets are (near-)sorted, so deltas are tiny, but the encoding is lossless
// for any order.
func appendRows32(b []byte, rows []int32) []byte {
	b = binary.AppendUvarint(b, uint64(len(rows)))
	prev := int64(0)
	for _, r := range rows {
		b = binary.AppendVarint(b, int64(r)-prev)
		prev = int64(r)
	}
	return b
}

// --- decode helpers ---------------------------------------------------------

// wireReader walks a binary frame payload with total bounds checking.
type wireReader struct {
	b   []byte
	off int
}

func (r *wireReader) remaining() int { return len(r.b) - r.off }

func (r *wireReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, errFrameTruncated
	}
	r.off += n
	return v, nil
}

func (r *wireReader) varint() (int64, error) {
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		return 0, errFrameTruncated
	}
	r.off += n
	return v, nil
}

// count reads an element count and validates it against the bytes actually
// left in the payload (each element occupies at least minBytes), so a hostile
// count can never drive a large allocation.
func (r *wireReader) count(minBytes int) (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if v > uint64(r.remaining()/minBytes) {
		return 0, fmt.Errorf("shard: count %d exceeds frame payload", v)
	}
	return int(v), nil
}

func (r *wireReader) take(n int) ([]byte, error) {
	if n < 0 || n > r.remaining() {
		return nil, errFrameTruncated
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *wireReader) byte() (byte, error) {
	if r.remaining() < 1 {
		return 0, errFrameTruncated
	}
	b := r.b[r.off]
	r.off++
	return b, nil
}

func (r *wireReader) string() (string, error) {
	n, err := r.count(1)
	if err != nil {
		return "", err
	}
	b, err := r.take(n)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func (r *wireReader) float64() (float64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), nil
}

func (r *wireReader) rows32() ([]int32, error) {
	n, err := r.count(1)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]int32, n)
	prev := int64(0)
	for i := range out {
		d, err := r.varint()
		if err != nil {
			return nil, err
		}
		prev += d
		if prev < math.MinInt32 || prev > math.MaxInt32 {
			return nil, fmt.Errorf("shard: row index %d outside int32", prev)
		}
		out[i] = int32(prev)
	}
	return out, nil
}

// uvarints reads a count-prefixed []uint64, bounded by max elements.
func (r *wireReader) uvarints(max int) ([]uint64, error) {
	n, err := r.count(1)
	if err != nil {
		return nil, err
	}
	if n > max {
		return nil, fmt.Errorf("shard: %d mask words exceeds bound %d", n, max)
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]uint64, n)
	for i := range out {
		if out[i], err = r.uvarint(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// --- dataset frame ----------------------------------------------------------

// rankWidth picks the narrowest little-endian byte width that can hold every
// rank of a column with the given distinct count.
func rankWidth(distinct int) int {
	switch {
	case distinct <= 1<<8:
		return 1
	case distinct <= 1<<16:
		return 2
	default:
		return 4
	}
}

func encodeDatasetPayload(b []byte, m *datasetMsg) []byte {
	b = appendUvarint(b, uint64(m.Rows))
	b = appendUvarint(b, uint64(len(m.Cols)))
	for _, c := range m.Cols {
		b = appendString(b, c.Name)
		b = append(b, byte(c.Kind))
		switch c.Kind {
		case dataset.KindInt:
			b = appendUvarint(b, uint64(len(c.Ints)))
			prev := int64(0)
			for _, v := range c.Ints {
				// Distinct values are sorted ascending, so deltas are small
				// and positive; zigzag keeps the first value (and any hostile
				// unsorted input) lossless.
				b = appendVarint(b, v-prev)
				prev = v
			}
		case dataset.KindFloat:
			b = appendUvarint(b, uint64(len(c.Floats)))
			for _, v := range c.Floats {
				b = appendFloat64(b, v)
			}
		default:
			b = appendUvarint(b, uint64(len(c.Strings)))
			for _, v := range c.Strings {
				b = appendString(b, v)
			}
		}
		w := rankWidth(distinctOf(c))
		b = append(b, byte(w))
		for _, rk := range c.Ranks {
			switch w {
			case 1:
				b = append(b, byte(rk))
			case 2:
				b = binary.LittleEndian.AppendUint16(b, uint16(rk))
			default:
				b = binary.LittleEndian.AppendUint32(b, uint32(rk))
			}
		}
	}
	return b
}

func distinctOf(c dataset.ColumnData) int {
	switch c.Kind {
	case dataset.KindInt:
		return len(c.Ints)
	case dataset.KindFloat:
		return len(c.Floats)
	default:
		return len(c.Strings)
	}
}

func decodeDatasetPayload(r *wireReader) (*datasetMsg, error) {
	rows64, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if rows64 > uint64(maxFrameBytes) {
		return nil, fmt.Errorf("shard: row count %d exceeds frame limit", rows64)
	}
	rows := int(rows64)
	ncols, err := r.count(1)
	if err != nil {
		return nil, err
	}
	m := &datasetMsg{Rows: rows, Cols: make([]dataset.ColumnData, 0, ncols)}
	for i := 0; i < ncols; i++ {
		var c dataset.ColumnData
		if c.Name, err = r.string(); err != nil {
			return nil, err
		}
		kb, err := r.byte()
		if err != nil {
			return nil, err
		}
		if kb > byte(dataset.KindString) {
			return nil, fmt.Errorf("shard: column %q has unknown kind %d", c.Name, kb)
		}
		c.Kind = dataset.Kind(kb)
		distinct, err := r.count(1)
		if err != nil {
			return nil, err
		}
		if distinct > rows {
			return nil, fmt.Errorf("shard: column %q has %d distinct values over %d rows", c.Name, distinct, rows)
		}
		switch c.Kind {
		case dataset.KindInt:
			if distinct > 0 {
				c.Ints = make([]int64, distinct)
				prev := int64(0)
				for j := range c.Ints {
					d, err := r.varint()
					if err != nil {
						return nil, err
					}
					prev += d
					c.Ints[j] = prev
				}
			}
		case dataset.KindFloat:
			if r.remaining() < 8*distinct {
				return nil, errFrameTruncated
			}
			if distinct > 0 {
				c.Floats = make([]float64, distinct)
				for j := range c.Floats {
					if c.Floats[j], err = r.float64(); err != nil {
						return nil, err
					}
				}
			}
		default:
			if distinct > 0 {
				c.Strings = make([]string, distinct)
				for j := range c.Strings {
					if c.Strings[j], err = r.string(); err != nil {
						return nil, err
					}
				}
			}
		}
		w, err := r.byte()
		if err != nil {
			return nil, err
		}
		if w != 1 && w != 2 && w != 4 {
			return nil, fmt.Errorf("shard: column %q has invalid rank width %d", c.Name, w)
		}
		raw, err := r.take(rows * int(w))
		if err != nil {
			return nil, err
		}
		c.Ranks = make([]int32, rows)
		for j := 0; j < rows; j++ {
			var rk uint32
			switch w {
			case 1:
				rk = uint32(raw[j])
			case 2:
				rk = uint32(binary.LittleEndian.Uint16(raw[2*j:]))
			default:
				rk = binary.LittleEndian.Uint32(raw[4*j:])
			}
			if rk >= uint32(distinct) {
				return nil, fmt.Errorf("shard: column %q row %d has rank %d outside [0,%d)", c.Name, j, rk, distinct)
			}
			c.Ranks[j] = int32(rk)
		}
		m.Cols = append(m.Cols, c)
	}
	return m, nil
}

// --- parts frame ------------------------------------------------------------

// encodePartsPayload ships CSR partitions in the dataset frames' columnar
// idiom: per partition, the attribute set, the row count, and the raw rows
// and offsets arrays as count + zigzag varint deltas (rows are ascending
// within each class and offsets are monotone, so deltas stay small).
func encodePartsPayload(b []byte, m *partsMsg) []byte {
	b = appendUvarint(b, uint64(m.Level))
	b = appendUvarint(b, uint64(len(m.Parts)))
	for _, sp := range m.Parts {
		rows, offsets := sp.Part.RawCSR()
		b = appendUvarint(b, uint64(sp.Set))
		b = appendUvarint(b, uint64(sp.Part.N))
		b = appendRows32(b, rows)
		b = appendRows32(b, offsets)
	}
	return b
}

// decodePartsPayload rebuilds the shipped partitions, rejecting anything
// partition.FromCSR cannot prove structurally valid (offset brackets, class
// sizes ≥ 2, row order and range) — a hostile frame can produce an error but
// never a malformed partition. FuzzDecodePartitionFrame pins totality.
func decodePartsPayload(r *wireReader) (*partsMsg, error) {
	lvl, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if lvl > maxWireAttrs {
		return nil, fmt.Errorf("shard: parts level %d exceeds attribute bound", lvl)
	}
	n, err := r.count(4) // set + rowcount + two array counts at minimum
	if err != nil {
		return nil, err
	}
	m := &partsMsg{Level: int(lvl)}
	if n > 0 {
		m.Parts = make([]core.SeedPartition, 0, n)
	}
	for i := 0; i < n; i++ {
		set, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		nrows, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if nrows > uint64(maxFrameBytes) {
			return nil, fmt.Errorf("shard: partition row count %d exceeds frame limit", nrows)
		}
		rows, err := r.rows32()
		if err != nil {
			return nil, err
		}
		offsets, err := r.rows32()
		if err != nil {
			return nil, err
		}
		p, err := partition.FromCSR(int(nrows), rows, offsets)
		if err != nil {
			return nil, fmt.Errorf("shard: parts frame entry %d: %w", i, err)
		}
		m.Parts = append(m.Parts, core.SeedPartition{Set: lattice.AttrSet(set), Part: p})
	}
	return m, nil
}

// --- level frame ------------------------------------------------------------

func encodeLevelPayload(b []byte, m *levelMsg) []byte {
	b = appendUvarint(b, uint64(m.Level))
	b = appendString(b, m.Trace)
	b = appendUvarint(b, uint64(len(m.Tasks)))
	for i := range m.Tasks {
		t := &m.Tasks[i]
		b = appendUvarint(b, t.Set)
		b = appendUvarint(b, uint64(t.Level))
		b = appendUvarint(b, t.ConstValid)
		b = appendUvarint(b, uint64(len(t.ParentConst)))
		for _, w := range t.ParentConst {
			b = appendUvarint(b, w)
		}
		b = appendUvarint(b, uint64(len(t.OCValid)))
		for _, w := range t.OCValid {
			b = appendUvarint(b, w)
		}
		b = appendUvarint(b, uint64(len(t.OCValidDesc)))
		for _, w := range t.OCValidDesc {
			b = appendUvarint(b, w)
		}
	}
	return b
}

func decodeLevelPayload(r *wireReader) (*levelMsg, error) {
	lvl, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if lvl > maxWireAttrs {
		return nil, fmt.Errorf("shard: level %d exceeds attribute bound", lvl)
	}
	m := &levelMsg{Level: int(lvl)}
	if m.Trace, err = r.string(); err != nil {
		return nil, err
	}
	tasks, err := decodeTasks(r)
	if err != nil {
		return nil, err
	}
	m.Tasks = tasks
	return m, nil
}

func decodeTasks(r *wireReader) ([]core.NodeTask, error) {
	n, err := r.count(3) // a task is at least set+level+constValid
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	tasks := make([]core.NodeTask, n)
	for i := range tasks {
		t := &tasks[i]
		if t.Set, err = r.uvarint(); err != nil {
			return nil, err
		}
		lvl, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if lvl > maxWireAttrs {
			return nil, fmt.Errorf("shard: task level %d exceeds attribute bound", lvl)
		}
		t.Level = int(lvl)
		if t.ConstValid, err = r.uvarint(); err != nil {
			return nil, err
		}
		if t.ParentConst, err = r.uvarints(maxWireAttrs); err != nil {
			return nil, err
		}
		if t.OCValid, err = r.uvarints(maxWireAttrs); err != nil {
			return nil, err
		}
		if t.OCValidDesc, err = r.uvarints(maxWireAttrs); err != nil {
			return nil, err
		}
	}
	return tasks, nil
}

// --- result frame -----------------------------------------------------------

func encodeResultPayload(b []byte, m *resultMsg) ([]byte, error) {
	b = appendString(b, m.Error)
	b = appendUvarint(b, uint64(len(m.Results)))
	for i := range m.Results {
		nr := &m.Results[i]
		b = appendUvarint(b, uint64(nr.Candidates))
		b = appendUvarint(b, nr.NewConst)
		b = appendUvarint(b, uint64(len(nr.OCs)))
		for j := range nr.OCs {
			oc := &nr.OCs[j]
			b = appendUvarint(b, uint64(oc.A))
			b = appendUvarint(b, uint64(oc.B))
			if oc.Descending {
				b = append(b, 1)
			} else {
				b = append(b, 0)
			}
			b = appendFloat64(b, oc.Error)
			b = appendUvarint(b, uint64(oc.Removals))
			b = appendRows32(b, oc.RemovalRows)
		}
		b = appendUvarint(b, uint64(len(nr.OFDs)))
		for j := range nr.OFDs {
			ofd := &nr.OFDs[j]
			b = appendUvarint(b, uint64(ofd.A))
			b = appendFloat64(b, ofd.Error)
			b = appendUvarint(b, uint64(ofd.Removals))
			b = appendRows32(b, ofd.RemovalRows)
		}
		st := &nr.Stats
		b = appendUvarint(b, uint64(st.OCCandidates))
		b = appendUvarint(b, uint64(st.OFDCandidates))
		b = appendUvarint(b, uint64(st.OCSkippedMinimality))
		b = appendUvarint(b, uint64(st.OCSkippedConstancy))
		b = appendUvarint(b, uint64(st.OFDSkipped))
		b = appendUvarint(b, uint64(st.OCSampledRejected))
		b = appendUvarint(b, uint64(st.ValidationTime))
		b = appendUvarint(b, uint64(st.PartitionTime))
	}
	// Worker span trees are nested and rare (tracing only); they ride as a
	// length-prefixed JSON blob rather than warranting a binary schema.
	if len(m.Spans) == 0 {
		b = appendUvarint(b, 0)
		return b, nil
	}
	js, err := json.Marshal(m.Spans)
	if err != nil {
		return nil, fmt.Errorf("shard: encode spans: %w", err)
	}
	b = appendUvarint(b, uint64(len(js)))
	return append(b, js...), nil
}

func decodeResultPayload(r *wireReader) (*resultMsg, error) {
	m := &resultMsg{}
	var err error
	if m.Error, err = r.string(); err != nil {
		return nil, err
	}
	n, err := r.count(2) // a result is at least candidates+newConst+... bytes
	if err != nil {
		return nil, err
	}
	if n > 0 {
		m.Results = make([]core.NodeResult, n)
	}
	for i := range m.Results {
		nr := &m.Results[i]
		cand, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if cand > uint64(math.MaxInt) {
			return nil, fmt.Errorf("shard: candidate count %d overflows", cand)
		}
		nr.Candidates = int(cand)
		if nr.NewConst, err = r.uvarint(); err != nil {
			return nil, err
		}
		nocs, err := r.count(12) // a/b/desc/error8/removals at minimum
		if err != nil {
			return nil, err
		}
		if nocs > 0 {
			nr.OCs = make([]core.TaskOC, nocs)
		}
		for j := range nr.OCs {
			oc := &nr.OCs[j]
			if oc.A, err = r.attrIndex(); err != nil {
				return nil, err
			}
			if oc.B, err = r.attrIndex(); err != nil {
				return nil, err
			}
			d, err := r.byte()
			if err != nil {
				return nil, err
			}
			oc.Descending = d != 0
			if oc.Error, err = r.float64(); err != nil {
				return nil, err
			}
			rem, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			oc.Removals = int(rem)
			if oc.RemovalRows, err = r.rows32(); err != nil {
				return nil, err
			}
		}
		nofds, err := r.count(11)
		if err != nil {
			return nil, err
		}
		if nofds > 0 {
			nr.OFDs = make([]core.TaskOFD, nofds)
		}
		for j := range nr.OFDs {
			ofd := &nr.OFDs[j]
			if ofd.A, err = r.attrIndex(); err != nil {
				return nil, err
			}
			if ofd.Error, err = r.float64(); err != nil {
				return nil, err
			}
			rem, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			ofd.Removals = int(rem)
			if ofd.RemovalRows, err = r.rows32(); err != nil {
				return nil, err
			}
		}
		st := &nr.Stats
		ints := [6]*int{&st.OCCandidates, &st.OFDCandidates, &st.OCSkippedMinimality,
			&st.OCSkippedConstancy, &st.OFDSkipped, &st.OCSampledRejected}
		for _, p := range ints {
			v, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			*p = int(v)
		}
		v, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		st.ValidationTime = time.Duration(v)
		if v, err = r.uvarint(); err != nil {
			return nil, err
		}
		st.PartitionTime = time.Duration(v)
	}
	spanLen, err := r.count(1)
	if err != nil {
		return nil, err
	}
	if spanLen > 0 {
		js, err := r.take(spanLen)
		if err != nil {
			return nil, err
		}
		if err := json.Unmarshal(js, &m.Spans); err != nil {
			return nil, fmt.Errorf("shard: decode spans: %w", err)
		}
	}
	return m, nil
}

// attrIndex reads one attribute index, bounded to the lattice's 64-attribute
// universe so results can never index a pair set out of range.
func (r *wireReader) attrIndex() (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v >= maxWireAttrs {
		return 0, fmt.Errorf("shard: attribute index %d exceeds bound", v)
	}
	return int(v), nil
}
