package core

import (
	"testing"

	"aod/internal/gen"
)

// TestDiscoverAllocBudget pins the end-to-end allocation budget of a small
// discovery run. The partition arena, CSR layout, radix sort, and validator
// scratch put the steady-state per-candidate cost at zero, so what remains
// is per-run setup (table partitions, lattice levels, result assembly) —
// this pin keeps future changes from silently reintroducing per-node or
// per-candidate garbage (the pre-CSR engine allocated ~30× more here).
func TestDiscoverAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation pin is not meaningful with -short")
	}
	tbl := gen.Flight(gen.FlightConfig{Rows: 500, Attrs: 6, Seed: 42})
	cfg := Config{Threshold: 0.10, Validator: ValidatorOptimal}
	if _, err := Discover(tbl, cfg); err != nil {
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(5, func() {
		if _, err := Discover(tbl, cfg); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("Discover allocations per run: %.0f", got)
	// Measured ~411 on the CSR engine (was >12000 pre-CSR); the slack
	// absorbs runtime-version noise without letting per-node garbage back in.
	const budget = 600
	if got > budget {
		t.Errorf("Discover allocates %.0f times per run, budget %d", got, budget)
	}
}
