// Package load is the open-loop service load harness behind cmd/aodload: a
// deterministic request planner (arrival schedule, traffic-class mix,
// zipf-skewed dataset popularity), an open-loop scheduler that fires requests
// on time regardless of completion — so queueing delay is actually observed,
// unlike closed-loop drivers that self-throttle to the server's pace — an
// aodserver HTTP client, and collectors that merge client-observed latencies
// with the server's own /metrics histograms into one aod-bench/v1 report.
//
// Everything random is drawn from one seeded RNG in arrival order, so a
// (seed, rate, duration, mix, zipf) tuple names one exact request sequence:
// two runs with the same configuration plan — and therefore send — identical
// traffic, which is what makes service snapshots comparable across PRs.
package load

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Zipf samples ranks 0..n-1 with P(rank k) ∝ 1/(k+1)^s — the standard
// discrete zipf over a finite universe. s = 0 degenerates to uniform; larger
// s concentrates mass on low ranks (s ≈ 1 is the classic web-popularity
// skew). Sampling is inverse-CDF over a precomputed table, so a draw is one
// Float64 plus a binary search, and the sequence is a deterministic function
// of the *rand.Rand handed to Pick.
type Zipf struct {
	cdf []float64 // cdf[k] = P(rank ≤ k), cdf[n-1] == 1
}

// NewZipf builds the sampler for a universe of n ranks with exponent s ≥ 0.
func NewZipf(n int, s float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("load: zipf universe must be positive, got %d", n)
	}
	if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return nil, fmt.Errorf("load: zipf exponent must be finite and ≥ 0, got %g", s)
	}
	cdf := make([]float64, n)
	var total float64
	for k := 0; k < n; k++ {
		total += math.Pow(float64(k+1), -s)
		cdf[k] = total
	}
	for k := range cdf {
		cdf[k] /= total
	}
	cdf[n-1] = 1 // defend the last bucket against rounding
	return &Zipf{cdf: cdf}, nil
}

// N returns the universe size.
func (z *Zipf) N() int { return len(z.cdf) }

// Pick draws one rank in [0, N) using rng.
func (z *Zipf) Pick(rng *rand.Rand) int {
	u := rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// Prob returns the sampler's exact probability of rank k — the reference the
// statistical tests (and any SLO math) compare empirical frequencies against.
func (z *Zipf) Prob(k int) float64 {
	if k < 0 || k >= len(z.cdf) {
		return 0
	}
	if k == 0 {
		return z.cdf[0]
	}
	return z.cdf[k] - z.cdf[k-1]
}
