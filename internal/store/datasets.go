package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"

	"aod"
)

const datasetExt = ".csv"

// ErrUnserializable is returned by PutDataset for the rare dataset whose CSV
// serialization does not reload to identical content (CSV cannot represent a
// "\r\n" inside a value: the reader folds it to "\n"). Refusing up front is
// honest — acknowledging the upload and quarantining it on reload would be
// silent data loss.
var ErrUnserializable = errors.New("store: dataset does not survive CSV serialization")

// datasetPath is the content-addressed payload file for a fingerprint.
func (s *Store) datasetPath(fingerprint string) string {
	return s.path(datasetsDir, fingerprint+datasetExt)
}

// PutDataset persists the dataset payload (content-addressed by fingerprint,
// so re-uploads of identical content write no second copy) and upserts its
// manifest entry. The returned error means the dataset is NOT durable and
// callers should fail the registration rather than promise persistence.
func (s *Store) PutDataset(meta DatasetMeta, ds *aod.Dataset) error {
	if meta.Fingerprint == "" {
		return errors.New("store: dataset meta has no fingerprint")
	}
	path := s.datasetPath(meta.Fingerprint)
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		return fmt.Errorf("store: encoding dataset %s: %w", meta.ID, err)
	}
	// Prove the payload reloads to the identical content BEFORE
	// acknowledging durability; LoadDataset would otherwise quarantine it
	// on first use after a restart.
	back, err := aod.ReadCSV(bytes.NewReader(buf.Bytes()), aod.CSVOptions{Types: meta.Types})
	if err != nil || back.Fingerprint() != meta.Fingerprint {
		return fmt.Errorf("%w: dataset %s", ErrUnserializable, meta.ID)
	}
	// The file is content-addressed, so byte-identical content already on
	// disk needs no write; anything else there (in-place corruption of an
	// earlier copy) is replaced — a re-upload of the same content heals it.
	// WriteCSV is deterministic, so the comparison is exact.
	if existing, rerr := os.ReadFile(path); rerr != nil || !bytes.Equal(existing, buf.Bytes()) {
		if rerr != nil && !errors.Is(rerr, os.ErrNotExist) {
			return fmt.Errorf("store: probing dataset %s: %w", meta.ID, rerr)
		}
		if err := s.writeFileAtomic(path, buf.Bytes()); err != nil {
			return fmt.Errorf("store: writing dataset %s: %w", meta.ID, err)
		}
	}
	return s.upsertDataset(meta)
}

// LoadDataset reloads the payload for meta, parsing the CSV with the
// manifest's recorded column types (lossless) and verifying that the
// reloaded content re-derives meta.Fingerprint. A payload that fails to
// parse or verify is quarantined, dropped from the manifest, and reported
// as ErrCorrupt; a missing payload is ErrNotFound. Neither is fatal to the
// caller — the dataset is simply no longer served until re-uploaded.
func (s *Store) LoadDataset(meta DatasetMeta) (*aod.Dataset, error) {
	path := s.datasetPath(meta.Fingerprint)
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		s.dropDatasetIfStillMissing(meta.Fingerprint, path)
		return nil, fmt.Errorf("%w: dataset %s", ErrNotFound, meta.ID)
	}
	if err != nil {
		return nil, fmt.Errorf("store: opening dataset %s: %w", meta.ID, err)
	}
	ds, perr := aod.ReadCSV(bytes.NewReader(data), aod.CSVOptions{Types: meta.Types})
	if perr != nil {
		s.condemnDataset(meta, path, data)
		return nil, fmt.Errorf("%w: dataset %s: %v", ErrCorrupt, meta.ID, perr)
	}
	if fp := ds.Fingerprint(); fp != meta.Fingerprint {
		s.condemnDataset(meta, path, data)
		return nil, fmt.Errorf("%w: dataset %s: content fingerprint %s does not match", ErrCorrupt, meta.ID, datasetID(fp))
	}
	return ds, nil
}

// condemnDataset quarantines a payload that failed verification and drops
// its manifest entry — unless the file no longer holds the bytes the caller
// read, meaning a concurrent re-upload already replaced the corrupt copy
// with a healed one that must survive.
func (s *Store) condemnDataset(meta DatasetMeta, path string, read []byte) {
	cur, err := os.ReadFile(path)
	if err == nil && !bytes.Equal(cur, read) {
		return // healed underneath us; the new copy stands
	}
	s.quarantine(path)
	s.dropDataset(meta.Fingerprint)
}
