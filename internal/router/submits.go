package router

import (
	"container/list"
	"sync"
)

// submitRecord is everything needed to replay one job submission on a
// different replica: the original request body (it carries the dataset id
// and canonicalized options, which the replicas hash into the same dedup
// key), plus where the job currently lives. Replay is safe precisely
// because submits are idempotent — a replica that already holds the report
// (its own cache or a peer's) answers without recomputing.
type submitRecord struct {
	body      []byte
	datasetID string
	replica   int    // index of the replica currently hosting the job
	localID   string // the job id on that replica
}

// maxRememberedBody bounds a remembered submit body; submit specs are a
// dataset id plus options, so anything larger is pathological and simply
// loses failover (the job itself is unaffected).
const maxRememberedBody = 64 << 10

// submitMemory is an LRU of gid → submitRecord. It is the only state the
// router holds per job, it is advisory (a miss degrades failover, never
// correctness), and it is bounded — the router stays restartable and
// effectively stateless.
type submitMemory struct {
	mu  sync.Mutex
	cap int
	m   map[string]*list.Element
	l   *list.List // front = most recently used
}

type submitEntry struct {
	gid string
	rec submitRecord
}

func newSubmitMemory(capacity int) *submitMemory {
	return &submitMemory{cap: capacity, m: make(map[string]*list.Element), l: list.New()}
}

func (sm *submitMemory) put(gid string, rec submitRecord) {
	if len(rec.body) > maxRememberedBody {
		return
	}
	sm.mu.Lock()
	defer sm.mu.Unlock()
	if e, ok := sm.m[gid]; ok {
		e.Value.(*submitEntry).rec = rec
		sm.l.MoveToFront(e)
		return
	}
	sm.m[gid] = sm.l.PushFront(&submitEntry{gid: gid, rec: rec})
	for sm.l.Len() > sm.cap {
		old := sm.l.Back()
		sm.l.Remove(old)
		delete(sm.m, old.Value.(*submitEntry).gid)
	}
}

func (sm *submitMemory) get(gid string) (submitRecord, bool) {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	e, ok := sm.m[gid]
	if !ok {
		return submitRecord{}, false
	}
	sm.l.MoveToFront(e)
	return e.Value.(*submitEntry).rec, true
}
