package validate

import (
	"sort"

	"aod/internal/dataset"
)

// TableOrders caches, per attribute, the permutation of all rows sorted by
// the attribute's ranks (ties by row id) — the "sorted partition" device of
// the set-based framework [9]: with the global order precomputed once per
// attribute, an exact OC candidate can be checked by a single linear scan,
// with no per-candidate sorting.
type TableOrders struct {
	tbl    *dataset.Table
	orders [][]int32
}

// NewTableOrders returns a lazy per-attribute order cache for the table.
func NewTableOrders(tbl *dataset.Table) *TableOrders {
	return &TableOrders{tbl: tbl, orders: make([][]int32, tbl.NumCols())}
}

// Order returns rows sorted ascending by attribute a's ranks (ties by row
// id), computing and caching it on first use. Orders are built with a stable
// LSD radix over the dense ranks (comparison sort below the usual cutoff),
// cutting the cold-start cost on wide tables from O(cols · n log n) to
// O(cols · n).
func (to *TableOrders) Order(a int) []int32 {
	if to.orders[a] != nil {
		return to.orders[a]
	}
	n := to.tbl.NumRows()
	ranks := to.tbl.Column(a).Ranks()
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	if n < radixCutoff {
		sort.SliceStable(order, func(i, j int) bool { return ranks[order[i]] < ranks[order[j]] })
	} else {
		maxRank := int32(to.tbl.Column(a).NumDistinct() - 1)
		order = radixSortRowsByRank(order, make([]int32, n), ranks, maxRank)
	}
	to.orders[a] = order
	return order
}

// scanScratch holds the stamped per-class state for ExactOCScan. Two
// monotone counters avoid O(classes) resets: epoch identifies the current
// call (validity of maxPrev), gen identifies the current A-group (validity
// of the pending group maximum).
type scanScratch struct {
	epoch      int32
	gen        int32
	stamp      []int32 // per class: epoch when maxPrev became valid
	maxPrev    []int32 // per class: max B over strictly earlier A-groups
	maxPrevRow []int32
	groupStamp []int32 // per class: gen when the pending group max was set
	groupMax   []int32
	groupRow   []int32
	touched    []int32 // classes touched in the current A-group
}

func (s *scanScratch) reset(numClasses int) {
	if cap(s.stamp) < numClasses {
		s.stamp = make([]int32, numClasses)
		s.maxPrev = make([]int32, numClasses)
		s.maxPrevRow = make([]int32, numClasses)
		s.groupStamp = make([]int32, numClasses)
		s.groupMax = make([]int32, numClasses)
		s.groupRow = make([]int32, numClasses)
	}
	s.stamp = s.stamp[:numClasses]
	s.maxPrev = s.maxPrev[:numClasses]
	s.maxPrevRow = s.maxPrevRow[:numClasses]
	s.groupStamp = s.groupStamp[:numClasses]
	s.groupMax = s.groupMax[:numClasses]
	s.groupRow = s.groupRow[:numClasses]
	s.epoch++
	s.gen++
	if s.epoch <= 0 || s.gen <= 0 { // wrapped: hard reset
		clear(s.stamp)
		clear(s.groupStamp)
		s.epoch, s.gen = 1, 1
	}
	s.touched = s.touched[:0]
}

// ExactOCScan verifies the exact canonical OC X: A ∼ B in a single O(n)
// pass over the precomputed global A-order, given the per-row class ids of
// the context partition (see partition.Stripped.ClassIDs; singleton rows are
// -1 and skipped). It is equivalent to Validator.ExactOC — the sorted-scan
// route trades the per-candidate class sort for a full-table scan, winning
// when the context's non-singleton coverage is large.
func (v *Validator) ExactOCScan(classIDs []int32, numClasses int, orderA []int32, a, b *dataset.Column) (bool, [2]int32) {
	ra, rb := a.Ranks(), b.Ranks()
	s := &v.scan
	s.reset(numClasses)
	prevA := int32(-1)
	for _, row := range orderA {
		c := classIDs[row]
		if c < 0 {
			continue
		}
		if ra[row] != prevA {
			// A-group boundary: fold the previous group's maxima into the
			// strict-predecessor state and open a new group generation.
			for _, tc := range s.touched {
				if s.stamp[tc] != s.epoch || s.groupMax[tc] > s.maxPrev[tc] {
					s.maxPrev[tc] = s.groupMax[tc]
					s.maxPrevRow[tc] = s.groupRow[tc]
					s.stamp[tc] = s.epoch
				}
			}
			s.touched = s.touched[:0]
			s.gen++
			prevA = ra[row]
		}
		if s.stamp[c] == s.epoch && rb[row] < s.maxPrev[c] {
			return false, [2]int32{s.maxPrevRow[c], row}
		}
		if s.groupStamp[c] != s.gen {
			// First touch of this class within the current A-group.
			s.groupStamp[c] = s.gen
			s.groupMax[c] = rb[row]
			s.groupRow[c] = row
			s.touched = append(s.touched, c)
		} else if rb[row] > s.groupMax[c] {
			s.groupMax[c] = rb[row]
			s.groupRow[c] = row
		}
	}
	return true, [2]int32{-1, -1}
}
