// Package shard distributes lattice-level validation across worker
// processes: the coordinator-side Cluster (implementing core.ShardPool) and
// the worker-side Worker speak a small framed protocol over any net.Conn —
// TCP for real deployments (cmd/aodworker), an in-process loopback for tests
// and benchmarks.
//
// The protocol is designed around the paper's observation (after Saxena,
// Golab & Ilyas, PVLDB 2019) that lattice nodes are independent within a
// level given the previous level's state: a session opens with a dataset
// fingerprint handshake (the payload ships only to workers that don't cache
// it, and single-column partitions are built once per worker per dataset),
// after which each lattice level ships only attribute-set tasks and
// validation verdicts — never partitions.
//
// Sequence, per connection (one connection = one job session):
//
//	C → hello   {proto, fingerprint, rows, cols, config}
//	W → ack     {ok, needDataset}
//	C → dataset (columnar rank buffers; only when needDataset)
//	W → ack     {ok}
//	repeat:
//	  C → parts  (coordinator-built context partitions; optional, unanswered)
//	  C → level  (flat task records)
//	  W → result (flat result records)
//
// Framing is a 4-byte big-endian length prefix followed by one frame body.
// Protocol v3 uses two body encodings, distinguishable by the first byte:
//
//   - hello and ack are JSON (body starts with '{'). Keeping the handshake
//     JSON is what makes version skew an explicit rejection rather than a
//     garbage decode: any generation of this protocol can parse any other
//     generation's hello, see a proto number it does not speak, and answer
//     with a clear in-band ack error.
//   - dataset, parts, level, and result are compact binary (body starts with
//     binMagic, 0xB2 — see codec.go), legal only after a successful v3
//     handshake.
//
// A parts frame is fire-and-forget: it carries CSR partitions the coordinator
// already built for the level that immediately follows it, seeding the
// worker's fold memo so the level's tasks skip the recursive re-fold from
// single-attribute partitions. It never gets its own reply — the level's
// result frame answers for the pair — so shipping adds zero round trips.
//
// Errors are in-band (ack.error / result.error); transport failures surface
// as read/write errors and mark the worker dead for the session.
package shard

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"aod/internal/core"
	"aod/internal/dataset"
	"aod/internal/telemetry"
)

// protoVersion guards against coordinator/worker skew: a worker refuses a
// hello whose version it does not speak, and the coordinator treats that
// worker as unusable. Version 2 replaced the JSON payload frames of v1 with
// the binary codec in codec.go (columnar datasets, flat task/result records);
// version 3 added the parts frame (coordinator-shipped context partitions).
const protoVersion = 3

// maxFrameBytes bounds a single frame (the dataset frame dominates; task and
// result frames are small). Oversized frames poison the connection.
const maxFrameBytes = 1 << 30

// frame is the single wire envelope; T selects which payload is set. Only
// hello and ack ever travel as JSON — payload frames are binary, so a JSON
// body claiming to be one decodes with a nil payload and is rejected by the
// type checks at each receive site.
type frame struct {
	T       string      `json:"t"`
	Hello   *helloMsg   `json:"hello,omitempty"`
	Ack     *ackMsg     `json:"ack,omitempty"`
	Dataset *datasetMsg `json:"-"`
	Parts   *partsMsg   `json:"-"`
	Level   *levelMsg   `json:"-"`
	Result  *resultMsg  `json:"-"`
}

// helloMsg opens a job session: the dataset's identity and the discovery
// configuration the worker must validate tasks under.
type helloMsg struct {
	Proto       int         `json:"proto"`
	Fingerprint string      `json:"fingerprint"`
	Rows        int         `json:"rows"`
	Cols        int         `json:"cols"`
	Config      core.Config `json:"config"`
}

// ackMsg answers hello and dataset frames.
type ackMsg struct {
	OK bool `json:"ok"`
	// NeedDataset asks the coordinator to ship the dataset payload (the
	// fingerprint missed the worker's cache).
	NeedDataset bool   `json:"needDataset,omitempty"`
	Error       string `json:"error,omitempty"`
}

// datasetMsg ships the dataset as rank-encoded columns — the exact inputs of
// dataset.Fingerprint — so the worker reconstructs the table directly instead
// of rendering and re-parsing CSV. The round trip is proven lossless by the
// worker comparing the rebuilt table's fingerprint against the hello's.
type datasetMsg struct {
	Rows int
	Cols []dataset.ColumnData
}

// partsMsg ships coordinator-built context partitions for the level frame
// that follows it on the same connection: the worker installs them into its
// fold memo, so the level's tasks resolve those sets by lookup instead of
// re-folding them from single-attribute partitions. Level is the lattice
// level the partitions were shipped for (a cross-check, not a key).
type partsMsg struct {
	Level int
	Parts []core.SeedPartition
}

// levelMsg carries one contiguous slice of a lattice level. Trace, when
// non-empty, is the coordinator's trace ID; the worker echoes it on the
// spans it returns so they stitch into the coordinator's trace.
type levelMsg struct {
	Level int
	Tasks []core.NodeTask
	Trace string
}

// resultMsg answers a levelMsg with the slice's results in task order.
// Spans carries the worker-side span tree for the slice (only when the
// request carried a trace ID), on the worker's own clock — the coordinator
// re-bases them under its RPC span.
type resultMsg struct {
	Results []core.NodeResult
	Spans   []telemetry.WireSpan
	Error   string
}

// writeFrame encodes f and writes it length-prefixed. It returns the number
// of bytes written (header included) for the frame-level telemetry counters.
func writeFrame(w io.Writer, f *frame) (int, error) {
	var body []byte
	switch f.T {
	case "hello", "ack":
		js, err := json.Marshal(f)
		if err != nil {
			return 0, fmt.Errorf("shard: encode %s frame: %w", f.T, err)
		}
		body = js
	case "dataset":
		body = encodeDatasetPayload([]byte{binMagic, protoVersion, binDataset}, f.Dataset)
	case "parts":
		body = encodePartsPayload([]byte{binMagic, protoVersion, binParts}, f.Parts)
	case "level":
		body = encodeLevelPayload([]byte{binMagic, protoVersion, binLevel}, f.Level)
	case "result":
		var err error
		body, err = encodeResultPayload([]byte{binMagic, protoVersion, binResult}, f.Result)
		if err != nil {
			return 0, err
		}
	default:
		return 0, fmt.Errorf("shard: encode unknown frame type %q", f.T)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(body); err != nil {
		return 0, err
	}
	return len(hdr) + len(body), nil
}

// readFrame reads one length-prefixed frame, dispatching on the body's first
// byte: '{' is a JSON handshake frame, binMagic a binary payload frame. It
// returns the number of bytes consumed (header included) alongside the frame.
func readFrame(r io.Reader) (*frame, int, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrameBytes {
		return nil, len(hdr), fmt.Errorf("shard: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, len(hdr), err
	}
	consumed := len(hdr) + len(body)
	f, err := decodeFrame(body)
	return f, consumed, err
}

// decodeFrame decodes one frame body (without the length prefix). It is
// total over arbitrary input — errors, never panics — which FuzzDecodeFrame
// pins.
func decodeFrame(body []byte) (*frame, error) {
	if len(body) == 0 {
		return nil, fmt.Errorf("shard: empty frame")
	}
	if body[0] == '{' {
		var f frame
		if err := json.Unmarshal(body, &f); err != nil {
			return nil, fmt.Errorf("shard: decode frame: %w", err)
		}
		return &f, nil
	}
	if body[0] != binMagic {
		return nil, fmt.Errorf("shard: unrecognized frame encoding (first byte 0x%02x)", body[0])
	}
	if len(body) < 3 {
		return nil, errFrameTruncated
	}
	if body[1] != protoVersion {
		return nil, fmt.Errorf("shard: binary frame for protocol %d (want %d)", body[1], protoVersion)
	}
	rd := &wireReader{b: body[3:]}
	var f frame
	var err error
	switch body[2] {
	case binDataset:
		f.T = "dataset"
		f.Dataset, err = decodeDatasetPayload(rd)
	case binParts:
		f.T = "parts"
		f.Parts, err = decodePartsPayload(rd)
	case binLevel:
		f.T = "level"
		f.Level, err = decodeLevelPayload(rd)
	case binResult:
		f.T = "result"
		f.Result, err = decodeResultPayload(rd)
	default:
		return nil, fmt.Errorf("shard: unknown binary frame type %d", body[2])
	}
	if err != nil {
		return nil, err
	}
	if rd.remaining() != 0 {
		return nil, fmt.Errorf("shard: %d trailing bytes after %s frame", rd.remaining(), f.T)
	}
	return &f, nil
}
