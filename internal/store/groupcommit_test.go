package store

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"aod"
)

// TestGroupCommitBatchesConcurrentWrites pins the fsync-batching mechanics:
// a burst of concurrent report writes lands in fewer commit batches than
// writes (the group actually forms), every write is durable and readable
// afterwards, and a lone write still flushes as its own batch.
func TestGroupCommitBatchesConcurrentWrites(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("key-%d", i)
			if err := s.PutReport(key, &aod.Report{Stats: aod.Stats{Rows: i}}); err != nil {
				t.Errorf("put %s: %v", key, err)
			}
		}(i)
	}
	wg.Wait()

	if got := s.BatchedWrites(); got != n {
		t.Errorf("batched writes = %d, want %d", got, n)
	}
	if batches := s.GroupCommits(); batches == 0 || batches >= n {
		t.Errorf("%d writes flushed in %d batches; group commit never batched", n, batches)
	}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%d", i)
		rep, ok := s.GetReport(key)
		if !ok {
			t.Fatalf("acknowledged report %s is not readable", key)
		}
		if rep.Stats.Rows != i {
			t.Fatalf("report %s round-tripped wrong content: rows=%d", key, rep.Stats.Rows)
		}
	}
}

// TestCrashRecoveryNoAcknowledgedWriteLost is the durability acceptance for
// group commit: a child process writes reports concurrently through the
// batched path and reports each acknowledgement on its pipe strictly after
// PutReport returns; the parent SIGKILLs it mid-burst, reopens the store
// directory, and every acknowledged key must load intact. The whole reports
// directory must also hold only complete envelopes — an unacknowledged
// write may be absent, but never torn.
func TestCrashRecoveryNoAcknowledgedWriteLost(t *testing.T) {
	if dir := os.Getenv("AOD_STORE_CRASH_DIR"); dir != "" {
		crashChild(dir)
		return
	}

	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestCrashRecoveryNoAcknowledgedWriteLost$", "-test.v")
	cmd.Env = append(os.Environ(), "AOD_STORE_CRASH_DIR="+dir)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Collect acknowledged keys until enough have landed to make the kill
	// meaningful, then SIGKILL with writes still in flight.
	var acked []string
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "acked ") {
			continue
		}
		acked = append(acked, strings.TrimPrefix(line, "acked "))
		if len(acked) >= 200 {
			break
		}
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	// Drain so the child's pipe never blocks, then reap it.
	for sc.Scan() {
	}
	cmd.Wait()
	if len(acked) < 200 {
		t.Fatalf("child died after only %d acknowledged writes", len(acked))
	}

	s, err := Open(dir)
	if err != nil {
		t.Fatalf("reopening crashed store: %v", err)
	}
	for _, key := range acked {
		if _, ok := s.GetReport(key); !ok {
			t.Errorf("acknowledged report %q lost in crash", key)
		}
	}
	if q := s.Quarantined(); q != 0 {
		t.Errorf("recovery quarantined %d files: acknowledged or in-flight writes tore", q)
	}
	// No torn files anywhere under the live tree: in-flight writes crash
	// either into tmp/ (swept at Open) or as complete, decodable envelopes.
	ents, err := os.ReadDir(filepath.Join(dir, reportsDir))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		var env reportEnvelope
		if err := s.readJSONFile(filepath.Join(dir, reportsDir, e.Name()), &env); err != nil {
			t.Errorf("report file %s is torn after crash: %v", e.Name(), err)
		}
	}
}

// crashChild is the subprocess body: hammer PutReport from several
// goroutines forever (the parent kills us), acknowledging each durable write
// on stdout only after PutReport returns.
func crashChild(dir string) {
	s, err := Open(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crash child: %v\n", err)
		os.Exit(1)
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				key := fmt.Sprintf("crash-%d-%d", g, i)
				if err := s.PutReport(key, &aod.Report{Stats: aod.Stats{Rows: i}}); err != nil {
					fmt.Fprintf(os.Stderr, "crash child put: %v\n", err)
					os.Exit(1)
				}
				mu.Lock()
				fmt.Printf("acked %s\n", key)
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	// Unreachable: the parent SIGKILLs us. The deadline below only bounds a
	// runaway child if the parent dies first.
	time.Sleep(time.Minute)
	os.Exit(0)
}
