// Package bench is the experiment harness that regenerates the paper's
// evaluation (Figures 2–5 and Exp-1 … Exp-6) on the synthetic workloads of
// internal/gen. Absolute numbers differ from the paper (different hardware,
// synthetic data); the reproduction targets are the qualitative shapes: who
// wins, by roughly what factor, and where behaviour changes (see
// EXPERIMENTS.md).
package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"aod/internal/core"
	"aod/internal/dataset"
	"aod/internal/gen"
)

// Scale selects experiment sizing.
type Scale int

const (
	// ScaleTiny finishes in seconds; used by tests and CI.
	ScaleTiny Scale = iota
	// ScaleSmall finishes in minutes; the default for cmd/aodbench.
	ScaleSmall
	// ScalePaper mirrors the paper's grids (hours; the iterative validator
	// is wall-clock capped and projected, as the paper itself does for the
	// flight dataset).
	ScalePaper
)

// ParseScale maps a flag string to a Scale.
func ParseScale(s string) (Scale, error) {
	switch strings.ToLower(s) {
	case "tiny":
		return ScaleTiny, nil
	case "small":
		return ScaleSmall, nil
	case "paper":
		return ScalePaper, nil
	default:
		return 0, fmt.Errorf("bench: unknown scale %q (want tiny|small|paper)", s)
	}
}

// String names the scale.
func (s Scale) String() string {
	switch s {
	case ScaleTiny:
		return "tiny"
	case ScaleSmall:
		return "small"
	case ScalePaper:
		return "paper"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// tupleGrid returns the |r| grid per dataset for Exp-1.
func (s Scale) tupleGrid(dataset string) []int {
	switch s {
	case ScalePaper:
		if dataset == "flight" {
			return []int{200_000, 400_000, 600_000, 800_000, 1_000_000}
		}
		return []int{100_000, 1_000_000, 2_000_000, 3_000_000, 4_000_000, 5_000_000}
	case ScaleSmall:
		if dataset == "flight" {
			return []int{20_000, 40_000, 60_000, 80_000, 100_000}
		}
		return []int{10_000, 50_000, 100_000, 200_000, 300_000}
	default:
		if dataset == "flight" {
			return []int{2_000, 4_000, 6_000}
		}
		return []int{2_000, 6_000, 10_000}
	}
}

// attrGrid returns the |R| grid per dataset for Exp-2.
func (s Scale) attrGrid(dataset string) []int {
	max := 35
	if dataset == "ncvoter" {
		max = 30
	}
	switch s {
	case ScalePaper:
		out := []int{}
		for a := 5; a <= max; a += 5 {
			out = append(out, a)
		}
		return out
	case ScaleSmall:
		out := []int{}
		for a := 5; a <= min(20, max); a += 5 {
			out = append(out, a)
		}
		return out
	default:
		return []int{4, 6, 8, 10}
	}
}

// thresholdRows returns |r| for the Exp-3 threshold sweep.
func (s Scale) thresholdRows() int {
	switch s {
	case ScalePaper:
		return 10_000
	case ScaleSmall:
		return 10_000
	default:
		return 2_000
	}
}

// exp5Rows returns |r| for the lattice-level experiment (paper: 5M).
func (s Scale) exp5Rows() int {
	switch s {
	case ScalePaper:
		return 5_000_000
	case ScaleSmall:
		return 100_000
	default:
		return 5_000
	}
}

// iterativeCap bounds each iterative-validator discovery run.
func (s Scale) iterativeCap() time.Duration {
	switch s {
	case ScalePaper:
		return 30 * time.Minute
	case ScaleSmall:
		return 2 * time.Minute
	default:
		return 10 * time.Second
	}
}

// Table is a rendered experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// WriteTo renders the table with aligned columns.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var sb strings.Builder
	sb.WriteString(t.Title)
	sb.WriteByte('\n')
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			for p := len(cell); p < widths[i]; p++ {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		sb.WriteString("  note: ")
		sb.WriteString(n)
		sb.WriteByte('\n')
	}
	sb.WriteByte('\n')
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// genTable builds the named dataset at the requested shape.
func genTable(name string, rows, attrs int, seed int64) *dataset.Table {
	if name == "flight" {
		return gen.Flight(gen.FlightConfig{Rows: rows, Attrs: attrs, Seed: seed})
	}
	return gen.NCVoter(gen.NCVoterConfig{Rows: rows, Attrs: attrs, Seed: seed})
}

// runResult is one measured discovery run.
type runResult struct {
	res      *core.Result
	duration time.Duration
	timedOut bool
}

func runDiscovery(tbl *dataset.Table, vk core.ValidatorKind, eps float64, cap time.Duration) runResult {
	cfg := core.Config{
		Threshold: eps,
		Validator: vk,
		TimeLimit: cap,
	}
	start := time.Now()
	res, err := core.Discover(tbl, cfg)
	if err != nil {
		panic("bench: " + err.Error())
	}
	return runResult{res: res, duration: time.Since(start), timedOut: res.Stats.TimedOut}
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// projectQuadratic extrapolates a timed-out run from the last completed
// (n, t) point assuming t ∝ n² — the iterative validator's dominating term —
// mirroring the paper's projection of the flight iterative curve.
func projectQuadratic(lastN int, lastT time.Duration, n int) time.Duration {
	if lastN <= 0 {
		return 0
	}
	ratio := float64(n) / float64(lastN)
	return time.Duration(float64(lastT) * ratio * ratio)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
