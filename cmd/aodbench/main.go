// Command aodbench regenerates the paper's experiments (Figures 2–5,
// Exp-1 … Exp-6) on the synthetic workloads, and snapshots the repo's named
// perf workloads as machine-readable JSON.
//
// Usage:
//
//	aodbench [-exp all|1|2|3|4|5|6] [-scale tiny|small|paper] [-seed N] [-out FILE]
//	aodbench -json BENCH_4.json [-seed N]
//
// Examples:
//
//	aodbench -exp 3 -scale small
//	aodbench -json BENCH_4.json   # next perf-trajectory snapshot
//
// The -json mode measures a fixed set of named workloads (partition product,
// validators, end-to-end discovery) with the testing harness and writes
// ns/op, bytes/op and allocs/op per workload. Snapshots committed as
// BENCH_<n>.json at the repo root accumulate the perf trajectory across PRs.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"aod/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, 1, 2, 3, 4, 5, 6")
	scaleFlag := flag.String("scale", "tiny", "workload scale: tiny, small, paper")
	seed := flag.Int64("seed", 42, "generator seed")
	out := flag.String("out", "", "also write results to this file")
	jsonOut := flag.String("json", "", "measure the named perf workloads and write machine-readable results to this file (BENCH_<n>.json)")
	flag.Parse()

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("aodbench -json — seed=%d started=%s\n", *seed, time.Now().Format(time.RFC3339))
		start := time.Now()
		err = bench.RunJSON(f, os.Stdout, *seed)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			os.Remove(*jsonOut) // don't leave a truncated snapshot behind
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s in %s\n", *jsonOut, time.Since(start).Round(time.Millisecond))
		return
	}

	scale, err := bench.ParseScale(*scaleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	fmt.Fprintf(w, "aodbench — scale=%s seed=%d started=%s\n\n", scale, *seed, time.Now().Format(time.RFC3339))
	start := time.Now()
	switch *exp {
	case "all":
		bench.All(w, scale, *seed)
	case "1":
		bench.Exp1(w, scale, *seed)
	case "2":
		bench.Exp2(w, scale, *seed)
	case "3":
		bench.Exp3(w, scale, *seed)
	case "4":
		bench.Exp4(w, scale, *seed)
	case "5":
		bench.Exp5(w, scale, *seed)
	case "6":
		bench.Exp6(w, scale, *seed)
	default:
		fmt.Fprintf(os.Stderr, "aodbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	fmt.Fprintf(w, "total harness time: %s\n", time.Since(start).Round(time.Millisecond))
}
