package validate

import (
	"aod/internal/dataset"
	"aod/internal/partition"
)

// IterativeAOC is Algorithm 1 of the paper — the approximate-OC validator of
// Szlichta et al. [9, 10] that the paper's optimal algorithm replaces. Within
// each context class it orders tuples by [A asc, B asc], computes per-tuple
// swap counts by counting inversions of the B-projection (line 4), and then
// repeatedly removes a tuple with the largest swap count, updating the counts
// of the remaining tuples (lines 6–15), until no swaps remain or the removal
// budget ε·|r| is exceeded (in which case the candidate is INVALID — reported
// here as Valid=false with Aborted=true).
//
// Properties faithfully reproduced:
//   - runtime O(n log n + ε n²): each removal costs O(m) to update counts;
//   - the removal set is NOT guaranteed minimal (greedy can overestimate —
//     Example 3.1), so Result.Removals can exceed OptimalAOC's.
//
// Tie-breaking follows the paper's "order t by swapCnt ASC … t.dropLast()"
// with a stable order: among maximal-count tuples, the one latest in the
// current [A asc, B asc] order is removed.
func (v *Validator) IterativeAOC(ctx *partition.Stripped, a, b *dataset.Column, opts Options) Result {
	n := ctx.N
	budget := removalBudget(opts.Threshold, n)
	ra, rb := a.Ranks(), b.Ranks()
	removals := 0
	aborted := false
	var removed []int32

	maxRank := int32(b.NumDistinct())
	for ci, nc := 0, ctx.NumClasses(); ci < nc; ci++ {
		cls := ctx.Class(ci)
		v.sortClass(cls, ra, rb, false, 0)
		m := len(cls)
		cnt, _ := v.inv.Counts(v.b, maxRank)
		if cap(v.alive) < m {
			v.alive = make([]bool, m)
		}
		alive := v.alive[:m]
		for i := range alive {
			alive[i] = true
		}
		for {
			// Find the max-count tuple; ties go to the largest position
			// (paper: stable ascending sort by count, then drop the last).
			best, bestCnt := -1, int32(0)
			for i := 0; i < m; i++ {
				if alive[i] && cnt[i] >= bestCnt && cnt[i] > 0 {
					best, bestCnt = i, cnt[i]
				}
			}
			if best < 0 {
				break // no swaps remain in this class
			}
			alive[best] = false
			removals++
			if opts.CollectRemovals {
				removed = append(removed, v.rows[best])
			}
			if removals > budget && !opts.ComputeFullError {
				aborted = true
				break
			}
			// Update the counts of remaining tuples that formed a swap with
			// the removed tuple (lines 9–11). Positions are in [A asc, B asc]
			// order, so position p < q is a swap iff A differs and B inverts.
			for i := 0; i < m; i++ {
				if !alive[i] {
					continue
				}
				if i < best {
					if v.a[i] != v.a[best] && v.b[best] < v.b[i] {
						cnt[i]--
					}
				} else if i > best {
					if v.a[i] != v.a[best] && v.b[i] < v.b[best] {
						cnt[i]--
					}
				}
			}
		}
		if aborted {
			break
		}
	}
	return finish(removals, n, opts, aborted, removed)
}
