package load

import (
	"sync"
	"time"

	"aod/internal/telemetry"
)

// Collector accumulates client-observed outcomes per traffic class. All
// methods are safe for concurrent use by the fire goroutines.
type Collector struct {
	mu      sync.Mutex
	classes [numClasses]classAcc
}

type classAcc struct {
	samples    []float64 // end-to-end latency of completed requests, ns
	completed  uint64
	shed       uint64 // 503: server backpressure
	failed     uint64 // job reached failed/canceled
	errors     uint64 // client-side protocol errors (unexpected status, bad frames)
	timedOut   uint64 // still in flight when the drain deadline passed
	retried    uint64 // submit attempts a fronting router absorbed beyond the first
	failedOver uint64 // mid-stream router failovers to another replica
}

// Observe records one completed request's end-to-end latency.
func (c *Collector) Observe(class Class, d time.Duration) {
	c.mu.Lock()
	acc := &c.classes[class]
	acc.completed++
	acc.samples = append(acc.samples, float64(d))
	c.mu.Unlock()
}

// Shed records one 503-rejected request.
func (c *Collector) Shed(class Class) { c.count(class, func(a *classAcc) { a.shed++ }) }

// Failed records a job that terminated failed or canceled.
func (c *Collector) Failed(class Class) { c.count(class, func(a *classAcc) { a.failed++ }) }

// ProtocolError records a client-side protocol error.
func (c *Collector) ProtocolError(class Class) { c.count(class, func(a *classAcc) { a.errors++ }) }

// TimedOut records a request abandoned at the drain deadline.
func (c *Collector) TimedOut(class Class) { c.count(class, func(a *classAcc) { a.timedOut++ }) }

// Routed records router work done on the request's behalf: n submit retries
// and m mid-stream failovers. Both are zero for direct-to-server runs, so
// recording is unconditional.
func (c *Collector) Routed(class Class, retried, failedOver int) {
	if retried <= 0 && failedOver <= 0 {
		return
	}
	c.count(class, func(a *classAcc) {
		a.retried += uint64(retried)
		a.failedOver += uint64(failedOver)
	})
}

func (c *Collector) count(class Class, f func(*classAcc)) {
	c.mu.Lock()
	f(&c.classes[class])
	c.mu.Unlock()
}

// ClassResult is the per-class client-side summary of a finished run.
type ClassResult struct {
	Class          Class         `json:"class"`
	Completed      uint64        `json:"completed"`
	Shed           uint64        `json:"shed"`
	Failed         uint64        `json:"failed"`
	ProtocolErrors uint64        `json:"protocolErrors"`
	TimedOut       uint64        `json:"timedOut"`
	Retried        uint64        `json:"retried,omitempty"`
	FailedOver     uint64        `json:"failedOver,omitempty"`
	P50            time.Duration `json:"p50Ns"`
	P99            time.Duration `json:"p99Ns"`
	P999           time.Duration `json:"p999Ns"`
}

// Results summarizes every class: completed counts, error partitions, and
// exact client-observed p50/p99/p999 over the raw samples.
func (c *Collector) Results() []ClassResult {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ClassResult, 0, numClasses)
	for _, class := range Classes() {
		acc := &c.classes[class]
		r := ClassResult{
			Class:          class,
			Completed:      acc.completed,
			Shed:           acc.shed,
			Failed:         acc.failed,
			ProtocolErrors: acc.errors,
			TimedOut:       acc.timedOut,
			Retried:        acc.retried,
			FailedOver:     acc.failedOver,
		}
		if len(acc.samples) > 0 {
			// ExactQuantile sorts in place; work on a copy so Results is
			// repeatable.
			samples := append([]float64(nil), acc.samples...)
			r.P50 = time.Duration(telemetry.ExactQuantile(samples, 0.50))
			r.P99 = time.Duration(telemetry.ExactQuantile(samples, 0.99))
			r.P999 = time.Duration(telemetry.ExactQuantile(samples, 0.999))
		}
		out = append(out, r)
	}
	return out
}
