package validate

import "slices"

// pairKV packs one tuple's composite sort key with its row id. The key is
// (A-rank << 32) | B-key, so ascending key order is exactly the
// [A asc, B asc] (or, with a flipped B-key, [A asc, B desc]) tuple order
// every validator needs. Rank values fit in 31 bits (ranks are dense in
// [0, rows)), so the packing is lossless.
type pairKV struct {
	key uint64
	row int32
}

// radixCutoff is the class size below which the LSD radix sort loses to a
// comparison sort's lower constant factor.
const radixCutoff = 64

// sortPairs sorts v.kv[:m] ascending by key. Ties (equal (A,B) projections)
// are broken by ascending row id in both branches: the comparison fallback
// compares rows explicitly, and the LSD radix sort is stable over the
// initially row-ascending load order — so the result is identical and fully
// deterministic either way.
func (v *Validator) sortPairs(m int, maxKey uint64) {
	kv := v.kv[:m]
	if m <= radixCutoff {
		slices.SortFunc(kv, func(x, y pairKV) int {
			switch {
			case x.key < y.key:
				return -1
			case x.key > y.key:
				return 1
			case x.row < y.row:
				return -1
			case x.row > y.row:
				return 1
			}
			return 0
		})
		return
	}
	src, dst := kv, v.kvTmp[:m]
	swapped := false
	var cnt [256]int32
	for shift := uint(0); maxKey>>shift != 0; shift += 8 {
		clear(cnt[:])
		for i := range src {
			cnt[uint8(src[i].key>>shift)]++
		}
		if cnt[uint8(src[0].key>>shift)] == int32(m) {
			continue // every key shares this digit: nothing to move
		}
		var sum int32
		for d := range cnt {
			c := cnt[d]
			cnt[d] = sum
			sum += c
		}
		for i := range src {
			d := uint8(src[i].key >> shift)
			dst[cnt[d]] = src[i]
			cnt[d]++
		}
		src, dst = dst, src
		swapped = !swapped
	}
	if swapped {
		// An odd number of scatter passes left the result in kvTmp's backing
		// array; swap the scratch headers instead of copying.
		v.kv, v.kvTmp = v.kvTmp, v.kv
	}
}

// radixSortRowsByRank stably sorts order (row ids, loaded ascending) by
// ranks[row] with an LSD byte-radix over the int32 rank keys — the
// cold-start path behind TableOrders: building a global per-attribute order
// with a comparison sort dominated sorted-scan startup on wide tables. Ranks
// are dense in [0, maxRank], so constant high bytes are skipped. Stability
// over the ascending load order keeps ties in row order, exactly like the
// comparison sort it replaces. Returns the sorted slice (which may be the
// scratch buffer).
func radixSortRowsByRank(order, tmp []int32, ranks []int32, maxRank int32) []int32 {
	n := len(order)
	src, dst := order, tmp
	var cnt [256]int32
	for shift := uint(0); shift < 32 && maxRank>>shift != 0; shift += 8 {
		clear(cnt[:])
		for _, row := range src {
			cnt[uint8(ranks[row]>>shift)]++
		}
		if cnt[uint8(ranks[src[0]]>>shift)] == int32(n) {
			continue // every key shares this digit: nothing to move
		}
		var sum int32
		for d := range cnt {
			c := cnt[d]
			cnt[d] = sum
			sum += c
		}
		for _, row := range src {
			d := uint8(ranks[row] >> shift)
			dst[cnt[d]] = row
			cnt[d]++
		}
		src, dst = dst, src
	}
	return src
}

// grow ensures the per-class scratch holds m tuples.
func (v *Validator) grow(m int) {
	if cap(v.kv) < m {
		v.kv = make([]pairKV, m)
		v.kvTmp = make([]pairKV, m)
		v.a = make([]int32, m)
		v.b = make([]int32, m)
		v.rows = make([]int32, m)
	}
}

// loadPairs fills v.kv with the class rows' keys and returns the maximum key
// (bounding the radix passes). flip is the B-key reflection base for the
// descending tie order (B-rank r maps to flip-r); ignored when !bDesc.
func (v *Validator) loadPairs(cls []int32, ra, rb []int32, bDesc bool, flip int32) uint64 {
	v.grow(len(cls))
	var maxKey uint64
	if bDesc {
		for i, row := range cls {
			k := uint64(uint32(ra[row]))<<32 | uint64(uint32(flip-rb[row]))
			v.kv[i] = pairKV{key: k, row: row}
			if k > maxKey {
				maxKey = k
			}
		}
	} else {
		for i, row := range cls {
			k := uint64(uint32(ra[row]))<<32 | uint64(uint32(rb[row]))
			v.kv[i] = pairKV{key: k, row: row}
			if k > maxKey {
				maxKey = k
			}
		}
	}
	return maxKey
}

// decodePairs unpacks the sorted keys into the v.a / v.b / v.rows
// projections the validators consume.
func (v *Validator) decodePairs(m int, bDesc bool, flip int32) {
	v.a, v.b, v.rows = v.a[:m], v.b[:m], v.rows[:m]
	for i := 0; i < m; i++ {
		kv := v.kv[i]
		v.a[i] = int32(kv.key >> 32)
		bb := int32(uint32(kv.key))
		if bDesc {
			bb = flip - bb
		}
		v.b[i] = bb
		v.rows[i] = kv.row
	}
}

// sortClass orders the class by [A asc, B asc] (or [A asc, B desc] when
// bDesc) into v.a / v.b / v.rows — the allocation-free replacement for the
// interface-based sort.Sort(&pairSorter{...}) of the pre-radix validators.
func (v *Validator) sortClass(cls []int32, ra, rb []int32, bDesc bool, flip int32) {
	maxKey := v.loadPairs(cls, ra, rb, bDesc, flip)
	v.sortPairs(len(cls), maxKey)
	v.decodePairs(len(cls), bDesc, flip)
}
