module aod

go 1.24
