package order

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"aod/internal/dataset"
	"aod/internal/validate"
)

func mustBuild(t *testing.T, b *dataset.Builder) *dataset.Table {
	t.Helper()
	tbl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestDiscoverFindsMonotonePair(t *testing.T) {
	// b = 2a + 1: [a] ↦ [b] and [b] ↦ [a] both hold.
	a := []int64{5, 3, 9, 1, 7}
	bb := []int64{11, 7, 19, 3, 15}
	tbl := mustBuild(t, dataset.NewBuilder().AddInts("a", a).AddInts("b", bb))
	res, err := Discover(tbl, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ODs) != 2 {
		t.Fatalf("ODs = %v, want both directions", res.ODs)
	}
}

func TestSplitRepairedByExtendingLHS(t *testing.T) {
	// [a] ↦ [c] fails with splits only (ties in a with different c, in
	// increasing order), but [a,b] ↦ [c] holds.
	a := []int64{1, 1, 2, 2}
	b := []int64{1, 2, 1, 2}
	c := []int64{10, 20, 30, 40}
	tbl := mustBuild(t, dataset.NewBuilder().AddInts("a", a).AddInts("b", b).AddInts("c", c))
	if got := classify(tbl, []int{0}, []int{2}); got != splitOnly {
		t.Fatalf("classify([a],[c]) = %v, want splitOnly", got)
	}
	res, err := Discover(tbl, Config{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, od := range res.ODs {
		if len(od.X) == 2 && od.X[0] == 0 && od.X[1] == 1 && len(od.Y) == 1 && od.Y[0] == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("[a,b] ↦ [c] not found; ODs: %v", res.ODs)
	}
}

func TestSwapPrunes(t *testing.T) {
	// a and b are anti-correlated: swaps everywhere, nothing discoverable
	// from ([a],[b]) and the subtree must be pruned.
	a := []int64{1, 2, 3, 4}
	b := []int64{4, 3, 2, 1}
	tbl := mustBuild(t, dataset.NewBuilder().AddInts("a", a).AddInts("b", b))
	res, err := Discover(tbl, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ODs) != 0 {
		t.Errorf("ODs = %v, want none", res.ODs)
	}
	if res.PrunedBySwap == 0 {
		t.Error("expected swap pruning to trigger")
	}
}

func TestAllReportedODsHold(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 40; iter++ {
		b := dataset.NewBuilder()
		rows := 2 + rng.Intn(25)
		attrs := 2 + rng.Intn(4)
		for c := 0; c < attrs; c++ {
			vals := make([]int64, rows)
			for i := range vals {
				vals[i] = int64(rng.Intn(4))
			}
			b.AddInts(fmt.Sprintf("c%d", c), vals)
		}
		tbl, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		res, err := Discover(tbl, Config{MaxDepth: 3})
		if err != nil {
			t.Fatal(err)
		}
		for _, od := range res.ODs {
			if ok, w := validate.ExactListOD(tbl, od.X, od.Y); !ok {
				t.Fatalf("iter %d: reported OD %v does not hold (witness %v)", iter, od, w)
			}
		}
	}
}

func TestPrefixMinimality(t *testing.T) {
	// If [a] ↦ [c] holds, [a,b] ↦ [c] must not be reported.
	a := []int64{1, 2, 3, 4}
	b := []int64{5, 6, 7, 8}
	c := []int64{2, 4, 6, 8}
	tbl := mustBuild(t, dataset.NewBuilder().AddInts("a", a).AddInts("b", b).AddInts("c", c))
	res, err := Discover(tbl, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, od := range res.ODs {
		if len(od.X) > 1 {
			// Extending only happens after a split; with all-distinct a
			// there is never a split, so X must stay singleton.
			t.Errorf("non-minimal OD reported: %v", od)
		}
	}
}

func TestMaxDepthBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	b := dataset.NewBuilder()
	for c := 0; c < 5; c++ {
		vals := make([]int64, 30)
		for i := range vals {
			vals[i] = int64(rng.Intn(2))
		}
		b.AddInts(fmt.Sprintf("c%d", c), vals)
	}
	tbl := mustBuild(t, b)
	res, err := Discover(tbl, Config{MaxDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, od := range res.ODs {
		if len(od.X) > 2 {
			t.Errorf("OD %v exceeds depth 2", od)
		}
	}
}

func TestErrors(t *testing.T) {
	tbl := mustBuild(t, dataset.NewBuilder().AddInts("a", []int64{1}))
	if _, err := Discover(tbl, Config{}); err == nil {
		t.Error("want error for single attribute")
	}
}

func TestTimeLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b := dataset.NewBuilder()
	for c := 0; c < 10; c++ {
		vals := make([]int64, 5000)
		for i := range vals {
			vals[i] = int64(rng.Intn(3))
		}
		b.AddInts(fmt.Sprintf("c%d", c), vals)
	}
	tbl := mustBuild(t, b)
	res, err := Discover(tbl, Config{MaxDepth: 4, TimeLimit: time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Skip("machine too fast; skipping")
	}
}

func TestODFormatting(t *testing.T) {
	od := OD{X: []int{0, 1}, Y: []int{2}}
	if got := od.String(); got != "[0,1] ↦ [2]" {
		t.Errorf("String = %q", got)
	}
	if got := od.Format([]string{"a", "b", "c"}); got != "[a,b] ↦ [c]" {
		t.Errorf("Format = %q", got)
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	b := dataset.NewBuilder()
	for c := 0; c < 4; c++ {
		vals := make([]int64, 40)
		for i := range vals {
			vals[i] = int64(rng.Intn(3))
		}
		b.AddInts(fmt.Sprintf("c%d", c), vals)
	}
	tbl := mustBuild(t, b)
	r1, _ := Discover(tbl, Config{})
	r2, _ := Discover(tbl, Config{})
	if len(r1.ODs) != len(r2.ODs) {
		t.Fatal("non-deterministic OD count")
	}
	for i := range r1.ODs {
		if r1.ODs[i].String() != r2.ODs[i].String() {
			t.Fatalf("OD %d differs", i)
		}
	}
}
