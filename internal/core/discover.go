package core

import (
	"context"
	"time"

	"aod/internal/dataset"
	"aod/internal/lattice"
	"aod/internal/partition"
	"aod/internal/validate"
)

// Discover runs the level-wise discovery framework over the table and
// returns the complete, minimal set of verified dependencies under the
// configured validator and threshold (see the package comment for the exact
// semantics and caveats of the iterative validator).
func Discover(tbl *dataset.Table, cfg Config) (*Result, error) {
	return DiscoverContext(context.Background(), tbl, cfg)
}

// DiscoverContext is Discover with cooperative cancellation: the context is
// polled between candidate validations, so a canceled run stops within one
// validation's latency instead of finishing the lattice. On cancellation the
// partial result is returned with Stats.Canceled set and a nil error — the
// same contract as a TimeLimit abort (callers that need the distinction can
// inspect ctx.Err()).
func DiscoverContext(ctx context.Context, tbl *dataset.Table, cfg Config) (*Result, error) {
	numAttrs := tbl.NumCols()
	if err := cfg.Validate(numAttrs); err != nil {
		return nil, err
	}
	eng := &engine{
		ctx:      ctx,
		tbl:      tbl,
		cfg:      cfg,
		eps:      cfg.effectiveThreshold(),
		numAttrs: numAttrs,
		v:        validate.New(),
		arena:    partition.NewArena(),
		start:    time.Now(),
	}
	if cfg.UseSortedScan && cfg.Validator == ValidatorExact {
		eng.orders = validate.NewTableOrders(tbl)
	}
	res := eng.run()
	res.Stats.TotalTime = time.Since(eng.start)
	res.Stats.Rows = tbl.NumRows()
	res.Stats.Attrs = numAttrs
	return res, nil
}

type engine struct {
	ctx      context.Context // nil means non-cancellable (Background)
	tbl      *dataset.Table
	cfg      Config
	eps      float64
	numAttrs int
	v        *validate.Validator
	// arena recycles the CSR buffers of released lattice levels into the
	// next level's partition products, keeping steady-state traversal
	// nearly allocation-free.
	arena   *partition.Arena
	singles []*partition.Stripped
	orders   *validate.TableOrders // non-nil only under UseSortedScan
	start    time.Time
	deadline time.Time
	res      *Result
}

func (e *engine) run() *Result {
	e.res = &Result{}
	st := &e.res.Stats
	st.OCsFoundPerLevel = make([]int, e.numAttrs+1)
	st.OFDsFoundPerLevel = make([]int, e.numAttrs+1)
	if e.cfg.TimeLimit > 0 {
		e.deadline = e.start.Add(e.cfg.TimeLimit)
	}

	t0 := time.Now()
	e.singles = make([]*partition.Stripped, e.numAttrs)
	for a := 0; a < e.numAttrs; a++ {
		// Polled per column so cancellation doesn't pay for the whole
		// O(cols · rows log rows) startup phase on large tables.
		if e.aborted() {
			st.PartitionTime += time.Since(t0)
			return e.res
		}
		e.singles[a] = partition.Single(e.tbl.Column(a))
	}
	st.PartitionTime += time.Since(t0)

	l0 := lattice.Level0(e.tbl.NumRows(), e.numAttrs)
	l1 := lattice.Level1(l0, e.tbl, e.singles)

	maxLevel := e.numAttrs
	if e.cfg.MaxLevel > 0 && e.cfg.MaxLevel < maxLevel {
		maxLevel = e.cfg.MaxLevel
	}

	// Level 1: OFD candidates with the empty context.
	prev2, prev := (*lattice.Level)(nil), l0
	cur := l1
	for cur.Number <= maxLevel && len(cur.Nodes) > 0 {
		st.LevelsProcessed++
		candidates := 0
		for _, node := range cur.Nodes {
			if e.aborted() {
				return e.res
			}
			st.NodesProcessed++
			candidates += e.processNode(node, prev, prev2)
		}
		if e.aborted() {
			return e.res
		}
		// A candidate-free level stays candidate-free at every deeper level
		// (validity state is upward-closed), so discovery can stop: this is
		// the early termination that makes AOD discovery faster than exact
		// OD discovery when dependencies concentrate at low levels (Exp-5).
		if candidates == 0 {
			st.EarlyStopped = cur.Number < maxLevel
			break
		}
		if cur.Number == maxLevel {
			break
		}
		next := lattice.NextLevel(cur, e.numAttrs)
		if !e.cfg.KeepPartitions && prev2 != nil {
			for _, n := range prev2.Nodes {
				n.ReleasePartition(e.arena)
			}
		}
		prev2, prev, cur = prev, cur, next
	}
	return e.res
}

// aborted reports that the run must stop — the TimeLimit deadline passed or
// the caller's context was canceled — and records the cause in the stats. It
// is polled between candidate validations, so an abort takes effect within
// one validation's latency.
func (e *engine) aborted() bool {
	if !e.deadline.IsZero() && time.Now().After(e.deadline) {
		e.res.Stats.TimedOut = true
		return true
	}
	if e.ctx != nil && e.ctx.Err() != nil {
		e.res.Stats.Canceled = true
		return true
	}
	return false
}

// processNode examines all candidates hosted at the node: OFDs
// (Set\{D}): [] ↦ D for D ∈ Set, and OCs (Set\{A,B}): A ∼ B for pairs
// {A,B} ⊆ Set. It returns the number of candidates validated (for the
// early-stop rule).
func (e *engine) processNode(node *lattice.Node, parents, grandparents *lattice.Level) int {
	st := &e.res.Stats
	candidates := 0

	// --- Propagate validity state from parents. ------------------------
	if e.cfg.Bidirectional && node.OCValidDesc == nil {
		node.OCValidDesc = lattice.NewPairSet(e.numAttrs)
	}
	var propagatedConst lattice.AttrSet
	node.Set.ForEach(func(c int) {
		if p := parents.Lookup(node.Set.Remove(c)); p != nil {
			propagatedConst = propagatedConst.Union(p.ConstValid)
			node.OCValid.UnionWith(p.OCValid)
			if node.OCValidDesc != nil && p.OCValidDesc != nil {
				node.OCValidDesc.UnionWith(p.OCValidDesc)
			}
		}
	})
	node.ConstValid = propagatedConst

	// --- OFD candidates. -------------------------------------------------
	attrs := node.Set.Attrs()
	for _, d := range attrs {
		if e.aborted() {
			return candidates
		}
		if propagatedConst.Has(d) {
			// A strict sub-context already has a valid OFD for d: any OFD
			// here is valid but non-minimal. Skip validation entirely —
			// unless the pruning ablation wants the cost measured.
			st.OFDSkipped++
			if e.cfg.DisablePruning {
				parent := parents.Lookup(node.Set.Remove(d))
				ctx := e.materialize(parent)
				st.OFDCandidates++
				candidates++
				t0 := time.Now()
				e.validateOFD(ctx, e.tbl.Column(d))
				st.ValidationTime += time.Since(t0)
			}
			continue
		}
		parent := parents.Lookup(node.Set.Remove(d))
		ctx := e.materialize(parent)
		st.OFDCandidates++
		candidates++
		t0 := time.Now()
		r := e.validateOFD(ctx, e.tbl.Column(d))
		st.ValidationTime += time.Since(t0)
		if r.Valid {
			node.ConstValid = node.ConstValid.Add(d)
			st.OFDsFoundPerLevel[node.Level]++
			if e.cfg.IncludeOFDs {
				ofd := OFD{
					Context:  node.Set.Remove(d),
					A:        d,
					Error:    r.Error,
					Removals: r.Removals,
					Level:    node.Level,
					Score:    Score(node.Level-1, r.Error),
				}
				if e.cfg.CollectRemovalSets {
					full := e.v.ApproxOFD(ctx, e.tbl.Column(d),
						validate.Options{Threshold: e.eps, CollectRemovals: true})
					ofd.RemovalRows = full.RemovalRows
				}
				e.res.OFDs = append(e.res.OFDs, ofd)
			}
		}
	}

	// --- OC candidates (levels >= 2). -------------------------------------
	if node.Level < 2 {
		return candidates
	}
	directions := []bool{false}
	if e.cfg.Bidirectional {
		directions = []bool{false, true}
	}
	for i := 0; i < len(attrs); i++ {
		for j := i + 1; j < len(attrs); j++ {
			a, b := attrs[i], attrs[j]
			for _, desc := range directions {
				if e.aborted() {
					return candidates
				}
				validSet := node.OCValid
				if desc {
					validSet = node.OCValidDesc
				}
				skip := false
				if validSet.Has(a, b) {
					// Valid in a sub-context: non-minimal here and
					// everywhere above (minimality pruning).
					st.OCSkippedMinimality++
					skip = true
				} else {
					pa := parents.Lookup(node.Set.Remove(b)) // contains a
					pb := parents.Lookup(node.Set.Remove(a))
					if pa.ConstValid.Has(a) || pb.ConstValid.Has(b) {
						// Constancy of a side within the OC's context (or a
						// subset) trivializes the OC in both directions
						// (e_OC ≤ e_OFD); never minimal.
						st.OCSkippedConstancy++
						skip = true
					}
				}
				if skip {
					if e.cfg.DisablePruning {
						gp := grandparents.Lookup(node.Set.Remove(a).Remove(b))
						ctx := e.materialize(gp)
						st.OCCandidates++
						candidates++
						t0 := time.Now()
						e.validateOCAt(gp, ctx, a, b, desc)
						st.ValidationTime += time.Since(t0)
					}
					continue
				}
				gp := grandparents.Lookup(node.Set.Remove(a).Remove(b))
				ctx := e.materialize(gp)
				st.OCCandidates++
				candidates++
				t0 := time.Now()
				if e.sampleRejects(ctx, a, b, desc) {
					st.OCSampledRejected++
					st.ValidationTime += time.Since(t0)
					continue
				}
				r := e.validateOCAt(gp, ctx, a, b, desc)
				st.ValidationTime += time.Since(t0)
				if r.Valid {
					validSet.Add(a, b)
					st.OCsFoundPerLevel[node.Level]++
					oc := OC{
						Context:    node.Set.Remove(a).Remove(b),
						A:          a,
						B:          b,
						Descending: desc,
						Error:      r.Error,
						Removals:   r.Removals,
						Level:      node.Level,
						Score:      Score(node.Level-2, r.Error),
					}
					if e.cfg.CollectRemovalSets {
						oc.RemovalRows = e.collectOCRemovals(ctx, a, b, desc)
					}
					e.res.OCs = append(e.res.OCs, oc)
				}
			}
		}
	}
	return candidates
}

// columnB returns the B column in the requested direction.
func (e *engine) columnB(b int, desc bool) *dataset.Column {
	if desc {
		return e.tbl.Column(b).Reversed()
	}
	return e.tbl.Column(b)
}

func (e *engine) materialize(node *lattice.Node) *partition.Stripped {
	if node.HasPartition() {
		return node.PartitionIn(e.arena, e.singles)
	}
	t0 := time.Now()
	p := node.PartitionIn(e.arena, e.singles)
	e.res.Stats.PartitionTime += time.Since(t0)
	return p
}

// sampleMinRows is the smallest non-singleton context coverage for which the
// hybrid-sampling pre-filter is worth running.
const sampleMinRows = 512

// sampleRejects applies the hybrid-sampling pre-filter: true means the
// candidate's sampled error estimate is so far above the threshold that full
// validation is skipped.
func (e *engine) sampleRejects(ctx *partition.Stripped, a, b int, desc bool) bool {
	if e.cfg.SampleStride <= 1 || e.cfg.Validator == ValidatorExact {
		return false
	}
	if ctx.Size() < sampleMinRows {
		return false
	}
	slack := e.cfg.SampleSlack
	if slack == 0 {
		slack = DefaultSampleSlack
	}
	est, sampled := e.v.SampledAOCEstimate(ctx, e.tbl.Column(a), e.columnB(b, desc), e.cfg.SampleStride)
	if sampled == 0 {
		return false
	}
	return est > e.eps+slack
}

func (e *engine) validateOFD(ctx *partition.Stripped, col *dataset.Column) validate.Result {
	if e.cfg.Validator == ValidatorExact {
		if validate.ExactOFD(ctx, col) {
			return validate.Result{Valid: true}
		}
		return validate.Result{Valid: false, Aborted: true}
	}
	return e.v.ApproxOFD(ctx, col, validate.Options{Threshold: e.eps})
}

// validateOCAt validates the OC candidate with context node gp (whose
// partition is ctx) over attributes a and b (B descending when desc),
// routing to the configured validator — including the sorted-scan exact
// route when enabled.
func (e *engine) validateOCAt(gp *lattice.Node, ctx *partition.Stripped, a, b int, desc bool) validate.Result {
	cb := e.columnB(b, desc)
	if e.orders != nil && e.cfg.Validator == ValidatorExact {
		ids := gp.ClassIDs(e.singles)
		ok, _ := e.v.ExactOCScan(ids, ctx.NumClasses(), e.orders.Order(a),
			e.tbl.Column(a), cb)
		return validate.Result{Valid: ok, Aborted: !ok}
	}
	return e.validateOC(ctx, e.tbl.Column(a), cb)
}

func (e *engine) validateOC(ctx *partition.Stripped, a, b *dataset.Column) validate.Result {
	switch e.cfg.Validator {
	case ValidatorExact:
		if ok, _ := e.v.ExactOC(ctx, a, b); ok {
			return validate.Result{Valid: true}
		}
		return validate.Result{Valid: false, Aborted: true}
	case ValidatorIterative:
		return e.v.IterativeAOC(ctx, a, b, validate.Options{Threshold: e.eps})
	default:
		return e.v.OptimalAOC(ctx, a, b, validate.Options{Threshold: e.eps})
	}
}

// collectOCRemovals re-validates a verified OC with removal collection. The
// optimal validator is used even under the iterative configuration — once a
// dependency is deemed valid, the minimal removal set is the useful artifact
// for repair.
func (e *engine) collectOCRemovals(ctx *partition.Stripped, a, b int, desc bool) []int32 {
	r := e.v.OptimalAOC(ctx, e.tbl.Column(a), e.columnB(b, desc),
		validate.Options{Threshold: 1, CollectRemovals: true})
	return r.RemovalRows
}
