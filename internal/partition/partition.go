// Package partition implements the equivalence-class machinery of Def. 2.8:
// stripped partitions (position-list indexes, PLIs) over attribute sets, and
// the linear-time partition product used by level-wise lattice traversal
// (after TANE, Huhtala et al. 1999, which the paper's framework builds on).
//
// A stripped partition omits singleton equivalence classes: a tuple alone in
// its class can participate in no split and no swap, so every validator in
// this repository is exact on stripped partitions.
package partition

import (
	"fmt"
	"sort"

	"aod/internal/dataset"
)

// Stripped is a stripped partition: the non-singleton equivalence classes of
// a table with respect to some attribute set, each class a slice of row ids.
type Stripped struct {
	// Classes holds the non-singleton equivalence classes. Row ids within a
	// class are in ascending order; classes are in order of first row id.
	Classes [][]int32
	// N is the number of rows of the underlying table.
	N int
}

// NumClasses returns the number of non-singleton classes.
func (p *Stripped) NumClasses() int { return len(p.Classes) }

// Size returns the total number of rows covered by non-singleton classes.
func (p *Stripped) Size() int {
	s := 0
	for _, c := range p.Classes {
		s += len(c)
	}
	return s
}

// TotalClasses returns the number of equivalence classes including the
// stripped singletons: |Π_X| of the unstripped partition.
func (p *Stripped) TotalClasses() int {
	return p.N - p.Size() + len(p.Classes)
}

// IsUnique reports whether every class is a singleton, i.e. the attribute set
// is a key for the instance.
func (p *Stripped) IsUnique() bool { return len(p.Classes) == 0 }

// String renders a compact summary for debugging.
func (p *Stripped) String() string {
	return fmt.Sprintf("Stripped(%d classes over %d/%d rows)", len(p.Classes), p.Size(), p.N)
}

// Single builds the stripped partition of one rank-encoded column.
func Single(col *dataset.Column) *Stripped {
	n := col.Len()
	ranks := col.Ranks()
	counts := make([]int32, col.NumDistinct())
	for _, r := range ranks {
		counts[r]++
	}
	// Bucket rows by rank; emit only buckets of size >= 2, ordered by first
	// occurrence to keep a deterministic layout.
	starts := make([]int32, col.NumDistinct())
	var off int32
	for r, c := range counts {
		starts[r] = off
		off += c
	}
	flat := make([]int32, n)
	next := append([]int32(nil), starts...)
	for i, r := range ranks {
		flat[next[r]] = int32(i)
		next[r]++
	}
	p := &Stripped{N: n}
	type firstClass struct {
		first int32
		rank  int32
	}
	var order []firstClass
	for r := range counts {
		if counts[r] >= 2 {
			order = append(order, firstClass{first: flat[starts[r]], rank: int32(r)})
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i].first < order[j].first })
	for _, fc := range order {
		s, c := starts[fc.rank], counts[fc.rank]
		p.Classes = append(p.Classes, flat[s:s+c:s+c])
	}
	return p
}

// FromRowSignature builds a stripped partition directly from an arbitrary
// per-row signature (rows with equal signatures share a class). It is used by
// tests and by brute-force reference implementations.
func FromRowSignature(sig []int64, n int) *Stripped {
	groups := make(map[int64][]int32)
	var order []int64
	for i := 0; i < n; i++ {
		if _, ok := groups[sig[i]]; !ok {
			order = append(order, sig[i])
		}
		groups[sig[i]] = append(groups[sig[i]], int32(i))
	}
	p := &Stripped{N: n}
	for _, k := range order {
		if g := groups[k]; len(g) >= 2 {
			p.Classes = append(p.Classes, g)
		}
	}
	return p
}

// Product computes the stripped partition Π_{X∪Y} from Π_X = p and Π_Y =
// other in O(‖p‖ + classes(other)) time using the TANE probe-table scheme:
// rows agreeing on both X and Y are exactly rows that share a p-class and an
// other-class.
func (p *Stripped) Product(other *Stripped) *Stripped {
	if p.N != other.N {
		panic(fmt.Sprintf("partition: product of partitions over %d and %d rows", p.N, other.N))
	}
	n := p.N
	// classOf[row] = id of the other-class containing row, or -1.
	classOf := make([]int32, n)
	for i := range classOf {
		classOf[i] = -1
	}
	for ci, cls := range other.Classes {
		for _, row := range cls {
			classOf[row] = int32(ci)
		}
	}
	out := &Stripped{N: n}
	// For each class of p, group its rows by their other-class id.
	probe := make(map[int32][]int32)
	for _, cls := range p.Classes {
		for _, row := range cls {
			oc := classOf[row]
			if oc < 0 {
				continue // row is a singleton in other: singleton in product
			}
			probe[oc] = append(probe[oc], row)
		}
		if len(probe) > 0 {
			// Deterministic order: by first row id of each subgroup. Rows
			// were appended in ascending order within cls, so each subgroup
			// is already ascending.
			keys := make([]int32, 0, len(probe))
			for k := range probe {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(i, j int) bool { return probe[keys[i]][0] < probe[keys[j]][0] })
			for _, k := range keys {
				if g := probe[k]; len(g) >= 2 {
					out.Classes = append(out.Classes, g)
				}
				delete(probe, k)
			}
		}
	}
	return out
}

// ClassIDs returns a per-row class identifier: rows in the i-th class map to
// int32(i); stripped (singleton) rows map to -1. The slice has length N.
func (p *Stripped) ClassIDs() []int32 {
	ids := make([]int32, p.N)
	for i := range ids {
		ids[i] = -1
	}
	for ci, cls := range p.Classes {
		for _, row := range cls {
			ids[row] = int32(ci)
		}
	}
	return ids
}

// Refines reports whether p refines q: every class of p is contained in a
// single class of q. The unstripped semantics are used (singletons refine
// everything).
func (p *Stripped) Refines(q *Stripped) bool {
	if p.N != q.N {
		return false
	}
	qid := q.ClassIDs()
	for _, cls := range p.Classes {
		// All rows of cls must map to the same q class id; -1 (singleton in
		// q) can cover at most one row, so any -1 in a class of size >= 2
		// falsifies refinement.
		first := qid[cls[0]]
		if first < 0 {
			return false
		}
		for _, row := range cls[1:] {
			if qid[row] != first {
				return false
			}
		}
	}
	return true
}

// Universe returns the trivial partition with a single class containing all n
// rows (the partition of the empty attribute set). For n < 2 the partition is
// fully stripped.
func Universe(n int) *Stripped {
	p := &Stripped{N: n}
	if n >= 2 {
		all := make([]int32, n)
		for i := range all {
			all[i] = int32(i)
		}
		p.Classes = [][]int32{all}
	}
	return p
}
