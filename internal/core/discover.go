package core

import (
	"context"
	"time"

	"aod/internal/dataset"
	"aod/internal/lattice"
	"aod/internal/partition"
	"aod/internal/validate"
)

// Discover runs the level-wise discovery framework over the table and
// returns the complete, minimal set of verified dependencies under the
// configured validator and threshold (see the package comment for the exact
// semantics and caveats of the iterative validator).
func Discover(tbl *dataset.Table, cfg Config) (*Result, error) {
	return DiscoverContext(context.Background(), tbl, cfg)
}

// DiscoverContext is Discover with cooperative cancellation: the context is
// polled between candidate validations, so a canceled run stops within one
// validation's latency instead of finishing the lattice. On cancellation the
// partial result is returned with Stats.Canceled set and a nil error — the
// same contract as a TimeLimit abort (callers that need the distinction can
// inspect ctx.Err()). It is the serial-executor instantiation of the shared
// Pipeline.
func DiscoverContext(ctx context.Context, tbl *dataset.Table, cfg Config) (*Result, error) {
	return Pipeline{}.Run(ctx, tbl, cfg)
}

// engine is the node-processing stage shared by every executor: it examines
// the candidates hosted at one lattice node, routing them through the
// configured validator and the axiom-based pruning, and accumulates
// dependencies and stats into res. Engines are cheap; a pool executor owns
// one per worker (Validator scratch is not concurrency-safe), all sharing
// one traversal.
type engine struct {
	t *traversal
	v *validate.Validator
	// res is the accumulation target: the traversal's result under the
	// serial executor, a worker-local fragment (merged in node order by the
	// pool executor) otherwise.
	res *Result
}

// aborted reports that the run must stop, recording the cause in the
// engine's stats fragment (merged upward by pool executors).
func (e *engine) aborted() bool {
	return e.t.abortedInto(&e.res.Stats)
}

// processNode examines all candidates hosted at the node: OFDs
// (Set\{D}): [] ↦ D for D ∈ Set, and OCs (Set\{A,B}): A ∼ B for pairs
// {A,B} ⊆ Set. It returns the number of candidates validated (for the
// early-stop rule).
func (e *engine) processNode(node *lattice.Node, parents, grandparents *lattice.Level) int {
	st := &e.res.Stats
	candidates := 0

	// --- Propagate validity state from parents. ------------------------
	if e.t.cfg.Bidirectional && node.OCValidDesc == nil {
		node.OCValidDesc = lattice.NewPairSet(e.t.numAttrs)
	}
	var propagatedConst lattice.AttrSet
	node.Set.ForEach(func(c int) {
		if p := parents.Lookup(node.Set.Remove(c)); p != nil {
			propagatedConst = propagatedConst.Union(p.ConstValid)
			node.OCValid.UnionWith(p.OCValid)
			if node.OCValidDesc != nil && p.OCValidDesc != nil {
				node.OCValidDesc.UnionWith(p.OCValidDesc)
			}
		}
	})
	node.ConstValid = propagatedConst

	// --- OFD candidates. -------------------------------------------------
	attrs := node.Set.Attrs()
	for _, d := range attrs {
		if e.aborted() {
			return candidates
		}
		if propagatedConst.Has(d) {
			// A strict sub-context already has a valid OFD for d: any OFD
			// here is valid but non-minimal. Skip validation entirely —
			// unless the pruning ablation wants the cost measured.
			st.OFDSkipped++
			if e.t.cfg.DisablePruning {
				parent := parents.Lookup(node.Set.Remove(d))
				ctx := e.materialize(parent)
				st.OFDCandidates++
				candidates++
				t0 := time.Now()
				e.validateOFD(ctx, e.t.tbl.Column(d))
				st.ValidationTime += time.Since(t0)
			}
			continue
		}
		parent := parents.Lookup(node.Set.Remove(d))
		ctx := e.materialize(parent)
		st.OFDCandidates++
		candidates++
		t0 := time.Now()
		r := e.validateOFD(ctx, e.t.tbl.Column(d))
		st.ValidationTime += time.Since(t0)
		if r.Valid {
			node.ConstValid = node.ConstValid.Add(d)
			st.OFDsFoundPerLevel[node.Level]++
			if e.t.cfg.IncludeOFDs {
				ofd := OFD{
					Context:  node.Set.Remove(d),
					A:        d,
					Error:    r.Error,
					Removals: r.Removals,
					Level:    node.Level,
					Score:    Score(node.Level-1, r.Error),
				}
				if e.t.cfg.CollectRemovalSets {
					full := e.v.ApproxOFD(ctx, e.t.tbl.Column(d),
						validate.Options{Threshold: e.t.eps, CollectRemovals: true})
					ofd.RemovalRows = full.RemovalRows
				}
				e.res.OFDs = append(e.res.OFDs, ofd)
			}
		}
	}

	// --- OC candidates (levels >= 2). -------------------------------------
	if node.Level < 2 {
		return candidates
	}
	directions := []bool{false}
	if e.t.cfg.Bidirectional {
		directions = []bool{false, true}
	}
	for i := 0; i < len(attrs); i++ {
		for j := i + 1; j < len(attrs); j++ {
			a, b := attrs[i], attrs[j]
			for _, desc := range directions {
				if e.aborted() {
					return candidates
				}
				validSet := node.OCValid
				if desc {
					validSet = node.OCValidDesc
				}
				skip := false
				if validSet.Has(a, b) {
					// Valid in a sub-context: non-minimal here and
					// everywhere above (minimality pruning).
					st.OCSkippedMinimality++
					skip = true
				} else {
					pa := parents.Lookup(node.Set.Remove(b)) // contains a
					pb := parents.Lookup(node.Set.Remove(a))
					if pa.ConstValid.Has(a) || pb.ConstValid.Has(b) {
						// Constancy of a side within the OC's context (or a
						// subset) trivializes the OC in both directions
						// (e_OC ≤ e_OFD); never minimal.
						st.OCSkippedConstancy++
						skip = true
					}
				}
				if skip {
					if e.t.cfg.DisablePruning {
						gp := grandparents.Lookup(node.Set.Remove(a).Remove(b))
						ctx := e.materialize(gp)
						st.OCCandidates++
						candidates++
						t0 := time.Now()
						e.validateOCAt(gp, ctx, a, b, desc)
						st.ValidationTime += time.Since(t0)
					}
					continue
				}
				gp := grandparents.Lookup(node.Set.Remove(a).Remove(b))
				ctx := e.materialize(gp)
				st.OCCandidates++
				candidates++
				t0 := time.Now()
				if e.sampleRejects(ctx, a, b, desc) {
					st.OCSampledRejected++
					st.ValidationTime += time.Since(t0)
					continue
				}
				r := e.validateOCAt(gp, ctx, a, b, desc)
				st.ValidationTime += time.Since(t0)
				if r.Valid {
					validSet.Add(a, b)
					st.OCsFoundPerLevel[node.Level]++
					oc := OC{
						Context:    node.Set.Remove(a).Remove(b),
						A:          a,
						B:          b,
						Descending: desc,
						Error:      r.Error,
						Removals:   r.Removals,
						Level:      node.Level,
						Score:      Score(node.Level-2, r.Error),
					}
					if e.t.cfg.CollectRemovalSets {
						oc.RemovalRows = e.collectOCRemovals(ctx, a, b, desc)
					}
					e.res.OCs = append(e.res.OCs, oc)
				}
			}
		}
	}
	return candidates
}

// columnB returns the B column in the requested direction.
func (e *engine) columnB(b int, desc bool) *dataset.Column {
	if desc {
		return e.t.tbl.Column(b).Reversed()
	}
	return e.t.tbl.Column(b)
}

func (e *engine) materialize(node *lattice.Node) *partition.Stripped {
	if node.HasPartition() {
		return node.PartitionIn(e.t.arena, e.t.singles)
	}
	t0 := time.Now()
	p := node.PartitionIn(e.t.arena, e.t.singles)
	e.res.Stats.PartitionTime += time.Since(t0)
	return p
}

// sampleMinRows is the smallest non-singleton context coverage for which the
// hybrid-sampling pre-filter is worth running.
const sampleMinRows = 512

// sampleRejects applies the hybrid-sampling pre-filter: true means the
// candidate's sampled error estimate is so far above the threshold that full
// validation is skipped.
func (e *engine) sampleRejects(ctx *partition.Stripped, a, b int, desc bool) bool {
	if e.t.cfg.SampleStride <= 1 || e.t.cfg.Validator == ValidatorExact {
		return false
	}
	if ctx.Size() < sampleMinRows {
		return false
	}
	slack := e.t.cfg.SampleSlack
	if slack == 0 {
		slack = DefaultSampleSlack
	}
	est, sampled := e.v.SampledAOCEstimate(ctx, e.t.tbl.Column(a), e.columnB(b, desc), e.t.cfg.SampleStride)
	if sampled == 0 {
		return false
	}
	return est > e.t.eps+slack
}

func (e *engine) validateOFD(ctx *partition.Stripped, col *dataset.Column) validate.Result {
	if e.t.cfg.Validator == ValidatorExact {
		if validate.ExactOFD(ctx, col) {
			return validate.Result{Valid: true}
		}
		return validate.Result{Valid: false, Aborted: true}
	}
	return e.v.ApproxOFD(ctx, col, validate.Options{Threshold: e.t.eps})
}

// validateOCAt validates the OC candidate with context node gp (whose
// partition is ctx) over attributes a and b (B descending when desc),
// routing to the configured validator — including the sorted-scan exact
// route when enabled.
func (e *engine) validateOCAt(gp *lattice.Node, ctx *partition.Stripped, a, b int, desc bool) validate.Result {
	cb := e.columnB(b, desc)
	if e.t.orders != nil && e.t.cfg.Validator == ValidatorExact {
		ids := gp.ClassIDs(e.t.singles)
		ok, _ := e.v.ExactOCScan(ids, ctx.NumClasses(), e.t.orders.Order(a),
			e.t.tbl.Column(a), cb)
		return validate.Result{Valid: ok, Aborted: !ok}
	}
	return e.validateOC(ctx, e.t.tbl.Column(a), cb)
}

func (e *engine) validateOC(ctx *partition.Stripped, a, b *dataset.Column) validate.Result {
	switch e.t.cfg.Validator {
	case ValidatorExact:
		if ok, _ := e.v.ExactOC(ctx, a, b); ok {
			return validate.Result{Valid: true}
		}
		return validate.Result{Valid: false, Aborted: true}
	case ValidatorIterative:
		return e.v.IterativeAOC(ctx, a, b, validate.Options{Threshold: e.t.eps})
	default:
		return e.v.OptimalAOC(ctx, a, b, validate.Options{Threshold: e.t.eps})
	}
}

// collectOCRemovals re-validates a verified OC with removal collection. The
// optimal validator is used even under the iterative configuration — once a
// dependency is deemed valid, the minimal removal set is the useful artifact
// for repair.
func (e *engine) collectOCRemovals(ctx *partition.Stripped, a, b int, desc bool) []int32 {
	r := e.v.OptimalAOC(ctx, e.t.tbl.Column(a), e.columnB(b, desc),
		validate.Options{Threshold: 1, CollectRemovals: true})
	return r.RemovalRows
}
