package validate

import (
	"math/rand"
	"sort"
	"testing"

	"aod/internal/dataset"
	"aod/internal/partition"
)

// paperTable1 builds Table 1 of the paper (employee salaries). Monetary
// values are scaled to integers (sal in thousands, tax in hundreds).
func paperTable1(t *testing.T) *dataset.Table {
	t.Helper()
	tbl, err := dataset.NewBuilder().
		AddStrings("pos", []string{"sec", "sec", "dev", "sec", "dev", "dev", "dev", "dev", "dir"}).
		AddInts("exp", []int64{1, 3, 1, 5, 3, 5, 5, -1, 8}).
		AddInts("sal", []int64{20, 25, 30, 40, 50, 55, 60, 90, 200}).
		AddStrings("taxGrp", []string{"A", "A", "A", "B", "B", "B", "B", "C", "C"}).
		AddInts("perc", []int64{10, 10, 1, 30, 3, 30, 3, 8, 8}).
		AddInts("tax", []int64{20, 25, 3, 120, 15, 165, 18, 72, 160}).
		AddInts("bonus", []int64{1, 1, 3, 2, 4, 4, 4, 7, 10}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func col(t *testing.T, tbl *dataset.Table, name string) *dataset.Column {
	t.Helper()
	i := tbl.ColumnIndex(name)
	if i < 0 {
		t.Fatalf("no column %q", name)
	}
	return tbl.Column(i)
}

func ctxOf(t *testing.T, tbl *dataset.Table, names ...string) *partition.Stripped {
	t.Helper()
	if len(names) == 0 {
		return partition.Universe(tbl.NumRows())
	}
	p := partition.Single(col(t, tbl, names[0]))
	for _, n := range names[1:] {
		p = p.Product(partition.Single(col(t, tbl, n)))
	}
	return p
}

// --- Paper-pinned examples -------------------------------------------------

func TestExample24ExactOCs(t *testing.T) {
	tbl := paperTable1(t)
	v := New()
	// The OC taxGrp ∼ sal holds (Example 2.4).
	if ok, _ := v.ExactOC(ctxOf(t, tbl), col(t, tbl, "taxGrp"), col(t, tbl, "sal")); !ok {
		t.Error("{}: taxGrp ∼ sal should hold")
	}
	// The OD sal ↦ taxGrp holds: OC {}: sal ∼ taxGrp and OFD {sal}: []↦taxGrp.
	if ok, _ := v.ExactOC(ctxOf(t, tbl), col(t, tbl, "sal"), col(t, tbl, "taxGrp")); !ok {
		t.Error("{}: sal ∼ taxGrp should hold")
	}
	if !ExactOFD(ctxOf(t, tbl, "sal"), col(t, tbl, "taxGrp")) {
		t.Error("{sal}: [] ↦ taxGrp should hold")
	}
	// But taxGrp ↦ sal does not (the FD fails): {taxGrp}: []↦sal is violated.
	if ExactOFD(ctxOf(t, tbl, "taxGrp"), col(t, tbl, "sal")) {
		t.Error("{taxGrp}: [] ↦ sal should NOT hold")
	}
	// The OC sal ∼ tax does not hold (Sec. 1.1, data entry errors in perc).
	if ok, w := v.ExactOC(ctxOf(t, tbl), col(t, tbl, "sal"), col(t, tbl, "tax")); ok {
		t.Error("{}: sal ∼ tax should NOT hold")
	} else if w[0] < 0 || w[1] < 0 {
		t.Error("want a swap witness")
	}
}

func TestExample27SwapAndSplit(t *testing.T) {
	tbl := paperTable1(t)
	v := New()
	// Given pos,exp ↦ pos,sal: t7,t8 are a swap of {pos}: exp ∼ sal and
	// t6,t7 a split of {pos,exp}: []↦sal.
	if ok, w := v.ExactOC(ctxOf(t, tbl, "pos"), col(t, tbl, "exp"), col(t, tbl, "sal")); ok {
		t.Error("{pos}: exp ∼ sal should NOT hold exactly")
	} else {
		// Any genuine swap is an acceptable witness (the paper names t7/t8;
		// t3/t8 is another). Verify the returned pair really is a swap.
		exp, sal := col(t, tbl, "exp").Ranks(), col(t, tbl, "sal").Ranks()
		s, u := w[0], w[1]
		isSwap := (exp[s] < exp[u] && sal[u] < sal[s]) || (exp[u] < exp[s] && sal[s] < sal[u])
		if !isSwap {
			t.Errorf("witness %v is not a swap", w)
		}
	}
	// The paper's named swap t7/t8 is indeed a swap of {pos}: exp ∼ sal.
	{
		exp, sal := col(t, tbl, "exp").Ranks(), col(t, tbl, "sal").Ranks()
		if !(exp[7] < exp[6] && sal[6] < sal[7]) {
			t.Error("t7/t8 should form a swap")
		}
	}
	if ExactOFD(ctxOf(t, tbl, "pos", "exp"), col(t, tbl, "sal")) {
		t.Error("{pos,exp}: [] ↦ sal should NOT hold (t6/t7 split)")
	}
	r := ApproxOFD(ctxOf(t, tbl, "pos", "exp"), col(t, tbl, "sal"), Options{Threshold: 1, CollectRemovals: true})
	if r.Removals != 1 {
		t.Errorf("OFD removals = %d, want 1 (one of t6/t7)", r.Removals)
	}
	if len(r.RemovalRows) != 1 || (r.RemovalRows[0] != 5 && r.RemovalRows[0] != 6) {
		t.Errorf("OFD removal rows = %v, want one of t6/t7", r.RemovalRows)
	}
}

func TestExample212ContextPos(t *testing.T) {
	tbl := paperTable1(t)
	v := New()
	if ok, _ := v.ExactOC(ctxOf(t, tbl, "pos"), col(t, tbl, "sal"), col(t, tbl, "bonus")); !ok {
		t.Error("{pos}: sal ∼ bonus should hold")
	}
	if !ExactOFD(ctxOf(t, tbl, "pos", "sal"), col(t, tbl, "bonus")) {
		t.Error("{pos,sal}: [] ↦ bonus should hold")
	}
	// Together these give {pos}: sal ↦ bonus; check via OptimalAOD at ε=0.
	r := v.OptimalAOD(ctxOf(t, tbl, "pos"), col(t, tbl, "sal"), col(t, tbl, "bonus"), Options{Threshold: 0})
	if !r.Valid || r.Removals != 0 {
		t.Errorf("{pos}: sal ↦ bonus should hold exactly, got %+v", r)
	}
}

func TestExample215OptimalRemoval(t *testing.T) {
	tbl := paperTable1(t)
	v := New()
	// e(sal ∼ tax) = 4/9 with minimal removal {t1,t2,t4,t6} (Examples 2.15, 3.2).
	r := v.OptimalAOC(ctxOf(t, tbl), col(t, tbl, "sal"), col(t, tbl, "tax"),
		Options{Threshold: 0.5, CollectRemovals: true})
	if r.Removals != 4 {
		t.Fatalf("optimal removals = %d, want 4", r.Removals)
	}
	if !r.Valid {
		t.Error("4/9 ≤ 0.5 should be valid")
	}
	want := []int32{0, 1, 3, 5} // t1, t2, t4, t6
	got := append([]int32{}, r.RemovalRows...)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if len(got) != 4 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] || got[3] != want[3] {
		t.Errorf("removal rows = %v, want %v", got, want)
	}
	if err := VerifyNoSwaps(ctxOf(t, tbl), col(t, tbl, "sal"), col(t, tbl, "tax"), r.RemovalRows); err != nil {
		t.Error(err)
	}
}

func TestExample31IterativeOverestimates(t *testing.T) {
	tbl := paperTable1(t)
	v := New()
	// The greedy iterative validator removes 5 tuples for sal ∼ tax
	// (Example 3.1), overestimating e as 5/9 ≈ 0.56 instead of 4/9.
	r := v.IterativeAOC(ctxOf(t, tbl), col(t, tbl, "sal"), col(t, tbl, "tax"),
		Options{Threshold: 1, CollectRemovals: true})
	if r.Removals != 5 {
		t.Fatalf("iterative removals = %d, want 5", r.Removals)
	}
	// Its removal set is still a removal set (just not minimal).
	if err := VerifyNoSwaps(ctxOf(t, tbl), col(t, tbl, "sal"), col(t, tbl, "tax"), r.RemovalRows); err != nil {
		t.Error(err)
	}
	// With ε = 0.5, the candidate is truly valid (4/9 ≤ 0.5) but the greedy
	// validator rejects it — the incompleteness the paper fixes.
	opt := v.OptimalAOC(ctxOf(t, tbl), col(t, tbl, "sal"), col(t, tbl, "tax"), Options{Threshold: 0.5})
	it := v.IterativeAOC(ctxOf(t, tbl), col(t, tbl, "sal"), col(t, tbl, "tax"), Options{Threshold: 0.5})
	if !opt.Valid {
		t.Error("optimal should accept at ε=0.5")
	}
	if it.Valid {
		t.Error("iterative should reject at ε=0.5 (overestimate)")
	}
}

func TestPosExpPosSalApproximationFactor(t *testing.T) {
	tbl := paperTable1(t)
	v := New()
	// Sec. 1.1: for the OC pos,exp ∼ pos,sal the minimal removal set is {t8}
	// and e = 1/9. In canonical form this is {pos}: exp ∼ sal.
	r := v.OptimalAOC(ctxOf(t, tbl, "pos"), col(t, tbl, "exp"), col(t, tbl, "sal"),
		Options{Threshold: 0.2, CollectRemovals: true})
	if r.Removals != 1 {
		t.Fatalf("removals = %d, want 1", r.Removals)
	}
	if len(r.RemovalRows) != 1 || r.RemovalRows[0] != 7 {
		t.Errorf("removal rows = %v, want [7] (t8)", r.RemovalRows)
	}
	// Also via the list-based validator on [pos,exp] ↦ ... the OC form:
	// [pos,exp] and [pos,sal] are order compatible after removing t8.
	if ExactListOC(tbl, []int{0, 1}, []int{0, 2}) {
		t.Error("[pos,exp] ∼ [pos,sal] should NOT hold exactly")
	}
}

// --- Brute-force minimality ------------------------------------------------

// bruteMinimalRemovalOC finds, by exhaustive search over subsets of each
// class, the size of a minimal removal set for X: A ∼ B. Classes must be
// small (≤ ~16 rows).
func bruteMinimalRemovalOC(ctx *partition.Stripped, a, b *dataset.Column, withSplits bool) int {
	ra, rb := a.Ranks(), b.Ranks()
	total := 0
	for ci := 0; ci < ctx.NumClasses(); ci++ {
		cls := ctx.Class(ci)
		m := len(cls)
		bestKeep := 0
		for mask := 0; mask < 1<<m; mask++ {
			ok := true
			for i := 0; i < m && ok; i++ {
				if mask&(1<<i) == 0 {
					continue
				}
				for j := i + 1; j < m && ok; j++ {
					if mask&(1<<j) == 0 {
						continue
					}
					s, u := cls[i], cls[j]
					if (ra[s] < ra[u] && rb[u] < rb[s]) || (ra[u] < ra[s] && rb[s] < rb[u]) {
						ok = false
					}
					if withSplits && ra[s] == ra[u] && rb[s] != rb[u] {
						ok = false
					}
				}
			}
			if ok {
				if k := popcount(mask); k > bestKeep {
					bestKeep = k
				}
			}
		}
		total += m - bestKeep
	}
	return total
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

func smallRandomTable(rng *rand.Rand, rows int) *dataset.Table {
	b := dataset.NewBuilder()
	for c := 0; c < 3; c++ {
		vals := make([]int64, rows)
		for i := range vals {
			vals[i] = int64(rng.Intn(2 + rng.Intn(6)))
		}
		b.AddInts(string(rune('a'+c)), vals)
	}
	tbl, err := b.Build()
	if err != nil {
		panic(err)
	}
	return tbl
}

func TestOptimalAOCMinimalityAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	v := New()
	for iter := 0; iter < 400; iter++ {
		rows := 2 + rng.Intn(12)
		tbl := smallRandomTable(rng, rows)
		var ctx *partition.Stripped
		if rng.Intn(2) == 0 {
			ctx = partition.Universe(rows)
		} else {
			ctx = partition.Single(tbl.Column(0))
		}
		a, b := tbl.Column(1), tbl.Column(2)
		got := v.OptimalAOC(ctx, a, b, Options{Threshold: 1, CollectRemovals: true})
		want := bruteMinimalRemovalOC(ctx, a, b, false)
		if got.Removals != want {
			t.Fatalf("iter %d: optimal removals = %d, brute minimal = %d", iter, got.Removals, want)
		}
		if err := VerifyNoSwaps(ctx, a, b, got.RemovalRows); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if len(got.RemovalRows) != got.Removals {
			t.Fatalf("iter %d: removal rows %d != removals %d", iter, len(got.RemovalRows), got.Removals)
		}
	}
}

func TestOptimalAODMinimalityAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	v := New()
	for iter := 0; iter < 300; iter++ {
		rows := 2 + rng.Intn(11)
		tbl := smallRandomTable(rng, rows)
		ctx := partition.Universe(rows)
		a, b := tbl.Column(1), tbl.Column(2)
		got := v.OptimalAOD(ctx, a, b, Options{Threshold: 1, CollectRemovals: true})
		want := bruteMinimalRemovalOC(ctx, a, b, true)
		if got.Removals != want {
			t.Fatalf("iter %d: AOD removals = %d, brute minimal = %d", iter, got.Removals, want)
		}
		if err := VerifyNoSwapsOrSplits(ctx, a, b, got.RemovalRows); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
	}
}

func TestIterativeNeverBelowOptimalAndAlwaysValidRemoval(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	v := New()
	overestimates := 0
	for iter := 0; iter < 400; iter++ {
		rows := 2 + rng.Intn(25)
		tbl := smallRandomTable(rng, rows)
		ctx := partition.Single(tbl.Column(0))
		a, b := tbl.Column(1), tbl.Column(2)
		opt := v.OptimalAOC(ctx, a, b, Options{Threshold: 1})
		it := v.IterativeAOC(ctx, a, b, Options{Threshold: 1, CollectRemovals: true})
		if it.Removals < opt.Removals {
			t.Fatalf("iter %d: iterative %d < optimal %d (impossible: optimal is minimal)",
				iter, it.Removals, opt.Removals)
		}
		if it.Removals > opt.Removals {
			overestimates++
		}
		if err := VerifyNoSwaps(ctx, a, b, it.RemovalRows); err != nil {
			t.Fatalf("iter %d: iterative removal set invalid: %v", iter, err)
		}
	}
	if overestimates == 0 {
		t.Error("expected the greedy validator to overestimate on some instances")
	}
}

func TestExactOCAgreesWithZeroThresholdOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	v := New()
	for iter := 0; iter < 300; iter++ {
		rows := 2 + rng.Intn(30)
		tbl := smallRandomTable(rng, rows)
		ctx := partition.Single(tbl.Column(0))
		a, b := tbl.Column(1), tbl.Column(2)
		exact, _ := v.ExactOC(ctx, a, b)
		opt := v.OptimalAOC(ctx, a, b, Options{Threshold: 0, ComputeFullError: true})
		if exact != opt.Valid {
			t.Fatalf("iter %d: exact = %v but optimal(ε=0) valid = %v (removals %d)",
				iter, exact, opt.Valid, opt.Removals)
		}
		if exact != (opt.Removals == 0) {
			t.Fatalf("iter %d: exact = %v but removals = %d", iter, exact, opt.Removals)
		}
	}
}

func TestErrorMonotoneUnderContextRefinement(t *testing.T) {
	// e(X: A ∼ B) is non-increasing as the context grows (the basis for the
	// paper's minimality pruning of AOCs).
	rng := rand.New(rand.NewSource(46))
	v := New()
	for iter := 0; iter < 200; iter++ {
		rows := 2 + rng.Intn(30)
		tbl := smallRandomTable(rng, rows)
		a, b := tbl.Column(1), tbl.Column(2)
		coarse := partition.Universe(rows)
		fine := partition.Single(tbl.Column(0))
		eCoarse := v.OptimalAOC(coarse, a, b, Options{Threshold: 1}).Removals
		eFine := v.OptimalAOC(fine, a, b, Options{Threshold: 1}).Removals
		if eFine > eCoarse {
			t.Fatalf("iter %d: refinement increased error: %d > %d", iter, eFine, eCoarse)
		}
	}
}

func TestOFDImpliesOCValidity(t *testing.T) {
	// e_OC(X: A ∼ B) ≤ e_OFD(X: [] ↦ A): constancy trivializes order
	// compatibility (used for pruning in discovery).
	rng := rand.New(rand.NewSource(47))
	v := New()
	for iter := 0; iter < 200; iter++ {
		rows := 2 + rng.Intn(30)
		tbl := smallRandomTable(rng, rows)
		ctx := partition.Single(tbl.Column(0))
		a, b := tbl.Column(1), tbl.Column(2)
		eOC := v.OptimalAOC(ctx, a, b, Options{Threshold: 1}).Removals
		eOFD := ApproxOFD(ctx, a, Options{Threshold: 1}).Removals
		if eOC > eOFD {
			t.Fatalf("iter %d: e_OC %d > e_OFD %d", iter, eOC, eOFD)
		}
	}
}

// --- Early abort & options --------------------------------------------------

func TestOptimalAOCEarlyAbort(t *testing.T) {
	tbl := paperTable1(t)
	v := New()
	r := v.OptimalAOC(ctxOf(t, tbl), col(t, tbl, "sal"), col(t, tbl, "tax"), Options{Threshold: 0.1})
	if r.Valid {
		t.Error("should be invalid at ε=0.1")
	}
	if !r.Aborted {
		t.Error("expected early abort without ComputeFullError")
	}
	full := v.OptimalAOC(ctxOf(t, tbl), col(t, tbl, "sal"), col(t, tbl, "tax"),
		Options{Threshold: 0.1, ComputeFullError: true})
	if full.Aborted || full.Removals != 4 {
		t.Errorf("full error run: %+v, want removals 4 and no abort", full)
	}
}

func TestBudgetFloatBoundary(t *testing.T) {
	// ε = 4/9 is not exactly representable: 4.0/9*9 = 3.999…; the early-
	// abort budget must not reject the candidate whose true error is
	// exactly 4/9 (regression test for integer truncation).
	tbl := paperTable1(t)
	v := New()
	eps := 4.0 / 9.0
	r := v.OptimalAOC(ctxOf(t, tbl), col(t, tbl, "sal"), col(t, tbl, "tax"), Options{Threshold: eps})
	if !r.Valid || r.Aborted {
		t.Errorf("e=4/9 at ε=4/9 should be valid without abort: %+v", r)
	}
	// Just below the boundary the candidate must be rejected.
	r = v.OptimalAOC(ctxOf(t, tbl), col(t, tbl, "sal"), col(t, tbl, "tax"), Options{Threshold: eps - 0.001})
	if r.Valid {
		t.Errorf("e=4/9 at ε=4/9−0.001 should be invalid: %+v", r)
	}
}

func TestIterativeAbortRespectsBudget(t *testing.T) {
	tbl := paperTable1(t)
	v := New()
	r := v.IterativeAOC(ctxOf(t, tbl), col(t, tbl, "sal"), col(t, tbl, "tax"), Options{Threshold: 0.1})
	if r.Valid || !r.Aborted {
		t.Errorf("want aborted invalid result, got %+v", r)
	}
	// Budget εn = 0.9 → first removal (1 > 0) aborts.
	if r.Removals != 1 {
		t.Errorf("removals at abort = %d, want 1", r.Removals)
	}
}

func TestApproxOFDPaperContext(t *testing.T) {
	tbl := paperTable1(t)
	// {pos}: [] ↦ bonus: within sec {1,1,2} remove 1; within dev {3,4,4,4,7}
	// remove 2; dir singleton. Total 3, e = 3/9.
	r := ApproxOFD(ctxOf(t, tbl, "pos"), col(t, tbl, "bonus"), Options{Threshold: 0.5, CollectRemovals: true})
	if r.Removals != 3 {
		t.Errorf("removals = %d, want 3", r.Removals)
	}
	if len(r.RemovalRows) != 3 {
		t.Errorf("removal rows = %v", r.RemovalRows)
	}
	if !r.Valid {
		t.Error("3/9 ≤ 0.5 should be valid")
	}
}

func TestExactOFDHolds(t *testing.T) {
	tbl := paperTable1(t)
	if !ExactOFD(ctxOf(t, tbl, "pos", "sal"), col(t, tbl, "bonus")) {
		t.Error("{pos,sal}: [] ↦ bonus should hold")
	}
	if ExactOFD(ctxOf(t, tbl, "pos"), col(t, tbl, "bonus")) {
		t.Error("{pos}: [] ↦ bonus should NOT hold")
	}
}

// --- List-based ODs ----------------------------------------------------------

func TestExactListOD(t *testing.T) {
	tbl := paperTable1(t)
	sal := tbl.ColumnIndex("sal")
	taxGrp := tbl.ColumnIndex("taxGrp")
	pos := tbl.ColumnIndex("pos")
	exp := tbl.ColumnIndex("exp")
	// [sal] ↦ [taxGrp] holds (Example 2.4 as a list OD).
	if ok, _ := ExactListOD(tbl, []int{sal}, []int{taxGrp}); !ok {
		t.Error("[sal] ↦ [taxGrp] should hold")
	}
	// [taxGrp] ↦ [sal] fails (split).
	if ok, _ := ExactListOD(tbl, []int{taxGrp}, []int{sal}); ok {
		t.Error("[taxGrp] ↦ [sal] should NOT hold")
	}
	// [pos,exp] ↦ [pos,sal] fails (swap t7/t8 and split t6/t7).
	if ok, _ := ExactListOD(tbl, []int{pos, exp}, []int{pos, sal}); ok {
		t.Error("[pos,exp] ↦ [pos,sal] should NOT hold")
	}
}

func TestExactListOCSymmetryAndExamples(t *testing.T) {
	tbl := paperTable1(t)
	sal := tbl.ColumnIndex("sal")
	taxGrp := tbl.ColumnIndex("taxGrp")
	tax := tbl.ColumnIndex("tax")
	if !ExactListOC(tbl, []int{taxGrp}, []int{sal}) {
		t.Error("taxGrp ∼ sal should hold as a list OC")
	}
	if !ExactListOC(tbl, []int{sal}, []int{taxGrp}) {
		t.Error("list OC should be symmetric")
	}
	if ExactListOC(tbl, []int{sal}, []int{tax}) {
		t.Error("sal ∼ tax should NOT hold")
	}
}

func TestListAODMatchesCanonicalOnSingletons(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	v := New()
	for iter := 0; iter < 200; iter++ {
		rows := 2 + rng.Intn(20)
		tbl := smallRandomTable(rng, rows)
		a, b := tbl.Column(1), tbl.Column(2)
		want := v.OptimalAOD(partition.Universe(rows), a, b, Options{Threshold: 1})
		got := ListAOD(tbl, []int{1}, []int{2}, Options{Threshold: 1})
		if got.Removals != want.Removals {
			t.Fatalf("iter %d: list AOD removals = %d, canonical = %d", iter, got.Removals, want.Removals)
		}
	}
}

func TestListAODRemovalSetIsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(49))
	for iter := 0; iter < 100; iter++ {
		rows := 2 + rng.Intn(15)
		tbl := smallRandomTable(rng, rows)
		x, y := []int{0, 1}, []int{2}
		r := ListAOD(tbl, x, y, Options{Threshold: 1, CollectRemovals: true})
		dead := make(map[int32]bool)
		for _, row := range r.RemovalRows {
			dead[row] = true
		}
		// Exhaustively verify the list OD holds on the survivors.
		for i := int32(0); i < int32(rows); i++ {
			if dead[i] {
				continue
			}
			for j := int32(0); j < int32(rows); j++ {
				if dead[j] || i == j {
					continue
				}
				// s ⪯X t must imply s ⪯Y t.
				if cmpProj(tbl, x, i, j) <= 0 && cmpProj(tbl, y, i, j) > 0 {
					t.Fatalf("iter %d: violation between %d and %d after removal %v",
						iter, i, j, r.RemovalRows)
				}
			}
		}
		if r.Removals != len(r.RemovalRows) {
			t.Fatalf("iter %d: Removals %d != len(RemovalRows) %d", iter, r.Removals, len(r.RemovalRows))
		}
	}
}

func TestListAODEmptyLists(t *testing.T) {
	tbl := paperTable1(t)
	// [] ↦ Y requires Y constant: for taxGrp (3 values: A×3, B×4, C×2) the
	// minimal removal keeps the most frequent value, removing 5.
	r := ListAOD(tbl, nil, []int{tbl.ColumnIndex("taxGrp")}, Options{Threshold: 1})
	if r.Removals != 5 {
		t.Errorf("[] ↦ [taxGrp] removals = %d, want 5", r.Removals)
	}
	// X ↦ [] holds trivially.
	r = ListAOD(tbl, []int{0}, nil, Options{Threshold: 0})
	if !r.Valid || r.Removals != 0 {
		t.Errorf("[pos] ↦ [] should hold trivially, got %+v", r)
	}
}

func TestValidatorScratchReuse(t *testing.T) {
	// Reusing one Validator across many calls must give identical results to
	// fresh Validators (scratch isolation).
	rng := rand.New(rand.NewSource(50))
	shared := New()
	for iter := 0; iter < 50; iter++ {
		rows := 2 + rng.Intn(30)
		tbl := smallRandomTable(rng, rows)
		ctx := partition.Single(tbl.Column(0))
		a, b := tbl.Column(1), tbl.Column(2)
		r1 := shared.OptimalAOC(ctx, a, b, Options{Threshold: 1})
		r2 := New().OptimalAOC(ctx, a, b, Options{Threshold: 1})
		if r1.Removals != r2.Removals {
			t.Fatalf("iter %d: shared scratch %d != fresh %d", iter, r1.Removals, r2.Removals)
		}
	}
}
