package telemetry

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{1, 0},
		{1024, 0},                     // exactly 2^10 → first bucket (le bound inclusive)
		{1025, 1},                     // just past → next bucket
		{2048, 1},                     // 2^11
		{2049, 2},                     // past 2^11
		{time.Duration(1) << 40, histBuckets - 1}, // last finite bound
		{time.Duration(1)<<40 + 1, histBuckets},   // overflow
		{time.Hour, histBuckets},                  // way past → overflow
		{-5, 0},                                   // clamped
	}
	for _, c := range cases {
		if got := bucketIndex(c.d); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.d, got, c.want)
		}
	}
	// Every observation must land in the bucket whose bound first covers it.
	for pow := histMinPow; pow < histMaxPow; pow++ {
		d := time.Duration(1) << pow
		i := bucketIndex(d)
		if bucketBound(i) < int64(d) {
			t.Errorf("observation %d exceeds its bucket bound %d", d, bucketBound(i))
		}
		if i > 0 && bucketBound(i-1) >= int64(d) {
			t.Errorf("observation %d fits the previous bucket bound %d", d, bucketBound(i-1))
		}
	}
}

func TestHistogramQuantileInterpolation(t *testing.T) {
	var h Histogram
	// 100 observations all inside the (1024, 2048] bucket, uniformly spread.
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(1024 + 10*(i+1)))
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	// p50 interpolates to the middle of the bucket.
	p50 := s.Quantile(0.5)
	if p50 < 1400 || p50 > 1700 {
		t.Errorf("p50 = %v, want ≈1536 (mid-bucket)", p50)
	}
	// p99 lands near the top of the bucket.
	p99 := s.Quantile(0.99)
	if p99 < 1900 || p99 > 2048 {
		t.Errorf("p99 = %v, want near 2048", p99)
	}
	// Quantiles are monotone in q.
	prev := time.Duration(0)
	for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999} {
		v := s.Quantile(q)
		if v < prev {
			t.Errorf("quantile not monotone: q=%g gave %v after %v", q, v, prev)
		}
		prev = v
	}
}

func TestHistogramQuantileSpread(t *testing.T) {
	var h Histogram
	// Half the observations ~2µs, half ~1ms: p50 must sit in the low mode,
	// p99 in the high mode — within a factor of 2 (bucket resolution).
	for i := 0; i < 500; i++ {
		h.Observe(2 * time.Microsecond)
		h.Observe(time.Millisecond)
	}
	s := h.Snapshot()
	if p50 := s.Quantile(0.50); p50 > 10*time.Microsecond {
		t.Errorf("p50 = %v, want ≤ 10µs", p50)
	}
	if p99 := s.Quantile(0.99); p99 < 500*time.Microsecond || p99 > 2*time.Millisecond {
		t.Errorf("p99 = %v, want ≈1ms", p99)
	}
}

func TestHistogramEmptyAndOverflow(t *testing.T) {
	var h Histogram
	if q := h.Snapshot().Quantile(0.5); q != 0 {
		t.Errorf("empty histogram p50 = %v, want 0", q)
	}
	h.Observe(48 * time.Hour) // deep overflow
	s := h.Snapshot()
	if s.Buckets[histBuckets] != 1 {
		t.Fatalf("overflow bucket = %d, want 1", s.Buckets[histBuckets])
	}
	if q := s.Quantile(0.99); q != time.Duration(bucketBound(histBuckets-1)) {
		t.Errorf("overflow quantile = %v, want last finite bound", q)
	}
}

func TestHistogramConcurrentWriters(t *testing.T) {
	var h Histogram
	const writers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(rng.Int63n(int64(time.Second))))
			}
		}(int64(w))
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != writers*per {
		t.Fatalf("count = %d, want %d (lost observations)", s.Count, writers*per)
	}
	var fromBuckets uint64
	for _, n := range s.Buckets {
		fromBuckets += n
	}
	if fromBuckets != s.Count {
		t.Fatalf("bucket sum %d != count %d", fromBuckets, s.Count)
	}
	if s.Sum <= 0 {
		t.Fatalf("sum = %v, want > 0", s.Sum)
	}
}

func FuzzHistogramObserve(f *testing.F) {
	f.Add(int64(0))
	f.Add(int64(1024))
	f.Add(int64(-1))
	f.Add(int64(1) << 41)
	f.Fuzz(func(t *testing.T, ns int64) {
		var h Histogram
		h.Observe(time.Duration(ns))
		s := h.Snapshot()
		if s.Count != 1 {
			t.Fatalf("count = %d after one observation", s.Count)
		}
		for _, q := range []float64{0, 0.5, 1} {
			if v := s.Quantile(q); v < 0 {
				t.Fatalf("negative quantile %v for input %d", v, ns)
			}
		}
	})
}

func TestRegistryPrometheusOutput(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("aod_jobs_total", Label("class", "small"), "Jobs by class.")
	c.Add(3)
	r.Counter("aod_jobs_total", Label("class", "large"), "Jobs by class.").Add(1)
	g := r.Gauge("aod_jobs_in_flight", "", "Jobs running now.")
	g.Set(2)
	r.GaugeFunc("aod_queue_depth", "", "Sampled queue depth.", func() int64 { return 7 })
	r.CounterFunc("aod_tasks_total", "", "Sampled task count.", func() uint64 { return 42 })
	h := r.Histogram("aod_job_seconds", "", "Job latency.")
	h.Observe(3 * time.Millisecond)
	h.Observe(5 * time.Millisecond)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE aod_jobs_total counter",
		`aod_jobs_total{class="small"} 3`,
		`aod_jobs_total{class="large"} 1`,
		"# TYPE aod_jobs_in_flight gauge",
		"aod_jobs_in_flight 2",
		"aod_queue_depth 7",
		"aod_tasks_total 42",
		"# TYPE aod_job_seconds histogram",
		`aod_job_seconds_bucket{le="+Inf"} 2`,
		"aod_job_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
	// HELP/TYPE headers appear once per family even with multiple series.
	if n := strings.Count(out, "# TYPE aod_jobs_total counter"); n != 1 {
		t.Errorf("TYPE header appears %d times, want 1", n)
	}
}

func TestRegistryHandleIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "", "")
	b := r.Counter("x_total", "", "help arrives late")
	if a != b {
		t.Fatal("re-registration returned a different handle")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("handles not shared")
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind conflict")
		}
	}()
	r.Gauge("dup", "", "")
}

func TestExactQuantile(t *testing.T) {
	s := []float64{10, 20, 30, 40, 50}
	if v := ExactQuantile(s, 0.5); v != 30 {
		t.Errorf("p50 = %v, want 30", v)
	}
	if v := ExactQuantile(s, 0); v != 10 {
		t.Errorf("p0 = %v, want 10", v)
	}
	if v := ExactQuantile(s, 1); v != 50 {
		t.Errorf("p100 = %v, want 50", v)
	}
	if v := ExactQuantile([]float64{7}, 0.99); v != 7 {
		t.Errorf("single-sample p99 = %v, want 7", v)
	}
	if v := ExactQuantile(nil, 0.5); v != 0 {
		t.Errorf("empty p50 = %v, want 0", v)
	}
	// Interpolated between ranks.
	if v := ExactQuantile([]float64{0, 100}, 0.25); v != 25 {
		t.Errorf("interpolated p25 = %v, want 25", v)
	}
}

func TestQuantilesOf(t *testing.T) {
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Observe(time.Millisecond)
	}
	q := QuantilesOf(&h)
	if q.P50 <= 0 || q.P99 < q.P50 || q.P999 < q.P99 {
		t.Errorf("quantiles not ordered: %+v", q)
	}
}

func TestLabelEscaping(t *testing.T) {
	if got := Label("path", `a"b\c`); got != `path="a\"b\\c"` {
		t.Errorf("Label = %s", got)
	}
}
