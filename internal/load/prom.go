package load

import (
	"bufio"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// HistSnapshot is one scraped Prometheus histogram series: cumulative
// observation counts at ascending upper bounds (seconds), with the +Inf
// bucket last (Bounds holds math.Inf(1) for it). It mirrors — through the
// text exposition — what telemetry.HistogramSnapshot holds in-process.
type HistSnapshot struct {
	Bounds []float64 // ascending; +Inf last when present
	Cum    []uint64  // cumulative count at each bound
	Sum    float64   // seconds
	Count  uint64
}

// ParseHistograms extracts every series of the named histogram family from
// Prometheus text exposition, keyed by the series' "class" label value (""
// for an unlabeled series). Unknown lines are skipped, so the parser is
// robust to whatever else shares the scrape.
func ParseHistograms(text, family string) map[string]HistSnapshot {
	out := make(map[string]*HistSnapshot)
	get := func(class string) *HistSnapshot {
		h, ok := out[class]
		if !ok {
			h = &HistSnapshot{}
			out[class] = h
		}
		return h
	}
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || !strings.HasPrefix(line, family) {
			continue
		}
		rest := line[len(family):]
		var kind string
		switch {
		case strings.HasPrefix(rest, "_bucket"):
			kind, rest = "bucket", rest[len("_bucket"):]
		case strings.HasPrefix(rest, "_sum"):
			kind, rest = "sum", rest[len("_sum"):]
		case strings.HasPrefix(rest, "_count"):
			kind, rest = "count", rest[len("_count"):]
		default:
			continue // a different family sharing the prefix
		}
		labels, value, ok := splitSeries(rest)
		if !ok {
			continue
		}
		class := labelValue(labels, "class")
		switch kind {
		case "bucket":
			leStr := labelValue(labels, "le")
			var le float64
			if leStr == "+Inf" {
				le = math.Inf(1)
			} else {
				var err error
				if le, err = strconv.ParseFloat(leStr, 64); err != nil {
					continue
				}
			}
			n, err := strconv.ParseUint(value, 10, 64)
			if err != nil {
				continue
			}
			h := get(class)
			h.Bounds = append(h.Bounds, le)
			h.Cum = append(h.Cum, n)
		case "sum":
			if f, err := strconv.ParseFloat(value, 64); err == nil {
				get(class).Sum = f
			}
		case "count":
			if n, err := strconv.ParseUint(value, 10, 64); err == nil {
				get(class).Count = n
			}
		}
	}
	res := make(map[string]HistSnapshot, len(out))
	for class, h := range out {
		// Exposition order is ascending already; sort defensively (stable
		// pairing of bounds and cums).
		idx := make([]int, len(h.Bounds))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool { return h.Bounds[idx[a]] < h.Bounds[idx[b]] })
		sorted := HistSnapshot{Sum: h.Sum, Count: h.Count}
		for _, i := range idx {
			sorted.Bounds = append(sorted.Bounds, h.Bounds[i])
			sorted.Cum = append(sorted.Cum, h.Cum[i])
		}
		res[class] = sorted
	}
	return res
}

// splitSeries splits `{label="a",...} 42` or ` 42` into (labels, value).
func splitSeries(rest string) (labels, value string, ok bool) {
	rest = strings.TrimSpace(rest)
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return "", "", false
		}
		labels, rest = rest[1:end], rest[end+1:]
	}
	value = strings.TrimSpace(rest)
	if value == "" {
		return "", "", false
	}
	// Drop an optional timestamp column.
	if i := strings.IndexByte(value, ' '); i >= 0 {
		value = value[:i]
	}
	return labels, value, true
}

// labelValue extracts one label's (unescaped) value from a raw label body.
func labelValue(labels, key string) string {
	for _, part := range strings.Split(labels, ",") {
		k, v, ok := strings.Cut(part, "=")
		if !ok || strings.TrimSpace(k) != key {
			continue
		}
		v = strings.TrimSpace(v)
		v = strings.TrimPrefix(v, `"`)
		v = strings.TrimSuffix(v, `"`)
		v = strings.ReplaceAll(v, `\"`, `"`)
		v = strings.ReplaceAll(v, `\n`, "\n")
		return strings.ReplaceAll(v, `\\`, `\`)
	}
	return ""
}

// cumAt returns the snapshot's cumulative count at bound b. The exposition
// emits every finite bucket up to the last non-empty one and then +Inf, so a
// bound past the emitted finite range saturates at the total count and a
// bound below the first emitted one is zero.
func (h HistSnapshot) cumAt(b float64) uint64 {
	i := sort.SearchFloat64s(h.Bounds, b)
	if i < len(h.Bounds) && h.Bounds[i] == b {
		return h.Cum[i]
	}
	if len(h.Bounds) == 0 || b < h.Bounds[0] {
		return 0
	}
	return h.Count // past every emitted bound: saturated
}

// Sub returns the histogram of observations recorded after `before` was
// taken — the bucket-wise difference of two cumulative snapshots of the same
// monotonically growing series. This is how a run isolates its own traffic
// from whatever the server observed earlier (warmup, previous runs).
func (h HistSnapshot) Sub(before HistSnapshot) HistSnapshot {
	out := HistSnapshot{
		Bounds: append([]float64(nil), h.Bounds...),
		Cum:    make([]uint64, len(h.Cum)),
		Sum:    h.Sum - before.Sum,
	}
	for i, b := range h.Bounds {
		prev := before.cumAt(b)
		if h.Cum[i] > prev {
			out.Cum[i] = h.Cum[i] - prev
		}
	}
	if h.Count > before.Count {
		out.Count = h.Count - before.Count
	}
	return out
}

// Quantile computes the q-quantile (0..1) with linear interpolation inside
// the containing bucket — the same estimator telemetry uses at read time, so
// scraped and in-process numbers agree to bucket resolution. The +Inf bucket
// reports the last finite bound (a lower bound on the truth).
func (h HistSnapshot) Quantile(q float64) time.Duration {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	var prevCum uint64
	lastFinite := 0.0
	for i, b := range h.Bounds {
		if !math.IsInf(b, 1) {
			lastFinite = b
		}
		n := h.Cum[i] - prevCum
		if n > 0 && float64(h.Cum[i]) >= rank {
			if math.IsInf(b, 1) {
				return secondsToDuration(lastFinite)
			}
			lo := 0.0
			if i > 0 {
				lo = h.Bounds[i-1]
			}
			frac := (rank - float64(prevCum)) / float64(n)
			return secondsToDuration(lo + frac*(b-lo))
		}
		prevCum = h.Cum[i]
	}
	return secondsToDuration(lastFinite)
}

func secondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
