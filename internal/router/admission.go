package router

import (
	"math"
	"sync"
	"time"
)

// TenantQuota bounds one tenant's submit rate through the router: a token
// bucket refilling at Rate submits/second with bursts up to Burst. A zero
// (or negative) Rate means unlimited — the quota system costs nothing for
// tenants nobody bothered to configure.
type TenantQuota struct {
	Rate  float64 `json:"rate"`
	Burst float64 `json:"burst"`
}

// maxTenantBuckets bounds the bucket map. The tenant name arrives in a
// client-controlled header, so an unbounded map would be a trivial
// memory-exhaustion vector.
const maxTenantBuckets = 4096

type bucket struct {
	tokens float64
	last   time.Time
}

// admitter implements per-tenant token-bucket admission. Buckets are lazily
// created on first sight of a tenant, pre-filled to Burst so a new tenant's
// first burst is never punished.
type admitter struct {
	mu      sync.Mutex
	def     TenantQuota
	quotas  map[string]TenantQuota
	buckets map[string]*bucket
}

func newAdmitter(def TenantQuota, quotas map[string]TenantQuota) *admitter {
	return &admitter{def: def, quotas: quotas, buckets: make(map[string]*bucket)}
}

func (a *admitter) quotaFor(tenant string) TenantQuota {
	if q, ok := a.quotas[tenant]; ok {
		return q
	}
	return a.def
}

// allow spends one token from the tenant's bucket. When it can't, the
// returned retryAfter is the whole seconds until one token accrues (≥1) —
// exactly the Retry-After the shed response carries, so a well-behaved
// client that waits that long is admitted on its next try.
func (a *admitter) allow(tenant string, now time.Time) (retryAfter int, ok bool) {
	q := a.quotaFor(tenant)
	if q.Rate <= 0 {
		return 0, true
	}
	if q.Burst < 1 {
		q.Burst = 1
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	b := a.buckets[tenant]
	if b == nil {
		if len(a.buckets) >= maxTenantBuckets {
			// Arbitrary single eviction keeps the map bounded; the evicted
			// tenant merely restarts with a full bucket.
			for k := range a.buckets {
				delete(a.buckets, k)
				break
			}
		}
		b = &bucket{tokens: q.Burst, last: now}
		a.buckets[tenant] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(q.Burst, b.tokens+dt*q.Rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return 0, true
	}
	secs := int(math.Ceil((1 - b.tokens) / q.Rate))
	if secs < 1 {
		secs = 1
	}
	return secs, false
}

// queueShed reports whether every healthy replica's oldest queued job is
// older than MaxQueueAge. That is the router's only reason to refuse work
// the replicas would technically still accept: if the least-congested
// replica already has a job that waited past the bound, a new submit is
// guaranteed to blow its latency budget, and an honest 503 with a real
// Retry-After beats a slow failure. Returns the minimum observed age so the
// caller can derive the hint from actual congestion.
func (rt *Router) queueShed() (time.Duration, bool) {
	if rt.cfg.MaxQueueAge <= 0 {
		return 0, false
	}
	minAge := time.Duration(-1)
	for _, rp := range rt.replicas {
		if !rp.up.Load() {
			continue
		}
		age := time.Duration(rp.queueAgeNs.Load())
		if minAge < 0 || age < minAge {
			minAge = age
		}
	}
	if minAge < 0 {
		return 0, false // no healthy replica: the retry path handles that
	}
	return minAge, minAge > rt.cfg.MaxQueueAge
}
