// Package lattice implements the set-based attribute lattice that the
// discovery framework (Sec. 3.1, after FASTOD [Szlichta et al. 2017])
// traverses level-wise: attribute sets as bitsets, candidate pair sets for
// order compatibility, and lattice nodes carrying the validity state that
// drives axiom-based pruning.
package lattice

import (
	"math/bits"
	"strings"
)

// MaxAttrs is the maximum number of attributes supported by the bitset
// representation.
const MaxAttrs = 64

// AttrSet is a set of attribute indexes 0..63 packed into a bitmask.
type AttrSet uint64

// NewAttrSet builds a set from attribute indexes.
func NewAttrSet(attrs ...int) AttrSet {
	var s AttrSet
	for _, a := range attrs {
		s |= 1 << uint(a)
	}
	return s
}

// Has reports whether attribute a is in the set.
func (s AttrSet) Has(a int) bool { return s&(1<<uint(a)) != 0 }

// Add returns s ∪ {a}.
func (s AttrSet) Add(a int) AttrSet { return s | 1<<uint(a) }

// Remove returns s \ {a}.
func (s AttrSet) Remove(a int) AttrSet { return s &^ (1 << uint(a)) }

// Union returns s ∪ t.
func (s AttrSet) Union(t AttrSet) AttrSet { return s | t }

// Intersect returns s ∩ t.
func (s AttrSet) Intersect(t AttrSet) AttrSet { return s & t }

// Minus returns s \ t.
func (s AttrSet) Minus(t AttrSet) AttrSet { return s &^ t }

// Card returns |s|.
func (s AttrSet) Card() int { return bits.OnesCount64(uint64(s)) }

// IsEmpty reports whether the set is empty.
func (s AttrSet) IsEmpty() bool { return s == 0 }

// Contains reports whether t ⊆ s.
func (s AttrSet) Contains(t AttrSet) bool { return t&^s == 0 }

// Min returns the smallest attribute in the set, or -1 if empty.
func (s AttrSet) Min() int {
	if s == 0 {
		return -1
	}
	return bits.TrailingZeros64(uint64(s))
}

// Max returns the largest attribute in the set, or -1 if empty.
func (s AttrSet) Max() int {
	if s == 0 {
		return -1
	}
	return 63 - bits.LeadingZeros64(uint64(s))
}

// Attrs returns the attribute indexes in ascending order.
func (s AttrSet) Attrs() []int {
	out := make([]int, 0, s.Card())
	for t := s; t != 0; {
		a := bits.TrailingZeros64(uint64(t))
		out = append(out, a)
		t &= t - 1
	}
	return out
}

// ForEach calls fn for every attribute in ascending order.
func (s AttrSet) ForEach(fn func(a int)) {
	for t := s; t != 0; {
		a := bits.TrailingZeros64(uint64(t))
		fn(a)
		t &= t - 1
	}
}

// String renders the set as "{0,2,5}".
func (s AttrSet) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	s.ForEach(func(a int) {
		if !first {
			sb.WriteByte(',')
		}
		first = false
		sb.WriteString(itoa(a))
	})
	sb.WriteByte('}')
	return sb.String()
}

// Format renders the set using column names, e.g. "{pos,exp}".
func (s AttrSet) Format(names []string) string {
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	s.ForEach(func(a int) {
		if !first {
			sb.WriteByte(',')
		}
		first = false
		if a < len(names) {
			sb.WriteString(names[a])
		} else {
			sb.WriteString(itoa(a))
		}
	})
	sb.WriteByte('}')
	return sb.String()
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
