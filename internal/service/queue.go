package service

import (
	"container/heap"
	"time"
)

// jobQueue is the pending-job priority queue: jobs waiting for a worker are
// ordered by estimated cost (rows × cols × levels to explore, see
// aod.EstimateWork), smallest first, with submission order breaking ties.
// This is the size-aware scheduling the FIFO queue lacked: a cheap
// interactive probe no longer waits behind a multi-minute wide-table crawl
// submitted moments earlier.
//
// Cost order alone lets a steady stream of small jobs delay a large one
// indefinitely, so the queue ages: alongside the heap it keeps the jobs in
// admission order, and once the oldest job has waited maxWait, pop serves it
// ahead of any cheaper newcomer. Aging is a pop-time decision against a
// fixed admission timestamp — the heap's cost invariant never rots in place.
//
// Not safe for concurrent use; the Service serializes access under its mutex.
type jobQueue struct {
	h jobHeap
	// fifo holds queued jobs in admission order. Entries are removed lazily:
	// a job popped or removed via the heap keeps its fifo slot until it
	// reaches the front (heapIdx == -1 marks it dead).
	fifo []*Job
	// maxWait is the aging bound (0 disables); now is the clock (test seam).
	maxWait time.Duration
	now     func() time.Time
}

func (q *jobQueue) Len() int { return len(q.h) }

// push admits the job. Its cost, seq, and created stamp must already be set.
func (q *jobQueue) push(j *Job) {
	heap.Push(&q.h, j)
	q.fifo = append(q.fifo, j)
}

// oldest returns the longest-queued live job, compacting dead fifo entries.
func (q *jobQueue) oldest() *Job {
	for len(q.fifo) > 0 && q.fifo[0].heapIdx < 0 {
		q.fifo[0] = nil
		q.fifo = q.fifo[1:]
	}
	if len(q.fifo) == 0 {
		return nil
	}
	return q.fifo[0]
}

// pop removes and returns the next job — the cheapest, unless the oldest job
// has aged past maxWait, in which case the oldest — or nil when empty.
func (q *jobQueue) pop() *Job {
	if len(q.h) == 0 {
		return nil
	}
	if old := q.oldest(); old != nil && q.maxWait > 0 && q.now != nil &&
		q.now().Sub(old.created) >= q.maxWait {
		heap.Remove(&q.h, old.heapIdx)
		return old
	}
	return heap.Pop(&q.h).(*Job)
}

// remove takes the job out of the queue (e.g. on cancellation); it reports
// whether the job was queued.
func (q *jobQueue) remove(j *Job) bool {
	if j.heapIdx < 0 || j.heapIdx >= len(q.h) || q.h[j.heapIdx] != j {
		return false
	}
	heap.Remove(&q.h, j.heapIdx)
	return true
}

// jobHeap implements container/heap. Job.cost is stable while the job is
// queued (it is only refined by level snapshots, which require the job to be
// running), so the ordering invariant cannot rot in place.
type jobHeap []*Job

func (h jobHeap) Len() int { return len(h) }

func (h jobHeap) Less(i, j int) bool {
	if h[i].cost != h[j].cost {
		return h[i].cost < h[j].cost
	}
	return h[i].seq < h[j].seq
}

func (h jobHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}

func (h *jobHeap) Push(x any) {
	j := x.(*Job)
	j.heapIdx = len(*h)
	*h = append(*h, j)
}

func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	j.heapIdx = -1
	*h = old[:n-1]
	return j
}
