package core

import (
	"sort"

	"aod/internal/dataset"
	"aod/internal/lattice"
)

// ReferenceDiscover is an independent, exponential brute-force implementation
// of the discovery semantics, used by differential tests to pin Discover's
// behaviour (and available for debugging small instances). It enumerates all
// 2^|R| contexts, computes exact approximation factors with quadratic
// dynamic programming (not the patience/Fredman structure used by the
// engine), and applies the minimality definitions literally.
//
// It supports ValidatorExact and ValidatorOptimal semantics (true errors);
// the iterative validator's overestimation behaviour is engine-specific and
// has no reference counterpart.
func ReferenceDiscover(tbl *dataset.Table, cfg Config) (*Result, error) {
	numAttrs := tbl.NumCols()
	if err := cfg.Validate(numAttrs); err != nil {
		return nil, err
	}
	eps := cfg.effectiveThreshold()
	n := tbl.NumRows()
	maxLevel := numAttrs
	if cfg.MaxLevel > 0 && cfg.MaxLevel < maxLevel {
		maxLevel = cfg.MaxLevel
	}

	// classesFor groups rows by their projection onto the context bitmask.
	classesFor := func(ctx uint64) [][]int32 {
		groups := make(map[string][]int32)
		var order []string
		key := make([]byte, 0, numAttrs*4)
		for row := 0; row < n; row++ {
			key = key[:0]
			for a := 0; a < numAttrs; a++ {
				if ctx&(1<<uint(a)) == 0 {
					continue
				}
				r := tbl.Column(a).Rank(row)
				key = append(key, byte(r), byte(r>>8), byte(r>>16), byte(r>>24))
			}
			k := string(key)
			if _, ok := groups[k]; !ok {
				order = append(order, k)
			}
			groups[k] = append(groups[k], int32(row))
		}
		out := make([][]int32, 0, len(order))
		for _, k := range order {
			out = append(out, groups[k])
		}
		return out
	}

	valid := func(removals int) bool {
		return float64(removals)/float64(n) <= eps+1e-12
	}

	// ofdRemovals: g3 with naive per-class counting.
	ofdRemovals := func(classes [][]int32, a int) int {
		ra := tbl.Column(a).Ranks()
		total := 0
		for _, cls := range classes {
			freq := make(map[int32]int)
			best := 0
			for _, row := range cls {
				freq[ra[row]]++
				if freq[ra[row]] > best {
					best = freq[ra[row]]
				}
			}
			total += len(cls) - best
		}
		return total
	}

	// ocRemovals: per class, sort by (A asc, B asc) and run the quadratic
	// LNDS dynamic program on the B projection. desc flips B (the
	// bidirectional variant A ∼ B↓).
	ocRemovals := func(classes [][]int32, a, b int, desc bool) int {
		ra := tbl.Column(a).Ranks()
		cb := tbl.Column(b)
		if desc {
			cb = cb.Reversed()
		}
		rb := cb.Ranks()
		total := 0
		for _, cls := range classes {
			rows := append([]int32{}, cls...)
			sort.Slice(rows, func(i, j int) bool {
				if ra[rows[i]] != ra[rows[j]] {
					return ra[rows[i]] < ra[rows[j]]
				}
				return rb[rows[i]] < rb[rows[j]]
			})
			m := len(rows)
			dp := make([]int, m)
			best := 0
			for i := 0; i < m; i++ {
				dp[i] = 1
				for j := 0; j < i; j++ {
					if rb[rows[j]] <= rb[rows[i]] && dp[j]+1 > dp[i] {
						dp[i] = dp[j] + 1
					}
				}
				if dp[i] > best {
					best = dp[i]
				}
			}
			total += m - best
		}
		return total
	}

	type pairKey struct {
		a, b int
		desc bool
	}
	validOFD := make(map[uint64]map[int]int)    // ctx -> attr -> removals (valid only)
	validOC := make(map[uint64]map[pairKey]int) // ctx -> directed pair -> removals (valid only)
	classesCache := make(map[uint64][][]int32, 1<<uint(numAttrs))
	full := uint64(1)<<uint(numAttrs) - 1
	directions := []bool{false}
	if cfg.Bidirectional {
		directions = []bool{false, true}
	}
	for ctx := uint64(0); ctx <= full; ctx++ {
		classesCache[ctx] = classesFor(ctx)
		validOFD[ctx] = make(map[int]int)
		validOC[ctx] = make(map[pairKey]int)
		for a := 0; a < numAttrs; a++ {
			if ctx&(1<<uint(a)) != 0 {
				continue
			}
			if rem := ofdRemovals(classesCache[ctx], a); valid(rem) {
				validOFD[ctx][a] = rem
			}
			for b := a + 1; b < numAttrs; b++ {
				if ctx&(1<<uint(b)) != 0 {
					continue
				}
				for _, desc := range directions {
					if rem := ocRemovals(classesCache[ctx], a, b, desc); valid(rem) {
						validOC[ctx][pairKey{a, b, desc}] = rem
					}
				}
			}
		}
	}

	// strictSubsets iterates proper submasks of ctx.
	anyStrictSubset := func(ctx uint64, pred func(sub uint64) bool) bool {
		for sub := (ctx - 1) & ctx; ; sub = (sub - 1) & ctx {
			if pred(sub) {
				return true
			}
			if sub == 0 {
				return false
			}
		}
	}
	anySubsetIncl := func(ctx uint64, pred func(sub uint64) bool) bool {
		if pred(ctx) {
			return true
		}
		if ctx == 0 {
			return false
		}
		return anyStrictSubset(ctx, pred)
	}

	res := &Result{}
	res.Stats.OCsFoundPerLevel = make([]int, numAttrs+1)
	res.Stats.OFDsFoundPerLevel = make([]int, numAttrs+1)
	for ctx := uint64(0); ctx <= full; ctx++ {
		level := popcount64(ctx)
		// Minimal OFDs at lattice level |ctx|+1.
		if level+1 <= maxLevel {
			attrs := make([]int, 0, len(validOFD[ctx]))
			for a := range validOFD[ctx] {
				attrs = append(attrs, a)
			}
			sort.Ints(attrs)
			for _, a := range attrs {
				minimal := !(ctx != 0 && anyStrictSubset(ctx, func(sub uint64) bool {
					_, ok := validOFD[sub][a]
					return ok
				}))
				if minimal {
					rem := validOFD[ctx][a]
					res.Stats.OFDsFoundPerLevel[level+1]++
					if cfg.IncludeOFDs {
						res.OFDs = append(res.OFDs, OFD{
							Context:  lattice.AttrSet(ctx),
							A:        a,
							Error:    float64(rem) / float64(n),
							Removals: rem,
							Level:    level + 1,
							Score:    Score(level, float64(rem)/float64(n)),
						})
					}
				}
			}
		}
		// Minimal OCs at lattice level |ctx|+2.
		if level+2 > maxLevel {
			continue
		}
		pairs := make([]pairKey, 0, len(validOC[ctx]))
		for p := range validOC[ctx] {
			pairs = append(pairs, p)
		}
		sort.Slice(pairs, func(i, j int) bool {
			if pairs[i].a != pairs[j].a {
				return pairs[i].a < pairs[j].a
			}
			if pairs[i].b != pairs[j].b {
				return pairs[i].b < pairs[j].b
			}
			return !pairs[i].desc && pairs[j].desc
		})
		for _, p := range pairs {
			if ctx != 0 && anyStrictSubset(ctx, func(sub uint64) bool {
				_, ok := validOC[sub][p]
				return ok
			}) {
				continue // valid in a sub-context: non-minimal
			}
			if anySubsetIncl(ctx, func(sub uint64) bool {
				_, okA := validOFD[sub][p.a]
				_, okB := validOFD[sub][p.b]
				return okA || okB
			}) {
				continue // constancy-trivialized
			}
			rem := validOC[ctx][p]
			res.Stats.OCsFoundPerLevel[level+2]++
			res.OCs = append(res.OCs, OC{
				Context:    lattice.AttrSet(ctx),
				A:          p.a,
				B:          p.b,
				Descending: p.desc,
				Error:      float64(rem) / float64(n),
				Removals:   rem,
				Level:      level + 2,
				Score:      Score(level, float64(rem)/float64(n)),
			})
		}
	}
	res.Stats.Rows = n
	res.Stats.Attrs = numAttrs
	return res, nil
}

func popcount64(x uint64) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}
