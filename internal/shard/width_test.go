package shard

import (
	"testing"

	"aod/internal/core"
	"aod/internal/gen"
)

// activeWorkers counts the cluster's workers that were handed at least one
// node task.
func activeWorkers(c *Cluster) int {
	n := 0
	for _, st := range c.Snapshot() {
		if st.AssignedTasks > 0 {
			n++
		}
	}
	return n
}

// TestShardedQuantumWidthPolicy pins the adaptive fan-out end to end: a job
// far below one work quantum engages exactly one of four loopback workers, a
// disabled quantum fans out to all four, and both produce the serial result
// byte for byte.
func TestShardedQuantumWidthPolicy(t *testing.T) {
	tbl := gen.Flight(gen.FlightConfig{Rows: 600, Attrs: 7, Seed: 5})
	cfg := core.Config{Threshold: 0.10, Validator: core.ValidatorOptimal, IncludeOFDs: true}
	want := discoverWith(t, tbl, cfg, core.Serial())

	// 600×7×7 ≈ 29K work units: far below DefaultShardWorkQuantum, so the
	// width policy must keep the whole job on a single worker.
	narrow := Loopback(4)
	defer narrow.Close()
	got := discoverWith(t, tbl, cfg, core.ShardedQuantum(narrow, 0))
	requireIdentical(t, "quantum-default", want, got)
	if n := activeWorkers(narrow); n != 1 {
		t.Errorf("default quantum on a tiny job engaged %d workers, want 1", n)
	}

	// A negative quantum disables the cap: every worker takes a slice
	// (levels here always have at least 4 tasks until the lattice thins).
	wide := Loopback(4)
	defer wide.Close()
	got = discoverWith(t, tbl, cfg, core.ShardedQuantum(wide, -1))
	requireIdentical(t, "quantum-uncapped", want, got)
	if n := activeWorkers(wide); n != 4 {
		t.Errorf("uncapped quantum engaged %d workers, want all 4", n)
	}

	// One worker per quantum: a quantum sized at a third of the job's
	// estimate engages exactly three of the four workers.
	cost := int64(600 * 7 * 7)
	three := Loopback(4)
	defer three.Close()
	got = discoverWith(t, tbl, cfg, core.ShardedQuantum(three, cost/3))
	requireIdentical(t, "quantum-thirds", want, got)
	if n := activeWorkers(three); n != 3 {
		t.Errorf("cost/3 quantum engaged %d workers, want 3", n)
	}
}
