package core

import (
	"context"
	"runtime"
	"sync"

	"aod/internal/dataset"
	"aod/internal/lattice"
	"aod/internal/partition"
	"aod/internal/validate"
)

// Serial returns the sequential executor: one engine processes every node of
// each level in order, accumulating directly into the run's result.
func Serial() Executor { return &serialExecutor{} }

type serialExecutor struct {
	eng *engine
}

func (s *serialExecutor) prepare(t *traversal) bool {
	s.eng = &engine{t: t, v: validate.New(), res: t.res}
	if !t.buildSingles(1) {
		return false
	}
	if t.cfg.UseSortedScan && t.cfg.Validator == ValidatorExact {
		t.orders = validate.NewTableOrders(t.tbl)
	}
	return true
}

func (s *serialExecutor) close() {}

// buildSingles materializes the per-attribute partitions, across `workers`
// goroutines when workers > 1. Cancellation is polled per column so an abort
// doesn't pay for the whole O(cols · rows) startup phase on large tables; it
// returns false when the run was aborted (some singles may be nil then — the
// caller must not touch them). Pre-injected singles (a warm Pipeline.Prepared
// start) short-circuit the build entirely.
func (t *traversal) buildSingles(workers int) bool {
	if t.singles != nil {
		return !t.abortedInto(&t.res.Stats)
	}
	t.singles = make([]*partition.Stripped, t.numAttrs)
	if workers <= 1 {
		for a := 0; a < t.numAttrs; a++ {
			if t.abortedInto(&t.res.Stats) {
				return false
			}
			t.singles[a] = partition.Single(t.tbl.Column(a))
		}
		return true
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for a := 0; a < t.numAttrs; a++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(a int) {
			defer wg.Done()
			defer func() { <-sem }()
			if t.ctx != nil && t.ctx.Err() != nil {
				return
			}
			t.singles[a] = partition.Single(t.tbl.Column(a))
		}(a)
	}
	wg.Wait()
	// Some singles may be nil after a cancellation; abort before anything
	// touches them.
	return !t.abortedInto(&t.res.Stats)
}

func (s *serialExecutor) runLevel(t *traversal, cur, prev, prev2 *lattice.Level) int {
	st := &t.res.Stats
	candidates := 0
	for _, node := range cur.Nodes {
		if s.eng.aborted() {
			return candidates
		}
		st.NodesProcessed++
		candidates += s.eng.processNode(node, prev, prev2)
	}
	// Record a deadline/cancellation that landed after the last node, so the
	// pipeline stops before generating the next level.
	s.eng.aborted()
	return candidates
}

// Pool returns the worker-pool executor: the nodes of each level fan out
// across `workers` goroutines (each owning a validator and scratch), and the
// per-node outputs are merged in node order, so the result is identical to
// the serial executor's. This is the shared-memory analogue of the
// distributed extension the paper lists as future work (after Saxena, Golab &
// Ilyas, PVLDB 2019 — reference [8]): nodes of a level are independent given
// the previous level's state, so they partition cleanly across workers.
// workers <= 0 selects GOMAXPROCS.
func Pool(workers int) Executor {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &poolExecutor{workers: workers}
}

type poolExecutor struct {
	workers int
	engines []*engine // one per worker, reused across levels
}

// nodeOut is one node's contribution, merged in node order to preserve the
// sequential deterministic result order.
type nodeOut struct {
	ocs        []OC
	ofds       []OFD
	candidates int
	stats      Stats
}

func (p *poolExecutor) prepare(t *traversal) bool {
	if !t.buildSingles(p.workers) {
		return false
	}
	p.engines = make([]*engine, p.workers)
	for i := range p.engines {
		p.engines[i] = &engine{t: t, v: validate.New()}
	}
	return true
}

func (p *poolExecutor) close() {}

func (p *poolExecutor) runLevel(t *traversal, cur, prev, prev2 *lattice.Level) int {
	st := &t.res.Stats
	if t.abortedInto(st) {
		return 0
	}
	// Phase 1: materialize this level's parent partitions in parallel — safe
	// because every node only writes to itself once its parents are
	// materialized, and parents live on already-complete levels.
	materializeLevel(t, prev, p.workers)

	// Phase 2: validate candidates of all nodes concurrently. Each worker
	// owns an engine (validator + scratch); per-node outputs are merged in
	// node order afterwards to preserve the sequential result order.
	outs := make([]nodeOut, len(cur.Nodes))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for _, eng := range p.engines {
		wg.Add(1)
		go func(eng *engine) {
			defer wg.Done()
			for idx := range jobs {
				eng.res = &Result{}
				eng.res.Stats.OCsFoundPerLevel = make([]int, t.numAttrs+1)
				eng.res.Stats.OFDsFoundPerLevel = make([]int, t.numAttrs+1)
				eng.res.Stats.NodesProcessed = 1
				c := eng.processNode(cur.Nodes[idx], prev, prev2)
				outs[idx] = nodeOut{
					ocs:        eng.res.OCs,
					ofds:       eng.res.OFDs,
					candidates: c,
					stats:      eng.res.Stats,
				}
			}
		}(eng)
	}
	for idx := range cur.Nodes {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()

	candidates := 0
	for i := range outs {
		o := &outs[i]
		t.res.OCs = append(t.res.OCs, o.ocs...)
		t.res.OFDs = append(t.res.OFDs, o.ofds...)
		candidates += o.candidates
		st.merge(&o.stats)
	}
	return candidates
}

// materializeLevel ensures every node of the level has its partition, in
// parallel across `workers` goroutines (the pool executor's phase 1; the
// sharded executor reuses it before shipping partition frames). The context
// is polled per node so a canceled run does not pay for a whole level's
// partitioning; skipped nodes materialize lazily if ever touched (they won't
// be — the caller aborts next).
func materializeLevel(t *traversal, lvl *lattice.Level, workers int) {
	if lvl == nil {
		return
	}
	var wg sync.WaitGroup
	jobs := make(chan *lattice.Node)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := range jobs {
				if t.ctx != nil && t.ctx.Err() != nil {
					continue // keep draining; the caller aborts the level
				}
				n.PartitionIn(t.arena, t.singles)
			}
		}()
	}
	for _, n := range lvl.Nodes {
		jobs <- n
	}
	close(jobs)
	wg.Wait()
}

// DiscoverParallel runs the same discovery as Discover but validates the
// candidates of each lattice level concurrently across a worker pool (the
// Pool executor on the shared pipeline). The result is identical to
// Discover's — the node-order merge re-establishes the sequential
// deterministic order; only wall-clock time differs. workers <= 0 selects
// GOMAXPROCS.
func DiscoverParallel(tbl *dataset.Table, cfg Config, workers int) (*Result, error) {
	return DiscoverParallelContext(context.Background(), tbl, cfg, workers)
}

// DiscoverParallelContext is DiscoverParallel with cooperative cancellation:
// every worker polls the context between candidate validations, so a
// canceled run frees its workers within one validation's latency. As in
// DiscoverContext, cancellation returns the partial result with
// Stats.Canceled set and a nil error.
func DiscoverParallelContext(ctx context.Context, tbl *dataset.Table, cfg Config, workers int) (*Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return DiscoverContext(ctx, tbl, cfg)
	}
	return Pipeline{Executor: Pool(workers)}.Run(ctx, tbl, cfg)
}
