// Datacleaning demonstrates the end of the paper's pipeline (Fig. 1):
// discovered approximate dependencies drive error repair — each flagged
// tuple gets a suggested value range that restores consistency — and
// outlier detection via multi-dependency suspicion ranking.
//
// Run with: go run ./examples/datacleaning
package main

import (
	"fmt"
	"log"

	"aod"
)

func main() {
	// Sensor readings: temperature and two derived calibrations. Device 2's
	// gauge glitched on a couple of readings.
	ds, err := aod.NewBuilder().
		AddInts("device", []int64{1, 1, 1, 1, 2, 2, 2, 2, 2, 3, 3, 3}).
		AddInts("celsius", []int64{10, 15, 20, 25, 5, 10, 15, 20, 25, 30, 35, 40}).
		AddInts("fahrenheit", []int64{50, 59, 68, 77, 41, 50, 59, 680, 77, 86, 95, 104}).
		AddInts("kelvinX10", []int64{2831, 2881, 2931, 2981, 2781, 2831, 288, 2931, 2981, 3031, 3081, 3131}).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("dataset:", ds)

	// Discover with removal sets: the glitched readings surface as the
	// exceptions of otherwise-clean dependencies.
	rep, err := aod.Discover(ds, aod.Options{
		Threshold:          0.20,
		Algorithm:          aod.AlgorithmOptimal,
		CollectRemovalSets: true,
		IncludeOFDs:        true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndiscovered %d AOCs at ε=20%%:\n", len(rep.OCs))
	for _, oc := range rep.OCs {
		fmt.Printf("  %v (flags rows %v)\n", oc, oc.RemovalRows)
	}

	// Repair suggestions for the temperature scale dependency.
	repairs, err := aod.SuggestRepairs(ds, nil, "celsius", "fahrenheit")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrepair suggestions for celsius ∼ fahrenheit:")
	for _, r := range repairs {
		lo, hi := r.Lo, r.Hi
		if lo == "" {
			lo = "-∞"
		}
		if hi == "" {
			hi = "+∞"
		}
		fmt.Printf("  row %d: %s=%s is inconsistent; any value in [%s, %s] restores order\n",
			r.Row, r.Column, r.Current, lo, hi)
	}

	// Outlier detection: rows flagged by at least two dependencies.
	fmt.Println("\nsuspicious rows (flagged by ≥2 dependencies):")
	for _, s := range aod.Suspects(rep, 2) {
		c, _ := ds.Value(s.Row, "celsius")
		f, _ := ds.Value(s.Row, "fahrenheit")
		k, _ := ds.Value(s.Row, "kelvinX10")
		fmt.Printf("  row %d flagged %d×: celsius=%s fahrenheit=%s kelvinX10=%s\n",
			s.Row, s.Hits, c, f, k)
	}
}
