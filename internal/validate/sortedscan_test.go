package validate

import (
	"math/rand"
	"sort"
	"testing"

	"aod/internal/dataset"
	"aod/internal/partition"
)

func TestTableOrdersSortedAndCached(t *testing.T) {
	tbl, err := dataset.NewBuilder().
		AddInts("a", []int64{30, 10, 20, 10}).
		AddInts("b", []int64{1, 2, 3, 4}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	to := NewTableOrders(tbl)
	order := to.Order(0)
	ranks := tbl.Column(0).Ranks()
	for i := 1; i < len(order); i++ {
		if ranks[order[i-1]] > ranks[order[i]] {
			t.Fatalf("order not sorted: %v", order)
		}
		if ranks[order[i-1]] == ranks[order[i]] && order[i-1] > order[i] {
			t.Fatalf("ties not by row id: %v", order)
		}
	}
	if &to.Order(0)[0] != &order[0] {
		t.Error("order not cached")
	}
}

// TestTableOrdersRadixEquivalence pins the radix-built global orders (the
// cold-start path above the cutoff) against the comparison sort they
// replaced, including heavy-tie rank distributions.
func TestTableOrdersRadixEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, rows := range []int{radixCutoff, 100, 1000, 5000} {
		b := dataset.NewBuilder()
		for c := 0; c < 4; c++ {
			vals := make([]int64, rows)
			domain := []int{2, 10, 1000, 1 << 30}[c]
			for i := range vals {
				vals[i] = int64(rng.Intn(domain))
			}
			b.AddInts(string(rune('a'+c)), vals)
		}
		tbl, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		to := NewTableOrders(tbl)
		for c := 0; c < 4; c++ {
			got := to.Order(c)
			ranks := tbl.Column(c).Ranks()
			want := make([]int32, rows)
			for i := range want {
				want[i] = int32(i)
			}
			sort.SliceStable(want, func(i, j int) bool { return ranks[want[i]] < ranks[want[j]] })
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("rows=%d col=%d: radix order diverges at %d: %d vs %d",
						rows, c, i, got[i], want[i])
				}
			}
		}
	}
}

// BenchmarkTableOrdersWide measures sorted-scan cold start on a wide table:
// one global order per attribute, built with the LSD radix pass.
func BenchmarkTableOrdersWide(b *testing.B) {
	rng := rand.New(rand.NewSource(91))
	const rows, cols = 20_000, 16
	db := dataset.NewBuilder()
	for c := 0; c < cols; c++ {
		vals := make([]int64, rows)
		for i := range vals {
			vals[i] = int64(rng.Intn(1 << 20))
		}
		db.AddInts(string(rune('a'+c)), vals)
	}
	tbl, err := db.Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		to := NewTableOrders(tbl)
		for c := 0; c < cols; c++ {
			to.Order(c)
		}
	}
}

// ExactOCScan must agree with the sort-based ExactOC on random instances.
func TestExactOCScanEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	v := New()
	for iter := 0; iter < 500; iter++ {
		rows := 2 + rng.Intn(40)
		b := dataset.NewBuilder()
		for c := 0; c < 3; c++ {
			vals := make([]int64, rows)
			for i := range vals {
				vals[i] = int64(rng.Intn(2 + rng.Intn(6)))
			}
			b.AddInts(string(rune('a'+c)), vals)
		}
		tbl, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		to := NewTableOrders(tbl)
		var ctx *partition.Stripped
		if rng.Intn(2) == 0 {
			ctx = partition.Universe(rows)
		} else {
			ctx = partition.Single(tbl.Column(0))
		}
		a, bb := tbl.Column(1), tbl.Column(2)
		want, _ := v.ExactOC(ctx, a, bb)
		got, w := v.ExactOCScan(ctx.ClassIDs(), ctx.NumClasses(), to.Order(1), a, bb)
		if got != want {
			t.Fatalf("iter %d: scan=%v sort=%v", iter, got, want)
		}
		if !got {
			// The witness must be a genuine swap within one class.
			ra, rb := a.Ranks(), bb.Ranks()
			s, u := w[0], w[1]
			if !(ra[s] < ra[u] && rb[u] < rb[s]) && !(ra[u] < ra[s] && rb[s] < rb[u]) {
				t.Fatalf("iter %d: witness %v not a swap", iter, w)
			}
			ids := ctx.ClassIDs()
			if ids[s] != ids[u] || ids[s] < 0 {
				t.Fatalf("iter %d: witness %v spans classes", iter, w)
			}
		}
	}
}

// Repeated calls on one Validator must not leak state across candidates.
func TestExactOCScanScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	v := New()
	tblA, _ := dataset.NewBuilder().
		AddInts("a", []int64{1, 2, 3, 4}).
		AddInts("b", []int64{1, 2, 3, 4}).
		Build()
	to := NewTableOrders(tblA)
	u := partition.Universe(4)
	for i := 0; i < 50; i++ {
		ok, _ := v.ExactOCScan(u.ClassIDs(), u.NumClasses(), to.Order(0), tblA.Column(0), tblA.Column(1))
		if !ok {
			t.Fatal("monotone pair must hold on every call")
		}
		_ = rng
	}
}

func TestExactOCScanPaperExample(t *testing.T) {
	tbl, err := dataset.NewBuilder().
		AddInts("sal", []int64{20, 25, 30, 40, 50, 55, 60, 90, 200}).
		AddInts("tax", []int64{20, 25, 3, 120, 15, 165, 18, 72, 160}).
		AddStrings("taxGrp", []string{"A", "A", "A", "B", "B", "B", "B", "C", "C"}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	to := NewTableOrders(tbl)
	v := New()
	u := partition.Universe(9)
	if ok, _ := v.ExactOCScan(u.ClassIDs(), u.NumClasses(), to.Order(0), tbl.Column(0), tbl.Column(2)); !ok {
		t.Error("sal ∼ taxGrp should hold via scan")
	}
	if ok, _ := v.ExactOCScan(u.ClassIDs(), u.NumClasses(), to.Order(0), tbl.Column(0), tbl.Column(1)); ok {
		t.Error("sal ∼ tax should NOT hold via scan")
	}
}

func BenchmarkExactOCScanVsSort(b *testing.B) {
	rng := rand.New(rand.NewSource(90))
	const rows = 100_000
	db := dataset.NewBuilder()
	for c := 0; c < 3; c++ {
		vals := make([]int64, rows)
		for i := range vals {
			vals[i] = int64(rng.Intn(1000))
		}
		db.AddInts(string(rune('a'+c)), vals)
	}
	tbl, err := db.Build()
	if err != nil {
		b.Fatal(err)
	}
	ctx := partition.Single(tbl.Column(0))
	ids := ctx.ClassIDs()
	to := NewTableOrders(tbl)
	order := to.Order(1)
	v := New()
	b.Run("sort", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			v.ExactOC(ctx, tbl.Column(1), tbl.Column(2))
		}
	})
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			v.ExactOCScan(ids, ctx.NumClasses(), order, tbl.Column(1), tbl.Column(2))
		}
	})
}
