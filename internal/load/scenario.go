package load

import "fmt"

// Scenarios lists the named traffic presets ApplyScenario accepts.
func Scenarios() []string { return []string{"repeat-heavy"} }

// ApplyScenario rewrites cfg for a named traffic preset; "" leaves cfg
// untouched.
//
// "repeat-heavy" collapses the small-dataset universe to a single dataset
// and weights the mix heavily toward fresh small jobs. Every such request
// carries a perturbed threshold (a distinct result-cache key), so the server
// genuinely re-validates the same dataset over and over — the worst case for
// per-job cold-start partitioning and exactly the traffic the server's
// partition cache (-partition-cache-bytes) memoizes: the first job prepares
// the partitions, every repeat skips the prepare.
func ApplyScenario(cfg Config, scenario string) (Config, error) {
	switch scenario {
	case "":
		return cfg, nil
	case "repeat-heavy":
		mix, err := ParseMix("cachehit=10,small=85,large=5")
		if err != nil {
			return cfg, err
		}
		cfg.Mix = mix
		cfg.SmallDatasets = 1
		return cfg, nil
	default:
		return cfg, fmt.Errorf("load: unknown scenario %q (want one of %v)", scenario, Scenarios())
	}
}
