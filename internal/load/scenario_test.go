package load

import "testing"

func TestApplyScenarioRepeatHeavy(t *testing.T) {
	cfg, err := ApplyScenario(Config{SmallDatasets: 8, Mix: DefaultMix()}, "repeat-heavy")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.SmallDatasets != 1 {
		t.Errorf("repeat-heavy should collapse the small universe to one dataset, got %d", cfg.SmallDatasets)
	}
	if w := cfg.Mix.Weight(Small); w != 85 {
		t.Errorf("repeat-heavy small weight = %d, want 85", w)
	}
	if cfg.Mix.Weight(CacheHit) != 10 || cfg.Mix.Weight(Large) != 5 {
		t.Errorf("repeat-heavy mix = %s, want cachehit=10,small=85,large=5", cfg.Mix)
	}
}

func TestApplyScenarioPassthroughAndUnknown(t *testing.T) {
	in := Config{SmallDatasets: 8, Mix: DefaultMix()}
	out, err := ApplyScenario(in, "")
	if err != nil || out.SmallDatasets != 8 || out.Mix.String() != in.Mix.String() {
		t.Errorf("empty scenario must be a no-op, got %+v, %v", out, err)
	}
	if _, err := ApplyScenario(in, "nope"); err == nil {
		t.Error("unknown scenario must error")
	}
}
