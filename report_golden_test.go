package aod

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// goldenReport is a handcrafted Report exercising every field of the stable
// JSON schema — including optional fields (descending, removalRows, the
// partial-run flags) and the nil-slice normalization — with fixed values, so
// its serialization is byte-for-byte reproducible.
func goldenReport() *Report {
	return &Report{
		OCs: []OC{
			{
				Context:  []string{"pos"},
				A:        "exp",
				B:        "sal",
				Error:    0.1111111111111111,
				Removals: 1,
				Level:    3,
				Score:    0.4444444444444444,
			},
			{
				Context:     nil, // must encode as [], not null
				A:           "sal",
				B:           "tax",
				Descending:  true,
				Error:       0,
				Removals:    0,
				Level:       2,
				Score:       0.5,
				RemovalRows: []int{3, 7},
			},
		},
		OFDs: []OFD{
			{
				Context:  []string{"pos", "exp"},
				A:        "bonus",
				Error:    0.25,
				Removals: 2,
				Level:    3,
				Score:    0.25,
			},
		},
		Stats: Stats{
			Rows:              9,
			Attrs:             4,
			LevelsProcessed:   3,
			NodesProcessed:    11,
			OCCandidates:      12,
			OFDCandidates:     6,
			OCsFoundPerLevel:  []int{0, 0, 1, 1},
			OFDsFoundPerLevel: []int{0, 0, 0, 1},
			ValidationTime:    1500 * time.Microsecond,
			PartitionTime:     250 * time.Microsecond,
			TotalTime:         2 * time.Millisecond,
			TimedOut:          true,
			EarlyStopped:      true,
		},
	}
}

// TestReportJSONGolden pins the Report wire format byte-for-byte against
// testdata/report_golden.json. The schema is a published contract shared by
// the aodserver HTTP API, the persisted report store, and aodiscover -json:
// any drift must break CI here — visibly, reviewably — instead of breaking
// clients and invalidating every report persisted by earlier builds. To
// accept an intentional change, run: go test -run TestReportJSONGolden -update
func TestReportJSONGolden(t *testing.T) {
	cases := []struct {
		name   string
		golden string
		rep    *Report
	}{
		{"full", "report_golden.json", goldenReport()},
		// The zero Report: nil slices must normalize to [] at every level.
		{"empty", "report_empty_golden.json", &Report{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := tc.rep.WriteJSON(&buf); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", tc.golden)
			if *updateGolden {
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("reading golden file (run with -update to create): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("Report JSON drifted from %s (run with -update to accept):\n%s",
					path, diffLines(want, buf.Bytes()))
			}
		})
	}
}

// diffLines renders the first divergence between two byte slices line by
// line — enough context to review schema drift without a diff tool.
func diffLines(want, got []byte) string {
	w := bytes.Split(want, []byte("\n"))
	g := bytes.Split(got, []byte("\n"))
	for i := 0; i < len(w) || i < len(g); i++ {
		var wl, gl []byte
		if i < len(w) {
			wl = w[i]
		}
		if i < len(g) {
			gl = g[i]
		}
		if !bytes.Equal(wl, gl) {
			return fmt.Sprintf("line %d:\n  golden: %s\n  got:    %s", i+1, wl, gl)
		}
	}
	return "(no line-level difference; byte lengths differ)"
}
