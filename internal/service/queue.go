package service

import "container/heap"

// jobQueue is the pending-job priority queue: jobs waiting for a worker are
// ordered by estimated cost (rows × cols × levels to explore, see
// aod.EstimateWork), smallest first, with submission order breaking ties.
// This is the size-aware scheduling the FIFO queue lacked: a cheap
// interactive probe no longer waits behind a multi-minute wide-table crawl
// submitted moments earlier. The flip side — a steady stream of small jobs
// can delay a large one indefinitely — is the intended trade for a service
// whose large jobs are batch work; the submission-order tie-break at least
// keeps equal-cost jobs strictly fair.
//
// Not safe for concurrent use; the Service serializes access under its mutex.
type jobQueue struct {
	h jobHeap
}

func (q *jobQueue) Len() int { return len(q.h) }

// push admits the job. Its cost and seq must already be set.
func (q *jobQueue) push(j *Job) { heap.Push(&q.h, j) }

// pop removes and returns the cheapest job, or nil when empty.
func (q *jobQueue) pop() *Job {
	if len(q.h) == 0 {
		return nil
	}
	return heap.Pop(&q.h).(*Job)
}

// remove takes the job out of the queue (e.g. on cancellation); it reports
// whether the job was queued.
func (q *jobQueue) remove(j *Job) bool {
	if j.heapIdx < 0 || j.heapIdx >= len(q.h) || q.h[j.heapIdx] != j {
		return false
	}
	heap.Remove(&q.h, j.heapIdx)
	return true
}

// jobHeap implements container/heap. Job.cost is stable while the job is
// queued (it is only refined by level snapshots, which require the job to be
// running), so the ordering invariant cannot rot in place.
type jobHeap []*Job

func (h jobHeap) Len() int { return len(h) }

func (h jobHeap) Less(i, j int) bool {
	if h[i].cost != h[j].cost {
		return h[i].cost < h[j].cost
	}
	return h[i].seq < h[j].seq
}

func (h jobHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}

func (h *jobHeap) Push(x any) {
	j := x.(*Job)
	j.heapIdx = len(*h)
	*h = append(*h, j)
}

func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	j.heapIdx = -1
	*h = old[:n-1]
	return j
}
