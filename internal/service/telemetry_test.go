package service

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"aod"
	"aod/internal/telemetry"
)

// TestStatsSnapshotConsistency pins the /stats consistency fix: under a storm
// of fast jobs completing concurrently with Stats() reads, every snapshot
// must satisfy done + failed + canceled ≤ submitted. Before the fix the
// submitted counter was incremented after the job became runnable (and the
// fields were read in arbitrary order), so a fast job's completion could be
// observed before its own submission. Run under -race in CI.
func TestStatsSnapshotConsistency(t *testing.T) {
	s := New(Config{Workers: 4, QueueDepth: -1, CacheSize: -1})
	defer s.Close()
	info, _, err := s.registry.Add("emp", smallDataset(t))
	if err != nil {
		t.Fatal(err)
	}

	const submitters, perSubmitter = 4, 40
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Readers hammer Stats() while jobs churn.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := s.Stats()
				if terminal := st.JobsDone + st.JobsFailed + st.JobsCanceled; terminal > st.JobsSubmitted {
					t.Errorf("torn snapshot: done+failed+canceled = %d > submitted = %d", terminal, st.JobsSubmitted)
					return
				}
			}
		}()
	}
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perSubmitter; i++ {
				// Distinct MaxLevel values defeat the result cache enough to
				// keep real runs (and their counter traffic) flowing.
				opts := aod.Options{Threshold: 0.1, MaxLevel: 1 + (g*perSubmitter+i)%2}
				if _, err := s.Submit(info.ID, opts); err != nil {
					t.Errorf("submit: %v", err)
					return
				}
			}
		}(g)
	}
	// Wait for the submitters, then for the queue to drain.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			st := s.Stats()
			if st.JobsSubmitted == submitters*perSubmitter &&
				st.JobsDone+st.JobsFailed+st.JobsCanceled == st.JobsSubmitted {
				return
			}
		}
	}()
	<-done
	close(stop)
	wg.Wait()

	st := s.Stats()
	if st.JobsSubmitted != submitters*perSubmitter {
		t.Errorf("submitted = %d, want %d", st.JobsSubmitted, submitters*perSubmitter)
	}
	if st.JobsDone+st.JobsFailed+st.JobsCanceled != st.JobsSubmitted {
		t.Errorf("terminal jobs = %d, want %d", st.JobsDone+st.JobsFailed+st.JobsCanceled, st.JobsSubmitted)
	}
}

// TestServiceMetricsRegistry asserts the service's counters and histograms
// surface through the registry (the /metrics body) and stay consistent with
// /stats.
func TestServiceMetricsRegistry(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := New(Config{Workers: 2, Metrics: reg})
	defer s.Close()
	info, _, err := s.registry.Add("emp", smallDataset(t))
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.Submit(info.ID, aod.Options{Threshold: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, v.ID, JobDone)
	// An identical re-submission is a cache hit.
	v2, err := s.Submit(info.ID, aod.Options{Threshold: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	hit := waitState(t, s, v2.ID, JobDone)
	if !hit.CacheHit {
		t.Fatal("re-submission was not a cache hit")
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"aod_jobs_submitted_total 2",
		"aod_jobs_done_total 2",
		`aod_job_seconds_bucket{class="cachehit"`,
		`aod_job_seconds_bucket{class="small"`,
		"aod_queue_wait_seconds_count",
		"aod_level_validate_seconds_count",
		"aod_validation_runs_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q\n%s", want, out)
		}
	}
	st := s.Stats()
	if st.JobsSubmitted != 2 || st.JobsDone != 2 || st.ValidationRuns != 1 || st.CacheHits != 1 {
		t.Errorf("stats disagree with registry: %+v", st)
	}
}

// TestJobTrace asserts a completed job's trace contains the full stage
// breakdown with sane parentage.
func TestJobTrace(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	info, _, err := s.registry.Add("emp", smallDataset(t))
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.Submit(info.ID, aod.Options{Threshold: 0.1, IncludeOFDs: true})
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, s, v.ID, JobDone)

	tree, err := s.JobTrace(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if tree.TraceID != v.ID {
		t.Errorf("trace id = %q, want %q", tree.TraceID, v.ID)
	}
	if len(tree.Spans) != 1 || tree.Spans[0].Name != "job" {
		t.Fatalf("want a single job root span, got %+v", tree.Spans)
	}
	names := map[string]int{}
	var walk func(n *telemetry.TreeNode)
	walk = func(n *telemetry.TreeNode) {
		names[n.Name]++
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(tree.Spans[0])
	for _, want := range []string{"queue-wait", "cache-lookup", "dataset-load", "discover", "partition-build", "level"} {
		if names[want] == 0 {
			t.Errorf("trace missing %q span; got %v", want, names)
		}
	}
	if got := names["level"]; got != done.Report.Stats.LevelsProcessed {
		t.Errorf("level spans = %d, want %d", got, done.Report.Stats.LevelsProcessed)
	}

	if _, err := s.JobTrace("job-999"); err == nil {
		t.Error("JobTrace on unknown id should fail")
	}
}

// TestJobTraceUnknownVsKnown keeps the trace surface stable across many jobs.
func TestJobTraceManyJobs(t *testing.T) {
	s := New(Config{Workers: 2, CacheSize: -1})
	defer s.Close()
	info, _, err := s.registry.Add("emp", smallDataset(t))
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, 0, 6)
	for i := 0; i < 6; i++ {
		v, err := s.Submit(info.ID, aod.Options{Threshold: 0.1, MaxLevel: 1 + i%2})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}
	for _, id := range ids {
		waitState(t, s, id, JobDone)
		tree, err := s.JobTrace(id)
		if err != nil {
			t.Fatal(err)
		}
		if tree.TraceID != id {
			t.Fatalf("trace id %q for job %q", tree.TraceID, id)
		}
		if len(tree.Spans) == 0 {
			t.Fatalf("job %s has an empty trace", id)
		}
	}
}

var _ = fmt.Sprintf // keep fmt if assertions above change

// TestHTTPMetricsAndTrace drives the /metrics and /jobs/{id}/trace endpoints
// over real HTTP.
func TestHTTPMetricsAndTrace(t *testing.T) {
	svc := New(Config{Workers: 2})
	defer svc.Close()
	srv := httptest.NewServer(NewHandler(svc, HandlerConfig{}))
	defer srv.Close()
	client := srv.Client()

	var info DatasetInfo
	code, raw := doJSON(t, client, http.MethodPost, srv.URL+"/datasets?name=emp",
		strings.NewReader(employeesCSV), &info)
	if code != http.StatusCreated {
		t.Fatalf("POST /datasets: status %d: %s", code, raw)
	}
	var v JobView
	body := fmt.Sprintf(`{"datasetId":%q,"options":{"threshold":0.1}}`, info.ID)
	code, raw = doJSON(t, client, http.MethodPost, srv.URL+"/jobs", strings.NewReader(body), &v)
	if code != http.StatusAccepted {
		t.Fatalf("POST /jobs: status %d: %s", code, raw)
	}
	pollJob(t, client, srv.URL, v.ID, JobDone)

	// /metrics: Prometheus text with the service families present.
	resp, err := client.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metRaw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("GET /metrics Content-Type = %q", ct)
	}
	met := string(metRaw)
	for _, want := range []string{
		"# TYPE aod_jobs_submitted_total counter",
		"# TYPE aod_job_seconds histogram",
		"aod_jobs_done_total 1",
		"aod_job_seconds_count{class=\"small\"} 1",
		"aod_datasets 1",
	} {
		if !strings.Contains(met, want) {
			t.Errorf("GET /metrics missing %q\n%s", want, met)
		}
	}

	// /jobs/{id}/trace: span tree JSON rooted at the job span.
	var tree telemetry.TraceJSON
	code, raw = doJSON(t, client, http.MethodGet, srv.URL+"/jobs/"+v.ID+"/trace", nil, &tree)
	if code != http.StatusOK {
		t.Fatalf("GET /jobs/%s/trace: status %d: %s", v.ID, code, raw)
	}
	if tree.TraceID != v.ID || len(tree.Spans) != 1 || tree.Spans[0].Name != "job" {
		t.Fatalf("trace = %s", raw)
	}
	if len(tree.Spans[0].Children) == 0 {
		t.Fatalf("job span has no children: %s", raw)
	}

	// Unknown job → 404.
	code, _ = doJSON(t, client, http.MethodGet, srv.URL+"/jobs/job-999/trace", nil, nil)
	if code != http.StatusNotFound {
		t.Errorf("GET /jobs/job-999/trace: status %d, want 404", code)
	}
}
