package aod

import (
	"fmt"

	"aod/internal/partition"
	"aod/internal/validate"
)

// Validation is the outcome of validating a single dependency candidate.
type Validation struct {
	// Valid is whether the approximation factor is within the threshold.
	Valid bool
	// Error is the approximation factor e = |minimal removal set| / |rows|.
	Error float64
	// Removals is the removal-set size behind Error.
	Removals int
	// RemovalRows holds the minimal removal set's row indexes (always
	// collected by the validation entry points of this package).
	RemovalRows []int
}

// ValidateOC validates the approximate canonical order compatibility
// "context: a ∼ b" using the paper's optimal Algorithm 2: the reported
// Error is exact, the removal set is minimal, and the candidate is Valid iff
// Error ≤ threshold. Columns are addressed by name; context may be empty.
func ValidateOC(d *Dataset, context []string, a, b string, threshold float64) (Validation, error) {
	ca, cb, ctx, err := resolve(d, context, a, b)
	if err != nil {
		return Validation{}, err
	}
	v := validate.New()
	r := v.OptimalAOC(ctx, d.table().Column(ca), d.table().Column(cb),
		validate.Options{Threshold: threshold, CollectRemovals: true, ComputeFullError: true})
	return fromResult(r), nil
}

// ValidateOCIterative validates an AOC candidate with the legacy greedy
// validator (Algorithm 1). Its Error can overestimate the true approximation
// factor; it is exposed for comparison and reproduction purposes.
func ValidateOCIterative(d *Dataset, context []string, a, b string, threshold float64) (Validation, error) {
	ca, cb, ctx, err := resolve(d, context, a, b)
	if err != nil {
		return Validation{}, err
	}
	v := validate.New()
	r := v.IterativeAOC(ctx, d.table().Column(ca), d.table().Column(cb),
		validate.Options{Threshold: threshold, CollectRemovals: true, ComputeFullError: true})
	return fromResult(r), nil
}

// ValidateOD validates the approximate canonical order dependency
// "context: a ↦ b" (order compatibility plus the functional dependency) via
// the Section 3.3 extension: ties on a are broken by descending b, so the
// minimal removal set eliminates both swaps and splits.
func ValidateOD(d *Dataset, context []string, a, b string, threshold float64) (Validation, error) {
	ca, cb, ctx, err := resolve(d, context, a, b)
	if err != nil {
		return Validation{}, err
	}
	v := validate.New()
	r := v.OptimalAOD(ctx, d.table().Column(ca), d.table().Column(cb),
		validate.Options{Threshold: threshold, CollectRemovals: true, ComputeFullError: true})
	return fromResult(r), nil
}

// ValidateOFD validates the approximate order functional dependency
// "context: [] ↦ a" (a constant within each context group) using the
// linear-time g3 measure.
func ValidateOFD(d *Dataset, context []string, a string, threshold float64) (Validation, error) {
	ca, _, ctx, err := resolve(d, context, a, a)
	if err != nil {
		return Validation{}, err
	}
	r := validate.ApproxOFD(ctx, d.table().Column(ca),
		validate.Options{Threshold: threshold, CollectRemovals: true})
	return fromResult(r), nil
}

// ValidateListOD validates the list-based approximate order dependency
// X ↦ Y, where X and Y are ordered column lists (footnote 1 of the paper).
func ValidateListOD(d *Dataset, x, y []string, threshold float64) (Validation, error) {
	xi, err := indexes(d, x)
	if err != nil {
		return Validation{}, err
	}
	yi, err := indexes(d, y)
	if err != nil {
		return Validation{}, err
	}
	r := validate.ListAOD(d.table(), xi, yi,
		validate.Options{Threshold: threshold, CollectRemovals: true})
	return fromResult(r), nil
}

func fromResult(r validate.Result) Validation {
	return Validation{
		Valid:       r.Valid,
		Error:       r.Error,
		Removals:    r.Removals,
		RemovalRows: toInts(r.RemovalRows),
	}
}

func indexes(d *Dataset, names []string) ([]int, error) {
	out := make([]int, 0, len(names))
	for _, n := range names {
		i := d.table().ColumnIndex(n)
		if i < 0 {
			return nil, fmt.Errorf("aod: no column %q", n)
		}
		out = append(out, i)
	}
	return out, nil
}

func resolve(d *Dataset, context []string, a, b string) (ca, cb int, ctx *partition.Stripped, err error) {
	ca = d.table().ColumnIndex(a)
	if ca < 0 {
		return 0, 0, nil, fmt.Errorf("aod: no column %q", a)
	}
	cb = d.table().ColumnIndex(b)
	if cb < 0 {
		return 0, 0, nil, fmt.Errorf("aod: no column %q", b)
	}
	arena := partition.NewArena()
	ctx = partition.Universe(d.NumRows())
	for k, name := range context {
		i := d.table().ColumnIndex(name)
		if i < 0 {
			return 0, 0, nil, fmt.Errorf("aod: no context column %q", name)
		}
		next := arena.Product(ctx, partition.Single(d.table().Column(i)))
		if k > 0 {
			arena.Recycle(ctx) // intermediate product: reuse its buffers
		}
		ctx = next
	}
	return ca, cb, ctx, nil
}
