package bench

import (
	"encoding/json"
	"fmt"
	"os"
)

// LoadJSON reads a BENCH_<n>.json snapshot written by RunJSON.
func LoadJSON(path string) (JSONReport, error) {
	var rep JSONReport
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, fmt.Errorf("bench: reading snapshot: %w", err)
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("bench: decoding %s: %w", path, err)
	}
	if rep.Schema != JSONSchema {
		return rep, fmt.Errorf("bench: %s has schema %q, want %q", path, rep.Schema, JSONSchema)
	}
	return rep, nil
}

// CompareReports diffs current against baseline workload by workload (joined
// on name, the cross-snapshot stable key) and returns one description per
// regression: a named workload whose ns/op grew by more than tolerance
// (0.20 = fail past +20%). Improvements and workloads present in only one
// snapshot never fail — new workloads must be able to land, and retired ones
// to leave — but missing baseline workloads are reported so a rename cannot
// silently drop a gate.
func CompareReports(baseline, current JSONReport, tolerance float64) (regressions, notes []string) {
	cur := make(map[string]JSONResult, len(current.Results))
	for _, r := range current.Results {
		cur[r.Name] = r
	}
	for _, base := range baseline.Results {
		now, ok := cur[base.Name]
		if !ok {
			notes = append(notes, fmt.Sprintf("workload %q in baseline but not measured now", base.Name))
			continue
		}
		if base.NsPerOp <= 0 {
			continue // a zero baseline cannot gate anything
		}
		ratio := now.NsPerOp / base.NsPerOp
		if ratio > 1+tolerance {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %.0f ns/op vs baseline %.0f ns/op (%+.1f%%, tolerance %+.0f%%)",
				base.Name, now.NsPerOp, base.NsPerOp, (ratio-1)*100, tolerance*100))
		}
	}
	return regressions, notes
}
