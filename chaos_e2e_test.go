package aod

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"
)

// freePort grabs an ephemeral port and releases it so a child process can
// bind it by name — needed because the two replicas must know each other's
// peer URLs before either starts.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func buildTool(t *testing.T, dir, tool string) string {
	t.Helper()
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	bin := filepath.Join(dir, tool)
	if runtime.GOOS == "windows" {
		bin += ".exe"
	}
	if msg, err := exec.Command(goBin, "build", "-o", bin, "./cmd/"+tool).CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", tool, err, msg)
	}
	return bin
}

func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("%s never became healthy", base)
}

// TestChaosFrontDoorE2E is the real-crash half of the chaos acceptance:
// two replicated aodserver processes (result caches peered both ways)
// behind a real aodrouter, a 5s open-loop aodload burst through the front
// door, and one replica SIGKILLed mid-run. The gate: aodload exits clean,
// the report shows zero client-visible errors in every traffic class, and
// the router's retry counter proves the crash actually happened and was
// absorbed.
func TestChaosFrontDoorE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	if runtime.GOOS == "windows" {
		t.Skip("uses SIGKILL")
	}
	dir := t.TempDir()
	serverBin := buildAODServer(t, dir)
	routerBin := buildTool(t, dir, "aodrouter")
	loadBin := buildTool(t, dir, "aodload")

	// Fixed ports so each replica can name the other as a peer up front.
	addr1, addr2 := freePort(t), freePort(t)
	url1, url2 := "http://"+addr1, "http://"+addr2

	startReplica := func(addr, peer string) *exec.Cmd {
		t.Helper()
		cmd := exec.Command(serverBin,
			"-addr", addr, "-workers", "2", "-queue", "256", "-max-jobs", "-1",
			"-peers", peer)
		cmd.Stdout = nil
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
		})
		return cmd
	}
	startReplica(addr1, url2)
	victim := startReplica(addr2, url1)
	waitHealthy(t, url1)
	waitHealthy(t, url2)

	// A deliberately lazy probe: the router must discover the crash
	// passively, through a real failed RPC — which is exactly the retry the
	// gate below demands. A fast probe could mark the victim down in the
	// gap between client requests and make the run look retry-free.
	routerURL, _ := startAODServer(t, routerBin,
		"-replicas", url1+","+url2, "-probe-interval", "10s")
	waitHealthy(t, routerURL)

	reportPath := os.Getenv("AOD_CHAOS_REPORT")
	if reportPath == "" {
		reportPath = filepath.Join(dir, "chaos.json")
	}
	loadCmd := exec.Command(loadBin,
		"-router", routerURL, "-duration", "5s", "-rate", "50",
		"-zipf", "0.99", "-mix", "cachehit=60,small=30,large=10",
		"-seed", "42", "-large-timebox", "200ms", "-out", reportPath)
	loadOut := &strings.Builder{}
	loadCmd.Stderr = loadOut
	if err := loadCmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Give the burst time to warm up and get traffic in flight, then crash
	// one replica for real — no shutdown hooks, no drain.
	time.Sleep(2500 * time.Millisecond)
	if err := victim.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	victim.Wait()

	if err := loadCmd.Wait(); err != nil {
		t.Fatalf("aodload through a replica crash exited dirty: %v\n%s", err, loadOut)
	}
	t.Logf("aodload summary:\n%s", loadOut)

	// Zero client-visible errors in every class, with real traffic behind
	// the zeros.
	data, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Schema  string `json:"schema"`
		Results []struct {
			Name       string `json:"name"`
			Count      uint64 `json:"count"`
			Errors     uint64 `json:"errors"`
			Retried    uint64 `json:"retried"`
			FailedOver uint64 `json:"failedOver"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("chaos report is not valid JSON: %v\n%s", err, data)
	}
	if rep.Schema != "aod-bench/v1" {
		t.Fatalf("report schema %q, want aod-bench/v1", rep.Schema)
	}
	var completed, absorbed uint64
	for _, r := range rep.Results {
		if r.Errors != 0 {
			t.Errorf("%s: %d client-visible errors through the crash, want 0", r.Name, r.Errors)
		}
		if strings.HasSuffix(r.Name, "/client") {
			completed += r.Count
			absorbed += r.Retried + r.FailedOver
		}
	}
	if completed == 0 {
		t.Fatal("burst completed zero requests; the zero-error gate is vacuous")
	}

	// The crash must be visible in the router's own telemetry: retries
	// absorbed, one replica down, the survivor still serving.
	code, metrics := httpGet(t, routerURL+"/metrics")
	if code != 200 {
		t.Fatalf("router /metrics status %d", code)
	}
	retries := counterValue(t, metrics, "aod_router_retries_total")
	if retries == 0 {
		t.Errorf("aod_router_retries_total = 0 through a SIGKILL mid-burst (report absorbed=%d)", absorbed)
	}
	code, health := httpGet(t, routerURL+"/healthz")
	if code != 200 || !strings.Contains(health, `"degraded"`) {
		t.Errorf("router /healthz after the crash = %d %s, want 200 degraded", code, health)
	}
	if code, _ := httpGet(t, routerURL+"/datasets"); code != 200 {
		t.Errorf("front door stopped serving reads after the crash: /datasets = %d", code)
	}
}

// counterValue extracts a (label-less) counter's value from Prometheus
// text exposition.
func counterValue(t *testing.T, exposition, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v float64
			if _, err := fmt.Sscanf(line[len(name)+1:], "%g", &v); err != nil {
				t.Fatalf("unparseable metric line %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in exposition", name)
	return 0
}

// TestAODServerDrainE2E sends a real SIGTERM to the aodserver binary while
// a job is in flight: new submits are refused with 503 + Retry-After, the
// readiness probe flips to draining, the in-flight job still completes
// (observed through its open event stream), and the process exits 0 within
// the drain window.
func TestAODServerDrainE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	if runtime.GOOS == "windows" {
		t.Skip("uses SIGTERM")
	}
	dir := t.TempDir()
	bin := buildAODServer(t, dir)
	base, cmd := startAODServer(t, bin, "-workers", "1", "-drain-timeout", "60s")

	// A dataset slow enough that the drain window opens while it runs.
	ds := Flight(12000, 8, 17)
	var csv strings.Builder
	if err := ds.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/datasets?name=drain", "text/csv", strings.NewReader(csv.String()))
	if err != nil {
		t.Fatal(err)
	}
	var info struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	body := fmt.Sprintf(`{"datasetId": %q, "options": {"threshold": 0.4, "algorithm": "iterative", "includeOFDs": true}}`, info.ID)
	resp, err = http.Post(base+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var job struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}

	// Attach to the stream before the drain starts; the connection must
	// survive the shutdown long enough to deliver the terminal event.
	stream, err := http.Get(base + "/jobs/" + job.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	// New work is refused while the admitted job drains.
	resp, err = http.Post(base+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("submit during drain: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("draining 503 Retry-After = %q, want ≥ 1", ra)
	}
	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz during drain: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/healthz during drain = %d, want 503 (unready)", resp.StatusCode)
	}

	// The in-flight job still finishes: its stream delivers a done event.
	sawDone := false
	sc := bufio.NewScanner(stream.Body)
	sc.Buffer(make([]byte, 64<<10), 4<<20)
	for sc.Scan() {
		var ev struct {
			Type  string `json:"type"`
			State string `json:"state"`
		}
		if json.Unmarshal(sc.Bytes(), &ev) == nil && ev.Type == "done" {
			if ev.State != "done" {
				t.Fatalf("drained job ended %q, want done", ev.State)
			}
			sawDone = true
		}
	}
	if !sawDone {
		t.Fatal("stream closed without the in-flight job's terminal event")
	}

	// And the process exits cleanly inside the drain window.
	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("aodserver exited dirty after drain: %v", err)
		}
	case <-time.After(90 * time.Second):
		t.Fatal("aodserver never exited after SIGTERM")
	}
}
