package lattice

import (
	"math/rand"
	"reflect"
	"testing"

	"aod/internal/dataset"
	"aod/internal/partition"
)

func TestAttrSetBasics(t *testing.T) {
	s := NewAttrSet(0, 3, 5)
	if !s.Has(0) || !s.Has(3) || !s.Has(5) || s.Has(1) {
		t.Error("Has wrong")
	}
	if s.Card() != 3 {
		t.Errorf("Card = %d", s.Card())
	}
	if got := s.Add(1).Card(); got != 4 {
		t.Errorf("Add Card = %d", got)
	}
	if got := s.Remove(3); got.Has(3) || got.Card() != 2 {
		t.Errorf("Remove = %v", got)
	}
	if got := s.Attrs(); !reflect.DeepEqual(got, []int{0, 3, 5}) {
		t.Errorf("Attrs = %v", got)
	}
	if s.Min() != 0 || s.Max() != 5 {
		t.Errorf("Min/Max = %d/%d", s.Min(), s.Max())
	}
	var empty AttrSet
	if !empty.IsEmpty() || empty.Min() != -1 || empty.Max() != -1 {
		t.Error("empty set handling wrong")
	}
	if !s.Contains(NewAttrSet(0, 5)) || s.Contains(NewAttrSet(0, 1)) {
		t.Error("Contains wrong")
	}
	u := NewAttrSet(1, 3)
	if got := s.Union(u); got.Card() != 4 {
		t.Errorf("Union = %v", got)
	}
	if got := s.Intersect(u); got != NewAttrSet(3) {
		t.Errorf("Intersect = %v", got)
	}
	if got := s.Minus(u); got != NewAttrSet(0, 5) {
		t.Errorf("Minus = %v", got)
	}
}

func TestAttrSetStrings(t *testing.T) {
	s := NewAttrSet(0, 2)
	if got := s.String(); got != "{0,2}" {
		t.Errorf("String = %q", got)
	}
	if got := s.Format([]string{"pos", "exp", "sal"}); got != "{pos,sal}" {
		t.Errorf("Format = %q", got)
	}
	if got := NewAttrSet(9).Format([]string{"a"}); got != "{9}" {
		t.Errorf("Format out-of-range = %q", got)
	}
	if got := AttrSet(0).String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
	if got := NewAttrSet(10, 21).String(); got != "{10,21}" {
		t.Errorf("two-digit String = %q", got)
	}
}

func TestAttrSetForEachOrder(t *testing.T) {
	s := NewAttrSet(7, 1, 4)
	var got []int
	s.ForEach(func(a int) { got = append(got, a) })
	if !reflect.DeepEqual(got, []int{1, 4, 7}) {
		t.Errorf("ForEach order = %v", got)
	}
}

func TestPairIndexBijective(t *testing.T) {
	for numAttrs := 2; numAttrs <= 12; numAttrs++ {
		seen := make(map[int]bool)
		for a := 0; a < numAttrs; a++ {
			for b := a + 1; b < numAttrs; b++ {
				i := PairIndex(a, b, numAttrs)
				if i < 0 || i >= NumPairs(numAttrs) {
					t.Fatalf("index %d out of range for %d attrs", i, numAttrs)
				}
				if seen[i] {
					t.Fatalf("duplicate index %d for {%d,%d} (%d attrs)", i, a, b, numAttrs)
				}
				seen[i] = true
				if PairIndex(b, a, numAttrs) != i {
					t.Fatalf("PairIndex not symmetric for {%d,%d}", a, b)
				}
				ra, rb := pairFromIndex(i, numAttrs)
				if ra != a || rb != b {
					t.Fatalf("pairFromIndex(%d) = (%d,%d), want (%d,%d)", i, ra, rb, a, b)
				}
			}
		}
		if len(seen) != NumPairs(numAttrs) {
			t.Fatalf("%d attrs: %d indexes, want %d", numAttrs, len(seen), NumPairs(numAttrs))
		}
	}
}

func TestPairSetOperations(t *testing.T) {
	p := NewPairSet(10)
	if !p.IsEmpty() || p.Count() != 0 {
		t.Error("new set should be empty")
	}
	p.Add(2, 7)
	p.Add(9, 0) // unordered
	if !p.Has(7, 2) || !p.Has(0, 9) || p.Has(1, 2) {
		t.Error("Has wrong")
	}
	if p.Count() != 2 {
		t.Errorf("Count = %d", p.Count())
	}
	q := p.Clone()
	q.Remove(2, 7)
	if q.Has(2, 7) || !p.Has(2, 7) {
		t.Error("Clone not independent")
	}
	q.Add(3, 4)
	p.UnionWith(q)
	if !p.Has(3, 4) || p.Count() != 3 {
		t.Errorf("UnionWith: count = %d", p.Count())
	}
	var pairs [][2]int
	p.ForEach(func(a, b int) { pairs = append(pairs, [2]int{a, b}) })
	if len(pairs) != 3 {
		t.Errorf("ForEach visited %d pairs", len(pairs))
	}
	for _, pr := range pairs {
		if pr[0] >= pr[1] {
			t.Errorf("ForEach pair not ordered: %v", pr)
		}
	}
}

func TestPairSetRandomizedAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 50; iter++ {
		numAttrs := 2 + rng.Intn(30)
		p := NewPairSet(numAttrs)
		ref := make(map[[2]int]bool)
		for op := 0; op < 200; op++ {
			a, b := rng.Intn(numAttrs), rng.Intn(numAttrs)
			if a == b {
				continue
			}
			if a > b {
				a, b = b, a
			}
			if rng.Intn(3) == 0 {
				p.Remove(a, b)
				delete(ref, [2]int{a, b})
			} else {
				p.Add(a, b)
				ref[[2]int{a, b}] = true
			}
		}
		if p.Count() != len(ref) {
			t.Fatalf("count = %d, want %d", p.Count(), len(ref))
		}
		p.ForEach(func(a, b int) {
			if !ref[[2]int{a, b}] {
				t.Fatalf("unexpected pair {%d,%d}", a, b)
			}
		})
	}
}

func buildTestTable(t *testing.T, numAttrs, rows int, seed int64) *dataset.Table {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := dataset.NewBuilder()
	for c := 0; c < numAttrs; c++ {
		vals := make([]int64, rows)
		for i := range vals {
			vals[i] = int64(rng.Intn(3))
		}
		b.AddInts(string(rune('a'+c)), vals)
	}
	tbl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func singlesOf(tbl *dataset.Table) []*partition.Stripped {
	singles := make([]*partition.Stripped, tbl.NumCols())
	for i := range singles {
		singles[i] = partition.Single(tbl.Column(i))
	}
	return singles
}

func TestLevelGenerationEnumeratesAllSets(t *testing.T) {
	tbl := buildTestTable(t, 5, 20, 1)
	singles := singlesOf(tbl)
	l0 := Level0(tbl.NumRows(), 5)
	l1 := Level1(l0, tbl, singles)
	if len(l1.Nodes) != 5 {
		t.Fatalf("level 1 size = %d", len(l1.Nodes))
	}
	want := []int{10, 10, 5, 1} // C(5,2), C(5,3), C(5,4), C(5,5)
	cur := l1
	for lv := 2; lv <= 5; lv++ {
		cur = NextLevel(cur, 5)
		if len(cur.Nodes) != want[lv-2] {
			t.Fatalf("level %d size = %d, want %d", lv, len(cur.Nodes), want[lv-2])
		}
		seen := make(map[AttrSet]bool)
		for _, n := range cur.Nodes {
			if n.Set.Card() != lv {
				t.Fatalf("level %d node has card %d", lv, n.Set.Card())
			}
			if seen[n.Set] {
				t.Fatalf("duplicate node %v", n.Set)
			}
			seen[n.Set] = true
			if n.parents[0] == nil || n.parents[1] == nil {
				t.Fatalf("node %v missing parents", n.Set)
			}
			if n.parents[0].Set.Union(n.parents[1].Set) != n.Set {
				t.Fatalf("node %v parents %v, %v do not union to it",
					n.Set, n.parents[0].Set, n.parents[1].Set)
			}
		}
	}
	if next := NextLevel(cur, 5); len(next.Nodes) != 0 {
		t.Fatalf("level 6 should be empty, got %d nodes", len(next.Nodes))
	}
}

func TestLazyPartitionMatchesDirectProduct(t *testing.T) {
	tbl := buildTestTable(t, 4, 40, 2)
	singles := singlesOf(tbl)
	l0 := Level0(tbl.NumRows(), 4)
	l1 := Level1(l0, tbl, singles)
	l2 := NextLevel(l1, 4)
	l3 := NextLevel(l2, 4)
	for _, n := range l3.Nodes {
		if n.HasPartition() {
			t.Fatalf("node %v materialized eagerly", n.Set)
		}
		got := n.Partition(singles)
		// Reference: fold singles directly.
		attrs := n.Set.Attrs()
		want := singles[attrs[0]]
		for _, a := range attrs[1:] {
			want = want.Product(singles[a])
		}
		if got.NumClasses() != want.NumClasses() || got.Size() != want.Size() {
			t.Fatalf("node %v: lazy partition %v != direct %v", n.Set, got, want)
		}
		if !got.Refines(want) || !want.Refines(got) {
			t.Fatalf("node %v: partitions differ", n.Set)
		}
	}
}

func TestPartitionReleaseAndRematerialize(t *testing.T) {
	tbl := buildTestTable(t, 3, 30, 3)
	singles := singlesOf(tbl)
	l0 := Level0(tbl.NumRows(), 3)
	l1 := Level1(l0, tbl, singles)
	l2 := NextLevel(l1, 3)
	n := l2.Nodes[0]
	p1 := n.Partition(singles)
	n.ReleasePartition(nil)
	if n.HasPartition() {
		t.Fatal("partition not released")
	}
	// Release the parents too, forcing the fold-from-singles path.
	n.parents[0].ReleasePartition(nil)
	n.parents[1].ReleasePartition(nil)
	p2 := n.Partition(singles)
	if p1.NumClasses() != p2.NumClasses() || !p1.Refines(p2) || !p2.Refines(p1) {
		t.Fatal("re-materialized partition differs")
	}
}

func TestLevelLookup(t *testing.T) {
	tbl := buildTestTable(t, 3, 10, 4)
	singles := singlesOf(tbl)
	l0 := Level0(tbl.NumRows(), 3)
	l1 := Level1(l0, tbl, singles)
	if l1.Lookup(NewAttrSet(1)) == nil {
		t.Error("Lookup {1} failed")
	}
	if l1.Lookup(NewAttrSet(0, 1)) != nil {
		t.Error("Lookup of absent set should be nil")
	}
	var nilLevel *Level
	if nilLevel.Lookup(NewAttrSet(0)) != nil {
		t.Error("nil level Lookup should be nil")
	}
}
