package store

import (
	"os"
	"path/filepath"
	"sort"
	"time"
)

// SetMaxReportBytes bounds the report store's disk tier: whenever a report
// write pushes the total size of the reports directory past the budget, the
// least recently used report files are deleted until it fits again (the
// just-written report is always spared, even when it alone exceeds the
// budget — availability of the newest result wins over strict accounting).
// Recency is file mtime: reads touch it, so a report that keeps getting
// served keeps surviving. n <= 0 restores the default unbounded behavior.
//
// Eviction deletes — unlike quarantine, which preserves evidence of
// corruption — because an evicted report is not suspect, merely cold: the
// service recomputes it on the next miss.
func (s *Store) SetMaxReportBytes(n int64) {
	s.gcMu.Lock()
	s.maxReportBytes = n
	s.gcMu.Unlock()
}

// ReportsEvicted returns the number of report files deleted by the GC since
// this Store was opened.
func (s *Store) ReportsEvicted() uint64 { return s.reportsEvicted.Load() }

// touchReport freshens the file's mtime so the GC sees it as recently used.
// Best-effort: a failed touch only weakens the LRU order, never a read.
func (s *Store) touchReport(path string) {
	now := time.Now()
	_ = os.Chtimes(path, now, now)
}

// gcReports enforces the report budget, sparing keep (the file just
// written). It scans the reports directory on every triggering write: report
// counts are bounded by the budget itself, and one readdir per completed
// discovery job is noise next to the job. Caller must not hold gcMu.
func (s *Store) gcReports(keep string) {
	s.gcMu.Lock()
	defer s.gcMu.Unlock()
	budget := s.maxReportBytes
	if budget <= 0 {
		return
	}
	dir := s.path(reportsDir)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	type reportFile struct {
		name  string
		size  int64
		mtime time.Time
	}
	var files []reportFile
	var total int64
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue // raced with another deletion
		}
		files = append(files, reportFile{name: e.Name(), size: fi.Size(), mtime: fi.ModTime()})
		total += fi.Size()
	}
	if total <= budget {
		return
	}
	sort.Slice(files, func(i, j int) bool {
		if !files[i].mtime.Equal(files[j].mtime) {
			return files[i].mtime.Before(files[j].mtime)
		}
		return files[i].name < files[j].name // determinism under coarse mtimes
	})
	for _, f := range files {
		if total <= budget {
			return
		}
		if f.name == keep {
			continue
		}
		if err := os.Remove(filepath.Join(dir, f.name)); err != nil {
			continue // already gone (concurrent GC): its size no longer counts
		}
		total -= f.size
		s.reportsEvicted.Add(1)
	}
}
