package dataset

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
)

// Fingerprint returns a hex-encoded SHA-256 content hash of the table:
// the schema (column names, kinds, row count) plus, per column, the raw
// distinct values in rank order and the full rank encoding. Two tables with
// equal fingerprints are byte-identical inputs to every algorithm in this
// module and therefore produce identical discovery results under identical
// options — the property the service layer's result cache relies on.
func Fingerprint(t *Table) string {
	h := sha256.New()
	writeInt(h, int64(t.rows))
	writeInt(h, int64(len(t.cols)))
	for _, c := range t.cols {
		writeBytes(h, []byte(c.name))
		writeInt(h, int64(c.kind))
		writeInt(h, int64(c.distinct))
		switch c.kind {
		case KindInt:
			for _, v := range c.intVals {
				writeInt(h, v)
			}
		case KindFloat:
			for _, v := range c.floatVals {
				// NaN bit patterns vary; the builder keeps at most one NaN
				// (rank 0), so a canonical quiet-NaN encoding suffices.
				if math.IsNaN(v) {
					writeInt(h, int64(math.Float64bits(math.NaN())))
				} else {
					writeInt(h, int64(math.Float64bits(v)))
				}
			}
		default:
			for _, v := range c.stringVals {
				writeBytes(h, []byte(v))
			}
		}
		// Ranks are int32; pack them directly.
		buf := make([]byte, 4*len(c.ranks))
		for i, r := range c.ranks {
			binary.LittleEndian.PutUint32(buf[4*i:], uint32(r))
		}
		h.Write(buf)
	}
	return hex.EncodeToString(h.Sum(nil))
}

func writeInt(h hash.Hash, v int64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	h.Write(buf[:])
}

// writeBytes length-prefixes the payload so adjacent variable-length fields
// cannot alias ("ab","c" vs "a","bc").
func writeBytes(h hash.Hash, b []byte) {
	writeInt(h, int64(len(b)))
	h.Write(b)
}
