// Salaries walks through the paper's running example (Table 1): swaps,
// splits, minimal removal sets, and the difference between the optimal and
// the legacy iterative validator (Examples 2.15, 3.1 and 3.2).
//
// Run with: go run ./examples/salaries
package main

import (
	"fmt"
	"log"

	"aod"
)

func main() {
	ds := aod.Table1()
	fmt.Println("Table 1 of the paper:", ds)

	// --- Example 2.15 / 3.2: the optimal validator -----------------------
	// sal ∼ tax does not hold because `perc` has data-entry errors (a
	// concatenated zero turned 1% into 10%). The minimal removal set is
	// {t1, t2, t4, t6}, e = 4/9.
	opt, err := aod.ValidateOC(ds, nil, "sal", "tax", 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n{}: sal ∼ tax — optimal validator (Algorithm 2):\n")
	fmt.Printf("  e = %.4f, minimal removal set has %d tuples: rows %v\n",
		opt.Error, opt.Removals, opt.RemovalRows)

	// --- Example 3.1: the iterative validator overestimates ---------------
	iter, err := aod.ValidateOCIterative(ds, nil, "sal", "tax", 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("{}: sal ∼ tax — iterative validator (Algorithm 1):\n")
	fmt.Printf("  e = %.4f with %d removals — overestimated (true e = %.4f)\n",
		iter.Error, iter.Removals, opt.Error)

	// --- Section 1.1: pos,exp ∼ pos,sal ----------------------------------
	// In canonical form, {pos}: exp ∼ sal. Minimal removal set {t8}:
	// the developer with -1 years of experience.
	oc, err := aod.ValidateOC(ds, []string{"pos"}, "exp", "sal", 0.12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n{pos}: exp ∼ sal: e = %.4f, valid at ε=12%%: %v, removal rows %v\n",
		oc.Error, oc.Valid, oc.RemovalRows)
	for _, row := range oc.RemovalRows {
		pos, _ := ds.Value(row, "pos")
		exp, _ := ds.Value(row, "exp")
		sal, _ := ds.Value(row, "sal")
		fmt.Printf("  suspicious tuple t%d: pos=%s exp=%s sal=%sK (negative experience!)\n",
			row+1, pos, exp, sal)
	}

	// --- Full discovery ----------------------------------------------------
	rep, err := aod.Discover(ds, aod.Options{
		Threshold:   0.12,
		Algorithm:   aod.AlgorithmOptimal,
		IncludeOFDs: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfull discovery at ε=12%%: %d OCs, %d OFDs (top 8 by interestingness):\n",
		len(rep.OCs), len(rep.OFDs))
	for i, oc := range rep.OCs {
		if i == 8 {
			break
		}
		fmt.Printf("  %v  score=%.3f\n", oc, oc.Score)
	}
}
