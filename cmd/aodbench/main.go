// Command aodbench regenerates the paper's experiments (Figures 2–5,
// Exp-1 … Exp-6) on the synthetic workloads.
//
// Usage:
//
//	aodbench [-exp all|1|2|3|4|5|6] [-scale tiny|small|paper] [-seed N] [-out FILE]
//
// Example:
//
//	aodbench -exp 3 -scale small
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"aod/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, 1, 2, 3, 4, 5, 6")
	scaleFlag := flag.String("scale", "tiny", "workload scale: tiny, small, paper")
	seed := flag.Int64("seed", 42, "generator seed")
	out := flag.String("out", "", "also write results to this file")
	flag.Parse()

	scale, err := bench.ParseScale(*scaleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	fmt.Fprintf(w, "aodbench — scale=%s seed=%d started=%s\n\n", scale, *seed, time.Now().Format(time.RFC3339))
	start := time.Now()
	switch *exp {
	case "all":
		bench.All(w, scale, *seed)
	case "1":
		bench.Exp1(w, scale, *seed)
	case "2":
		bench.Exp2(w, scale, *seed)
	case "3":
		bench.Exp3(w, scale, *seed)
	case "4":
		bench.Exp4(w, scale, *seed)
	case "5":
		bench.Exp5(w, scale, *seed)
	case "6":
		bench.Exp6(w, scale, *seed)
	default:
		fmt.Fprintf(os.Stderr, "aodbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	fmt.Fprintf(w, "total harness time: %s\n", time.Since(start).Round(time.Millisecond))
}
