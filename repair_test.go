package aod

import (
	"testing"
)

func TestSuggestRepairsPaperExample(t *testing.T) {
	ds := Table1()
	// {pos}: exp ∼ sal flags t8 (dev with exp=-1, sal=90); any salary at or
	// below the cheapest kept dev salary (30) restores order.
	repairs, err := SuggestRepairs(ds, []string{"pos"}, "exp", "sal")
	if err != nil {
		t.Fatal(err)
	}
	if len(repairs) != 1 {
		t.Fatalf("repairs = %+v, want 1", repairs)
	}
	r := repairs[0]
	if r.Row != 7 || r.Column != "sal" || r.Current != "90" {
		t.Errorf("repair = %+v", r)
	}
	if r.Lo != "" {
		t.Errorf("Lo = %q, want unbounded", r.Lo)
	}
	if r.Hi != "30" {
		t.Errorf("Hi = %q, want 30", r.Hi)
	}
}

func TestSuggestRepairsErrors(t *testing.T) {
	ds := Table1()
	if _, err := SuggestRepairs(ds, nil, "nope", "sal"); err == nil {
		t.Error("want error for unknown column")
	}
}

func TestSuspects(t *testing.T) {
	ds := Table1()
	rep, err := Discover(ds, Options{
		Threshold:          0.12,
		CollectRemovalSets: true,
		IncludeOFDs:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	all := Suspects(rep, 1)
	if len(all) == 0 {
		t.Fatal("no suspects at minHits=1 despite approximate dependencies")
	}
	for i := 1; i < len(all); i++ {
		if all[i].Hits > all[i-1].Hits {
			t.Fatal("suspects not sorted by hits")
		}
	}
	some := Suspects(rep, 2)
	for _, s := range some {
		if s.Hits < 2 {
			t.Errorf("suspect %v below minHits", s)
		}
	}
	if len(Suspects(rep, 1<<30)) != 0 {
		t.Error("absurd minHits should yield no suspects")
	}
}

func TestDiscoverParallelOption(t *testing.T) {
	ds := Flight(2000, 8, 5)
	seq, err := Discover(ds, Options{Threshold: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Discover(ds, Options{Threshold: 0.10, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.OCs) != len(par.OCs) {
		t.Errorf("parallel OCs = %d, sequential = %d", len(par.OCs), len(seq.OCs))
	}
	// Reports are score-sorted; the sets must match.
	seen := make(map[string]bool)
	for _, oc := range seq.OCs {
		seen[oc.String()] = true
	}
	for _, oc := range par.OCs {
		if !seen[oc.String()] {
			t.Errorf("parallel-only OC %v", oc)
		}
	}
}

func TestDiscoverSamplingOption(t *testing.T) {
	ds := Flight(6000, 8, 5)
	full, err := Discover(ds, Options{Threshold: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	hyb, err := Discover(ds, Options{Threshold: 0.10, SampleStride: 8})
	if err != nil {
		t.Fatal(err)
	}
	fullSet := make(map[string]bool)
	for _, oc := range full.OCs {
		fullSet[oc.String()] = true
	}
	for _, oc := range hyb.OCs {
		if !fullSet[oc.String()] {
			t.Errorf("hybrid reported OC %v missing from full run", oc)
		}
	}
}
