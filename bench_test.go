// Benchmarks regenerating the paper's evaluation, one target per table or
// figure (scaled workloads — run cmd/aodbench for the full harness with
// paper-sized grids):
//
//	BenchmarkFigure2TupleScaling    — Exp-1, runtime vs |r| per algorithm
//	BenchmarkFigure3AttrScaling     — Exp-2, runtime vs |R| per algorithm
//	BenchmarkFigure4Threshold       — Exp-3, runtime vs ε per algorithm
//	BenchmarkFigure5LatticeLevels   — Exp-5, exact vs approximate full runs
//	BenchmarkValidateAOC*           — the isolated validators (the paper's
//	                                  O(n log n) vs O(n log n + εn²) claim)
//	BenchmarkLNDS / BenchmarkInversionCounts / BenchmarkPartitionProduct /
//	BenchmarkApproxOFD              — substrate micro-benchmarks
package aod

import (
	"fmt"
	"testing"

	"aod/internal/core"
	"aod/internal/dataset"
	"aod/internal/gen"
	"aod/internal/lis"
	"aod/internal/partition"
	"aod/internal/validate"
)

func benchDiscover(b *testing.B, tbl *dataset.Table, vk core.ValidatorKind, eps float64) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Discover(tbl, core.Config{Threshold: eps, Validator: vk})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

// BenchmarkFigure2TupleScaling measures full discovery runtime as the number
// of tuples grows (Exp-1 / Figure 2), for all three algorithm configurations.
func BenchmarkFigure2TupleScaling(b *testing.B) {
	for _, ds := range []string{"flight", "ncvoter"} {
		for _, n := range []int{1000, 2000, 4000} {
			var tbl *dataset.Table
			if ds == "flight" {
				tbl = gen.Flight(gen.FlightConfig{Rows: n, Attrs: 10, Seed: 42})
			} else {
				tbl = gen.NCVoter(gen.NCVoterConfig{Rows: n, Attrs: 10, Seed: 42})
			}
			b.Run(fmt.Sprintf("%s/OD/n=%d", ds, n), func(b *testing.B) {
				benchDiscover(b, tbl, core.ValidatorExact, 0)
			})
			b.Run(fmt.Sprintf("%s/AODOptimal/n=%d", ds, n), func(b *testing.B) {
				benchDiscover(b, tbl, core.ValidatorOptimal, 0.10)
			})
			b.Run(fmt.Sprintf("%s/AODIterative/n=%d", ds, n), func(b *testing.B) {
				benchDiscover(b, tbl, core.ValidatorIterative, 0.10)
			})
		}
	}
}

// BenchmarkFigure3AttrScaling measures discovery runtime as the number of
// attributes grows at a fixed 500 tuples (Exp-2 / Figure 3; the paper uses
// 1K tuples and up to 35 attributes).
func BenchmarkFigure3AttrScaling(b *testing.B) {
	for _, ds := range []string{"flight", "ncvoter"} {
		for _, attrs := range []int{4, 6, 8, 10} {
			var tbl *dataset.Table
			if ds == "flight" {
				tbl = gen.Flight(gen.FlightConfig{Rows: 500, Attrs: attrs, Seed: 42})
			} else {
				tbl = gen.NCVoter(gen.NCVoterConfig{Rows: 500, Attrs: attrs, Seed: 42})
			}
			b.Run(fmt.Sprintf("%s/OD/attrs=%d", ds, attrs), func(b *testing.B) {
				benchDiscover(b, tbl, core.ValidatorExact, 0)
			})
			b.Run(fmt.Sprintf("%s/AODOptimal/attrs=%d", ds, attrs), func(b *testing.B) {
				benchDiscover(b, tbl, core.ValidatorOptimal, 0.10)
			})
			b.Run(fmt.Sprintf("%s/AODIterative/attrs=%d", ds, attrs), func(b *testing.B) {
				benchDiscover(b, tbl, core.ValidatorIterative, 0.10)
			})
		}
	}
}

// BenchmarkFigure4Threshold measures discovery runtime as the approximation
// threshold grows (Exp-3 / Figure 4): the optimal validator should stay flat
// while the iterative one grows roughly linearly in ε.
func BenchmarkFigure4Threshold(b *testing.B) {
	tbl := gen.Flight(gen.FlightConfig{Rows: 2000, Attrs: 10, Seed: 42})
	for _, eps := range []float64{0, 0.05, 0.10, 0.15, 0.20, 0.25} {
		b.Run(fmt.Sprintf("AODOptimal/eps=%.0f%%", eps*100), func(b *testing.B) {
			benchDiscover(b, tbl, core.ValidatorOptimal, eps)
		})
		b.Run(fmt.Sprintf("AODIterative/eps=%.0f%%", eps*100), func(b *testing.B) {
			benchDiscover(b, tbl, core.ValidatorIterative, eps)
		})
	}
}

// BenchmarkFigure5LatticeLevels measures the exact-vs-approximate runtime
// effect of finding dependencies at lower lattice levels (Exp-5 / Figure 5).
func BenchmarkFigure5LatticeLevels(b *testing.B) {
	tbl := gen.NCVoter(gen.NCVoterConfig{Rows: 5000, Attrs: 10, Seed: 42})
	b.Run("OD", func(b *testing.B) { benchDiscover(b, tbl, core.ValidatorExact, 0) })
	b.Run("AODOptimal", func(b *testing.B) { benchDiscover(b, tbl, core.ValidatorOptimal, 0.10) })
}

// --- Isolated validators (Exp-3's complexity claim) -------------------------

func validatorWorkload(n int) (*partition.Stripped, *dataset.Column, *dataset.Column) {
	tbl := gen.CorrelatedPair(n, 0.10, 42)
	return partition.Universe(n), tbl.Column(0), tbl.Column(1)
}

// BenchmarkValidateAOCOptimal isolates Algorithm 2: O(n log n) regardless of
// the error rate.
func BenchmarkValidateAOCOptimal(b *testing.B) {
	for _, n := range []int{1000, 10_000, 100_000} {
		ctx, ca, cb := validatorWorkload(n)
		v := validate.New()
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				v.OptimalAOC(ctx, ca, cb, validate.Options{Threshold: 0.15})
			}
		})
	}
}

// BenchmarkValidateAOCIterative isolates Algorithm 1: the εn² term dominates
// as n grows (the 100K case removes ~10K tuples at O(n) each).
func BenchmarkValidateAOCIterative(b *testing.B) {
	for _, n := range []int{1000, 10_000, 30_000} {
		ctx, ca, cb := validatorWorkload(n)
		v := validate.New()
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				v.IterativeAOC(ctx, ca, cb, validate.Options{Threshold: 0.15})
			}
		})
	}
}

// BenchmarkValidateOCExact isolates the exact check (linear after sorting).
func BenchmarkValidateOCExact(b *testing.B) {
	for _, n := range []int{1000, 10_000, 100_000} {
		ctx, ca, cb := validatorWorkload(n)
		v := validate.New()
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				v.ExactOC(ctx, ca, cb)
			}
		})
	}
}

// --- Substrate micro-benchmarks ---------------------------------------------

func BenchmarkLNDS(b *testing.B) {
	for _, n := range []int{1000, 10_000, 100_000} {
		tbl := gen.CorrelatedPair(n, 0.10, 42)
		seq := tbl.Column(1).Ranks()
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				lis.LNDS(seq)
			}
		})
	}
}

func BenchmarkInversionCounts(b *testing.B) {
	for _, n := range []int{1000, 10_000, 100_000} {
		tbl := gen.CorrelatedPair(n, 0.10, 42)
		seq := tbl.Column(1).Ranks()
		maxRank := int32(tbl.Column(1).NumDistinct())
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				lis.InversionCounts(seq, maxRank)
			}
		})
	}
}

func BenchmarkPartitionProduct(b *testing.B) {
	for _, n := range []int{10_000, 100_000} {
		tbl := gen.NCVoter(gen.NCVoterConfig{Rows: n, Attrs: 4, Seed: 42})
		p0 := partition.Single(tbl.Column(3)) // municipality (moderate domain)
		p1 := partition.Single(tbl.Column(1)) // age
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p0.Product(p1)
			}
		})
	}
}

func BenchmarkApproxOFD(b *testing.B) {
	for _, n := range []int{10_000, 100_000} {
		tbl := gen.NCVoter(gen.NCVoterConfig{Rows: n, Attrs: 4, Seed: 42})
		ctx := partition.Single(tbl.Column(3))
		col := tbl.Column(1)
		v := validate.New()
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				v.ApproxOFD(ctx, col, validate.Options{Threshold: 0.1})
			}
		})
	}
}

// --- Ablations (DESIGN.md design choices) ------------------------------------

// BenchmarkAblationPruning measures the benefit of the minimality/constancy
// candidate pruning (Exp-5's mechanism): identical output, strictly more
// validations when disabled.
func BenchmarkAblationPruning(b *testing.B) {
	tbl := gen.NCVoter(gen.NCVoterConfig{Rows: 2000, Attrs: 8, Seed: 42})
	b.Run("pruning=on", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Discover(tbl, core.Config{Threshold: 0.10, Validator: core.ValidatorOptimal}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pruning=off", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Discover(tbl, core.Config{Threshold: 0.10, Validator: core.ValidatorOptimal, DisablePruning: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationSampling measures the hybrid-sampling pre-filter.
func BenchmarkAblationSampling(b *testing.B) {
	tbl := gen.Flight(gen.FlightConfig{Rows: 8000, Attrs: 8, Seed: 42})
	for _, stride := range []int{0, 4, 16} {
		name := "off"
		if stride > 0 {
			name = fmt.Sprintf("stride=%d", stride)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := core.Config{Threshold: 0.10, Validator: core.ValidatorOptimal, SampleStride: stride}
				if _, err := core.Discover(tbl, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSortedScan measures the sorted-partition scan route for
// exact OC validation against the per-class sort route.
func BenchmarkAblationSortedScan(b *testing.B) {
	tbl := gen.Flight(gen.FlightConfig{Rows: 20000, Attrs: 8, Seed: 42})
	b.Run("sort", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Discover(tbl, core.Config{Validator: core.ValidatorExact}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Discover(tbl, core.Config{Validator: core.ValidatorExact, UseSortedScan: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkParallelWorkers measures the level-parallel engine (the
// distributed-discovery extension after [8]).
func BenchmarkParallelWorkers(b *testing.B) {
	tbl := gen.NCVoter(gen.NCVoterConfig{Rows: 5000, Attrs: 10, Seed: 42})
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := core.Config{Threshold: 0.10, Validator: core.ValidatorOptimal}
				if _, err := core.DiscoverParallel(tbl, cfg, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPublicDiscover exercises the public API end to end.
func BenchmarkPublicDiscover(b *testing.B) {
	ds := Flight(2000, 10, 42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Discover(ds, Options{Threshold: 0.10}); err != nil {
			b.Fatal(err)
		}
	}
}
