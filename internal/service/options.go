package service

import (
	"encoding/json"

	"aod"
)

// canonicalOptions maps an Options value to the representative of its
// result-equivalence class: fields that provably cannot change the
// discovered dependencies are zeroed and defaulted fields are pinned to
// their effective values, so any two option sets guaranteed to produce the
// same Report share one cache key.
func canonicalOptions(o aod.Options) aod.Options {
	// Parallel validation is contractually result-identical to sequential.
	o.Parallelism = 0
	// TimeLimit changes only whether a run completes, not a completed run's
	// result — and partial (timed-out) results are never cached. (Jobs with
	// a limit also bypass in-flight sharing; see Service.compute.)
	o.TimeLimit = 0
	if o.Algorithm == aod.AlgorithmExact {
		// The exact validator treats ε as 0 and ignores sampling.
		o.Threshold = 0
		o.SampleStride = 0
	}
	if o.SampleStride <= 1 {
		// Sampling disabled: the slack is inert.
		o.SampleStride = 0
		o.SampleSlack = 0
	} else if o.SampleSlack == 0 {
		o.SampleSlack = aod.DefaultSampleSlack
	}
	return o
}

// cacheKey derives the result-cache key for running the canonicalized
// options against the fingerprinted dataset. Options marshal with omitempty
// on every field, so the JSON of a canonical value is itself canonical.
func cacheKey(fingerprint string, o aod.Options) string {
	b, err := json.Marshal(canonicalOptions(o))
	if err != nil {
		// Options is a plain struct of scalars; Marshal cannot fail.
		panic("service: marshal options: " + err.Error())
	}
	return fingerprint + "|" + string(b)
}
