package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"aod"
	"aod/internal/store"
)

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func reportJSON(t *testing.T, rep *aod.Report) string {
	t.Helper()
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestServiceRecoveryAfterRestart is the crash-recovery e2e: upload →
// discover → stop the service → rebuild a brand-new Service over the same
// data directory → the dataset is still listed and a repeat submission of
// the completed job is served from the persisted report store with zero new
// discovery work.
func TestServiceRecoveryAfterRestart(t *testing.T) {
	dir := t.TempDir()
	opts := aod.Options{Threshold: 0.12, IncludeOFDs: true}

	// Generation 1: upload and compute.
	s1 := New(Config{Workers: 2, Store: openStore(t, dir)})
	info, created, err := s1.Registry().Add("employees", smallDataset(t))
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Fatal("first upload not created")
	}
	v, err := s1.Submit(info.ID, opts)
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, s1, v.ID, JobDone)
	if done.Report == nil || len(done.Report.OCs) == 0 {
		t.Fatal("first run produced no report")
	}
	firstReport := reportJSON(t, done.Report)
	s1.Close()

	// Generation 2: a fresh process over the same directory.
	s2 := New(Config{Workers: 2, Store: openStore(t, dir)})
	defer s2.Close()

	list := s2.Registry().List()
	if len(list) != 1 {
		t.Fatalf("restarted registry lists %d datasets, want 1", len(list))
	}
	if list[0].ID != info.ID || list[0].Name != "employees" || list[0].Fingerprint != info.Fingerprint {
		t.Errorf("restarted record %+v does not match original %+v", list[0], info)
	}
	if st := s2.Stats(); !st.Persistent || st.Datasets != 1 || st.DatasetsResident != 0 {
		t.Errorf("restarted stats = %+v, want persistent, 1 dataset, 0 resident (lazy)", st)
	}

	// The repeat submission must be a hit from disk: no validation run.
	v2, err := s2.Submit(info.ID, opts)
	if err != nil {
		t.Fatal(err)
	}
	done2 := waitState(t, s2, v2.ID, JobDone)
	if !done2.CacheHit {
		t.Error("post-restart identical job was not a cache hit")
	}
	if got := reportJSON(t, done2.Report); got != firstReport {
		t.Errorf("post-restart report differs from the persisted one:\nwas  %s\nnow  %s", firstReport, got)
	}
	st := s2.Stats()
	if st.ValidationRuns != 0 {
		t.Errorf("restart recomputed: %d validation runs, want 0", st.ValidationRuns)
	}
	if st.CacheDiskHits != 1 || st.CacheHits != 1 {
		t.Errorf("stats = diskHits %d / hits %d, want 1 / 1", st.CacheDiskHits, st.CacheHits)
	}
	if st.DiscoveryTime != 0 {
		t.Errorf("restart spent %v in discovery for a persisted report", st.DiscoveryTime)
	}
}

// TestPersistentRegistryLazyLoadAndEviction: with a store, MaxDatasets
// bounds the resident set, not the registry — uploads keep succeeding and
// cold payloads reload from disk on use.
func TestPersistentRegistryLazyLoadAndEviction(t *testing.T) {
	s := New(Config{Workers: 1, MaxDatasets: 1, Store: openStore(t, t.TempDir())})
	defer s.Close()
	r := s.Registry()

	a, _, err := r.Add("a", smallDataset(t))
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := r.Add("b", slowDataset(t, 30, 2))
	if err != nil {
		t.Fatalf("persistent registry refused a second dataset: %v", err)
	}
	if r.Len() != 2 {
		t.Fatalf("registry size = %d, want 2", r.Len())
	}
	if res := r.Resident(); res != 1 {
		t.Fatalf("resident = %d, want 1 (bound)", res)
	}
	// a was evicted for b; using a again reloads it from disk and evicts b.
	dsA, infoA, err := r.Get(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if dsA.Fingerprint() != infoA.Fingerprint || infoA.Fingerprint != a.Fingerprint {
		t.Error("lazily reloaded dataset does not match its record")
	}
	if res := r.Resident(); res != 1 {
		t.Errorf("resident = %d after reload, want 1", res)
	}
	// And b still works too — round and round without refusals.
	if _, _, err := r.Get(b.ID); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentColdGetsLoadOnce: after a restart, many goroutines hitting
// one cold dataset must trigger exactly one disk load (the per-entry loading
// flight) and all adopt the same in-memory payload.
func TestConcurrentColdGetsLoadOnce(t *testing.T) {
	dir := t.TempDir()
	s1 := New(Config{Workers: 1, Store: openStore(t, dir)})
	info, _, err := s1.Registry().Add("cold", smallDataset(t))
	if err != nil {
		t.Fatal(err)
	}
	s1.Close()

	s2 := New(Config{Workers: 1, Store: openStore(t, dir)})
	defer s2.Close()
	const goroutines = 16
	got := make([]*aod.Dataset, goroutines)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			ds, _, err := s2.Registry().Get(info.ID)
			if err != nil {
				t.Error(err)
				return
			}
			got[g] = ds
		}(g)
	}
	close(start)
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if got[g] != got[0] {
			t.Fatalf("goroutine %d loaded a distinct payload copy", g)
		}
	}
	if res := s2.Registry().Resident(); res != 1 {
		t.Errorf("resident = %d after concurrent cold gets, want 1", res)
	}
}

// TestCorruptReportRecomputedAndQuarantined: a truncated report file must
// not be served; the job transparently recomputes and the corrupt file is
// quarantined.
func TestCorruptReportRecomputedAndQuarantined(t *testing.T) {
	dir := t.TempDir()
	opts := aod.Options{Threshold: 0.12}

	s1 := New(Config{Workers: 2, Store: openStore(t, dir)})
	info, _, err := s1.Registry().Add("employees", smallDataset(t))
	if err != nil {
		t.Fatal(err)
	}
	v, err := s1.Submit(info.ID, opts)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s1, v.ID, JobDone)
	s1.Close()

	// Truncate every persisted report — simulating a torn disk.
	reports, err := filepath.Glob(filepath.Join(dir, "reports", "*.json"))
	if err != nil || len(reports) == 0 {
		t.Fatalf("no persisted report files (err=%v)", err)
	}
	for _, p := range reports {
		if err := os.WriteFile(p, []byte(`{"key": "tru`), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	st2 := openStore(t, dir)
	s2 := New(Config{Workers: 2, Store: st2})
	defer s2.Close()
	v2, err := s2.Submit(info.ID, opts)
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, s2, v2.ID, JobDone)
	if done.CacheHit {
		t.Error("corrupt report was served as a cache hit")
	}
	if len(done.Report.OCs) == 0 {
		t.Error("recomputed report is empty")
	}
	stats := s2.Stats()
	if stats.ValidationRuns != 1 {
		t.Errorf("validation runs = %d, want 1 (recompute)", stats.ValidationRuns)
	}
	if stats.Quarantined == 0 {
		t.Error("corrupt report file was not quarantined")
	}
	// The recompute re-persisted a good report: a third generation hits disk.
	s2.Close()
	s3 := New(Config{Workers: 1, Store: openStore(t, dir)})
	defer s3.Close()
	v3, err := s3.Submit(info.ID, opts)
	if err != nil {
		t.Fatal(err)
	}
	if done3 := waitState(t, s3, v3.ID, JobDone); !done3.CacheHit {
		t.Error("re-persisted report not served from disk after second restart")
	}
}

// TestCorruptDatasetStillServesPersistedReport: the result cache is keyed
// by fingerprint metadata, so a previously computed report is served even
// when the dataset payload itself has rotted on disk — the payload is only
// needed for new validation work.
func TestCorruptDatasetStillServesPersistedReport(t *testing.T) {
	dir := t.TempDir()
	opts := aod.Options{Threshold: 0.12}
	s1 := New(Config{Workers: 1, Store: openStore(t, dir)})
	info, _, err := s1.Registry().Add("rotting", smallDataset(t))
	if err != nil {
		t.Fatal(err)
	}
	v, err := s1.Submit(info.ID, opts)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s1, v.ID, JobDone)
	s1.Close()

	payload := filepath.Join(dir, "datasets", info.Fingerprint+".csv")
	if err := os.WriteFile(payload, []byte("rotten"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := New(Config{Workers: 1, Store: openStore(t, dir)})
	defer s2.Close()
	v2, err := s2.Submit(info.ID, opts)
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, s2, v2.ID, JobDone)
	if !done.CacheHit || len(done.Report.OCs) == 0 {
		t.Errorf("persisted report not served despite corrupt payload: %+v", done)
	}
	// A *different* configuration genuinely needs the payload and fails.
	v3, err := s2.Submit(info.ID, aod.Options{Threshold: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s2, v3.ID, JobFailed)
}

// TestCorruptDatasetFailsJobNotServer: garbage in a dataset payload file
// fails the one job that needs it — with the record dropped and the file
// quarantined — while the service keeps serving everything else.
func TestCorruptDatasetFailsJobNotServer(t *testing.T) {
	dir := t.TempDir()
	s1 := New(Config{Workers: 1, Store: openStore(t, dir)})
	info, _, err := s1.Registry().Add("doomed", smallDataset(t))
	if err != nil {
		t.Fatal(err)
	}
	s1.Close()

	payload := filepath.Join(dir, "datasets", info.Fingerprint+".csv")
	if err := os.WriteFile(payload, []byte("g\x00rbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := New(Config{Workers: 1, Store: openStore(t, dir)})
	defer s2.Close()
	if n := len(s2.Registry().List()); n != 1 {
		t.Fatalf("dataset not listed before first use: %d records", n)
	}
	v, err := s2.Submit(info.ID, aod.Options{Threshold: 0.1})
	if err != nil {
		t.Fatal(err) // schema validation uses metadata only; submission succeeds
	}
	failed := waitState(t, s2, v.ID, JobFailed)
	if !strings.Contains(failed.Error, "unavailable") {
		t.Errorf("job error %q does not name the unavailable dataset", failed.Error)
	}
	if s2.Stats().Quarantined == 0 {
		t.Error("corrupt payload was not quarantined")
	}
	// The poisoned record is gone; the server itself is healthy.
	if _, err := s2.Registry().Info(info.ID); !errors.Is(err, ErrNoDataset) {
		t.Errorf("corrupt dataset still resolvable: %v", err)
	}
	fresh, _, err := s2.Registry().Add("fresh", smallDataset(t))
	if err != nil {
		t.Fatal(err)
	}
	v2, err := s2.Submit(fresh.ID, aod.Options{Threshold: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s2, v2.ID, JobDone)
}

// TestUnserializableUploadIs422: content CSV cannot round-trip (a quoted
// "\r\r\n" folds to a value containing "\r\n") is a permanent client-data
// condition in persistent mode — 422, not a retryable 500. Without a store
// the same upload is accepted (nothing needs to round-trip).
func TestUnserializableUploadIs422(t *testing.T) {
	body := "a\n\"x\r\r\ny\"\n\"z\"\n"

	persistent := New(Config{Workers: 1, Store: openStore(t, t.TempDir())})
	defer persistent.Close()
	srv := httptest.NewServer(NewHandler(persistent, HandlerConfig{}))
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/datasets", "text/csv", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("persistent upload status = %d, want 422", resp.StatusCode)
	}

	inMemory := New(Config{Workers: 1})
	defer inMemory.Close()
	srv2 := httptest.NewServer(NewHandler(inMemory, HandlerConfig{}))
	defer srv2.Close()
	resp2, err := http.Post(srv2.URL+"/datasets", "text/csv", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusCreated {
		t.Errorf("in-memory upload status = %d, want 201", resp2.StatusCode)
	}
}

// TestInMemoryModeUnchanged pins the PR-1 contract: without a Store the
// registry bound still refuses uploads and stats advertise no persistence.
func TestInMemoryModeUnchanged(t *testing.T) {
	s := New(Config{Workers: 1, MaxDatasets: 1})
	defer s.Close()
	if _, _, err := s.Registry().Add("a", smallDataset(t)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Registry().Add("b", slowDataset(t, 20, 2)); !errors.Is(err, ErrRegistryFull) {
		t.Fatalf("err = %v, want ErrRegistryFull without a store", err)
	}
	st := s.Stats()
	if st.Persistent || st.Quarantined != 0 || st.CacheDiskHits != 0 {
		t.Errorf("in-memory stats advertise persistence: %+v", st)
	}
	if st.DatasetsResident != st.Datasets {
		t.Errorf("resident %d != datasets %d in memory mode", st.DatasetsResident, st.Datasets)
	}
}

// TestPersistentServiceConcurrency hammers a persistent service from many
// goroutines — uploads (identical and distinct), submissions, stats — then
// restarts and checks nothing was lost. Run under -race in CI.
func TestPersistentServiceConcurrency(t *testing.T) {
	dir := t.TempDir()
	s := New(Config{Workers: 4, QueueDepth: 256, MaxDatasets: 2, Store: openStore(t, dir)})

	const goroutines = 8
	ids := make([]string, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var ds *aod.Dataset
			if g%2 == 0 {
				ds = smallDataset(t) // identical content: dedup path
			} else {
				ds = slowDataset(t, 20+g, 2) // distinct content: eviction churn
			}
			info, _, err := s.Registry().Add(fmt.Sprintf("d%d", g), ds)
			if err != nil {
				t.Error(err)
				return
			}
			ids[g] = info.ID
			v, err := s.Submit(info.ID, aod.Options{Threshold: 0.12})
			if err != nil {
				t.Error(err)
				return
			}
			waitState(t, s, v.ID, JobDone)
			s.Stats()
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	s.Close()

	// Nothing uploaded concurrently may be lost across the restart.
	s2 := New(Config{Workers: 2, Store: openStore(t, dir)})
	defer s2.Close()
	for g, id := range ids {
		if _, err := s2.Registry().Info(id); err != nil {
			t.Errorf("dataset %d (%s) lost across restart: %v", g, id, err)
		}
	}
	// Every re-submission is answered from the persisted report store.
	for _, id := range ids {
		v, err := s2.Submit(id, aod.Options{Threshold: 0.12})
		if err != nil {
			t.Fatal(err)
		}
		if done := waitState(t, s2, v.ID, JobDone); !done.CacheHit {
			t.Errorf("dataset %s: post-restart job missed the report store", id)
		}
	}
	if st := s2.Stats(); st.ValidationRuns != 0 {
		t.Errorf("post-restart validation runs = %d, want 0", st.ValidationRuns)
	}
}

// TestConcurrentBidirectionalJobsShareDataset pins the shared-dataset
// immutability contract: concurrent discovery jobs race over one registered
// dataset's lazily built descending column views (previously a plain-pointer
// data race in Column.Reversed — this test failed under -race before the
// view cache became an atomic CAS).
func TestConcurrentBidirectionalJobsShareDataset(t *testing.T) {
	s := New(Config{Workers: 4})
	defer s.Close()
	info, _, err := s.Registry().Add("shared", smallDataset(t))
	if err != nil {
		t.Fatal(err)
	}
	// Distinct thresholds → distinct cache keys → genuinely concurrent runs
	// over the same *aod.Dataset.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := s.Submit(info.ID, aod.Options{
				Threshold:     0.05 * float64(i+1),
				Bidirectional: true,
				IncludeOFDs:   true,
			})
			if err != nil {
				t.Error(err)
				return
			}
			waitState(t, s, v.ID, JobDone)
		}(i)
	}
	wg.Wait()
}
