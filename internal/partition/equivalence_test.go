package partition

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// legacyProduct is the pre-CSR implementation of the partition product — a
// map probe with a per-class sort.Slice for determinism — kept verbatim (on
// top of the CSR accessors) as the equivalence oracle for the flat TANE
// array probe that replaced it.
func legacyProduct(p, other *Stripped) *Stripped {
	n := p.N
	classOf := make([]int32, n)
	for i := range classOf {
		classOf[i] = -1
	}
	for ci := 0; ci < other.NumClasses(); ci++ {
		for _, row := range other.Class(ci) {
			classOf[row] = int32(ci)
		}
	}
	out := &Stripped{N: n}
	probe := make(map[int32][]int32)
	for pi := 0; pi < p.NumClasses(); pi++ {
		for _, row := range p.Class(pi) {
			oc := classOf[row]
			if oc < 0 {
				continue
			}
			probe[oc] = append(probe[oc], row)
		}
		if len(probe) > 0 {
			keys := make([]int32, 0, len(probe))
			for k := range probe {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(i, j int) bool { return probe[keys[i]][0] < probe[keys[j]][0] })
			for _, k := range keys {
				if g := probe[k]; len(g) >= 2 {
					out.appendClass(g)
				}
				delete(probe, k)
			}
		}
	}
	return out
}

// TestProductEquivalentToLegacy pins the CSR product to the legacy
// implementation layout-for-layout: same classes, in the same order, with
// the same rows — not just the same set of classes.
func TestProductEquivalentToLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for iter := 0; iter < 300; iter++ {
		rows := 1 + rng.Intn(120)
		tbl := randomTable(rng, rows, 3, 1+rng.Intn(8))
		pa := Single(tbl.Column(0))
		pb := Single(tbl.Column(1))
		pc := Single(tbl.Column(2))
		for _, pair := range [][2]*Stripped{{pa, pb}, {pb, pa}, {pa.Product(pb), pc}, {Universe(rows), pc}} {
			got := pair[0].Product(pair[1])
			want := legacyProduct(pair[0], pair[1])
			if got.N != want.N || !reflect.DeepEqual(classes(got), classes(want)) {
				t.Fatalf("iter %d: product layout diverged from legacy:\n got %v\nwant %v",
					iter, classes(got), classes(want))
			}
		}
	}
}

// TestProductIntoReusesBuffers checks ProductInto against Product and that a
// recycled output keeps no stale state.
func TestProductIntoReusesBuffers(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	var s ProductScratch
	out := &Stripped{}
	for iter := 0; iter < 100; iter++ {
		rows := 1 + rng.Intn(90)
		tbl := randomTable(rng, rows, 2, 1+rng.Intn(6))
		pa := Single(tbl.Column(0))
		pb := Single(tbl.Column(1))
		pa.ProductInto(pb, &s, out)
		want := pa.Product(pb)
		if !reflect.DeepEqual(classes(out), classes(want)) || out.N != want.N {
			t.Fatalf("iter %d: ProductInto diverged: got %v want %v", iter, classes(out), classes(want))
		}
	}
}

// TestProductAllocFree pins the steady-state allocation count of the hot
// path: with warm scratch and a reused output, ProductInto must not allocate.
func TestProductAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	tbl := randomTable(rng, 4096, 2, 40)
	pa := Single(tbl.Column(0))
	pb := Single(tbl.Column(1))
	var s ProductScratch
	out := &Stripped{}
	pa.ProductInto(pb, &s, out) // warm the buffers
	if n := testing.AllocsPerRun(50, func() {
		pa.ProductInto(pb, &s, out)
	}); n != 0 {
		t.Errorf("ProductInto allocates %.1f times per call in steady state, want 0", n)
	}
}

// TestRefinesAllocFree pins Refines' steady-state allocations (pooled probe).
func TestRefinesAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under -race; allocation pin is meaningless")
	}
	rng := rand.New(rand.NewSource(80))
	tbl := randomTable(rng, 2048, 2, 16)
	pa := Single(tbl.Column(0))
	ab := pa.Product(Single(tbl.Column(1)))
	if !ab.Refines(pa) {
		t.Fatal("product must refine its factor")
	}
	if n := testing.AllocsPerRun(50, func() {
		ab.Refines(pa)
	}); n > 0 {
		t.Errorf("Refines allocates %.1f times per call in steady state, want 0", n)
	}
}
