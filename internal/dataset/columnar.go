package dataset

import "fmt"

// ColumnData is the raw material of one rank-encoded column: the dense rank
// array plus the distinct raw values in rank order — exactly the per-column
// inputs of Fingerprint. It is the unit the shard protocol ships when a
// coordinator sends a dataset to a worker: reconstructing columns from parts
// skips CSV rendering and re-parsing entirely, and a fingerprint comparison
// on the result proves the transfer lossless.
//
// Exactly one of Ints/Floats/Strings must be populated, matching Kind; its
// length is the column's distinct count.
type ColumnData struct {
	Name    string
	Kind    Kind
	Ranks   []int32
	Ints    []int64
	Floats  []float64
	Strings []string
}

// Data returns the column's reconstruction parts. The slices alias the
// column's internals — callers must not modify them.
func (c *Column) Data() ColumnData {
	return ColumnData{
		Name:    c.name,
		Kind:    c.kind,
		Ranks:   c.ranks,
		Ints:    c.intVals,
		Floats:  c.floatVals,
		Strings: c.stringVals,
	}
}

// TableFromColumns assembles a Table directly from rank-encoded column parts,
// the inverse of Column.Data. It validates structural safety — every rank
// array has exactly rows entries, every rank lies in [0, distinct), the value
// slice matches the declared kind — so a table built from untrusted bytes can
// never index out of bounds. It does NOT verify semantic invariants (values
// sorted ascending, every rank used); callers receiving data over a wire
// should compare Fingerprint against the sender's to prove full fidelity.
func TableFromColumns(rows int, cols []ColumnData) (*Table, error) {
	if rows < 0 {
		return nil, fmt.Errorf("dataset: negative row count %d", rows)
	}
	built := make([]*Column, len(cols))
	for i, cd := range cols {
		if len(cd.Ranks) != rows {
			return nil, fmt.Errorf("dataset: column %q has %d ranks, want %d", cd.Name, len(cd.Ranks), rows)
		}
		c := &Column{name: cd.Name, kind: cd.Kind, ranks: cd.Ranks}
		switch cd.Kind {
		case KindInt:
			if cd.Floats != nil || cd.Strings != nil {
				return nil, fmt.Errorf("dataset: int column %q carries non-int values", cd.Name)
			}
			c.intVals = cd.Ints
			c.distinct = len(cd.Ints)
		case KindFloat:
			if cd.Ints != nil || cd.Strings != nil {
				return nil, fmt.Errorf("dataset: float column %q carries non-float values", cd.Name)
			}
			c.floatVals = cd.Floats
			c.distinct = len(cd.Floats)
		case KindString:
			if cd.Ints != nil || cd.Floats != nil {
				return nil, fmt.Errorf("dataset: string column %q carries non-string values", cd.Name)
			}
			c.stringVals = cd.Strings
			c.distinct = len(cd.Strings)
		default:
			return nil, fmt.Errorf("dataset: column %q has unknown kind %d", cd.Name, int(cd.Kind))
		}
		for r, rank := range cd.Ranks {
			if rank < 0 || int(rank) >= c.distinct {
				return nil, fmt.Errorf("dataset: column %q row %d has rank %d outside [0,%d)", cd.Name, r, rank, c.distinct)
			}
		}
		built[i] = c
	}
	return fromColumns(built)
}
