package bench

import (
	"os"
	"testing"

	"aod/internal/telemetry"
)

// TestTracedDiscoveryOverheadGuard measures the telemetry tax directly: the
// discover-traced workload (active trace on the context, per-level spans
// recorded) against the plain discover-ncvoter workload, same dataset, same
// process, interleaved runs. The budget is ≤2% median overhead; the gate
// allows 5% to absorb CI-runner noise. Opt-in via AOD_BENCH_GUARD=1 — the
// run takes tens of seconds, far too slow for the ordinary test suite.
func TestTracedDiscoveryOverheadGuard(t *testing.T) {
	if os.Getenv("AOD_BENCH_GUARD") == "" {
		t.Skip("set AOD_BENCH_GUARD=1 to run the telemetry overhead guard")
	}
	var plain, traced func(b *testing.B)
	for _, wl := range jsonWorkloads(42) {
		switch wl.name {
		case "discover-ncvoter/n=5000,attrs=10":
			plain = wl.fn
		case "discover-traced/n=5000,attrs=10":
			traced = wl.fn
		}
	}
	if plain == nil || traced == nil {
		t.Fatal("guard workloads missing from jsonWorkloads")
	}

	const runs = 5
	nsOf := func(fn func(b *testing.B)) float64 {
		r := testing.Benchmark(fn)
		if r.N == 0 {
			t.Fatal("benchmark run failed")
		}
		return float64(r.T.Nanoseconds()) / float64(r.N)
	}
	plainNs := make([]float64, 0, runs)
	tracedNs := make([]float64, 0, runs)
	for i := 0; i < runs; i++ { // interleaved, so drift hits both sides alike
		plainNs = append(plainNs, nsOf(plain))
		tracedNs = append(tracedNs, nsOf(traced))
	}
	p50Plain := telemetry.ExactQuantile(plainNs, 0.50)
	p50Traced := telemetry.ExactQuantile(tracedNs, 0.50)
	overhead := p50Traced/p50Plain - 1
	t.Logf("traced %.1fms vs plain %.1fms: %+.2f%% overhead (budget 2%%, gate 5%%)",
		p50Traced/1e6, p50Plain/1e6, overhead*100)
	if overhead > 0.05 {
		t.Errorf("telemetry overhead %.2f%% exceeds the 5%% gate (budget is 2%%)", overhead*100)
	}
}
