package core

import (
	"math"
	"math/rand"
	"testing"

	"aod/internal/gen"
	"aod/internal/lattice"
)

type biOCKey struct {
	ctx  lattice.AttrSet
	a, b int
	desc bool
}

func biOCSet(r *Result) map[biOCKey]float64 {
	m := make(map[biOCKey]float64, len(r.OCs))
	for _, d := range r.OCs {
		m[biOCKey{d.Context, d.A, d.B, d.Descending}] = d.Error
	}
	return m
}

// Bidirectional discovery must match the brute-force reference exactly.
func TestBidirectionalDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(500))
	thresholds := []float64{0, 0.15, 0.35}
	iters := 60
	if testing.Short() {
		iters = 15
	}
	for iter := 0; iter < iters; iter++ {
		rows := 2 + rng.Intn(18)
		attrs := 2 + rng.Intn(3)
		tbl := randomTable(rng, rows, attrs, 2+rng.Intn(4))
		cfg := Config{
			Threshold:     thresholds[iter%len(thresholds)],
			Validator:     ValidatorOptimal,
			IncludeOFDs:   true,
			Bidirectional: true,
		}
		got, err := Discover(tbl, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ReferenceDiscover(tbl, cfg)
		if err != nil {
			t.Fatal(err)
		}
		g, w := biOCSet(got), biOCSet(want)
		if len(g) != len(w) {
			t.Fatalf("iter %d: %d OCs vs reference %d\ngot %v\nwant %v",
				iter, len(g), len(w), got.OCs, want.OCs)
		}
		for k, e := range w {
			ge, ok := g[k]
			if !ok {
				t.Fatalf("iter %d: missing OC %+v", iter, k)
			}
			if math.Abs(ge-e) > 1e-9 {
				t.Fatalf("iter %d: OC %+v error %g, want %g", iter, k, ge, e)
			}
		}
	}
}

// The planted descending pair age / birthYear (birthYear = 100 − age) is
// invisible to unidirectional discovery but found exactly by bidirectional
// discovery at the lowest level.
func TestBidirectionalFindsDescendingPlant(t *testing.T) {
	tbl := gen.NCVoter(gen.NCVoterConfig{Rows: 2000, Attrs: 10, Seed: 3})
	age := tbl.ColumnIndex("age")
	by := tbl.ColumnIndex("birthYear")
	if age < 0 || by < 0 {
		t.Fatal("generator missing age/birthYear")
	}
	uni, err := Discover(tbl, Config{Validator: ValidatorExact})
	if err != nil {
		t.Fatal(err)
	}
	for _, oc := range uni.OCs {
		if oc.Context.IsEmpty() && oc.A == min(age, by) && oc.B == max(age, by) && !oc.Descending {
			t.Fatalf("age ∼ birthYear should NOT hold ascending: %v", oc)
		}
	}
	bi, err := Discover(tbl, Config{Validator: ValidatorExact, Bidirectional: true})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, oc := range bi.OCs {
		if oc.Context.IsEmpty() && oc.A == min(age, by) && oc.B == max(age, by) && oc.Descending {
			found = true
			if oc.Error != 0 {
				t.Errorf("age ∼ birthYear↓ should hold exactly, e=%g", oc.Error)
			}
		}
	}
	if !found {
		t.Errorf("age ∼ birthYear↓ not discovered bidirectionally; OCs: %v", bi.OCs)
	}
}

// Bidirectional results must be a superset of unidirectional ones (the
// ascending candidates are unaffected by adding descending ones).
func TestBidirectionalSupersetOfUnidirectional(t *testing.T) {
	rng := rand.New(rand.NewSource(501))
	for iter := 0; iter < 20; iter++ {
		tbl := randomTable(rng, 5+rng.Intn(25), 4, 3)
		cfg := Config{Threshold: 0.2, Validator: ValidatorOptimal}
		uni, err := Discover(tbl, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Bidirectional = true
		bi, err := Discover(tbl, cfg)
		if err != nil {
			t.Fatal(err)
		}
		biSet := biOCSet(bi)
		for k := range biOCSet(uni) {
			if _, ok := biSet[k]; !ok {
				t.Fatalf("iter %d: ascending OC %+v lost under bidirectional discovery", iter, k)
			}
		}
	}
}

// Parallel bidirectional discovery matches sequential.
func TestBidirectionalParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(502))
	tbl := randomTable(rng, 60, 5, 3)
	cfg := Config{Threshold: 0.2, Validator: ValidatorOptimal, Bidirectional: true}
	seq, err := Discover(tbl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := DiscoverParallel(tbl, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(biOCSet(seq)) != len(biOCSet(par)) {
		t.Fatalf("parallel %d OCs vs sequential %d", len(par.OCs), len(seq.OCs))
	}
	for k := range biOCSet(seq) {
		if _, ok := biOCSet(par)[k]; !ok {
			t.Fatalf("parallel missing %+v", k)
		}
	}
}
