// Command aodbench regenerates the paper's experiments (Figures 2–5,
// Exp-1 … Exp-6) on the synthetic workloads, and snapshots the repo's named
// perf workloads as machine-readable JSON.
//
// Usage:
//
//	aodbench [-exp all|1|2|3|4|5|6] [-scale tiny|small|paper] [-seed N] [-out FILE]
//	aodbench -json BENCH_5.json [-seed N] [-baseline BENCH_4.json] [-tolerance 0.20]
//	         [-percentiles N]
//
// Examples:
//
//	aodbench -exp 3 -scale small
//	aodbench -json BENCH_5.json                        # next perf-trajectory snapshot
//	aodbench -json /tmp/now.json -baseline BENCH_4.json  # CI regression gate
//
// The -json mode measures a fixed set of named workloads (partition product,
// validators, end-to-end discovery) with the testing harness and writes
// ns/op, bytes/op and allocs/op per workload. Snapshots committed as
// BENCH_<n>.json at the repo root accumulate the perf trajectory across PRs.
// With -baseline the fresh snapshot is additionally diffed against a prior
// one: any named workload whose ns/op regressed by more than -tolerance
// (default 20%) fails the run with exit status 1 — the CI perf gate.
// With -percentiles N each workload is measured N times and the snapshot
// records p50/p99 ns/op across runs (nsPerOp becomes the median, so the
// -baseline gate still applies, just with less noise). Each repeat
// regenerates its datasets from a fresh seed drawn off -seed (run 0 keeps
// -seed itself, sharing inputs with single-run snapshots), so the spread
// covers input variation too — not just re-timings of one frozen dataset.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"aod/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, 1, 2, 3, 4, 5, 6")
	scaleFlag := flag.String("scale", "tiny", "workload scale: tiny, small, paper")
	seed := flag.Int64("seed", 42, "generator seed")
	out := flag.String("out", "", "also write results to this file")
	jsonOut := flag.String("json", "", "measure the named perf workloads and write machine-readable results to this file (BENCH_<n>.json)")
	baseline := flag.String("baseline", "", "with -json: prior BENCH_<n>.json to gate against; ns/op regressions past -tolerance fail with exit 1")
	tolerance := flag.Float64("tolerance", 0.20, "with -baseline: allowed fractional ns/op regression per workload")
	percentiles := flag.Int("percentiles", 0, "with -json: measure each workload N times and report p50/p99 ns/op across runs (0 = single measurement)")
	flag.Parse()

	if *baseline != "" && *jsonOut == "" {
		fmt.Fprintln(os.Stderr, "aodbench: -baseline requires -json")
		os.Exit(2)
	}
	if *percentiles > 0 && *jsonOut == "" {
		fmt.Fprintln(os.Stderr, "aodbench: -percentiles requires -json")
		os.Exit(2)
	}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("aodbench -json — seed=%d started=%s\n", *seed, time.Now().Format(time.RFC3339))
		start := time.Now()
		err = bench.RunJSONPercentiles(f, os.Stdout, *seed, *percentiles)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			os.Remove(*jsonOut) // don't leave a truncated snapshot behind
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s in %s\n", *jsonOut, time.Since(start).Round(time.Millisecond))
		if *baseline != "" {
			base, err := bench.LoadJSON(*baseline)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			cur, err := bench.LoadJSON(*jsonOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			regressions, notes := bench.CompareReports(base, cur, *tolerance)
			for _, n := range notes {
				fmt.Println("note:", n)
			}
			if len(regressions) > 0 {
				for _, r := range regressions {
					fmt.Fprintln(os.Stderr, "REGRESSION:", r)
				}
				os.Exit(1)
			}
			fmt.Printf("no ns/op regressions past %.0f%% vs %s\n", *tolerance*100, *baseline)
		}
		return
	}

	scale, err := bench.ParseScale(*scaleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	fmt.Fprintf(w, "aodbench — scale=%s seed=%d started=%s\n\n", scale, *seed, time.Now().Format(time.RFC3339))
	start := time.Now()
	switch *exp {
	case "all":
		bench.All(w, scale, *seed)
	case "1":
		bench.Exp1(w, scale, *seed)
	case "2":
		bench.Exp2(w, scale, *seed)
	case "3":
		bench.Exp3(w, scale, *seed)
	case "4":
		bench.Exp4(w, scale, *seed)
	case "5":
		bench.Exp5(w, scale, *seed)
	case "6":
		bench.Exp6(w, scale, *seed)
	default:
		fmt.Fprintf(os.Stderr, "aodbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	fmt.Fprintf(w, "total harness time: %s\n", time.Since(start).Round(time.Millisecond))
}
