package bench

import (
	"strings"
	"testing"
)

func TestCompareReports(t *testing.T) {
	base := JSONReport{Schema: JSONSchema, Results: []JSONResult{
		{Name: "a", NsPerOp: 100},
		{Name: "b", NsPerOp: 100},
		{Name: "gone", NsPerOp: 100},
		{Name: "zero", NsPerOp: 0},
	}}
	cur := JSONReport{Schema: JSONSchema, Results: []JSONResult{
		{Name: "a", NsPerOp: 115}, // +15%: within tolerance
		{Name: "b", NsPerOp: 130}, // +30%: regression
		{Name: "new", NsPerOp: 1}, // only in current: ignored
		{Name: "zero", NsPerOp: 50},
	}}
	regs, notes := CompareReports(base, cur, 0.20)
	if len(regs) != 1 || !strings.Contains(regs[0], "b:") {
		t.Errorf("regressions = %v, want exactly workload b", regs)
	}
	if len(notes) != 1 || !strings.Contains(notes[0], "gone") {
		t.Errorf("notes = %v, want the missing-workload note", notes)
	}
	if regs, _ := CompareReports(base, cur, 0.35); len(regs) != 0 {
		t.Errorf("at 35%% tolerance want no regressions, got %v", regs)
	}
}

func TestCompareReportsExactBoundary(t *testing.T) {
	base := JSONReport{Schema: JSONSchema, Results: []JSONResult{{Name: "a", NsPerOp: 100}}}
	cur := JSONReport{Schema: JSONSchema, Results: []JSONResult{{Name: "a", NsPerOp: 120}}}
	// Exactly +20% is within a 0.20 tolerance (fail only past it).
	if regs, _ := CompareReports(base, cur, 0.20); len(regs) != 0 {
		t.Errorf("+20%% at 0.20 tolerance must pass, got %v", regs)
	}
}
