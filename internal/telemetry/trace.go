package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SpanID identifies one span within a trace. IDs are allocated sequentially
// per trace, so they double as creation order.
type SpanID uint64

// Span is one recorded stage of a job. Offsets are measured from the trace's
// start on the monotonic clock, so spans within one process never go
// backwards; spans imported from another process (AddRemote) are re-based
// onto this trace's clock at the moment of import and are accurate up to the
// RPC's network skew (documented where they are attached).
type Span struct {
	ID     SpanID `json:"id"`
	Parent SpanID `json:"parent,omitempty"` // 0 = root
	Name   string `json:"name"`
	// Label carries one free-form attribute rendered next to the name
	// ("level 3", "worker 127.0.0.1:7001", ...).
	Label string `json:"label,omitempty"`
	// Start and Duration are offsets/lengths in nanoseconds from trace start.
	Start    time.Duration `json:"startNs"`
	Duration time.Duration `json:"durationNs"`
	// Attrs holds numeric facts about the stage (task counts, cache hits).
	Attrs map[string]int64 `json:"attrs,omitempty"`
	// Remote marks spans imported from another process.
	Remote bool `json:"remote,omitempty"`
}

// Trace collects the spans of one job. All methods are safe for concurrent
// use, and all methods are no-ops on a nil receiver — code paths thread a
// *Trace unconditionally and pay one nil check when tracing is off.
type Trace struct {
	id    string
	began time.Time // monotonic anchor

	mu    sync.Mutex
	spans []Span
	next  atomic.Uint64
}

// NewTrace starts a trace. id is the externally visible trace identifier
// (the service uses the job ID).
func NewTrace(id string) *Trace {
	return &Trace{id: id, began: time.Now()}
}

// ID returns the trace identifier ("" on nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// now returns the current offset from trace start.
func (t *Trace) now() time.Duration { return time.Since(t.began) }

// ActiveSpan is a span that has started but not finished. End it exactly
// once; Attr/SetLabel may be called until then.
type ActiveSpan struct {
	t      *Trace
	id     SpanID
	parent SpanID
	start  time.Duration
	name   string

	mu    sync.Mutex
	label string
	attrs map[string]int64
	done  bool
}

// Start opens a span under parent (0 for a root span). Nil-safe: on a nil
// trace it returns nil, and every ActiveSpan method is nil-safe too.
func (t *Trace) Start(parent SpanID, name string) *ActiveSpan {
	if t == nil {
		return nil
	}
	return &ActiveSpan{
		t:      t,
		id:     SpanID(t.next.Add(1)),
		parent: parent,
		start:  t.now(),
		name:   name,
	}
}

// StartUnder opens a span with the parent taken from an enclosing
// ActiveSpan (nil parent = root).
func (t *Trace) StartUnder(parent *ActiveSpan, name string) *ActiveSpan {
	return t.Start(parent.ID(), name)
}

// ID returns the span's ID (0 on nil).
func (s *ActiveSpan) ID() SpanID {
	if s == nil {
		return 0
	}
	return s.id
}

// SetLabel sets the span's display label.
func (s *ActiveSpan) SetLabel(format string, args ...any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.label = fmt.Sprintf(format, args...)
	s.mu.Unlock()
}

// Attr records one numeric attribute (last write wins).
func (s *ActiveSpan) Attr(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]int64, 4)
	}
	s.attrs[key] = v
	s.mu.Unlock()
}

// End finishes the span and commits it to the trace. Safe to call more than
// once (only the first takes effect) and on nil.
func (s *ActiveSpan) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	span := Span{
		ID:       s.id,
		Parent:   s.parent,
		Name:     s.name,
		Label:    s.label,
		Start:    s.start,
		Duration: s.t.now() - s.start,
		Attrs:    s.attrs,
	}
	s.mu.Unlock()
	s.t.commit(span)
}

func (t *Trace) commit(span Span) {
	t.mu.Lock()
	t.spans = append(t.spans, span)
	t.mu.Unlock()
}

// Event records an instantaneous (zero-duration) span under parent.
func (t *Trace) Event(parent SpanID, name, label string) {
	if t == nil {
		return
	}
	t.commit(Span{
		ID:     SpanID(t.next.Add(1)),
		Parent: parent,
		Name:   name,
		Label:  label,
		Start:  t.now(),
	})
}

// WireSpan is a span serialized for cross-process stitching. Offsets are
// relative to the REMOTE process's own clock zero (the moment it began
// serving the request batch), so the importer re-bases them under a local
// anchor span.
type WireSpan struct {
	Name     string           `json:"name"`
	Label    string           `json:"label,omitempty"`
	StartNs  int64            `json:"startNs"`
	DurNs    int64            `json:"durNs"`
	Attrs    map[string]int64 `json:"attrs,omitempty"`
	Children []WireSpan       `json:"children,omitempty"`
}

// AddRemote imports wire spans under the given local parent span, re-basing
// their offsets so the earliest remote span starts where the parent starts.
// Clock skew between processes is absorbed by the re-basing: relative
// timings within the remote batch are exact, the absolute alignment is
// approximate (bounded by the RPC round trip the parent span measures).
func (t *Trace) AddRemote(parent SpanID, spans []WireSpan) {
	if t == nil || len(spans) == 0 {
		return
	}
	base := t.baseOf(parent)
	var minStart int64 = spans[0].StartNs
	for _, ws := range spans {
		if ws.StartNs < minStart {
			minStart = ws.StartNs
		}
	}
	for _, ws := range spans {
		t.addRemoteOne(parent, base, minStart, ws)
	}
}

// baseOf returns the local start offset of span id (trace-now if unknown).
func (t *Trace) baseOf(id SpanID) time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.spans {
		if t.spans[i].ID == id {
			return t.spans[i].Start
		}
	}
	return t.now()
}

func (t *Trace) addRemoteOne(parent SpanID, base time.Duration, remoteZero int64, ws WireSpan) {
	id := SpanID(t.next.Add(1))
	t.commit(Span{
		ID:       id,
		Parent:   parent,
		Name:     ws.Name,
		Label:    ws.Label,
		Start:    base + time.Duration(ws.StartNs-remoteZero),
		Duration: time.Duration(ws.DurNs),
		Attrs:    ws.Attrs,
		Remote:   true,
	})
	for _, child := range ws.Children {
		t.addRemoteOne(id, base, remoteZero, child)
	}
}

// Spans returns a copy of the committed spans in start order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// TreeNode is a span with its children resolved, for JSON trace surfaces.
type TreeNode struct {
	Span
	Children []*TreeNode `json:"children,omitempty"`
}

// TraceJSON is the wire shape of GET /jobs/{id}/trace.
type TraceJSON struct {
	TraceID string      `json:"traceId"`
	Spans   []*TreeNode `json:"spans"` // roots
}

// Tree assembles the committed spans into root-level trees. Orphans (parent
// never committed, e.g. a span still open) are promoted to roots so the
// output is always complete.
func (t *Trace) Tree() TraceJSON {
	out := TraceJSON{TraceID: t.ID()}
	spans := t.Spans()
	nodes := make(map[SpanID]*TreeNode, len(spans))
	for i := range spans {
		nodes[spans[i].ID] = &TreeNode{Span: spans[i]}
	}
	for _, n := range nodes {
		if n.Parent != 0 {
			if p, ok := nodes[n.Parent]; ok && p != n {
				p.Children = append(p.Children, n)
				continue
			}
		}
	}
	for i := range spans {
		n := nodes[spans[i].ID]
		if n.Parent == 0 || nodes[n.Parent] == nil {
			out.Spans = append(out.Spans, n)
		}
	}
	for _, n := range nodes {
		sortTree(n)
	}
	return out
}

func sortTree(n *TreeNode) {
	sort.SliceStable(n.Children, func(i, j int) bool {
		if n.Children[i].Start != n.Children[j].Start {
			return n.Children[i].Start < n.Children[j].Start
		}
		return n.Children[i].ID < n.Children[j].ID
	})
}

// MarshalTree is Tree() serialized, the body of the trace endpoint.
func (t *Trace) MarshalTree() ([]byte, error) {
	return json.MarshalIndent(t.Tree(), "", "  ")
}

// WriteText renders the trace as an indented human-readable stage breakdown
// (the aodiscover -trace surface).
func (t *Trace) WriteText(w io.Writer) {
	if t == nil {
		return
	}
	tree := t.Tree()
	fmt.Fprintf(w, "trace %s\n", tree.TraceID)
	for _, n := range tree.Spans {
		writeTextNode(w, n, 0)
	}
}

func writeTextNode(w io.Writer, n *TreeNode, depth int) {
	indent := strings.Repeat("  ", depth)
	name := n.Name
	if n.Label != "" {
		name += " [" + n.Label + "]"
	}
	marker := ""
	if n.Remote {
		marker = " (remote)"
	}
	fmt.Fprintf(w, "%s%-*s %10s  @%s%s%s\n",
		indent, 32-2*depth, name,
		fmtDur(n.Duration), fmtDur(n.Start), fmtAttrs(n.Attrs), marker)
	for _, c := range n.Children {
		writeTextNode(w, c, depth+1)
	}
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/1e6)
	case d >= time.Microsecond:
		return fmt.Sprintf("%.1fµs", float64(d)/1e3)
	default:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	}
}

func fmtAttrs(attrs map[string]int64) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, attrs[k])
	}
	return "  {" + strings.Join(parts, " ") + "}"
}

// Context propagation: one key carries (trace, current parent span).

type ctxKey struct{}

type ctxVal struct {
	trace  *Trace
	parent SpanID
}

// NewContext returns ctx carrying the trace and parent span. A nil trace
// returns ctx unchanged, keeping FromContext's zero path cheap.
func NewContext(ctx context.Context, t *Trace, parent SpanID) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, ctxVal{trace: t, parent: parent})
}

// FromContext extracts the trace and parent span (nil, 0 when absent).
func FromContext(ctx context.Context) (*Trace, SpanID) {
	if v, ok := ctx.Value(ctxKey{}).(ctxVal); ok {
		return v.trace, v.parent
	}
	return nil, 0
}
