package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

const employeesCSV = `pos,exp,sal
secr,2,45
secr,3,50
secr,4,55
mngr,4,70
mngr,5,75
mngr,6,80
direc,6,100
direc,7,110
direc,8,120
`

func doJSON(t *testing.T, client *http.Client, method, url string, body io.Reader, out any) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decoding %s %s response %q: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode, raw
}

func pollJob(t *testing.T, client *http.Client, base, id string, want JobState) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var v JobView
		code, raw := doJSON(t, client, http.MethodGet, base+"/jobs/"+id, nil, &v)
		if code != http.StatusOK {
			t.Fatalf("GET /jobs/%s: status %d: %s", id, code, raw)
		}
		if v.State == want {
			return v
		}
		if v.State.Terminal() {
			t.Fatalf("job %s reached %s (error %q), want %s", id, v.State, v.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return JobView{}
}

// TestServerEndToEnd drives the full service lifecycle over HTTP on an
// ephemeral port: upload a CSV, submit two identical jobs (the second must
// be a cache hit, visible in /stats), then cancel a long-running job and
// observe the canceled state with the worker freed.
func TestServerEndToEnd(t *testing.T) {
	svc := New(Config{Workers: 2, QueueDepth: 16})
	defer svc.Close()
	srv := httptest.NewServer(NewHandler(svc, HandlerConfig{}))
	defer srv.Close()
	client := srv.Client()

	// Liveness (the body also carries queue observations for routers).
	var health HealthView
	if code, _ := doJSON(t, client, http.MethodGet, srv.URL+"/healthz", nil, &health); code != http.StatusOK {
		t.Fatalf("/healthz status %d", code)
	}
	if health.Status != "ok" {
		t.Fatalf("/healthz = %+v", health)
	}

	// Upload.
	var info DatasetInfo
	code, raw := doJSON(t, client, http.MethodPost, srv.URL+"/datasets?name=employees",
		strings.NewReader(employeesCSV), &info)
	if code != http.StatusCreated {
		t.Fatalf("POST /datasets status %d: %s", code, raw)
	}
	if info.Rows != 9 || info.Cols != 3 {
		t.Fatalf("dataset info = %+v", info)
	}

	// Idempotent re-upload deduplicates.
	var dup DatasetInfo
	if code, _ := doJSON(t, client, http.MethodPost, srv.URL+"/datasets",
		strings.NewReader(employeesCSV), &dup); code != http.StatusOK {
		t.Fatalf("duplicate upload status %d, want 200", code)
	}
	if dup.ID != info.ID {
		t.Fatalf("duplicate upload id %q != %q", dup.ID, info.ID)
	}

	// Two identical jobs: the first validates, the second is a cache hit.
	jobBody := fmt.Sprintf(`{"datasetId": %q, "options": {"threshold": 0.12, "includeOFDs": true}}`, info.ID)
	var j1, j2 JobView
	if code, raw := doJSON(t, client, http.MethodPost, srv.URL+"/jobs",
		strings.NewReader(jobBody), &j1); code != http.StatusAccepted {
		t.Fatalf("POST /jobs status %d: %s", code, raw)
	}
	done1 := pollJob(t, client, srv.URL, j1.ID, JobDone)
	if done1.Report == nil || len(done1.Report.OCs) == 0 {
		t.Fatalf("job 1 report missing or empty: %+v", done1)
	}
	found := false
	for _, oc := range done1.Report.OCs {
		if oc.A == "exp" && oc.B == "sal" {
			found = true
		}
	}
	if !found {
		t.Errorf("expected {pos}: exp ∼ sal among OCs: %+v", done1.Report.OCs)
	}

	if code, raw := doJSON(t, client, http.MethodPost, srv.URL+"/jobs",
		strings.NewReader(jobBody), &j2); code != http.StatusAccepted {
		t.Fatalf("POST /jobs (2) status %d: %s", code, raw)
	}
	done2 := pollJob(t, client, srv.URL, j2.ID, JobDone)
	if !done2.CacheHit {
		t.Error("second identical job should be a cache hit")
	}
	var st Stats
	if code, _ := doJSON(t, client, http.MethodGet, srv.URL+"/stats", nil, &st); code != http.StatusOK {
		t.Fatalf("/stats status %d", code)
	}
	if st.CacheHits < 1 || st.ValidationRuns != 1 {
		t.Errorf("stats after identical jobs: hits=%d validationRuns=%d, want >=1 and 1",
			st.CacheHits, st.ValidationRuns)
	}

	// Cancel a long-running job.
	var buf bytes.Buffer
	if err := slowDataset(t, 6000, 7).WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	var slow DatasetInfo
	if code, raw := doJSON(t, client, http.MethodPost, srv.URL+"/datasets?name=slow", &buf, &slow); code != http.StatusCreated {
		t.Fatalf("POST /datasets (slow) status %d: %s", code, raw)
	}
	slowBody := fmt.Sprintf(`{"datasetId": %q, "options": {"threshold": 0.4, "algorithm": "iterative", "includeOFDs": true}}`, slow.ID)
	var j3 JobView
	if code, raw := doJSON(t, client, http.MethodPost, srv.URL+"/jobs",
		strings.NewReader(slowBody), &j3); code != http.StatusAccepted {
		t.Fatalf("POST /jobs (slow) status %d: %s", code, raw)
	}
	pollJob(t, client, srv.URL, j3.ID, JobRunning)
	var canceled JobView
	if code, raw := doJSON(t, client, http.MethodDelete, srv.URL+"/jobs/"+j3.ID, nil, &canceled); code != http.StatusOK {
		t.Fatalf("DELETE /jobs/%s status %d: %s", j3.ID, code, raw)
	}
	got := pollJob(t, client, srv.URL, j3.ID, JobCanceled)
	if got.Report != nil {
		t.Error("canceled job should not carry a report")
	}
	if code, _ := doJSON(t, client, http.MethodGet, srv.URL+"/stats", nil, &st); code != http.StatusOK {
		t.Fatalf("/stats status %d", code)
	}
	if st.JobsCanceled != 1 {
		t.Errorf("jobs canceled = %d, want 1", st.JobsCanceled)
	}
	// The worker must be free again.
	var j4 JobView
	if code, raw := doJSON(t, client, http.MethodPost, srv.URL+"/jobs",
		strings.NewReader(jobBody), &j4); code != http.StatusAccepted {
		t.Fatalf("POST /jobs (4) status %d: %s", code, raw)
	}
	pollJob(t, client, srv.URL, j4.ID, JobDone)

	// Canceling the finished job conflicts.
	if code, _ := doJSON(t, client, http.MethodDelete, srv.URL+"/jobs/"+j4.ID, nil, nil); code != http.StatusConflict {
		t.Errorf("DELETE finished job status %d, want 409", code)
	}

	// Listings.
	var dss []DatasetInfo
	if code, _ := doJSON(t, client, http.MethodGet, srv.URL+"/datasets", nil, &dss); code != http.StatusOK || len(dss) != 2 {
		t.Errorf("GET /datasets: status %d, %d records (want 2)", code, len(dss))
	}
	var jobs []JobView
	if code, _ := doJSON(t, client, http.MethodGet, srv.URL+"/jobs", nil, &jobs); code != http.StatusOK || len(jobs) != 4 {
		t.Errorf("GET /jobs: status %d, %d jobs (want 4)", code, len(jobs))
	}
	for _, j := range jobs {
		if j.Report != nil {
			t.Error("job listings must not attach reports")
		}
	}
}

// TestServerErrorPaths exercises the API's failure statuses.
func TestServerErrorPaths(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()
	srv := httptest.NewServer(NewHandler(svc, HandlerConfig{MaxUploadBytes: 128}))
	defer srv.Close()
	client := srv.Client()

	if code, _ := doJSON(t, client, http.MethodGet, srv.URL+"/jobs/nope", nil, nil); code != http.StatusNotFound {
		t.Errorf("GET unknown job: status %d, want 404", code)
	}
	if code, _ := doJSON(t, client, http.MethodGet, srv.URL+"/datasets/nope", nil, nil); code != http.StatusNotFound {
		t.Errorf("GET unknown dataset: status %d, want 404", code)
	}
	if code, _ := doJSON(t, client, http.MethodDelete, srv.URL+"/jobs/nope", nil, nil); code != http.StatusNotFound {
		t.Errorf("DELETE unknown job: status %d, want 404", code)
	}
	if code, _ := doJSON(t, client, http.MethodPost, srv.URL+"/jobs",
		strings.NewReader(`{"options": {}}`), nil); code != http.StatusBadRequest {
		t.Errorf("POST /jobs without datasetId: status %d, want 400", code)
	}
	if code, _ := doJSON(t, client, http.MethodPost, srv.URL+"/jobs",
		strings.NewReader(`{"datasetId": "missing"}`), nil); code != http.StatusNotFound {
		t.Errorf("POST /jobs unknown dataset: status %d, want 404", code)
	}
	if code, _ := doJSON(t, client, http.MethodPost, srv.URL+"/jobs",
		strings.NewReader(`{"datasetId": "x", "options": {"algorithm": "quantum"}}`), nil); code == http.StatusAccepted {
		t.Error("POST /jobs with bogus algorithm should not be accepted")
	}
	if code, _ := doJSON(t, client, http.MethodPost, srv.URL+"/datasets",
		strings.NewReader("not,a\nvalid"), nil); code != http.StatusBadRequest {
		t.Errorf("POST /datasets malformed CSV: status %d, want 400", code)
	}
	big := "a,b\n" + strings.Repeat("1,2\n", 200)
	if code, _ := doJSON(t, client, http.MethodPost, srv.URL+"/datasets",
		strings.NewReader(big), nil); code != http.StatusRequestEntityTooLarge {
		t.Errorf("POST /datasets oversized: status %d, want 413", code)
	}
}
