// Package dataset provides the relational substrate for order-dependency
// discovery: typed tables whose columns are rank-encoded in an
// order-preserving way, so that every downstream algorithm (partitioning,
// swap detection, LNDS-based validation) can operate on dense int32 ranks
// instead of raw values.
//
// A Table is immutable after construction. Columns are built from typed Go
// slices or parsed from CSV (see csv.go); in both cases the raw values of a
// column are mapped to ranks 0..d-1 such that rank(u) < rank(v) iff u < v
// under the column's natural order (numeric for ints/floats, lexicographic
// for strings). Ties in raw values map to equal ranks, which preserves both
// the equality structure (needed for partitions and splits) and the order
// structure (needed for swaps).
package dataset

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
)

// Kind identifies the logical type of a column.
type Kind int

const (
	// KindInt is a 64-bit signed integer column.
	KindInt Kind = iota
	// KindFloat is a float64 column. NaNs order before all other values.
	KindFloat
	// KindString is a string column ordered lexicographically (byte-wise).
	KindString
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// KindFromString parses a kind name produced by Kind.String.
func KindFromString(s string) (Kind, error) {
	switch s {
	case "int":
		return KindInt, nil
	case "float":
		return KindFloat, nil
	case "string":
		return KindString, nil
	default:
		return 0, fmt.Errorf("dataset: unknown column type %q (want int, float, or string)", s)
	}
}

// Column is a single rank-encoded attribute of a Table.
//
// Ranks are dense: they cover exactly 0..NumDistinct-1. The original values
// are retained (in rank order) so results can be rendered for humans; they
// are not consulted by any algorithm.
type Column struct {
	name     string
	kind     Kind
	ranks    []int32
	distinct int
	// valueAt renders the raw value for a given rank (for display only).
	intVals    []int64
	floatVals  []float64
	stringVals []string
	// reversed caches the descending view (see Reversed). It is the only
	// mutable word in a Column, and it is atomic so that concurrent readers
	// sharing one table (e.g. parallel discovery jobs over a registered
	// dataset) may race to initialize it safely.
	reversed atomic.Pointer[Column]
}

// Name returns the column name.
func (c *Column) Name() string { return c.name }

// Kind returns the column's logical type.
func (c *Column) Kind() Kind { return c.kind }

// Ranks returns the order-preserving rank encoding of the column. The caller
// must not modify the returned slice.
func (c *Column) Ranks() []int32 { return c.ranks }

// Rank returns the rank of the value in the given row.
func (c *Column) Rank(row int) int32 { return c.ranks[row] }

// NumDistinct returns the number of distinct values in the column.
func (c *Column) NumDistinct() int { return c.distinct }

// Len returns the number of rows.
func (c *Column) Len() int { return len(c.ranks) }

// ValueString renders the raw value at the given row for display.
func (c *Column) ValueString(row int) string {
	return c.rankValueString(c.ranks[row])
}

func (c *Column) rankValueString(r int32) string {
	switch c.kind {
	case KindInt:
		return fmt.Sprintf("%d", c.intVals[r])
	case KindFloat:
		return fmt.Sprintf("%g", c.floatVals[r])
	default:
		return c.stringVals[r]
	}
}

// Reversed returns (and caches) the descending view of the column: the same
// values with ranks flipped (rank' = NumDistinct−1−rank), so that ascending
// order of the view is descending order of the original. It is the device
// behind bidirectional order compatibilities (after Szlichta et al., VLDBJ
// 2018): every validator works unchanged on the reversed view. The view's
// name carries a "↓" suffix for display.
//
// Reversed is safe for concurrent use: losers of the initialization race
// discard their build and adopt the published view, so double reversal is
// always pointer-identical to the original.
func (c *Column) Reversed() *Column {
	if r := c.reversed.Load(); r != nil {
		return r
	}
	d := int32(c.distinct)
	ranks := make([]int32, len(c.ranks))
	for i, r := range c.ranks {
		ranks[i] = d - 1 - r
	}
	rev := &Column{
		name:     c.name + "↓",
		kind:     c.kind,
		ranks:    ranks,
		distinct: c.distinct,
	}
	switch c.kind {
	case KindInt:
		rev.intVals = reverseCopy(c.intVals)
	case KindFloat:
		rev.floatVals = reverseCopy(c.floatVals)
	default:
		rev.stringVals = reverseCopy(c.stringVals)
	}
	rev.reversed.Store(c) // double reversal returns the original
	if !c.reversed.CompareAndSwap(nil, rev) {
		return c.reversed.Load()
	}
	return rev
}

func reverseCopy[T any](in []T) []T {
	out := make([]T, len(in))
	for i, v := range in {
		out[len(in)-1-i] = v
	}
	return out
}

// Table is an immutable relational instance: a list of equal-length columns.
type Table struct {
	cols   []*Column
	byName map[string]int
	rows   int
}

// NumRows returns the number of tuples in the table.
func (t *Table) NumRows() int { return t.rows }

// NumCols returns the number of attributes in the table.
func (t *Table) NumCols() int { return len(t.cols) }

// Column returns the i-th column.
func (t *Table) Column(i int) *Column { return t.cols[i] }

// ColumnIndex returns the index of the named column, or -1 if absent.
func (t *Table) ColumnIndex(name string) int {
	if i, ok := t.byName[name]; ok {
		return i
	}
	return -1
}

// ColumnNames returns the names of all columns in order.
func (t *Table) ColumnNames() []string {
	names := make([]string, len(t.cols))
	for i, c := range t.cols {
		names[i] = c.name
	}
	return names
}

// ColumnTypes returns the kind names ("int", "float", "string") of all
// columns in order. Feeding them back through CSVOptions.Types makes a
// WriteCSV → ReadCSV round trip reconstruct the table exactly (equal
// Fingerprint), where type re-inference could diverge — e.g. a float column
// whose values all happen to be integral would re-infer as int.
func (t *Table) ColumnTypes() []string {
	types := make([]string, len(t.cols))
	for i, c := range t.cols {
		types[i] = c.kind.String()
	}
	return types
}

// Freeze eagerly materializes every column's lazily-cached descending view,
// after which no code path writes to the table or its columns again — the
// hard immutability guarantee a registry needs before sharing one *Table
// across concurrent discovery jobs. (Reversed is independently race-safe via
// its atomic cache; Freeze additionally removes the allocation from the
// discovery hot path and future-proofs against non-atomic lazy state.)
// It returns the table for chaining.
func (t *Table) Freeze() *Table {
	for _, c := range t.cols {
		c.Reversed()
	}
	return t
}

// Select returns a new Table containing only the named columns, in the given
// order. Column data is shared, not copied.
func (t *Table) Select(names ...string) (*Table, error) {
	cols := make([]*Column, 0, len(names))
	for _, n := range names {
		i := t.ColumnIndex(n)
		if i < 0 {
			return nil, fmt.Errorf("dataset: no column %q", n)
		}
		cols = append(cols, t.cols[i])
	}
	return fromColumns(cols)
}

// SelectIndexes returns a new Table with the columns at the given indexes.
// Column data is shared, not copied.
func (t *Table) SelectIndexes(idx ...int) (*Table, error) {
	cols := make([]*Column, 0, len(idx))
	for _, i := range idx {
		if i < 0 || i >= len(t.cols) {
			return nil, fmt.Errorf("dataset: column index %d out of range [0,%d)", i, len(t.cols))
		}
		cols = append(cols, t.cols[i])
	}
	return fromColumns(cols)
}

// Head returns a new Table restricted to the first n rows (or all rows if
// n >= NumRows). Ranks are re-encoded densely for the prefix.
func (t *Table) Head(n int) *Table {
	if n >= t.rows {
		return t
	}
	if n < 0 {
		n = 0
	}
	b := NewBuilder()
	for _, c := range t.cols {
		sub := reencode(c.ranks[:n])
		nc := &Column{name: c.name, kind: c.kind, ranks: sub.ranks, distinct: sub.distinct}
		// Remap display values for the surviving ranks.
		switch c.kind {
		case KindInt:
			nc.intVals = make([]int64, sub.distinct)
			for old, neu := range sub.rankMap {
				if neu >= 0 {
					nc.intVals[neu] = c.intVals[old]
				}
			}
		case KindFloat:
			nc.floatVals = make([]float64, sub.distinct)
			for old, neu := range sub.rankMap {
				if neu >= 0 {
					nc.floatVals[neu] = c.floatVals[old]
				}
			}
		default:
			nc.stringVals = make([]string, sub.distinct)
			for old, neu := range sub.rankMap {
				if neu >= 0 {
					nc.stringVals[neu] = c.stringVals[old]
				}
			}
		}
		b.cols = append(b.cols, nc)
	}
	tt, err := b.Build()
	if err != nil {
		// All columns share the same prefix length; Build cannot fail.
		panic("dataset: Head: " + err.Error())
	}
	return tt
}

type reencoded struct {
	ranks    []int32
	distinct int
	rankMap  []int32 // old rank -> new rank, or -1 if unused
}

// reencode densifies a rank slice that may use only a subset of its rank
// space, preserving relative order.
func reencode(ranks []int32) reencoded {
	maxRank := int32(-1)
	for _, r := range ranks {
		if r > maxRank {
			maxRank = r
		}
	}
	used := make([]bool, maxRank+1)
	for _, r := range ranks {
		used[r] = true
	}
	rankMap := make([]int32, maxRank+1)
	next := int32(0)
	for r := range used {
		if used[r] {
			rankMap[r] = next
			next++
		} else {
			rankMap[r] = -1
		}
	}
	out := make([]int32, len(ranks))
	for i, r := range ranks {
		out[i] = rankMap[r]
	}
	return reencoded{ranks: out, distinct: int(next), rankMap: rankMap}
}

func fromColumns(cols []*Column) (*Table, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("dataset: table needs at least one column")
	}
	rows := cols[0].Len()
	byName := make(map[string]int, len(cols))
	for i, c := range cols {
		if c.Len() != rows {
			return nil, fmt.Errorf("dataset: column %q has %d rows, want %d", c.name, c.Len(), rows)
		}
		if _, dup := byName[c.name]; dup {
			return nil, fmt.Errorf("dataset: duplicate column name %q", c.name)
		}
		byName[c.name] = i
	}
	return &Table{cols: cols, byName: byName, rows: rows}, nil
}

// String renders a short schema summary such as
// "Table(9 rows: pos:string, exp:int, sal:int)".
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table(%d rows:", t.rows)
	for i, c := range t.cols {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, " %s:%s", c.name, c.kind)
	}
	sb.WriteByte(')')
	return sb.String()
}

// Builder accumulates columns and assembles a Table.
type Builder struct {
	cols []*Column
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder { return &Builder{} }

// AddInts appends an integer column.
func (b *Builder) AddInts(name string, vals []int64) *Builder {
	b.cols = append(b.cols, buildIntColumn(name, vals))
	return b
}

// AddFloats appends a float column. NaN values sort before all others.
func (b *Builder) AddFloats(name string, vals []float64) *Builder {
	b.cols = append(b.cols, buildFloatColumn(name, vals))
	return b
}

// AddStrings appends a string column ordered lexicographically.
func (b *Builder) AddStrings(name string, vals []string) *Builder {
	b.cols = append(b.cols, buildStringColumn(name, vals))
	return b
}

// Len returns the number of columns added so far.
func (b *Builder) Len() int { return len(b.cols) }

// Build assembles the Table, verifying all columns have equal length.
func (b *Builder) Build() (*Table, error) {
	return fromColumns(b.cols)
}

func buildIntColumn(name string, vals []int64) *Column {
	distinctIdx := make(map[int64]int32, len(vals)/4+1)
	var sorted []int64
	for _, v := range vals {
		if _, ok := distinctIdx[v]; !ok {
			distinctIdx[v] = 0
			sorted = append(sorted, v)
		}
	}
	sortInt64s(sorted)
	for r, v := range sorted {
		distinctIdx[v] = int32(r)
	}
	ranks := make([]int32, len(vals))
	for i, v := range vals {
		ranks[i] = distinctIdx[v]
	}
	return &Column{name: name, kind: KindInt, ranks: ranks, distinct: len(sorted), intVals: sorted}
}

func buildFloatColumn(name string, vals []float64) *Column {
	// NaN cannot be a map key usefully (NaN != NaN), so normalize all NaNs
	// to a single sentinel ordering before every other value.
	distinctIdx := make(map[float64]int32, len(vals)/4+1)
	var sorted []float64
	hasNaN := false
	for _, v := range vals {
		if math.IsNaN(v) {
			hasNaN = true
			continue
		}
		if _, ok := distinctIdx[v]; !ok {
			distinctIdx[v] = 0
			sorted = append(sorted, v)
		}
	}
	sortFloat64s(sorted)
	if hasNaN {
		sorted = append([]float64{math.NaN()}, sorted...)
	}
	for r, v := range sorted {
		if !math.IsNaN(v) {
			distinctIdx[v] = int32(r)
		}
	}
	ranks := make([]int32, len(vals))
	for i, v := range vals {
		if math.IsNaN(v) {
			ranks[i] = 0
		} else {
			ranks[i] = distinctIdx[v]
		}
	}
	return &Column{name: name, kind: KindFloat, ranks: ranks, distinct: len(sorted), floatVals: sorted}
}

func buildStringColumn(name string, vals []string) *Column {
	distinctIdx := make(map[string]int32, len(vals)/4+1)
	var sorted []string
	for _, v := range vals {
		if _, ok := distinctIdx[v]; !ok {
			distinctIdx[v] = 0
			sorted = append(sorted, v)
		}
	}
	sort.Strings(sorted)
	for r, v := range sorted {
		distinctIdx[v] = int32(r)
	}
	ranks := make([]int32, len(vals))
	for i, v := range vals {
		ranks[i] = distinctIdx[v]
	}
	return &Column{name: name, kind: KindString, ranks: ranks, distinct: len(sorted), stringVals: sorted}
}
