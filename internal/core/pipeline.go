package core

import (
	"context"
	"time"

	"aod/internal/dataset"
	"aod/internal/lattice"
	"aod/internal/partition"
	"aod/internal/telemetry"
	"aod/internal/validate"
)

// Snapshot is the immutable picture of a running discovery delivered to a
// ProgressSink at each level boundary. The level-wise framework produces
// results level by level, and the set-based traversal makes every completed
// level a coherent result prefix: each snapshot's OCs/OFDs are exactly the
// minimal dependencies of the completed levels, never a torn mid-level view.
// All slices are copies — a sink may retain a Snapshot indefinitely.
type Snapshot struct {
	// Level is the lattice level that just completed.
	Level int
	// MaxLevel is the last level this run can reach (numAttrs, or the
	// Config.MaxLevel bound).
	MaxLevel int
	// Nodes is the number of lattice nodes in the completed level.
	Nodes int
	// Candidates is the number of candidates validated at this level — the
	// quantity whose reaching zero ends the traversal early.
	Candidates int
	// OCs and OFDs are the dependencies discovered so far, in discovery
	// order (copies; safe to retain and mutate).
	OCs  []OC
	OFDs []OFD
	// Stats is a deep copy of the run statistics so far.
	Stats Stats
	// NodesRemaining is the number of lattice nodes in the levels not yet
	// processed (an upper bound: early termination can skip them all).
	NodesRemaining int64
	// EstimatedRemaining estimates the remaining work as
	// rows × attrs × remaining levels — the cost currency the service's
	// size-aware job scheduler trades in.
	EstimatedRemaining int64
	// LevelTime is the wall-clock time the just-completed level took
	// (planning + validation + merging); LevelValidation and LevelPartition
	// are the slices of it spent inside validators and materializing
	// partitions — this level's deltas of the cumulative Stats counters.
	LevelTime       time.Duration
	LevelValidation time.Duration
	LevelPartition  time.Duration
	// Final marks the run's last snapshot: the traversal is about to return
	// (lattice exhausted, early-stopped, level bound reached, or aborted by
	// timeout/cancellation).
	Final bool
}

// ProgressSink receives one Snapshot per completed lattice level, called
// synchronously from the traversal (a slow sink slows discovery — copy and
// hand off if that matters). A nil sink disables progress reporting at zero
// cost.
type ProgressSink func(Snapshot)

// Executor is the pluggable validation stage of the Pipeline: it owns how the
// candidates of one lattice level are processed (serially, across a worker
// pool, or across slices of the level on remote shards). Implementations
// share the engine's node-processing code (buildTask/execTask/applyTask);
// only the schedule differs, so every executor produces identical results and
// identical (non-timing) stats. Constructors: Serial, Pool, Sharded.
type Executor interface {
	// prepare builds the per-attribute partitions and any executor-owned
	// state before traversal. It returns false when the run was aborted
	// (deadline/cancellation), with the abort recorded in t's stats.
	prepare(t *traversal) bool
	// runLevel validates the candidates of every node in cur, accumulating
	// dependencies and stats into t.res in deterministic node order, and
	// returns the number of candidates validated.
	runLevel(t *traversal, cur, prev, prev2 *lattice.Level) int
	// close releases executor-owned resources (e.g. a sharded executor's
	// worker session) when the run ends, normally or aborted.
	close()
}

// Pipeline is the unified level-wise traversal that Discover and
// DiscoverParallel are thin wrappers over: a planner (candidate generation,
// pruning, early termination — the loop in Run), a pluggable Executor, and an
// optional ProgressSink invoked at every level boundary. The zero value runs
// the serial executor with no sink.
type Pipeline struct {
	// Executor processes each level's candidates (nil = Serial()).
	Executor Executor
	// Sink, when non-nil, receives a Snapshot after every completed level;
	// the last snapshot of a run has Final set.
	Sink ProgressSink
	// Prepared, when non-nil and built for the run's exact table, supplies the
	// single-attribute partitions so the run skips the cold-start partitioning
	// phase entirely — the server's cross-job warm path. Its partitions are
	// shared (partition.Share), so concurrent runs may hold one PreparedTable.
	// A Prepared for a different table is ignored, not an error.
	Prepared *PreparedTable
	// Arena, when non-nil, replaces the run's private partition arena — the
	// server injects one bounded arena shared across jobs so steady-state
	// partition churn recycles instead of pressuring the GC.
	Arena *partition.Arena
}

// traversal is the shared state of one pipeline run: input, configuration,
// the partition arena and per-attribute partitions shared by all executors'
// workers, deadline bookkeeping, and the accumulated result.
type traversal struct {
	ctx      context.Context // nil means non-cancellable
	tbl      *dataset.Table
	cfg      Config
	eps      float64
	numAttrs int
	maxLevel int
	// arena recycles the CSR buffers of released lattice levels into the
	// next level's partition products, keeping steady-state traversal
	// nearly allocation-free. It is concurrency-safe and shared by all
	// workers of a pool executor.
	arena    *partition.Arena
	singles  []*partition.Stripped
	orders   *validate.TableOrders // non-nil only under UseSortedScan (serial)
	start    time.Time
	deadline time.Time
	res      *Result

	// trace is the job's span trace (nil when the caller's context carries
	// none — every recording below is then a no-op). levelSpan is the span of
	// the level currently being validated; sharded executors parent their
	// per-slice RPC spans under it. lastValid/lastPart remember the
	// cumulative Stats counters at the previous level boundary so snapshots
	// report per-level deltas.
	trace     *telemetry.Trace
	traceRoot telemetry.SpanID
	levelSpan *telemetry.ActiveSpan
	lastValid time.Duration
	lastPart  time.Duration

	// prefetchedNext, when set by a pipelining executor (Sharded), is the
	// already-generated next level; Run advances through it instead of
	// generating a twin, because the executor's pre-built tasks alias its
	// nodes.
	prefetchedNext *lattice.Level
}

// abortedInto reports that the run must stop — the TimeLimit deadline passed
// or the caller's context was canceled — recording the cause in st. It is
// polled between candidate validations, so an abort takes effect within one
// validation's latency.
func (t *traversal) abortedInto(st *Stats) bool {
	if !t.deadline.IsZero() && time.Now().After(t.deadline) {
		st.TimedOut = true
		return true
	}
	if t.ctx != nil && t.ctx.Err() != nil {
		st.Canceled = true
		return true
	}
	return false
}

// snapshot builds the immutable per-level Snapshot for the just-completed
// level.
func (t *traversal) snapshot(lvl *lattice.Level, candidates int, levelTime time.Duration, final bool) Snapshot {
	st := t.res.Stats
	st.OCsFoundPerLevel = append([]int(nil), st.OCsFoundPerLevel...)
	st.OFDsFoundPerLevel = append([]int(nil), st.OFDsFoundPerLevel...)
	st.TotalTime = time.Since(t.start)
	remaining := t.maxLevel - lvl.Number
	if final {
		remaining = 0
	}
	levelValid := st.ValidationTime - t.lastValid
	levelPart := st.PartitionTime - t.lastPart
	t.lastValid, t.lastPart = st.ValidationTime, st.PartitionTime
	return Snapshot{
		Level:              lvl.Number,
		MaxLevel:           t.maxLevel,
		Nodes:              len(lvl.Nodes),
		Candidates:         candidates,
		OCs:                append([]OC(nil), t.res.OCs...),
		OFDs:               append([]OFD(nil), t.res.OFDs...),
		Stats:              st,
		NodesRemaining:     lattice.RemainingNodes(t.numAttrs, lvl.Number, t.maxLevel),
		EstimatedRemaining: EstimateCost(t.tbl.NumRows(), t.numAttrs, remaining),
		LevelTime:          levelTime,
		LevelValidation:    levelValid,
		LevelPartition:     levelPart,
		Final:              final,
	}
}

// EstimateCost is the scheduler's work estimate for traversing `levels` more
// lattice levels of a rows × attrs table. It is deliberately coarse — a
// priority, not a prediction: validation cost per level varies with pruning,
// but rows × attrs × remaining levels orders jobs well enough that small jobs
// stop starving behind large ones.
func EstimateCost(rows, attrs, levels int) int64 {
	if levels < 0 {
		levels = 0
	}
	return int64(rows) * int64(attrs) * int64(levels)
}

// Run executes the level-wise discovery framework over the table: generate
// level ℓ+1 from level ℓ, hand each level's candidate validation to the
// Executor, deliver a Snapshot per level boundary, and stop on lattice
// exhaustion, a candidate-free level (validity state is upward-closed, so a
// candidate-free level stays candidate-free at every deeper level — the early
// termination behind Exp-5), the MaxLevel bound, a TimeLimit, or context
// cancellation. Aborted runs return the partial result with
// Stats.TimedOut/Canceled set and a nil error.
func (p Pipeline) Run(ctx context.Context, tbl *dataset.Table, cfg Config) (*Result, error) {
	numAttrs := tbl.NumCols()
	if err := cfg.Validate(numAttrs); err != nil {
		return nil, err
	}
	exec := p.Executor
	if exec == nil {
		exec = Serial()
	}
	defer exec.close()
	maxLevel := numAttrs
	if cfg.MaxLevel > 0 && cfg.MaxLevel < maxLevel {
		maxLevel = cfg.MaxLevel
	}
	trace, traceParent := telemetry.FromContext(ctx)
	t := &traversal{
		ctx:      ctx,
		tbl:      tbl,
		cfg:      cfg,
		eps:      cfg.effectiveThreshold(),
		numAttrs: numAttrs,
		maxLevel: maxLevel,
		arena:    partition.NewArena(),
		start:    time.Now(),
		res:      &Result{},
		trace:    trace,
	}
	if p.Arena != nil {
		t.arena = p.Arena
	}
	if p.Prepared != nil && p.Prepared.tbl == tbl {
		// Warm start: adopt the cached singles; buildSingles becomes a no-op
		// and the "partition-build" span below records (near) zero time.
		t.singles = p.Prepared.singles
	}
	t.traceRoot = traceParent
	st := &t.res.Stats
	st.Rows = tbl.NumRows()
	st.Attrs = numAttrs
	st.OCsFoundPerLevel = make([]int, numAttrs+1)
	st.OFDsFoundPerLevel = make([]int, numAttrs+1)
	if cfg.TimeLimit > 0 {
		t.deadline = t.start.Add(cfg.TimeLimit)
	}

	// Startup: per-attribute partitions (and executor state). Abort polling
	// inside prepare keeps cancellation from paying for the whole
	// O(cols · rows log rows) partitioning phase on large tables.
	t0 := time.Now()
	prepSpan := trace.Start(traceParent, "partition-build")
	ok := exec.prepare(t)
	prepSpan.Attr("attrs", int64(numAttrs))
	prepSpan.End()
	st.PartitionTime += time.Since(t0)
	if !ok {
		st.TotalTime = time.Since(t.start)
		return t.res, nil
	}

	l0 := lattice.Level0(tbl.NumRows(), numAttrs)
	prev2, prev := (*lattice.Level)(nil), l0
	cur := lattice.Level1(l0, tbl, t.singles)
	for {
		st.LevelsProcessed++
		lvlStart := time.Now()
		t.levelSpan = trace.Start(traceParent, "level")
		t.levelSpan.SetLabel("level %d", cur.Number)
		candidates := exec.runLevel(t, cur, prev, prev2)
		t.levelSpan.Attr("nodes", int64(len(cur.Nodes)))
		t.levelSpan.Attr("candidates", int64(candidates))
		t.levelSpan.End()
		levelTime := time.Since(lvlStart)
		aborted := st.TimedOut || st.Canceled
		if !aborted && candidates == 0 {
			st.EarlyStopped = cur.Number < maxLevel
		}
		last := aborted || candidates == 0 || cur.Number == maxLevel
		if p.Sink != nil {
			p.Sink(t.snapshot(cur, candidates, levelTime, last))
		}
		if last {
			break
		}
		next := t.prefetchedNext
		t.prefetchedNext = nil
		if next == nil {
			next = lattice.NextLevel(cur, numAttrs)
		}
		if !cfg.KeepPartitions && prev2 != nil {
			// prev2 is two levels behind the new frontier: its partitions are
			// no longer reachable as parents or grandparents, so their CSR
			// buffers recycle into the arena for the next level's products.
			for _, n := range prev2.Nodes {
				n.ReleasePartition(t.arena)
			}
		}
		prev2, prev, cur = prev, cur, next
	}
	st.TotalTime = time.Since(t.start)
	return t.res, nil
}
