package dataset

import (
	"sync"
	"testing"
)

// TestReversedConcurrent pins the immutability contract the service registry
// relies on when sharing one Table across discovery jobs: concurrent callers
// of the lazily-cached Reversed view must neither race (the cache used to be
// a plain pointer write — this test failed under -race then) nor observe
// different view instances.
func TestReversedConcurrent(t *testing.T) {
	tbl, err := NewBuilder().
		AddInts("a", []int64{3, 1, 2, 2}).
		AddFloats("f", []float64{0.5, 1.5, 1.5, 2.5}).
		AddStrings("s", []string{"x", "y", "z", "x"}).
		Build()
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 16
	views := make([][]*Column, goroutines)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start // maximize overlap on the initialization race
			views[g] = make([]*Column, tbl.NumCols())
			for i := 0; i < tbl.NumCols(); i++ {
				rev := tbl.Column(i).Reversed()
				// Interleave the other lazy/read paths shared by jobs.
				Fingerprint(tbl)
				_ = rev.Ranks()
				if rev.Reversed() != tbl.Column(i) {
					t.Errorf("col %d: double reversal is not the original", i)
				}
				views[g][i] = rev
			}
		}(g)
	}
	close(start)
	wg.Wait()

	// All goroutines must have adopted one published view per column —
	// losers of the CAS discard their build.
	for i := 0; i < tbl.NumCols(); i++ {
		for g := 1; g < goroutines; g++ {
			if views[g][i] != views[0][i] {
				t.Fatalf("col %d: goroutine %d observed a different reversed view", i, g)
			}
		}
	}
}

// TestFreezePrecomputes ensures a frozen table performs no writes at all:
// every reversed view already exists, so post-freeze use is pure reads.
func TestFreezePrecomputes(t *testing.T) {
	tbl, err := NewBuilder().AddInts("a", []int64{1, 2}).Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.Freeze(); got != tbl {
		t.Error("Freeze must return its receiver")
	}
	c := tbl.Column(0)
	if c.reversed.Load() == nil {
		t.Fatal("Freeze did not materialize the reversed view")
	}
	pre := c.Reversed()
	if c.Reversed() != pre {
		t.Error("post-freeze Reversed is not stable")
	}
}
