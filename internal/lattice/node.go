package lattice

import (
	"math/bits"

	"aod/internal/dataset"
	"aod/internal/partition"
)

// Node is one attribute set in the lattice, together with the validity state
// that drives pruning:
//
//   - ConstValid: attributes D ∈ Set such that the approximate OFD
//     (Set\{D}): [] ↦ D is valid (error ≤ ε). It is complete — propagation by
//     monotonicity plus on-node validation covers every D — which is what
//     lets superset nodes prune both non-minimal OFDs and constancy-trivial
//     OCs exactly.
//   - OCValid: unordered pairs {A,B} ⊆ Set such that the approximate OC
//     Y: A ∼ B is valid for some context Y ⊆ Set\{A,B}.
//
// Partitions are materialized lazily (see Partition): nodes whose subtree
// never validates anything never pay the partition-product cost. This is the
// mechanism behind the paper's Exp-5 observation that approximate discovery
// can be faster than exact discovery: AOCs/AOFDs are found at lower levels,
// validity state saturates sooner, and the engine stops early.
type Node struct {
	// Set is the attribute set of this node.
	Set AttrSet
	// Level is |Set|.
	Level int
	// ConstValid marks attrs with a valid OFD in context Set\{attr}.
	ConstValid AttrSet
	// OCValid marks pairs with a valid OC in some context ⊆ Set\pair.
	OCValid *PairSet
	// OCValidDesc is the bidirectional analogue: pairs {A,B} with a valid
	// mixed-direction OC (A ascending, B descending) in some sub-context.
	// Allocated only when bidirectional discovery is enabled.
	OCValidDesc *PairSet

	// part is the stripped partition Π_Set, materialized on demand.
	part *partition.Stripped
	// owned marks a partition built by this node (a product), as opposed to
	// a shared single-attribute or universe partition: only owned partitions
	// may be recycled into an arena on release.
	owned bool
	// classIDs caches part.ClassIDs() for sorted-scan validation.
	classIDs []int32
	// parents are two generating parents with Set = p0.Set ∪ p1.Set
	// (nil for levels 0 and 1).
	parents [2]*Node
}

// ClassIDs returns (and caches) the per-row class ids of the node's
// partition, materializing the partition if needed.
func (n *Node) ClassIDs(singles []*partition.Stripped) []int32 {
	if n.classIDs == nil {
		n.classIDs = n.Partition(singles).ClassIDs()
	}
	return n.classIDs
}

// Partition returns Π_Set, materializing it on demand from the two
// generating parents (recursively), or — if an ancestor's partition was
// already released — by folding single-attribute partitions.
func (n *Node) Partition(singles []*partition.Stripped) *partition.Stripped {
	return n.PartitionIn(nil, singles)
}

// PartitionIn is Partition with an arena: products draw their CSR buffers
// (and probe scratch) from a, so a traversal that releases exhausted levels
// back into the same arena materializes each new level with near-zero
// allocations. A nil arena falls back to plain allocation.
func (n *Node) PartitionIn(a *partition.Arena, singles []*partition.Stripped) *partition.Stripped {
	if n.part != nil {
		return n.part
	}
	switch {
	case n.Level == 0:
		n.part = partition.Universe(singles[0].N)
	case n.Level == 1:
		n.part = singles[n.Set.Min()]
	case n.parents[0] != nil && n.parents[1] != nil:
		// Levels >= 2 have two proper parents at level-1 cardinality; the
		// product of any two distinct strict subsets covering Set yields
		// Π_Set.
		p0 := n.parents[0].PartitionIn(a, singles)
		p1 := n.parents[1].PartitionIn(a, singles)
		n.part = productIn(a, p0, p1)
		n.owned = true
	default:
		// Fallback: fold single-attribute partitions, recycling the
		// intermediate products.
		attrs := n.Set.Attrs()
		p := singles[attrs[0]]
		for i, c := range attrs[1:] {
			next := productIn(a, p, singles[c])
			if i > 0 && a != nil {
				a.Recycle(p)
			}
			p = next
		}
		n.part = p
		n.owned = true
	}
	return n.part
}

func productIn(a *partition.Arena, p, q *partition.Stripped) *partition.Stripped {
	if a == nil {
		return p.Product(q)
	}
	return a.Product(p, q)
}

// HasPartition reports whether the partition is currently materialized.
func (n *Node) HasPartition() bool { return n.part != nil }

// ReleasePartition frees the materialized partition (and cached class ids)
// to bound memory; both can be re-materialized later if needed. When the
// node owns its partition (a product) and a is non-nil, the partition's
// buffers are recycled into the arena — the caller must guarantee no live
// references remain.
func (n *Node) ReleasePartition(a *partition.Arena) {
	if n.owned && a != nil {
		a.Recycle(n.part)
	}
	n.part = nil
	n.owned = false
	n.classIDs = nil
}

// Level0 builds the level-0 lattice: the single empty-set node whose
// partition is the universe partition (one class with all rows).
func Level0(numRows, numAttrs int) *Level {
	n := &Node{
		Set:     0,
		Level:   0,
		OCValid: NewPairSet(numAttrs),
		part:    partition.Universe(numRows),
	}
	return &Level{Number: 0, Nodes: []*Node{n}, bySet: map[AttrSet]*Node{0: n}}
}

// Level is one stratum of the lattice: all nodes whose sets share a
// cardinality.
type Level struct {
	// Number is the cardinality of the node sets in this level.
	Number int
	// Nodes in deterministic (ascending bitmask) order.
	Nodes []*Node
	bySet map[AttrSet]*Node
}

// Lookup returns the node for the given set, or nil.
func (l *Level) Lookup(s AttrSet) *Node {
	if l == nil {
		return nil
	}
	return l.bySet[s]
}

// Level1 builds the level-1 lattice from per-attribute partitions, linking
// every singleton to the level-0 node.
func Level1(l0 *Level, tbl *dataset.Table, singles []*partition.Stripped) *Level {
	numAttrs := tbl.NumCols()
	lvl := &Level{Number: 1, bySet: make(map[AttrSet]*Node, numAttrs)}
	for a := 0; a < numAttrs; a++ {
		n := &Node{
			Set:     NewAttrSet(a),
			Level:   1,
			OCValid: NewPairSet(numAttrs),
			part:    singles[a],
			parents: [2]*Node{l0.Nodes[0], l0.Nodes[0]},
		}
		lvl.Nodes = append(lvl.Nodes, n)
		lvl.bySet[n.Set] = n
	}
	return lvl
}

// RemainingNodes returns the number of lattice nodes in levels
// (fromLevel, maxLevel] — the sum of binomial coefficients C(numAttrs, k) for
// fromLevel < k ≤ maxLevel. Traversal snapshots use it as an upper bound on
// the nodes a running discovery may still visit (early termination can skip
// them all). The running product never overflows for numAttrs ≤ 64: the
// largest term C(64, 32) ≈ 1.8e18 fits an int64, and the sum saturates at
// MaxInt64 rather than wrapping.
func RemainingNodes(numAttrs, fromLevel, maxLevel int) int64 {
	if maxLevel > numAttrs {
		maxLevel = numAttrs
	}
	var total int64
	for k := fromLevel + 1; k <= maxLevel; k++ {
		c := binomial(numAttrs, k)
		if total > (1<<63-1)-c {
			return 1<<63 - 1
		}
		total += c
	}
	return total
}

// binomial computes C(n, k) with the multiplicative formula for n ≤ 64. Each
// prefix value is itself a binomial C(n-k+i, i) and so fits int64 (the
// largest, C(64, 32) ≈ 1.8e18, does), but the undivided product c·(n-k+i)
// does not — C(63, 31)·64 ≈ 5.9e19 — so the multiply-then-divide step runs
// through a 128-bit intermediate.
func binomial(n, k int) int64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	c := uint64(1)
	for i := 1; i <= k; i++ {
		hi, lo := bits.Mul64(c, uint64(n-k+i))
		// Exact division: hi < i because the quotient C(n-k+i, i) fits 64
		// bits, so Div64 cannot panic.
		c, _ = bits.Div64(hi, lo, uint64(i))
	}
	return int64(c)
}

// NextLevel generates level ℓ+1 from level ℓ: every set S with |S| = ℓ+1 is
// produced exactly once by extending the node of S \ {max attr} with an
// attribute larger than its maximum; the two generating parents chosen for
// partition products are S\{c1} and S\{c2} for the two smallest attrs c1, c2
// of S (both exist in level ℓ because levels are generated exhaustively).
// Partitions are NOT computed here; see Node.Partition.
func NextLevel(cur *Level, numAttrs int) *Level {
	next := &Level{Number: cur.Number + 1, bySet: make(map[AttrSet]*Node)}
	for _, n := range cur.Nodes {
		for c := n.Set.Max() + 1; c < numAttrs; c++ {
			s := n.Set.Add(c)
			attrs := s.Attrs()
			p0 := cur.bySet[s.Remove(attrs[0])]
			p1 := cur.bySet[s.Remove(attrs[1])]
			child := &Node{
				Set:     s,
				Level:   next.Number,
				OCValid: NewPairSet(numAttrs),
				parents: [2]*Node{p0, p1},
			}
			next.Nodes = append(next.Nodes, child)
			next.bySet[s] = child
		}
	}
	return next
}
