package dataset

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// FuzzReadCSV feeds arbitrary bytes to the CSV ingest path — the surface
// every aodserver upload crosses. Whatever the input (malformed quoting,
// ragged rows, huge fields, binary junk), ReadCSV must either fail cleanly
// or produce a table satisfying the rank-encoding invariants AND surviving
// the serialize→reload round trip the persistence layer depends on.
// Additional seeds live in testdata/fuzz/FuzzReadCSV.
func FuzzReadCSV(f *testing.F) {
	for _, seed := range []string{
		"a,b\n1,2\n3,4\n",
		"a,b\n1,2\n3\n",              // ragged row
		"a,\"b\n1,2\n",               // unterminated quote
		"\"a\"x,b\n1,2\n",            // junk after closing quote
		"a,a\n1,2\n",                 // duplicate header names
		"a,b\nNaN,+Inf\n-0,1e309\n",  // float specials and overflow
		"a\n\n\n",                    // empty fields
		",\n,\n",                     // empty names and fields
		"a,b\r\n1,2\r\n",             // CRLF endings
		"a\n\"x\r\r\ny\"\n\"z\"\n",   // \r\r\n inside quotes: folds to \r\n
		"h," + strings.Repeat("x", 1<<13) + "\n1,2\n", // huge header field
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tbl, err := ReadCSV(bytes.NewReader(data), CSVOptions{})
		if err != nil {
			return // rejecting bad input is fine; panicking is the bug
		}
		rows := tbl.NumRows()
		if rows < 1 || tbl.NumCols() < 1 {
			t.Fatalf("accepted table has %d rows × %d cols", rows, tbl.NumCols())
		}
		for i := 0; i < tbl.NumCols(); i++ {
			c := tbl.Column(i)
			if c.Len() != rows {
				t.Fatalf("column %d has %d rows, table has %d", i, c.Len(), rows)
			}
			d := c.NumDistinct()
			if d < 1 || d > rows {
				t.Fatalf("column %d: %d distinct values for %d rows", i, d, rows)
			}
			for r := 0; r < rows; r++ {
				if rank := c.Rank(r); rank < 0 || int(rank) >= d {
					t.Fatalf("column %d row %d: rank %d outside [0,%d)", i, r, rank, d)
				}
				_ = c.ValueString(r) // must render, not panic
			}
		}

		// Round trip: serialize and reload with the recorded column types.
		// CSV cannot represent a value containing '\r' unambiguously (the
		// reader folds \r\n to \n inside quotes), so such tables are exempt
		// here — and the store refuses them up front (ErrUnserializable).
		if tableContainsCR(tbl) {
			return
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, tbl); err != nil {
			t.Fatalf("serializing accepted table: %v", err)
		}
		back, err := ReadCSV(bytes.NewReader(buf.Bytes()), CSVOptions{Types: tbl.ColumnTypes()})
		if err != nil {
			t.Fatalf("reloading serialized table: %v\nserialized:\n%s", err, buf.Bytes())
		}
		if Fingerprint(back) != Fingerprint(tbl) {
			t.Fatalf("fingerprint changed across serialize→reload\nserialized:\n%s", buf.Bytes())
		}
	})
}

func tableContainsCR(t *Table) bool {
	for i := 0; i < t.NumCols(); i++ {
		c := t.Column(i)
		if strings.ContainsRune(c.Name(), '\r') {
			return true
		}
		if c.Kind() == KindString {
			for _, v := range c.stringVals {
				if strings.ContainsRune(v, '\r') {
					return true
				}
			}
		}
	}
	return false
}

// FuzzFingerprint checks the contract the registry and result cache build
// on: the fingerprint is a pure function of content (equal content ⇒ equal
// fingerprint, across independent constructions) and sensitive to what
// content means — row order, column names, and column kinds. Additional
// seeds live in testdata/fuzz/FuzzFingerprint.
func FuzzFingerprint(f *testing.F) {
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0}, "col")
	f.Add([]byte{9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9}, "")
	f.Fuzz(func(t *testing.T, data []byte, name string) {
		if len(data) < 16 {
			return
		}
		if len(data) > 64*8 {
			data = data[:64*8] // plenty of rows; keep iterations fast
		}
		vals := make([]int64, len(data)/8)
		for i := range vals {
			vals[i] = int64(binary.LittleEndian.Uint64(data[8*i:]))
		}
		build := func(name string, vals []int64) *Table {
			tbl, err := NewBuilder().AddInts(name, vals).Build()
			if err != nil {
				t.Fatal(err)
			}
			return tbl
		}

		base := Fingerprint(build(name, vals))
		// Determinism: an independent construction of equal content agrees.
		if again := Fingerprint(build(name, append([]int64(nil), vals...))); again != base {
			t.Fatalf("equal content, different fingerprints: %s vs %s", base, again)
		}
		// Row-order sensitivity: swapping two unequal rows is different
		// content.
		if vals[0] != vals[1] {
			swapped := append([]int64(nil), vals...)
			swapped[0], swapped[1] = swapped[1], swapped[0]
			if Fingerprint(build(name, swapped)) == base {
				t.Fatal("row order ignored by fingerprint")
			}
		}
		// Schema sensitivity: a renamed column is a different dataset.
		if Fingerprint(build(name+"′", vals)) == base {
			t.Fatal("column name ignored by fingerprint")
		}
		// Kind sensitivity: the same numbers as floats are different content.
		floats := make([]float64, len(vals))
		for i, v := range vals {
			floats[i] = float64(v)
		}
		ftbl, err := NewBuilder().AddFloats(name, floats).Build()
		if err != nil {
			t.Fatal(err)
		}
		if Fingerprint(ftbl) == base {
			t.Fatal("column kind ignored by fingerprint")
		}
		// Width sensitivity: appending a column is a different dataset.
		wide, err := NewBuilder().AddInts(name, vals).AddInts(name+"2", vals).Build()
		if err != nil {
			t.Fatal(err)
		}
		if Fingerprint(wide) == base {
			t.Fatal("column count ignored by fingerprint")
		}
	})
}
