package aod

import "aod/internal/gen"

// Flight generates the synthetic flight-flavoured dataset used by the
// experiment harness in place of the paper's BTS download (see DESIGN.md §4
// for the substitution rationale). attrs ∈ [2,35]; attrs = 0 means 10.
// Identical (rows, attrs, seed) triples yield identical data.
func Flight(rows, attrs int, seed int64) *Dataset {
	return &Dataset{tbl: gen.Flight(gen.FlightConfig{Rows: rows, Attrs: attrs, Seed: seed})}
}

// NCVoter generates the synthetic ncvoter-flavoured dataset (in place of the
// paper's NCSBE download). attrs ∈ [2,30]; attrs = 0 means 10.
func NCVoter(rows, attrs int, seed int64) *Dataset {
	return &Dataset{tbl: gen.NCVoter(gen.NCVoterConfig{Rows: rows, Attrs: attrs, Seed: seed})}
}

// Table1 returns the paper's running example (Table 1, employee salaries)
// with monetary values scaled to integers.
func Table1() *Dataset {
	return &Dataset{tbl: gen.Table1()}
}

// CorrelatedPair generates a two-column dataset whose single OC candidate
// has approximation factor ≈ frac — the isolated-validator benchmark
// workload.
func CorrelatedPair(rows int, frac float64, seed int64) *Dataset {
	return &Dataset{tbl: gen.CorrelatedPair(rows, frac, seed)}
}
