// Package gen produces the synthetic workloads used by the experiment
// harness. The paper evaluates on two public datasets — flight (US Bureau of
// Transportation Statistics, 1M×35) and ncvoter (North Carolina State Board
// of Elections, 5M×30) — which are not available offline; these generators
// build deterministic tables with the same schema flavour and, critically,
// the same dependency structure the paper's findings rely on (see DESIGN.md
// §4):
//
//   - exact ODs and FD hierarchies, so exact discovery finds non-trivial
//     dependency sets;
//   - approximate OCs planted at the exception rates the paper reports:
//     originAirport ∼ IATACode at ≈8%, arrivalDelay ∼ lateAircraftDelay at
//     ≈9.5% (flight, Exp-4/Exp-6), municipalityAbbrv ∼ municipalityDesc at
//     ≈20% and streetAddress ∼ mailAddress at ≈18% (ncvoter, Exp-6);
//   - plenty of uncorrelated noise columns, so candidate validation is
//     exercised on failing candidates too.
//
// All generators are deterministic functions of (rows, attrs, seed).
package gen

import (
	"fmt"
	"math/rand"

	"aod/internal/dataset"
)

// corruptFraction returns a copy of vals where approximately frac·len rows
// are replaced by order-breaking values, producing an approximate OC between
// the original and the copy with approximation factor ≈ frac.
//
// The corruption mimics the paper's motivating error — a concatenated digit
// turning 1% into 10% (Table 1's perc column): every value in the lowest
// value band (covering ≈frac of the rows) gets an extra decimal digit.
// The corrupted values therefore interleave with clean mid-range values,
// reproducing the overlapping swap structure on which the greedy iterative
// validator overestimates removal sets (Example 3.1) while the LNDS-based
// optimal validator does not.
func corruptFraction(rng *rand.Rand, vals []int64, frac float64) []int64 {
	out := append([]int64{}, vals...)
	if len(vals) < 2 || frac <= 0 {
		return out
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	span := hi - lo
	if span < 10 {
		span = 10
	}
	// Values are roughly uniform over [lo, hi] in all generator columns, so
	// the band [lo, lo+frac·span) covers ≈frac of the rows.
	bandHi := lo + int64(frac*float64(span))
	for i, v := range out {
		if v < bandHi {
			// Digit concatenation anchored at the domain start: the
			// corrupted band spreads over ≈10·frac of the domain and
			// interleaves with clean values above it.
			out[i] = (v-lo)*10 + lo + rng.Int63n(3)
		}
	}
	return out
}

// monotone returns a non-decreasing mapping of vals through a deterministic
// piecewise-linear function, yielding an exact OC partner.
func monotone(vals []int64, stretch int64, offset int64) []int64 {
	out := make([]int64, len(vals))
	for i, v := range vals {
		out[i] = v*stretch + offset
	}
	return out
}

// gadgetBlock is the per-block size of the tiled Table-1 gadget; each block
// carries 9 gadget rows whose minimal removal set is 4 but whose greedy
// removal set is 5, so the pair's true approximation factor is 4/42 ≈ 9.5%
// while the iterative validator measures 5/42 ≈ 11.9%.
const gadgetBlock = 42

// gadgetPair builds a column pair that reproduces the paper's Exp-4
// anecdote: the AOC holds with a true approximation factor just below 10%,
// but the greedy iterative validator overestimates it past the threshold
// and loses the dependency. The construction tiles the sal ∼ tax swap
// structure of Table 1 (Examples 2.15/3.1) into disjoint ascending value
// windows: within each window the greedy validator repeats its Example-3.1
// mistake, and windows do not interact.
func gadgetPair(rows int) (a, b []int64) {
	// Table 1's tax projection after sorting by sal: minimal removal 4,
	// greedy removal 5.
	gadgetB := []int64{20, 25, 3, 120, 15, 165, 18, 72, 160}
	a = make([]int64, rows)
	b = make([]int64, rows)
	for i := 0; i < rows; i++ {
		blk := int64(i / gadgetBlock)
		j := i % gadgetBlock
		base := blk * 1000
		if j < gadgetBlock-9 {
			// Clean monotone rows in the low half of the window.
			a[i] = base + int64(j)*3
			b[i] = 2*base + int64(j)*6
		} else {
			// The 9 gadget rows in the high half of the window: above every
			// clean row on both columns, so only intra-gadget swaps exist.
			g := j - (gadgetBlock - 9)
			a[i] = base + 500 + int64(g)
			b[i] = 2*base + 400 + gadgetB[g]
		}
	}
	return a, b
}

// bucketize maps vals to coarse buckets (an exact OD target: vals ↦ bucket).
func bucketize(vals []int64, width int64) []int64 {
	out := make([]int64, len(vals))
	for i, v := range vals {
		out[i] = v / width
	}
	return out
}

// FlightConfig parameterizes the synthetic flight dataset.
type FlightConfig struct {
	// Rows is the number of tuples.
	Rows int
	// Attrs bounds the number of columns (5..35); 0 means 10 (the paper's
	// default "flight-10").
	Attrs int
	// Seed drives the deterministic PRNG.
	Seed int64
}

// flightColumnBuilders enumerates the 35 flight columns in order; each
// closure appends one column to the builder given the shared base series.
type seriesCtx struct {
	rng   *rand.Rand
	rows  int
	base  []int64 // flight sequence number (unique, increasing)
	dep   []int64 // scheduled departure minute-of-year (increasing w/ ties)
	delay []int64 // late-aircraft delay minutes
}

// Flight builds the synthetic flight table.
//
// Planted structure (column subsets by Attrs):
//
//	#0 flightID        unique ascending (key)
//	#1 flightDate      = bucketize(flightID): exact OD flightID ↦ flightDate
//	#2 origin          categorical airport id
//	#3 originIATA      order-corresponding to origin with ≈8% exceptions
//	                   (Exp-6: originAirport ∼ IATACode, 8%)
//	#4 lateAircraftDelay  base delay series (tiled Table-1 gadget)
//	#5 arrivalDelay    gadget partner: true e ≈ 9.5% but greedy-estimated
//	                   e ≈ 11.9% (Exp-4: the AOC the iterative validator
//	                   loses at ε = 10%)
//	#6 airline         categorical; FD origin,flightDate-ish noise
//	#7 distance        correlated with airTime exactly (exact OC)
//	#8 airTime         = monotone(distance)
//	#9 depDelay        noise
//	#10..: alternating noise, hierarchy (FD) and correlated columns.
func Flight(cfg FlightConfig) *dataset.Table {
	rows := cfg.Rows
	attrs := cfg.Attrs
	if attrs == 0 {
		attrs = 10
	}
	if attrs < 2 {
		attrs = 2
	}
	if attrs > 35 {
		attrs = 35
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5f11947))

	id := make([]int64, rows)
	for i := range id {
		id[i] = int64(i)
	}
	origin := make([]int64, rows)
	for i := range origin {
		origin[i] = int64(rng.Intn(200))
	}
	// The delay pair carries the tiled Table-1 gadget (Exp-4 anecdote):
	// true e ≈ 9.5%, greedy estimate ≈ 11.9%.
	delay, arrival := gadgetPair(rows)
	distance := make([]int64, rows)
	for i := range distance {
		distance[i] = int64(100 + rng.Intn(4000))
	}

	b := dataset.NewBuilder()
	add := func(name string, vals []int64) {
		if b.Len() < attrs {
			b.AddInts(name, vals)
		}
	}
	add("flightID", id)
	add("flightDate", bucketize(id, 1+int64(rows/365)))
	add("origin", origin)
	add("originIATA", corruptFraction(rng, monotone(origin, 3, 17), 0.08))
	add("lateAircraftDelay", delay)
	add("arrivalDelay", arrival)
	airline := make([]int64, rows)
	for i := range airline {
		airline[i] = origin[i] % 17 // FD origin → airline
	}
	add("airline", airline)
	add("distance", distance)
	add("airTime", monotone(distance, 1, -90))
	dep := make([]int64, rows)
	for i := range dep {
		dep[i] = int64(rng.Intn(1440))
	}
	add("depDelay", dep)
	// Wider schemas: mixture of noise, hierarchies and correlated columns.
	for c := b.Len(); c < attrs; c++ {
		vals := make([]int64, rows)
		switch c % 3 {
		case 0: // pure noise, moderate domain
			for i := range vals {
				vals[i] = int64(rng.Intn(1000))
			}
		case 1: // hierarchy over an earlier categorical (plants FDs)
			for i := range vals {
				vals[i] = origin[i] / int64(2+c%7)
			}
		default: // approximate order-partner of the delay series
			vals = corruptFraction(rng, monotone(delay, int64(1+c%4), int64(c)), 0.05+float64(c%5)*0.03)
		}
		add(fmt.Sprintf("x%d", c), vals)
	}
	tbl, err := b.Build()
	if err != nil {
		panic("gen: " + err.Error())
	}
	return tbl
}

// NCVoterConfig parameterizes the synthetic ncvoter dataset.
type NCVoterConfig struct {
	Rows  int
	Attrs int // 0 means 10 ("ncvoter-10"); bounded to 30
	Seed  int64
}

// NCVoter builds the synthetic North-Carolina-voter-flavoured table.
//
// Planted structure:
//
//	#0 regNum            unique ascending (key)
//	#1 age               18..98
//	#2 birthYear         exact monotone partner of age (descending semantics
//	                     are out of scope for ascending canonical OCs, so the
//	                     generator uses 100−age to keep it ascending)
//	#3 municipality      categorical
//	#4 municipalityAbbrv order-corresponding to municipality with ≈20%
//	                     exceptions (Exp-6, discovered at ε=20%)
//	#5 streetAddress     ordinal address index
//	#6 mailAddress       ≈18% exceptions (Exp-6)
//	#7 zip               FD municipality → zip
//	#8 county            coarse bucket of municipality (exact OD)
//	#9 precinct          noise
//	#10..: alternating noise/hierarchy/correlated columns.
func NCVoter(cfg NCVoterConfig) *dataset.Table {
	rows := cfg.Rows
	attrs := cfg.Attrs
	if attrs == 0 {
		attrs = 10
	}
	if attrs < 2 {
		attrs = 2
	}
	if attrs > 30 {
		attrs = 30
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x9e3779b9))

	reg := make([]int64, rows)
	for i := range reg {
		reg[i] = int64(i) * 3
	}
	age := make([]int64, rows)
	for i := range age {
		age[i] = int64(18 + rng.Intn(80))
	}
	muni := make([]int64, rows)
	for i := range muni {
		muni[i] = int64(rng.Intn(120))
	}
	street := make([]int64, rows)
	for i := range street {
		street[i] = int64(rng.Intn(5000))
	}

	b := dataset.NewBuilder()
	add := func(name string, vals []int64) {
		if b.Len() < attrs {
			b.AddInts(name, vals)
		}
	}
	add("regNum", reg)
	add("age", age)
	add("birthYear", monotone(age, -1, 100)) // 100−age keeps ascending order flipped consistently
	add("municipality", muni)
	add("municipalityAbbrv", corruptFraction(rng, monotone(muni, 2, 1), 0.20))
	add("streetAddress", street)
	add("mailAddress", corruptFraction(rng, monotone(street, 1, 1000), 0.18))
	zip := make([]int64, rows)
	for i := range zip {
		zip[i] = 27000 + muni[i]*7%89
	}
	add("zip", zip)
	add("county", bucketize(muni, 12))
	precinct := make([]int64, rows)
	for i := range precinct {
		precinct[i] = int64(rng.Intn(300))
	}
	add("precinct", precinct)
	for c := b.Len(); c < attrs; c++ {
		vals := make([]int64, rows)
		switch c % 3 {
		case 0:
			for i := range vals {
				vals[i] = int64(rng.Intn(800))
			}
		case 1:
			for i := range vals {
				vals[i] = muni[i] / int64(2+c%5)
			}
		default:
			vals = corruptFraction(rng, monotone(age, int64(1+c%3), int64(c)), 0.04+float64(c%6)*0.03)
		}
		add(fmt.Sprintf("y%d", c), vals)
	}
	tbl, err := b.Build()
	if err != nil {
		panic("gen: " + err.Error())
	}
	return tbl
}

// Table1 returns the paper's Table 1 (employee salaries), with monetary
// values scaled to integers (sal in $1000s, tax in $100s).
func Table1() *dataset.Table {
	tbl, err := dataset.NewBuilder().
		AddStrings("pos", []string{"sec", "sec", "dev", "sec", "dev", "dev", "dev", "dev", "dir"}).
		AddInts("exp", []int64{1, 3, 1, 5, 3, 5, 5, -1, 8}).
		AddInts("sal", []int64{20, 25, 30, 40, 50, 55, 60, 90, 200}).
		AddStrings("taxGrp", []string{"A", "A", "A", "B", "B", "B", "B", "C", "C"}).
		AddInts("perc", []int64{10, 10, 1, 30, 3, 30, 3, 8, 8}).
		AddInts("tax", []int64{20, 25, 3, 120, 15, 165, 18, 72, 160}).
		AddInts("bonus", []int64{1, 1, 3, 2, 4, 4, 4, 7, 10}).
		Build()
	if err != nil {
		panic("gen: " + err.Error())
	}
	return tbl
}

// CorrelatedPair returns a two-column table (a, b) where b is a monotone
// image of a corrupted on ≈frac of the rows — a single AOC candidate with
// approximation factor ≈ frac. It is the micro-benchmark workload for
// comparing validator runtimes in isolation (Exp-3's complexity analysis).
func CorrelatedPair(rows int, frac float64, seed int64) *dataset.Table {
	rng := rand.New(rand.NewSource(seed ^ 0xc0481a7e))
	a := make([]int64, rows)
	for i := range a {
		a[i] = int64(rng.Intn(4 * rows))
	}
	b := corruptFraction(rng, monotone(a, 2, 11), frac)
	tbl, err := dataset.NewBuilder().AddInts("a", a).AddInts("b", b).Build()
	if err != nil {
		panic("gen: " + err.Error())
	}
	return tbl
}

// Uniform returns a table of independent uniform columns (no planted
// structure) for adversarial/property testing.
func Uniform(rows, attrs, domain int, seed int64) *dataset.Table {
	rng := rand.New(rand.NewSource(seed ^ 0x00f1a5))
	b := dataset.NewBuilder()
	for c := 0; c < attrs; c++ {
		vals := make([]int64, rows)
		for i := range vals {
			vals[i] = int64(rng.Intn(domain))
		}
		b.AddInts(fmt.Sprintf("u%d", c), vals)
	}
	tbl, err := b.Build()
	if err != nil {
		panic("gen: " + err.Error())
	}
	return tbl
}
