// Package aod discovers (approximate) order dependencies in relational data.
//
// It is a from-scratch Go implementation of the system described in
// "Efficient Discovery of Approximate Order Dependencies" (Karegar, Godfrey,
// Golab, Kargar, Srivastava, Szlichta — EDBT 2021): a set-based, level-wise
// discovery framework for canonical order dependencies (order compatibilities
// plus order functional dependencies), equipped with the paper's optimal
// LNDS-based validator for approximate order compatibility, the legacy
// quadratic iterative validator it replaces, and exact validation.
//
// # Quick start
//
//	ds, err := aod.ReadCSVFile("employees.csv", aod.CSVOptions{})
//	if err != nil { ... }
//	report, err := aod.Discover(ds, aod.Options{
//		Threshold: 0.10,                  // allow 10% exceptions
//		Algorithm: aod.AlgorithmOptimal,  // the paper's Algorithm 2
//	})
//	for _, oc := range report.OCs {
//		fmt.Println(oc) // e.g. "{pos}: exp ∼ sal (e=0.1111)"
//	}
//
// A discovered OC "{X}: A ∼ B (e=é)" states that within every group of rows
// agreeing on X, the values of A and B can be sorted simultaneously after
// removing a fraction é of the table's rows — and é is exact and minimal
// (Theorem 3.3 of the paper). Removal sets can be collected for error repair
// and outlier detection.
package aod

import (
	"fmt"
	"io"

	"aod/internal/dataset"
)

// Dataset is an immutable, rank-encoded relational instance — the input to
// discovery and validation.
type Dataset struct {
	tbl *dataset.Table
}

// NumRows returns the number of tuples.
func (d *Dataset) NumRows() int { return d.tbl.NumRows() }

// NumCols returns the number of attributes.
func (d *Dataset) NumCols() int { return d.tbl.NumCols() }

// ColumnNames returns the attribute names in schema order.
func (d *Dataset) ColumnNames() []string { return d.tbl.ColumnNames() }

// ColumnTypes returns the column kind names ("int", "float", "string") in
// schema order. Passing them back via CSVOptions.Types makes a WriteCSV →
// ReadCSV round trip reconstruct the dataset exactly (equal Fingerprint),
// where type re-inference could diverge — the property the persistence layer
// depends on.
func (d *Dataset) ColumnTypes() []string { return d.tbl.ColumnTypes() }

// Freeze eagerly materializes the dataset's lazily-built internal views
// (the descending column views behind bidirectional discovery), after which
// no operation writes to the dataset again. Long-lived registries freeze a
// dataset before sharing it across concurrent discovery jobs. It returns the
// dataset for chaining.
func (d *Dataset) Freeze() *Dataset {
	d.tbl.Freeze()
	return d
}

// Head returns the dataset restricted to its first n rows.
func (d *Dataset) Head(n int) *Dataset { return &Dataset{tbl: d.tbl.Head(n)} }

// Select returns the dataset restricted to the named columns.
func (d *Dataset) Select(names ...string) (*Dataset, error) {
	t, err := d.tbl.Select(names...)
	if err != nil {
		return nil, err
	}
	return &Dataset{tbl: t}, nil
}

// Value renders the raw value at (row, column name) for display.
func (d *Dataset) Value(row int, column string) (string, error) {
	i := d.tbl.ColumnIndex(column)
	if i < 0 {
		return "", fmt.Errorf("aod: no column %q", column)
	}
	if row < 0 || row >= d.tbl.NumRows() {
		return "", fmt.Errorf("aod: row %d out of range [0,%d)", row, d.tbl.NumRows())
	}
	return d.tbl.Column(i).ValueString(row), nil
}

// String summarizes the dataset schema.
func (d *Dataset) String() string { return d.tbl.String() }

// Fingerprint returns a hex-encoded SHA-256 content hash over the dataset's
// schema and column data. Equal fingerprints guarantee identical discovery
// results for identical options, which makes the fingerprint a safe cache
// and deduplication key (used by the aodserver dataset registry).
func (d *Dataset) Fingerprint() string { return dataset.Fingerprint(d.tbl) }

// table exposes the internal representation to sibling files.
func (d *Dataset) table() *dataset.Table { return d.tbl }

// Builder assembles a Dataset column by column.
type Builder struct {
	b *dataset.Builder
}

// NewBuilder returns an empty dataset builder.
func NewBuilder() *Builder { return &Builder{b: dataset.NewBuilder()} }

// AddInts appends an integer column.
func (b *Builder) AddInts(name string, vals []int64) *Builder {
	b.b.AddInts(name, vals)
	return b
}

// AddFloats appends a float column.
func (b *Builder) AddFloats(name string, vals []float64) *Builder {
	b.b.AddFloats(name, vals)
	return b
}

// AddStrings appends a string column (ordered lexicographically).
func (b *Builder) AddStrings(name string, vals []string) *Builder {
	b.b.AddStrings(name, vals)
	return b
}

// Build assembles the Dataset.
func (b *Builder) Build() (*Dataset, error) {
	t, err := b.b.Build()
	if err != nil {
		return nil, err
	}
	return &Dataset{tbl: t}, nil
}

// CSVOptions controls CSV parsing; the zero value reads a comma-separated
// file with a header row.
type CSVOptions struct {
	// Comma is the field delimiter (0 = ',').
	Comma rune
	// MaxRows limits the number of data rows read (0 = all).
	MaxRows int
	// Columns restricts parsing to the named columns (empty = all).
	Columns []string
	// NoHeader treats the first record as data (columns named col0, col1…).
	NoHeader bool
	// Types forces the kind ("int", "float", "string") of each kept column
	// in order instead of inferring it (empty = infer). See
	// Dataset.ColumnTypes.
	Types []string
}

// ReadCSV parses CSV data into a Dataset with per-column type inference
// (int, then float, then string).
func ReadCSV(r io.Reader, opts CSVOptions) (*Dataset, error) {
	t, err := dataset.ReadCSV(r, dataset.CSVOptions(opts))
	if err != nil {
		return nil, err
	}
	return &Dataset{tbl: t}, nil
}

// ReadCSVFile opens path and parses it with ReadCSV.
func ReadCSVFile(path string, opts CSVOptions) (*Dataset, error) {
	t, err := dataset.ReadCSVFile(path, dataset.CSVOptions(opts))
	if err != nil {
		return nil, err
	}
	return &Dataset{tbl: t}, nil
}

// WriteCSV serializes the dataset as CSV with a header row.
func (d *Dataset) WriteCSV(w io.Writer) error { return dataset.WriteCSV(w, d.tbl) }

// WriteCSVFile writes the dataset to path.
func (d *Dataset) WriteCSVFile(path string) error { return dataset.WriteCSVFile(path, d.tbl) }
