// Package repair implements the downstream application stage of the paper's
// framework (Fig. 1: "Error Repair / Outlier Detection", after Qiu et al.,
// DASFAA 2018 — reference [7]): turning verified approximate dependencies
// and their minimal removal sets into actionable artifacts —
//
//   - repair suggestions: for each tuple in an AOC's removal set, the range
//     of right-side values that would make the tuple consistent with the
//     kept tuples of its equivalence class;
//   - suspicion ranking: tuples flagged by many independent dependencies'
//     removal sets are the strongest outlier/error candidates.
package repair

import (
	"sort"

	"aod/internal/dataset"
	"aod/internal/partition"
)

// Suggestion is a repair interval for one removed tuple with respect to an
// AOC X: A ∼ B: replacing the tuple's B-value with any value between the
// bounds (inclusive) removes all of its swaps with the kept tuples.
type Suggestion struct {
	// Row is the removed tuple.
	Row int32
	// LoRow is a kept tuple whose B-value is the lower bound, or -1 when
	// the interval is unbounded below.
	LoRow int32
	// HiRow is a kept tuple whose B-value is the upper bound, or -1 when
	// the interval is unbounded above.
	HiRow int32
}

// ForOC computes repair suggestions for an AOC's removal set. ctx is the
// context partition Π_X; a and b are the OC's column indexes into tbl;
// removed is the (minimal) removal set as produced by the optimal validator.
// Suggestions are returned in ascending row order.
func ForOC(tbl *dataset.Table, ctx *partition.Stripped, a, b int, removed []int32) []Suggestion {
	ra, rb := tbl.Column(a).Ranks(), tbl.Column(b).Ranks()
	dead := make(map[int32]bool, len(removed))
	for _, r := range removed {
		dead[r] = true
	}
	var out []Suggestion
	for ci, nc := 0, ctx.NumClasses(); ci < nc; ci++ {
		cls := ctx.Class(ci)
		var removedHere []int32
		for _, row := range cls {
			if dead[row] {
				removedHere = append(removedHere, row)
			}
		}
		if len(removedHere) == 0 {
			continue
		}
		// Kept rows sorted by A-rank; swap-freeness makes B non-decreasing
		// across strictly increasing A.
		var kept []int32
		for _, row := range cls {
			if !dead[row] {
				kept = append(kept, row)
			}
		}
		sort.Slice(kept, func(i, j int) bool {
			if ra[kept[i]] != ra[kept[j]] {
				return ra[kept[i]] < ra[kept[j]]
			}
			return rb[kept[i]] < rb[kept[j]]
		})
		for _, r := range removedHere {
			s := Suggestion{Row: r, LoRow: -1, HiRow: -1}
			// Lower bound: the max-B kept row with strictly smaller A.
			// Upper bound: the min-B kept row with strictly larger A.
			for _, k := range kept {
				switch {
				case ra[k] < ra[r]:
					if s.LoRow < 0 || rb[k] > rb[s.LoRow] {
						s.LoRow = k
					}
				case ra[k] > ra[r]:
					if s.HiRow < 0 || rb[k] < rb[s.HiRow] {
						s.HiRow = k
					}
				}
			}
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Row < out[j].Row })
	return out
}

// Suspicion counts how many removal sets flag a row.
type Suspicion struct {
	Row  int32
	Hits int
}

// Suspicions aggregates removal sets into a ranking of suspect rows, most
// flagged first (ties by ascending row id). Rows flagged once are included;
// callers typically filter by a minimum hit count.
func Suspicions(removalSets [][]int32) []Suspicion {
	counts := make(map[int32]int)
	for _, set := range removalSets {
		for _, row := range set {
			counts[row]++
		}
	}
	out := make([]Suspicion, 0, len(counts))
	for row, hits := range counts {
		out = append(out, Suspicion{Row: row, Hits: hits})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Hits != out[j].Hits {
			return out[i].Hits > out[j].Hits
		}
		return out[i].Row < out[j].Row
	})
	return out
}
