package validate

import (
	"fmt"
	"math/rand"
	"testing"

	"aod/internal/dataset"
)

// Empirical checks of the order-dependency axioms of Szlichta, Godfrey &
// Gryz (PVLDB 2012 — reference [12] of the paper) against the validators on
// random instances. These are laws of the *semantics*; a validator bug that
// broke soundness would almost surely break one of them.

func axiomTable(rng *rand.Rand, rows, attrs int) *dataset.Table {
	b := dataset.NewBuilder()
	for c := 0; c < attrs; c++ {
		vals := make([]int64, rows)
		for i := range vals {
			vals[i] = int64(rng.Intn(2 + rng.Intn(5)))
		}
		b.AddInts(fmt.Sprintf("c%d", c), vals)
	}
	tbl, err := b.Build()
	if err != nil {
		panic(err)
	}
	return tbl
}

func randList(rng *rand.Rand, attrs, maxLen int) []int {
	perm := rng.Perm(attrs)
	return perm[:1+rng.Intn(maxLen)]
}

// Reflexivity: X ↦ X' holds for every prefix X' of X.
func TestAxiomReflexivity(t *testing.T) {
	rng := rand.New(rand.NewSource(700))
	for iter := 0; iter < 200; iter++ {
		tbl := axiomTable(rng, 2+rng.Intn(25), 3)
		x := randList(rng, 3, 3)
		for p := 0; p <= len(x); p++ {
			if ok, w := ExactListOD(tbl, x, x[:p]); !ok {
				t.Fatalf("iter %d: reflexivity violated: %v ↦ %v (witness %v)", iter, x, x[:p], w)
			}
		}
	}
}

// Transitivity: X ↦ Y and Y ↦ Z imply X ↦ Z.
func TestAxiomTransitivity(t *testing.T) {
	rng := rand.New(rand.NewSource(701))
	checked := 0
	for iter := 0; iter < 2000 && checked < 150; iter++ {
		tbl := axiomTable(rng, 2+rng.Intn(20), 4)
		x := randList(rng, 4, 2)
		y := randList(rng, 4, 2)
		z := randList(rng, 4, 2)
		xy, _ := ExactListOD(tbl, x, y)
		yz, _ := ExactListOD(tbl, y, z)
		if !xy || !yz {
			continue
		}
		checked++
		if ok, w := ExactListOD(tbl, x, z); !ok {
			t.Fatalf("iter %d: transitivity violated: %v↦%v, %v↦%v but not %v↦%v (witness %v)",
				iter, x, y, y, z, x, z, w)
		}
	}
	if checked < 50 {
		t.Fatalf("only %d transitive premises found; workload too sparse", checked)
	}
}

// Decomposition: X ↦ Y implies the order compatibility X ∼ Y
// (OD ≡ OC + OFD, Sec. 2.2).
func TestAxiomODImpliesOC(t *testing.T) {
	rng := rand.New(rand.NewSource(702))
	checked := 0
	for iter := 0; iter < 1500 && checked < 150; iter++ {
		tbl := axiomTable(rng, 2+rng.Intn(20), 3)
		x := randList(rng, 3, 2)
		y := randList(rng, 3, 2)
		if ok, _ := ExactListOD(tbl, x, y); !ok {
			continue
		}
		checked++
		if !ExactListOC(tbl, x, y) {
			t.Fatalf("iter %d: %v ↦ %v holds but %v ∼ %v does not", iter, x, y, x, y)
		}
	}
	if checked < 50 {
		t.Fatalf("only %d OD premises found", checked)
	}
}

// Prefix: X ↦ Y implies X ↦ Y' for every prefix Y' of Y.
func TestAxiomPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(703))
	checked := 0
	for iter := 0; iter < 1500 && checked < 150; iter++ {
		tbl := axiomTable(rng, 2+rng.Intn(20), 4)
		x := randList(rng, 4, 2)
		y := randList(rng, 4, 3)
		if ok, _ := ExactListOD(tbl, x, y); !ok {
			continue
		}
		checked++
		for p := 0; p <= len(y); p++ {
			if ok, _ := ExactListOD(tbl, x, y[:p]); !ok {
				t.Fatalf("iter %d: %v ↦ %v holds but not for prefix %v", iter, x, y, y[:p])
			}
		}
	}
	if checked < 50 {
		t.Fatalf("only %d premises found", checked)
	}
}

// Normalization/augmentation flavour: X ↦ Y implies XZ ↦ Y for any Z
// appended to the left list (a finer left order can only preserve the OD).
func TestAxiomLeftAugmentation(t *testing.T) {
	rng := rand.New(rand.NewSource(704))
	checked := 0
	for iter := 0; iter < 1500 && checked < 150; iter++ {
		tbl := axiomTable(rng, 2+rng.Intn(20), 4)
		x := randList(rng, 4, 2)
		y := randList(rng, 4, 2)
		if ok, _ := ExactListOD(tbl, x, y); !ok {
			continue
		}
		checked++
		// Append an arbitrary attribute to X.
		z := rng.Intn(4)
		xz := append(append([]int{}, x...), z)
		if ok, w := ExactListOD(tbl, xz, y); !ok {
			t.Fatalf("iter %d: %v ↦ %v holds but %v ↦ %v does not (witness %v)",
				iter, x, y, xz, y, w)
		}
	}
	if checked < 50 {
		t.Fatalf("only %d premises found", checked)
	}
}

// Symmetry of ∼: X ∼ Y iff Y ∼ X.
func TestAxiomOCSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(705))
	for iter := 0; iter < 300; iter++ {
		tbl := axiomTable(rng, 2+rng.Intn(20), 3)
		x := randList(rng, 3, 2)
		y := randList(rng, 3, 2)
		if ExactListOC(tbl, x, y) != ExactListOC(tbl, y, x) {
			t.Fatalf("iter %d: OC symmetry violated for %v, %v", iter, x, y)
		}
	}
}
