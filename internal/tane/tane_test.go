package tane

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"aod/internal/dataset"
	"aod/internal/lattice"
)

func randomTable(rng *rand.Rand, rows, attrs, domain int) *dataset.Table {
	b := dataset.NewBuilder()
	for c := 0; c < attrs; c++ {
		vals := make([]int64, rows)
		for i := range vals {
			vals[i] = int64(rng.Intn(domain))
		}
		b.AddInts(fmt.Sprintf("c%d", c), vals)
	}
	tbl, err := b.Build()
	if err != nil {
		panic(err)
	}
	return tbl
}

func fdKeySet(r *Result) map[string]float64 {
	m := make(map[string]float64, len(r.FDs))
	for _, fd := range r.FDs {
		m[fmt.Sprintf("%d->%d", uint64(fd.LHS), fd.RHS)] = fd.Error
	}
	return m
}

func TestDifferentialAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	thresholds := []float64{0, 0.1, 0.3}
	iters := 80
	if testing.Short() {
		iters = 20
	}
	for iter := 0; iter < iters; iter++ {
		rows := 2 + rng.Intn(20)
		attrs := 2 + rng.Intn(4)
		tbl := randomTable(rng, rows, attrs, 2+rng.Intn(4))
		eps := thresholds[iter%len(thresholds)]
		cfg := Config{Threshold: eps}
		got, err := Discover(tbl, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ReferenceDiscover(tbl, cfg)
		if err != nil {
			t.Fatal(err)
		}
		g, w := fdKeySet(got), fdKeySet(want)
		if len(g) != len(w) {
			t.Fatalf("iter %d (ε=%.1f rows=%d attrs=%d): %d FDs, reference %d\ngot %v\nwant %v",
				iter, eps, rows, attrs, len(g), len(w), got.FDs, want.FDs)
		}
		for k, e := range w {
			ge, ok := g[k]
			if !ok {
				t.Fatalf("iter %d: missing FD %s", iter, k)
			}
			if math.Abs(ge-e) > 1e-9 {
				t.Fatalf("iter %d: FD %s error %g, want %g", iter, k, ge, e)
			}
		}
	}
}

func TestExactFDsOnKnownTable(t *testing.T) {
	// b = a/2 (FD a→b), c random: a→b must be found, nothing determines c.
	rng := rand.New(rand.NewSource(8))
	a := make([]int64, 60)
	bb := make([]int64, 60)
	cc := make([]int64, 60)
	for i := range a {
		a[i] = int64(rng.Intn(20))
		bb[i] = a[i] / 2
		cc[i] = int64(rng.Intn(50))
	}
	tbl, err := dataset.NewBuilder().AddInts("a", a).AddInts("b", bb).AddInts("c", cc).Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Discover(tbl, Config{Threshold: 0})
	if err != nil {
		t.Fatal(err)
	}
	foundAB := false
	for _, fd := range res.FDs {
		if fd.LHS == lattice.NewAttrSet(0) && fd.RHS == 1 {
			foundAB = true
			if fd.Error != 0 {
				t.Errorf("a→b error = %g, want 0", fd.Error)
			}
		}
		if fd.RHS == 2 && fd.LHS.Card() < 2 {
			t.Errorf("spurious small FD onto random column: %v", fd)
		}
	}
	if !foundAB {
		t.Errorf("a→b not found; FDs: %v", res.FDs)
	}
}

func TestMinimalityNoRedundantSupersets(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for iter := 0; iter < 30; iter++ {
		tbl := randomTable(rng, 2+rng.Intn(25), 4, 3)
		res, err := Discover(tbl, Config{Threshold: 0.2})
		if err != nil {
			t.Fatal(err)
		}
		for i, fd1 := range res.FDs {
			for j, fd2 := range res.FDs {
				if i == j || fd1.RHS != fd2.RHS {
					continue
				}
				if fd1.LHS != fd2.LHS && fd2.LHS.Contains(fd1.LHS) {
					t.Fatalf("iter %d: %v subsumes %v", iter, fd1, fd2)
				}
			}
		}
	}
}

func TestMaxLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	tbl := randomTable(rng, 30, 5, 2)
	res, err := Discover(tbl, Config{Threshold: 0, MaxLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, fd := range res.FDs {
		if fd.LHS.Card() > 1 {
			t.Errorf("FD %v exceeds MaxLevel 2", fd)
		}
	}
	ref, err := ReferenceDiscover(tbl, Config{Threshold: 0, MaxLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FDs) != len(ref.FDs) {
		t.Errorf("MaxLevel: %d FDs, reference %d", len(res.FDs), len(ref.FDs))
	}
}

func TestConfigErrors(t *testing.T) {
	tbl := randomTable(rand.New(rand.NewSource(1)), 5, 2, 2)
	if _, err := Discover(tbl, Config{Threshold: -1}); err == nil {
		t.Error("want error for negative threshold")
	}
	if _, err := Discover(tbl, Config{Threshold: 2}); err == nil {
		t.Error("want error for threshold > 1")
	}
	wide := dataset.NewBuilder()
	for c := 0; c < 65; c++ {
		wide.AddInts(fmt.Sprintf("c%d", c), []int64{1})
	}
	wt, _ := wide.Build()
	if _, err := Discover(wt, Config{}); err == nil {
		t.Error("want error for too many attributes")
	}
	if _, err := ReferenceDiscover(wt, Config{}); err == nil {
		t.Error("reference: want error for too many attributes")
	}
}

func TestTimeLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tbl := randomTable(rng, 5000, 12, 4)
	res, err := Discover(tbl, Config{Threshold: 0.2, TimeLimit: time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Skip("machine too fast; skipping")
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	tbl := randomTable(rng, 40, 5, 3)
	r1, _ := Discover(tbl, Config{Threshold: 0.1})
	r2, _ := Discover(tbl, Config{Threshold: 0.1})
	if len(r1.FDs) != len(r2.FDs) {
		t.Fatal("non-deterministic FD count")
	}
	for i := range r1.FDs {
		if r1.FDs[i] != r2.FDs[i] {
			t.Fatalf("FD %d differs: %v vs %v", i, r1.FDs[i], r2.FDs[i])
		}
	}
}

func TestFDFormat(t *testing.T) {
	fd := FD{LHS: lattice.NewAttrSet(0, 2), RHS: 1, Error: 0.5}
	if got := fd.String(); got != "{0,2} -> 1 (e=0.5000)" {
		t.Errorf("String = %q", got)
	}
	if got := fd.Format([]string{"a", "b", "c"}); got != "{a,c} -> b (e=0.5000)" {
		t.Errorf("Format = %q", got)
	}
}

func TestStatsPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tbl := randomTable(rng, 30, 4, 3)
	res, err := Discover(tbl, Config{Threshold: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if res.LevelsProcessed == 0 || res.NodesProcessed == 0 || res.Candidates == 0 {
		t.Errorf("stats not populated: %+v", res)
	}
	if res.TotalTime <= 0 {
		t.Error("TotalTime not measured")
	}
}
