package load

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"time"
)

// Arrival selects the arrival process of the open-loop schedule.
type Arrival string

const (
	// ArrivalPoisson spaces requests by exponential interarrival gaps —
	// memoryless production-shaped traffic with natural bursts.
	ArrivalPoisson Arrival = "poisson"
	// ArrivalFixed spaces requests exactly 1/rate apart — a metronome, useful
	// when isolating the server's own variance from arrival variance.
	ArrivalFixed Arrival = "fixed"
)

// Offsets generates the arrival schedule: the time offset of every request
// from the start of the run, for the given mean rate (requests/second) over
// duration. Poisson gaps are drawn from rng (deterministic per seed); fixed
// gaps consume no randomness. The schedule is precomputed so that planning is
// independent of execution — the open-loop property starts here: nothing
// about a slow server can feed back into when the next request is due.
func Offsets(arrival Arrival, rate float64, duration time.Duration, rng *rand.Rand) []time.Duration {
	if rate <= 0 || duration <= 0 {
		return nil
	}
	var offs []time.Duration
	switch arrival {
	case ArrivalFixed:
		interval := float64(time.Second) / rate
		for i := 0; ; i++ {
			at := time.Duration(float64(i+1) * interval)
			if at > duration {
				break
			}
			offs = append(offs, at)
		}
	default: // Poisson
		var at float64
		for {
			// Exponential gap with mean 1/rate; 1-U avoids log(0).
			gap := -math.Log(1-rng.Float64()) / rate * float64(time.Second)
			at += gap
			if time.Duration(at) > duration {
				break
			}
			offs = append(offs, time.Duration(at))
		}
	}
	return offs
}

// Clock abstracts the scheduler's time source so the open-loop contract is
// testable against a fake clock: Now anchors the schedule, SleepUntil parks
// the scheduler until an absolute deadline (returning immediately if it is
// already past).
type Clock interface {
	Now() time.Time
	SleepUntil(t time.Time)
}

// RealClock is the wall-clock Clock used outside tests.
type RealClock struct{}

// Now returns time.Now().
func (RealClock) Now() time.Time { return time.Now() }

// SleepUntil sleeps until t (no-op if t has passed).
func (RealClock) SleepUntil(t time.Time) {
	if d := time.Until(t); d > 0 {
		time.Sleep(d)
	}
}

// RunOpenLoop fires fire(i) for every schedule offset at start+offsets[i],
// each in its own goroutine, and returns once the last arrival has been
// dispatched. The returned WaitGroup drains the in-flight fires.
//
// This is the open-loop contract: the scheduler NEVER waits on a fire. A
// stalled server stalls the fire goroutines, not the arrival process — late
// arrivals are dispatched immediately (SleepUntil of a past deadline returns
// at once), so offered load stays at the configured rate and queueing delay
// becomes visible in the latency measurements instead of silently thinning
// the traffic. Canceling ctx stops dispatching further arrivals.
func RunOpenLoop(ctx context.Context, clock Clock, offsets []time.Duration, fire func(i int)) (dispatched int, wg *sync.WaitGroup) {
	wg = &sync.WaitGroup{}
	start := clock.Now()
	for i, off := range offsets {
		if ctx.Err() != nil {
			break
		}
		clock.SleepUntil(start.Add(off))
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fire(i)
		}(i)
		dispatched++
	}
	return dispatched, wg
}
