package dataset

import (
	"math"
	"slices"
	"sort"
)

// radixCutoff is the slice length below which an LSD radix sort loses to a
// comparison sort's lower constant factor (mirroring internal/validate's
// per-class cutoff).
const radixCutoff = 64

// radixSortUint64 sorts v ascending with an LSD byte-radix, skipping digits
// that are constant across the slice (dense value ranges rarely touch the
// high bytes). It is the cold-start analogue of the validators' per-class
// radix: column construction sorts each column's distinct values once, and
// on wide tables that comparison sort dominated dataset build time.
func radixSortUint64(v []uint64) {
	n := len(v)
	tmp := make([]uint64, n)
	src, dst := v, tmp
	swapped := false
	var maxKey uint64
	for _, x := range v {
		if x > maxKey {
			maxKey = x
		}
	}
	var cnt [256]int
	for shift := uint(0); shift < 64 && maxKey>>shift != 0; shift += 8 {
		clear(cnt[:])
		for _, x := range src {
			cnt[uint8(x>>shift)]++
		}
		if cnt[uint8(src[0]>>shift)] == n {
			continue // every key shares this digit: nothing to move
		}
		sum := 0
		for d := range cnt {
			c := cnt[d]
			cnt[d] = sum
			sum += c
		}
		for _, x := range src {
			d := uint8(x >> shift)
			dst[cnt[d]] = x
			cnt[d]++
		}
		src, dst = dst, src
		swapped = !swapped
	}
	if swapped {
		copy(v, src)
	}
}

// sortInt64s sorts ascending; the sign bit is flipped so the unsigned radix
// order matches signed order.
func sortInt64s(v []int64) {
	if len(v) < radixCutoff {
		slices.Sort(v)
		return
	}
	u := make([]uint64, len(v))
	for i, x := range v {
		u[i] = uint64(x) ^ (1 << 63)
	}
	radixSortUint64(u)
	for i, x := range u {
		v[i] = int64(x ^ (1 << 63))
	}
}

// sortFloat64s sorts ascending under the column order (the caller excludes
// NaNs). The IEEE-754 bit pattern is reflected into a monotone unsigned key:
// non-negative floats set the sign bit, negative floats flip all bits.
func sortFloat64s(v []float64) {
	if len(v) < radixCutoff {
		sort.Float64s(v)
		return
	}
	u := make([]uint64, len(v))
	for i, f := range v {
		b := math.Float64bits(f)
		if b&(1<<63) != 0 {
			b = ^b
		} else {
			b |= 1 << 63
		}
		u[i] = b
	}
	radixSortUint64(u)
	for i, b := range u {
		if b&(1<<63) != 0 {
			b &^= 1 << 63
		} else {
			b = ^b
		}
		v[i] = math.Float64frombits(b)
	}
}
