package service

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"aod"
)

// multiLevelDataset is random data with enough attributes that discovery
// crosses several lattice levels (the streaming tests need level boundaries
// to observe).
func multiLevelDataset(t *testing.T, rows, cols int) *aod.Dataset {
	t.Helper()
	return slowDataset(t, rows, cols)
}

// TestJobStreamDeliversGrowingPartials is the service-level streaming e2e: a
// slowed multi-level job delivers at least one partial-level event before
// completion, partial reports grow monotonically, GET /jobs/{id}-style views
// expose the partials mid-run, and the stream closes exactly when the job
// completes.
func TestJobStreamDeliversGrowingPartials(t *testing.T) {
	type probe struct {
		levels    int
		partialOK bool
		estimates []int64
	}
	var mu sync.Mutex
	p := probe{partialOK: true}
	cfg := Config{Workers: 1}
	cfg.levelHook = func(j *Job) {
		v := j.view(true)
		mu.Lock()
		p.levels++
		if v.State == JobRunning && (v.Partial == nil || v.Progress == nil) {
			p.partialOK = false
		}
		if v.State == JobRunning {
			p.estimates = append(p.estimates, v.CostEstimate)
		}
		mu.Unlock()
		time.Sleep(5 * time.Millisecond) // slow the job so subscribers can watch
	}
	s := New(cfg)
	defer s.Close()

	info, _, err := s.Registry().Add("ml", multiLevelDataset(t, 300, 6))
	if err != nil {
		t.Fatal(err)
	}
	view, err := s.Submit(info.ID, aod.Options{Threshold: 0.2, IncludeOFDs: true})
	if err != nil {
		t.Fatal(err)
	}
	events, cancel, err := s.Stream(view.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	var seen []StreamEvent
	for ev := range events {
		if ev.Type != "level" {
			t.Fatalf("unexpected event type %q", ev.Type)
		}
		if ev.Report == nil || ev.Progress == nil {
			t.Fatalf("level event without partial report/progress: %+v", ev)
		}
		if n := len(seen); n > 0 {
			prevP, curP := seen[n-1].Progress, ev.Progress
			if curP.Level <= prevP.Level {
				t.Fatalf("levels not increasing: %d after %d", curP.Level, prevP.Level)
			}
			if len(ev.Report.OCs) < len(seen[n-1].Report.OCs) {
				t.Fatalf("partial report shrank at level %d", curP.Level)
			}
		}
		seen = append(seen, ev)
	}
	if len(seen) == 0 {
		t.Fatal("stream closed without a single level event")
	}

	final := waitState(t, s, view.ID, JobDone)
	if final.Report == nil {
		t.Fatal("done job has no report")
	}
	lastPartial := seen[len(seen)-1].Report
	if len(lastPartial.OCs) != len(final.Report.OCs) {
		t.Errorf("last partial has %d OCs, final report %d", len(lastPartial.OCs), len(final.Report.OCs))
	}
	mu.Lock()
	defer mu.Unlock()
	if !p.partialOK {
		t.Error("running job view lacked Partial/Progress after a level event")
	}
	for i := 1; i < len(p.estimates); i++ {
		if p.estimates[i] > p.estimates[i-1] {
			t.Errorf("cost estimate grew mid-run: %v", p.estimates)
		}
	}
	if final.CostEstimate != 0 {
		t.Errorf("terminal job still advertises cost %d", final.CostEstimate)
	}
}

// TestJobStreamHTTP reads the NDJSON endpoint end to end: level events
// before the done event, application/x-ndjson content type, and a final
// "done" event carrying the report.
func TestJobStreamHTTP(t *testing.T) {
	cfg := Config{Workers: 1}
	cfg.levelHook = func(*Job) { time.Sleep(5 * time.Millisecond) }
	s := New(cfg)
	defer s.Close()
	srv := httptest.NewServer(NewHandler(s, HandlerConfig{}))
	defer srv.Close()

	// Upload a CSV wide enough for a multi-level run.
	var sb strings.Builder
	cols := 5
	for c := 0; c < cols; c++ {
		if c > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "c%d", c)
	}
	sb.WriteByte('\n')
	for r := 0; r < 200; r++ {
		for c := 0; c < cols; c++ {
			if c > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%d", (r*7+c*13)%5)
		}
		sb.WriteByte('\n')
	}
	resp, err := http.Post(srv.URL+"/datasets", "text/csv", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	var info DatasetInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	body := fmt.Sprintf(`{"datasetId":%q,"options":{"threshold":0.2}}`, info.ID)
	resp, err = http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var job JobView
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(srv.URL + "/jobs/" + job.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	var events []StreamEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		var ev StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) < 2 {
		t.Fatalf("want at least one level event plus done, got %d events", len(events))
	}
	for _, ev := range events[:len(events)-1] {
		if ev.Type != "level" {
			t.Errorf("mid-stream event type %q", ev.Type)
		}
	}
	last := events[len(events)-1]
	if last.Type != "done" || last.State != JobDone || last.Report == nil {
		t.Errorf("bad terminal event: type=%q state=%q report=%v", last.Type, last.State, last.Report != nil)
	}

	// A stream opened on an already-terminal job yields just the done event.
	resp, err = http.Get(srv.URL + "/jobs/" + job.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lines []string
	sc = bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if len(lines) != 1 || !strings.Contains(lines[0], `"done"`) {
		t.Errorf("terminal-job stream: got %d lines %v", len(lines), lines)
	}
}

// TestJobStreamTerminatesOnCancel: canceling a running job closes its stream
// promptly, and the final state reads canceled.
func TestJobStreamTerminatesOnCancel(t *testing.T) {
	gateEntered := make(chan struct{})
	release := make(chan struct{})
	cfg := Config{Workers: 1}
	var once sync.Once
	cfg.levelHook = func(j *Job) {
		once.Do(func() { close(gateEntered) })
		select {
		case <-release:
		case <-j.ctx.Done(): // canceled mid-level: stop stalling the worker
		}
	}
	s := New(cfg)
	defer func() { close(release); s.Close() }()

	info, _, err := s.Registry().Add("ml", multiLevelDataset(t, 300, 6))
	if err != nil {
		t.Fatal(err)
	}
	view, err := s.Submit(info.ID, aod.Options{Threshold: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	events, cancel, err := s.Stream(view.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	<-gateEntered
	if _, err := s.Cancel(view.ID); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(10 * time.Second)
	for {
		select {
		case _, ok := <-events:
			if !ok {
				final := waitState(t, s, view.ID, JobCanceled)
				if final.Report != nil {
					t.Error("canceled job has a report")
				}
				return
			}
		case <-deadline:
			t.Fatal("stream did not close after cancellation")
		}
	}
}

// TestJobStreamClientDisconnect: dropping the HTTP request mid-stream
// detaches the subscription while the job runs to completion.
func TestJobStreamClientDisconnect(t *testing.T) {
	cfg := Config{Workers: 1}
	cfg.levelHook = func(*Job) { time.Sleep(5 * time.Millisecond) }
	s := New(cfg)
	defer s.Close()
	srv := httptest.NewServer(NewHandler(s, HandlerConfig{}))
	defer srv.Close()

	info, _, err := s.Registry().Add("ml", multiLevelDataset(t, 300, 6))
	if err != nil {
		t.Fatal(err)
	}
	view, err := s.Submit(info.ID, aod.Options{Threshold: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, stop := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "GET", srv.URL+"/jobs/"+view.ID+"/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := resp.Body.Read(buf); err != nil { // wait for the first byte
		t.Fatal(err)
	}
	stop() // disconnect mid-stream
	resp.Body.Close()

	final := waitState(t, s, view.ID, JobDone)
	if final.Report == nil {
		t.Fatal("job did not complete after client disconnect")
	}
	// The handler's deferred cancel must have detached the subscriber.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		j := s.jobs[view.ID]
		s.mu.Unlock()
		j.mu.Lock()
		n := len(j.subs)
		j.mu.Unlock()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d subscribers still attached after disconnect", n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestPriorityQueueSmallJobOvertakesLarge pins the size-aware scheduler: with
// one worker pinned by a running job, a small job submitted AFTER a large one
// still runs first, and the starved-large FIFO behaviour is gone.
func TestPriorityQueueSmallJobOvertakesLarge(t *testing.T) {
	entered := make(chan string, 8)
	release := make(chan struct{})
	cfg := Config{Workers: 1}
	var once sync.Once
	cfg.runGate = func(j *Job) {
		entered <- j.id
		once.Do(func() { <-release }) // only the first (blocker) job stalls
	}
	s := New(cfg)
	defer s.Close()

	blockerInfo, _, err := s.Registry().Add("blocker", smallDataset(t))
	if err != nil {
		t.Fatal(err)
	}
	largeInfo, _, err := s.Registry().Add("large", multiLevelDataset(t, 3000, 8))
	if err != nil {
		t.Fatal(err)
	}
	smallInfo, _, err := s.Registry().Add("small", multiLevelDataset(t, 40, 3))
	if err != nil {
		t.Fatal(err)
	}

	blocker, err := s.Submit(blockerInfo.ID, aod.Options{Threshold: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	first := <-entered // the blocker owns the worker and is stalled on the gate

	large, err := s.Submit(largeInfo.ID, aod.Options{Threshold: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	small, err := s.Submit(smallInfo.ID, aod.Options{Threshold: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if lv, _ := s.Job(large.ID); lv.CostEstimate <= small.CostEstimate {
		t.Fatalf("cost estimates inverted: large %d <= small %d", lv.CostEstimate, small.CostEstimate)
	}
	close(release)

	second, third := <-entered, <-entered
	if first != blocker.ID || second != small.ID || third != large.ID {
		t.Fatalf("execution order %v, want [%s %s %s] (small overtakes large)",
			[]string{first, second, third}, blocker.ID, small.ID, large.ID)
	}
	waitState(t, s, large.ID, JobDone)
}

// TestQueueFIFOAmongEqualCost: equal-cost jobs keep submission order — the
// tie-break that stops the priority queue from reordering identical work.
func TestQueueFIFOAmongEqualCost(t *testing.T) {
	entered := make(chan string, 8)
	release := make(chan struct{})
	cfg := Config{Workers: 1}
	var once sync.Once
	cfg.runGate = func(j *Job) {
		entered <- j.id
		once.Do(func() { <-release })
	}
	s := New(cfg)
	defer s.Close()

	info, _, err := s.Registry().Add("d", smallDataset(t))
	if err != nil {
		t.Fatal(err)
	}
	// Distinct thresholds defeat result-cache/single-flight sharing while
	// keeping every job's cost identical (same dataset, same levels).
	blocker, err := s.Submit(info.ID, aod.Options{Threshold: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	<-entered
	a, err := s.Submit(info.ID, aod.Options{Threshold: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Submit(info.ID, aod.Options{Threshold: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	close(release)
	if got := []string{<-entered, <-entered}; got[0] != a.ID || got[1] != b.ID {
		t.Fatalf("equal-cost order %v, want [%s %s]", got, a.ID, b.ID)
	}
	waitState(t, s, blocker.ID, JobDone)
	waitState(t, s, b.ID, JobDone)
}
