// Package validate implements the candidate-validation algorithms of the
// paper: exact order-compatibility (OC) and order-functional-dependency (OFD)
// checks, the quadratic iterative approximate-OC validator of Szlichta et al.
// that the paper improves upon (Algorithm 1), the paper's optimal LNDS-based
// validator (Algorithm 2, Theorems 3.3/3.4), the linear approximate-OFD
// validator of TANE [Huhtala et al. 1999], and the Section 3.3 extension to
// list-based approximate ODs.
//
// All validators take a context as a stripped partition (Π_X) plus
// rank-encoded columns; tuples in different context classes are independent
// (see the proof of Theorem 3.3), and stripped singleton classes can contain
// neither swaps nor splits, so operating on stripped partitions is exact.
//
// The hot path is allocation-free in steady state: per-class tuple orders
// come from an LSD radix sort over packed (A-rank, B-rank) keys held in
// Validator scratch (see radix.go), and LNDS reconstruction reuses a
// lis.Scratch. A comparison sort takes over below a small class-size cutoff.
package validate

import (
	"fmt"
	"math"
	"sync"

	"aod/internal/dataset"
	"aod/internal/lis"
	"aod/internal/partition"
)

// Options configures a validation call.
type Options struct {
	// Threshold is the approximation threshold ε ∈ [0, 1]: the candidate is
	// valid iff its approximation factor e = |minimal removal|/|r| ≤ ε.
	Threshold float64
	// CollectRemovals requests the removal-set row ids in Result.RemovalRows.
	CollectRemovals bool
	// ComputeFullError forces computation of the exact approximation factor
	// even after the threshold is exceeded (no early abort). The iterative
	// algorithm's "INVALID" early exit (Algorithm 1 line 14) is faithful to
	// the paper when this is false.
	ComputeFullError bool
}

// Result reports the outcome of validating one candidate.
type Result struct {
	// Valid is whether e ≤ ε.
	Valid bool
	// Removals is the size of the removal set found. For the optimal
	// validator this is the minimal removal set size; for the iterative one
	// it may overestimate. If the validator aborted early (threshold crossed
	// and !ComputeFullError), Removals is a lower bound.
	Removals int
	// Error is Removals/|r| (the approximation factor e, or its lower bound
	// after an early abort).
	Error float64
	// Aborted reports that validation stopped as soon as the threshold was
	// exceeded, so Removals/Error are lower bounds.
	Aborted bool
	// RemovalRows holds the rows of the removal set when requested and the
	// validation ran to completion.
	RemovalRows []int32
}

// removalBudget is the largest removal count still within the threshold,
// consistent with finish()'s validity test (the small epsilon absorbs float
// artifacts like 4.0/9*9 = 3.999…).
func removalBudget(threshold float64, n int) int {
	return int(math.Floor(threshold*float64(n) + 1e-9))
}

func finish(removals int, n int, opts Options, aborted bool, rows []int32) Result {
	e := float64(removals) / float64(n)
	return Result{
		Valid:       !aborted && e <= opts.Threshold+1e-12,
		Removals:    removals,
		Error:       e,
		Aborted:     aborted,
		RemovalRows: rows,
	}
}

// Validator holds reusable scratch buffers so discovery loops do not
// reallocate per candidate. A zero Validator is ready to use. Validators are
// not safe for concurrent use.
type Validator struct {
	// a, b, rows are the per-position projections of the current class in
	// sorted order (see sortClass).
	a, b []int32
	rows []int32
	// kv, kvTmp are the radix-sort key buffers (radix.go).
	kv, kvTmp []pairKV
	freq      []int32
	scan      scanScratch
	lnds      lis.Scratch
	// inv and alive are the iterative validator's per-class scratch: swap
	// counts (Fenwick-backed) and the greedy removal's liveness markers.
	inv   lis.InvScratch
	alive []bool
}

// New returns a Validator with empty scratch space.
func New() *Validator { return &Validator{} }

// ExactOC verifies the exact canonical OC X: A ∼ B (Def. 2.10) over the
// context partition ctx. It returns whether the OC holds and, when it does
// not, one witness swap (a pair of row ids violating Def. 2.5). Runtime is
// O(‖ctx‖ log m) from sorting within classes.
func (v *Validator) ExactOC(ctx *partition.Stripped, a, b *dataset.Column) (holds bool, witness [2]int32) {
	ra, rb := a.Ranks(), b.Ranks()
	for ci, nc := 0, ctx.NumClasses(); ci < nc; ci++ {
		v.sortClass(ctx.Class(ci), ra, rb, false, 0)
		// Swap exists iff some element's B is below the running max-B of all
		// strictly earlier A groups.
		maxPrev := int32(-1)     // max B over strictly earlier A-groups
		maxPrevRow := int32(-1)  // a row attaining it
		groupMax := int32(-1)    // max B within the current A-group
		groupMaxRow := int32(-1) // a row attaining it
		groupStartA := int32(-1)
		for i := range v.a {
			if v.a[i] != groupStartA {
				if groupMax > maxPrev {
					maxPrev, maxPrevRow = groupMax, groupMaxRow
				}
				groupStartA = v.a[i]
				groupMax, groupMaxRow = -1, -1
			}
			if v.b[i] < maxPrev {
				return false, [2]int32{maxPrevRow, v.rows[i]}
			}
			if v.b[i] > groupMax {
				groupMax, groupMaxRow = v.b[i], v.rows[i]
			}
		}
	}
	return true, [2]int32{-1, -1}
}

// collectRemoved appends the rows outside keep (ascending positions into the
// sorted class) to removed.
func (v *Validator) collectRemoved(m int, keep []int32, removed []int32) []int32 {
	k := 0
	for i := 0; i < m; i++ {
		if k < len(keep) && int(keep[k]) == i {
			k++
			continue
		}
		removed = append(removed, v.rows[i])
	}
	return removed
}

// OptimalAOC is Algorithm 2 of the paper: validate the approximate canonical
// OC X: A ∼ B in O(n log n) with a guaranteed-minimal removal set
// (Theorem 3.3). Per context class, tuples are ordered by [A asc, B asc] and
// the tuples outside one longest non-decreasing subsequence of the
// B-projection form the class's minimal removal set.
func (v *Validator) OptimalAOC(ctx *partition.Stripped, a, b *dataset.Column, opts Options) Result {
	n := ctx.N
	budget := removalBudget(opts.Threshold, n)
	ra, rb := a.Ranks(), b.Ranks()
	removals := 0
	var removed []int32
	for ci, nc := 0, ctx.NumClasses(); ci < nc; ci++ {
		cls := ctx.Class(ci)
		v.sortClass(cls, ra, rb, false, 0)
		keep := v.lnds.LNDS(v.b)
		removals += len(cls) - len(keep)
		if opts.CollectRemovals {
			removed = v.collectRemoved(len(cls), keep, removed)
		}
		if !opts.ComputeFullError && !opts.CollectRemovals && removals > budget {
			return finish(removals, n, opts, true, nil)
		}
	}
	return finish(removals, n, opts, false, removed)
}

// OptimalAOD validates the approximate canonical OD X: A ↦ B (Section 3.3
// extension): tuples are ordered by A ascending with ties broken by B
// *descending*, which forces the LNDS solution to remove all splits as well
// as all swaps. The removal set remains minimal.
func (v *Validator) OptimalAOD(ctx *partition.Stripped, a, b *dataset.Column, opts Options) Result {
	n := ctx.N
	budget := removalBudget(opts.Threshold, n)
	ra, rb := a.Ranks(), b.Ranks()
	flip := int32(b.NumDistinct() - 1)
	removals := 0
	var removed []int32
	for ci, nc := 0, ctx.NumClasses(); ci < nc; ci++ {
		cls := ctx.Class(ci)
		v.sortClass(cls, ra, rb, true, flip)
		keep := v.lnds.LNDS(v.b)
		removals += len(cls) - len(keep)
		if opts.CollectRemovals {
			removed = v.collectRemoved(len(cls), keep, removed)
		}
		if !opts.ComputeFullError && !opts.CollectRemovals && removals > budget {
			return finish(removals, n, opts, true, nil)
		}
	}
	return finish(removals, n, opts, false, removed)
}

// SampledAOCEstimate cheaply estimates the approximation factor of the AOC
// X: A ∼ B by running the optimal validator on every stride-th tuple of each
// context class. Because any removal set for the full class restricts to a
// removal set for the sample, the estimate is (in expectation) a slight
// underestimate of the true factor; discovery uses it as a pre-filter in the
// hybrid-sampling mode inspired by Papenbrock & Naumann's hybrid FD
// discovery (reference [6], the paper's future-work direction), always
// confirming acceptances with a full validation.
//
// It returns the estimated approximation factor and the number of sampled
// tuples (0 when stride produces an empty sample, in which case the estimate
// is 0).
func (v *Validator) SampledAOCEstimate(ctx *partition.Stripped, a, b *dataset.Column, stride int) (float64, int) {
	if stride < 1 {
		stride = 1
	}
	ra, rb := a.Ranks(), b.Ranks()
	removals, sampled := 0, 0
	for ci, nc := 0, ctx.NumClasses(); ci < nc; ci++ {
		cls := ctx.Class(ci)
		m := (len(cls) + stride - 1) / stride
		if m < 2 {
			sampled += m
			continue
		}
		v.grow(m)
		var maxKey uint64
		for i := 0; i < m; i++ {
			row := cls[i*stride]
			k := uint64(uint32(ra[row]))<<32 | uint64(uint32(rb[row]))
			v.kv[i] = pairKV{key: k, row: row}
			if k > maxKey {
				maxKey = k
			}
		}
		v.sortPairs(m, maxKey)
		v.decodePairs(m, false, 0)
		keep := v.lnds.LNDS(v.b)
		removals += m - len(keep)
		sampled += m
	}
	// Singleton-stripped rows are swap-free; scale the denominator the same
	// way the full validator does (per-table rows), approximated by the
	// sampled fraction of the table.
	denom := sampled + (ctx.N-ctx.Size()+stride-1)/stride
	if denom == 0 {
		return 0, 0
	}
	return float64(removals) / float64(denom), sampled
}

// ExactOFD verifies the exact OFD X: [] ↦ A (Def. 2.11): A must be constant
// within every class of the context partition. Runtime O(‖ctx‖).
func ExactOFD(ctx *partition.Stripped, a *dataset.Column) bool {
	ra := a.Ranks()
	for ci, nc := 0, ctx.NumClasses(); ci < nc; ci++ {
		cls := ctx.Class(ci)
		first := ra[cls[0]]
		for _, row := range cls[1:] {
			if ra[row] != first {
				return false
			}
		}
	}
	return true
}

// ApproxOFD validates the approximate OFD X: [] ↦ A using the linear-time g3
// measure of [Huhtala et al. 1999] (reference [3] of the paper): within each
// context class keep the most frequent A-value and remove the rest; the total
// removed over all classes is the (minimal) removal-set size.
func ApproxOFD(ctx *partition.Stripped, a *dataset.Column, opts Options) Result {
	return New().ApproxOFD(ctx, a, opts)
}

// ApproxOFD is the scratch-reusing form of the package-level ApproxOFD: the
// per-value frequency array is kept across calls so discovery loops do not
// allocate per candidate.
func (v *Validator) ApproxOFD(ctx *partition.Stripped, a *dataset.Column, opts Options) Result {
	n := ctx.N
	ra := a.Ranks()
	removals := 0
	var removed []int32
	if cap(v.freq) < a.NumDistinct() {
		v.freq = make([]int32, a.NumDistinct())
	}
	freq := v.freq[:a.NumDistinct()]
	for ci, nc := 0, ctx.NumClasses(); ci < nc; ci++ {
		cls := ctx.Class(ci)
		var best int32
		var bestRank int32 = -1
		for _, row := range cls {
			r := ra[row]
			freq[r]++
			if freq[r] > best {
				best, bestRank = freq[r], r
			}
		}
		removals += len(cls) - int(best)
		if opts.CollectRemovals {
			for _, row := range cls {
				if ra[row] != bestRank {
					removed = append(removed, row)
				}
			}
		}
		// Reset only the touched counters.
		for _, row := range cls {
			freq[ra[row]] = 0
		}
	}
	return finish(removals, n, opts, false, removed)
}

// deadPool recycles the removed-row markers of the Verify helpers, so the
// quadratic diagnostics mark removals in a flat []bool instead of allocating
// a map per call.
var deadPool = sync.Pool{New: func() any { return new([]bool) }}

// acquireDead returns a length-n marker with removed rows set. Row ids
// outside [0, n) are ignored, matching the old map probe's tolerance of
// foreign ids. Release with releaseDead so the cleared buffer can be reused.
func acquireDead(n int, removed []int32) *[]bool {
	dp := deadPool.Get().(*[]bool)
	if cap(*dp) < n {
		*dp = make([]bool, n)
	}
	*dp = (*dp)[:n]
	for _, r := range removed {
		if r >= 0 && int(r) < n {
			(*dp)[r] = true
		}
	}
	return dp
}

func releaseDead(dp *[]bool, removed []int32) {
	for _, r := range removed {
		if r >= 0 && int(r) < len(*dp) {
			(*dp)[r] = false
		}
	}
	deadPool.Put(dp)
}

// VerifyNoSwaps is a test/diagnostic helper: it re-checks from first
// principles that, after deleting the rows in removed, no swap with respect
// to X: A ∼ B remains. It is quadratic and intended for small inputs.
func VerifyNoSwaps(ctx *partition.Stripped, a, b *dataset.Column, removed []int32) error {
	dp := acquireDead(ctx.N, removed)
	defer releaseDead(dp, removed)
	dead := *dp
	ra, rb := a.Ranks(), b.Ranks()
	for ci, nc := 0, ctx.NumClasses(); ci < nc; ci++ {
		cls := ctx.Class(ci)
		for i := 0; i < len(cls); i++ {
			if dead[cls[i]] {
				continue
			}
			for j := i + 1; j < len(cls); j++ {
				if dead[cls[j]] {
					continue
				}
				s, t := cls[i], cls[j]
				if (ra[s] < ra[t] && rb[t] < rb[s]) || (ra[t] < ra[s] && rb[s] < rb[t]) {
					return fmt.Errorf("swap remains between rows %d and %d", s, t)
				}
			}
		}
	}
	return nil
}

// VerifyNoSwapsOrSplits re-checks that after deleting the rows in removed,
// the canonical OD X: A ↦ B holds (no swaps and no splits). Quadratic;
// diagnostics only.
func VerifyNoSwapsOrSplits(ctx *partition.Stripped, a, b *dataset.Column, removed []int32) error {
	if err := VerifyNoSwaps(ctx, a, b, removed); err != nil {
		return err
	}
	dp := acquireDead(ctx.N, removed)
	defer releaseDead(dp, removed)
	dead := *dp
	ra, rb := a.Ranks(), b.Ranks()
	for ci, nc := 0, ctx.NumClasses(); ci < nc; ci++ {
		cls := ctx.Class(ci)
		for i := 0; i < len(cls); i++ {
			if dead[cls[i]] {
				continue
			}
			for j := i + 1; j < len(cls); j++ {
				if dead[cls[j]] {
					continue
				}
				s, t := cls[i], cls[j]
				if ra[s] == ra[t] && rb[s] != rb[t] {
					return fmt.Errorf("split remains between rows %d and %d", s, t)
				}
			}
		}
	}
	return nil
}
