package core

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"time"

	"aod/internal/dataset"
	"aod/internal/lattice"
	"aod/internal/partition"
	"aod/internal/validate"
)

// DiscoverParallel runs the same discovery as Discover but validates the
// candidates of each lattice level concurrently across a worker pool. This
// is the shared-memory analogue of the distributed extension the paper lists
// as future work (after Saxena, Golab & Ilyas, PVLDB 2019 — reference [8]):
// nodes of a level are independent given the previous level's state, so they
// partition cleanly across workers.
//
// The result is identical to Discover's (the merge re-establishes the
// sequential deterministic order); only wall-clock time differs. workers <= 0
// selects GOMAXPROCS.
func DiscoverParallel(tbl *dataset.Table, cfg Config, workers int) (*Result, error) {
	return DiscoverParallelContext(context.Background(), tbl, cfg, workers)
}

// DiscoverParallelContext is DiscoverParallel with cooperative cancellation:
// every worker polls the context between candidate validations, so a
// canceled run frees its workers within one validation's latency. As in
// DiscoverContext, cancellation returns the partial result with
// Stats.Canceled set and a nil error.
func DiscoverParallelContext(ctx context.Context, tbl *dataset.Table, cfg Config, workers int) (*Result, error) {
	numAttrs := tbl.NumCols()
	if err := cfg.Validate(numAttrs); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return DiscoverContext(ctx, tbl, cfg)
	}
	start := time.Now()
	eps := cfg.effectiveThreshold()

	res := &Result{}
	st := &res.Stats
	st.OCsFoundPerLevel = make([]int, numAttrs+1)
	st.OFDsFoundPerLevel = make([]int, numAttrs+1)
	var deadline time.Time
	if cfg.TimeLimit > 0 {
		deadline = start.Add(cfg.TimeLimit)
	}

	arena := partition.NewArena() // shared: Arena is concurrency-safe
	singles := make([]*partition.Stripped, numAttrs)
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for a := 0; a < numAttrs; a++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(a int) {
			defer wg.Done()
			defer func() { <-sem }()
			// Polled per column so cancellation skips the remainder of the
			// startup partitioning phase.
			if ctx.Err() != nil {
				return
			}
			singles[a] = partition.Single(tbl.Column(a))
		}(a)
	}
	wg.Wait()
	if ctx.Err() != nil {
		// Some singles may be nil; abort before anything touches them.
		st.Canceled = true
		st.TotalTime = time.Since(start)
		st.Rows = tbl.NumRows()
		st.Attrs = numAttrs
		return res, nil
	}

	l0 := lattice.Level0(tbl.NumRows(), numAttrs)
	cur := lattice.Level1(l0, tbl, singles)
	prev2, prev := (*lattice.Level)(nil), l0
	maxLevel := numAttrs
	if cfg.MaxLevel > 0 && cfg.MaxLevel < maxLevel {
		maxLevel = cfg.MaxLevel
	}

	for cur.Number <= maxLevel && len(cur.Nodes) > 0 {
		st.LevelsProcessed++
		if !deadline.IsZero() && time.Now().After(deadline) {
			st.TimedOut = true
			break
		}
		if ctx.Err() != nil {
			st.Canceled = true
			break
		}
		// Phase 1: materialize this level's parent partitions sequentially
		// safe — every node's Partition() only writes to itself once its
		// parents are materialized, and parents live on already-complete
		// levels. Parallel per node.
		materializeLevel(ctx, prev, arena, singles, workers)

		// Phase 2: validate candidates of all nodes concurrently. Each
		// worker owns a validator; per-node outputs are merged in node
		// order afterwards to preserve the sequential result order.
		type nodeOut struct {
			ocs        []OC
			ofds       []OFD
			candidates int
			stats      Stats
		}
		outs := make([]nodeOut, len(cur.Nodes))
		jobs := make(chan int)
		var wg2 sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg2.Add(1)
			go func() {
				defer wg2.Done()
				eng := &engine{
					ctx:      ctx,
					tbl:      tbl,
					cfg:      cfg,
					eps:      eps,
					numAttrs: numAttrs,
					v:        validate.New(),
					arena:    arena,
					singles:  singles,
					start:    start,
				}
				if cfg.TimeLimit > 0 {
					eng.deadline = deadline
				}
				for idx := range jobs {
					eng.res = &Result{}
					eng.res.Stats.OCsFoundPerLevel = make([]int, numAttrs+1)
					eng.res.Stats.OFDsFoundPerLevel = make([]int, numAttrs+1)
					c := eng.processNode(cur.Nodes[idx], prev, prev2)
					outs[idx] = nodeOut{
						ocs:        eng.res.OCs,
						ofds:       eng.res.OFDs,
						candidates: c,
						stats:      eng.res.Stats,
					}
				}
			}()
		}
		for idx := range cur.Nodes {
			jobs <- idx
		}
		close(jobs)
		wg2.Wait()

		candidates := 0
		for idx := range outs {
			o := &outs[idx]
			res.OCs = append(res.OCs, o.ocs...)
			res.OFDs = append(res.OFDs, o.ofds...)
			candidates += o.candidates
			st.NodesProcessed++
			st.OCCandidates += o.stats.OCCandidates
			st.OFDCandidates += o.stats.OFDCandidates
			st.OCSkippedMinimality += o.stats.OCSkippedMinimality
			st.OCSkippedConstancy += o.stats.OCSkippedConstancy
			st.OFDSkipped += o.stats.OFDSkipped
			st.ValidationTime += o.stats.ValidationTime
			st.PartitionTime += o.stats.PartitionTime
			st.TimedOut = st.TimedOut || o.stats.TimedOut
			st.Canceled = st.Canceled || o.stats.Canceled
			for lvl := range o.stats.OCsFoundPerLevel {
				st.OCsFoundPerLevel[lvl] += o.stats.OCsFoundPerLevel[lvl]
			}
			for lvl := range o.stats.OFDsFoundPerLevel {
				st.OFDsFoundPerLevel[lvl] += o.stats.OFDsFoundPerLevel[lvl]
			}
		}
		if st.TimedOut || st.Canceled {
			break
		}
		if candidates == 0 {
			st.EarlyStopped = cur.Number < maxLevel
			break
		}
		if cur.Number == maxLevel {
			break
		}
		next := lattice.NextLevel(cur, numAttrs)
		if !cfg.KeepPartitions && prev2 != nil {
			for _, n := range prev2.Nodes {
				n.ReleasePartition(arena)
			}
		}
		prev2, prev, cur = prev, cur, next
	}
	st.TotalTime = time.Since(start)
	st.Rows = tbl.NumRows()
	st.Attrs = numAttrs
	return res, nil
}

// materializeLevel ensures every node of the level has its partition, in
// parallel. Safe because parents' partitions are materialized first (they
// belong to an earlier, already-materialized level), so each goroutine only
// writes its own node. The context is polled per node so a canceled run
// does not pay for a whole level's partitioning; skipped nodes materialize
// lazily if ever touched (they won't be — the caller aborts next).
func materializeLevel(ctx context.Context, lvl *lattice.Level, arena *partition.Arena, singles []*partition.Stripped, workers int) {
	if lvl == nil {
		return
	}
	var wg sync.WaitGroup
	jobs := make(chan *lattice.Node)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := range jobs {
				if ctx.Err() != nil {
					continue // keep draining; the caller aborts the level
				}
				n.PartitionIn(arena, singles)
			}
		}()
	}
	for _, n := range lvl.Nodes {
		jobs <- n
	}
	close(jobs)
	wg.Wait()
}

// sortCanonical orders dependencies in the engine's sequential discovery
// order (level, context bitmask, attrs); used by tests to compare parallel
// and sequential results.
func (r *Result) sortCanonical() {
	sort.Slice(r.OCs, func(i, j int) bool {
		if r.OCs[i].Level != r.OCs[j].Level {
			return r.OCs[i].Level < r.OCs[j].Level
		}
		si := r.OCs[i].Context.Add(r.OCs[i].A).Add(r.OCs[i].B)
		sj := r.OCs[j].Context.Add(r.OCs[j].A).Add(r.OCs[j].B)
		if si != sj {
			return si < sj
		}
		if r.OCs[i].A != r.OCs[j].A {
			return r.OCs[i].A < r.OCs[j].A
		}
		if r.OCs[i].B != r.OCs[j].B {
			return r.OCs[i].B < r.OCs[j].B
		}
		return !r.OCs[i].Descending && r.OCs[j].Descending
	})
	sort.Slice(r.OFDs, func(i, j int) bool {
		if r.OFDs[i].Level != r.OFDs[j].Level {
			return r.OFDs[i].Level < r.OFDs[j].Level
		}
		si := r.OFDs[i].Context.Add(r.OFDs[i].A)
		sj := r.OFDs[j].Context.Add(r.OFDs[j].A)
		if si != sj {
			return si < sj
		}
		return r.OFDs[i].A < r.OFDs[j].A
	})
}

// SortCanonical exposes the canonical (level, node, attrs) ordering.
func (r *Result) SortCanonical() { r.sortCanonical() }
