// Package canonical implements the polynomial mapping of Section 2.2: every
// list-based order dependency X ↦ Y is logically equivalent to a set of
// set-based canonical dependencies —
//
//	R |= X ↦ XY  iff  ∀A ∈ Y.  R |= X: [] ↦ A                  (OFDs)
//	R |= X ∼ Y   iff  ∀i,j.    R |= [X1..Xi−1][Y1..Yj−1]: Xi ∼ Yj  (OCs)
//
// and X ↦ Y holds iff X ↦ XY and X ∼ Y (Example 2.13 enumerates the mapping
// of [A,B] ↦ [C,D]). The mapping is what lets the discovery framework search
// the set lattice (exponential) instead of the list lattice (factorial).
package canonical

import (
	"fmt"
	"strings"

	"aod/internal/dataset"
	"aod/internal/lattice"
	"aod/internal/partition"
	"aod/internal/validate"
)

// OFD is a canonical order functional dependency X: [] ↦ A.
type OFD struct {
	Context lattice.AttrSet
	A       int
}

// String renders the OFD in canonical notation.
func (d OFD) String() string { return fmt.Sprintf("%s: [] ↦ %d", d.Context, d.A) }

// OC is a canonical order compatibility X: A ∼ B. A and B may coincide with
// attributes of the context when the source lists repeat attributes; such
// OCs are trivial and are filtered by Map.
type OC struct {
	Context lattice.AttrSet
	A, B    int
}

// String renders the OC in canonical notation.
func (d OC) String() string { return fmt.Sprintf("%s: %d ∼ %d", d.Context, d.A, d.B) }

// Mapping is the canonical equivalent of one list-based OD.
type Mapping struct {
	OFDs []OFD
	OCs  []OC
}

// String renders the mapping as in Example 2.13.
func (m Mapping) String() string {
	parts := make([]string, 0, len(m.OFDs)+len(m.OCs))
	for _, d := range m.OFDs {
		parts = append(parts, d.String())
	}
	for _, d := range m.OCs {
		parts = append(parts, d.String())
	}
	return strings.Join(parts, ", ")
}

// Map translates the list-based OD X ↦ Y into its equivalent set of
// canonical dependencies. Trivial dependencies (an OFD whose attribute is in
// its own context; an OC whose two sides are equal or either side is in the
// context) are omitted, as they hold vacuously.
func Map(x, y []int) Mapping {
	var m Mapping
	xSet := lattice.NewAttrSet(x...)
	for _, a := range y {
		if !xSet.Has(a) {
			m.OFDs = append(m.OFDs, OFD{Context: xSet, A: a})
		}
	}
	for i, xi := range x {
		for j, yj := range y {
			ctx := lattice.NewAttrSet(x[:i]...).Union(lattice.NewAttrSet(y[:j]...))
			if xi == yj || ctx.Has(xi) || ctx.Has(yj) {
				continue // trivially order compatible
			}
			m.OCs = append(m.OCs, OC{Context: ctx, A: xi, B: yj})
		}
	}
	return m
}

// Holds checks the full mapping against a table: the exact list-based OD
// X ↦ Y holds iff every canonical dependency of Map(x, y) holds. It is the
// set-based route to list-OD validation and the consistency oracle used in
// tests against validate.ExactListOD.
func Holds(tbl *dataset.Table, x, y []int) bool {
	m := Map(x, y)
	v := validate.New()
	parts := make(map[lattice.AttrSet]*partition.Stripped)
	ctxOf := func(s lattice.AttrSet) *partition.Stripped {
		if p, ok := parts[s]; ok {
			return p
		}
		p := partition.Universe(tbl.NumRows())
		s.ForEach(func(a int) {
			p = p.Product(partition.Single(tbl.Column(a)))
		})
		parts[s] = p
		return p
	}
	for _, d := range m.OFDs {
		if !validate.ExactOFD(ctxOf(d.Context), tbl.Column(d.A)) {
			return false
		}
	}
	for _, d := range m.OCs {
		if ok, _ := v.ExactOC(ctxOf(d.Context), tbl.Column(d.A), tbl.Column(d.B)); !ok {
			return false
		}
	}
	return true
}
