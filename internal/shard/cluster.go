package shard

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"aod/internal/core"
	"aod/internal/dataset"
	"aod/internal/telemetry"
)

// Config tunes a Cluster's failure policy. The zero value selects defaults.
type Config struct {
	// DialTimeout bounds connecting + handshaking one worker (default 5s).
	DialTimeout time.Duration
	// CallTimeout bounds one level-slice round trip (default 2m).
	CallTimeout time.Duration
	// StragglerAfter re-dispatches a slice to a second worker when the first
	// has not answered after this long, taking whichever result lands first
	// (default 15s; 0 disables re-dispatch, relying on CallTimeout alone).
	StragglerAfter time.Duration
	// Logf, when non-nil, receives one line per notable event.
	Logf func(format string, args ...any)
	// Metrics, when non-nil, receives the cluster's RPC round-trip histogram
	// and retry/re-dispatch counters.
	Metrics *telemetry.Registry
}

func (c Config) withDefaults() Config {
	if c.DialTimeout == 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.CallTimeout == 0 {
		c.CallTimeout = 2 * time.Minute
	}
	if c.StragglerAfter == 0 {
		c.StragglerAfter = 15 * time.Second
	}
	if c.StragglerAfter < 0 {
		c.StragglerAfter = 0
	}
	return c
}

// WorkerStatus is one worker's health and assignment record, surfaced by the
// aodserver /stats endpoint.
type WorkerStatus struct {
	Addr string `json:"addr"`
	// Healthy reflects the worker's last interaction: a successful handshake
	// or slice sets it, any failure clears it (the next job retries it
	// regardless — dead workers cost one dial timeout per job, not eternal
	// exile).
	Healthy bool `json:"healthy"`
	// Sessions counts successful handshakes; AssignedTasks counts node tasks
	// dispatched (including tasks later re-dispatched elsewhere).
	Sessions      uint64 `json:"sessions"`
	AssignedTasks uint64 `json:"assignedTasks"`
	// Failures counts dial, handshake, and slice failures.
	Failures  uint64 `json:"failures"`
	LastError string `json:"lastError,omitempty"`
}

// Cluster is the coordinator-side shard pool over a fixed set of worker
// addresses. It implements core.ShardPool: Open dials every worker for one
// job (shipping the dataset only where the fingerprint misses), and the
// session it returns slices levels across the live workers with per-shard
// timeouts, retry-on-another-shard, and straggler re-dispatch. A Cluster is
// safe for concurrent use by many jobs.
type Cluster struct {
	addrs []string
	cfg   Config
	// dial opens the transport to one worker: TCP in production, in-process
	// pipes under the loopback transport.
	dial func(ctx context.Context, addr string) (net.Conn, error)

	mu    sync.Mutex
	state map[string]*WorkerStatus

	// Metric handles (nil-safe when Config.Metrics is nil).
	rpcHist    *telemetry.Histogram
	retries    *telemetry.Counter
	redispatch *telemetry.Counter
	txBytes    *telemetry.Counter
	rxBytes    *telemetry.Counter
	frames     *telemetry.Counter
	partBytes  *telemetry.Counter
}

// initMetrics resolves the cluster's metric handles from Config.Metrics.
func (c *Cluster) initMetrics() {
	r := c.cfg.Metrics
	if r == nil {
		return
	}
	c.rpcHist = r.Histogram("aod_shard_rpc_seconds", "", "Level-slice RPC round-trip latency.")
	c.retries = r.Counter("aod_shard_retries_total", "", "Slices retried on another worker after a failure.")
	c.redispatch = r.Counter("aod_shard_redispatch_total", "", "Straggling slices re-dispatched to a second worker.")
	c.txBytes = r.Counter("aod_shard_bytes_total", telemetry.Label("dir", "tx"), "Shard protocol bytes by direction.")
	c.rxBytes = r.Counter("aod_shard_bytes_total", telemetry.Label("dir", "rx"), "Shard protocol bytes by direction.")
	c.frames = r.Counter("aod_shard_frames_total", "", "Shard protocol frames sent and received.")
	c.partBytes = r.Counter("aod_shard_partition_bytes_total", "", "Bytes of coordinator-built partitions shipped in parts frames.")
}

// New returns a Cluster over TCP worker addresses (host:port).
func New(addrs []string, cfg Config) *Cluster {
	c := &Cluster{
		addrs: append([]string(nil), addrs...),
		cfg:   cfg.withDefaults(),
		state: make(map[string]*WorkerStatus),
	}
	c.initMetrics()
	c.dial = func(ctx context.Context, addr string) (net.Conn, error) {
		var d net.Dialer
		return d.DialContext(ctx, "tcp", addr)
	}
	for _, a := range c.addrs {
		c.state[a] = &WorkerStatus{Addr: a}
	}
	return c
}

// Addrs returns the configured worker addresses.
func (c *Cluster) Addrs() []string { return append([]string(nil), c.addrs...) }

// Snapshot returns every worker's status, ordered by address.
func (c *Cluster) Snapshot() []WorkerStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]WorkerStatus, 0, len(c.state))
	for _, st := range c.state {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Close releases the cluster. Sessions own their connections, so this is
// bookkeeping only; it exists for symmetry with future pooled transports.
func (c *Cluster) Close() {}

func (c *Cluster) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

func (c *Cluster) note(addr string, fn func(st *WorkerStatus)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.state[addr]
	if !ok {
		st = &WorkerStatus{Addr: addr}
		c.state[addr] = st
	}
	fn(st)
}

// Open implements core.ShardPool: one handshake per worker, in parallel,
// returning a session over the workers that answered. Coordinator-owned
// policies are stripped from the shipped config (the worker never sees
// TimeLimit — aborts arrive as canceled calls — nor the coordinator-local
// sorted-scan and partition-retention knobs).
func (c *Cluster) Open(ctx context.Context, tbl *dataset.Table, cfg core.Config) (core.ShardSession, error) {
	cfg.TimeLimit = 0
	cfg.UseSortedScan = false
	cfg.KeepPartitions = false
	hello := &helloMsg{
		Proto:       protoVersion,
		Fingerprint: dataset.Fingerprint(tbl),
		Rows:        tbl.NumRows(),
		Cols:        tbl.NumCols(),
		Config:      cfg,
	}
	// The columnar payload is assembled at most once, and only if some worker
	// needs it. Column.Data aliases the table's rank buffers — zero copies on
	// this side; the encoder streams them straight into the frame.
	var payloadOnce sync.Once
	var payloadMsg *datasetMsg
	payload := func() (*datasetMsg, error) {
		payloadOnce.Do(func() {
			cols := make([]dataset.ColumnData, tbl.NumCols())
			for i := range cols {
				cols[i] = tbl.Column(i).Data()
			}
			payloadMsg = &datasetMsg{Rows: tbl.NumRows(), Cols: cols}
		})
		return payloadMsg, nil
	}

	clients := make([]*workerClient, len(c.addrs))
	var wg sync.WaitGroup
	for i, addr := range c.addrs {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			dctx, cancel := context.WithTimeout(ctx, c.cfg.DialTimeout)
			defer cancel()
			conn, err := c.dial(dctx, addr)
			if err != nil {
				c.noteFailure(addr, fmt.Errorf("dial: %w", err))
				return
			}
			w := &workerClient{
				addr: addr, conn: conn,
				br: bufio.NewReader(conn), bw: bufio.NewWriter(conn),
				txBytes: c.txBytes, rxBytes: c.rxBytes, frames: c.frames,
				partBytes: c.partBytes,
			}
			if err := w.handshake(dctx, c.cfg.DialTimeout, hello, payload); err != nil {
				c.noteFailure(addr, err)
				return
			}
			c.note(addr, func(st *WorkerStatus) {
				st.Healthy = true
				st.Sessions++
				st.LastError = ""
			})
			clients[i] = w
		}(i, addr)
	}
	wg.Wait()

	live := clients[:0:0]
	for _, w := range clients {
		if w != nil {
			live = append(live, w)
		}
	}
	if len(live) == 0 {
		return nil, errors.New("shard: no worker reachable")
	}
	return &session{c: c, clients: live}, nil
}

func (c *Cluster) noteFailure(addr string, err error) {
	c.logf("shard: worker %s: %v", addr, err)
	c.note(addr, func(st *WorkerStatus) {
		st.Healthy = false
		st.Failures++
		st.LastError = err.Error()
	})
}

// session is one job's window onto the live workers.
type session struct {
	c       *Cluster
	mu      sync.Mutex
	clients []*workerClient
}

// alive returns the clients whose connections have not failed. It never
// blocks behind an in-flight call — the death flag is atomic — so a
// straggling worker cannot stall the next level's dispatch.
func (s *session) alive() []*workerClient {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*workerClient, 0, len(s.clients))
	for _, w := range s.clients {
		if !w.dead.Load() {
			out = append(out, w)
		}
	}
	return out
}

func (s *session) Width() int { return len(s.alive()) }

// Close kills every client. Closing a connection with a call in flight
// makes that call fail immediately, so Close never waits out a timeout.
func (s *session) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, w := range s.clients {
		w.kill()
	}
	s.clients = nil
	return nil
}

type sliceOutcome struct {
	rs   []core.NodeResult
	err  error
	from *workerClient
}

// RunSlice implements core.ShardSession. The slice runs on the shard's home
// worker first; a straggler timer re-dispatches it to the next worker
// (first answer wins), and any failure retries the remaining workers before
// giving up — at which point the caller executes the slice locally.
func (s *session) RunSlice(ctx context.Context, shard, level int, tasks []core.NodeTask) ([]core.NodeResult, error) {
	return s.RunSliceParts(ctx, shard, level, tasks, nil)
}

// RunSliceParts implements core.ShardSessionParts: RunSlice plus
// coordinator-built context partitions, shipped as a parts frame immediately
// before the level frame on every dispatch attempt — so a retry or straggler
// re-dispatch re-ships them to whichever worker actually executes the slice.
func (s *session) RunSliceParts(ctx context.Context, shard, level int, tasks []core.NodeTask, parts []core.SeedPartition) ([]core.NodeResult, error) {
	ordered := s.alive()
	if len(ordered) == 0 {
		return nil, errors.New("shard: no live workers")
	}
	start := shard % len(ordered)
	ordered = append(ordered[start:len(ordered):len(ordered)], ordered[:start]...)

	trace, levelSpan := telemetry.FromContext(ctx)
	var partsFrame *partsMsg
	if len(parts) > 0 {
		partsFrame = &partsMsg{Level: level, Parts: parts}
	}
	msg := &levelMsg{Level: level, Tasks: tasks, Trace: trace.ID()}
	ch := make(chan sliceOutcome, len(ordered))
	run := func(w *workerClient) {
		s.c.note(w.addr, func(st *WorkerStatus) { st.AssignedTasks += uint64(len(tasks)) })
		// One span per dispatch attempt, parented under the level's span;
		// failed attempts stay in the trace (labeled with the error) so
		// retries and straggler races are visible.
		span := trace.Start(levelSpan, "rpc")
		span.SetLabel("worker %s", w.addr)
		span.Attr("tasks", int64(len(tasks)))
		t0 := time.Now()
		rs, err := w.runLevel(ctx, s.c.cfg.CallTimeout, partsFrame, msg)
		s.c.rpcHist.Observe(time.Since(t0))
		if err == nil && len(rs.Results) != len(tasks) {
			err = fmt.Errorf("shard: worker %s returned %d results for %d tasks", w.addr, len(rs.Results), len(tasks))
			w.kill()
		}
		if err != nil {
			span.SetLabel("worker %s: %v", w.addr, err)
			span.End()
			ch <- sliceOutcome{err: err, from: w}
			return
		}
		span.End()
		// Worker-side spans stitch under this attempt's rpc span. Re-basing
		// absorbs clock skew; alignment is accurate to the round trip.
		trace.AddRemote(span.ID(), rs.Spans)
		ch <- sliceOutcome{rs: rs.Results, from: w}
	}

	go run(ordered[0])
	pending, next := 1, 1
	var stragglerC <-chan time.Time
	if s.c.cfg.StragglerAfter > 0 && len(ordered) > 1 {
		tm := time.NewTimer(s.c.cfg.StragglerAfter)
		defer tm.Stop()
		stragglerC = tm.C
	}
	var firstErr error
	for pending > 0 {
		select {
		case o := <-ch:
			pending--
			if o.err == nil {
				s.c.note(o.from.addr, func(st *WorkerStatus) { st.Healthy = true })
				return o.rs, nil
			}
			s.c.noteFailure(o.from.addr, o.err)
			if firstErr == nil {
				firstErr = o.err
			}
			// Retry on the next untried worker once nothing is in flight.
			if pending == 0 && next < len(ordered) {
				s.c.retries.Inc()
				go run(ordered[next])
				next++
				pending++
			}
		case <-stragglerC:
			stragglerC = nil
			if next < len(ordered) {
				s.c.logf("shard: level %d slice straggling on %s; re-dispatching to %s",
					level, ordered[0].addr, ordered[next].addr)
				s.c.redispatch.Inc()
				go run(ordered[next])
				next++
				pending++
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return nil, firstErr
}
