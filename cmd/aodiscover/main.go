// Command aodiscover discovers (approximate) order dependencies in a CSV
// file.
//
// Usage:
//
//	aodiscover [-threshold 0.1] [-algorithm optimal|exact|iterative]
//	           [-max-level N] [-ofds] [-removals] [-max-rows N]
//	           [-columns a,b,c] [-top N] [-json] [-trace] file.csv
//
// Example:
//
//	aodiscover -threshold 0.10 -ofds employees.csv
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"aod"
	"aod/internal/telemetry"
)

func main() {
	threshold := flag.Float64("threshold", 0.10, "approximation threshold ε in [0,1]")
	algorithm := flag.String("algorithm", "optimal", "validator: optimal, exact, iterative")
	maxLevel := flag.Int("max-level", 0, "bound on the lattice level (0 = unbounded)")
	ofds := flag.Bool("ofds", false, "also report order functional dependencies")
	removals := flag.Bool("removals", false, "print removal-set row indexes (error repair candidates)")
	maxRows := flag.Int("max-rows", 0, "limit the number of CSV rows read (0 = all)")
	columns := flag.String("columns", "", "comma-separated column subset to profile")
	top := flag.Int("top", 0, "print only the N most interesting dependencies (0 = all)")
	timeLimit := flag.Duration("time-limit", 0, "abort discovery after this duration")
	bidirectional := flag.Bool("bidirectional", false, "also search mixed-direction OCs (A ∼ B↓)")
	parallelism := flag.Int("parallelism", 0, "validate each lattice level across N workers (0 = sequential)")
	jsonOut := flag.Bool("json", false, "emit the report as JSON (the same stable schema the aodserver API returns)")
	traceOut := flag.Bool("trace", false, "print a per-stage timing breakdown (partition build, each lattice level) to stderr after discovery")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: aodiscover [flags] file.csv")
		flag.PrintDefaults()
		os.Exit(2)
	}

	var alg aod.Algorithm
	if err := alg.UnmarshalText([]byte(strings.ToLower(*algorithm))); err != nil {
		fmt.Fprintln(os.Stderr, "aodiscover:", err)
		os.Exit(2)
	}

	opts := aod.CSVOptions{MaxRows: *maxRows}
	if *columns != "" {
		opts.Columns = strings.Split(*columns, ",")
	}
	ds, err := aod.ReadCSVFile(flag.Arg(0), opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aodiscover:", err)
		os.Exit(1)
	}
	if !*jsonOut {
		fmt.Printf("loaded %s\n", ds)
	}

	// -trace records the discovery stages (partition build, each lattice
	// level) as spans and prints the tree once the run finishes. The trace
	// rides the context, so the plain Discover path stays untouched.
	ctx := context.Background()
	var tr *telemetry.Trace
	var rootSpan *telemetry.ActiveSpan
	if *traceOut {
		tr = telemetry.NewTrace("aodiscover")
		rootSpan = tr.Start(0, "discover")
		ctx = telemetry.NewContext(ctx, tr, rootSpan.ID())
	}

	rep, err := aod.DiscoverStreamContext(ctx, ds, aod.Options{
		Threshold:          *threshold,
		Algorithm:          alg,
		MaxLevel:           *maxLevel,
		IncludeOFDs:        *ofds,
		CollectRemovalSets: *removals,
		TimeLimit:          *timeLimit,
		Bidirectional:      *bidirectional,
		Parallelism:        *parallelism,
	}, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aodiscover:", err)
		os.Exit(1)
	}
	if *traceOut {
		rootSpan.End()
		tr.WriteText(os.Stderr)
	}

	// -top truncation is shared by both output formats.
	totalOCs, totalOFDs := len(rep.OCs), len(rep.OFDs)
	if *top > 0 {
		if len(rep.OCs) > *top {
			rep.OCs = rep.OCs[:*top]
		}
		if len(rep.OFDs) > *top {
			rep.OFDs = rep.OFDs[:*top]
		}
	}

	if *jsonOut {
		if err := rep.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "aodiscover:", err)
			os.Exit(1)
		}
		return
	}

	st := rep.Stats
	fmt.Printf("discovery: %s total (%.1f%% validation), %d nodes, %d OC / %d OFD candidates",
		st.TotalTime.Round(time.Millisecond), st.ValidationShare()*100,
		st.NodesProcessed, st.OCCandidates, st.OFDCandidates)
	if st.TimedOut {
		fmt.Print(" [TIMED OUT — partial results]")
	}
	fmt.Println()

	ocs := rep.OCs
	fmt.Printf("\n%d order compatibilities (showing %d):\n", totalOCs, len(ocs))
	for _, oc := range ocs {
		fmt.Printf("  %-60s score=%.3f level=%d\n", oc.String(), oc.Score, oc.Level)
		if *removals && len(oc.RemovalRows) > 0 {
			fmt.Printf("    removal rows: %v\n", truncateInts(oc.RemovalRows, 20))
		}
	}
	if *ofds {
		ofdList := rep.OFDs
		fmt.Printf("\n%d order functional dependencies (showing %d):\n", totalOFDs, len(ofdList))
		for _, ofd := range ofdList {
			fmt.Printf("  %-60s score=%.3f level=%d\n", ofd.String(), ofd.Score, ofd.Level)
			if *removals && len(ofd.RemovalRows) > 0 {
				fmt.Printf("    removal rows: %v\n", truncateInts(ofd.RemovalRows, 20))
			}
		}
	}
}

func truncateInts(v []int, n int) []int {
	if len(v) <= n {
		return v
	}
	return v[:n]
}
