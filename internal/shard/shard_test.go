package shard

import (
	"context"
	"errors"
	"net"
	"reflect"
	"testing"
	"time"

	"aod/internal/core"
	"aod/internal/dataset"
	"aod/internal/gen"
)

// discoverWith runs the pipeline under the given executor.
func discoverWith(t *testing.T, tbl *dataset.Table, cfg core.Config, exec core.Executor) *core.Result {
	t.Helper()
	res, err := core.Pipeline{Executor: exec}.Run(context.Background(), tbl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// normalizeRemovals maps empty removal slices to nil so a JSON round trip
// (omitempty) cannot fail a deep comparison.
func normalizeRemovals(res *core.Result) {
	for i := range res.OCs {
		if len(res.OCs[i].RemovalRows) == 0 {
			res.OCs[i].RemovalRows = nil
		}
	}
	for i := range res.OFDs {
		if len(res.OFDs[i].RemovalRows) == 0 {
			res.OFDs[i].RemovalRows = nil
		}
	}
}

// requireIdentical asserts result-and-stats identity: dependency slices in
// exact discovery order, and every non-timing stat equal.
func requireIdentical(t *testing.T, label string, want, got *core.Result) {
	t.Helper()
	normalizeRemovals(want)
	normalizeRemovals(got)
	if !reflect.DeepEqual(want.OCs, got.OCs) {
		t.Errorf("%s: OCs differ:\nwant %v\ngot  %v", label, want.OCs, got.OCs)
	}
	if !reflect.DeepEqual(want.OFDs, got.OFDs) {
		t.Errorf("%s: OFDs differ:\nwant %v\ngot  %v", label, want.OFDs, got.OFDs)
	}
	ws, gs := want.Stats, got.Stats
	ws.ValidationTime, gs.ValidationTime = 0, 0
	ws.PartitionTime, gs.PartitionTime = 0, 0
	ws.TotalTime, gs.TotalTime = 0, 0
	if !reflect.DeepEqual(ws, gs) {
		t.Errorf("%s: non-timing stats differ:\nwant %+v\ngot  %+v", label, ws, gs)
	}
}

// TestExecutorEquivalenceMatrix pins Serial ≡ Pool ≡ Sharded(loopback) —
// results in exact discovery order and identical non-timing stats — across
// every validator, with sampling, bidirectional search, OFD reporting, and
// removal-set collection in the mix.
func TestExecutorEquivalenceMatrix(t *testing.T) {
	tables := map[string]*dataset.Table{
		"flight":  gen.Flight(gen.FlightConfig{Rows: 300, Attrs: 7, Seed: 11}),
		"uniform": gen.Uniform(200, 6, 4, 7),
	}
	configs := map[string]core.Config{
		"exact":     {Validator: core.ValidatorExact, IncludeOFDs: true},
		"optimal":   {Threshold: 0.10, Validator: core.ValidatorOptimal, IncludeOFDs: true, CollectRemovalSets: true},
		"iterative": {Threshold: 0.10, Validator: core.ValidatorIterative, IncludeOFDs: true},
		"sampled":   {Threshold: 0.10, Validator: core.ValidatorOptimal, SampleStride: 4},
		"bidi":      {Threshold: 0.08, Validator: core.ValidatorOptimal, Bidirectional: true, IncludeOFDs: true},
	}
	for tname, tbl := range tables {
		for cname, cfg := range configs {
			want := discoverWith(t, tbl, cfg, core.Serial())
			// sharded-straggler exercises pipelined dispatch under skew: one
			// worker delays every slice past the straggler deadline, so level
			// N+1 pre-dispatch, re-dispatch races, and in-order commit all
			// interleave — and the result must still be byte-identical.
			straggler := NewLoopback(Config{StragglerAfter: 5 * time.Millisecond}, []*Worker{
				NewWorker(WorkerOptions{}),
				NewWorker(WorkerOptions{LevelHook: func(level, tasks int) error {
					time.Sleep(15 * time.Millisecond)
					return nil
				}}),
				NewWorker(WorkerOptions{}),
			})
			executors := map[string]core.Executor{
				"pool-3":            core.Pool(3),
				"sharded-lb2":       core.Sharded(Loopback(2)),
				"sharded-lb3":       core.Sharded(Loopback(3)),
				"sharded-straggler": core.Sharded(straggler),
			}
			for ename, exec := range executors {
				got := discoverWith(t, tbl, cfg, exec)
				requireIdentical(t, tname+"/"+cname+"/"+ename, want, got)
			}
		}
	}
}

// TestShardedWorkerDeathMidJob kills one of two loopback workers partway
// through the lattice: the session retries the slice on the surviving worker
// (or the coordinator falls back locally), the job completes, and the result
// is still identical to the serial run.
func TestShardedWorkerDeathMidJob(t *testing.T) {
	tbl := gen.Flight(gen.FlightConfig{Rows: 400, Attrs: 8, Seed: 3})
	cfg := core.Config{Threshold: 0.10, Validator: core.ValidatorOptimal, IncludeOFDs: true}
	want := discoverWith(t, tbl, cfg, core.Serial())

	dieAt := 3
	w0 := NewWorker(WorkerOptions{})
	w1 := NewWorker(WorkerOptions{LevelHook: func(level, tasks int) error {
		if level >= dieAt {
			return errors.New("injected death")
		}
		return nil
	}})
	cluster := NewLoopback(Config{}, []*Worker{w0, w1})
	got := discoverWith(t, tbl, cfg, core.Sharded(cluster))
	requireIdentical(t, "death", want, got)

	snap := cluster.Snapshot()
	var failures uint64
	for _, st := range snap {
		failures += st.Failures
	}
	if failures == 0 {
		t.Error("expected the dead worker's failure to be recorded in the cluster snapshot")
	}
}

// TestShardedAllWorkersDeadFallsBackLocally runs a sharded job whose every
// worker dies on the first level: the coordinator executes everything itself
// and the job still matches the serial run.
func TestShardedAllWorkersDeadFallsBackLocally(t *testing.T) {
	tbl := gen.Uniform(150, 5, 3, 9)
	cfg := core.Config{Threshold: 0.12, Validator: core.ValidatorOptimal, IncludeOFDs: true}
	want := discoverWith(t, tbl, cfg, core.Serial())

	die := func(level, tasks int) error { return errors.New("dead on arrival") }
	cluster := NewLoopback(Config{}, []*Worker{
		NewWorker(WorkerOptions{LevelHook: die}),
		NewWorker(WorkerOptions{LevelHook: die}),
	})
	got := discoverWith(t, tbl, cfg, core.Sharded(cluster))
	requireIdentical(t, "all-dead", want, got)
}

// TestShardedUnreachablePoolRunsLocally points the cluster at an address
// nothing listens on: Open fails and the executor degrades to fully local
// execution instead of failing the job.
func TestShardedUnreachablePoolRunsLocally(t *testing.T) {
	tbl := gen.Uniform(100, 4, 3, 5)
	cfg := core.Config{Threshold: 0.10, Validator: core.ValidatorOptimal}
	want := discoverWith(t, tbl, cfg, core.Serial())

	cluster := New([]string{"127.0.0.1:1"}, Config{DialTimeout: 200 * time.Millisecond})
	got := discoverWith(t, tbl, cfg, core.Sharded(cluster))
	requireIdentical(t, "unreachable", want, got)

	snap := cluster.Snapshot()
	if len(snap) != 1 || snap[0].Healthy || snap[0].Failures == 0 {
		t.Errorf("snapshot should record the dial failure: %+v", snap)
	}
}

// TestShardedCancellation cancels a sharded run mid-flight: the partial
// result returns promptly with Stats.Canceled set.
func TestShardedCancellation(t *testing.T) {
	tbl := gen.Flight(gen.FlightConfig{Rows: 2000, Attrs: 9, Seed: 21})
	cfg := core.Config{Threshold: 0.10, Validator: core.ValidatorOptimal}
	ctx, cancel := context.WithCancel(context.Background())
	cluster := NewLoopback(Config{}, []*Worker{NewWorker(WorkerOptions{LevelHook: func(level, tasks int) error {
		if level == 2 {
			cancel() // cancel while the worker holds a slice
		}
		return nil
	}})})
	res, err := core.Pipeline{Executor: core.Sharded(cluster)}.Run(ctx, tbl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Canceled {
		t.Error("canceled sharded run should set Stats.Canceled")
	}
}

// TestWorkerDatasetCache verifies the fingerprint handshake: two jobs over
// the same dataset ship the payload once; a different dataset ships again.
func TestWorkerDatasetCache(t *testing.T) {
	w := NewWorker(WorkerOptions{})
	cluster := NewLoopback(Config{}, []*Worker{w})
	tbl1 := gen.Uniform(80, 4, 3, 1)
	tbl2 := gen.Uniform(90, 4, 3, 2)
	cfg := core.Config{Threshold: 0.1, Validator: core.ValidatorOptimal}

	discoverWith(t, tbl1, cfg, core.Sharded(cluster))
	discoverWith(t, tbl1, cfg, core.Sharded(cluster))
	if got := w.DatasetLoads(); got != 1 {
		t.Errorf("dataset shipped %d times for two identical jobs, want 1", got)
	}
	discoverWith(t, tbl2, cfg, core.Sharded(cluster))
	if got := w.DatasetLoads(); got != 2 {
		t.Errorf("dataset loads after a second dataset: %d, want 2", got)
	}
	if got := w.CachedDatasets(); got != 2 {
		t.Errorf("cached datasets: %d, want 2", got)
	}
	if got := w.Sessions(); got != 3 {
		t.Errorf("sessions: %d, want 3", got)
	}
}

// TestWorkerDatasetCacheEviction bounds the prepared-dataset cache.
func TestWorkerDatasetCacheEviction(t *testing.T) {
	w := NewWorker(WorkerOptions{MaxDatasets: 2})
	cluster := NewLoopback(Config{}, []*Worker{w})
	cfg := core.Config{Threshold: 0.1, Validator: core.ValidatorOptimal}
	for seed := int64(1); seed <= 4; seed++ {
		discoverWith(t, gen.Uniform(60, 3, 3, seed), cfg, core.Sharded(cluster))
	}
	if got := w.CachedDatasets(); got != 2 {
		t.Errorf("cached datasets after eviction: %d, want 2", got)
	}
}

// TestTCPTransport runs a real TCP worker on an ephemeral port and checks
// the sharded run against serial — the same path cmd/aodworker serves.
func TestTCPTransport(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	w := NewWorker(WorkerOptions{})
	go w.Serve(ln)

	tbl := gen.Flight(gen.FlightConfig{Rows: 250, Attrs: 6, Seed: 8})
	cfg := core.Config{Threshold: 0.10, Validator: core.ValidatorOptimal, IncludeOFDs: true}
	want := discoverWith(t, tbl, cfg, core.Serial())
	cluster := New([]string{ln.Addr().String()}, Config{})
	got := discoverWith(t, tbl, cfg, core.Sharded(cluster))
	requireIdentical(t, "tcp", want, got)
	if w.TasksRun() == 0 {
		t.Error("TCP worker processed no tasks")
	}
}

// TestStragglerRedispatch delays one worker far past the straggler window;
// the slice must complete promptly on the other worker with the result
// still identical to serial.
func TestStragglerRedispatch(t *testing.T) {
	tbl := gen.Uniform(120, 5, 3, 13)
	cfg := core.Config{Threshold: 0.10, Validator: core.ValidatorOptimal}
	want := discoverWith(t, tbl, cfg, core.Serial())

	slow := NewWorker(WorkerOptions{LevelHook: func(level, tasks int) error {
		time.Sleep(400 * time.Millisecond)
		return nil
	}})
	fast := NewWorker(WorkerOptions{})
	cluster := NewLoopback(Config{StragglerAfter: 30 * time.Millisecond}, []*Worker{slow, fast})

	start := time.Now()
	got := discoverWith(t, tbl, cfg, core.Sharded(cluster))
	requireIdentical(t, "straggler", want, got)
	// Not a strict timing assertion — just a sanity ceiling far below the
	// serialized all-slow path.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("straggler re-dispatch took %s", elapsed)
	}
}

// TestFrameRoundTrip pins the framing layer across both encodings: a binary
// payload frame and a JSON handshake frame.
func TestFrameRoundTrip(t *testing.T) {
	frames := []*frame{
		{T: "level", Level: &levelMsg{Level: 3, Trace: "tr-1", Tasks: []core.NodeTask{{
			Set: 0b1011, Level: 3, ConstValid: 0b0010,
			ParentConst: []uint64{0, 2, 0}, OCValid: []uint64{5},
		}}}},
		{T: "hello", Hello: &helloMsg{Proto: protoVersion, Fingerprint: "fp", Rows: 7, Cols: 3}},
		{T: "result", Result: &resultMsg{Results: []core.NodeResult{{
			Candidates: 2, NewConst: 0b100,
			OCs: []core.TaskOC{{A: 1, B: 2, Descending: true, Error: 0.25,
				Removals: 3, RemovalRows: []int32{4, 9, 11}}},
			OFDs: []core.TaskOFD{{A: 0, Error: 0.5, Removals: 1, RemovalRows: []int32{2}}},
		}}}},
	}
	for _, in := range frames {
		c1, c2 := net.Pipe()
		go func() {
			n, err := writeFrame(c1, in)
			if err != nil || n <= 4 {
				t.Errorf("%s: writeFrame returned (%d, %v)", in.T, n, err)
			}
			c1.Close()
		}()
		out, n, err := readFrame(c2)
		c2.Close()
		if err != nil {
			t.Fatalf("%s: %v", in.T, err)
		}
		if n <= 4 {
			t.Errorf("%s: readFrame consumed %d bytes", in.T, n)
		}
		if !reflect.DeepEqual(in, out) {
			t.Errorf("%s frame round trip:\nwant %+v\ngot  %+v", in.T, in, out)
		}
	}
}
