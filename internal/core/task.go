package core

import (
	"math/bits"
	"time"

	"aod/internal/lattice"
	"aod/internal/partition"
	"aod/internal/validate"
)

// NodeTask is the serializable work unit of one lattice node: everything a
// validator needs to process the node's candidates without access to the
// coordinator's lattice. The coordinator performs validity-state propagation
// (which needs the whole previous level) when building the task; the task
// then carries only attribute sets and bitmasks — never partitions — so a
// level ships to a remote shard as a few hundred bytes per node while the
// worker rebuilds partitions from its locally cached single-column
// partitions. All fields are plain integers/slices with stable JSON names:
// the shard wire protocol marshals tasks directly.
type NodeTask struct {
	// Set is the node's attribute set as a bitmask.
	Set uint64 `json:"set"`
	// Level is |Set|.
	Level int `json:"level"`
	// ConstValid is the OFD validity propagated from the parents (the union
	// of ParentConst): attributes whose OFD is already valid in a strict
	// sub-context, pruning non-minimal OFD candidates here.
	ConstValid uint64 `json:"constValid"`
	// ParentConst holds each parent's ConstValid, indexed like Set's
	// attributes in ascending order: ParentConst[i] belongs to the parent
	// Set \ {i-th attribute}. The OC constancy pruning tests a specific
	// parent, not the union, so the per-parent masks ride along.
	ParentConst []uint64 `json:"parentConst"`
	// OCValid and OCValidDesc are the propagated pair-validity bitsets
	// (lattice.PairSet words): pairs with a valid OC in some sub-context,
	// pruning non-minimal OC candidates. In the local executors the slices
	// alias the node's own sets (zero copy); on the wire they serialize as
	// plain integers.
	OCValid     []uint64 `json:"ocValid,omitempty"`
	OCValidDesc []uint64 `json:"ocValidDesc,omitempty"`
}

// TaskOC is one order compatibility verified while executing a task,
// identified by attribute indexes (the coordinator re-attaches context and
// score, which are functions of the task's set and level).
type TaskOC struct {
	A           int     `json:"a"`
	B           int     `json:"b"`
	Descending  bool    `json:"desc,omitempty"`
	Error       float64 `json:"error"`
	Removals    int     `json:"removals"`
	RemovalRows []int32 `json:"removalRows,omitempty"`
}

// TaskOFD is one order functional dependency verified while executing a
// task. Shipped only under Config.IncludeOFDs — NewConst carries the
// validity bits that drive pruning either way.
type TaskOFD struct {
	A           int     `json:"a"`
	Error       float64 `json:"error"`
	Removals    int     `json:"removals"`
	RemovalRows []int32 `json:"removalRows,omitempty"`
}

// TaskStats is the per-task fragment of the run statistics: the counters a
// task execution owns, independent of where it ran. Merged into the run's
// Stats by applyTask, so every executor — serial, pooled, sharded — accounts
// identically by construction.
type TaskStats struct {
	OCCandidates        int           `json:"ocCandidates,omitempty"`
	OFDCandidates       int           `json:"ofdCandidates,omitempty"`
	OCSkippedMinimality int           `json:"ocSkippedMinimality,omitempty"`
	OCSkippedConstancy  int           `json:"ocSkippedConstancy,omitempty"`
	OFDSkipped          int           `json:"ofdSkipped,omitempty"`
	OCSampledRejected   int           `json:"ocSampledRejected,omitempty"`
	ValidationTime      time.Duration `json:"validationNs,omitempty"`
	PartitionTime       time.Duration `json:"partitionNs,omitempty"`
}

// addTo folds the fragment into run-level stats.
func (ts *TaskStats) addTo(s *Stats) {
	s.OCCandidates += ts.OCCandidates
	s.OFDCandidates += ts.OFDCandidates
	s.OCSkippedMinimality += ts.OCSkippedMinimality
	s.OCSkippedConstancy += ts.OCSkippedConstancy
	s.OFDSkipped += ts.OFDSkipped
	s.OCSampledRejected += ts.OCSampledRejected
	s.ValidationTime += ts.ValidationTime
	s.PartitionTime += ts.PartitionTime
}

// NodeResult is the serializable outcome of executing one NodeTask: the
// verified dependencies in canonical in-node order, the new validity bits for
// downstream pruning, and the task's stats fragment. Applying results in
// node order reproduces the serial executor's result and (non-timing) stats
// exactly, wherever the tasks actually ran.
type NodeResult struct {
	// Candidates is the number of candidates validated (the early-stop
	// currency of the level-wise framework).
	Candidates int `json:"candidates"`
	// NewConst marks attributes whose OFD was verified valid at this node.
	NewConst uint64    `json:"newConst,omitempty"`
	OCs      []TaskOC  `json:"ocs,omitempty"`
	OFDs     []TaskOFD `json:"ofds,omitempty"`
	Stats    TaskStats `json:"stats"`
}

// reset clears the result for reuse, keeping slice capacity — the serial and
// pool executors apply each node's result immediately, so one scratch
// NodeResult per engine serves every node allocation-free.
func (nr *NodeResult) reset() {
	nr.Candidates = 0
	nr.NewConst = 0
	nr.OCs = nr.OCs[:0]
	nr.OFDs = nr.OFDs[:0]
	nr.Stats = TaskStats{}
}

// Candidate search directions: ascending only, or both under Bidirectional.
var (
	dirAsc  = [...]bool{false}
	dirBoth = [...]bool{false, true}
)

// partSource abstracts where a task execution gets its context partitions:
// the coordinator's lattice (levelSource — parents and grandparents already
// materialized or materialized on demand into the shared arena), or a shard
// worker's fold cache (foldSource — rebuilt from cached single-column
// partitions). classIDsOf backs the sorted-scan exact route, which only the
// serial executor enables; other sources never receive the call.
type partSource interface {
	partitionOf(set lattice.AttrSet, st *TaskStats) *partition.Stripped
	classIDsOf(set lattice.AttrSet) []int32
}

// levelSource resolves partitions through the lattice levels of the running
// traversal — the in-process fast path shared by the serial and pool
// executors (and the sharded executor's local fallback).
type levelSource struct {
	e                     *engine
	parents, grandparents *lattice.Level
}

func (s levelSource) node(set lattice.AttrSet) *lattice.Node {
	if n := s.parents.Lookup(set); n != nil {
		return n
	}
	return s.grandparents.Lookup(set)
}

func (s levelSource) partitionOf(set lattice.AttrSet, _ *TaskStats) *partition.Stripped {
	// Partition time is charged to the engine's stats by materialize, exactly
	// as the pre-task engine did.
	return s.e.materialize(s.node(set))
}

func (s levelSource) classIDsOf(set lattice.AttrSet) []int32 {
	return s.node(set).ClassIDs(s.e.t.singles)
}

// buildTask propagates validity state from the parents into the node (the
// coordinator-side half of node processing, which needs the whole previous
// level) and captures the node's work unit. The task's pair-set words alias
// the node's sets — free locally, copied only by serialization.
func buildTask(node *lattice.Node, parents *lattice.Level, numAttrs int, bidirectional bool) NodeTask {
	if bidirectional && node.OCValidDesc == nil {
		node.OCValidDesc = lattice.NewPairSet(numAttrs)
	}
	task := NodeTask{
		Set:         uint64(node.Set),
		Level:       node.Level,
		ParentConst: make([]uint64, node.Level),
	}
	var propagated lattice.AttrSet
	i := 0
	node.Set.ForEach(func(c int) {
		if p := parents.Lookup(node.Set.Remove(c)); p != nil {
			task.ParentConst[i] = uint64(p.ConstValid)
			propagated = propagated.Union(p.ConstValid)
			node.OCValid.UnionWith(p.OCValid)
			if node.OCValidDesc != nil && p.OCValidDesc != nil {
				node.OCValidDesc.UnionWith(p.OCValidDesc)
			}
		}
		i++
	})
	node.ConstValid = propagated
	task.ConstValid = uint64(propagated)
	task.OCValid = node.OCValid.Words()
	if node.OCValidDesc != nil {
		task.OCValidDesc = node.OCValidDesc.Words()
	}
	return task
}

// execTask examines all candidates hosted at the task's node — OFDs
// (Set\{D}): [] ↦ D for D ∈ Set, and OCs (Set\{A,B}): A ∼ B for pairs
// {A,B} ⊆ Set — reading pruning state from the task and writing verdicts
// into nr (reset first; callers that retain results across nodes pass a
// fresh one). It never mutates the task or any lattice state (each unordered
// pair and attribute is examined exactly once per node, so no candidate
// observes another's verdict within a node), which is what makes the work
// unit location-transparent: the same code runs under the serial executor,
// the pool workers, and a remote shard's TaskRunner.
func (e *engine) execTask(task *NodeTask, parts partSource, nr *NodeResult) {
	nr.reset()
	st := &nr.Stats
	set := lattice.AttrSet(task.Set)
	propagatedConst := lattice.AttrSet(task.ConstValid)
	attrs := set.Attrs()

	// --- OFD candidates. -------------------------------------------------
	for _, d := range attrs {
		if e.aborted() {
			return
		}
		if propagatedConst.Has(d) {
			// A strict sub-context already has a valid OFD for d: any OFD
			// here is valid but non-minimal. Skip validation entirely —
			// unless the pruning ablation wants the cost measured.
			st.OFDSkipped++
			if e.t.cfg.DisablePruning {
				ctx := parts.partitionOf(set.Remove(d), st)
				st.OFDCandidates++
				nr.Candidates++
				t0 := time.Now()
				e.validateOFD(ctx, e.t.tbl.Column(d))
				st.ValidationTime += time.Since(t0)
			}
			continue
		}
		ctx := parts.partitionOf(set.Remove(d), st)
		st.OFDCandidates++
		nr.Candidates++
		t0 := time.Now()
		r := e.validateOFD(ctx, e.t.tbl.Column(d))
		st.ValidationTime += time.Since(t0)
		if r.Valid {
			nr.NewConst |= 1 << uint(d)
			if e.t.cfg.IncludeOFDs {
				ofd := TaskOFD{A: d, Error: r.Error, Removals: r.Removals}
				if e.t.cfg.CollectRemovalSets {
					full := e.v.ApproxOFD(ctx, e.t.tbl.Column(d),
						validate.Options{Threshold: e.t.eps, CollectRemovals: true})
					ofd.RemovalRows = full.RemovalRows
				}
				nr.OFDs = append(nr.OFDs, ofd)
			}
		}
	}

	// --- OC candidates (levels >= 2). -------------------------------------
	if task.Level < 2 {
		return
	}
	directions := dirAsc[:]
	if e.t.cfg.Bidirectional {
		directions = dirBoth[:]
	}
	for i := 0; i < len(attrs); i++ {
		for j := i + 1; j < len(attrs); j++ {
			a, b := attrs[i], attrs[j]
			for _, desc := range directions {
				if e.aborted() {
					return
				}
				validWords := task.OCValid
				if desc {
					validWords = task.OCValidDesc
				}
				skip := false
				if lattice.PairHas(validWords, a, b, e.t.numAttrs) {
					// Valid in a sub-context: non-minimal here and
					// everywhere above (minimality pruning).
					st.OCSkippedMinimality++
					skip = true
				} else {
					// ParentConst[j] is the parent missing b (it contains a),
					// ParentConst[i] the parent missing a.
					if lattice.AttrSet(task.ParentConst[j]).Has(a) ||
						lattice.AttrSet(task.ParentConst[i]).Has(b) {
						// Constancy of a side within the OC's context (or a
						// subset) trivializes the OC in both directions
						// (e_OC ≤ e_OFD); never minimal.
						st.OCSkippedConstancy++
						skip = true
					}
				}
				gpSet := set.Remove(a).Remove(b)
				if skip {
					if e.t.cfg.DisablePruning {
						ctx := parts.partitionOf(gpSet, st)
						st.OCCandidates++
						nr.Candidates++
						t0 := time.Now()
						e.validateOCVia(parts, gpSet, ctx, a, b, desc)
						st.ValidationTime += time.Since(t0)
					}
					continue
				}
				ctx := parts.partitionOf(gpSet, st)
				st.OCCandidates++
				nr.Candidates++
				t0 := time.Now()
				if e.sampleRejects(ctx, a, b, desc) {
					st.OCSampledRejected++
					st.ValidationTime += time.Since(t0)
					continue
				}
				r := e.validateOCVia(parts, gpSet, ctx, a, b, desc)
				st.ValidationTime += time.Since(t0)
				if r.Valid {
					oc := TaskOC{A: a, B: b, Descending: desc, Error: r.Error, Removals: r.Removals}
					if e.t.cfg.CollectRemovalSets {
						oc.RemovalRows = e.collectOCRemovals(ctx, a, b, desc)
					}
					nr.OCs = append(nr.OCs, oc)
				}
			}
		}
	}
}

// applyTask folds a task's result into the node's validity state and the
// engine's accumulated result. Called in deterministic node order by every
// executor, it is the single place discovered dependencies enter a Result —
// which is why sharded, pooled, and serial runs are byte-identical.
func (e *engine) applyTask(node *lattice.Node, task *NodeTask, nr *NodeResult) {
	st := &e.res.Stats
	nr.Stats.addTo(st)
	node.ConstValid = lattice.AttrSet(task.ConstValid | nr.NewConst)
	st.OFDsFoundPerLevel[node.Level] += bits.OnesCount64(nr.NewConst)
	set := lattice.AttrSet(task.Set)
	for i := range nr.OFDs {
		w := &nr.OFDs[i]
		e.res.OFDs = append(e.res.OFDs, OFD{
			Context:     set.Remove(w.A),
			A:           w.A,
			Error:       w.Error,
			Removals:    w.Removals,
			Level:       node.Level,
			Score:       Score(node.Level-1, w.Error),
			RemovalRows: w.RemovalRows,
		})
	}
	for i := range nr.OCs {
		w := &nr.OCs[i]
		if w.Descending {
			node.OCValidDesc.Add(w.A, w.B)
		} else {
			node.OCValid.Add(w.A, w.B)
		}
		st.OCsFoundPerLevel[node.Level]++
		e.res.OCs = append(e.res.OCs, OC{
			Context:     set.Remove(w.A).Remove(w.B),
			A:           w.A,
			B:           w.B,
			Descending:  w.Descending,
			Error:       w.Error,
			Removals:    w.Removals,
			Level:       node.Level,
			Score:       Score(node.Level-2, w.Error),
			RemovalRows: w.RemovalRows,
		})
	}
}
