package core

import (
	"fmt"
	"sort"
	"time"

	"aod/internal/lattice"
)

// OC is a discovered (approximate) canonical order compatibility
// X: A ∼ B (Def. 2.10).
type OC struct {
	// Context is the attribute set X.
	Context lattice.AttrSet
	// A and B are the order-compatible attribute indexes (A < B).
	A, B int
	// Descending marks a mixed-direction OC (A ascending, B descending),
	// discovered only under Config.Bidirectional.
	Descending bool
	// Error is the approximation factor e = |minimal removal set| / |r|
	// (as estimated by the configured validator).
	Error float64
	// Removals is the removal-set size behind Error.
	Removals int
	// Level is the lattice level at which the OC was found: |X| + 2.
	Level int
	// Score is the interestingness score (higher is more interesting); see
	// Score for the formula.
	Score float64
	// RemovalRows holds the removal set when Config.CollectRemovalSets.
	RemovalRows []int32
}

// String renders the OC in the canonical notation, e.g. "{pos}: exp ∼ sal";
// mixed-direction OCs carry a "↓" on the descending side.
func (d OC) String() string {
	return fmt.Sprintf("%s: %d ∼ %d%s (e=%.4f)", d.Context, d.A, d.B, d.descMark(), d.Error)
}

// Format renders the OC with column names.
func (d OC) Format(names []string) string {
	return fmt.Sprintf("%s: %s ∼ %s%s (e=%.4f)",
		d.Context.Format(names), names[d.A], names[d.B], d.descMark(), d.Error)
}

func (d OC) descMark() string {
	if d.Descending {
		return "↓"
	}
	return ""
}

// OFD is a discovered (approximate) order functional dependency
// X: [] ↦ A (Def. 2.11).
type OFD struct {
	// Context is the attribute set X.
	Context lattice.AttrSet
	// A is the attribute constant within each context class.
	A int
	// Error is the approximation factor (TANE g3).
	Error float64
	// Removals is the removal-set size behind Error.
	Removals int
	// Level is the lattice level at which the OFD was found: |X| + 1.
	Level int
	// Score is the interestingness score.
	Score float64
	// RemovalRows holds the removal set when Config.CollectRemovalSets.
	RemovalRows []int32
}

// String renders the OFD in canonical notation.
func (d OFD) String() string {
	return fmt.Sprintf("%s: [] ↦ %d (e=%.4f)", d.Context, d.A, d.Error)
}

// Format renders the OFD with column names.
func (d OFD) Format(names []string) string {
	return fmt.Sprintf("%s: [] ↦ %s (e=%.4f)", d.Context.Format(names), names[d.A], d.Error)
}

// Score computes the interestingness surrogate used for ranking discovered
// dependencies: (1 − e) / (1 + |context|). Dependencies with small contexts
// (low lattice levels) and low approximation factors rank higher, matching
// the qualitative use of the measure in [9, 10] (lower-level dependencies
// are more interesting — Exp-5). The exact formula of [10] is not specified
// in the reproduced paper; see DESIGN.md §4.
func Score(contextSize int, e float64) float64 {
	return (1 - e) / float64(1+contextSize)
}

// Stats instruments a discovery run.
type Stats struct {
	// Rows and Attrs describe the input.
	Rows, Attrs int
	// LevelsProcessed is the number of lattice levels examined.
	LevelsProcessed int
	// NodesProcessed counts lattice nodes whose candidates were examined.
	NodesProcessed int
	// OCCandidates / OFDCandidates count validated candidates.
	OCCandidates, OFDCandidates int
	// OCSkippedMinimality counts OC pairs skipped because the pair was
	// already valid in a sub-context; OCSkippedConstancy counts pairs
	// skipped because one side was constancy-trivialized.
	OCSkippedMinimality, OCSkippedConstancy int
	// OFDSkipped counts OFD candidates skipped by minimality propagation.
	OFDSkipped int
	// OCSampledRejected counts OC candidates rejected by the
	// hybrid-sampling pre-filter without a full validation.
	OCSampledRejected int
	// OCsFound / OFDsFound per lattice level (index = level).
	OCsFoundPerLevel, OFDsFoundPerLevel []int
	// ValidationTime is the wall-clock time spent inside validators — the
	// quantity whose share the paper reports as up to 99.6% for the
	// iterative algorithm (Exp-3).
	ValidationTime time.Duration
	// PartitionTime is the wall-clock time spent materializing partitions.
	PartitionTime time.Duration
	// TotalTime is the end-to-end discovery time.
	TotalTime time.Duration
	// TimedOut reports that Config.TimeLimit aborted the run.
	TimedOut bool
	// Canceled reports that the context passed to DiscoverContext was
	// canceled mid-run (results are partial, like TimedOut).
	Canceled bool
	// EarlyStopped reports that a candidate-free level ended the run before
	// the lattice was exhausted (the pruning behind Exp-5's speedups).
	EarlyStopped bool
}

// sortCanonical orders dependencies in the engine's sequential discovery
// order (level, context bitmask, attrs); used by tests to compare parallel
// and sequential results.
func (r *Result) sortCanonical() {
	sort.Slice(r.OCs, func(i, j int) bool {
		if r.OCs[i].Level != r.OCs[j].Level {
			return r.OCs[i].Level < r.OCs[j].Level
		}
		si := r.OCs[i].Context.Add(r.OCs[i].A).Add(r.OCs[i].B)
		sj := r.OCs[j].Context.Add(r.OCs[j].A).Add(r.OCs[j].B)
		if si != sj {
			return si < sj
		}
		if r.OCs[i].A != r.OCs[j].A {
			return r.OCs[i].A < r.OCs[j].A
		}
		if r.OCs[i].B != r.OCs[j].B {
			return r.OCs[i].B < r.OCs[j].B
		}
		return !r.OCs[i].Descending && r.OCs[j].Descending
	})
	sort.Slice(r.OFDs, func(i, j int) bool {
		if r.OFDs[i].Level != r.OFDs[j].Level {
			return r.OFDs[i].Level < r.OFDs[j].Level
		}
		si := r.OFDs[i].Context.Add(r.OFDs[i].A)
		sj := r.OFDs[j].Context.Add(r.OFDs[j].A)
		if si != sj {
			return si < sj
		}
		return r.OFDs[i].A < r.OFDs[j].A
	})
}

// SortCanonical exposes the canonical (level, node, attrs) ordering.
func (r *Result) SortCanonical() { r.sortCanonical() }

// merge folds a worker-local stats fragment into s: counters and validator
// times sum, per-level found counts add elementwise, and abort flags OR. It
// is the single accounting path for every executor — the serial executor
// accumulates into the run's stats directly; pool workers accumulate
// fragments that merge here — so serial and parallel runs produce identical
// non-timing stats by construction. Run-level fields (Rows, Attrs,
// LevelsProcessed, TotalTime, EarlyStopped) are owned by the pipeline and
// left untouched.
func (s *Stats) merge(o *Stats) {
	s.NodesProcessed += o.NodesProcessed
	s.OCCandidates += o.OCCandidates
	s.OFDCandidates += o.OFDCandidates
	s.OCSkippedMinimality += o.OCSkippedMinimality
	s.OCSkippedConstancy += o.OCSkippedConstancy
	s.OFDSkipped += o.OFDSkipped
	s.OCSampledRejected += o.OCSampledRejected
	s.ValidationTime += o.ValidationTime
	s.PartitionTime += o.PartitionTime
	s.TimedOut = s.TimedOut || o.TimedOut
	s.Canceled = s.Canceled || o.Canceled
	for lvl, c := range o.OCsFoundPerLevel {
		s.OCsFoundPerLevel[lvl] += c
	}
	for lvl, c := range o.OFDsFoundPerLevel {
		s.OFDsFoundPerLevel[lvl] += c
	}
}

// OCsFound returns the total number of discovered OCs per the stats.
func (s *Stats) OCsFound() int {
	t := 0
	for _, c := range s.OCsFoundPerLevel {
		t += c
	}
	return t
}

// OFDsFound returns the total number of discovered OFDs per the stats.
func (s *Stats) OFDsFound() int {
	t := 0
	for _, c := range s.OFDsFoundPerLevel {
		t += c
	}
	return t
}

// ValidationShare returns ValidationTime / TotalTime in [0,1].
func (s *Stats) ValidationShare() float64 {
	if s.TotalTime <= 0 {
		return 0
	}
	return float64(s.ValidationTime) / float64(s.TotalTime)
}

// AvgOCLevel returns the mean lattice level of discovered OCs (Exp-5's
// "average lattice level" metric), or 0 when none were found.
func (s *Stats) AvgOCLevel() float64 {
	n, sum := 0, 0
	for lvl, c := range s.OCsFoundPerLevel {
		n += c
		sum += lvl * c
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// Result is the outcome of a discovery run.
type Result struct {
	// OCs are the discovered order compatibilities in discovery order
	// (deterministic: by level, then node bitmask, then pair index).
	OCs []OC
	// OFDs are the discovered order functional dependencies (empty unless
	// Config.IncludeOFDs).
	OFDs []OFD
	// Stats instruments the run.
	Stats Stats
}

// SortByScore orders OCs and OFDs by descending interestingness score,
// breaking ties by level then context then attributes (deterministic).
func (r *Result) SortByScore() {
	sort.SliceStable(r.OCs, func(i, j int) bool {
		if r.OCs[i].Score != r.OCs[j].Score {
			return r.OCs[i].Score > r.OCs[j].Score
		}
		if r.OCs[i].Level != r.OCs[j].Level {
			return r.OCs[i].Level < r.OCs[j].Level
		}
		if r.OCs[i].Context != r.OCs[j].Context {
			return r.OCs[i].Context < r.OCs[j].Context
		}
		if r.OCs[i].A != r.OCs[j].A {
			return r.OCs[i].A < r.OCs[j].A
		}
		if r.OCs[i].B != r.OCs[j].B {
			return r.OCs[i].B < r.OCs[j].B
		}
		return !r.OCs[i].Descending && r.OCs[j].Descending
	})
	sort.SliceStable(r.OFDs, func(i, j int) bool {
		if r.OFDs[i].Score != r.OFDs[j].Score {
			return r.OFDs[i].Score > r.OFDs[j].Score
		}
		if r.OFDs[i].Level != r.OFDs[j].Level {
			return r.OFDs[i].Level < r.OFDs[j].Level
		}
		if r.OFDs[i].Context != r.OFDs[j].Context {
			return r.OFDs[i].Context < r.OFDs[j].Context
		}
		return r.OFDs[i].A < r.OFDs[j].A
	})
}
