package lis

// LNDSFunc returns the indexes (ascending) of one longest non-decreasing
// subsequence of the abstract sequence 0..n-1 under the given three-way
// comparator: cmp(i, j) < 0 when element i orders before element j, 0 when
// they are equal, > 0 otherwise. It generalizes LNDS to composite values
// (e.g. lexicographic tuples in list-based OD validation) at the cost of a
// comparator call per O(log n) step.
func LNDSFunc(n int, cmp func(i, j int) int) []int {
	if n == 0 {
		return nil
	}
	tailsIdx := make([]int, 0, 16)
	prev := make([]int, n)
	for i := 0; i < n; i++ {
		lo, hi := 0, len(tailsIdx)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if cmp(tailsIdx[mid], i) <= 0 {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo > 0 {
			prev[i] = tailsIdx[lo-1]
		} else {
			prev[i] = -1
		}
		if lo == len(tailsIdx) {
			tailsIdx = append(tailsIdx, i)
		} else {
			tailsIdx[lo] = i
		}
	}
	out := make([]int, len(tailsIdx))
	at := tailsIdx[len(tailsIdx)-1]
	for k := len(tailsIdx) - 1; k >= 0; k-- {
		out[k] = at
		at = prev[at]
	}
	return out
}
