package shard

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"aod/internal/telemetry"
)

// errWorkerDead marks a client whose connection already failed; calls on it
// fail fast so retry policy moves on immediately.
var errWorkerDead = errors.New("shard: worker connection is dead")

// workerClient is one job session's connection to one worker. Calls are
// strict request/response and serialized by mu (a straggler backup call on a
// busy client queues behind the in-flight one). Any transport error kills
// the client for the rest of the session. The death flag is atomic so
// liveness checks (session.alive, Width) never block behind an in-flight
// call that may be waiting out its full timeout.
type workerClient struct {
	addr string
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer

	// Wire-level telemetry handles, shared with the owning Cluster (nil-safe
	// when the cluster has no registry). partBytes counts bytes of partition
	// (parts) frames specifically, a subset of txBytes.
	txBytes   *telemetry.Counter
	rxBytes   *telemetry.Counter
	frames    *telemetry.Counter
	partBytes *telemetry.Counter

	mu   sync.Mutex // serializes request/response exchanges
	dead atomic.Bool
}

// kill marks the client dead and closes its connection, failing any
// in-flight exchange fast. Safe to call from any goroutine, with or without
// mu held.
func (c *workerClient) kill() {
	c.dead.Store(true)
	c.conn.Close()
}

// call sends one frame — optionally preceded by an unanswered preface frame
// in the same buffered write — and reads the reply, bounded by the per-call
// timeout and the context (cancellation forces the pending read to fail via
// an immediate deadline). The preface rides the exchange atomically: a retry
// or straggler re-dispatch that re-issues the call re-sends it too, so
// whichever worker answers has seen it.
func (c *workerClient) call(ctx context.Context, timeout time.Duration, preface, f *frame) (*frame, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead.Load() {
		return nil, errWorkerDead
	}
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
		deadline = d
	}
	c.conn.SetDeadline(deadline)
	stop := context.AfterFunc(ctx, func() { c.conn.SetDeadline(time.Now().Add(-time.Second)) })
	defer stop()
	if preface != nil {
		n, err := writeFrame(c.bw, preface)
		if err != nil {
			c.kill()
			return nil, err
		}
		c.txBytes.Add(uint64(n))
		c.partBytes.Add(uint64(n))
		c.frames.Inc()
	}
	n, err := writeFrame(c.bw, f)
	if err != nil {
		c.kill()
		return nil, err
	}
	c.txBytes.Add(uint64(n))
	c.frames.Inc()
	if err := c.bw.Flush(); err != nil {
		c.kill()
		return nil, err
	}
	rf, n, err := readFrame(c.br)
	c.rxBytes.Add(uint64(n))
	if err != nil {
		c.kill()
		return nil, err
	}
	c.frames.Inc()
	return rf, nil
}

// handshake runs the hello/dataset exchange on a fresh connection. payload is
// called lazily, only when this worker's cache misses the fingerprint.
func (c *workerClient) handshake(ctx context.Context, timeout time.Duration, hello *helloMsg, payload func() (*datasetMsg, error)) error {
	rf, err := c.call(ctx, timeout, nil, &frame{T: "hello", Hello: hello})
	if err != nil {
		return err
	}
	ack, err := ackOf(rf)
	if err != nil {
		c.kill()
		return err
	}
	if ack.NeedDataset {
		ds, err := payload()
		if err != nil {
			c.kill()
			return fmt.Errorf("serializing dataset for %s: %w", c.addr, err)
		}
		rf, err = c.call(ctx, timeout, nil, &frame{T: "dataset", Dataset: ds})
		if err != nil {
			return err
		}
		if _, err := ackOf(rf); err != nil {
			c.kill()
			return err
		}
	}
	return nil
}

// runLevel processes one level slice on the worker. parts, when non-nil,
// precedes the level frame in the same exchange (no extra round trip — the
// worker answers both with the level's single result frame).
func (c *workerClient) runLevel(ctx context.Context, timeout time.Duration, parts *partsMsg, msg *levelMsg) (*resultMsg, error) {
	var preface *frame
	if parts != nil && len(parts.Parts) > 0 {
		preface = &frame{T: "parts", Parts: parts}
	}
	rf, err := c.call(ctx, timeout, preface, &frame{T: "level", Level: msg})
	if err != nil {
		return nil, err
	}
	if rf.T != "result" || rf.Result == nil {
		c.kill()
		return nil, fmt.Errorf("shard: expected result frame, got %q", rf.T)
	}
	if rf.Result.Error != "" {
		c.kill()
		return nil, fmt.Errorf("shard: worker %s: %s", c.addr, rf.Result.Error)
	}
	return rf.Result, nil
}

func ackOf(rf *frame) (*ackMsg, error) {
	if rf.T != "ack" || rf.Ack == nil {
		return nil, fmt.Errorf("shard: expected ack frame, got %q", rf.T)
	}
	if rf.Ack.Error != "" {
		return nil, fmt.Errorf("shard: worker refused: %s", rf.Ack.Error)
	}
	if !rf.Ack.OK {
		return nil, errors.New("shard: worker refused without a reason")
	}
	return rf.Ack, nil
}
