package shard

import (
	"context"
	"errors"
	"strings"
	"testing"

	"aod/internal/core"
	"aod/internal/gen"
	"aod/internal/telemetry"
)

// collectSpans flattens a trace into name → spans.
func collectSpans(tr *telemetry.Trace) map[string][]telemetry.Span {
	out := make(map[string][]telemetry.Span)
	for _, s := range tr.Spans() {
		out[s.Name] = append(out[s.Name], s)
	}
	return out
}

// TestTraceIDPropagation runs a sharded job with an active trace and asserts
// the frame protocol carried the trace ID to the workers and their spans
// stitched back under the coordinator's RPC spans.
func TestTraceIDPropagation(t *testing.T) {
	tbl := gen.Flight(gen.FlightConfig{Rows: 200, Attrs: 6, Seed: 7})
	cfg := core.Config{Threshold: 0.10, Validator: core.ValidatorOptimal, IncludeOFDs: true}

	tr := telemetry.NewTrace("job-trace-propagation")
	root := tr.Start(0, "job")
	ctx := telemetry.NewContext(context.Background(), tr, root.ID())

	cluster := Loopback(2)
	res, err := core.Pipeline{Executor: core.Sharded(cluster)}.Run(ctx, tbl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || res.Stats.LevelsProcessed == 0 {
		t.Fatal("no levels processed")
	}
	root.End()

	spans := collectSpans(tr)
	if len(spans["partition-build"]) != 1 {
		t.Errorf("partition-build spans = %d, want 1", len(spans["partition-build"]))
	}
	if len(spans["level"]) != res.Stats.LevelsProcessed {
		t.Errorf("level spans = %d, want %d", len(spans["level"]), res.Stats.LevelsProcessed)
	}
	if len(spans["rpc"]) == 0 {
		t.Fatal("no rpc spans recorded")
	}
	execs := spans["worker-exec"]
	if len(execs) == 0 {
		t.Fatal("no worker-exec spans stitched into the coordinator trace")
	}
	rpcIDs := make(map[telemetry.SpanID]bool)
	for _, s := range spans["rpc"] {
		rpcIDs[s.ID] = true
	}
	for _, s := range execs {
		if !s.Remote {
			t.Errorf("worker-exec span not marked remote: %+v", s)
		}
		// The label is the worker's echo of the trace ID it received on the
		// wire — the propagation proof.
		if s.Label != tr.ID() {
			t.Errorf("worker echoed trace ID %q, want %q", s.Label, tr.ID())
		}
		if !rpcIDs[s.Parent] {
			t.Errorf("worker-exec span parented under %d, not an rpc span", s.Parent)
		}
		if s.Attrs["tasks"] <= 0 {
			t.Errorf("worker-exec span missing tasks attr: %+v", s.Attrs)
		}
	}
}

// TestTraceIDPropagationAcrossRetry kills the first worker mid-lattice (the
// protocol-level equivalent of a SIGKILLed worker process: the connection
// drops without a reply) and asserts the retried slice's spans still stitch
// in — the failed attempt stays visible in the trace, and the surviving
// worker's spans echo the same trace ID.
func TestTraceIDPropagationAcrossRetry(t *testing.T) {
	tbl := gen.Flight(gen.FlightConfig{Rows: 300, Attrs: 7, Seed: 3})
	cfg := core.Config{Threshold: 0.10, Validator: core.ValidatorOptimal, IncludeOFDs: true}
	want, err := core.Pipeline{}.Run(context.Background(), tbl, cfg)
	if err != nil {
		t.Fatal(err)
	}

	dieAt := 2
	w0 := NewWorker(WorkerOptions{LevelHook: func(level, tasks int) error {
		if level >= dieAt {
			return errors.New("injected kill")
		}
		return nil
	}})
	w1 := NewWorker(WorkerOptions{})
	cluster := NewLoopback(Config{}, []*Worker{w0, w1})

	tr := telemetry.NewTrace("job-trace-retry")
	root := tr.Start(0, "job")
	ctx := telemetry.NewContext(context.Background(), tr, root.ID())
	got, err := core.Pipeline{Executor: core.Sharded(cluster)}.Run(ctx, tbl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	root.End()

	if len(got.OCs) != len(want.OCs) || len(got.OFDs) != len(want.OFDs) {
		t.Fatalf("retried job result differs: %d/%d OCs, %d/%d OFDs",
			len(got.OCs), len(want.OCs), len(got.OFDs), len(want.OFDs))
	}

	spans := collectSpans(tr)
	var failed int
	for _, s := range spans["rpc"] {
		if strings.Contains(s.Label, "injected") || strings.Contains(s.Label, "EOF") ||
			strings.Contains(s.Label, "closed") || strings.Contains(s.Label, "broken") {
			failed++
		}
	}
	if failed == 0 {
		t.Error("killed worker's failed rpc attempt not recorded in the trace")
	}
	var echoed int
	for _, s := range spans["worker-exec"] {
		if s.Label == tr.ID() {
			echoed++
		}
	}
	if echoed == 0 {
		t.Error("no worker-exec span echoed the trace ID after the retry")
	}
	// Retry telemetry: the cluster counted at least one retry or
	// re-dispatch... only when a registry is wired; assert via a metered run
	// in TestClusterRetryMetrics instead.
}

// TestClusterRetryMetrics pins the retry counter and RPC histogram wiring.
func TestClusterRetryMetrics(t *testing.T) {
	tbl := gen.Uniform(150, 5, 3, 9)
	cfg := core.Config{Threshold: 0.12, Validator: core.ValidatorOptimal}

	reg := telemetry.NewRegistry()
	die := func(level, tasks int) error {
		if level >= 2 {
			return errors.New("injected kill")
		}
		return nil
	}
	cluster := NewLoopback(Config{Metrics: reg}, []*Worker{
		NewWorker(WorkerOptions{LevelHook: die}),
		NewWorker(WorkerOptions{}),
	})
	if _, err := (core.Pipeline{Executor: core.Sharded(cluster)}).Run(context.Background(), tbl, cfg); err != nil {
		t.Fatal(err)
	}
	if cluster.retries.Value() == 0 {
		t.Error("retries counter not incremented after injected worker death")
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"aod_shard_rpc_seconds_count", "aod_shard_retries_total"} {
		if !strings.Contains(out, want) {
			t.Errorf("cluster /metrics missing %q", want)
		}
	}
}
