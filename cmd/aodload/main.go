// Command aodload is an open-loop load generator for aodserver.
//
// It fires discovery traffic at a live server on a fixed or Poisson schedule
// that does not slow down when the server does — so queueing delay shows up
// in the measured latencies instead of silently throttling the offered load.
// Dataset popularity is zipf-skewed and the traffic is a configurable mix of
// cache-hit polls, small discovery jobs, and time-boxed large jobs, each
// landing in the matching server-side aod_job_seconds{class=...} histogram.
//
// The run's report is aod-bench/v1 JSON (the same schema aodbench emits), so
// -baseline/-tolerance gate service latency regressions in CI exactly like
// micro-benchmark regressions:
//
//	aodload -server http://127.0.0.1:8711 -duration 10s -rate 200 \
//	  -zipf 0.99 -mix cachehit=70,small=25,large=5 -seed 42 \
//	  -out LOAD.json -baseline BENCH_7.json -tolerance 1.0
//
// Pointing -router at an aodrouter instead drives a whole replicated fleet
// through its front door; the router's absorbed retries and mid-stream
// failovers are then counted per class and surfaced in both the summary and
// the report (retried/failedOver fields) — a chaos run is "clean" when
// errors stay zero even though those counts are not.
//
// Exit status: 0 on a clean run, 1 when the baseline gate fails, 2 on any
// operational error.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"aod/internal/bench"
	"aod/internal/load"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		server       = flag.String("server", "http://127.0.0.1:8711", "base URL of a running aodserver")
		routerURL    = flag.String("router", "", "base URL of a running aodrouter (overrides -server; per-class retried/failed-over counts land in the report)")
		duration     = flag.Duration("duration", 10*time.Second, "offered-traffic window")
		rate         = flag.Float64("rate", 200, "arrival rate in requests/second")
		arrival      = flag.String("arrival", "poisson", "arrival process: poisson or fixed")
		zipf         = flag.Float64("zipf", 0.99, "zipf exponent for dataset popularity (0 = uniform)")
		mixFlag      = flag.String("mix", load.DefaultMix().String(), "traffic mix as class=weight pairs")
		seed         = flag.Int64("seed", 42, "seed for the request plan (same seed, same sequence)")
		datasets     = flag.Int("datasets", 8, "number of small datasets in the popularity universe")
		large        = flag.Int("large", 2, "number of large datasets in the popularity universe")
		largeTimeBox = flag.Duration("large-timebox", 300*time.Millisecond, "time limit per large job (bounds its cost; partial results)")
		drain        = flag.Duration("drain", 60*time.Second, "how long to wait for in-flight requests after the last arrival")
		out          = flag.String("out", "", "write the aod-bench/v1 report to this file ('-' or empty: stdout)")
		baseline     = flag.String("baseline", "", "gate against this aod-bench/v1 snapshot (e.g. BENCH_7.json)")
		tolerance    = flag.Float64("tolerance", 1.0, "allowed latency growth vs -baseline (1.0 = fail past 2x)")
		planOnly     = flag.Bool("plan-only", false, "print the deterministic request plan and exit without contacting the server")
		scenario     = flag.String("scenario", "", "traffic preset overriding -mix/-datasets: repeat-heavy (one small dataset, perturbed-options repeats — drives the server's partition cache)")
	)
	flag.Parse()

	mix, err := load.ParseMix(*mixFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aodload:", err)
		return 2
	}
	endpoint := *server
	if *routerURL != "" {
		endpoint = *routerURL
	}
	cfg := load.Config{
		Server:        endpoint,
		Rate:          *rate,
		Duration:      *duration,
		Arrival:       load.Arrival(*arrival),
		Zipf:          *zipf,
		Mix:           mix,
		Seed:          *seed,
		SmallDatasets: *datasets,
		LargeDatasets: *large,
		LargeTimeBox:  *largeTimeBox,
		Drain:         *drain,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "aodload: "+format+"\n", args...)
		},
	}
	if cfg, err = load.ApplyScenario(cfg, *scenario); err != nil {
		fmt.Fprintln(os.Stderr, "aodload:", err)
		return 2
	}

	if *planOnly {
		plan, err := load.BuildPlan(cfg.PlanConfig())
		if err != nil {
			fmt.Fprintln(os.Stderr, "aodload:", err)
			return 2
		}
		if err := load.WritePlan(os.Stdout, plan); err != nil {
			fmt.Fprintln(os.Stderr, "aodload:", err)
			return 2
		}
		return 0
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rep, sum, err := load.Run(ctx, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aodload:", err)
		return 2
	}
	printSummary(sum)

	if err := writeReport(*out, rep); err != nil {
		fmt.Fprintln(os.Stderr, "aodload:", err)
		return 2
	}

	if *baseline != "" {
		base, err := bench.LoadJSON(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aodload:", err)
			return 2
		}
		regressions, notes := bench.CompareReports(base, rep, *tolerance)
		for _, n := range notes {
			fmt.Fprintln(os.Stderr, "aodload: note:", n)
		}
		if len(regressions) > 0 {
			fmt.Fprintf(os.Stderr, "aodload: %d service regression(s) vs %s:\n", len(regressions), *baseline)
			for _, r := range regressions {
				fmt.Fprintln(os.Stderr, "  "+r)
			}
			return 1
		}
		fmt.Fprintf(os.Stderr, "aodload: no service regressions vs %s (tolerance %+.0f%%)\n", *baseline, *tolerance*100)
	}
	return 0
}

func printSummary(sum load.Summary) {
	fmt.Fprintf(os.Stderr, "aodload: %d/%d requests dispatched, run took %s\n",
		sum.Dispatched, sum.Planned, sum.Elapsed.Round(time.Millisecond))
	for _, c := range sum.Client {
		routed := ""
		if c.Retried > 0 || c.FailedOver > 0 {
			routed = fmt.Sprintf(" %3d retried %2d failed over", c.Retried, c.FailedOver)
		}
		fmt.Fprintf(os.Stderr, "  %-8s client: %5d ok %4d shed %3d failed %3d errors %3d timed out%s  p50 %s  p99 %s  p999 %s\n",
			c.Class, c.Completed, c.Shed, c.Failed, c.ProtocolErrors, c.TimedOut, routed,
			c.P50.Round(time.Microsecond), c.P99.Round(time.Microsecond), c.P999.Round(time.Microsecond))
	}
	for _, s := range sum.Server {
		fmt.Fprintf(os.Stderr, "  %-8s server: %5d observed  p50 %s  p99 %s  p999 %s\n",
			s.Class, s.Count,
			s.P50.Round(time.Microsecond), s.P99.Round(time.Microsecond), s.P999.Round(time.Microsecond))
	}
}

func writeReport(path string, rep bench.JSONReport) error {
	if path == "" || path == "-" {
		return bench.EncodeReport(os.Stdout, rep)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := bench.EncodeReport(f, rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
