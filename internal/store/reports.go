package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"path/filepath"

	"aod"
)

// reportEnvelope wraps a persisted report with the cache key it was computed
// under, so a load can verify the file serves the key it is named for (the
// file name is only a hash of the key).
type reportEnvelope struct {
	Key    string      `json:"key"`
	Report *aod.Report `json:"report"`
}

// reportPath names the report file for a cache key. Keys embed JSON and a
// 64-hex fingerprint, so the file takes the SHA-256 of the key instead of
// the raw key.
func (s *Store) reportPath(key string) string {
	sum := sha256.Sum256([]byte(key))
	return s.path(reportsDir, hex.EncodeToString(sum[:])+".json")
}

// PutReport persists the completed report under its cache key, atomically
// replacing any previous file for the key. When a report-bytes budget is set
// (SetMaxReportBytes), the write is followed by an LRU sweep of the reports
// directory so the disk tier stays bounded.
func (s *Store) PutReport(key string, rep *aod.Report) error {
	data, err := json.Marshal(reportEnvelope{Key: key, Report: rep})
	if err != nil {
		return fmt.Errorf("store: encoding report: %w", err)
	}
	path := s.reportPath(key)
	if err := s.writeFileAtomic(path, data); err != nil {
		return fmt.Errorf("store: writing report: %w", err)
	}
	s.gcReports(filepath.Base(path))
	return nil
}

// GetReport loads the persisted report for the cache key. It returns
// ok=false both when no report was ever persisted and when the file on disk
// failed to decode or carried a different key — the latter is quarantined.
// Either way the caller's recourse is the same: recompute.
func (s *Store) GetReport(key string) (*aod.Report, bool) {
	path := s.reportPath(key)
	var env reportEnvelope
	err := s.readJSONFile(path, &env)
	if err != nil {
		return nil, false
	}
	if env.Key != key || env.Report == nil {
		s.quarantine(path)
		return nil, false
	}
	// A served report is a hot report: freshen its LRU standing so the GC
	// evicts cold results first.
	s.touchReport(path)
	return env.Report, true
}
