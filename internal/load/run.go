package load

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"aod"
	"aod/internal/bench"
	"aod/internal/service"
)

// jobSecondsFamily is the server histogram family the harness scrapes —
// per-class end-to-end job latency, registered by internal/service.
const jobSecondsFamily = "aod_job_seconds"

// Config parameterizes one load run. Zero values select the documented
// defaults (see withDefaults).
type Config struct {
	// Server is the aodserver base URL, e.g. "http://127.0.0.1:8711".
	Server string
	// Rate is the open-loop arrival rate in requests/second; Duration is the
	// offered-traffic window (requests keep draining afterwards, see Drain).
	Rate     float64
	Duration time.Duration
	// Arrival selects poisson (default) or fixed interarrival spacing.
	Arrival Arrival
	// Zipf is the dataset-popularity exponent (0 = uniform, 0.99 = classic
	// web skew).
	Zipf float64
	// Mix is the traffic composition (DefaultMix when zero).
	Mix Mix
	// Seed makes the whole request sequence reproducible.
	Seed int64
	// SmallDatasets and LargeDatasets size the generated dataset universes.
	SmallDatasets int
	LargeDatasets int
	// Shapes of the generated datasets. Small must classify below the
	// server's small/large admission split, large at or above it — Run
	// refuses shapes that would land traffic in the wrong histogram.
	SmallRows, SmallAttrs int
	LargeRows, LargeAttrs int
	// LargeTimeBox bounds each large job (a time-boxed crawl): the job
	// reports partial results at the deadline, keeping per-request cost
	// bounded while still classifying — and queueing — as large.
	LargeTimeBox time.Duration
	// BaseThreshold is the discovery threshold of every job; fresh
	// (non-cachehit) requests nudge it by a per-request epsilon so each one
	// has a unique cache key and genuinely validates.
	BaseThreshold float64
	// Drain bounds how long Run waits for in-flight requests after the last
	// arrival; requests still open at the deadline count as timed out.
	Drain time.Duration
	// Clock substitutes the scheduler's time source (tests); nil = wall clock.
	Clock Clock
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Server == "" {
		c.Server = "http://127.0.0.1:8711"
	}
	if c.Rate == 0 {
		c.Rate = 200
	}
	if c.Duration == 0 {
		c.Duration = 10 * time.Second
	}
	if c.Arrival == "" {
		c.Arrival = ArrivalPoisson
	}
	if c.Mix.total == 0 {
		c.Mix = DefaultMix()
	}
	if c.SmallDatasets == 0 {
		c.SmallDatasets = 8
	}
	if c.LargeDatasets == 0 {
		c.LargeDatasets = 2
	}
	if c.SmallRows == 0 {
		c.SmallRows = 2000
	}
	if c.SmallAttrs == 0 {
		c.SmallAttrs = 8
	}
	if c.LargeRows == 0 {
		c.LargeRows = 30000
	}
	if c.LargeAttrs == 0 {
		c.LargeAttrs = 24
	}
	if c.LargeTimeBox == 0 {
		c.LargeTimeBox = 300 * time.Millisecond
	}
	if c.BaseThreshold == 0 {
		c.BaseThreshold = 0.10
	}
	if c.Drain == 0 {
		c.Drain = 60 * time.Second
	}
	if c.Clock == nil {
		c.Clock = RealClock{}
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// PlanConfig derives the request-planning parameters from the run config.
func (c Config) PlanConfig() PlanConfig {
	c = c.withDefaults()
	return PlanConfig{
		Rate:          c.Rate,
		Duration:      c.Duration,
		Arrival:       c.Arrival,
		Mix:           c.Mix,
		Zipf:          c.Zipf,
		SmallDatasets: c.SmallDatasets,
		LargeDatasets: c.LargeDatasets,
		Seed:          c.Seed,
	}
}

// validateShapes refuses dataset shapes whose admission estimate lands in
// the wrong server-side latency class: the whole point of the harness is
// that client class i maps onto aod_job_seconds{class=i}.
func (c Config) validateShapes() error {
	if small := aod.EstimateWork(c.SmallRows, c.SmallAttrs, 0); small >= service.SmallJobCost {
		return fmt.Errorf("load: small shape %dx%d estimates %d ≥ the server's small/large split %d — it would classify large",
			c.SmallRows, c.SmallAttrs, small, int64(service.SmallJobCost))
	}
	if large := aod.EstimateWork(c.LargeRows, c.LargeAttrs, 0); large < service.SmallJobCost {
		return fmt.Errorf("load: large shape %dx%d estimates %d < the server's small/large split %d — it would classify small",
			c.LargeRows, c.LargeAttrs, large, int64(service.SmallJobCost))
	}
	return nil
}

// ServerClass is the server-histogram view of one traffic class over the run
// window (the diff of two /metrics scrapes).
type ServerClass struct {
	Class Class         `json:"class"`
	Count uint64        `json:"count"`
	P50   time.Duration `json:"p50Ns"`
	P99   time.Duration `json:"p99Ns"`
	P999  time.Duration `json:"p999Ns"`
}

// Summary is the human-facing result of a run; the machine-facing result is
// the aod-bench/v1 report.
type Summary struct {
	Planned    int           `json:"planned"`
	Dispatched int           `json:"dispatched"`
	Elapsed    time.Duration `json:"elapsedNs"`
	Client     []ClassResult `json:"client"`
	Server     []ServerClass `json:"server"`
}

// TotalErrors sums client-side protocol errors across classes — zero on a
// healthy run.
func (s Summary) TotalErrors() uint64 {
	var n uint64
	for _, c := range s.Client {
		n += c.ProtocolErrors
	}
	return n
}

// Run executes the full harness against a live aodserver: generate and
// upload the dataset universes, warm the cache-hit keys, scrape a baseline
// /metrics snapshot, fire the open-loop schedule, drain, scrape again, and
// fold client- and server-observed latencies into one aod-bench/v1 report.
func Run(ctx context.Context, cfg Config) (bench.JSONReport, Summary, error) {
	cfg = cfg.withDefaults()
	var rep bench.JSONReport
	var sum Summary
	if err := cfg.validateShapes(); err != nil {
		return rep, sum, err
	}
	plan, err := BuildPlan(cfg.PlanConfig())
	if err != nil {
		return rep, sum, err
	}
	client := NewClient(cfg.Server)
	if err := client.Health(ctx); err != nil {
		return rep, sum, err
	}

	// Dataset universes. Seeds are derived per index so each member has
	// distinct content (distinct fingerprint ⇒ distinct cache keys).
	cfg.Logf("generating and uploading %d small + %d large datasets", cfg.SmallDatasets, cfg.LargeDatasets)
	smallIDs := make([]string, cfg.SmallDatasets)
	for i := range smallIDs {
		ds := aod.Flight(cfg.SmallRows, cfg.SmallAttrs, cfg.Seed*1000+int64(i))
		if smallIDs[i], err = uploadDataset(ctx, client, fmt.Sprintf("load-small-%d", i), ds); err != nil {
			return rep, sum, err
		}
	}
	largeIDs := make([]string, cfg.LargeDatasets)
	for i := range largeIDs {
		ds := aod.Flight(cfg.LargeRows, cfg.LargeAttrs, cfg.Seed*1000+500+int64(i))
		if largeIDs[i], err = uploadDataset(ctx, client, fmt.Sprintf("load-large-%d", i), ds); err != nil {
			return rep, sum, err
		}
	}

	// Warm the cache-hit keys: one canonical-options job per small dataset,
	// awaited, so cachehit traffic genuinely hits the result cache.
	cfg.Logf("warming %d cache-hit keys", len(smallIDs))
	warmOpts := aod.Options{Threshold: cfg.BaseThreshold}
	for _, id := range smallIDs {
		jobID, shed, _, err := client.Submit(ctx, id, warmOpts)
		if err != nil {
			return rep, sum, fmt.Errorf("warmup: %w", err)
		}
		if shed {
			return rep, sum, fmt.Errorf("warmup: server shed a warmup job — raise its queue depth")
		}
		state, _, err := client.AwaitDone(ctx, jobID)
		if err != nil {
			return rep, sum, fmt.Errorf("warmup: %w", err)
		}
		if state != "done" {
			return rep, sum, fmt.Errorf("warmup job %s ended %s", jobID, state)
		}
	}
	if client.ViaRouter() {
		cfg.Logf("endpoint identifies as an aodrouter — recording per-class retry/failover counts")
	}

	// Baseline scrape: the run's server-side view is the diff against this,
	// so warmup traffic (and anything before it) is excluded.
	beforeText, err := client.Metrics(ctx)
	if err != nil {
		return rep, sum, err
	}
	before := ParseHistograms(beforeText, jobSecondsFamily)

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	r := &runner{cfg: cfg, client: client, smallIDs: smallIDs, largeIDs: largeIDs, ctx: runCtx}

	cfg.Logf("firing %d requests over %s at %.0f req/s (%s arrivals, zipf %g, mix %s)",
		len(plan), cfg.Duration, cfg.Rate, cfg.Arrival, cfg.Zipf, cfg.Mix)
	start := time.Now()
	dispatched, wg := RunOpenLoop(runCtx, cfg.Clock, offsetsOf(plan), func(i int) { r.fire(plan[i]) })

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(cfg.Drain):
		cfg.Logf("drain deadline passed with requests still in flight — canceling them")
		cancel()
		<-done
	case <-ctx.Done():
		cancel()
		<-done
	}
	elapsed := time.Since(start)

	afterText, err := client.Metrics(ctx)
	if err != nil {
		return rep, sum, err
	}
	after := ParseHistograms(afterText, jobSecondsFamily)

	sum = Summary{Planned: len(plan), Dispatched: dispatched, Elapsed: elapsed, Client: r.col.Results()}
	for _, class := range Classes() {
		h := after[class.String()].Sub(before[class.String()])
		sum.Server = append(sum.Server, ServerClass{
			Class: class,
			Count: h.Count,
			P50:   h.Quantile(0.50),
			P99:   h.Quantile(0.99),
			P999:  h.Quantile(0.999),
		})
	}
	rep = buildReport(cfg, sum)
	return rep, sum, nil
}

// offsetsOf projects the plan's arrival offsets for the scheduler.
func offsetsOf(plan []Request) []time.Duration {
	offs := make([]time.Duration, len(plan))
	for i, r := range plan {
		offs[i] = r.At
	}
	return offs
}

func uploadDataset(ctx context.Context, client *Client, name string, ds *aod.Dataset) (string, error) {
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		return "", err
	}
	return client.UploadCSV(ctx, name, buf.Bytes())
}

// runner holds the per-run state shared by the fire goroutines.
type runner struct {
	cfg      Config
	client   *Client
	smallIDs []string
	largeIDs []string
	ctx      context.Context
	col      Collector
	logOnce  sync.Once
}

// jitter is the per-request threshold nudge that gives every fresh request a
// unique cache key: small enough (n·1e-9) to be semantically irrelevant,
// large enough to survive the server's option canonicalization (options
// marshal at full float64 precision).
func jitter(seq int) float64 { return float64(seq+1) * 1e-9 }

// spec derives the request's dataset id and options from its plan entry.
func (r *runner) spec(req Request) (string, aod.Options) {
	switch req.Class {
	case CacheHit:
		return r.smallIDs[req.Dataset], aod.Options{Threshold: r.cfg.BaseThreshold}
	case Small:
		return r.smallIDs[req.Dataset], aod.Options{Threshold: r.cfg.BaseThreshold + jitter(req.Seq)}
	default:
		return r.largeIDs[req.Dataset], aod.Options{
			Threshold: r.cfg.BaseThreshold + jitter(req.Seq),
			TimeLimit: r.cfg.LargeTimeBox,
		}
	}
}

// fire executes one planned request end to end and records its outcome,
// including any retries/failovers a fronting router absorbed for it.
func (r *runner) fire(req Request) {
	dsID, opts := r.spec(req)
	t0 := time.Now()
	jobID, shed, retried, err := r.client.Submit(r.ctx, dsID, opts)
	r.col.Routed(req.Class, retried, 0)
	if shed {
		r.col.Shed(req.Class)
		return
	}
	if err != nil {
		r.recordError(req.Class, err)
		return
	}
	state, failedOver, err := r.client.AwaitDone(r.ctx, jobID)
	r.col.Routed(req.Class, 0, failedOver)
	if err != nil {
		r.recordError(req.Class, err)
		return
	}
	if state == "done" {
		r.col.Observe(req.Class, time.Since(t0))
		return
	}
	r.col.Failed(req.Class)
}

// recordError partitions an error into drain-timeout (the run canceled the
// request) vs genuine protocol error, logging the first of the latter.
func (r *runner) recordError(class Class, err error) {
	if r.ctx.Err() != nil {
		r.col.TimedOut(class)
		return
	}
	r.logOnce.Do(func() { r.cfg.Logf("first protocol error: %v", err) })
	r.col.ProtocolError(class)
}

// buildReport folds the summary into the aod-bench/v1 schema: two entries
// per class — load-<class>/client (exact quantiles over client clocks) and
// load-<class>/server (the server histogram diff) — joined across snapshots
// on those stable names by bench.CompareReports, which gates both the median
// and the p99 entries.
func buildReport(cfg Config, sum Summary) bench.JSONReport {
	rep := bench.JSONReport{
		Schema:      bench.JSONSchema,
		GeneratedAt: time.Now().UTC().Truncate(time.Second),
		GoOS:        runtime.GOOS,
		GoArch:      runtime.GOARCH,
		Seed:        cfg.Seed,
	}
	for _, c := range sum.Client {
		rep.Results = append(rep.Results, bench.JSONResult{
			Name:        fmt.Sprintf("load-%s/client", c.Class),
			Iterations:  int(c.Completed),
			Count:       c.Completed,
			Errors:      c.Failed + c.ProtocolErrors,
			Shed:        c.Shed,
			Retried:     c.Retried,
			FailedOver:  c.FailedOver,
			RatePerSec:  float64(c.Completed) / cfg.Duration.Seconds(),
			NsPerOp:     float64(c.P50),
			P50NsPerOp:  float64(c.P50),
			P99NsPerOp:  float64(c.P99),
			P999NsPerOp: float64(c.P999),
		})
	}
	for _, s := range sum.Server {
		rep.Results = append(rep.Results, bench.JSONResult{
			Name:        fmt.Sprintf("load-%s/server", s.Class),
			Iterations:  int(s.Count),
			Count:       s.Count,
			NsPerOp:     float64(s.P50),
			P50NsPerOp:  float64(s.P50),
			P99NsPerOp:  float64(s.P99),
			P999NsPerOp: float64(s.P999),
		})
	}
	return rep
}
