// Voterrolls reproduces the paper's ncvoter use case (Exp-6): approximate
// dependencies as data-quality rules over a voter-registration extract —
// municipality abbreviations (≈20% exceptions) and address formats (≈18%) —
// and a repair workflow driven by minimal removal sets.
//
// Run with: go run ./examples/voterrolls
package main

import (
	"fmt"
	"log"

	"aod"
)

func main() {
	// Synthetic stand-in for the NCSBE voter roll (see DESIGN.md §4).
	ds := aod.NCVoter(20_000, 10, 11)
	fmt.Println("dataset:", ds)

	// The paper discovers municipalityAbbrv ∼ municipalityDesc only at
	// ε=20% — the abbreviation convention has genuine exceptions
	// ("Raleigh"→"RAL" but "Charlotte"→"CLT").
	for _, eps := range []float64{0.10, 0.20} {
		v, err := aod.ValidateOC(ds, nil, "municipality", "municipalityAbbrv", eps)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("municipality ∼ municipalityAbbrv at ε=%.0f%%: e=%.1f%% valid=%v\n",
			eps*100, v.Error*100, v.Valid)
	}

	// Address formats: street vs mailing address ordering (paper: 18%).
	addr, err := aod.ValidateOC(ds, nil, "streetAddress", "mailAddress", 0.20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streetAddress ∼ mailAddress: e=%.1f%% — %d irregular address rows\n",
		addr.Error*100, addr.Removals)

	// Bidirectional dependencies: birth year runs opposite to age, which
	// only a mixed-direction OC can express (the VLDBJ'18 framework the
	// paper builds on).
	bi, err := aod.Discover(ds, aod.Options{Algorithm: aod.AlgorithmExact, Bidirectional: true})
	if err != nil {
		log.Fatal(err)
	}
	for _, oc := range bi.OCs {
		if oc.Descending {
			fmt.Printf("bidirectional: %v\n", oc)
		}
	}

	// Full discovery at the paper's ncvoter threshold.
	rep, err := aod.Discover(ds, aod.Options{
		Threshold:          0.20,
		Algorithm:          aod.AlgorithmOptimal,
		IncludeOFDs:        true,
		CollectRemovalSets: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndiscovered %d AOCs and %d AOFDs at ε=20%%\n", len(rep.OCs), len(rep.OFDs))
	fmt.Printf("average lattice level of AOCs: %.2f (lower ⇒ more general ⇒ more interesting)\n",
		rep.Stats.AvgOCLevel())

	// Repair workflow: rank rows by how many verified dependencies flag
	// them — rows violating several independent rules are prime suspects.
	suspects := aod.Suspects(rep, 2)
	fmt.Printf("\n%d rows are flagged by ≥2 independent dependencies (top 5):\n", len(suspects))
	for i, s := range suspects {
		if i == 5 {
			break
		}
		muni, _ := ds.Value(s.Row, "municipality")
		abbr, _ := ds.Value(s.Row, "municipalityAbbrv")
		fmt.Printf("  row %d flagged %d×: municipality=%s abbrv=%s\n", s.Row, s.Hits, muni, abbr)
	}
}
