package router

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"aod/internal/service"
)

const failoverCSV = `pos,exp,sal
secr,2,45
secr,3,50
secr,4,55
mngr,4,70
mngr,5,75
mngr,6,80
direc,6,100
direc,7,110
direc,8,120
`

// swappableHandler lets two peered services learn each other's URLs after
// both listeners exist.
type swappableHandler struct{ h atomic.Value }

func (s *swappableHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h, ok := s.h.Load().(http.Handler); ok && h != nil {
		h.ServeHTTP(w, r)
		return
	}
	http.Error(w, "not ready", http.StatusServiceUnavailable)
}

// TestIdempotentFailoverPeering is the seeded-fault half of the chaos
// acceptance: two real replicated services (result caches peered both
// ways) behind a router whose fault plan kills exactly one submit RPC.
// The client's retried submit fails over to the sibling, which adopts the
// already-computed report over the peer channel instead of re-running
// discovery — same bytes, one validation run total, zero double-executed
// jobs.
func TestIdempotentFailoverPeering(t *testing.T) {
	hA, hB := &swappableHandler{}, &swappableHandler{}
	srvA := httptest.NewServer(hA)
	defer srvA.Close()
	srvB := httptest.NewServer(hB)
	defer srvB.Close()

	svcA := service.New(service.Config{Workers: 2, Peers: []string{srvB.URL}})
	defer svcA.Close()
	svcB := service.New(service.Config{Workers: 2, Peers: []string{srvA.URL}})
	defer svcB.Close()
	hA.h.Store(http.Handler(service.NewHandler(svcA, service.HandlerConfig{})))
	hB.h.Store(http.Handler(service.NewHandler(svcB, service.HandlerConfig{})))

	// The plan is replica-agnostic: the second POST /jobs RPC the router
	// issues — the client's second submit, wherever it homes — errors, so
	// the retry must land on the other replica.
	plan := &FaultPlan{Rules: []FaultRule{
		{Method: http.MethodPost, Path: "/jobs", After: 1, Count: 1, Action: "error"},
	}}
	rt := newTestRouter(t, Config{
		Replicas:      []string{srvA.URL, srvB.URL},
		BackoffBase:   time.Millisecond,
		ProbeInterval: 50 * time.Millisecond,
		Fault:         plan,
	})
	front := httptest.NewServer(rt)
	defer front.Close()

	// Upload once through the front door; the router replicates it.
	resp, err := http.Post(front.URL+"/datasets?name=employees", "text/csv", strings.NewReader(failoverCSV))
	if err != nil {
		t.Fatal(err)
	}
	var info struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload via router = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-AOD-Router-Replicas"); got != "2/2" {
		t.Fatalf("upload replicated to %s replicas, want 2/2", got)
	}

	submit := func() (gid string, attempts string) {
		t.Helper()
		body := fmt.Sprintf(`{"datasetId":%q,"options":{"threshold":0.12,"includeOFDs":true}}`, info.ID)
		resp, err := http.Post(front.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			raw, _ := io.ReadAll(resp.Body)
			t.Fatalf("submit = %d: %s", resp.StatusCode, raw)
		}
		var v struct {
			ID string `json:"id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		return v.ID, resp.Header.Get("X-AOD-Router-Attempts")
	}
	awaitDone := func(gid string) json.RawMessage {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			resp, err := http.Get(front.URL + "/jobs/" + gid)
			if err != nil {
				t.Fatal(err)
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("GET /jobs/%s = %d: %s", gid, resp.StatusCode, raw)
			}
			var v struct {
				State  string          `json:"state"`
				Error  string          `json:"error"`
				Report json.RawMessage `json:"report"`
			}
			if err := json.Unmarshal(raw, &v); err != nil {
				t.Fatal(err)
			}
			switch v.State {
			case "done":
				return v.Report
			case "failed", "canceled":
				t.Fatalf("job %s reached %s (%s)", gid, v.State, v.Error)
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("job %s never finished", gid)
		return nil
	}

	// First submit computes for real on its home replica.
	gid1, _ := submit()
	report1 := awaitDone(gid1)
	if len(report1) == 0 {
		t.Fatal("first job finished without a report")
	}

	// Second identical submit: the fault plan kills its first RPC, the
	// router fails over, and the sibling must adopt — not recompute.
	gid2, attempts := submit()
	report2 := awaitDone(gid2)

	if gid1 == gid2 {
		t.Fatalf("both submits resolved to %s; the second should be a new job on the sibling", gid1)
	}
	home1, _, _ := splitJobID(gid1)
	home2, _, _ := splitJobID(gid2)
	if home1 == home2 {
		t.Fatalf("second submit stayed on replica %d despite the injected fault", home1)
	}
	if attempts != "2" {
		t.Fatalf("failed-over submit reported %s attempts, want 2", attempts)
	}
	if string(report1) != string(report2) {
		t.Fatalf("reports diverged across failover:\n1: %s\n2: %s", report1, report2)
	}
	if rt.met.retries.Value() < 1 {
		t.Fatal("aod_router_retries_total stayed zero through an injected fault")
	}

	// Zero double-executed jobs: exactly one validation across the fleet,
	// and the adopting side shows a peer hit.
	stA, stB := svcA.Stats(), svcB.Stats()
	if total := stA.ValidationRuns + stB.ValidationRuns; total != 1 {
		t.Fatalf("fleet ran validation %d times (A=%d B=%d), want exactly 1",
			total, stA.ValidationRuns, stB.ValidationRuns)
	}
	if stA.PeerHits+stB.PeerHits != 1 {
		t.Fatalf("peer adoptions A=%d B=%d, want exactly 1 across the fleet", stA.PeerHits, stB.PeerHits)
	}
	if stA.PeerServed+stB.PeerServed != 1 {
		t.Fatalf("peer reports served A=%d B=%d, want exactly 1", stA.PeerServed, stB.PeerServed)
	}

	// The telemetry surface exposes the retry counter by its wire name.
	resp, err = http.Get(front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics), "aod_router_retries_total") {
		t.Fatal("/metrics does not expose aod_router_retries_total")
	}
}
