// Package telemetry is the repo's zero-dependency observability layer: a
// metrics registry (counters, gauges, fixed-bucket latency histograms with
// read-time quantiles, Prometheus text exposition) and a lightweight span
// tracer (trace.go) that stitches coordinator- and worker-side timings of one
// discovery job into a single tree.
//
// Everything is allocation-conscious by design: metric handles are resolved
// once at registration and updated with single atomic operations; histograms
// use lock-free power-of-two buckets (no per-observation allocation, no
// locks on the write path); a nil *Trace disables span recording at the cost
// of one pointer check. The discovery hot path (per-candidate validation) is
// deliberately NOT instrumented — telemetry attaches at level, slice, and
// job granularity, which is why telemetry-on overhead stays within noise on
// the bench workloads.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. All methods are no-ops on a
// nil receiver, so instrumented code threads handles unconditionally and an
// unwired registry costs one nil check per update.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. Nil-safe like Counter.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adds n (negative to decrement).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram buckets: powers of two in nanoseconds. Bucket i has upper bound
// 2^(histMinPow+i) ns; observations at or below the first bound land in
// bucket 0, observations past the last finite bound land in the overflow
// bucket. The range 2^10 ns (≈1µs) .. 2^40 ns (≈18min) covers everything
// from a single validator call to a giant discovery job.
const (
	histMinPow     = 10
	histMaxPow     = 40
	histBuckets    = histMaxPow - histMinPow + 1 // finite buckets
	histAllBuckets = histBuckets + 1             // + overflow
)

// bucketBound returns the upper bound of finite bucket i in nanoseconds.
func bucketBound(i int) int64 { return 1 << (histMinPow + i) }

// bucketIndex maps a duration to its bucket.
func bucketIndex(d time.Duration) int {
	ns := uint64(d)
	if d <= 0 {
		return 0
	}
	idx := bits.Len64(ns-1) - histMinPow
	if idx < 0 {
		return 0
	}
	if idx >= histBuckets {
		return histBuckets // overflow
	}
	return idx
}

// Histogram is a fixed-bucket latency histogram with a lock-free write path:
// one atomic add per observation. Quantiles are computed at read time from a
// coherent snapshot of the buckets, exact up to bucket resolution (buckets
// double, so a quantile is within 2× of the true value; linear interpolation
// inside the bucket does much better in practice).
type Histogram struct {
	buckets [histAllBuckets]atomic.Uint64
	sum     atomic.Int64 // nanoseconds
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.buckets[bucketIndex(d)].Add(1)
	h.sum.Add(int64(d))
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
type HistogramSnapshot struct {
	Buckets [histAllBuckets]uint64
	Sum     time.Duration
	Count   uint64
}

// Snapshot copies the histogram. Count is derived from the copied buckets,
// so Count and Buckets are always mutually consistent.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	s.Sum = time.Duration(h.sum.Load())
	for i := range h.buckets {
		n := h.buckets[i].Load()
		s.Buckets[i] = n
		s.Count += n
	}
	return s
}

// Quantile returns the q-quantile (0 < q < 1) of the snapshot, interpolating
// linearly within the containing bucket. Zero observations yield 0; the
// overflow bucket reports the last finite bound (a lower bound on the truth).
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if next >= rank {
			if i >= histBuckets {
				return time.Duration(bucketBound(histBuckets - 1))
			}
			lo := int64(0)
			if i > 0 {
				lo = bucketBound(i - 1)
			}
			hi := bucketBound(i)
			frac := (rank - cum) / float64(n)
			return time.Duration(lo + int64(frac*float64(hi-lo)))
		}
		cum = next
	}
	return time.Duration(bucketBound(histBuckets - 1))
}

// Mean returns the average observation.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// metricKind tags a series for exposition.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one (name, labels) time series.
type series struct {
	labels string // `class="small"` — rendered inside {} verbatim; "" = none
	c      *Counter
	cFn    func() uint64 // sampled counter (reads an external atomic at scrape)
	g      *Gauge
	gFn    func() int64 // sampled gauge
	h      *Histogram
}

// family groups the series of one metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	series []*series
	byKey  map[string]*series
}

// Registry is a set of named metrics with Prometheus text exposition. All
// methods are safe for concurrent use; registration is get-or-create, so
// handles may be re-resolved freely (though callers should keep them).
type Registry struct {
	mu       sync.Mutex
	families []*family // registration order, for stable exposition
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// familyFor resolves (or creates) the family, enforcing kind consistency.
func (r *Registry) familyFor(name, help string, kind metricKind) *family {
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, byKey: make(map[string]*series)}
		r.byName[name] = f
		r.families = append(r.families, f)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s and %s", name, f.kind, kind))
	}
	if f.help == "" {
		f.help = help
	}
	return f
}

func (r *Registry) seriesFor(name, labels, help string, kind metricKind) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, kind)
	s, ok := f.byKey[labels]
	if !ok {
		s = &series{labels: labels}
		f.byKey[labels] = s
		f.series = append(f.series, s)
	}
	return s
}

// Counter registers (or resolves) a counter. labels is the raw Prometheus
// label body (e.g. `class="small"`), "" for none.
func (r *Registry) Counter(name, labels, help string) *Counter {
	s := r.seriesFor(name, labels, help, kindCounter)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.c == nil && s.cFn == nil {
		s.c = &Counter{}
	}
	return s.c
}

// CounterFunc registers a counter whose value is sampled from fn at scrape
// time — the bridge for pre-existing atomics that remain the source of truth.
func (r *Registry) CounterFunc(name, labels, help string, fn func() uint64) {
	s := r.seriesFor(name, labels, help, kindCounter)
	r.mu.Lock()
	defer r.mu.Unlock()
	s.cFn = fn
}

// Gauge registers (or resolves) a gauge.
func (r *Registry) Gauge(name, labels, help string) *Gauge {
	s := r.seriesFor(name, labels, help, kindGauge)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.g == nil && s.gFn == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// GaugeFunc registers a gauge sampled from fn at scrape time.
func (r *Registry) GaugeFunc(name, labels, help string, fn func() int64) {
	s := r.seriesFor(name, labels, help, kindGauge)
	r.mu.Lock()
	defer r.mu.Unlock()
	s.gFn = fn
}

// Histogram registers (or resolves) a latency histogram.
func (r *Registry) Histogram(name, labels, help string) *Histogram {
	s := r.seriesFor(name, labels, help, kindHistogram)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.h == nil {
		s.h = &Histogram{}
	}
	return s.h
}

// snapshotFamilies copies the family/series structure under the lock so the
// (potentially slow) exposition write happens without holding it.
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, len(r.families))
	copy(out, r.families)
	return out
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4): HELP/TYPE headers per family, histogram series as
// cumulative _bucket{le=...}, _sum and _count, durations in seconds.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.snapshotFamilies() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		// Series order is registration order — stable across scrapes.
		for _, s := range f.series {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	switch f.kind {
	case kindCounter:
		v := uint64(0)
		if s.cFn != nil {
			v = s.cFn()
		} else if s.c != nil {
			v = s.c.Value()
		}
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labelBody(s.labels), v)
		return err
	case kindGauge:
		v := int64(0)
		if s.gFn != nil {
			v = s.gFn()
		} else if s.g != nil {
			v = s.g.Value()
		}
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labelBody(s.labels), v)
		return err
	default:
		snap := s.h.Snapshot()
		var cum uint64
		for i := 0; i < histBuckets; i++ {
			cum += snap.Buckets[i]
			// Skip interior all-zero prefixes? No: Prometheus clients expect
			// every bucket; but 31 bounds × many series is noisy. Emit only
			// buckets up to the last non-empty one, then +Inf — cumulative
			// semantics make the omitted tail redundant.
			if snap.Buckets[i] == 0 && !anyAfter(snap, i) && cum == 0 {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
				labelBody(joinLabels(s.labels, fmt.Sprintf(`le="%g"`, float64(bucketBound(i))/1e9))), cum); err != nil {
				return err
			}
			if !anyAfter(snap, i) {
				break
			}
		}
		cum += snap.Buckets[histBuckets]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelBody(joinLabels(s.labels, `le="+Inf"`)), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", f.name, labelBody(s.labels), snap.Sum.Seconds()); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelBody(s.labels), cum)
		return err
	}
}

// anyAfter reports whether any bucket strictly after i is non-empty
// (including overflow).
func anyAfter(s HistogramSnapshot, i int) bool {
	for j := i + 1; j < histAllBuckets; j++ {
		if s.Buckets[j] > 0 {
			return true
		}
	}
	return false
}

func labelBody(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

// Quantiles is the conventional service-latency triple read from one
// histogram snapshot.
type Quantiles struct {
	P50  time.Duration `json:"p50Ns"`
	P99  time.Duration `json:"p99Ns"`
	P999 time.Duration `json:"p999Ns"`
}

// QuantilesOf computes p50/p99/p999 from one coherent snapshot.
func QuantilesOf(h *Histogram) Quantiles {
	s := h.Snapshot()
	return Quantiles{P50: s.Quantile(0.50), P99: s.Quantile(0.99), P999: s.Quantile(0.999)}
}

// ExactQuantile returns the q-quantile of raw samples (nearest-rank with
// linear interpolation) — the helper aodbench's -percentiles mode uses where
// exact values matter more than lock-freedom. Mutates samples (sorts).
func ExactQuantile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sort.Float64s(samples)
	if q <= 0 {
		return samples[0]
	}
	if q >= 1 {
		return samples[len(samples)-1]
	}
	pos := q * float64(len(samples)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return samples[lo]
	}
	frac := pos - float64(lo)
	return samples[lo]*(1-frac) + samples[hi]*frac
}

// sanitizeLabel escapes a value for use inside a Prometheus label.
func sanitizeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// Label renders one key="value" label pair, escaping the value.
func Label(k, v string) string { return k + `="` + sanitizeLabel(v) + `"` }
