// Package store is the disk persistence layer behind the discovery service:
// a content-addressed dataset store, a report store for completed job
// results, and a manifest snapshot of registry metadata, all under one data
// directory. It exists so that an aodserver restart keeps every uploaded
// dataset and every computed report — the substrate the ROADMAP's scaling
// items (sharding by fingerprint, replica routing) build on.
//
// On-disk layout:
//
//	<dir>/manifest.json        registry metadata snapshot (atomic rewrite)
//	<dir>/datasets/<fp>.csv    dataset payloads named by content fingerprint
//	<dir>/reports/<h>.json     report envelopes named by SHA-256 of cache key
//	<dir>/quarantine/          corrupt files are moved here, never deleted
//	<dir>/tmp/                 staging area for atomic write-then-rename
//
// Every write is write-to-temp + fsync + rename, so a crash mid-write leaves
// at worst an orphan in tmp/, never a torn file under a live name. Every
// read verifies integrity (content fingerprint for datasets, embedded key
// for reports); a file that fails verification is quarantined — moved aside
// for post-mortem — and reported as absent or corrupt, never as a panic or
// a fatal startup error.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

const (
	datasetsDir   = "datasets"
	reportsDir    = "reports"
	quarantineDir = "quarantine"
	tmpDir        = "tmp"
	manifestName  = "manifest.json"
)

// ErrNotFound reports that the requested object has no file in the store.
var ErrNotFound = errors.New("store: not found")

// ErrCorrupt reports that an object's file failed integrity verification and
// has been quarantined.
var ErrCorrupt = errors.New("store: corrupt object quarantined")

// Store is a disk-backed object store rooted at one data directory. All
// methods are safe for concurrent use.
type Store struct {
	dir string

	// mu serializes manifest rewrites; payload files are content-addressed
	// and written atomically, so they need no lock.
	mu       sync.Mutex
	manifest manifestFile

	// gcMu serializes report-store GC scans; maxReportBytes <= 0 disables
	// the GC (see SetMaxReportBytes).
	gcMu           sync.Mutex
	maxReportBytes int64
	reportsEvicted atomic.Uint64

	quarantined atomic.Uint64
	recovered   int // datasets re-indexed by the manifest recovery scan

	// Group commit: concurrent writers stage temp files and queue them here;
	// one writer at a time becomes the commit leader and flushes the whole
	// queue under a single directory sync (see writeFileAtomic). cmu guards
	// queue and leading.
	cmu     sync.Mutex
	queue   []*commitReq
	leading bool

	groupCommits  atomic.Uint64 // commit batches flushed
	batchedWrites atomic.Uint64 // writes acknowledged across all batches
}

// commitReq is one staged write awaiting its group commit: the open temp
// file (written, not yet synced), the live name it publishes under, and the
// channel its writer blocks on until the batch it rode in is durable.
type commitReq struct {
	f    *os.File
	path string
	done chan error
}

// Open prepares the data directory (creating it and its subdirectories as
// needed) and loads the manifest. A corrupt manifest is quarantined and
// rebuilt by scanning the dataset files, so Open fails only on I/O errors,
// never on bad content.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty data directory")
	}
	s := &Store{dir: dir}
	for _, sub := range []string{"", datasetsDir, reportsDir, quarantineDir, tmpDir} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: preparing %s: %w", dir, err)
		}
	}
	// A crash mid-write orphans its temp file; no writer exists at Open, so
	// sweep them rather than leak disk across restarts.
	if ents, err := os.ReadDir(s.path(tmpDir)); err == nil {
		for _, e := range ents {
			os.Remove(s.path(tmpDir, e.Name()))
		}
	}
	if err := s.loadManifest(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the data directory the store is rooted at.
func (s *Store) Dir() string { return s.dir }

// Quarantined returns the number of corrupt files this store instance has
// moved to the quarantine directory.
func (s *Store) Quarantined() uint64 { return s.quarantined.Load() }

// Recovered returns the number of datasets re-indexed from payload files
// after a corrupt manifest was quarantined at Open.
func (s *Store) Recovered() int { return s.recovered }

// path joins the data directory with relative elements.
func (s *Store) path(elem ...string) string {
	return filepath.Join(append([]string{s.dir}, elem...)...)
}

// writeFileAtomic publishes data under path via write-to-temp, fsync, and
// rename, so readers never observe a partially written file and a crash
// cannot tear an existing one. It returns only after the write is durable —
// file content synced, rename published, directory entry synced — so every
// acknowledged write survives a crash.
//
// The fsyncs are group-committed: the temp file is staged unsynced and
// queued, and one writer at a time drains the queue as commit leader,
// amortizing the per-batch directory sync (the dominant cost under
// concurrent report writes) across every queued write. A lone writer pays
// exactly the old sequence; a burst of writers shares one leader per batch.
func (s *Store) writeFileAtomic(path string, data []byte) error {
	f, err := os.CreateTemp(s.path(tmpDir), "put-*")
	if err != nil {
		return err
	}
	if _, werr := f.Write(data); werr != nil {
		name := f.Name()
		f.Close()
		os.Remove(name)
		return werr
	}
	req := &commitReq{f: f, path: path, done: make(chan error, 1)}
	s.cmu.Lock()
	s.queue = append(s.queue, req)
	lead := !s.leading
	if lead {
		s.leading = true
	}
	s.cmu.Unlock()
	if lead {
		s.commitLoop()
	}
	return <-req.done
}

// commitLoop drains the commit queue as batches until it is empty, then
// steps down. Writers that queued while a batch was flushing ride the next
// one — that accumulation is what makes the commit a group.
func (s *Store) commitLoop() {
	for {
		s.cmu.Lock()
		batch := s.queue
		s.queue = nil
		if len(batch) == 0 {
			s.leading = false
			s.cmu.Unlock()
			return
		}
		s.cmu.Unlock()
		s.commitBatch(batch)
	}
}

// commitBatch makes one queue drain durable: per-file sync + rename (a
// failure fails only that write), then one sync per distinct directory for
// the whole batch, then every writer is released. Acknowledgement strictly
// follows the directory sync — a write is never reported durable before its
// rename is.
func (s *Store) commitBatch(batch []*commitReq) {
	errs := make([]error, len(batch))
	for i, req := range batch {
		tmp := req.f.Name()
		werr := req.f.Sync()
		if cerr := req.f.Close(); werr == nil {
			werr = cerr
		}
		if werr == nil {
			werr = os.Rename(tmp, req.path)
		}
		if werr != nil {
			os.Remove(tmp)
			errs[i] = werr
		}
	}
	// Make the renames themselves durable: without a directory sync a new
	// entry may not survive power loss even though the file data would.
	// Best-effort — not every platform or filesystem supports fsync on a
	// directory handle, and a failure there must not fail a write the
	// journal will usually persist anyway.
	dirs := make(map[string]struct{}, 1)
	for i, req := range batch {
		if errs[i] != nil {
			continue
		}
		dirs[filepath.Dir(req.path)] = struct{}{}
	}
	for dir := range dirs {
		if d, derr := os.Open(dir); derr == nil {
			d.Sync()
			d.Close()
		}
	}
	s.groupCommits.Add(1)
	s.batchedWrites.Add(uint64(len(batch)))
	for i, req := range batch {
		req.done <- errs[i]
	}
}

// GroupCommits returns the number of commit batches flushed since Open.
func (s *Store) GroupCommits() uint64 { return s.groupCommits.Load() }

// BatchedWrites returns the number of writes acknowledged across all commit
// batches; BatchedWrites > GroupCommits means fsync batching has engaged.
func (s *Store) BatchedWrites() uint64 { return s.batchedWrites.Load() }

// quarantine moves the file aside into the quarantine directory under a
// timestamped name (so repeated quarantines of one path never collide) and
// counts it. It never deletes data: a corrupt file is evidence.
func (s *Store) quarantine(path string) {
	dst := s.path(quarantineDir,
		fmt.Sprintf("%s.%d", filepath.Base(path), time.Now().UnixNano()))
	if err := os.Rename(path, dst); err != nil {
		// Could not move it (e.g. already gone); leave it and carry on —
		// callers already treat the object as absent.
		return
	}
	s.quarantined.Add(1)
}

// readJSONFile reads and unmarshals path into v. A missing file returns
// ErrNotFound; undecodable content quarantines the file and returns
// ErrCorrupt.
func (s *Store) readJSONFile(path string, v any) error {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return ErrNotFound
	}
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		s.quarantine(path)
		return fmt.Errorf("%w: %s: %v", ErrCorrupt, filepath.Base(path), err)
	}
	return nil
}
