package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestParseScale(t *testing.T) {
	for s, want := range map[string]Scale{"tiny": ScaleTiny, "Small": ScaleSmall, "PAPER": ScalePaper} {
		got, err := ParseScale(s)
		if err != nil || got != want {
			t.Errorf("ParseScale(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Error("want error for unknown scale")
	}
	if ScaleTiny.String() != "tiny" || ScaleSmall.String() != "small" || ScalePaper.String() != "paper" {
		t.Error("Scale.String wrong")
	}
	if Scale(9).String() != "Scale(9)" {
		t.Error("unknown scale formatting")
	}
}

func TestGridsAreSane(t *testing.T) {
	for _, sc := range []Scale{ScaleTiny, ScaleSmall, ScalePaper} {
		for _, ds := range []string{"flight", "ncvoter"} {
			grid := sc.tupleGrid(ds)
			if len(grid) == 0 {
				t.Fatalf("%v/%s: empty tuple grid", sc, ds)
			}
			for i := 1; i < len(grid); i++ {
				if grid[i] <= grid[i-1] {
					t.Fatalf("%v/%s: tuple grid not increasing: %v", sc, ds, grid)
				}
			}
			attrs := sc.attrGrid(ds)
			for _, a := range attrs {
				if a < 2 || a > 35 {
					t.Fatalf("%v/%s: bad attr count %d", sc, ds, a)
				}
			}
		}
		if sc.thresholdRows() <= 0 || sc.exp5Rows() <= 0 || sc.iterativeCap() <= 0 {
			t.Fatalf("%v: non-positive sizing", sc)
		}
	}
	// Paper grids match the paper's figures.
	pg := ScalePaper.tupleGrid("flight")
	if pg[0] != 200_000 || pg[len(pg)-1] != 1_000_000 {
		t.Errorf("paper flight grid = %v", pg)
	}
	ng := ScalePaper.tupleGrid("ncvoter")
	if ng[0] != 100_000 || ng[len(ng)-1] != 5_000_000 {
		t.Errorf("paper ncvoter grid = %v", ng)
	}
	if ag := ScalePaper.attrGrid("flight"); ag[len(ag)-1] != 35 {
		t.Errorf("paper flight attr grid = %v", ag)
	}
	if ag := ScalePaper.attrGrid("ncvoter"); ag[len(ag)-1] != 30 {
		t.Errorf("paper ncvoter attr grid = %v", ag)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		Title:   "demo",
		Columns: []string{"a", "longer"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"a note"},
	}
	var buf bytes.Buffer
	if _, err := tbl.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "333") || !strings.Contains(out, "note: a note") {
		t.Errorf("render output:\n%s", out)
	}
}

func TestProjectQuadratic(t *testing.T) {
	if got := projectQuadratic(100, time.Second, 200); got != 4*time.Second {
		t.Errorf("projection = %v, want 4s", got)
	}
	if got := projectQuadratic(0, time.Second, 200); got != 0 {
		t.Errorf("projection with no base = %v, want 0", got)
	}
}

// Smoke-run every experiment at tiny scale; sanity-check the shapes that the
// paper's figures assert.
func TestExperimentsTinySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments take a few seconds")
	}
	var buf bytes.Buffer
	seed := int64(42)

	t1 := Exp1(&buf, ScaleTiny, seed)
	if len(t1) != 2 {
		t.Fatalf("Exp1 tables = %d", len(t1))
	}
	for _, tab := range t1 {
		if len(tab.Rows) == 0 {
			t.Fatalf("Exp1 table %q empty", tab.Title)
		}
	}

	t3 := Exp3(&buf, ScaleTiny, seed)
	if len(t3) != 2 {
		t.Fatalf("Exp3 tables = %d", len(t3))
	}
	for _, tab := range t3 {
		if len(tab.Rows) != 6 {
			t.Fatalf("Exp3 table %q has %d rows, want 6 thresholds", tab.Title, len(tab.Rows))
		}
	}

	t4 := Exp4(&buf, ScaleTiny, seed)
	if len(t4) != 1 || len(t4[0].Rows) < 5 {
		t.Fatalf("Exp4 table malformed: %+v", t4)
	}

	t5 := Exp5(&buf, ScaleTiny, seed)
	if len(t5) != 1 {
		t.Fatalf("Exp5 tables = %d", len(t5))
	}

	t6 := Exp6(&buf, ScaleTiny, seed)
	if len(t6) != 2 {
		t.Fatalf("Exp6 tables = %d", len(t6))
	}
	if len(t6[1].Rows) != 4 {
		t.Fatalf("Exp6 named AOCs rows = %d, want 4", len(t6[1].Rows))
	}
	if buf.Len() == 0 {
		t.Error("experiments wrote no output")
	}
}

func TestExp2TinySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments take a few seconds")
	}
	var buf bytes.Buffer
	t2 := Exp2(&buf, ScaleTiny, 42)
	if len(t2) != 2 {
		t.Fatalf("Exp2 tables = %d", len(t2))
	}
	for _, tab := range t2 {
		if len(tab.Rows) != 4 {
			t.Fatalf("Exp2 table %q rows = %d, want 4", tab.Title, len(tab.Rows))
		}
	}
}
