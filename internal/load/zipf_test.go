package load

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewZipfValidation(t *testing.T) {
	for _, tc := range []struct {
		n  int
		s  float64
		ok bool
	}{
		{10, 0.99, true},
		{1, 0, true},
		{0, 0.99, false},
		{-3, 0.99, false},
		{10, -0.5, false},
		{10, math.NaN(), false},
		{10, math.Inf(1), false},
	} {
		_, err := NewZipf(tc.n, tc.s)
		if (err == nil) != tc.ok {
			t.Errorf("NewZipf(%d, %v): err=%v, want ok=%v", tc.n, tc.s, err, tc.ok)
		}
	}
}

func TestZipfDeterministic(t *testing.T) {
	z, err := NewZipf(64, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	a := make([]int, 1000)
	rng := rand.New(rand.NewSource(42))
	for i := range a {
		a[i] = z.Pick(rng)
	}
	b := make([]int, 1000)
	rng = rand.New(rand.NewSource(42))
	for i := range b {
		b[i] = z.Pick(rng)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverges at draw %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// sampleFreqs draws n samples and returns the per-rank observed frequency.
func sampleFreqs(t *testing.T, z *Zipf, n int, seed int64) []float64 {
	t.Helper()
	counts := make([]int, z.N())
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		k := z.Pick(rng)
		if k < 0 || k >= z.N() {
			t.Fatalf("Pick returned %d, outside [0,%d)", k, z.N())
		}
		counts[k]++
	}
	freqs := make([]float64, len(counts))
	for i, c := range counts {
		freqs[i] = float64(c) / float64(n)
	}
	return freqs
}

// TestZipfRankFrequencyShape checks the sampled rank-frequency curve against
// the analytic mass for the exponents the harness documents: s=0 must be
// uniform, s=0.99 classic web skew, s=1.5 heavy head.
func TestZipfRankFrequencyShape(t *testing.T) {
	const n = 200_000
	for _, s := range []float64{0, 0.99, 1.5} {
		z, err := NewZipf(20, s)
		if err != nil {
			t.Fatal(err)
		}
		freqs := sampleFreqs(t, z, n, 7)
		for k := range freqs {
			want := z.Prob(k)
			// Binomial standard error plus a small absolute floor for the
			// rare tail ranks; 6 sigma keeps the test deterministic-in-
			// practice at this sample size.
			sigma := math.Sqrt(want*(1-want)/n) + 1e-4
			if d := math.Abs(freqs[k] - want); d > 6*sigma {
				t.Errorf("s=%.2f rank %d: observed %.5f, want %.5f ± %.5f", s, k, freqs[k], want, 6*sigma)
			}
		}
	}
}

func TestZipfSkewOrdering(t *testing.T) {
	// Higher exponent ⇒ more mass on rank 0, and within one distribution the
	// analytic mass must be non-increasing in rank.
	var prevHead float64 = -1
	for _, s := range []float64{0, 0.99, 1.5} {
		z, err := NewZipf(20, s)
		if err != nil {
			t.Fatal(err)
		}
		if z.Prob(0) <= prevHead {
			t.Errorf("s=%.2f: head mass %.4f not larger than previous exponent's %.4f", s, z.Prob(0), prevHead)
		}
		prevHead = z.Prob(0)
		for k := 1; k < z.N(); k++ {
			if z.Prob(k) > z.Prob(k-1)+1e-12 {
				t.Fatalf("s=%.2f: mass increases from rank %d to %d", s, k-1, k)
			}
		}
	}
	// s=0 is exactly uniform.
	z, _ := NewZipf(20, 0)
	for k := 0; k < 20; k++ {
		if math.Abs(z.Prob(k)-0.05) > 1e-12 {
			t.Fatalf("s=0 rank %d mass %.6f, want 0.05", k, z.Prob(k))
		}
	}
}
